package vaq

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDeadlinePartialFacade drives the facade's deadline/partial knobs:
// an instantly-expiring deadline must yield a flagged empty answer
// under Partial and an error without it, on every offline entry point.
func TestDeadlinePartialFacade(t *testing.T) {
	repo, q := multiRepo(t, 2, 0.05)
	name := repo.Videos()[0]

	eo := ExecOptions{Deadline: time.Nanosecond}
	if _, _, err := repo.TopKOpts(name, q, 3, eo); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TopKOpts without Partial: err = %v, want DeadlineExceeded", err)
	}
	if _, _, err := repo.TopKAllOpts(q, 3, eo); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TopKAllOpts without Partial: err = %v, want DeadlineExceeded", err)
	}

	eo.Partial = true
	res, stats, err := repo.TopKOpts(name, q, 3, eo)
	if err != nil {
		t.Fatalf("TopKOpts with Partial errored: %v", err)
	}
	if !stats.Incomplete {
		t.Fatal("TopKOpts with Partial: stats not Incomplete")
	}
	if len(res) != 0 {
		t.Fatalf("instant deadline produced %d results", len(res))
	}

	all, astats, err := repo.TopKAllOpts(q, 3, eo)
	if err != nil {
		t.Fatalf("TopKAllOpts with Partial errored: %v", err)
	}
	if !astats.Incomplete || len(all) != 0 {
		t.Fatalf("TopKAllOpts with Partial: incomplete=%v results=%d", astats.Incomplete, len(all))
	}

	for _, workers := range []int{1, 4} { // merged and sharded global paths
		geo := eo
		geo.Workers = workers
		gres, gstats, err := repo.TopKGlobalOpts(q, 3, geo)
		if err != nil {
			t.Fatalf("TopKGlobalOpts(workers=%d) with Partial errored: %v", workers, err)
		}
		if !gstats.Incomplete || len(gres) != 0 {
			t.Fatalf("TopKGlobalOpts(workers=%d): incomplete=%v results=%d", workers, gstats.Incomplete, len(gres))
		}
	}
}

// TestGenerousDeadlineComplete asserts the no-fault fast path: a
// generous deadline changes nothing — identical results, not marked
// Incomplete.
func TestGenerousDeadlineComplete(t *testing.T) {
	repo, q := multiRepo(t, 2, 0.05)
	base, bstats, err := repo.TopKAll(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bstats.Incomplete {
		t.Fatal("baseline run marked Incomplete")
	}
	got, gstats, err := repo.TopKAllOpts(q, 3, ExecOptions{Deadline: time.Hour, Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if gstats.Incomplete {
		t.Fatal("deadline run marked Incomplete despite finishing")
	}
	if len(got) != len(base) {
		t.Fatalf("results differ: %d vs %d", len(got), len(base))
	}
	for i := range got {
		if got[i].Video != base[i].Video || got[i].Seq != base[i].Seq || got[i].Score != base[i].Score {
			t.Fatalf("result %d differs under deadline: %+v vs %+v", i, got[i], base[i])
		}
	}
}
