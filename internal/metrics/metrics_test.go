package metrics

import (
	"math"
	"testing"

	"vaq/internal/interval"
)

func TestSequenceF1Perfect(t *testing.T) {
	s := interval.Set{{Lo: 0, Hi: 9}, {Lo: 20, Hi: 29}}
	got := SequenceF1(s, s, 0.5)
	if got.F1 != 1 || got.Precision != 1 || got.Recall != 1 {
		t.Fatalf("perfect match = %+v", got)
	}
}

func TestSequenceF1Empty(t *testing.T) {
	truth := interval.Set{{Lo: 0, Hi: 9}}
	got := SequenceF1(nil, truth, 0.5)
	if got.F1 != 0 || got.Recall != 0 || got.FN != 1 {
		t.Fatalf("empty prediction = %+v", got)
	}
	got = SequenceF1(truth, nil, 0.5)
	if got.F1 != 0 || got.Precision != 0 || got.FP != 1 {
		t.Fatalf("empty truth = %+v", got)
	}
	got = SequenceF1(nil, nil, 0.5)
	if got.F1 != 0 || got.TP != 0 {
		t.Fatalf("both empty = %+v", got)
	}
}

func TestSequenceF1IOUThreshold(t *testing.T) {
	truth := interval.Set{{Lo: 0, Hi: 9}}
	// IOU 5/15 = 0.33 < 0.5: no match.
	pred := interval.Set{{Lo: 5, Hi: 14}}
	if got := SequenceF1(pred, truth, 0.5); got.TP != 0 {
		t.Fatalf("sub-threshold IOU matched: %+v", got)
	}
	// IOU 8/12 = 0.67 ≥ 0.5: match.
	pred = interval.Set{{Lo: 2, Hi: 11}}
	if got := SequenceF1(pred, truth, 0.5); got.TP != 1 {
		t.Fatalf("above-threshold IOU not matched: %+v", got)
	}
}

func TestSequenceF1OneToOne(t *testing.T) {
	truth := interval.Set{{Lo: 0, Hi: 19}}
	// Two predictions overlap the same truth: only one may match.
	pred := interval.Set{{Lo: 0, Hi: 13}, {Lo: 15, Hi: 19}}
	got := SequenceF1(pred, truth, 0.5)
	if got.TP != 1 || got.FP != 1 || got.FN != 0 {
		t.Fatalf("one-to-one violated: %+v", got)
	}
}

func TestSequenceF1GreedyPrefersBestIOU(t *testing.T) {
	truth := interval.Set{{Lo: 0, Hi: 9}, {Lo: 12, Hi: 21}}
	pred := interval.Set{{Lo: 0, Hi: 9}, {Lo: 11, Hi: 21}}
	got := SequenceF1(pred, truth, 0.5)
	if got.TP != 2 {
		t.Fatalf("both pairs should match: %+v", got)
	}
	if got.F1 != 1 {
		t.Fatalf("F1 = %v", got.F1)
	}
}

func TestUnitF1(t *testing.T) {
	truth := interval.Set{{Lo: 0, Hi: 9}}
	pred := interval.Set{{Lo: 5, Hi: 14}}
	got := UnitF1(pred, truth, 100)
	// TP=5, FP=5, FN=5 → P=R=0.5 → F1=0.5.
	if math.Abs(got.F1-0.5) > 1e-12 {
		t.Fatalf("UnitF1 = %+v", got)
	}
	// Window clamps predictions outside the universe.
	got = UnitF1(interval.Set{{Lo: 90, Hi: 200}}, interval.Set{{Lo: 90, Hi: 99}}, 100)
	if got.F1 != 1 {
		t.Fatalf("clamped UnitF1 = %+v", got)
	}
}

func TestFPR(t *testing.T) {
	pred := []bool{true, false, true, true, false, false}
	truth := interval.Set{{Lo: 2, Hi: 3}} // positions 2,3 truly positive
	full := interval.Set{{Lo: 0, Hi: 5}}
	// Truth-absent positions: 0,1,4,5; predicted positive among them: 0.
	got := FPR(pred, truth, full)
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("FPR = %v, want 0.25", got)
	}
	// Restricted region 2..4: truth-absent = {4}, predicted = false.
	got = FPR(pred, truth, interval.Set{{Lo: 2, Hi: 4}})
	if got != 0 {
		t.Fatalf("region FPR = %v", got)
	}
	// Empty region.
	if FPR(pred, truth, nil) != 0 {
		t.Fatal("empty region should be 0")
	}
}

func TestRetainedFPFraction(t *testing.T) {
	pred := []bool{true, true, false, true}
	truth := interval.Set{{Lo: 1, Hi: 1}}
	// FPs at 0 and 3. Reported region covers 3 only.
	got := RetainedFPFraction(pred, truth, interval.Set{{Lo: 2, Hi: 3}})
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("retained = %v", got)
	}
	if RetainedFPFraction([]bool{false}, truth, nil) != 0 {
		t.Fatal("no FPs should retain 0")
	}
}

func TestPRFCounts(t *testing.T) {
	got := prf(3, 1, 2)
	if got.TP != 3 || got.FP != 1 || got.FN != 2 {
		t.Fatalf("counts lost: %+v", got)
	}
	if math.Abs(got.Precision-0.75) > 1e-12 || math.Abs(got.Recall-0.6) > 1e-12 {
		t.Fatalf("P/R = %v/%v", got.Precision, got.Recall)
	}
}
