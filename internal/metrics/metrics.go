// Package metrics implements the evaluation measures of §5.1: sequence-
// level F1 with IOU matching at threshold η, frame-level F1, and
// detector false-positive rates with and without the query algorithm's
// filtering.
package metrics

import "vaq/internal/interval"

// DefaultIOUThreshold is the η = 0.5 matching threshold used throughout
// the paper's evaluation.
const DefaultIOUThreshold = 0.5

// PRF bundles precision, recall and F1.
type PRF struct {
	Precision, Recall, F1 float64
	TP, FP, FN            int
}

func prf(tp, fp, fn int) PRF {
	out := PRF{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		out.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		out.Recall = float64(tp) / float64(tp+fn)
	}
	if out.Precision+out.Recall > 0 {
		out.F1 = 2 * out.Precision * out.Recall / (out.Precision + out.Recall)
	}
	return out
}

// SequenceF1 matches predicted result sequences against ground-truth
// sequences: a prediction is a true positive iff its IOU with some
// ground-truth sequence is at least eta; a ground-truth sequence
// matched by no prediction is a false negative (§5.1). Matching is
// one-to-one greedy in decreasing IOU.
func SequenceF1(pred, truth interval.Set, eta float64) PRF {
	type cand struct {
		p, t int
		iou  float64
	}
	var cands []cand
	for pi, p := range pred {
		for ti, t := range truth {
			if iou := p.IOU(t); iou >= eta {
				cands = append(cands, cand{pi, ti, iou})
			}
		}
	}
	// Greedy one-to-one matching in decreasing IOU.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].iou > cands[j-1].iou; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	usedP := make([]bool, len(pred))
	usedT := make([]bool, len(truth))
	tp := 0
	for _, c := range cands {
		if usedP[c.p] || usedT[c.t] {
			continue
		}
		usedP[c.p] = true
		usedT[c.t] = true
		tp++
	}
	return prf(tp, len(pred)-tp, len(truth)-tp)
}

// UnitF1 compares coverage position by position (frame-level F1 of
// Figure 5 when both sets are expressed in frames). total is the
// universe size (positions 0..total−1).
func UnitF1(pred, truth interval.Set, total int) PRF {
	window := interval.Set{{Lo: 0, Hi: total - 1}}
	p := pred.Intersect(window)
	t := truth.Intersect(window)
	tp := p.Intersect(t).Len()
	return prf(tp, p.Len()-tp, t.Len()-tp)
}

// FPR returns the false-positive rate of a per-unit indicator stream
// against truth, evaluated over the units covered by region: of the
// region's units where truth is absent, the fraction predicted positive.
// Pass the full stream extent as region for the raw model FPR ("w/o
// SVAQD", Table 5) and the algorithm's reported sequences for the
// filtered rate ("w/ SVAQD").
func FPR(pred []bool, truth interval.Set, region interval.Set) float64 {
	fp, tn := 0, 0
	for _, iv := range region {
		for x := iv.Lo; x <= iv.Hi && x < len(pred); x++ {
			if truth.Contains(x) {
				continue
			}
			if pred[x] {
				fp++
			} else {
				tn++
			}
		}
	}
	if fp+tn == 0 {
		return 0
	}
	return float64(fp) / float64(fp+tn)
}

// RetainedFPFraction returns the fraction of the stream's false-positive
// predictions that fall inside the reported result sequences — the
// complement of the noise the algorithm eliminated (Table 5's
// "effectiveness of eliminating detection noise" view).
func RetainedFPFraction(pred []bool, truth interval.Set, reported interval.Set) float64 {
	total, retained := 0, 0
	for x, p := range pred {
		if !p || truth.Contains(x) {
			continue
		}
		total++
		if reported.Contains(x) {
			retained++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(retained) / float64(total)
}
