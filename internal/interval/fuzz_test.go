package interval

import "testing"

// FuzzSetOps checks the algebra's invariants on arbitrary inputs:
// results normalized, intersection within both operands, subtraction
// disjoint from the subtrahend.
func FuzzSetOps(f *testing.F) {
	f.Add([]byte{0, 10, 5, 15}, []byte{3, 7})
	f.Add([]byte{}, []byte{1, 1, 2, 2, 3, 3})
	f.Add([]byte{255, 0}, []byte{0, 255})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		x := setFromBytes(a)
		y := setFromBytes(b)
		inter := x.Intersect(y)
		if !inter.IsNormalized() {
			t.Fatalf("Intersect not normalized: %v", inter)
		}
		if got := inter.Subtract(x); got.Len() != 0 {
			t.Fatalf("Intersect escapes x: %v", got)
		}
		if got := inter.Subtract(y); got.Len() != 0 {
			t.Fatalf("Intersect escapes y: %v", got)
		}
		diff := x.Subtract(y)
		if !diff.IsNormalized() {
			t.Fatalf("Subtract not normalized: %v", diff)
		}
		if got := diff.Intersect(y); got.Len() != 0 {
			t.Fatalf("Subtract retains y positions: %v", got)
		}
		union := x.Union(y)
		if union.Len() != x.Len()+y.Len()-inter.Len() {
			t.Fatal("inclusion-exclusion violated")
		}
	})
}

// setFromBytes interprets consecutive byte pairs as [lo, lo+span]
// intervals.
func setFromBytes(b []byte) Set {
	var ivs []Interval
	for i := 0; i+1 < len(b); i += 2 {
		lo := int(b[i]) * 3
		ivs = append(ivs, Interval{Lo: lo, Hi: lo + int(b[i+1])%32})
	}
	return Normalize(ivs)
}
