package interval

import (
	"math/rand"
	"testing"
)

func benchSets(n int) (Set, Set) {
	rng := rand.New(rand.NewSource(1))
	mk := func() Set {
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := rng.Intn(1 << 20)
			ivs[i] = Interval{Lo: lo, Hi: lo + rng.Intn(100)}
		}
		return Normalize(ivs)
	}
	return mk(), mk()
}

func BenchmarkIntersect(b *testing.B) {
	x, y := benchSets(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Intersect(y)
	}
}

func BenchmarkNormalize(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ivs := make([]Interval, 1000)
	for i := range ivs {
		lo := rng.Intn(1 << 20)
		ivs[i] = Interval{Lo: lo, Hi: lo + rng.Intn(100)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Normalize(ivs)
	}
}

func BenchmarkSubtract(b *testing.B) {
	x, y := benchSets(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Subtract(y)
	}
}

func BenchmarkContains(b *testing.B) {
	x, _ := benchSets(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Contains(i % (1 << 20))
	}
}
