// Package interval implements sets of integer intervals used throughout
// the system: result sequences are sets of inclusive [start, end] clip-id
// ranges (the paper's P = {(c_l, c_r)}), annotations are frame or shot
// ranges, and the offline intersection operator ⊗ (§4.2) is an interval
// sweep.
//
// All operations treat a Set as a value: inputs are never mutated and
// results are always normalized (sorted, non-overlapping, non-adjacent
// intervals merged).
package interval

import (
	"fmt"
	"sort"
	"strings"
)

// Interval is an inclusive range [Lo, Hi] of integer positions (frame,
// shot or clip identifiers, depending on context). An interval with
// Hi < Lo is empty.
type Interval struct {
	Lo, Hi int
}

// Len returns the number of positions covered by the interval.
func (iv Interval) Len() int {
	if iv.Hi < iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Contains reports whether x lies within the interval.
func (iv Interval) Contains(x int) bool { return iv.Lo <= x && x <= iv.Hi }

// Overlaps reports whether the two intervals share at least one position.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Lo <= o.Hi && o.Lo <= iv.Hi
}

// Intersect returns the overlap of the two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{Lo: max(iv.Lo, o.Lo), Hi: min(iv.Hi, o.Hi)}
}

// IOU returns the intersection-over-union of the two intervals, the
// matching criterion used for evaluation (§5.1, threshold η = 0.5).
func (iv Interval) IOU(o Interval) float64 {
	inter := iv.Intersect(o).Len()
	if inter == 0 {
		return 0
	}
	union := iv.Len() + o.Len() - inter
	return float64(inter) / float64(union)
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// Set is a normalized collection of disjoint, sorted, non-adjacent
// intervals. The zero value is the empty set.
type Set []Interval

// Normalize sorts ivs, drops empty intervals and merges overlapping or
// adjacent ones, returning a canonical Set.
func Normalize(ivs []Interval) Set {
	nonEmpty := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if iv.Len() > 0 {
			nonEmpty = append(nonEmpty, iv)
		}
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	sort.Slice(nonEmpty, func(i, j int) bool {
		if nonEmpty[i].Lo != nonEmpty[j].Lo {
			return nonEmpty[i].Lo < nonEmpty[j].Lo
		}
		return nonEmpty[i].Hi < nonEmpty[j].Hi
	})
	out := Set{nonEmpty[0]}
	for _, iv := range nonEmpty[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi+1 { // overlapping or adjacent: merge
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// FromPoints builds a Set from individual positions, merging consecutive
// runs; used to turn per-clip indicator vectors into result sequences
// (Equation 4).
func FromPoints(points []int) Set {
	ivs := make([]Interval, len(points))
	for i, p := range points {
		ivs[i] = Interval{Lo: p, Hi: p}
	}
	return Normalize(ivs)
}

// FromIndicators builds a Set of the maximal runs of true values,
// interpreting index i as position i.
func FromIndicators(ind []bool) Set {
	var ivs []Interval
	start := -1
	for i, v := range ind {
		switch {
		case v && start < 0:
			start = i
		case !v && start >= 0:
			ivs = append(ivs, Interval{Lo: start, Hi: i - 1})
			start = -1
		}
	}
	if start >= 0 {
		ivs = append(ivs, Interval{Lo: start, Hi: len(ind) - 1})
	}
	return Set(ivs)
}

// IsNormalized reports whether s is sorted, disjoint and non-adjacent.
func (s Set) IsNormalized() bool {
	for i, iv := range s {
		if iv.Len() <= 0 {
			return false
		}
		if i > 0 && iv.Lo <= s[i-1].Hi+1 {
			return false
		}
	}
	return true
}

// Len returns the total number of positions covered by the set.
func (s Set) Len() int {
	n := 0
	for _, iv := range s {
		n += iv.Len()
	}
	return n
}

// Contains reports whether position x is covered by the set.
func (s Set) Contains(x int) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i].Hi >= x })
	return i < len(s) && s[i].Contains(x)
}

// Union returns the positions covered by either set.
func (s Set) Union(o Set) Set {
	return Normalize(append(append([]Interval{}, s...), o...))
}

// Intersect returns the positions covered by both sets as maximal runs:
// the paper's ⊗ operator (§4.2), computed by a single merge sweep over
// the two sorted inputs.
func (s Set) Intersect(o Set) Set {
	var out []Interval
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		in := s[i].Intersect(o[j])
		if in.Len() > 0 {
			out = append(out, in)
		}
		if s[i].Hi < o[j].Hi {
			i++
		} else {
			j++
		}
	}
	return Normalize(out)
}

// IntersectAll folds Intersect over all given sets; with no arguments it
// returns nil (empty). It implements Equation 12,
// P_q = P_a ⊗ P_o1 ⊗ ... ⊗ P_oI.
func IntersectAll(sets ...Set) Set {
	if len(sets) == 0 {
		return nil
	}
	out := sets[0]
	for _, s := range sets[1:] {
		if len(out) == 0 {
			return nil
		}
		out = out.Intersect(s)
	}
	return out
}

// Subtract returns the positions covered by s but not by o.
func (s Set) Subtract(o Set) Set {
	var out []Interval
	j := 0
	for _, iv := range s {
		lo := iv.Lo
		for j < len(o) && o[j].Hi < lo {
			j++
		}
		k := j
		for k < len(o) && o[k].Lo <= iv.Hi {
			if o[k].Lo > lo {
				out = append(out, Interval{Lo: lo, Hi: o[k].Lo - 1})
			}
			if o[k].Hi+1 > lo {
				lo = o[k].Hi + 1
			}
			k++
		}
		if lo <= iv.Hi {
			out = append(out, Interval{Lo: lo, Hi: iv.Hi})
		}
	}
	return Normalize(out)
}

// Clamp restricts the set to the inclusive window [lo, hi].
func (s Set) Clamp(lo, hi int) Set {
	var out []Interval
	for _, iv := range s {
		in := iv.Intersect(Interval{Lo: lo, Hi: hi})
		if in.Len() > 0 {
			out = append(out, in)
		}
	}
	return Set(out)
}

// Scale maps a set expressed at one granularity to a coarser one by
// integer division of endpoints: e.g. frame intervals to the clips they
// touch, given factor = frames per clip.
func (s Set) Scale(factor int) Set {
	if factor <= 0 {
		return nil
	}
	ivs := make([]Interval, len(s))
	for i, iv := range s {
		ivs[i] = Interval{Lo: iv.Lo / factor, Hi: iv.Hi / factor}
	}
	return Normalize(ivs)
}

// Points enumerates every covered position in ascending order.
func (s Set) Points() []int {
	out := make([]int, 0, s.Len())
	for _, iv := range s {
		for x := iv.Lo; x <= iv.Hi; x++ {
			out = append(out, x)
		}
	}
	return out
}

// Equal reports whether the two sets cover exactly the same positions.
// Both sets must be normalized (as produced by this package).
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

func (s Set) String() string {
	parts := make([]string, len(s))
	for i, iv := range s {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Find returns the interval containing x, if any.
func (s Set) Find(x int) (Interval, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Hi >= x })
	if i < len(s) && s[i].Contains(x) {
		return s[i], true
	}
	return Interval{}, false
}
