package interval

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIntervalLen(t *testing.T) {
	cases := []struct {
		iv   Interval
		want int
	}{
		{Interval{0, 0}, 1},
		{Interval{3, 7}, 5},
		{Interval{5, 4}, 0},
		{Interval{-2, 2}, 5},
	}
	for _, c := range cases {
		if got := c.iv.Len(); got != c.want {
			t.Errorf("%v.Len() = %d, want %d", c.iv, got, c.want)
		}
	}
}

func TestIntervalIOU(t *testing.T) {
	cases := []struct {
		a, b Interval
		want float64
	}{
		{Interval{0, 9}, Interval{0, 9}, 1.0},
		{Interval{0, 9}, Interval{10, 19}, 0.0},
		{Interval{0, 9}, Interval{5, 14}, 5.0 / 15.0},
		{Interval{0, 4}, Interval{0, 9}, 0.5},
	}
	for _, c := range cases {
		if got := c.a.IOU(c.b); got != c.want {
			t.Errorf("IOU(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.IOU(c.a); got != c.want {
			t.Errorf("IOU not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestNormalizeMergesAdjacent(t *testing.T) {
	got := Normalize([]Interval{{5, 7}, {0, 2}, {3, 4}, {10, 12}, {11, 15}})
	want := Set{{0, 7}, {10, 15}}
	if !got.Equal(want) {
		t.Fatalf("Normalize = %v, want %v", got, want)
	}
}

func TestNormalizeDropsEmpty(t *testing.T) {
	got := Normalize([]Interval{{5, 4}, {9, 2}})
	if len(got) != 0 {
		t.Fatalf("Normalize of empty intervals = %v, want empty", got)
	}
}

func TestFromIndicators(t *testing.T) {
	cases := []struct {
		in   []bool
		want Set
	}{
		{nil, nil},
		{[]bool{false, false}, nil},
		{[]bool{true}, Set{{0, 0}}},
		{[]bool{true, true, false, true}, Set{{0, 1}, {3, 3}}},
		{[]bool{false, true, true, true}, Set{{1, 3}}},
	}
	for _, c := range cases {
		got := FromIndicators(c.in)
		if !got.Equal(c.want) {
			t.Errorf("FromIndicators(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIntersectBasic(t *testing.T) {
	a := Set{{0, 10}, {20, 30}}
	b := Set{{5, 25}}
	got := a.Intersect(b)
	want := Set{{5, 10}, {20, 25}}
	if !got.Equal(want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
}

func TestIntersectAllMatchesPairwise(t *testing.T) {
	a := Set{{0, 100}}
	b := Set{{10, 40}, {60, 90}}
	c := Set{{30, 70}}
	got := IntersectAll(a, b, c)
	want := Set{{30, 40}, {60, 70}}
	if !got.Equal(want) {
		t.Fatalf("IntersectAll = %v, want %v", got, want)
	}
	if out := IntersectAll(); out != nil {
		t.Fatalf("IntersectAll() = %v, want nil", out)
	}
}

func TestSubtract(t *testing.T) {
	a := Set{{0, 10}}
	b := Set{{3, 5}, {8, 20}}
	got := a.Subtract(b)
	want := Set{{0, 2}, {6, 7}}
	if !got.Equal(want) {
		t.Fatalf("Subtract = %v, want %v", got, want)
	}
}

func TestScale(t *testing.T) {
	frames := Set{{0, 49}, {100, 149}} // two 50-frame clips worth
	clips := frames.Scale(50)
	want := Set{{0, 0}, {2, 2}}
	if !clips.Equal(want) {
		t.Fatalf("Scale = %v, want %v", clips, want)
	}
}

func TestContains(t *testing.T) {
	s := Set{{2, 4}, {8, 9}}
	for _, x := range []int{2, 3, 4, 8, 9} {
		if !s.Contains(x) {
			t.Errorf("Contains(%d) = false, want true", x)
		}
	}
	for _, x := range []int{0, 1, 5, 7, 10} {
		if s.Contains(x) {
			t.Errorf("Contains(%d) = true, want false", x)
		}
	}
}

// randomSet builds a normalized random set over [0, 200) for property
// tests.
func randomSet(rng *rand.Rand) Set {
	n := rng.Intn(8)
	ivs := make([]Interval, n)
	for i := range ivs {
		lo := rng.Intn(200)
		ivs[i] = Interval{Lo: lo, Hi: lo + rng.Intn(20)}
	}
	return Normalize(ivs)
}

// pointSet converts a Set into a membership map, the oracle representation.
func pointSet(s Set) map[int]bool {
	m := map[int]bool{}
	for _, p := range s.Points() {
		m[p] = true
	}
	return m
}

func TestPropIntersectMatchesPointwiseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		a, b := randomSet(rng), randomSet(rng)
		got := pointSet(a.Intersect(b))
		want := map[int]bool{}
		pb := pointSet(b)
		for p := range pointSet(a) {
			if pb[p] {
				want[p] = true
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Intersect mismatch\n a=%v\n b=%v", trial, a, b)
		}
		if !a.Intersect(b).IsNormalized() {
			t.Fatalf("trial %d: Intersect result not normalized", trial)
		}
	}
}

func TestPropSubtractMatchesPointwiseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		a, b := randomSet(rng), randomSet(rng)
		got := pointSet(a.Subtract(b))
		want := map[int]bool{}
		pb := pointSet(b)
		for p := range pointSet(a) {
			if !pb[p] {
				want[p] = true
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Subtract mismatch\n a=%v\n b=%v\n got=%v", trial, a, b, a.Subtract(b))
		}
	}
}

func TestPropUnionIntersectDeMorganLen(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a, b := randomSet(rng), randomSet(rng)
		// |A ∪ B| = |A| + |B| − |A ∩ B|
		if a.Union(b).Len() != a.Len()+b.Len()-a.Intersect(b).Len() {
			t.Fatalf("trial %d: inclusion-exclusion violated for %v, %v", trial, a, b)
		}
	}
}

func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(raw []int16) bool {
		ivs := make([]Interval, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			ivs = append(ivs, Interval{Lo: int(raw[i]), Hi: int(raw[i+1])})
		}
		s := Normalize(ivs)
		return s.IsNormalized() && s.Equal(Normalize(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		a, b := randomSet(rng), randomSet(rng)
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			t.Fatalf("Intersect not commutative for %v, %v", a, b)
		}
	}
}

func TestQuickIntersectWithSelfIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		a := randomSet(rng)
		if !a.Intersect(a).Equal(a) {
			t.Fatalf("A ∩ A != A for %v", a)
		}
		if got := a.Subtract(a); len(got) != 0 {
			t.Fatalf("A − A = %v, want empty", got)
		}
	}
}
