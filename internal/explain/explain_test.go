package explain

import (
	"strings"
	"sync"
	"testing"
)

// TestNilCollectorNoOps drives every method through a nil receiver —
// the disabled path production engines run on.
func TestNilCollectorNoOps(t *testing.T) {
	var c *Collector
	c.SetID("x")
	c.SetQuery("q")
	c.SetWorkload("w")
	c.SetDurUS(1)
	c.ClipOutcome(ClipScanAccept)
	c.AddUnits(LayerDensify, 3)
	c.ObservePredicate(PredObservation{Name: "obj:car", Units: 4})
	c.SetInfer(InferProfile{CacheHits: 1})
	c.SetResilience(ResilienceProfile{Retries: 1})
	c.TopKConfigure(5)
	c.TopKIteration(0, 1, 1.0, 2.0)
	c.TopKSeqPruned(3)
	c.TopKScoreCacheHit()
	c.TopKDensified()
	c.TopKPartial()
	c.TopKFinish(10, 20, 30, 40)
	p := c.Profile()
	if p.Kind != "" || p.Clips != nil || p.Invocations != nil {
		t.Fatalf("nil collector produced a non-empty profile: %+v", p)
	}
}

func TestClipAndUnitAttribution(t *testing.T) {
	c := NewCollector("online")
	c.SetID("s1")
	c.SetQuery("SELECT ...")
	c.SetWorkload("q2")
	c.SetDurUS(1234)
	c.ClipOutcome(ClipScanAccept)
	c.ClipOutcome(ClipScanReject)
	c.ClipOutcome(ClipScanReject)
	c.AddUnits(LayerDensify, 7)
	c.AddUnits(LayerDensify, 0) // no-op, must not create the key twice

	p := c.Profile()
	if p.ID != "s1" || p.Kind != "online" || p.Query != "SELECT ..." || p.Workload != "q2" || p.DurUS != 1234 {
		t.Fatalf("header fields wrong: %+v", p)
	}
	if p.Clips[ClipScanAccept] != 1 || p.Clips[ClipScanReject] != 2 {
		t.Fatalf("clip attribution wrong: %v", p.Clips)
	}
	if p.Invocations[LayerDensify] != 7 {
		t.Fatalf("unit attribution wrong: %v", p.Invocations)
	}
}

func TestObservePredicateDense(t *testing.T) {
	c := NewCollector("online")
	c.ObservePredicate(PredObservation{Name: "obj:car", Positive: true, Units: 30})
	c.ObservePredicate(PredObservation{Name: "obj:car", Positive: false, Units: 30})
	c.ObservePredicate(PredObservation{Name: "act:smoking", Positive: true, Units: 3})

	p := c.Profile()
	if got := p.Invocations[LayerDense]; got != 63 {
		t.Fatalf("dense units = %d, want 63", got)
	}
	if p.EngineInvocations() != 63 {
		t.Fatalf("EngineInvocations = %d, want 63", p.EngineInvocations())
	}
	if len(p.Predicates) != 2 {
		t.Fatalf("predicates = %d, want 2 (first-seen order)", len(p.Predicates))
	}
	car := p.Predicates[0]
	if car.Name != "obj:car" || car.Evaluated != 2 || car.Positive != 1 || car.Units != 60 || car.Planned {
		t.Fatalf("obj:car profile wrong: %+v", car)
	}
	if p.Plan != nil {
		t.Fatalf("dense observations must not open a plan section")
	}
}

func TestObservePredicatePlanned(t *testing.T) {
	c := NewCollector("online")
	// Settled at the base rung: sound prune.
	c.ObservePredicate(PredObservation{
		Name: "obj:car", Planned: true, Positive: false,
		Units: 3, BaseUnits: 3, Rungs: 1, Reason: "sound-prune",
	})
	// Densified two rungs deep, then accepted.
	c.ObservePredicate(PredObservation{
		Name: "obj:car", Planned: true, Positive: true,
		Units: 15, BaseUnits: 3, Rungs: 2, Reason: "scaled-accept",
	})

	p := c.Profile()
	if p.Invocations[LayerProbe] != 6 || p.Invocations[LayerDensify] != 12 {
		t.Fatalf("layer split wrong: %v", p.Invocations)
	}
	if p.EngineInvocations() != 18 {
		t.Fatalf("EngineInvocations = %d, want 18", p.EngineInvocations())
	}
	pl := p.Plan
	if pl == nil {
		t.Fatal("planned observations must open the plan section")
	}
	if pl.Evaluations != 2 || pl.Accepted != 1 || pl.Pruned != 1 || pl.Densified != 1 {
		t.Fatalf("plan aggregate wrong: %+v", pl)
	}
	if pl.Units != 18 || pl.BaseUnits != 6 {
		t.Fatalf("plan units wrong: %+v", pl)
	}
	if pl.Reasons["sound-prune"] != 1 || pl.Reasons["scaled-accept"] != 1 {
		t.Fatalf("plan reasons wrong: %v", pl.Reasons)
	}
	if len(pl.Rungs) != 2 || pl.Rungs[0] != 1 || pl.Rungs[1] != 1 {
		t.Fatalf("rung histogram wrong: %v", pl.Rungs)
	}
	pp := p.Predicates[0]
	if !pp.Planned || pp.BaseUnits != 6 || pp.Reasons["sound-prune"] != 1 || len(pp.Rungs) != 2 {
		t.Fatalf("predicate plan fields wrong: %+v", pp)
	}
}

func TestSetInferAndResilienceLayers(t *testing.T) {
	c := NewCollector("online")
	c.SetInfer(InferProfile{CacheHits: 5, BatchedUnits: 40, Batches: 4})
	c.SetResilience(ResilienceProfile{
		Calls: 100, Retries: 3, Hedges: 2, HedgeWins: 1,
		Fallbacks: 6, DegradedUnits: 6, FallbackHops: []int64{4, 2},
	})

	p := c.Profile()
	if p.Infer == nil || p.Infer.CacheHits != 5 {
		t.Fatalf("infer section wrong: %+v", p.Infer)
	}
	if p.Resilience == nil || p.Resilience.Fallbacks != 6 {
		t.Fatalf("resilience section wrong: %+v", p.Resilience)
	}
	if p.Invocations[LayerBatch] != 40 || p.Invocations[LayerHedge] != 2 || p.Invocations[LayerRetry] != 3 {
		t.Fatalf("backend layers wrong: %v", p.Invocations)
	}
	// Backend layers stay outside the engine invariant.
	if p.EngineInvocations() != 0 {
		t.Fatalf("backend layers leaked into EngineInvocations: %d", p.EngineInvocations())
	}
	// The profile owns its hop slice.
	p.Resilience.FallbackHops[0] = 99
	if c.Profile().Resilience.FallbackHops[0] != 4 {
		t.Fatal("FallbackHops aliases collector state")
	}
}

func TestTopKSection(t *testing.T) {
	c := NewCollector("topk")
	c.TopKConfigure(5)
	c.TopKIteration(0, 1, 0.9, 0.1)
	c.TopKIteration(1, 2, 0.8, 0.3)
	c.TopKSeqPruned(12)
	c.TopKSeqPruned(8)
	c.TopKScoreCacheHit()
	c.TopKDensified()
	c.TopKPartial()
	// Two shards accumulate, mirroring rvaq.Stats.Merge.
	c.TopKFinish(10, 4, 100, 50)
	c.TopKFinish(7, 3, 60, 30)

	tk := c.Profile().TopK
	if tk == nil {
		t.Fatal("topk section missing")
	}
	if tk.K != 5 || tk.Candidates != 17 || tk.Iterations != 7 {
		t.Fatalf("topk totals wrong: %+v", tk)
	}
	if tk.SeqsPruned != 2 || tk.ClipsPruned != 20 || tk.ScoreCacheHits != 1 || tk.Densified != 1 {
		t.Fatalf("topk pruning wrong: %+v", tk)
	}
	if tk.RandomAccesses != 160 || tk.SortedAccesses != 80 {
		t.Fatalf("topk accesses wrong: %+v", tk)
	}
	if !tk.DeadlinePartial {
		t.Fatal("DeadlinePartial not set")
	}
	if len(tk.Trajectory) != 2 || tk.Trajectory[1].Shard != 1 || tk.Trajectory[1].TauTop != 0.8 {
		t.Fatalf("trajectory wrong: %+v", tk.Trajectory)
	}
}

func TestTrajectoryCap(t *testing.T) {
	c := NewCollector("topk")
	for i := 0; i < DefaultTrajectoryCap+10; i++ {
		c.TopKIteration(0, i, 1.0, 0.5)
	}
	tk := c.Profile().TopK
	if len(tk.Trajectory) != DefaultTrajectoryCap {
		t.Fatalf("trajectory length = %d, want %d", len(tk.Trajectory), DefaultTrajectoryCap)
	}
	if tk.TrajectoryDropped != 10 {
		t.Fatalf("TrajectoryDropped = %d, want 10", tk.TrajectoryDropped)
	}
}

// TestProfileSnapshotIsolation mutates a snapshot and verifies the
// collector's state is unaffected (the /explainz ring retains profiles
// long after the collector moved on).
func TestProfileSnapshotIsolation(t *testing.T) {
	c := NewCollector("online")
	c.ClipOutcome(ClipScanAccept)
	c.ObservePredicate(PredObservation{Name: "obj:car", Planned: true, Units: 3, BaseUnits: 3, Rungs: 1, Reason: "sound-prune"})
	c.TopKIteration(0, 1, 1, 1)

	p := c.Profile()
	p.Clips[ClipScanAccept] = 99
	p.Invocations[LayerProbe] = 99
	p.Predicates[0].Reasons["sound-prune"] = 99
	p.Predicates[0].Rungs[0] = 99
	p.Plan.Reasons["sound-prune"] = 99
	p.Plan.Rungs[0] = 99
	p.TopK.Trajectory[0].TauTop = 99

	q := c.Profile()
	if q.Clips[ClipScanAccept] != 1 || q.Invocations[LayerProbe] != 3 {
		t.Fatal("profile maps alias collector state")
	}
	if q.Predicates[0].Reasons["sound-prune"] != 1 || q.Predicates[0].Rungs[0] != 1 {
		t.Fatal("predicate snapshot aliases collector state")
	}
	if q.Plan.Reasons["sound-prune"] != 1 || q.Plan.Rungs[0] != 1 {
		t.Fatal("plan snapshot aliases collector state")
	}
	if q.TopK.Trajectory[0].TauTop != 1 {
		t.Fatal("trajectory snapshot aliases collector state")
	}
}

// TestCollectorConcurrent hammers one collector from several goroutines
// (the sharded top-k path) — run under -race.
func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector("topk")
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.ObservePredicate(PredObservation{Name: "obj:car", Positive: i%2 == 0, Units: 1})
				c.ClipOutcome(ClipScanReject)
				c.TopKIteration(w, i, 1.0, 0.5)
				c.TopKScoreCacheHit()
			}
			c.TopKFinish(per, per, int64(per), int64(per))
		}()
	}
	wg.Wait()
	p := c.Profile()
	if got := p.Invocations[LayerDense]; got != workers*per {
		t.Fatalf("dense units = %d, want %d", got, workers*per)
	}
	if p.Clips[ClipScanReject] != workers*per {
		t.Fatalf("clip outcomes = %d, want %d", p.Clips[ClipScanReject], workers*per)
	}
	if p.TopK.Candidates != workers*per {
		t.Fatalf("candidates = %d, want %d", p.TopK.Candidates, workers*per)
	}
	if got := len(p.TopK.Trajectory) + int(p.TopK.TrajectoryDropped); got != workers*per {
		t.Fatalf("trajectory points + dropped = %d, want %d", got, workers*per)
	}
}

func TestRender(t *testing.T) {
	c := NewCollector("topk")
	c.SetID("q7")
	c.SetWorkload("iron_man")
	c.SetQuery("SELECT ... LIMIT 5")
	c.SetDurUS(12400)
	c.ClipOutcome(ClipScanAccept)
	c.ObservePredicate(PredObservation{Name: "obj:car", Positive: true, Units: 30})
	c.ObservePredicate(PredObservation{Name: "act:driving", Planned: true, Positive: true, Units: 9, BaseUnits: 3, Rungs: 2, Reason: "scaled-accept"})
	c.SetInfer(InferProfile{CacheHits: 5, CacheMisses: 2})
	c.SetResilience(ResilienceProfile{Calls: 10, Retries: 1, FallbackHops: []int64{1}})
	c.TopKConfigure(5)
	c.TopKIteration(0, 1, 0.9, 0.1)
	c.TopKIteration(0, 2, 0.8, 0.3)
	c.TopKPartial()
	c.TopKFinish(40, 2, 120, 60)

	var sb strings.Builder
	Render(&sb, c.Profile())
	out := sb.String()
	for _, want := range []string{
		"explain q7 (topk, workload iron_man) 12.4ms",
		"query: SELECT ... LIMIT 5",
		"clips: scan_accept 1",
		"engine total 39",
		"pred obj:car",
		"dense",
		"pred act:driving",
		"planned",
		"reasons: scaled-accept 1",
		"plan: 1 evals, 1 accepted, 0 pruned, 1 densified, units 9 (base 3)",
		"rungs: r1 0, r2 1",
		"infer: cache 5 hit / 2 miss",
		"resilience: calls 10",
		"hops [1]",
		"topk: k 5, candidates 40, iterations 2",
		"PARTIAL",
		"τ trajectory: 2 points (dropped 0), τ_top 0.9 → 0.8, B_lo^K 0.1 → 0.3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

// TestRenderMinimal keeps the empty-profile path covered: only the
// header line appears.
func TestRenderMinimal(t *testing.T) {
	var sb strings.Builder
	Render(&sb, Profile{Kind: "online"})
	if got := sb.String(); got != "explain (online)\n" {
		t.Fatalf("minimal render = %q", got)
	}
}

func TestRing(t *testing.T) {
	if NewRing(0) != nil || NewRing(-1) != nil {
		t.Fatal("non-positive capacity must disable the ring")
	}
	r := NewRing(3)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v", got)
	}
	for i := 1; i <= 2; i++ {
		r.Add(Profile{ID: string(rune('a' + i - 1))})
	}
	// Unfilled: newest first.
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].ID != "b" || snap[1].ID != "a" {
		t.Fatalf("unfilled snapshot wrong: %+v", snap)
	}
	for i := 3; i <= 5; i++ {
		r.Add(Profile{ID: string(rune('a' + i - 1))})
	}
	// Filled and wrapped: the last 3 of a..e, newest first.
	snap = r.Snapshot()
	if len(snap) != 3 || snap[0].ID != "e" || snap[1].ID != "d" || snap[2].ID != "c" {
		t.Fatalf("wrapped snapshot wrong: %+v", snap)
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	var nilRing *Ring
	nilRing.Add(Profile{})
	if nilRing.Total() != 0 || nilRing.Snapshot() != nil {
		t.Fatal("nil ring must no-op")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(Profile{ID: "x"})
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Total() != 400 {
		t.Fatalf("total = %d, want 400", r.Total())
	}
	if len(r.Snapshot()) != 8 {
		t.Fatalf("retained = %d, want 8", len(r.Snapshot()))
	}
}
