package explain

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Render writes the profile as an indented human-readable tree — the
// shape the CLIs print under -explain:
//
//	explain q1 (topk, video iron_man) 12.4ms
//	  topk: k 5, candidates 40, iterations 120, ...
func Render(w io.Writer, p Profile) {
	head := "explain"
	if p.ID != "" {
		head += " " + p.ID
	}
	ctxParts := []string{p.Kind}
	if p.Workload != "" {
		ctxParts = append(ctxParts, "workload "+p.Workload)
	}
	dur := ""
	if p.DurUS > 0 {
		d := time.Duration(p.DurUS) * time.Microsecond
		dur = " " + d.Round(time.Microsecond).String()
	}
	fmt.Fprintf(w, "%s (%s)%s\n", head, strings.Join(ctxParts, ", "), dur)
	if p.Query != "" {
		fmt.Fprintf(w, "  query: %s\n", p.Query)
	}
	if len(p.Clips) > 0 {
		fmt.Fprintf(w, "  clips: %s\n", countList(p.Clips))
	}
	if len(p.Invocations) > 0 {
		fmt.Fprintf(w, "  invocations: %s (engine total %d)\n", countList(p.Invocations), p.EngineInvocations())
	}
	for _, pp := range p.Predicates {
		mode := "dense"
		if pp.Planned {
			mode = "planned"
		}
		fmt.Fprintf(w, "  pred %-16s %-7s eval %d  pos %d  units %d", pp.Name, mode, pp.Evaluated, pp.Positive, pp.Units)
		if pp.Planned {
			fmt.Fprintf(w, " (base %d)", pp.BaseUnits)
			if len(pp.Reasons) > 0 {
				fmt.Fprintf(w, "  reasons: %s", countList(pp.Reasons))
			}
		}
		fmt.Fprintln(w)
	}
	if pl := p.Plan; pl != nil {
		fmt.Fprintf(w, "  plan: %d evals, %d accepted, %d pruned, %d densified, units %d (base %d)\n",
			pl.Evaluations, pl.Accepted, pl.Pruned, pl.Densified, pl.Units, pl.BaseUnits)
		if len(pl.Rungs) > 0 {
			parts := make([]string, len(pl.Rungs))
			for i, n := range pl.Rungs {
				parts[i] = fmt.Sprintf("r%d %d", i+1, n)
			}
			fmt.Fprintf(w, "    rungs: %s\n", strings.Join(parts, ", "))
		}
	}
	if in := p.Infer; in != nil {
		fmt.Fprintf(w, "  infer: cache %d hit / %d miss, flights %d led / %d coalesced, %d batches (%d units)\n",
			in.CacheHits, in.CacheMisses, in.Leaders, in.Coalesced, in.Batches, in.BatchedUnits)
	}
	if rs := p.Resilience; rs != nil {
		fmt.Fprintf(w, "  resilience: calls %d, errors %d, retries %d, hedges %d (wins %d), deadline %d, shed %d+%d, fallbacks %d over %d units",
			rs.Calls, rs.Errors, rs.Retries, rs.Hedges, rs.HedgeWins, rs.DeadlineExceeded,
			rs.BreakerRejects, rs.LabelRejects, rs.Fallbacks, rs.DegradedUnits)
		if len(rs.FallbackHops) > 0 {
			fmt.Fprintf(w, ", hops %v", rs.FallbackHops)
		}
		fmt.Fprintln(w)
	}
	if tk := p.TopK; tk != nil {
		fmt.Fprintf(w, "  topk: k %d, candidates %d, iterations %d, pruned %d seqs (%d clips), cache hits %d, densified %d, accesses %d random / %d sorted",
			tk.K, tk.Candidates, tk.Iterations, tk.SeqsPruned, tk.ClipsPruned, tk.ScoreCacheHits, tk.Densified,
			tk.RandomAccesses, tk.SortedAccesses)
		if tk.DeadlinePartial {
			fmt.Fprintf(w, ", PARTIAL")
		}
		fmt.Fprintln(w)
		if n := len(tk.Trajectory); n > 0 {
			first, last := tk.Trajectory[0], tk.Trajectory[n-1]
			fmt.Fprintf(w, "    τ trajectory: %d points (dropped %d), τ_top %.4g → %.4g, B_lo^K %.4g → %.4g\n",
				n, tk.TrajectoryDropped, first.TauTop, last.TauTop, first.BLoK, last.BLoK)
		}
	}
	for _, sp := range p.Shards {
		fmt.Fprintf(w, "  shard %-10s", sp.Shard)
		switch {
		case sp.Failed:
			fmt.Fprintf(w, " FAILED (%s)", sp.Error)
		default:
			fmt.Fprintf(w, " results %d, candidates %d, iterations %d, accesses %d random / %d sorted",
				sp.Results, sp.Candidates, sp.Iterations, sp.RandomAccesses, sp.SortedAccesses)
			if sp.Hedged {
				fmt.Fprintf(w, ", hedged")
			}
			if sp.Incomplete {
				fmt.Fprintf(w, ", PARTIAL")
			}
		}
		if sp.DurUS > 0 {
			d := time.Duration(sp.DurUS) * time.Microsecond
			fmt.Fprintf(w, "  %s", d.Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
}

// countList formats a counter map as "key value" pairs, largest first
// (ties by key, so the output is deterministic).
func countList(m map[string]int64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s %d", k, m[k])
	}
	return strings.Join(parts, ", ")
}
