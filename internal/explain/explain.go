// Package explain builds per-query EXPLAIN profiles: an exact
// cost-attribution record assembled alongside (not from) the
// internal/trace spans. Where trace answers "where did the time go",
// explain answers "why did this query cost what it did": every clip's
// outcome is attributed to the decision machinery that settled it
// (scan-statistic accept/reject, planner accept/prune with its rung
// histogram and Decide reason, cache hit, dedup share, breaker shed,
// fallback hop, degraded prior, deadline partial) and every detector
// invocation to the layer that issued it (dense evaluation, planner
// base-rung probe, densification, hedge replica, retry round,
// micro-batch flush), plus the τ_top / B_lo^K bound trajectory for
// top-k runs.
//
// The discipline mirrors package trace: a nil *Collector is a valid,
// disabled collector — every method no-ops — so instrumented engine
// code guards nothing and the disabled path pays only nil checks
// (`vaqbench -exp explain` measures the on/off ratio). Profiles are
// exact, not sampled: the engine-issued layers reconcile to the unit
// with the engines' own accounting —
//
//	dense_eval + plan_probe + densify == svaq Engine.Invocations()
//
// — which the reconciliation tests assert. The hedge / retry /
// batch_flush layers count *additional* backend rounds the resilience
// and shared-inference stacks issued on top of the engine's units and
// are deliberately outside that invariant.
//
// The package is a leaf (stdlib-only): the infer and resilience
// attributions arrive as deltas of their Stats snapshots, taken by the
// caller at query start and finish, via SetInfer / SetResilience.
package explain

import "sync"

// Invocation layers: which machinery issued a detector invocation.
const (
	// LayerDense is an unplanned dense evaluation unit (every frame /
	// shot of the predicate window, the paper's baseline cost).
	LayerDense = "dense_eval"
	// LayerProbe is a planner base-rung unit (the sparse first look).
	LayerProbe = "plan_probe"
	// LayerDensify is a planner unit beyond the base rung (the ladder
	// descending on an undecided clip), or an offline densify-on-demand
	// unit for top-k runs.
	LayerDensify = "densify"
	// LayerHedge counts hedge replicas launched by the resilience layer
	// (extra backend rounds beyond the engine's units).
	LayerHedge = "hedge"
	// LayerRetry counts retry rounds beyond the first attempt.
	LayerRetry = "retry"
	// LayerBatch counts units served through micro-batch flushes.
	LayerBatch = "batch_flush"
)

// Clip decision sources: which machinery settled a clip's outcome.
const (
	// ClipScanAccept / ClipScanReject: the scan-statistic tracker over a
	// densely evaluated pipeline settled the clip.
	ClipScanAccept = "scan_accept"
	ClipScanReject = "scan_reject"
	// ClipPlanAccept / ClipPlanPrune: the adaptive-sampling planner's
	// decision rules settled the clip before (or at) full density.
	ClipPlanAccept = "plan_accept"
	ClipPlanPrune  = "plan_prune"
)

// DefaultTrajectoryCap bounds the retained τ_top / B_lo^K trajectory
// points per profile; beyond it points are counted, not stored.
const DefaultTrajectoryCap = 512

// PredicateProfile aggregates one predicate's outcomes across the
// clips it ran on.
type PredicateProfile struct {
	Name      string `json:"name"`
	Planned   bool   `json:"planned,omitempty"`
	Evaluated int64  `json:"evaluated"` // clips the predicate ran on
	Positive  int64  `json:"positive"`  // clips it judged positive
	Units     int64  `json:"units"`     // detector units charged
	// BaseUnits is the planner base-rung share of Units; Units −
	// BaseUnits went to densification. Zero for dense predicates.
	BaseUnits int64 `json:"base_units,omitempty"`
	// Reasons histograms the planner Decide reason per evaluation.
	Reasons map[string]int64 `json:"reasons,omitempty"`
	// Rungs[r] counts evaluations settled after r+1 ladder rungs.
	Rungs []int64 `json:"rungs,omitempty"`
}

// PlanProfile aggregates the planner across all planned predicates.
type PlanProfile struct {
	Evaluations int64 `json:"evaluations"`
	Accepted    int64 `json:"accepted"`
	Pruned      int64 `json:"pruned"`
	// Densified counts evaluations that went past the base rung.
	Densified int64            `json:"densified"`
	Units     int64            `json:"units"`
	BaseUnits int64            `json:"base_units"`
	Reasons   map[string]int64 `json:"reasons,omitempty"`
	Rungs     []int64          `json:"rungs,omitempty"`
}

// InferProfile is the shared-inference attribution: the delta of
// infer.Stats between query start and finish. Dedup shares are
// attributed to the query whose flight led (leader attribution).
type InferProfile struct {
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	Leaders      int64 `json:"leaders"`
	Coalesced    int64 `json:"coalesced"` // dedup ride-alongs
	Batches      int64 `json:"batches"`
	BatchedUnits int64 `json:"batched_units"`
}

// ResilienceProfile is the resilience attribution: the delta of
// resilience.Stats between query start and finish.
type ResilienceProfile struct {
	Calls            int64   `json:"calls"`
	Errors           int64   `json:"errors"`
	Retries          int64   `json:"retries"`
	Hedges           int64   `json:"hedges"`
	HedgeWins        int64   `json:"hedge_wins"`
	DeadlineExceeded int64   `json:"deadline_exceeded"`
	BreakerRejects   int64   `json:"breaker_rejects"` // shed by the backend breaker
	LabelRejects     int64   `json:"label_rejects"`   // shed by per-label breakers
	Fallbacks        int64   `json:"fallbacks"`       // units served degraded
	DegradedUnits    int     `json:"degraded_units"`
	FallbackHops     []int64 `json:"fallback_hops,omitempty"` // serves per chain hop; last is the prior
}

// TrajPoint is one τ_top / B_lo^K observation of the top-k loop.
type TrajPoint struct {
	Shard  int     `json:"shard,omitempty"`
	Iter   int     `json:"iter"`
	TauTop float64 `json:"tau_top"`
	BLoK   float64 `json:"b_lo_k"`
}

// TopKProfile is the offline top-k section of a profile.
type TopKProfile struct {
	K               int         `json:"k,omitempty"`
	Candidates      int         `json:"candidates"`
	Iterations      int         `json:"iterations"`
	SeqsPruned      int64       `json:"seqs_pruned"`
	ClipsPruned     int64       `json:"clips_pruned"` // clip scores the pruning saved
	ScoreCacheHits  int64       `json:"score_cache_hits"`
	Densified       int64       `json:"densified"` // clips densified on demand
	RandomAccesses  int64       `json:"random_accesses"`
	SortedAccesses  int64       `json:"sorted_accesses"`
	DeadlinePartial bool        `json:"deadline_partial,omitempty"`
	Trajectory      []TrajPoint `json:"trajectory,omitempty"`
	// TrajectoryDropped counts points beyond the retention cap — the
	// trajectory is truncated loudly, never silently.
	TrajectoryDropped int64 `json:"trajectory_dropped,omitempty"`
}

// ShardProfile is one shard process's contribution to a coordinator
// query: the cost attribution of the scatter leg the coordinator sent
// it, taken from the shard's own response (and, when the shard returned
// its EXPLAIN profile inline, its top-k section). The coordinator's
// merged TopK section equals the field-wise sum over these entries
// exactly — the cross-process extension of the engine-counter
// reconciliation invariant.
type ShardProfile struct {
	// Shard is the backend's consistent-hash identity; Addr where the
	// call went.
	Shard string `json:"shard"`
	Addr  string `json:"addr,omitempty"`
	DurUS int64  `json:"dur_us,omitempty"`
	// Hedged marks a leg whose winning response came from a hedge
	// replica; Failed one that returned no results (shard down, shed or
	// breaker-skipped) — its Error says why, and its cost fields are
	// zero (failed legs contribute nothing to the merged totals).
	Hedged bool   `json:"hedged,omitempty"`
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
	// Results is how many ranked entries the shard contributed to the
	// merge (before the global truncation to k).
	Results        int   `json:"results"`
	Candidates     int   `json:"candidates"`
	Iterations     int   `json:"iterations,omitempty"`
	RandomAccesses int64 `json:"random_accesses"`
	SortedAccesses int64 `json:"sorted_accesses,omitempty"`
	SeqsPruned     int64 `json:"seqs_pruned,omitempty"`
	ClipsPruned    int64 `json:"clips_pruned,omitempty"`
	Incomplete     bool  `json:"incomplete,omitempty"`
}

// Profile is one query's assembled EXPLAIN record.
type Profile struct {
	ID       string `json:"id,omitempty"`
	Kind     string `json:"kind"` // "online" | "topk"
	Query    string `json:"query,omitempty"`
	Workload string `json:"workload,omitempty"`
	DurUS    int64  `json:"dur_us,omitempty"`
	// Brownout is the degradation-ladder level in force when the query
	// finished (empty when the server runs without a brownout
	// controller).
	Brownout string `json:"brownout,omitempty"`

	// Clips attributes each settled clip to its decision source.
	Clips map[string]int64 `json:"clips,omitempty"`
	// Invocations attributes detector invocations to layers.
	Invocations map[string]int64 `json:"invocations,omitempty"`

	Predicates []PredicateProfile `json:"predicates,omitempty"`
	Plan       *PlanProfile       `json:"plan,omitempty"`
	Infer      *InferProfile      `json:"infer,omitempty"`
	Resilience *ResilienceProfile `json:"resilience,omitempty"`
	TopK       *TopKProfile       `json:"topk,omitempty"`
	// Shards attributes a coordinator query's cost per shard process
	// (kind "coordinator" only); the TopK section holds the merged
	// totals, which equal the sum over these entries exactly.
	Shards []ShardProfile `json:"shards,omitempty"`
}

// EngineInvocations sums the engine-issued layers — the side of the
// ledger that must equal the engine's own Invocations() exactly.
func (p Profile) EngineInvocations() int64 {
	return p.Invocations[LayerDense] + p.Invocations[LayerProbe] + p.Invocations[LayerDensify]
}

// PredObservation reports one predicate evaluation on one clip.
type PredObservation struct {
	Name     string
	Positive bool
	Planned  bool
	// Units is the detector units charged; BaseUnits the planner
	// base-rung share (0 for dense evaluations).
	Units     int
	BaseUnits int
	// Rungs and Reason describe the planner decision (planned only).
	Rungs  int
	Reason string
}

// Collector accumulates one query's profile. All methods are nil-safe
// no-ops on a nil receiver, and safe for concurrent use (sharded top-k
// runs share one collector across shard goroutines).
type Collector struct {
	mu      sync.Mutex
	p       Profile
	preds   map[string]*PredicateProfile
	order   []string
	trajCap int
}

// NewCollector builds an enabled collector for one query of the given
// kind ("online" or "topk").
func NewCollector(kind string) *Collector {
	return &Collector{
		p: Profile{
			Kind:        kind,
			Clips:       map[string]int64{},
			Invocations: map[string]int64{},
		},
		preds:   map[string]*PredicateProfile{},
		trajCap: DefaultTrajectoryCap,
	}
}

// SetID records the query/session id (correlates /explainz with the
// slow-query log and /tracez root spans).
func (c *Collector) SetID(id string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.p.ID = id
	c.mu.Unlock()
}

// SetQuery records the query text.
func (c *Collector) SetQuery(q string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.p.Query = q
	c.mu.Unlock()
}

// SetWorkload records the workload / video name.
func (c *Collector) SetWorkload(w string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.p.Workload = w
	c.mu.Unlock()
}

// SetBrownout records the brownout ladder level in force at finish.
func (c *Collector) SetBrownout(level string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.p.Brownout = level
	c.mu.Unlock()
}

// SetDurUS records the query wall-clock duration in microseconds.
func (c *Collector) SetDurUS(us int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.p.DurUS = us
	c.mu.Unlock()
}

// ClipOutcome attributes one settled clip to a decision source.
func (c *Collector) ClipOutcome(source string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.p.Clips[source]++
	c.mu.Unlock()
}

// AddUnits attributes n detector invocations to a layer directly
// (the offline densifier path; engine predicates go through
// ObservePredicate).
func (c *Collector) AddUnits(layer string, n int64) {
	if c == nil || n == 0 {
		return
	}
	c.mu.Lock()
	c.p.Invocations[layer] += n
	c.mu.Unlock()
}

// ObservePredicate folds one predicate evaluation into the profile:
// the per-predicate aggregate, the invocation layers, and — for
// planned evaluations — the planner aggregate.
func (c *Collector) ObservePredicate(o PredObservation) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	pp := c.preds[o.Name]
	if pp == nil {
		pp = &PredicateProfile{Name: o.Name, Planned: o.Planned}
		c.preds[o.Name] = pp
		c.order = append(c.order, o.Name)
	}
	pp.Evaluated++
	if o.Positive {
		pp.Positive++
	}
	pp.Units += int64(o.Units)
	if !o.Planned {
		c.p.Invocations[LayerDense] += int64(o.Units)
		return
	}
	pp.BaseUnits += int64(o.BaseUnits)
	if o.Reason != "" {
		if pp.Reasons == nil {
			pp.Reasons = map[string]int64{}
		}
		pp.Reasons[o.Reason]++
	}
	if o.Rungs > 0 {
		for len(pp.Rungs) < o.Rungs {
			pp.Rungs = append(pp.Rungs, 0)
		}
		pp.Rungs[o.Rungs-1]++
	}
	c.p.Invocations[LayerProbe] += int64(o.BaseUnits)
	c.p.Invocations[LayerDensify] += int64(o.Units - o.BaseUnits)
	if c.p.Plan == nil {
		c.p.Plan = &PlanProfile{}
	}
	pl := c.p.Plan
	pl.Evaluations++
	pl.Units += int64(o.Units)
	pl.BaseUnits += int64(o.BaseUnits)
	if o.Units > o.BaseUnits {
		pl.Densified++
	}
	if o.Positive {
		pl.Accepted++
	} else {
		pl.Pruned++
	}
	if o.Reason != "" {
		if pl.Reasons == nil {
			pl.Reasons = map[string]int64{}
		}
		pl.Reasons[o.Reason]++
	}
	if o.Rungs > 0 {
		for len(pl.Rungs) < o.Rungs {
			pl.Rungs = append(pl.Rungs, 0)
		}
		pl.Rungs[o.Rungs-1]++
	}
}

// SetInfer records the shared-inference delta for this query and
// attributes the batched units to the batch_flush layer. Call once,
// at query finish.
func (c *Collector) SetInfer(d InferProfile) {
	if c == nil {
		return
	}
	c.mu.Lock()
	cp := d
	c.p.Infer = &cp
	if d.BatchedUnits > 0 {
		c.p.Invocations[LayerBatch] += d.BatchedUnits
	}
	c.mu.Unlock()
}

// SetResilience records the resilience delta for this query and
// attributes hedge replicas and retry rounds to their layers. Call
// once, at query finish.
func (c *Collector) SetResilience(d ResilienceProfile) {
	if c == nil {
		return
	}
	c.mu.Lock()
	cp := d
	cp.FallbackHops = append([]int64(nil), d.FallbackHops...)
	c.p.Resilience = &cp
	if d.Hedges > 0 {
		c.p.Invocations[LayerHedge] += d.Hedges
	}
	if d.Retries > 0 {
		c.p.Invocations[LayerRetry] += d.Retries
	}
	c.mu.Unlock()
}

// topk returns the top-k section, creating it on first use. Callers
// hold c.mu.
func (c *Collector) topk() *TopKProfile {
	if c.p.TopK == nil {
		c.p.TopK = &TopKProfile{}
	}
	return c.p.TopK
}

// TopKConfigure records the requested k.
func (c *Collector) TopKConfigure(k int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.topk().K = k
	c.mu.Unlock()
}

// TopKIteration appends one τ_top / B_lo^K trajectory point, up to the
// retention cap; points beyond it are counted in TrajectoryDropped.
func (c *Collector) TopKIteration(shard, iter int, tauTop, bLoK float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	tk := c.topk()
	if len(tk.Trajectory) < c.trajCap {
		tk.Trajectory = append(tk.Trajectory, TrajPoint{Shard: shard, Iter: iter, TauTop: tauTop, BLoK: bLoK})
	} else {
		tk.TrajectoryDropped++
	}
	c.mu.Unlock()
}

// TopKSeqPruned records one candidate sequence pruned by the B_lo^K
// bound, saving clips clip scores.
func (c *Collector) TopKSeqPruned(clips int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	tk := c.topk()
	tk.SeqsPruned++
	tk.ClipsPruned += int64(clips)
	c.mu.Unlock()
}

// TopKScoreCacheHit records one random access served from the
// clip-score cache.
func (c *Collector) TopKScoreCacheHit() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.topk().ScoreCacheHits++
	c.mu.Unlock()
}

// TopKDensified records one clip densified on demand.
func (c *Collector) TopKDensified() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.topk().Densified++
	c.mu.Unlock()
}

// TopKPartial marks the run as cut short by its deadline.
func (c *Collector) TopKPartial() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.topk().DeadlinePartial = true
	c.mu.Unlock()
}

// TopKFinish folds one top-k execution's totals in (called once per
// shard; sharded runs accumulate, mirroring rvaq.Stats.Merge).
func (c *Collector) TopKFinish(candidates, iterations int, randomAccesses, sortedAccesses int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	tk := c.topk()
	tk.Candidates += candidates
	tk.Iterations += iterations
	tk.RandomAccesses += randomAccesses
	tk.SortedAccesses += sortedAccesses
	c.mu.Unlock()
}

// AddShard appends one shard's attribution to a coordinator profile
// and folds its cost fields into the merged TopK section, so the
// section stays the exact field-wise sum over the shard entries.
// Failed legs are recorded but contribute no cost.
func (c *Collector) AddShard(sp ShardProfile) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.p.Shards = append(c.p.Shards, sp)
	tk := c.topk()
	tk.Candidates += sp.Candidates
	tk.Iterations += sp.Iterations
	tk.RandomAccesses += sp.RandomAccesses
	tk.SortedAccesses += sp.SortedAccesses
	tk.SeqsPruned += sp.SeqsPruned
	tk.ClipsPruned += sp.ClipsPruned
	c.mu.Unlock()
}

// Profile snapshots the collected profile. The returned value shares
// nothing with the collector and is safe to retain and serialize.
func (c *Collector) Profile() Profile {
	if c == nil {
		return Profile{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.p
	p.Clips = copyMap(c.p.Clips)
	p.Invocations = copyMap(c.p.Invocations)
	if len(c.order) > 0 {
		p.Predicates = make([]PredicateProfile, 0, len(c.order))
		for _, name := range c.order {
			pp := *c.preds[name]
			pp.Reasons = copyMap(pp.Reasons)
			pp.Rungs = append([]int64(nil), pp.Rungs...)
			p.Predicates = append(p.Predicates, pp)
		}
	}
	if c.p.Plan != nil {
		pl := *c.p.Plan
		pl.Reasons = copyMap(pl.Reasons)
		pl.Rungs = append([]int64(nil), pl.Rungs...)
		p.Plan = &pl
	}
	if c.p.Infer != nil {
		in := *c.p.Infer
		p.Infer = &in
	}
	if c.p.Resilience != nil {
		rs := *c.p.Resilience
		rs.FallbackHops = append([]int64(nil), rs.FallbackHops...)
		p.Resilience = &rs
	}
	if c.p.TopK != nil {
		tk := *c.p.TopK
		tk.Trajectory = append([]TrajPoint(nil), tk.Trajectory...)
		p.TopK = &tk
	}
	p.Shards = append([]ShardProfile(nil), c.p.Shards...)
	return p
}

// copyMap clones a counter map, mapping empty to nil so omitempty
// drops untouched sections from the JSON.
func copyMap(m map[string]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
