package explain

import "sync"

// Ring retains the last N query profiles — the GET /explainz payload.
// A nil *Ring is a valid, disabled ring.
type Ring struct {
	mu     sync.Mutex
	buf    []Profile
	next   int
	filled bool
	total  int64
}

// NewRing builds a ring retaining up to n profiles; n <= 0 returns a
// nil (disabled) ring.
func NewRing(n int) *Ring {
	if n <= 0 {
		return nil
	}
	return &Ring{buf: make([]Profile, 0, n)}
}

// Add retains one finished profile, evicting the oldest when full.
func (r *Ring) Add(p Profile) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, p)
	} else {
		r.buf[r.next] = p
		r.next = (r.next + 1) % cap(r.buf)
		r.filled = true
	}
	r.total++
	r.mu.Unlock()
}

// Total reports how many profiles were ever added (retained or
// evicted).
func (r *Ring) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained profiles, most recent first.
func (r *Ring) Snapshot() []Profile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Profile, 0, len(r.buf))
	if r.filled {
		for i := 0; i < len(r.buf); i++ {
			out = append(out, r.buf[(r.next-1-i+len(r.buf))%len(r.buf)])
		}
	} else {
		for i := len(r.buf) - 1; i >= 0; i-- {
			out = append(out, r.buf[i])
		}
	}
	return out
}
