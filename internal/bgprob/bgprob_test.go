package bgprob

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0.1); err == nil {
		t.Error("u=0: want error")
	}
	if _, err := New(-5, 0.1); err == nil {
		t.Error("u<0: want error")
	}
	if _, err := New(100, -0.1); err == nil {
		t.Error("p0<0: want error")
	}
	if _, err := New(100, 1.1); err == nil {
		t.Error("p0>1: want error")
	}
	if _, err := New(100, 0.5); err != nil {
		t.Errorf("valid args rejected: %v", err)
	}
}

func TestPriorReturnedBeforeObservations(t *testing.T) {
	e, _ := New(500, 0.123)
	if got := e.P(); got != 0.123 {
		t.Fatalf("P() before observations = %v, want prior", got)
	}
}

// The estimator must be (approximately) unbiased for a constant
// background rate: the edge-corrected estimate averaged over many
// independent runs should converge to the true p.
func TestUnbiasedUnderConstantRate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const p = 0.07
	const runs = 300
	const steps = 2000
	sum := 0.0
	for r := 0; r < runs; r++ {
		e, _ := New(400, 0.5)
		for i := 0; i < steps; i++ {
			e.Observe(rng.Float64() < p)
		}
		sum += e.P()
	}
	mean := sum / runs
	if math.Abs(mean-p) > 0.01 {
		t.Fatalf("mean estimate %v far from true p=%v", mean, p)
	}
}

// A sudden change of the background rate must be tracked within a few
// kernel scales, while the prior's influence disappears.
func TestTracksSuddenChange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	e, _ := New(200, 0.9) // wildly wrong prior
	for i := 0; i < 3000; i++ {
		e.Observe(rng.Float64() < 0.02)
	}
	low := e.P()
	if math.Abs(low-0.02) > 0.02 {
		t.Fatalf("after low phase P=%v, want near 0.02", low)
	}
	for i := 0; i < 3000; i++ {
		e.Observe(rng.Float64() < 0.30)
	}
	high := e.P()
	if math.Abs(high-0.30) > 0.07 {
		t.Fatalf("after high phase P=%v, want near 0.30", high)
	}
}

func TestPRangeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	e, _ := New(50, 0.5)
	for i := 0; i < 5000; i++ {
		e.Observe(rng.Float64() < 0.5)
		if p := e.P(); p < 0 || p > 1 {
			t.Fatalf("P out of range at step %d: %v", i, p)
		}
	}
}

func TestAllEventsDrivesPToOne(t *testing.T) {
	e, _ := New(100, 0.1)
	for i := 0; i < 2000; i++ {
		e.Observe(true)
	}
	if p := e.P(); math.Abs(p-1) > 1e-6 {
		t.Fatalf("P after all events = %v, want 1", p)
	}
}

func TestNoEventsDrivesPToZero(t *testing.T) {
	e, _ := New(100, 0.9)
	for i := 0; i < 2000; i++ {
		e.Observe(false)
	}
	if p := e.P(); p != 0 {
		t.Fatalf("P after no events = %v, want 0", p)
	}
}

func TestObserveRunMatchesEventCount(t *testing.T) {
	a, _ := New(300, 0.1)
	a.ObserveRun(50, 10)
	if a.Units() != 50 {
		t.Fatalf("Units = %d, want 50", a.Units())
	}
	// The run-based estimate should land near 10/50 = 0.2.
	if p := a.P(); math.Abs(p-0.2) > 0.05 {
		t.Fatalf("P after run = %v, want near 0.2", p)
	}
}

func TestObserveRunClampsEvents(t *testing.T) {
	e, _ := New(300, 0.1)
	e.ObserveRun(10, 50) // more events than units: clamp to 10
	if p := e.P(); math.Abs(p-1) > 1e-6 {
		t.Fatalf("P = %v, want 1 when events saturate the run", p)
	}
	e.ObserveRun(0, 5) // no-op
	if e.Units() != 10 {
		t.Fatalf("Units changed by empty run: %d", e.Units())
	}
	e.ObserveRun(5, -3) // negative clamped to 0
	if e.Units() != 15 {
		t.Fatalf("Units = %d, want 15", e.Units())
	}
}

func TestReset(t *testing.T) {
	e, _ := New(100, 0.25)
	for i := 0; i < 100; i++ {
		e.Observe(true)
	}
	e.Reset()
	if e.Units() != 0 {
		t.Fatalf("Units after Reset = %d", e.Units())
	}
	if e.P() != 0.25 {
		t.Fatalf("P after Reset = %v, want prior", e.P())
	}
}

func TestString(t *testing.T) {
	e, _ := New(100, 0.25)
	if e.String() == "" {
		t.Error("String empty")
	}
}
