// Package bgprob implements the dynamic background-probability estimator
// of §3.3 (Equation 6): a kernel-smoothed estimate of the per-occurrence-
// unit event probability p(t), updated online with an exponential kernel
// and edge correction so that the estimator is unbiased when the true
// background probability is constant.
//
// Internally the estimator keeps a decayed event mass
//
//	D(t) = Σ_n exp(−(t−t_n)/u)
//
// over the event times t_n seen so far, which admits an O(1) update per
// occurrence unit: D(t+1) = D(t)·e^(−1/u) + 1{event at t+1}. The edge
// correction divides by the decayed mass a constant-rate process would
// accumulate over the t units observed so far,
//
//	Σ_{j=1}^{t} exp(−(t−j)/u) = (1 − e^(−t/u)) / (1 − e^(−1/u)),
//
// yielding p̂(t) = D(t)·(1 − e^(−1/u)) / (1 − e^(−t/u)), whose
// expectation equals the true p for i.i.d. Bernoulli(p) events (the
// unbiasedness property Equation 6 establishes). Sudden changes of the
// background rate are tracked on the time scale u, while gradual drift
// is absorbed smoothly.
package bgprob

import (
	"fmt"
	"math"
)

// Estimator tracks the background probability of one event type (one
// object predicate or the action predicate). The zero value is not
// usable; construct with New.
type Estimator struct {
	u     float64 // kernel scale in occurrence units
	decay float64 // e^(−1/u), applied per occurrence unit
	mass  float64 // decayed event mass D(t)
	t     int     // occurrence units observed so far
	prior float64 // initial probability returned before any observations
}

// New returns an estimator with kernel scale u (in occurrence units) and
// the given initial background probability p0. The initial probability
// only matters until observations accumulate; §3.3's point is precisely
// that its influence vanishes.
func New(u float64, p0 float64) (*Estimator, error) {
	if !(u > 0) {
		return nil, fmt.Errorf("bgprob: kernel scale u must be positive, got %v", u)
	}
	if !(p0 >= 0 && p0 <= 1) {
		return nil, fmt.Errorf("bgprob: initial probability %v outside [0,1]", p0)
	}
	return &Estimator{u: u, decay: math.Exp(-1 / u), prior: p0}, nil
}

// Observe advances the estimator by one occurrence unit carrying the
// given event indicator (object detected on the frame / action predicted
// on the shot).
func (e *Estimator) Observe(event bool) {
	e.mass *= e.decay
	if event {
		e.mass++
	}
	e.t++
}

// ObserveRun advances the estimator by n occurrence units of which the
// given count carried events, spreading the events uniformly over the
// run. It is used when the caller processes a whole clip at a time
// (Algorithm 3 updates after each clip).
func (e *Estimator) ObserveRun(n, events int) {
	if n <= 0 {
		return
	}
	if events < 0 {
		events = 0
	}
	if events > n {
		events = n
	}
	// Spread events as evenly as possible across the run so the decayed
	// mass matches a uniform arrival pattern.
	placed := 0
	for i := 1; i <= n; i++ {
		want := (events*i + n - 1) / n // ceil(events*i/n)
		e.Observe(want > placed)
		if want > placed {
			placed++
		}
	}
}

// P returns the current estimate p̂(t) with edge correction. Before any
// observation it returns the initial probability.
func (e *Estimator) P() float64 {
	if e.t == 0 {
		return e.prior
	}
	denom := 1 - math.Exp(-float64(e.t)/e.u)
	if denom <= 0 {
		return e.prior
	}
	p := e.mass * (1 - e.decay) / denom
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	}
	return p
}

// Units returns the number of occurrence units observed so far.
func (e *Estimator) Units() int { return e.t }

// Reset discards all observations, keeping the kernel scale and prior.
func (e *Estimator) Reset() {
	e.mass = 0
	e.t = 0
}

func (e *Estimator) String() string {
	return fmt.Sprintf("bgprob(u=%.0f, t=%d, p=%.6f)", e.u, e.t, e.P())
}
