package bgprob

import "testing"

// BenchmarkObserve measures the per-occurrence-unit estimator update —
// SVAQD pays this once per frame per predicate.
func BenchmarkObserve(b *testing.B) {
	e, err := New(4000, 1e-4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		e.Observe(i%97 == 0)
	}
}

func BenchmarkObserveRun(b *testing.B) {
	e, err := New(4000, 1e-4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		e.ObserveRun(50, 2)
	}
}

func BenchmarkP(b *testing.B) {
	e, _ := New(4000, 1e-4)
	for i := 0; i < 1000; i++ {
		e.Observe(i%31 == 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.P()
	}
}
