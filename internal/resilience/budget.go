package resilience

import (
	"sort"
	"sync"
	"time"
)

// AdaptiveBudget shrinks retry budgets as serving load rises, so
// resilience spending stops amplifying overload: retries are worth
// burning when workers are idle and poison when requests already queue.
// It tracks the p90 queue wait of the shared worker pool over a short
// sliding window — the same signal the daemon's shed window uses — and
// scales the effective retry count linearly down to zero as that p90
// approaches the configured threshold:
//
//	retries(max) = ⌊max · (1 − min(1, p90/threshold))⌋
//
// Cold pool → the full budget; at or past the threshold → no retries
// at all (first attempt then straight to the fallback chain). All
// methods are nil-safe: a nil budget never trims.
type AdaptiveBudget struct {
	threshold time.Duration
	now       func() time.Time // seam for tests

	mu   sync.Mutex
	ring [budgetSamples]budgetSample
	n    int // filled entries
	next int
}

type budgetSample struct {
	when time.Time
	wait time.Duration
}

const (
	budgetSamples    = 256
	budgetSpan       = 10 * time.Second
	budgetMinSamples = 8
)

// NewAdaptiveBudget returns a budget that starts trimming as the p90
// pool wait warms toward threshold; threshold <= 0 disables trimming.
func NewAdaptiveBudget(threshold time.Duration) *AdaptiveBudget {
	return &AdaptiveBudget{threshold: threshold, now: time.Now}
}

// Observe records one queue wait; hook it to pool.SetObserver (the
// daemon composes it with the shed window's observer).
func (b *AdaptiveBudget) Observe(wait time.Duration) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.ring[b.next] = budgetSample{when: b.now(), wait: wait}
	b.next = (b.next + 1) % budgetSamples
	if b.n < budgetSamples {
		b.n++
	}
	b.mu.Unlock()
}

// Retries maps the current heat to an effective retry count for a
// policy allowing max; with too few fresh samples (a cold or idle
// pool) the full budget stands.
func (b *AdaptiveBudget) Retries(max int) int {
	if b == nil || b.threshold <= 0 || max <= 0 {
		return max
	}
	p90, ok := b.p90()
	if !ok {
		return max
	}
	heat := float64(p90) / float64(b.threshold)
	if heat >= 1 {
		return 0
	}
	if heat < 0 {
		heat = 0
	}
	return int(float64(max) * (1 - heat))
}

// p90 computes the 90th-percentile wait over fresh samples.
func (b *AdaptiveBudget) p90() (time.Duration, bool) {
	cutoff := b.now().Add(-budgetSpan)
	b.mu.Lock()
	fresh := make([]time.Duration, 0, b.n)
	for i := 0; i < b.n; i++ {
		if s := b.ring[i]; s.when.After(cutoff) {
			fresh = append(fresh, s.wait)
		}
	}
	b.mu.Unlock()
	if len(fresh) < budgetMinSamples {
		return 0, false
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
	return fresh[len(fresh)*9/10], true
}
