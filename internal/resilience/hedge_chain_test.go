package resilience_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/fault"
	"vaq/internal/resilience"
	"vaq/internal/video"
)

// hedgeAwareObject is slow on frames at or past slowFrom — but only
// for the primary racer (Replica 0); a hedge replica answers
// immediately. That makes a hedge win deterministic once hedging arms.
type hedgeAwareObject struct {
	slowFrom video.FrameIdx
	delay    time.Duration
	calls    atomic.Int64
}

func (h *hedgeAwareObject) Name() string { return "hedge-aware" }

func (h *hedgeAwareObject) DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, error) {
	h.calls.Add(1)
	if c, ok := fault.CallFrom(ctx); v >= h.slowFrom && (!ok || c.Replica == 0) {
		select {
		case <-time.After(h.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, nil
}

// TestHedgeRacesSlowPrimary covers the hedged-request round: before
// enough samples exist no replica launches; once armed, a primary that
// outlives the observed quantile is raced, the replica's fast answer
// decides the round, and nothing is counted degraded.
func TestHedgeRacesSlowPrimary(t *testing.T) {
	backend := &hedgeAwareObject{slowFrom: 1000, delay: 20 * time.Millisecond}
	pol := resilience.Policy{Seed: 1, HedgeQuantile: 0.9, HedgeMinSamples: 8}
	det := resilience.NewDetector(backend, pol, resilience.Options{})

	// Unarmed: the very first slow call must not hedge (no samples).
	cold := resilience.NewDetector(&hedgeAwareObject{slowFrom: 0, delay: time.Millisecond}, pol, resilience.Options{})
	cold.Detect(0, labels)
	if st := cold.Stats(); st.Hedges != 0 {
		t.Errorf("cold wrapper hedged %d times before HedgeMinSamples", st.Hedges)
	}

	// Warm the latency sketch with fast units, then hit a slow one.
	for i := 0; i < 20; i++ {
		det.Detect(video.FrameIdx(i), labels)
	}
	det.Detect(2000, labels)
	st := det.Stats()
	if st.Hedges != 1 {
		t.Fatalf("slow primary launched %d hedges, want 1", st.Hedges)
	}
	if st.HedgeWins != 1 {
		t.Errorf("hedge replica won %d rounds, want 1 (replica answers in µs, primary sleeps %v)",
			st.HedgeWins, backend.delay)
	}
	if st.Fallbacks != 0 || st.Errors != 0 {
		t.Errorf("hedged round recorded failures: %+v", st)
	}
	if det.Name() != "hedge-aware" {
		t.Errorf("Name() = %q", det.Name())
	}
}

// failingAction always errors; the recognizer-side dead backend.
type failingAction struct{}

func (failingAction) Name() string { return "dead-act" }

func (failingAction) RecognizeCtx(context.Context, video.ShotIdx, []annot.Label) ([]detect.ActionScore, error) {
	return nil, errors.New("recognizer down")
}

// TestRecognizerFallbackChainHops covers the action-side chain walk: a
// dead first hop passes the unit on, a healthy second hop serves it
// (hop 2), and with every hop dead the prior closes the chain
// (hop len(chain)+1).
func TestRecognizerFallbackChainHops(t *testing.T) {
	scene, q := testScene(7)
	healthyHop := detect.AsFallibleAction(detect.NewSimActionRecognizer(scene, detect.I3D, nil))
	actLabels := []annot.Label{q.Action}

	rec := resilience.NewRecognizer(failingAction{}, fastPolicy(0), resilience.Options{
		FallbackActions: []detect.FallibleActionRecognizer{failingAction{}, healthyHop},
	})
	if _, degraded := rec.RecognizeCtx(context.Background(), 5, actLabels); !degraded {
		t.Fatal("dead primary not reported degraded")
	}
	if hops := rec.DegradedHops(); hops[5] != 2 {
		t.Errorf("shot 5 served by hop %d, want 2 (first hop is dead)", hops[5])
	}
	st := rec.Stats()
	if want := []int64{0, 1}; len(st.FallbackHops) != 2 || st.FallbackHops[0] != want[0] || st.FallbackHops[1] != want[1] {
		t.Errorf("FallbackHops = %v, want %v", st.FallbackHops, want)
	}
	if rec.Name() != "dead-act" {
		t.Errorf("Name() = %q", rec.Name())
	}
	if rec.Breaker() == nil {
		t.Error("Breaker() accessor returned nil")
	}
	if b := rec.LabelBreaker(q.Action); b != nil {
		t.Error("LabelBreaker non-nil with the per-label policy off")
	}

	// All hops dead: the prior sampler answers as hop len(chain)+1,
	// and the infallible interface still returns scores for every label.
	allDead := resilience.NewRecognizer(failingAction{}, fastPolicy(0), resilience.Options{
		FallbackActions: []detect.FallibleActionRecognizer{failingAction{}},
	})
	scores := allDead.Recognize(9, actLabels)
	if len(scores) != len(actLabels) {
		t.Fatalf("prior served %d scores for %d labels", len(scores), len(actLabels))
	}
	if hops := allDead.DegradedHops(); hops[9] != 2 {
		t.Errorf("shot 9 served by hop %d, want 2 (the prior past one dead hop)", hops[9])
	}
	m := resilience.WrapFallible(&hedgeAwareObject{slowFrom: 1 << 30}, failingAction{}, fastPolicy(0), resilience.Options{})
	m.Rec.Recognize(1, actLabels)
	if !m.Degraded() {
		t.Error("Models.Degraded() false after a degraded recognizer serve")
	}
}
