package resilience

import (
	"testing"
	"time"
)

// TestAdaptiveBudgetNilAndDisabled pins the nil-safety contract: a nil
// budget, a zero threshold, and a non-positive max all leave the
// static budget untouched.
func TestAdaptiveBudgetNilAndDisabled(t *testing.T) {
	var nilB *AdaptiveBudget
	nilB.Observe(time.Second)
	if got := nilB.Retries(3); got != 3 {
		t.Errorf("nil budget Retries(3) = %d, want 3", got)
	}
	off := NewAdaptiveBudget(0)
	off.Observe(time.Second)
	if got := off.Retries(3); got != 3 {
		t.Errorf("disabled budget Retries(3) = %d, want 3", got)
	}
	b := NewAdaptiveBudget(time.Second)
	if got := b.Retries(0); got != 0 {
		t.Errorf("Retries(0) = %d, want 0", got)
	}
}

// TestAdaptiveBudgetTrimsWithHeat walks the formula
// retries(max) = ⌊max·(1 − min(1, p90/threshold))⌋ through its
// regimes: cold pool (full budget), saturated (zero), stale samples
// (full again), half heat (half budget).
func TestAdaptiveBudgetTrimsWithHeat(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := NewAdaptiveBudget(100 * time.Millisecond)
	b.now = func() time.Time { return clock }

	// Fewer than budgetMinSamples fresh observations: full budget.
	for i := 0; i < budgetMinSamples-1; i++ {
		b.Observe(100 * time.Millisecond)
	}
	if got := b.Retries(4); got != 4 {
		t.Errorf("cold budget Retries(4) = %d, want 4", got)
	}

	// p90 past the threshold: no retries at all.
	for i := 0; i < 16; i++ {
		b.Observe(150 * time.Millisecond)
	}
	if got := b.Retries(4); got != 0 {
		t.Errorf("saturated budget Retries(4) = %d, want 0", got)
	}

	// Everything ages out of the sliding window: full budget again.
	clock = clock.Add(budgetSpan + time.Second)
	if got := b.Retries(4); got != 4 {
		t.Errorf("stale-window Retries(4) = %d, want 4", got)
	}

	// p90 at half the threshold: half the budget.
	for i := 0; i < 16; i++ {
		b.Observe(50 * time.Millisecond)
	}
	if got := b.Retries(4); got != 2 {
		t.Errorf("half-heat Retries(4) = %d, want 2", got)
	}
}

// TestAdaptiveBudgetRingWraps overfills the ring: the sample count
// saturates at the ring size and the newest samples still dominate.
func TestAdaptiveBudgetRingWraps(t *testing.T) {
	b := NewAdaptiveBudget(time.Millisecond)
	for i := 0; i < budgetSamples+50; i++ {
		b.Observe(2 * time.Millisecond)
	}
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	if n != budgetSamples {
		t.Errorf("ring holds %d samples after overfill, want %d", n, budgetSamples)
	}
	if got := b.Retries(5); got != 0 {
		t.Errorf("overfilled hot budget Retries(5) = %d, want 0", got)
	}
}
