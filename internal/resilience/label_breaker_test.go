package resilience_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/resilience"
	"vaq/internal/video"
)

// labelSensitiveObject fails calls carrying the bad label until healed,
// and serves everything else from the sim detector. It also counts the
// good-label calls that actually reached the backend, so the test can
// prove the sibling label was never shed.
type labelSensitiveObject struct {
	inner     detect.FallibleObjectDetector
	good, bad annot.Label
	healthy   atomic.Bool
	goodCalls atomic.Int64
}

func (l *labelSensitiveObject) Name() string { return "label-sensitive" }

func (l *labelSensitiveObject) DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, error) {
	for _, lb := range labels {
		if lb == l.bad && !l.healthy.Load() {
			return nil, errors.New("bad-label model down")
		}
	}
	for _, lb := range labels {
		if lb == l.good {
			l.goodCalls.Add(1)
		}
	}
	return l.inner.DetectCtx(ctx, v, labels)
}

// TestLabelBreakerIsolatesAndRecovers is the per-label breaker race
// test: one label's backend path dies and its breaker opens, the
// sibling label keeps flowing to the backend through the entire episode
// (never shed), and once the backend heals the half-open probe
// re-closes the circuit exactly once — Opens stays 1 under N racing
// goroutines. Run under -race.
func TestLabelBreakerIsolatesAndRecovers(t *testing.T) {
	scene, _ := testScene(7)
	lb := &labelSensitiveObject{
		inner: detect.AsFallibleObject(detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)),
		good:  "car",
		bad:   "person",
	}
	pol := resilience.Policy{
		Seed:            99,
		BreakerFailures: 3,
		BreakerCooldown: 50 * time.Millisecond,
		LabelBreaker:    true,
	}
	det := resilience.NewDetector(lb, pol, resilience.Options{})
	good, bad := annot.Label("car"), annot.Label("person")
	var goodIssued atomic.Int64

	// Phase 1, serial: drive the bad label to its threshold with good
	// successes interleaved, so the backend-wide breaker's consecutive
	// run never reaches threshold — only the label circuit opens.
	for i := 0; i < pol.BreakerFailures; i++ {
		det.Detect(video.FrameIdx(i), []annot.Label{bad})
		det.Detect(video.FrameIdx(i), []annot.Label{good})
		goodIssued.Add(1)
	}
	if got := det.LabelBreaker(bad).State(); got != resilience.StateOpen {
		t.Fatalf("bad-label breaker %v after %d failures, want open", got, pol.BreakerFailures)
	}
	if got := det.Breaker().Opens(); got != 0 {
		t.Fatalf("backend breaker opened %d times; label faults must stay on the label circuit", got)
	}

	// Phase 2, racing: the backend heals, then N goroutines hammer both
	// labels. The bad label sheds to the prior until the cooldown
	// elapses; then a single half-open probe re-closes the circuit.
	lb.healthy.Store(true)
	// One deterministic shed while the circuit is surely still inside
	// its 50ms cooldown.
	det.Detect(video.FrameIdx(500), []annot.Label{bad})

	var wg sync.WaitGroup
	deadline := time.Now().Add(5 * time.Second)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				f := video.FrameIdx(1000 + g*100000 + i)
				det.Detect(f, []annot.Label{good})
				goodIssued.Add(1)
				det.Detect(f, []annot.Label{bad})
				if det.LabelBreaker(bad).State() == resilience.StateClosed || time.Now().After(deadline) {
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if got := det.LabelBreaker(bad).State(); got != resilience.StateClosed {
		t.Fatalf("bad-label breaker %v after the backend healed, want closed", got)
	}
	if got := det.LabelBreaker(bad).Opens(); got != 1 {
		t.Errorf("bad-label breaker opened %d times, want exactly 1 (no probe may have failed)", got)
	}
	if b := det.LabelBreaker(good); b.Opens() != 0 || b.State() != resilience.StateClosed {
		t.Errorf("good-label breaker opens=%d state=%v, want untouched and closed", b.Opens(), b.State())
	}
	if got := det.Breaker().Opens(); got != 0 {
		t.Errorf("backend breaker opened %d times during a single-label episode", got)
	}
	// Every good call the test issued reached the backend: the sibling
	// was never shed, neither by the label circuits nor the backend one.
	if issued, reached := goodIssued.Load(), lb.goodCalls.Load(); reached != issued {
		t.Errorf("good label reached the backend %d/%d times; sibling must never shed", reached, issued)
	}

	st := det.Stats()
	if st.LabelBreakerOpens != 1 {
		t.Errorf("stats LabelBreakerOpens = %d, want 1", st.LabelBreakerOpens)
	}
	if st.LabelRejects == 0 {
		t.Error("stats LabelRejects = 0; the open circuit shed no calls")
	}
	if st.Fallbacks == 0 || st.DegradedUnits == 0 {
		t.Errorf("shed calls did not degrade to the prior: %+v", st)
	}
	// No chain configured: every degraded unit was served by the prior,
	// hop 1.
	for unit, hop := range det.DegradedHops() {
		if hop != 1 {
			t.Errorf("unit %d served by hop %d, want 1 (prior)", unit, hop)
		}
	}
}
