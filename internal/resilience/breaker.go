package resilience

import (
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int32

const (
	// StateClosed — traffic flows; consecutive failures are counted.
	StateClosed State = iota
	// StateOpen — traffic is rejected until the cooldown elapses.
	StateOpen
	// StateHalfOpen — one probe call is in flight; its outcome decides
	// whether the circuit closes again or re-opens.
	StateHalfOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-backend circuit breaker: after a run of consecutive
// failures it opens, rejecting calls outright (so a dead backend costs
// nothing instead of a deadline per call); after a cooldown it admits a
// single half-open probe, and only a successful probe closes the
// circuit again. Safe for concurrent use.
//
// The caller contract is Allow → call → Success/Failure. Calls rejected
// by Allow must not be reported.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // seam for tests

	mu       sync.Mutex
	state    State
	consec   int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
	opens    int64     // times the circuit has opened (monotonic)
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and admits a probe after cooldown. A threshold
// <= 0 disables the breaker (Allow always admits).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a call may proceed, transitioning open →
// half-open when the cooldown has elapsed (the admitted call is the
// probe).
func (b *Breaker) Allow() bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = StateHalfOpen
		b.probing = true
		return true
	default: // half-open: single probe already in flight
		return false
	}
}

// Success reports a successful call: resets the failure run and closes
// the circuit (a successful half-open probe heals the backend).
func (b *Breaker) Success() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.consec = 0
	b.state = StateClosed
	b.probing = false
	b.mu.Unlock()
}

// Failure reports a failed call. While closed it extends the failure
// run, opening at the threshold; a failed half-open probe re-opens
// immediately and restarts the cooldown.
func (b *Breaker) Failure() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateHalfOpen:
		b.open()
	case StateClosed:
		b.consec++
		if b.consec >= b.threshold {
			b.open()
		}
	}
}

// open transitions to StateOpen; callers hold b.mu.
func (b *Breaker) open() {
	b.state = StateOpen
	b.openedAt = b.now()
	b.probing = false
	b.consec = 0
	b.opens++
}

// State returns the current position.
func (b *Breaker) State() State {
	if b == nil || b.threshold <= 0 {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// worseState orders breaker states by severity (open > half-open >
// closed) and returns the worse of the two.
func worseState(a, b State) State {
	if rank := func(s State) int {
		switch s {
		case StateOpen:
			return 2
		case StateHalfOpen:
			return 1
		}
		return 0
	}; rank(b) > rank(a) {
		return b
	}
	return a
}

// Opens returns how many times the circuit has opened.
func (b *Breaker) Opens() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
