package resilience_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/resilience"
	"vaq/internal/video"
)

// modeStack builds a healthy primary with one healthy chain hop (the
// cheaper YOLOv3 profile), sharing one ModeVar across both wrappers —
// the shape the server's brownout controller drives.
func modeStack(seed int64, mode *resilience.ModeVar) (*resilience.Models, annot.Query) {
	scene, q := testScene(seed)
	opt := resilience.Options{
		Mode: mode,
		FallbackObjects: []detect.FallibleObjectDetector{
			detect.AsFallibleObject(detect.NewSimObjectDetector(scene, detect.YOLOv3, nil)),
		},
		FallbackActions: []detect.FallibleActionRecognizer{
			detect.AsFallibleAction(detect.NewSimActionRecognizer(scene, detect.I3D, nil)),
		},
	}
	m := resilience.WrapFallible(
		detect.AsFallibleObject(detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)),
		detect.AsFallibleAction(detect.NewSimActionRecognizer(scene, detect.I3D, nil)),
		fastPolicy(0), opt)
	return m, q
}

// TestModeCheapServesChainHopOne pins the cheap-profile posture: every
// unit skips the healthy primary and is served by chain hop 1,
// recorded as degraded.
func TestModeCheapServesChainHopOne(t *testing.T) {
	mode := &resilience.ModeVar{}
	mode.Set(resilience.ModeCheap)
	m, q := modeStack(7, mode)
	actLabels := []annot.Label{q.Action}

	for i := 0; i < 10; i++ {
		if _, degraded := m.Det.DetectCtx(context.Background(), video.FrameIdx(i), labels); !degraded {
			t.Fatalf("frame %d under ModeCheap not reported degraded", i)
		}
		if _, degraded := m.Rec.RecognizeCtx(context.Background(), video.ShotIdx(i), actLabels); !degraded {
			t.Fatalf("shot %d under ModeCheap not reported degraded", i)
		}
	}
	for unit, hop := range m.Det.DegradedHops() {
		if hop != 1 {
			t.Errorf("frame %d served by hop %d, want 1 (the chain's cheap profile)", unit, hop)
		}
	}
	for unit, hop := range m.Rec.DegradedHops() {
		if hop != 1 {
			t.Errorf("shot %d served by hop %d, want 1", unit, hop)
		}
	}
	if st := m.Stats(); st.DegradedUnits != 20 {
		t.Errorf("DegradedUnits = %d, want 20", st.DegradedUnits)
	}
}

// TestModePriorSkipsModels pins the prior-only posture: units are
// served by the bgprob sampler at hop len(chain)+1, and the answers
// are deterministic for a fixed seed.
func TestModePriorSkipsModels(t *testing.T) {
	run := func() ([]detect.Detection, map[int]int) {
		mode := &resilience.ModeVar{}
		mode.Set(resilience.ModePrior)
		m, _ := modeStack(7, mode)
		dets, degraded := m.Det.DetectCtx(context.Background(), 42, labels)
		if !degraded {
			t.Fatal("ModePrior serve not reported degraded")
		}
		return dets, m.Det.DegradedHops()
	}
	dets, hops := run()
	if hops[42] != 2 {
		t.Errorf("frame 42 served by hop %d, want 2 (prior past a 1-hop chain)", hops[42])
	}
	again, _ := run()
	if !reflect.DeepEqual(dets, again) {
		t.Errorf("prior answers differ across identical runs: %v vs %v", dets, again)
	}
}

// TestModeNoHedgeSuppressesHedging warms a hedging wrapper past its
// sample floor, flips the shared mode var, and checks the slow unit
// that would have hedged no longer does.
func TestModeNoHedgeSuppressesHedging(t *testing.T) {
	mode := &resilience.ModeVar{}
	backend := &hedgeAwareObject{slowFrom: 1000, delay: 20 * time.Millisecond}
	pol := resilience.Policy{Seed: 1, HedgeQuantile: 0.9, HedgeMinSamples: 8}
	det := resilience.NewDetector(backend, pol, resilience.Options{Mode: mode})

	for i := 0; i < 20; i++ {
		det.Detect(video.FrameIdx(i), labels)
	}
	det.Detect(2000, labels)
	before := det.Stats().Hedges
	if before == 0 {
		t.Fatal("armed wrapper never hedged on the slow unit")
	}
	mode.Set(resilience.ModeNoHedge)
	for i := 0; i < 5; i++ {
		det.Detect(video.FrameIdx(3000+i), labels)
	}
	if got := det.Stats().Hedges; got != before {
		t.Errorf("ModeNoHedge still hedged (total %d, want the pre-flip %d)", got, before)
	}
	// Results stay full-fidelity: no degraded serves under no-hedge.
	if st := det.Stats(); st.Fallbacks != 0 {
		t.Errorf("ModeNoHedge recorded %d fallbacks, want 0", st.Fallbacks)
	}
}

// TestModeFlipMidStream verifies the shared var takes effect on the
// next call with no per-session plumbing: full-fidelity serves before
// the flip, degraded ones after, full again after stepping back down.
func TestModeFlipMidStream(t *testing.T) {
	mode := &resilience.ModeVar{}
	m, _ := modeStack(7, mode)

	if _, degraded := m.Det.DetectCtx(context.Background(), 1, labels); degraded {
		t.Fatal("ModeFull serve reported degraded")
	}
	mode.Set(resilience.ModePrior)
	if _, degraded := m.Det.DetectCtx(context.Background(), 2, labels); !degraded {
		t.Fatal("post-flip serve not degraded")
	}
	mode.Set(resilience.ModeFull)
	if _, degraded := m.Det.DetectCtx(context.Background(), 3, labels); degraded {
		t.Fatal("serve after stepping back down still degraded")
	}
	if hops := m.Det.DegradedHops(); len(hops) != 1 || hops[2] != 2 {
		t.Errorf("DegradedHops = %v, want only frame 2 at hop 2", hops)
	}
}

// TestNilModeVar pins the nil contract: a nil *ModeVar reads ModeFull
// and Set on nil is a no-op, so unarmed servers pay nothing.
func TestNilModeVar(t *testing.T) {
	var mv *resilience.ModeVar
	if got := mv.Get(); got != resilience.ModeFull {
		t.Errorf("nil Get() = %v, want ModeFull", got)
	}
	mv.Set(resilience.ModePrior) // must not panic
	m, _ := modeStack(7, nil)
	if _, degraded := m.Det.DetectCtx(context.Background(), 1, labels); degraded {
		t.Error("nil-mode wrapper served degraded")
	}
}
