package resilience

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(3, time.Second)
	b.now = func() time.Time { return clock }

	if b.State() != StateClosed {
		t.Fatalf("new breaker state = %v", b.State())
	}
	// Failures below the threshold keep it closed.
	b.Failure()
	b.Failure()
	if !b.Allow() || b.State() != StateClosed {
		t.Fatalf("breaker opened before threshold: %v", b.State())
	}
	// A success resets the run.
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatal("success did not reset the failure run")
	}
	// Third consecutive failure opens.
	b.Failure()
	if b.State() != StateOpen || b.Opens() != 1 {
		t.Fatalf("state = %v, opens = %d after threshold", b.State(), b.Opens())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	// After the cooldown exactly one probe is admitted.
	clock = clock.Add(time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker rejected the probe")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state after probe admission = %v", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second call during the probe")
	}
	// Failed probe re-opens and restarts the cooldown.
	b.Failure()
	if b.State() != StateOpen || b.Opens() != 2 {
		t.Fatalf("failed probe: state = %v, opens = %d", b.State(), b.Opens())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call immediately")
	}
	// Successful probe closes.
	clock = clock.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second probe rejected")
	}
	b.Success()
	if b.State() != StateClosed {
		t.Fatalf("successful probe left state %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a call")
	}
}

func TestBreakerDisabledAndNil(t *testing.T) {
	b := NewBreaker(0, time.Second)
	for i := 0; i < 10; i++ {
		b.Failure()
	}
	if !b.Allow() || b.State() != StateClosed {
		t.Error("disabled breaker tripped")
	}
	var nb *Breaker
	if !nb.Allow() || nb.State() != StateClosed || nb.Opens() != 0 {
		t.Error("nil breaker misbehaved")
	}
	nb.Success()
	nb.Failure()
}

func TestWorseState(t *testing.T) {
	if s := worseState(StateClosed, StateOpen); s != StateOpen {
		t.Errorf("worse(closed, open) = %v", s)
	}
	if s := worseState(StateHalfOpen, StateClosed); s != StateHalfOpen {
		t.Errorf("worse(half-open, closed) = %v", s)
	}
}
