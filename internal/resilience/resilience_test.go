package resilience_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/fault"
	"vaq/internal/interval"
	"vaq/internal/resilience"
	"vaq/internal/svaq"
	"vaq/internal/video"
)

// testScene builds the small deterministic world the svaq tests use:
// one action with three episodes and one correlated object.
func testScene(seed int64) (*detect.Scene, annot.Query) {
	geom := video.DefaultGeometry()
	meta := video.Meta{Name: "t", Frames: 60000, Geom: geom}
	truth := annot.NewVideo(meta)
	truth.AddAction("run", interval.Set{{Lo: 100, Hi: 179}, {Lo: 2000, Hi: 2119}, {Lo: 4500, Hi: 4559}})
	truth.AddObject("car", interval.Set{
		{Lo: 950, Hi: 1850}, {Lo: 19900, Hi: 21300}, {Lo: 44900, Hi: 45700},
		{Lo: 30000, Hi: 31000},
	})
	return &detect.Scene{Truth: truth, Seed: seed}, annot.Query{Action: "run", Objects: []annot.Label{"car"}}
}

// fastPolicy is a test policy with sub-millisecond backoffs so retry
// storms don't slow the suite.
func fastPolicy(retries int) resilience.Policy {
	return resilience.Policy{
		MaxRetries:  retries,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  200 * time.Microsecond,
		Seed:        99,
	}
}

var labels = []annot.Label{"car"}

// failingObject always errors; for breaker/fallback tests.
type failingObject struct{ calls int }

func (f *failingObject) Name() string { return "dead" }

func (f *failingObject) DetectCtx(context.Context, video.FrameIdx, []annot.Label) ([]detect.Detection, error) {
	f.calls++
	return nil, errors.New("backend down")
}

func TestWrapTransparentOnHealthyBackend(t *testing.T) {
	scene, _ := testScene(7)
	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	m := resilience.Wrap(det, rec, resilience.DefaultPolicy(), resilience.Options{})
	for f := 0; f < 500; f++ {
		got := m.Det.Detect(video.FrameIdx(f), labels)
		want := det.Detect(video.FrameIdx(f), labels)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: wrapped %+v != direct %+v", f, got, want)
		}
	}
	for s := 0; s < 100; s++ {
		got := m.Rec.Recognize(video.ShotIdx(s), labels)
		want := rec.Recognize(video.ShotIdx(s), labels)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shot %d: wrapped %+v != direct %+v", s, got, want)
		}
	}
	st := m.Stats()
	if st.Fallbacks != 0 || st.Errors != 0 || st.Retries != 0 {
		t.Errorf("healthy backend produced resilience events: %+v", st)
	}
	if m.Degraded() {
		t.Error("healthy backend reported degraded")
	}
	if st.BreakerState != "closed" {
		t.Errorf("breaker state = %s", st.BreakerState)
	}
}

func TestRetriesRecoverTransientFaults(t *testing.T) {
	scene, _ := testScene(8)
	base := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	sched := fault.Schedule{Seed: 21, Episodes: []fault.Episode{{Kind: fault.Error, Lo: 0, Hi: -1, Rate: 0.3}}}
	inj := fault.NewObject(detect.AsFallibleObject(base), sched)
	d := resilience.NewDetector(inj, fastPolicy(4), resilience.Options{})

	mismatches, degradedSeen := 0, 0
	for f := 0; f < 1000; f++ {
		dets, degraded := d.DetectCtx(context.Background(), video.FrameIdx(f), labels)
		if degraded {
			degradedSeen++
			continue
		}
		if !reflect.DeepEqual(dets, base.Detect(video.FrameIdx(f), labels)) {
			mismatches++
		}
	}
	st := d.Stats()
	if st.Retries == 0 {
		t.Error("30% fault rate produced no retries")
	}
	if mismatches != 0 {
		t.Errorf("%d non-degraded results differ from the clean backend", mismatches)
	}
	// 0.3^5 ≈ 0.24% of frames exhaust 5 attempts.
	if st.Fallbacks != int64(degradedSeen) {
		t.Errorf("fallbacks counter %d != degraded results seen %d", st.Fallbacks, degradedSeen)
	}
	if got := len(d.DegradedFrames()); got != degradedSeen {
		t.Errorf("DegradedFrames len %d != %d", got, degradedSeen)
	}
}

func TestBreakerShedsDeadBackend(t *testing.T) {
	dead := &failingObject{}
	p := fastPolicy(1)
	p.BreakerFailures = 4
	p.BreakerCooldown = time.Hour // never probes during the test
	d := resilience.NewDetector(dead, p, resilience.Options{})
	for f := 0; f < 100; f++ {
		dets, degraded := d.DetectCtx(context.Background(), video.FrameIdx(f), labels)
		if !degraded {
			t.Fatalf("frame %d: dead backend not degraded", f)
		}
		for _, det := range dets {
			if det.Score < 0.5 {
				t.Errorf("prior fallback emitted below-threshold detection %+v", det)
			}
		}
	}
	st := d.Stats()
	if st.BreakerState != "open" {
		t.Fatalf("breaker state = %s, want open", st.BreakerState)
	}
	if st.BreakerRejects == 0 {
		t.Error("open breaker shed nothing")
	}
	if st.Fallbacks != 100 {
		t.Errorf("fallbacks = %d, want 100", st.Fallbacks)
	}
	// The breaker capped backend calls: 4 failures trip it, after which
	// calls shed without touching the backend.
	if dead.calls > 10 {
		t.Errorf("dead backend was called %d times; breaker should shed", dead.calls)
	}
}

func TestBreakerRecovers(t *testing.T) {
	scene, _ := testScene(9)
	base := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	// Faults only on frames 0–49: the breaker trips there, then heals.
	sched := fault.Schedule{Seed: 5, Episodes: []fault.Episode{{Kind: fault.Error, Lo: 0, Hi: 49, Rate: 1}}}
	inj := fault.NewObject(detect.AsFallibleObject(base), sched)
	p := fastPolicy(0)
	p.BreakerFailures = 3
	p.BreakerCooldown = 10 * time.Millisecond
	d := resilience.NewDetector(inj, p, resilience.Options{})

	for f := 0; f < 50; f++ {
		d.DetectCtx(context.Background(), video.FrameIdx(f), labels)
	}
	if st := d.Stats(); st.BreakerState != "open" {
		t.Fatalf("breaker state after fault burst = %s", st.BreakerState)
	}
	time.Sleep(20 * time.Millisecond) // cooldown elapses
	// Healthy region: the half-open probe succeeds and the circuit closes.
	if _, degraded := d.DetectCtx(context.Background(), 60, labels); degraded {
		t.Error("post-recovery probe degraded")
	}
	if st := d.Stats(); st.BreakerState != "closed" {
		t.Errorf("breaker state after successful probe = %s", st.BreakerState)
	}
}

func TestDeadlineCutsStalls(t *testing.T) {
	scene, _ := testScene(10)
	base := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	sched := fault.Schedule{Seed: 2, Episodes: []fault.Episode{{Kind: fault.Stall, Lo: 0, Hi: -1, Rate: 1, Delay: time.Minute}}}
	inj := fault.NewObject(detect.AsFallibleObject(base), sched)
	p := fastPolicy(1)
	p.Deadline = 5 * time.Millisecond
	d := resilience.NewDetector(inj, p, resilience.Options{})

	start := time.Now()
	_, degraded := d.DetectCtx(context.Background(), 0, labels)
	if !degraded {
		t.Fatal("permanently stalled backend not degraded")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("stalled call took %v despite 5ms deadline", el)
	}
	st := d.Stats()
	if st.DeadlineExceeded == 0 {
		t.Errorf("no deadline_exceeded recorded: %+v", st)
	}
}

func TestFallbackProfile(t *testing.T) {
	scene, _ := testScene(11)
	cheap := detect.NewSimObjectDetector(scene, detect.YOLOv3, nil)
	d := resilience.NewDetector(&failingObject{}, fastPolicy(0), resilience.Options{
		FallbackObjects: []detect.FallibleObjectDetector{detect.AsFallibleObject(cheap)},
	})
	dets, degraded := d.DetectCtx(context.Background(), 1000, labels)
	if !degraded {
		t.Fatal("failing backend not degraded")
	}
	if want := cheap.Detect(1000, labels); !reflect.DeepEqual(dets, want) {
		t.Errorf("fallback-profile result %+v != cheap detector %+v", dets, want)
	}
	if hops := d.Stats().FallbackHops; len(hops) != 1 || hops[0] != 1 {
		t.Errorf("FallbackHops = %v, want the unit on hop 1", hops)
	}
	if got := d.DegradedHops(); got[1000] != 1 {
		t.Errorf("DegradedHops = %v, want frame 1000 on hop 1", got)
	}
}

func TestPriorRecognizerFallbackShape(t *testing.T) {
	scene, _ := testScene(12)
	sched := fault.Schedule{Seed: 4, Episodes: []fault.Episode{{Kind: fault.Error, Lo: 0, Hi: -1, Rate: 1}}}
	inj := fault.NewAction(detect.AsFallibleAction(detect.NewSimActionRecognizer(scene, detect.I3D, nil)), sched)
	r := resilience.NewRecognizer(inj, fastPolicy(0), resilience.Options{})
	scores, degraded := r.RecognizeCtx(context.Background(), 3, []annot.Label{"run", "walk"})
	if !degraded {
		t.Fatal("not degraded")
	}
	if len(scores) != 2 {
		t.Fatalf("prior fallback returned %d scores, want one per label", len(scores))
	}
	for _, s := range scores {
		if s.Score < 0 || s.Score > 1 {
			t.Errorf("score %v outside [0,1]", s.Score)
		}
	}
	if got := r.DegradedShots(); len(got) != 1 || got[0] != 3 {
		t.Errorf("DegradedShots = %v", got)
	}
}

// TestDeterministicDegradation is the determinism satellite: the same
// fault seed + schedule must yield byte-identical degraded query
// results and identical resilience counters across two full svaq runs.
func TestDeterministicDegradation(t *testing.T) {
	sched := fault.Schedule{Seed: 33, Episodes: []fault.Episode{
		{Kind: fault.Error, Lo: 0, Hi: -1, Rate: 0.08},
		{Kind: fault.Corrupt, Lo: 1000, Hi: 5000, Rate: 0.1},
	}}
	run := func() (any, resilience.Stats, []int) {
		scene, q := testScene(13)
		base := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
		rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
		m := resilience.WrapFallible(
			fault.NewObject(detect.AsFallibleObject(base), sched),
			fault.NewAction(detect.AsFallibleAction(rec), sched),
			fastPolicy(2), resilience.Options{})
		e, err := svaq.New(q, m.Det, m.Rec, scene.Truth.Meta.Geom, svaq.Config{HorizonClips: 150})
		if err != nil {
			t.Fatal(err)
		}
		seqs, err := e.Run(150)
		if err != nil {
			t.Fatal(err)
		}
		return seqs, m.Stats(), m.Det.DegradedFrames()
	}
	seqs1, st1, deg1 := run()
	seqs2, st2, deg2 := run()
	if !reflect.DeepEqual(seqs1, seqs2) {
		t.Errorf("query results differ across identical fault runs:\n%v\n%v", seqs1, seqs2)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Errorf("resilience counters differ:\n%+v\n%+v", st1, st2)
	}
	if !reflect.DeepEqual(deg1, deg2) {
		t.Errorf("degraded frame sets differ: %v vs %v", deg1, deg2)
	}
	if st1.Retries == 0 || st1.Errors == 0 {
		t.Errorf("fault schedule produced no resilience activity: %+v", st1)
	}
}

func TestCancelledContextDegradesWithoutRetry(t *testing.T) {
	dead := &failingObject{}
	d := resilience.NewDetector(dead, fastPolicy(5), resilience.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, degraded := d.DetectCtx(ctx, 0, labels)
	if !degraded {
		t.Fatal("cancelled call not degraded")
	}
	if dead.calls != 0 {
		t.Errorf("cancelled call still reached the backend %d times", dead.calls)
	}
	if st := d.Stats(); st.Retries != 0 {
		t.Errorf("cancelled call retried %d times", st.Retries)
	}
}
