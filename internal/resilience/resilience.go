// Package resilience is the policy layer between the query engines and
// fallible detection backends: per-invocation deadlines, bounded retry
// with exponential backoff and decorrelated jitter, a per-backend
// circuit breaker with half-open probing, and graceful degradation.
//
// The wrappers consume the fallible, context-aware interfaces of
// package detect (which real backends — and the fault injector —
// implement) and present the *infallible* interfaces the svaq/rvaq
// engines and the ingest path were written against. Faults are absorbed
// here: a failing call is retried under its deadline; a backend that
// keeps failing trips its breaker so subsequent calls shed instantly;
// and when the budget is exhausted the wrapper falls back to the
// background-probability prior (sampling detections at a fixed low rate
// p0, the same prior package bgprob starts from) or, when configured, a
// cheaper detector profile — recording exactly which frames/shots were
// served degraded so results can be flagged instead of silently skewed.
//
// Determinism: with a deterministic backend (the simulators, or the
// fault injector wrapping them) a fixed policy seed makes every output
// byte — including fallback detections and retry/fallback counters —
// identical across runs. Backoff jitter is drawn from the same seeded
// hash and affects only wall-clock time.
package resilience

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/trace"
	"vaq/internal/video"
)

// DefaultFallbackP is the prior event probability used by the
// degradation fallback when none is configured: the same "rare by
// default" prior the bgprob estimator starts from.
const DefaultFallbackP = 1e-4

// Policy bundles the resilience knobs. The zero value retries nothing,
// sets no deadline and never breaks — equivalent to calling the backend
// directly (plus fallback on error).
type Policy struct {
	// Deadline bounds each backend invocation (per attempt, not per
	// unit); 0 means no deadline.
	Deadline time.Duration
	// MaxRetries is how many times a failed invocation is retried
	// (total attempts = MaxRetries + 1).
	MaxRetries int
	// BaseBackoff and MaxBackoff bound the exponential backoff with
	// decorrelated jitter between retries.
	BaseBackoff, MaxBackoff time.Duration
	// Seed drives backoff jitter and fallback sampling; fix it for
	// reproducible runs.
	Seed int64
	// BreakerFailures consecutive failures open the per-backend circuit
	// breaker; 0 disables it.
	BreakerFailures int
	// BreakerCooldown is how long an open circuit rejects calls before
	// admitting a half-open probe.
	BreakerCooldown time.Duration
	// FallbackP is the prior event probability of the degradation
	// fallback; 0 means DefaultFallbackP.
	FallbackP float64
}

// DefaultPolicy returns the production defaults: 250ms per-call
// deadline, 2 retries with 5ms..250ms decorrelated-jitter backoff, and
// a breaker opening after 8 consecutive failures with a 500ms cooldown.
func DefaultPolicy() Policy {
	return Policy{
		Deadline:        250 * time.Millisecond,
		MaxRetries:      2,
		BaseBackoff:     5 * time.Millisecond,
		MaxBackoff:      250 * time.Millisecond,
		BreakerFailures: 8,
		BreakerCooldown: 500 * time.Millisecond,
	}
}

func (p Policy) fallbackP() float64 {
	if p.FallbackP > 0 {
		return p.FallbackP
	}
	return DefaultFallbackP
}

// Stats is a snapshot of one wrapper's resilience counters.
type Stats struct {
	Calls            int64  `json:"calls"`
	Errors           int64  `json:"errors"`            // failed attempts (incl. deadline)
	Retries          int64  `json:"retries"`           // attempts beyond the first
	Fallbacks        int64  `json:"fallbacks"`         // units served degraded
	DeadlineExceeded int64  `json:"deadline_exceeded"` // attempts cut by the per-call deadline
	BreakerRejects   int64  `json:"breaker_rejects"`   // calls shed by an open circuit
	BreakerOpens     int64  `json:"breaker_opens"`     // times the circuit opened
	BreakerState     string `json:"breaker_state"`     // closed / open / half-open
	DegradedUnits    int    `json:"degraded_units"`    // distinct frames/shots served degraded
}

// Add accumulates other's counters into s and keeps the worse of the
// two breaker states; the serving daemon uses it to aggregate stats
// across sessions for /metricsz.
func (s *Stats) Add(other Stats) {
	s.Calls += other.Calls
	s.Errors += other.Errors
	s.Retries += other.Retries
	s.Fallbacks += other.Fallbacks
	s.DeadlineExceeded += other.DeadlineExceeded
	s.BreakerRejects += other.BreakerRejects
	s.BreakerOpens += other.BreakerOpens
	s.DegradedUnits += other.DegradedUnits
	if stateRank(other.BreakerState) > stateRank(s.BreakerState) {
		s.BreakerState = other.BreakerState
	}
}

func stateRank(s string) int {
	switch s {
	case StateOpen.String():
		return 2
	case StateHalfOpen.String():
		return 1
	}
	return 0
}

// invoker is the retry/breaker/fallback core shared by the object and
// action wrappers.
type invoker struct {
	policy  Policy
	breaker *Breaker
	salt    string // distinguishes obj/act streams under one seed
	fast    bool   // backend is an infallible adapter; see fastPath

	calls, errs, retries, fallbacks, deadlines, rejects atomic.Int64

	mu       sync.Mutex
	degraded map[int]struct{} // units served by the fallback

	// trace counter handles; all nil-safe.
	cRetries, cFallbacks, cDeadline, cFaults *trace.Counter
}

func newInvoker(p Policy, salt, backend string, tr *trace.Tracer) *invoker {
	return &invoker{
		policy:     p,
		breaker:    NewBreaker(p.BreakerFailures, p.BreakerCooldown),
		salt:       salt,
		degraded:   map[int]struct{}{},
		cRetries:   tr.Counter("resilience.retries"),
		cFallbacks: tr.Counter("resilience.fallbacks"),
		cDeadline:  tr.Counter("resilience.deadline_exceeded"),
		// Counter names are lowercase dotted by convention (the varz
		// exposition folds case, so mixed case would desync /tracez
		// from /varz).
		cFaults: tr.Counter("resilience.faults." + strings.ToLower(backend)),
	}
}

// fastPath reports whether a call may bypass the policy machinery
// entirely: the backend can neither fail nor block (detect's
// infallible adapters), so the deadline context, breaker round-trip
// and backoff loop are dead weight it cannot observe. The caller still
// counts the call and must fall into invoke if the backend errors
// after all.
func (in *invoker) fastPath(ctx context.Context) bool {
	return in.fast && ctx.Err() == nil
}

// invoke runs call under the policy: deadline per attempt, bounded
// retries with jittered backoff, breaker gating. It reports whether the
// caller must fall back (all attempts failed, circuit open, or ctx
// done).
func (in *invoker) invoke(ctx context.Context, unit int, call func(context.Context) error) (degraded bool) {
	in.calls.Add(1)
	attempts := in.policy.MaxRetries + 1
	prev := in.policy.BaseBackoff
	for attempt := 0; attempt < attempts; attempt++ {
		if ctx.Err() != nil {
			break
		}
		if !in.breaker.Allow() {
			in.rejects.Add(1)
			break
		}
		callCtx, cancel := ctx, context.CancelFunc(func() {})
		if in.policy.Deadline > 0 {
			callCtx, cancel = context.WithTimeout(ctx, in.policy.Deadline)
		}
		err := call(callCtx)
		cancel()
		if err == nil {
			in.breaker.Success()
			return false
		}
		in.breaker.Failure()
		in.errs.Add(1)
		in.cFaults.Add(1)
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			in.deadlines.Add(1)
			in.cDeadline.Add(1)
		}
		if ctx.Err() != nil {
			break // the query itself is being cancelled; don't retry
		}
		if attempt+1 < attempts {
			in.retries.Add(1)
			in.cRetries.Add(1)
			prev = in.backoff(unit, attempt, prev)
			if sleepCtx(ctx, prev) != nil {
				break
			}
		}
	}
	in.fallbacks.Add(1)
	in.cFallbacks.Add(1)
	in.mu.Lock()
	in.degraded[unit] = struct{}{}
	in.mu.Unlock()
	return true
}

// backoff computes the next decorrelated-jitter delay: uniform in
// [base, 3·prev], capped at MaxBackoff. The jitter is a pure hash of
// (seed, stream, unit, attempt) so runs are reproducible.
func (in *invoker) backoff(unit, attempt int, prev time.Duration) time.Duration {
	lo := in.policy.BaseBackoff
	if lo <= 0 {
		return 0
	}
	hi := 3 * prev
	if hi < lo {
		hi = lo
	}
	if max := in.policy.MaxBackoff; max > 0 && hi > max {
		hi = max
	}
	u := unitRand(hashKey(in.policy.Seed, in.salt+"/backoff", int64(unit)), uint64(attempt))
	return lo + time.Duration(u*float64(hi-lo))
}

func (in *invoker) degradedUnits() []int {
	in.mu.Lock()
	out := make([]int, 0, len(in.degraded))
	for u := range in.degraded {
		out = append(out, u)
	}
	in.mu.Unlock()
	sort.Ints(out)
	return out
}

func (in *invoker) stats() Stats {
	in.mu.Lock()
	n := len(in.degraded)
	in.mu.Unlock()
	return Stats{
		Calls:            in.calls.Load(),
		Errors:           in.errs.Load(),
		Retries:          in.retries.Load(),
		Fallbacks:        in.fallbacks.Load(),
		DeadlineExceeded: in.deadlines.Load(),
		BreakerRejects:   in.rejects.Load(),
		BreakerOpens:     in.breaker.Opens(),
		BreakerState:     in.breaker.State().String(),
		DegradedUnits:    n,
	}
}

// Options configures the wrappers beyond the policy.
type Options struct {
	// Ctx is the base context of infallible-interface calls (the
	// session's or ingest run's lifetime); nil means Background.
	Ctx context.Context
	// Tracer receives resilience.* counters; nil is fine.
	Tracer *trace.Tracer
	// FallbackObject / FallbackAction, when set, serve degraded units
	// instead of the prior sampler — e.g. a cheaper, more reliable
	// detector profile.
	FallbackObject detect.ObjectDetector
	FallbackAction detect.ActionRecognizer
	// Thresholds separate above/below-threshold fallback scores;
	// zero means detect.DefaultThresholds.
	Thresholds detect.Thresholds
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) thresholds() detect.Thresholds {
	if o.Thresholds == (detect.Thresholds{}) {
		return detect.DefaultThresholds()
	}
	return o.Thresholds
}

// Detector wraps a fallible object detection backend with the policy
// and presents the infallible detect.ObjectDetector interface: Detect
// never fails — it degrades.
type Detector struct {
	backend  detect.FallibleObjectDetector
	in       *invoker
	base     context.Context
	fallback detect.ObjectDetector
	p0       float64
	thr      float64
	seed     int64
}

// NewDetector wraps backend under policy p.
func NewDetector(backend detect.FallibleObjectDetector, p Policy, opt Options) *Detector {
	in := newInvoker(p, "obj", backend.Name(), opt.Tracer)
	_, in.fast = backend.(detect.InfallibleBackend)
	return &Detector{
		backend:  backend,
		in:       in,
		base:     opt.ctx(),
		fallback: opt.FallbackObject,
		p0:       p.fallbackP(),
		thr:      opt.thresholds().Object,
		seed:     p.Seed,
	}
}

// Name implements detect.ObjectDetector.
func (d *Detector) Name() string { return d.backend.Name() }

// Detect implements detect.ObjectDetector: the backend under the
// policy, falling back on exhaustion. It never fails.
func (d *Detector) Detect(v video.FrameIdx, labels []annot.Label) []detect.Detection {
	dets, _ := d.DetectCtx(d.base, v, labels)
	return dets
}

// DetectCtx runs one resilient detection and reports whether the result
// came from the fallback (degraded).
func (d *Detector) DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, bool) {
	if d.in.fastPath(ctx) {
		if dets, err := d.backend.DetectCtx(ctx, v, labels); err == nil {
			d.in.calls.Add(1)
			return dets, false
		}
	}
	var dets []detect.Detection
	degraded := d.in.invoke(ctx, int(v), func(cctx context.Context) error {
		var err error
		dets, err = d.backend.DetectCtx(cctx, v, labels)
		return err
	})
	if !degraded {
		return dets, false
	}
	if d.fallback != nil {
		return d.fallback.Detect(v, labels), true
	}
	return priorDetections(d.seed, d.p0, d.thr, v, labels), true
}

// Stats snapshots the resilience counters.
func (d *Detector) Stats() Stats { return d.in.stats() }

// DegradedFrames returns the sorted frame indices served degraded.
func (d *Detector) DegradedFrames() []int { return d.in.degradedUnits() }

// Breaker exposes the backend's circuit breaker (for reporting).
func (d *Detector) Breaker() *Breaker { return d.in.breaker }

// Recognizer wraps a fallible action recognition backend; the shot-
// level counterpart of Detector.
type Recognizer struct {
	backend  detect.FallibleActionRecognizer
	in       *invoker
	base     context.Context
	fallback detect.ActionRecognizer
	p0       float64
	thr      float64
	seed     int64
}

// NewRecognizer wraps backend under policy p.
func NewRecognizer(backend detect.FallibleActionRecognizer, p Policy, opt Options) *Recognizer {
	in := newInvoker(p, "act", backend.Name(), opt.Tracer)
	_, in.fast = backend.(detect.InfallibleBackend)
	return &Recognizer{
		backend:  backend,
		in:       in,
		base:     opt.ctx(),
		fallback: opt.FallbackAction,
		p0:       p.fallbackP(),
		thr:      opt.thresholds().Action,
		seed:     p.Seed,
	}
}

// Name implements detect.ActionRecognizer.
func (r *Recognizer) Name() string { return r.backend.Name() }

// Recognize implements detect.ActionRecognizer; it never fails.
func (r *Recognizer) Recognize(s video.ShotIdx, labels []annot.Label) []detect.ActionScore {
	scores, _ := r.RecognizeCtx(r.base, s, labels)
	return scores
}

// RecognizeCtx runs one resilient recognition and reports whether the
// result is degraded.
func (r *Recognizer) RecognizeCtx(ctx context.Context, s video.ShotIdx, labels []annot.Label) ([]detect.ActionScore, bool) {
	if r.in.fastPath(ctx) {
		if scores, err := r.backend.RecognizeCtx(ctx, s, labels); err == nil {
			r.in.calls.Add(1)
			return scores, false
		}
	}
	var scores []detect.ActionScore
	degraded := r.in.invoke(ctx, int(s), func(cctx context.Context) error {
		var err error
		scores, err = r.backend.RecognizeCtx(cctx, s, labels)
		return err
	})
	if !degraded {
		return scores, false
	}
	if r.fallback != nil {
		return r.fallback.Recognize(s, labels), true
	}
	return priorScores(r.seed, r.p0, r.thr, s, labels), true
}

// Stats snapshots the resilience counters.
func (r *Recognizer) Stats() Stats { return r.in.stats() }

// DegradedShots returns the sorted shot indices served degraded.
func (r *Recognizer) DegradedShots() []int { return r.in.degradedUnits() }

// Breaker exposes the backend's circuit breaker (for reporting).
func (r *Recognizer) Breaker() *Breaker { return r.in.breaker }

// priorDetections is the degradation fallback without a configured
// fallback model: sample a detection per (label, frame) at the prior
// rate p0 — the bgprob "rare by default" assumption. Deterministic per
// (seed, label, frame).
func priorDetections(seed int64, p0, thr float64, v video.FrameIdx, labels []annot.Label) []detect.Detection {
	var out []detect.Detection
	for _, label := range labels {
		key := hashKey(seed, "prior/obj:"+string(label), int64(v))
		if unitRand(key, 0) >= p0 {
			continue
		}
		out = append(out, detect.Detection{
			Label: label,
			Score: thr + (1-thr)*unitRand(key, 1),
		})
	}
	return out
}

// priorScores mirrors priorDetections at the shot level: every
// requested label gets a score, above threshold with probability p0.
func priorScores(seed int64, p0, thr float64, s video.ShotIdx, labels []annot.Label) []detect.ActionScore {
	out := make([]detect.ActionScore, len(labels))
	for i, label := range labels {
		key := hashKey(seed, "prior/act:"+string(label), int64(s))
		score := thr * unitRand(key, 1)
		if unitRand(key, 0) < p0 {
			score = thr + (1-thr)*unitRand(key, 1)
		}
		out[i] = detect.ActionScore{Label: label, Score: score}
	}
	return out
}

// Models bundles a resilient detector/recognizer pair — what a session
// or ingest run threads through its engines.
type Models struct {
	Det *Detector
	Rec *Recognizer
}

// Wrap builds resilient wrappers around an (infallible or fallible)
// detector/recognizer pair. Infallible backends are adapted first, so
// Wrap is safe — and nearly free — on the plain simulators.
func Wrap(det detect.ObjectDetector, rec detect.ActionRecognizer, p Policy, opt Options) *Models {
	return &Models{
		Det: NewDetector(detect.AsFallibleObject(det), p, opt),
		Rec: NewRecognizer(detect.AsFallibleAction(rec), p, opt),
	}
}

// WrapFallible builds resilient wrappers directly over fallible
// backends (e.g. fault injectors).
func WrapFallible(det detect.FallibleObjectDetector, rec detect.FallibleActionRecognizer, p Policy, opt Options) *Models {
	return &Models{
		Det: NewDetector(det, p, opt),
		Rec: NewRecognizer(rec, p, opt),
	}
}

// Stats sums the pair's counters; breaker state reports the worse of
// the two (open > half-open > closed).
func (m *Models) Stats() Stats {
	if m == nil {
		return Stats{BreakerState: StateClosed.String()}
	}
	ds, rs := m.Det.Stats(), m.Rec.Stats()
	out := Stats{
		Calls:            ds.Calls + rs.Calls,
		Errors:           ds.Errors + rs.Errors,
		Retries:          ds.Retries + rs.Retries,
		Fallbacks:        ds.Fallbacks + rs.Fallbacks,
		DeadlineExceeded: ds.DeadlineExceeded + rs.DeadlineExceeded,
		BreakerRejects:   ds.BreakerRejects + rs.BreakerRejects,
		BreakerOpens:     ds.BreakerOpens + rs.BreakerOpens,
		DegradedUnits:    ds.DegradedUnits + rs.DegradedUnits,
	}
	out.BreakerState = worseState(m.Det.Breaker().State(), m.Rec.Breaker().State()).String()
	return out
}

// Degraded reports whether any unit has been served degraded.
func (m *Models) Degraded() bool {
	if m == nil {
		return false
	}
	return m.Det.Stats().Fallbacks+m.Rec.Stats().Fallbacks > 0
}

func worseState(a, b State) State {
	rank := func(s State) int {
		switch s {
		case StateOpen:
			return 2
		case StateHalfOpen:
			return 1
		}
		return 0
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

// sleepCtx waits for d unless ctx fires first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Deterministic hash RNG, mirroring package detect's (unexported
// there): decisions must be pure functions of their coordinates.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashKey(seed int64, salt string, unit int64) uint64 {
	h := splitmix64(uint64(seed))
	for _, b := range []byte(salt) {
		h = splitmix64(h ^ uint64(b))
	}
	return splitmix64(h ^ uint64(unit))
}

func unitRand(key uint64, n uint64) float64 {
	v := splitmix64(key + n*0x9e3779b97f4a7c15)
	return float64(v>>11) / float64(1<<53)
}
