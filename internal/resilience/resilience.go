// Package resilience is the policy layer between the query engines and
// fallible detection backends: per-invocation deadlines, bounded retry
// with exponential backoff and decorrelated jitter, hedged requests
// against tail latency, per-backend and per-label circuit breakers
// with half-open probing, adaptive retry budgets, and graceful
// degradation down a fallback chain.
//
// The wrappers consume the fallible, context-aware interfaces of
// package detect (which real backends — and the fault injector —
// implement) and present the *infallible* interfaces the svaq/rvaq
// engines and the ingest path were written against. Faults are absorbed
// here: a failing call is retried under its deadline; a slow call is
// raced by a hedge replica once it outlives the backend's observed
// latency quantile; a backend (or a single label) that keeps failing
// trips its breaker so subsequent calls shed instantly; and when the
// budget is exhausted the wrapper walks the fallback chain — cheaper
// profiles first, ending at the background-probability prior (sampling
// detections at a fixed low rate p0, the same prior package bgprob
// starts from) — recording exactly which frames/shots were served
// degraded, and by which hop, so results can be flagged instead of
// silently skewed.
//
// Determinism: with a deterministic backend (the simulators, or the
// fault injector wrapping them) a fixed policy seed makes every output
// byte — including fallback detections and retry/fallback counters —
// identical across runs. Backoff jitter is drawn from the same seeded
// hash and affects only wall-clock time. Hedging preserves this: both
// racers of a retry round carry the same fault.Call attempt coordinate,
// so the injector's decisive draws (error, corrupt, stall) agree
// between them — a hedge can dodge a latency episode (replica-keyed
// draws) but never change result bytes. Breaker state and the hedge /
// adaptive-trim counters are the deliberate exception: they respond to
// wall-clock load, not to coordinates.
package resilience

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/fault"
	"vaq/internal/quantile"
	"vaq/internal/trace"
	"vaq/internal/video"
)

// DefaultFallbackP is the prior event probability used by the
// degradation fallback when none is configured: the same "rare by
// default" prior the bgprob estimator starts from.
const DefaultFallbackP = 1e-4

// DefaultHedgeMinSamples is how many successful rounds a backend must
// show before hedging arms when Policy.HedgeMinSamples is 0: the
// latency quantile is meaningless on a handful of observations.
const DefaultHedgeMinSamples = 50

// hedgeFloor bounds the hedge delay from below. Healthy simulator
// calls finish in single-digit microseconds — below timer granularity
// — so an unfloored sub-timer quantile would launch a replica for
// every call instead of only the slow ones.
const hedgeFloor = 100 * time.Microsecond

// Policy bundles the resilience knobs. The zero value retries nothing,
// sets no deadline, never hedges and never breaks — equivalent to
// calling the backend directly (plus fallback on error).
type Policy struct {
	// Deadline bounds each backend invocation (per attempt, not per
	// unit); 0 means no deadline.
	Deadline time.Duration
	// MaxRetries is how many times a failed invocation is retried
	// (total attempts = MaxRetries + 1).
	MaxRetries int
	// BaseBackoff and MaxBackoff bound the exponential backoff with
	// decorrelated jitter between retries.
	BaseBackoff, MaxBackoff time.Duration
	// Seed drives backoff jitter and fallback sampling; fix it for
	// reproducible runs.
	Seed int64
	// BreakerFailures consecutive failures open the per-backend circuit
	// breaker; 0 disables it (and the per-label breakers with it).
	BreakerFailures int
	// BreakerCooldown is how long an open circuit rejects calls before
	// admitting a half-open probe.
	BreakerCooldown time.Duration
	// FallbackP is the prior event probability of the degradation
	// fallback; 0 means DefaultFallbackP.
	FallbackP float64
	// HedgeQuantile arms hedged requests: once enough successful rounds
	// have been observed, an attempt that outlives this latency
	// quantile (e.g. 0.95) races a second backend call — first result
	// wins, the loser is cancelled. 0 disables hedging. By
	// construction roughly (1 − HedgeQuantile) of healthy calls hedge.
	HedgeQuantile float64
	// HedgeMinSamples successful rounds must be observed before hedging
	// arms; 0 means DefaultHedgeMinSamples.
	HedgeMinSamples int
	// LabelBreaker adds per-(backend, label) circuit breakers inside
	// the per-backend one, sharing BreakerFailures/BreakerCooldown: a
	// single broken label sheds only itself while its siblings keep
	// flowing. Label breakers see one decisive outcome per invocation
	// (the backend breaker counts per attempt).
	LabelBreaker bool
}

// DefaultPolicy returns the production defaults: 250ms per-call
// deadline, 2 retries with 5ms..250ms decorrelated-jitter backoff, and
// a breaker opening after 8 consecutive failures with a 500ms cooldown.
// Hedging and per-label breakers stay opt-in.
func DefaultPolicy() Policy {
	return Policy{
		Deadline:        250 * time.Millisecond,
		MaxRetries:      2,
		BaseBackoff:     5 * time.Millisecond,
		MaxBackoff:      250 * time.Millisecond,
		BreakerFailures: 8,
		BreakerCooldown: 500 * time.Millisecond,
	}
}

func (p Policy) fallbackP() float64 {
	if p.FallbackP > 0 {
		return p.FallbackP
	}
	return DefaultFallbackP
}

func (p Policy) hedgeMinSamples() int64 {
	if p.HedgeMinSamples > 0 {
		return int64(p.HedgeMinSamples)
	}
	return DefaultHedgeMinSamples
}

// Stats is a snapshot of one wrapper's resilience counters.
type Stats struct {
	Calls             int64   `json:"calls"`
	Errors            int64   `json:"errors"`                   // failed rounds (incl. deadline)
	Retries           int64   `json:"retries"`                  // rounds beyond the first
	Fallbacks         int64   `json:"fallbacks"`                // units served degraded
	DeadlineExceeded  int64   `json:"deadline_exceeded"`        // rounds cut by the per-call deadline
	BreakerRejects    int64   `json:"breaker_rejects"`          // calls shed by an open circuit
	BreakerOpens      int64   `json:"breaker_opens"`            // times the backend circuit opened
	BreakerState      string  `json:"breaker_state"`            // closed / open / half-open
	DegradedUnits     int     `json:"degraded_units"`           // distinct frames/shots served degraded
	Hedges            int64   `json:"hedges"`                   // hedge replicas launched
	HedgeWins         int64   `json:"hedge_wins"`               // rounds decided by the hedge replica
	HedgeDelayUS      float64 `json:"hedge_delay_us,omitempty"` // current hedge trigger delay (0 until armed)
	AdaptiveTrims     int64   `json:"adaptive_trims"`           // invocations whose retry budget was trimmed
	LabelRejects      int64   `json:"label_rejects"`            // label-calls shed by per-label breakers
	LabelBreakerOpens int64   `json:"label_breaker_opens"`      // per-label circuit openings
	FallbackHops      []int64 `json:"fallback_hops,omitempty"`  // degraded serves per chain hop; last entry is the prior
}

// Add accumulates other's counters into s and keeps the worse of the
// two breaker states; it is the single aggregation path — the serving
// daemon uses it across sessions for /metricsz, and Models.Stats uses
// it across the detector/recognizer pair — so per-unit counters like
// Fallbacks and FallbackHops cannot drift between the two roll-ups.
func (s *Stats) Add(other Stats) {
	s.Calls += other.Calls
	s.Errors += other.Errors
	s.Retries += other.Retries
	s.Fallbacks += other.Fallbacks
	s.DeadlineExceeded += other.DeadlineExceeded
	s.BreakerRejects += other.BreakerRejects
	s.BreakerOpens += other.BreakerOpens
	s.DegradedUnits += other.DegradedUnits
	s.Hedges += other.Hedges
	s.HedgeWins += other.HedgeWins
	if other.HedgeDelayUS > s.HedgeDelayUS {
		s.HedgeDelayUS = other.HedgeDelayUS
	}
	s.AdaptiveTrims += other.AdaptiveTrims
	s.LabelRejects += other.LabelRejects
	s.LabelBreakerOpens += other.LabelBreakerOpens
	for i, n := range other.FallbackHops {
		for len(s.FallbackHops) <= i {
			s.FallbackHops = append(s.FallbackHops, 0)
		}
		s.FallbackHops[i] += n
	}
	if stateRank(other.BreakerState) > stateRank(s.BreakerState) {
		s.BreakerState = other.BreakerState
	}
}

func stateRank(s string) int {
	switch s {
	case StateOpen.String():
		return 2
	case StateHalfOpen.String():
		return 1
	}
	return 0
}

// invoker is the retry/hedge/breaker/fallback core shared by the
// object and action wrappers.
type invoker struct {
	policy  Policy
	breaker *Breaker
	budget  *AdaptiveBudget
	mode    *ModeVar // host-mutated posture (brownout ladder); nil = ModeFull
	salt    string   // distinguishes obj/act streams under one seed
	fast    bool     // backend is an infallible adapter; see fastPath

	calls, errs, retries, fallbacks, deadlines, rejects atomic.Int64
	hedges, hedgeWins, trims, labelRejects              atomic.Int64

	mu        sync.Mutex
	degraded  map[int]int // unit → chain hop that served it (1-based; last is the prior)
	hopCounts []int64     // degraded serves per hop

	latMu    sync.Mutex
	lat      *quantile.Sketch // successful round durations (ns); nil unless hedging armed
	latStage *trace.Stage     // mirrors lat into /varz and /metricsz; nil without a tracer

	labelMu sync.Mutex
	labels  map[annot.Label]*Breaker

	// trace counter handles; all nil-safe.
	cRetries, cFallbacks, cDeadline, cFaults   *trace.Counter
	cHedges, cHedgeWins, cTrims, cLabelRejects *trace.Counter
}

func newInvoker(p Policy, salt, backend string, opt Options) *invoker {
	tr := opt.Tracer
	in := &invoker{
		policy:     p,
		breaker:    NewBreaker(p.BreakerFailures, p.BreakerCooldown),
		budget:     opt.Budget,
		mode:       opt.Mode,
		salt:       salt,
		degraded:   map[int]int{},
		cRetries:   tr.Counter("resilience.retries"),
		cFallbacks: tr.Counter("resilience.fallbacks"),
		cDeadline:  tr.Counter("resilience.deadline_exceeded"),
		cHedges:    tr.Counter("resilience.hedges"),
		cHedgeWins: tr.Counter("resilience.hedge_wins"),
		cTrims:     tr.Counter("resilience.adaptive_trims"),
		// Counter names are lowercase dotted by convention (the varz
		// exposition folds case, so mixed case would desync /tracez
		// from /varz).
		cLabelRejects: tr.Counter("resilience.label_rejects"),
		cFaults:       tr.Counter("resilience.faults." + strings.ToLower(backend)),
	}
	if p.HedgeQuantile > 0 {
		in.lat = quantile.New(
			quantile.Target{Quantile: 0.5, Epsilon: 0.02},
			quantile.Target{Quantile: p.HedgeQuantile, Epsilon: 0.005},
		)
		// Mirror the hedge-driving sketch into a trace stage so /varz
		// and /metricsz expose the per-backend latency quantiles the
		// hedge delay is derived from — hedge tuning was blind without
		// them. Salted obj/act: both wrappers may front one backend
		// name.
		in.latStage = tr.Stage("resilience.latency." + salt + "." + strings.ToLower(backend))
	}
	if p.LabelBreaker {
		in.labels = map[annot.Label]*Breaker{}
	}
	return in
}

// fastPath reports whether a call may bypass the policy machinery
// entirely: the backend can neither fail nor block (detect's
// infallible adapters), so the deadline context, breaker round-trip
// and backoff loop are dead weight it cannot observe. The caller still
// counts the call and must fall into invoke if the backend errors
// after all.
func (in *invoker) fastPath(ctx context.Context) bool {
	return in.fast && ctx.Err() == nil
}

// invoke runs call under the policy: deadline and optional hedge per
// round, bounded retries with jittered backoff, breaker gating. It
// reports whether the caller must fall back (all rounds failed,
// circuit open, or ctx done). The payload is returned by value — with
// hedging, two racers may produce results concurrently, so the call
// closure must not write through captured variables.
func invoke[T any](in *invoker, ctx context.Context, unit int, call func(context.Context) (T, error)) (T, bool) {
	var zero T
	maxRetries := in.policy.MaxRetries
	if eff := in.budget.Retries(maxRetries); eff < maxRetries {
		maxRetries = eff
		in.trims.Add(1)
		in.cTrims.Add(1)
	}
	attempts := maxRetries + 1
	prev := in.policy.BaseBackoff
	for attempt := 0; attempt < attempts; attempt++ {
		if ctx.Err() != nil {
			break
		}
		if !in.breaker.Allow() {
			in.rejects.Add(1)
			break
		}
		start := time.Now()
		v, err := attemptRound(in, ctx, attempt, call)
		if err == nil {
			in.breaker.Success()
			in.observeLatency(time.Since(start))
			return v, false
		}
		in.breaker.Failure()
		in.errs.Add(1)
		in.cFaults.Add(1)
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			in.deadlines.Add(1)
			in.cDeadline.Add(1)
		}
		if ctx.Err() != nil {
			break // the query itself is being cancelled; don't retry
		}
		if attempt+1 < attempts {
			in.retries.Add(1)
			in.cRetries.Add(1)
			prev = in.backoff(unit, attempt, prev)
			if sleepCtx(ctx, prev) != nil {
				break
			}
		}
	}
	return zero, true
}

// attemptRound runs one retry round: the primary attempt plus — when
// hedging is armed and the primary outlives the observed latency
// quantile — a racing hedge replica. The first completed result
// decides the round and the loser is cancelled. Both racers carry the
// same fault.Call attempt, so the injector's decisive draws agree
// between them: whether the hedge launches (and which racer finishes
// first) moves wall-clock time, never bytes.
func attemptRound[T any](in *invoker, ctx context.Context, attempt int, call func(context.Context) (T, error)) (T, error) {
	delay, hedged := in.hedgeDelay()
	if !hedged {
		return runAttempt(in, ctx, attempt, 0, call)
	}
	type result struct {
		v       T
		err     error
		replica int
	}
	ch := make(chan result, 2)
	rctx, cancel := context.WithCancel(ctx)
	defer cancel() // reaps the loser
	run := func(replica int) {
		go func() {
			v, err := runAttempt(in, rctx, attempt, replica, call)
			ch <- result{v, err, replica}
		}()
	}
	run(0)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var first result
	launched := false
	select {
	case first = <-ch:
	case <-timer.C:
		launched = true
		in.hedges.Add(1)
		in.cHedges.Add(1)
		run(1)
		first = <-ch
	}
	if launched && first.replica == 1 {
		in.hedgeWins.Add(1)
		in.cHedgeWins.Add(1)
	}
	return first.v, first.err
}

// runAttempt executes one racer of one round under the per-attempt
// deadline, stamping the fault.Call coordinates the injector keys on.
func runAttempt[T any](in *invoker, ctx context.Context, attempt, replica int, call func(context.Context) (T, error)) (T, error) {
	cctx := fault.WithCall(ctx, attempt, replica)
	if in.policy.Deadline > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(cctx, in.policy.Deadline)
		defer cancel()
	}
	return call(cctx)
}

// hedgeDelay reports the current hedge trigger: the observed latency
// quantile of successful rounds, floored at hedgeFloor, once enough
// samples exist.
func (in *invoker) hedgeDelay() (time.Duration, bool) {
	if in.lat == nil || in.mode.Get() >= ModeNoHedge {
		return 0, false
	}
	in.latMu.Lock()
	defer in.latMu.Unlock()
	if in.lat.Count() < in.policy.hedgeMinSamples() {
		return 0, false
	}
	d := time.Duration(in.lat.Query(in.policy.HedgeQuantile))
	if d < hedgeFloor {
		d = hedgeFloor
	}
	return d, true
}

func (in *invoker) observeLatency(d time.Duration) {
	if in.lat == nil {
		return
	}
	in.latMu.Lock()
	in.lat.Observe(float64(d))
	in.latMu.Unlock()
	in.latStage.Observe(d)
}

// partition splits labels into those admitted by their per-label
// breakers and those shed (served by the fallback chain instead). With
// the policy's LabelBreaker off, every label is admitted.
func (in *invoker) partition(labels []annot.Label) (allowed, shed []annot.Label) {
	if in.labels == nil {
		return labels, nil
	}
	for _, l := range labels {
		if in.labelBreaker(l).Allow() {
			allowed = append(allowed, l)
		} else {
			shed = append(shed, l)
			in.labelRejects.Add(1)
			in.cLabelRejects.Add(1)
		}
	}
	return allowed, shed
}

func (in *invoker) labelBreaker(l annot.Label) *Breaker {
	in.labelMu.Lock()
	defer in.labelMu.Unlock()
	b := in.labels[l]
	if b == nil {
		b = NewBreaker(in.policy.BreakerFailures, in.policy.BreakerCooldown)
		in.labels[l] = b
	}
	return b
}

// reportLabels feeds the invocation's decisive outcome to every label
// the call carried. Failures are attributed to all of them — exact
// when callers issue single-label calls, conservative for batches —
// and a label whose Allow admitted a half-open probe always hears the
// verdict, so probes cannot wedge.
func (in *invoker) reportLabels(labels []annot.Label, ok bool) {
	if in.labels == nil {
		return
	}
	for _, l := range labels {
		b := in.labelBreaker(l)
		if ok {
			b.Success()
		} else {
			b.Failure()
		}
	}
}

// noteDegraded records one degraded serve: which unit, and which chain
// hop answered (1..len(chain) for configured hops, len(chain)+1 for
// the prior sampler). A unit served twice keeps its worst hop.
func (in *invoker) noteDegraded(unit, hop int) {
	in.fallbacks.Add(1)
	in.cFallbacks.Add(1)
	in.mu.Lock()
	if old, seen := in.degraded[unit]; !seen || hop > old {
		in.degraded[unit] = hop
	}
	for len(in.hopCounts) < hop {
		in.hopCounts = append(in.hopCounts, 0)
	}
	in.hopCounts[hop-1]++
	in.mu.Unlock()
}

// backoff computes the next decorrelated-jitter delay: uniform in
// [base, 3·prev], capped at MaxBackoff. The jitter is a pure hash of
// (seed, stream, unit, attempt) so runs are reproducible.
func (in *invoker) backoff(unit, attempt int, prev time.Duration) time.Duration {
	lo := in.policy.BaseBackoff
	if lo <= 0 {
		return 0
	}
	hi := 3 * prev
	if hi < lo {
		hi = lo
	}
	if max := in.policy.MaxBackoff; max > 0 && hi > max {
		hi = max
	}
	u := unitRand(hashKey(in.policy.Seed, in.salt+"/backoff", int64(unit)), uint64(attempt))
	return lo + time.Duration(u*float64(hi-lo))
}

func (in *invoker) degradedUnits() []int {
	in.mu.Lock()
	out := make([]int, 0, len(in.degraded))
	for u := range in.degraded {
		out = append(out, u)
	}
	in.mu.Unlock()
	sort.Ints(out)
	return out
}

func (in *invoker) degradedHops() map[int]int {
	in.mu.Lock()
	out := make(map[int]int, len(in.degraded))
	for u, hop := range in.degraded {
		out[u] = hop
	}
	in.mu.Unlock()
	return out
}

func (in *invoker) stats() Stats {
	in.mu.Lock()
	n := len(in.degraded)
	hops := append([]int64(nil), in.hopCounts...)
	in.mu.Unlock()
	var labelOpens int64
	if in.labels != nil {
		in.labelMu.Lock()
		for _, b := range in.labels {
			labelOpens += b.Opens()
		}
		in.labelMu.Unlock()
	}
	var hedgeDelayUS float64
	if d, ok := in.hedgeDelay(); ok {
		hedgeDelayUS = float64(d) / float64(time.Microsecond)
	}
	return Stats{
		Calls:             in.calls.Load(),
		Errors:            in.errs.Load(),
		Retries:           in.retries.Load(),
		Fallbacks:         in.fallbacks.Load(),
		DeadlineExceeded:  in.deadlines.Load(),
		BreakerRejects:    in.rejects.Load(),
		BreakerOpens:      in.breaker.Opens(),
		BreakerState:      in.breaker.State().String(),
		DegradedUnits:     n,
		Hedges:            in.hedges.Load(),
		HedgeWins:         in.hedgeWins.Load(),
		HedgeDelayUS:      hedgeDelayUS,
		AdaptiveTrims:     in.trims.Load(),
		LabelRejects:      in.labelRejects.Load(),
		LabelBreakerOpens: labelOpens,
		FallbackHops:      hops,
	}
}

// Mode is the policy posture a brownout level imposes on the
// wrappers. It orders from full service to maximum degradation; each
// step strictly contains the previous one's restrictions.
type Mode int32

const (
	// ModeFull applies the configured policy unchanged.
	ModeFull Mode = iota
	// ModeNoHedge suppresses hedged duplicate calls.
	ModeNoHedge
	// ModeCheap skips the primary backend: every unit is served by
	// the fallback chain's first surviving hop (the cheaper profile)
	// and recorded as a degraded serve.
	ModeCheap
	// ModePrior skips models entirely: every unit is served by the
	// bgprob prior sampler (the chain's implicit last hop).
	ModePrior
)

// ModeVar is a shared, atomically-updated Mode. One var is consulted
// per call by every wrapper built with it, so the host (the brownout
// controller) flips all sessions' posture at once without walking
// them. The nil ModeVar is pinned at ModeFull.
type ModeVar struct{ v atomic.Int32 }

// Set publishes a new posture.
func (m *ModeVar) Set(md Mode) {
	if m != nil {
		m.v.Store(int32(md))
	}
}

// Get returns the current posture (ModeFull on nil).
func (m *ModeVar) Get() Mode {
	if m == nil {
		return ModeFull
	}
	return Mode(m.v.Load())
}

// Options configures the wrappers beyond the policy.
type Options struct {
	// Ctx is the base context of infallible-interface calls (the
	// session's or ingest run's lifetime); nil means Background.
	Ctx context.Context
	// Tracer receives resilience.* counters; nil is fine.
	Tracer *trace.Tracer
	// Budget, when set, adaptively trims MaxRetries as serving load
	// rises; feed it the worker pool's queue waits
	// (pool.SetObserver → Budget.Observe). Nil keeps the static budget.
	Budget *AdaptiveBudget
	// FallbackObjects / FallbackActions form the degradation chain
	// tried in order for units the primary cannot serve: each hop gets
	// one attempt under the policy deadline, a failing hop passes the
	// unit on, and the bgprob prior sampler is the implicit final hop
	// (it never fails). Wrap infallible profiles with
	// detect.AsFallibleObject / AsFallibleAction.
	FallbackObjects []detect.FallibleObjectDetector
	FallbackActions []detect.FallibleActionRecognizer
	// Thresholds separate above/below-threshold fallback scores;
	// zero means detect.DefaultThresholds.
	Thresholds detect.Thresholds
	// Mode, when set, lets the host degrade the policy in place (the
	// brownout ladder): ModeNoHedge mutes hedging, ModeCheap routes
	// every call straight to the fallback chain, ModePrior straight
	// to the prior sampler — each recorded through the normal
	// degraded-unit accounting so downstream score discounting stays
	// honest. Nil pins ModeFull.
	Mode *ModeVar
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) thresholds() detect.Thresholds {
	if o.Thresholds == (detect.Thresholds{}) {
		return detect.DefaultThresholds()
	}
	return o.Thresholds
}

// Detector wraps a fallible object detection backend with the policy
// and presents the infallible detect.ObjectDetector interface: Detect
// never fails — it degrades.
type Detector struct {
	backend detect.FallibleObjectDetector
	in      *invoker
	base    context.Context
	chain   []detect.FallibleObjectDetector
	p0      float64
	thr     float64
	seed    int64
}

// NewDetector wraps backend under policy p.
func NewDetector(backend detect.FallibleObjectDetector, p Policy, opt Options) *Detector {
	in := newInvoker(p, "obj", backend.Name(), opt)
	_, in.fast = backend.(detect.InfallibleBackend)
	return &Detector{
		backend: backend,
		in:      in,
		base:    opt.ctx(),
		chain:   opt.FallbackObjects,
		p0:      p.fallbackP(),
		thr:     opt.thresholds().Object,
		seed:    p.Seed,
	}
}

// Name implements detect.ObjectDetector.
func (d *Detector) Name() string { return d.backend.Name() }

// Detect implements detect.ObjectDetector: the backend under the
// policy, falling back on exhaustion. It never fails.
func (d *Detector) Detect(v video.FrameIdx, labels []annot.Label) []detect.Detection {
	dets, _ := d.DetectCtx(d.base, v, labels)
	return dets
}

// DetectCtx runs one resilient detection and reports whether any part
// of the result came from the fallback chain (degraded).
func (d *Detector) DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, bool) {
	if mode := d.in.mode.Get(); mode >= ModeCheap {
		// Brownout posture: skip the primary (even an infallible one)
		// and serve degraded — the cheap chain hop, or the prior
		// outright — so overload sheds model cost, not correctness
		// accounting.
		d.in.calls.Add(1)
		var dets []detect.Detection
		var hop int
		if mode >= ModePrior {
			dets, hop = priorDetections(d.seed, d.p0, d.thr, v, labels), len(d.chain)+1
		} else {
			dets, hop = d.chainDetect(ctx, v, labels)
		}
		d.in.noteDegraded(int(v), hop)
		return dets, true
	}
	if d.in.fastPath(ctx) {
		if dets, err := d.backend.DetectCtx(ctx, v, labels); err == nil {
			d.in.calls.Add(1)
			return dets, false
		}
	}
	d.in.calls.Add(1)
	allowed, shed := d.in.partition(labels)
	var out []detect.Detection
	hop := 0
	if len(allowed) > 0 {
		dets, exhausted := invoke(d.in, ctx, int(v), func(cctx context.Context) ([]detect.Detection, error) {
			return d.backend.DetectCtx(cctx, v, allowed)
		})
		d.in.reportLabels(allowed, !exhausted)
		if exhausted {
			dets, hop = d.chainDetect(ctx, v, allowed)
		}
		out = dets
	}
	if len(shed) > 0 {
		dets, shedHop := d.chainDetect(ctx, v, shed)
		out = append(out, dets...)
		if shedHop > hop {
			hop = shedHop
		}
	}
	if hop == 0 {
		return out, false
	}
	d.in.noteDegraded(int(v), hop)
	return out, true
}

// chainDetect walks the fallback chain for one unit: each hop gets a
// single attempt under the policy deadline; the prior sampler is the
// unconditional last hop. It returns the detections and the 1-based
// hop that served them.
func (d *Detector) chainDetect(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, int) {
	for i, hopBackend := range d.chain {
		hctx, cancel := ctx, context.CancelFunc(func() {})
		if d.in.policy.Deadline > 0 {
			hctx, cancel = context.WithTimeout(ctx, d.in.policy.Deadline)
		}
		dets, err := hopBackend.DetectCtx(hctx, v, labels)
		cancel()
		if err == nil {
			return dets, i + 1
		}
	}
	return priorDetections(d.seed, d.p0, d.thr, v, labels), len(d.chain) + 1
}

// Stats snapshots the resilience counters.
func (d *Detector) Stats() Stats { return d.in.stats() }

// DegradedFrames returns the sorted frame indices served degraded.
func (d *Detector) DegradedFrames() []int { return d.in.degradedUnits() }

// DegradedHops maps each degraded frame to the 1-based chain hop that
// served it (len(chain)+1 = the prior sampler).
func (d *Detector) DegradedHops() map[int]int { return d.in.degradedHops() }

// Breaker exposes the backend's circuit breaker (for reporting).
func (d *Detector) Breaker() *Breaker { return d.in.breaker }

// LabelBreaker exposes the per-label breaker of one label, creating it
// closed on first use; it returns nil when the policy has per-label
// breakers off.
func (d *Detector) LabelBreaker(l annot.Label) *Breaker {
	if d.in.labels == nil {
		return nil
	}
	return d.in.labelBreaker(l)
}

// Recognizer wraps a fallible action recognition backend; the shot-
// level counterpart of Detector.
type Recognizer struct {
	backend detect.FallibleActionRecognizer
	in      *invoker
	base    context.Context
	chain   []detect.FallibleActionRecognizer
	p0      float64
	thr     float64
	seed    int64
}

// NewRecognizer wraps backend under policy p.
func NewRecognizer(backend detect.FallibleActionRecognizer, p Policy, opt Options) *Recognizer {
	in := newInvoker(p, "act", backend.Name(), opt)
	_, in.fast = backend.(detect.InfallibleBackend)
	return &Recognizer{
		backend: backend,
		in:      in,
		base:    opt.ctx(),
		chain:   opt.FallbackActions,
		p0:      p.fallbackP(),
		thr:     opt.thresholds().Action,
		seed:    p.Seed,
	}
}

// Name implements detect.ActionRecognizer.
func (r *Recognizer) Name() string { return r.backend.Name() }

// Recognize implements detect.ActionRecognizer; it never fails.
func (r *Recognizer) Recognize(s video.ShotIdx, labels []annot.Label) []detect.ActionScore {
	scores, _ := r.RecognizeCtx(r.base, s, labels)
	return scores
}

// RecognizeCtx runs one resilient recognition and reports whether the
// result is degraded.
func (r *Recognizer) RecognizeCtx(ctx context.Context, s video.ShotIdx, labels []annot.Label) ([]detect.ActionScore, bool) {
	if mode := r.in.mode.Get(); mode >= ModeCheap {
		r.in.calls.Add(1)
		var scores []detect.ActionScore
		var hop int
		if mode >= ModePrior {
			scores, hop = priorScores(r.seed, r.p0, r.thr, s, labels), len(r.chain)+1
		} else {
			scores, hop = r.chainRecognize(ctx, s, labels)
		}
		r.in.noteDegraded(int(s), hop)
		return scores, true
	}
	if r.in.fastPath(ctx) {
		if scores, err := r.backend.RecognizeCtx(ctx, s, labels); err == nil {
			r.in.calls.Add(1)
			return scores, false
		}
	}
	r.in.calls.Add(1)
	allowed, shed := r.in.partition(labels)
	var out []detect.ActionScore
	hop := 0
	if len(allowed) > 0 {
		scores, exhausted := invoke(r.in, ctx, int(s), func(cctx context.Context) ([]detect.ActionScore, error) {
			return r.backend.RecognizeCtx(cctx, s, allowed)
		})
		r.in.reportLabels(allowed, !exhausted)
		if exhausted {
			scores, hop = r.chainRecognize(ctx, s, allowed)
		}
		out = scores
	}
	if len(shed) > 0 {
		scores, shedHop := r.chainRecognize(ctx, s, shed)
		out = append(out, scores...)
		if shedHop > hop {
			hop = shedHop
		}
	}
	if hop == 0 {
		return out, false
	}
	r.in.noteDegraded(int(s), hop)
	return out, true
}

// chainRecognize mirrors chainDetect at the shot level.
func (r *Recognizer) chainRecognize(ctx context.Context, s video.ShotIdx, labels []annot.Label) ([]detect.ActionScore, int) {
	for i, hopBackend := range r.chain {
		hctx, cancel := ctx, context.CancelFunc(func() {})
		if r.in.policy.Deadline > 0 {
			hctx, cancel = context.WithTimeout(ctx, r.in.policy.Deadline)
		}
		scores, err := hopBackend.RecognizeCtx(hctx, s, labels)
		cancel()
		if err == nil {
			return scores, i + 1
		}
	}
	return priorScores(r.seed, r.p0, r.thr, s, labels), len(r.chain) + 1
}

// Stats snapshots the resilience counters.
func (r *Recognizer) Stats() Stats { return r.in.stats() }

// DegradedShots returns the sorted shot indices served degraded.
func (r *Recognizer) DegradedShots() []int { return r.in.degradedUnits() }

// DegradedHops maps each degraded shot to the 1-based chain hop that
// served it.
func (r *Recognizer) DegradedHops() map[int]int { return r.in.degradedHops() }

// Breaker exposes the backend's circuit breaker (for reporting).
func (r *Recognizer) Breaker() *Breaker { return r.in.breaker }

// LabelBreaker exposes the per-label breaker of one label; nil when
// per-label breakers are off.
func (r *Recognizer) LabelBreaker(l annot.Label) *Breaker {
	if r.in.labels == nil {
		return nil
	}
	return r.in.labelBreaker(l)
}

// priorDetections is the degradation fallback without a configured
// fallback model: sample a detection per (label, frame) at the prior
// rate p0 — the bgprob "rare by default" assumption. Deterministic per
// (seed, label, frame).
func priorDetections(seed int64, p0, thr float64, v video.FrameIdx, labels []annot.Label) []detect.Detection {
	var out []detect.Detection
	for _, label := range labels {
		key := hashKey(seed, "prior/obj:"+string(label), int64(v))
		if unitRand(key, 0) >= p0 {
			continue
		}
		out = append(out, detect.Detection{
			Label: label,
			Score: thr + (1-thr)*unitRand(key, 1),
		})
	}
	return out
}

// priorScores mirrors priorDetections at the shot level: every
// requested label gets a score, above threshold with probability p0.
func priorScores(seed int64, p0, thr float64, s video.ShotIdx, labels []annot.Label) []detect.ActionScore {
	out := make([]detect.ActionScore, len(labels))
	for i, label := range labels {
		key := hashKey(seed, "prior/act:"+string(label), int64(s))
		score := thr * unitRand(key, 1)
		if unitRand(key, 0) < p0 {
			score = thr + (1-thr)*unitRand(key, 1)
		}
		out[i] = detect.ActionScore{Label: label, Score: score}
	}
	return out
}

// Models bundles a resilient detector/recognizer pair — what a session
// or ingest run threads through its engines.
type Models struct {
	Det *Detector
	Rec *Recognizer
}

// Wrap builds resilient wrappers around an (infallible or fallible)
// detector/recognizer pair. Infallible backends are adapted first, so
// Wrap is safe — and nearly free — on the plain simulators.
func Wrap(det detect.ObjectDetector, rec detect.ActionRecognizer, p Policy, opt Options) *Models {
	return &Models{
		Det: NewDetector(detect.AsFallibleObject(det), p, opt),
		Rec: NewRecognizer(detect.AsFallibleAction(rec), p, opt),
	}
}

// WrapFallible builds resilient wrappers directly over fallible
// backends (e.g. fault injectors).
func WrapFallible(det detect.FallibleObjectDetector, rec detect.FallibleActionRecognizer, p Policy, opt Options) *Models {
	return &Models{
		Det: NewDetector(det, p, opt),
		Rec: NewRecognizer(rec, p, opt),
	}
}

// Stats sums the pair's counters through Stats.Add — the same
// aggregation path the serving daemon uses across sessions — so the
// detector+recognizer roll-up cannot drift from the /metricsz one;
// breaker state reports the worse of the two (open > half-open >
// closed).
func (m *Models) Stats() Stats {
	if m == nil {
		return Stats{BreakerState: StateClosed.String()}
	}
	out := m.Det.Stats()
	out.Add(m.Rec.Stats())
	return out
}

// Degraded reports whether any unit has been served degraded.
func (m *Models) Degraded() bool {
	if m == nil {
		return false
	}
	return m.Det.Stats().Fallbacks+m.Rec.Stats().Fallbacks > 0
}

// sleepCtx waits for d unless ctx fires first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Deterministic hash RNG, mirroring package detect's (unexported
// there): decisions must be pure functions of their coordinates.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashKey(seed int64, salt string, unit int64) uint64 {
	h := splitmix64(uint64(seed))
	for _, b := range []byte(salt) {
		h = splitmix64(h ^ uint64(b))
	}
	return splitmix64(h ^ uint64(unit))
}

func unitRand(key uint64, n uint64) float64 {
	v := splitmix64(key + n*0x9e3779b97f4a7c15)
	return float64(v>>11) / float64(1<<53)
}
