// Package vql implements the SQL-like video query language of the
// paper's examples (§1–2):
//
//	SELECT MERGE(clipID) AS Sequence
//	FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector,
//	      act USING ActionRecognizer)
//	WHERE act = 'jumping' AND obj.include('car', 'human')
//
// and the offline form with ranking:
//
//	SELECT MERGE(clipID) AS Sequence, RANK(act, obj)
//	FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectTracker,
//	      act USING ActionRecognizer)
//	WHERE act = 'jumping' AND obj.include('car', 'human')
//	ORDER BY RANK(act, obj) LIMIT 5
//
// The package provides a lexer, a recursive-descent parser producing an
// AST, and a compiler lowering the AST to the engine's Query form. The
// WHERE clause supports conjunctions of action equality predicates and
// obj.include(...) object-presence predicates; multiple actions and
// disjunctions (footnotes 3–4 of the paper) are accepted by the grammar
// and lowered to conjunctive normal form.
package vql

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // quoted literal
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokEq
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string literal"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokEq:
		return "'='"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the input, for error messages
}

// Error is a query-language error with position information.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("vql: at offset %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ErrPosition extracts the byte offset of the offending token from a
// lex, parse or compile error, so callers (the HTTP API's 400
// responses, CLI diagnostics) can point at the problem in the query
// text. The second return is false when err carries no position.
func ErrPosition(err error) (int, bool) {
	var e *Error
	if errors.As(err, &e) {
		return e.Pos, true
	}
	return 0, false
}

// lex tokenizes the query text.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, errf(i, "unterminated string literal")
			}
			toks = append(toks, token{tokString, src[i+1 : j], i})
			i = j + 1
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			return nil, errf(i, "unexpected character %q", c)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

// keyword reports whether tok is the given case-insensitive keyword.
func (t token) keyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
