package vql

import "testing"

// BenchmarkParseAndCompile measures the full front-end on the paper's
// offline example query.
func BenchmarkParseAndCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseAndCompile(offlineQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCNFLowering(b *testing.B) {
	st, err := Parse(`SELECT MERGE(c) FROM (PROCESS v PRODUCE c)
	WHERE (act='a' AND obj.include('x','y')) OR (act='b' AND obj.include('z'))`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(st); err != nil {
			b.Fatal(err)
		}
	}
}
