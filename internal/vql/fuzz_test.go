package vql

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that anything it
// accepts also compiles or fails with a proper error (never a panic).
func FuzzParse(f *testing.F) {
	seeds := []string{
		onlineQuery,
		offlineQuery,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE rel('a','near','b')`,
		`SELECT x FROM (PROCESS v PRODUCE a, b USING M) WHERE a='x' OR (b.include('y') AND a='z')`,
		`SELECT`,
		`SELECT MERGE(c FROM`,
		`'`,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) LIMIT 99999999999999999999`,
		"SELECT \x00",
		// Malformed shapes the HTTP API is most likely to receive:
		// unquoted literals, doubled operators, wrong method names,
		// smart quotes pasted from documents, truncated clauses,
		// JSON-escaped newlines surviving into the query string, and
		// ranked statements missing LIMIT.
		`SELECT MERGE(clipID) FROM (PROCESS cam PRODUCE clipID, act USING A) WHERE act = blowing_leaves`,
		`SELECT MERGE(clipID) FROM (PROCESS cam PRODUCE clipID) WHERE act == 'jumping'`,
		`SELECT MERGE(clipID) FROM (PROCESS cam PRODUCE clipID) WHERE obj.includes('car')`,
		"SELECT MERGE(clipID) FROM (PROCESS cam PRODUCE clipID) WHERE act = ‘jumping’",
		`SELECT MERGE(clipID) FROM (PROCESS cam PRODUCE clipID) WHERE`,
		`SELECT MERGE(clipID) FROM (PROCESS cam PRODUCE clipID) WHERE act = 'a' AND`,
		"SELECT MERGE(clipID)\\nFROM (PROCESS cam PRODUCE clipID)\\nWHERE act = 'a'",
		`SELECT MERGE(clipID), RANK(act) FROM (PROCESS v PRODUCE clipID) WHERE act = 'a' ORDER BY RANK(act)`,
		`SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) WHERE act = 'a' ORDER BY RANK(act) LIMIT 0`,
		`SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) WHERE rel('a','near')`,
		`{"query": "SELECT MERGE(clipID)"}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			// Parse errors must carry an in-range position.
			if pos, ok := ErrPosition(err); !ok {
				t.Errorf("parse error without position: %v", err)
			} else if pos < 0 || pos > len(src) {
				t.Errorf("parse error position %d outside input of length %d: %v", pos, len(src), err)
			}
			return
		}
		if _, err := Compile(st); err != nil {
			if pos, ok := ErrPosition(err); !ok {
				t.Errorf("compile error without position: %v", err)
			} else if pos < 0 || pos > len(src) {
				t.Errorf("compile error position %d outside input of length %d: %v", pos, len(src), err)
			}
			return
		}
	})
}

// FuzzLex checks the tokenizer against arbitrary bytes.
func FuzzLex(f *testing.F) {
	f.Add("SELECT a = 'b' AND c.include('d')")
	f.Add(strings.Repeat("(", 100))
	f.Add("123abc_x.y,z='w'")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("token stream not EOF-terminated: %v", toks)
		}
	})
}
