package vql

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that anything it
// accepts also compiles or fails with a proper error (never a panic).
func FuzzParse(f *testing.F) {
	seeds := []string{
		onlineQuery,
		offlineQuery,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE rel('a','near','b')`,
		`SELECT x FROM (PROCESS v PRODUCE a, b USING M) WHERE a='x' OR (b.include('y') AND a='z')`,
		`SELECT`,
		`SELECT MERGE(c FROM`,
		`'`,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) LIMIT 99999999999999999999`,
		"SELECT \x00",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := Compile(st); err != nil {
			return
		}
	})
}

// FuzzLex checks the tokenizer against arbitrary bytes.
func FuzzLex(f *testing.F) {
	f.Add("SELECT a = 'b' AND c.include('d')")
	f.Add(strings.Repeat("(", 100))
	f.Add("123abc_x.y,z='w'")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("token stream not EOF-terminated: %v", toks)
		}
	})
}
