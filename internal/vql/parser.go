package vql

import (
	"strconv"
	"strings"
)

// Statement is the parsed form of a VQL query.
type Statement struct {
	// Select lists the projection items (MERGE(clipID) AS alias,
	// RANK(...)).
	Select []SelectItem
	// Input names the video (or stream) in the PROCESS clause.
	Input string
	// Produce lists the PROCESS ... PRODUCE bindings.
	Produce []Binding
	// Where is the predicate tree (nil if absent).
	Where Expr
	// OrderByRank is true when an ORDER BY RANK(...) clause is present.
	OrderByRank bool
	// Limit is the LIMIT K value; 0 means absent.
	Limit int
	// WherePos and OrderPos are the byte offsets of the WHERE and ORDER
	// keywords (−1 when the clause is absent), carried through so
	// Compile can report positioned semantic errors.
	WherePos int
	OrderPos int
}

// SelectItem is one projection item.
type SelectItem struct {
	Func  string   // "MERGE" or "RANK" (empty for a bare column)
	Args  []string // argument identifiers
	Alias string   // AS alias, optional
	Pos   int      // byte offset of the item's first token
}

// Binding is one PRODUCE item, optionally bound to a model with USING.
type Binding struct {
	Name  string // e.g. clipID, obj, act, frameSequence, det
	Model string // e.g. ObjectDetector, ActionRecognizer (optional)
}

// Expr is a WHERE-clause predicate tree.
type Expr interface{ isExpr() }

// And / Or are boolean connectives.
type And struct{ L, R Expr }

// Or is a disjunction (lowered to CNF by the compiler).
type Or struct{ L, R Expr }

// ActionEq is `act = 'label'`.
type ActionEq struct {
	Column string // the PRODUCE binding referenced (usually "act")
	Label  string
}

// ObjInclude is `obj.include('a', 'b', ...)`.
type ObjInclude struct {
	Column string // usually "obj"
	Labels []string
}

// RelationExpr is `rel('human', 'left_of', 'car')` — the footnote 2
// extension constraining a spatial relationship between two objects.
type RelationExpr struct {
	A, Kind, B string
}

func (And) isExpr()          {}
func (Or) isExpr()           {}
func (ActionEq) isExpr()     {}
func (ObjInclude) isExpr()   {}
func (RelationExpr) isExpr() {}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a VQL statement.
func Parse(src string) (*Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.peek().keyword("") && p.peek().kind != tokEOF {
		return nil, errf(p.peek().pos, "unexpected %s %q after statement", p.peek().kind, p.peek().text)
	}
	return st, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !t.keyword(kw) {
		return errf(t.pos, "expected %s, got %q", strings.ToUpper(kw), t.text)
	}
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, errf(t.pos, "expected %s, got %q", kind, t.text)
	}
	return t, nil
}

func (p *parser) statement() (*Statement, error) {
	st := &Statement{WherePos: -1, OrderPos: -1}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Select = append(st.Select, item)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("PROCESS"); err != nil {
		return nil, err
	}
	in, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	st.Input = in.text
	if err := p.expectKeyword("PRODUCE"); err != nil {
		return nil, err
	}
	for {
		b, err := p.binding()
		if err != nil {
			return nil, err
		}
		st.Produce = append(st.Produce, b)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if p.peek().keyword("WHERE") {
		st.WherePos = p.next().pos
		st.Where, err = p.orExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.peek().keyword("ORDER") {
		st.OrderPos = p.next().pos
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		t := p.next()
		if !t.keyword("RANK") {
			return nil, errf(t.pos, "only ORDER BY RANK(...) is supported, got %q", t.text)
		}
		if err := p.skipParenGroup(); err != nil {
			return nil, err
		}
		st.OrderByRank = true
	}
	if p.peek().keyword("LIMIT") {
		p.next()
		n, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		k, err := strconv.Atoi(n.text)
		if err != nil || k <= 0 {
			return nil, errf(n.pos, "LIMIT must be a positive integer, got %q", n.text)
		}
		st.Limit = k
	}
	return st, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Pos: t.pos}
	if p.peek().kind == tokLParen {
		item.Func = strings.ToUpper(t.text)
		p.next()
		for p.peek().kind != tokRParen {
			a, err := p.expect(tokIdent)
			if err != nil {
				return item, err
			}
			item.Args = append(item.Args, a.text)
			if p.peek().kind == tokComma {
				p.next()
			}
		}
		p.next() // ')'
	} else {
		item.Args = []string{t.text}
	}
	if p.peek().keyword("AS") {
		p.next()
		a, err := p.expect(tokIdent)
		if err != nil {
			return item, err
		}
		item.Alias = a.text
	}
	return item, nil
}

func (p *parser) binding() (Binding, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return Binding{}, err
	}
	b := Binding{Name: t.text}
	if p.peek().keyword("USING") {
		p.next()
		m, err := p.expect(tokIdent)
		if err != nil {
			return b, err
		}
		b.Model = m.text
	}
	return b, nil
}

// skipParenGroup consumes a balanced parenthesized group.
func (p *parser) skipParenGroup() error {
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.next()
		switch t.kind {
		case tokLParen:
			depth++
		case tokRParen:
			depth--
		case tokEOF:
			return errf(t.pos, "unbalanced parentheses")
		}
	}
	return nil
}

// orExpr := andExpr { OR andExpr }
func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().keyword("OR") {
		p.next()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = Or{L: left, R: right}
	}
	return left, nil
}

// andExpr := primary { AND primary }
func (p *parser) andExpr() (Expr, error) {
	left, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.peek().keyword("AND") {
		p.next()
		right, err := p.primary()
		if err != nil {
			return nil, err
		}
		left = And{L: left, R: right}
	}
	return left, nil
}

// primary := '(' orExpr ')' | ident '=' string | ident '.' ident '(' strings ')'
func (p *parser) primary() (Expr, error) {
	if p.peek().kind == tokLParen {
		p.next()
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	col, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if strings.EqualFold(col.text, "rel") && p.peek().kind == tokLParen {
		return p.relationExpr()
	}
	switch p.peek().kind {
	case tokEq:
		p.next()
		lit, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		return ActionEq{Column: col.text, Label: lit.text}, nil
	case tokDot:
		p.next()
		m, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if !strings.EqualFold(m.text, "include") && !strings.EqualFold(m.text, "inc") {
			return nil, errf(m.pos, "unknown method %q (expected include)", m.text)
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		var labels []string
		for p.peek().kind != tokRParen {
			lit, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			labels = append(labels, lit.text)
			if p.peek().kind == tokComma {
				p.next()
			}
		}
		p.next() // ')'
		if len(labels) == 0 {
			return nil, errf(col.pos, "%s.include requires at least one label", col.text)
		}
		return ObjInclude{Column: col.text, Labels: labels}, nil
	default:
		return nil, errf(p.peek().pos, "expected '=' or '.include' after %q", col.text)
	}
}

// relationExpr := REL '(' string ',' string ',' string ')'
func (p *parser) relationExpr() (Expr, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var parts []string
	for i := 0; i < 3; i++ {
		lit, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		parts = append(parts, lit.text)
		if i < 2 {
			if _, err := p.expect(tokComma); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return RelationExpr{A: parts[0], Kind: parts[1], B: parts[2]}, nil
}
