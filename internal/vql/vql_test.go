package vql

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"vaq/internal/annot"
)

const onlineQuery = `
SELECT MERGE(clipID) AS Sequence
FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer)
WHERE act = 'jumping' AND obj.include('car', 'human')`

const offlineQuery = `
SELECT MERGE(clipID) AS Sequence, RANK(act, obj)
FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectTracker, act USING ActionRecognizer)
WHERE act = 'jumping' AND obj.include('car', 'human')
ORDER BY RANK(act, obj) LIMIT 5`

func TestLexBasic(t *testing.T) {
	toks, err := lex(`SELECT a, b(c) WHERE x = 'hi' AND n.inc("q") LIMIT 12`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokenKind, len(toks))
	for i, tk := range toks {
		kinds[i] = tk.kind
	}
	want := []tokenKind{
		tokIdent, tokIdent, tokComma, tokIdent, tokLParen, tokIdent, tokRParen,
		tokIdent, tokIdent, tokEq, tokString, tokIdent, tokIdent, tokDot,
		tokIdent, tokLParen, tokString, tokRParen, tokIdent, tokNumber, tokEOF,
	}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("kinds = %v\nwant  = %v", kinds, want)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex(`'unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex(`a @ b`); err == nil {
		t.Error("bad character accepted")
	}
}

func TestParseOnlineQuery(t *testing.T) {
	st, err := Parse(onlineQuery)
	if err != nil {
		t.Fatal(err)
	}
	if st.Input != "inputVideo" {
		t.Errorf("input = %q", st.Input)
	}
	if len(st.Select) != 1 || st.Select[0].Func != "MERGE" || st.Select[0].Alias != "Sequence" {
		t.Errorf("select = %+v", st.Select)
	}
	if len(st.Produce) != 3 || st.Produce[1].Model != "ObjectDetector" {
		t.Errorf("produce = %+v", st.Produce)
	}
	and, ok := st.Where.(And)
	if !ok {
		t.Fatalf("where = %T", st.Where)
	}
	if _, ok := and.L.(ActionEq); !ok {
		t.Errorf("left = %T", and.L)
	}
	inc, ok := and.R.(ObjInclude)
	if !ok || len(inc.Labels) != 2 {
		t.Errorf("right = %#v", and.R)
	}
	if st.OrderByRank || st.Limit != 0 {
		t.Errorf("unexpected order/limit: %+v", st)
	}
}

func TestParseOfflineQuery(t *testing.T) {
	st, err := Parse(offlineQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !st.OrderByRank || st.Limit != 5 {
		t.Fatalf("order/limit = %v/%d", st.OrderByRank, st.Limit)
	}
	if len(st.Select) != 2 || st.Select[1].Func != "RANK" {
		t.Fatalf("select = %+v", st.Select)
	}
}

func TestParsePaperIntroQuery(t *testing.T) {
	// The §1 example with the `inc` alias.
	src := `SELECT MERGE(clipID) AS Sequence
	FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer)
	WHERE act='robot_dancing' AND obj.inc('car', 'human')`
	plan, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := plan.SimpleQuery()
	if !ok {
		t.Fatal("intro query should be simple")
	}
	if q.Action != "robot_dancing" || len(q.Objects) != 2 {
		t.Fatalf("query = %v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT x FROM y`,                    // FROM must open a PROCESS group
		`SELECT x FROM (PROCESS v)`,          // missing PRODUCE
		`SELECT x FROM (PROCESS v PRODUCE a`, // unclosed paren
		onlineQuery + ` LIMIT 0`,             // non-positive limit
		onlineQuery + ` trailing`,            // garbage after statement
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE a.unknown('x')`,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE obj.include()`,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act <`,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) ORDER BY foo(a)`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted invalid query %q", strings.TrimSpace(src))
		}
	}
}

func TestCompileSimple(t *testing.T) {
	plan, err := ParseAndCompile(onlineQuery)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := plan.SimpleQuery()
	if !ok {
		t.Fatal("conjunctive query should be simple")
	}
	if q.Action != "jumping" {
		t.Errorf("action = %q", q.Action)
	}
	want := []annot.Label{"car", "human"}
	if !reflect.DeepEqual(q.Objects, want) {
		t.Errorf("objects = %v", q.Objects)
	}
	objs, acts := plan.Labels()
	if !reflect.DeepEqual(objs, want) || !reflect.DeepEqual(acts, []annot.Label{"jumping"}) {
		t.Errorf("labels = %v / %v", objs, acts)
	}
	if plan.String() == "" {
		t.Error("String empty")
	}
}

func TestCompileRankRequiresLimit(t *testing.T) {
	src := strings.Replace(offlineQuery, "LIMIT 5", "", 1)
	if _, err := ParseAndCompile(src); err == nil {
		t.Error("ORDER BY RANK without LIMIT accepted")
	}
}

func TestCompileDisjunctionCNF(t *testing.T) {
	src := `SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, obj, act)
	WHERE act = 'running' OR act = 'jumping'`
	plan, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.CNF) != 1 || len(plan.CNF[0]) != 2 {
		t.Fatalf("CNF = %v", plan.CNF)
	}
	if _, ok := plan.SimpleQuery(); ok {
		t.Fatal("disjunction should not be simple")
	}
}

func TestCompileDistributesOrOverAnd(t *testing.T) {
	src := `SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, obj, act)
	WHERE (act = 'a1' AND obj.include('o1')) OR act = 'a2'`
	plan, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	// CNF: (a1 ∨ a2) ∧ (o1 ∨ a2).
	if len(plan.CNF) != 2 {
		t.Fatalf("CNF = %v", plan.CNF)
	}
	for _, clause := range plan.CNF {
		if len(clause) != 2 {
			t.Fatalf("clause = %v", clause)
		}
	}
}

func TestCompileMultipleActions(t *testing.T) {
	src := `SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, act)
	WHERE act = 'running' AND act = 'smiling'`
	plan, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.SimpleQuery(); ok {
		t.Fatal("two distinct actions should not be simple")
	}
	objs, acts := plan.Labels()
	if len(objs) != 0 || len(acts) != 2 {
		t.Fatalf("labels = %v / %v", objs, acts)
	}
}

func TestCompileDedupsObjects(t *testing.T) {
	src := `SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, obj)
	WHERE obj.include('car') AND obj.include('car')`
	plan, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := plan.SimpleQuery()
	if !ok || len(q.Objects) != 1 {
		t.Fatalf("query = %v ok=%v", q, ok)
	}
}

func TestErrorType(t *testing.T) {
	_, err := Parse(`SELECT ???`)
	if err == nil {
		t.Fatal("want error")
	}
	var e *Error
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("error lacks position: %v", err)
	}
	_ = e
}

func TestParenthesizedWhere(t *testing.T) {
	src := `SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, obj, act)
	WHERE (act = 'a' AND (obj.include('b')))`
	plan, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	if q, ok := plan.SimpleQuery(); !ok || q.Action != "a" {
		t.Fatalf("query = %v", q)
	}
}

func TestParseRelationPredicate(t *testing.T) {
	src := `SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, obj, act)
	WHERE act = 'loading' AND obj.include('person', 'car') AND rel('person', 'left_of', 'car')`
	plan, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.SimpleQuery(); ok {
		t.Fatal("plan with relations should not be SimpleQuery")
	}
	q, rels, ok := plan.SimpleQueryWithRelations()
	if !ok {
		t.Fatal("conjunction with relations should be simple-with-relations")
	}
	if q.Action != "loading" || len(q.Objects) != 2 {
		t.Fatalf("base query = %v", q)
	}
	if len(rels) != 1 || rels[0].RelA != "person" || rels[0].RelB != "car" || rels[0].RelKind != "left_of" {
		t.Fatalf("relations = %+v", rels)
	}
	objs, _ := plan.Labels()
	if len(objs) != 2 { // person, car (dedup with include labels)
		t.Fatalf("labels = %v", objs)
	}
	if plan.String() == "" {
		t.Error("String empty")
	}
}

func TestParseRelationErrors(t *testing.T) {
	bad := []string{
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE rel('a', 'left_of')`,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE rel('a', 'left_of', 'b'`,
		`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE rel(a, 'left_of', 'b')`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestRelationInsideDisjunction(t *testing.T) {
	src := `SELECT MERGE(c) FROM (PROCESS v PRODUCE c)
	WHERE rel('a', 'near', 'b') OR act = 'x'`
	plan, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := plan.SimpleQueryWithRelations(); ok {
		t.Fatal("disjunctive relation should not be simple")
	}
}

func TestErrorPositions(t *testing.T) {
	cases := []struct {
		src     string
		wantPos int // byte offset of the offending token
	}{
		// Lex error: '<' is not part of the grammar.
		{`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act <`, 53},
		// Lex error: unterminated string literal starts at the quote.
		{`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act = 'oops`, 55},
		// Compile error: ORDER BY RANK without LIMIT points at ORDER.
		{`SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE act = 'a' ORDER BY RANK(act)`, 59},
	}
	for _, c := range cases {
		_, err := ParseAndCompile(c.src)
		if err == nil {
			t.Errorf("accepted %q", c.src)
			continue
		}
		pos, ok := ErrPosition(err)
		if !ok {
			t.Errorf("%q: error %v carries no position", c.src, err)
			continue
		}
		if pos != c.wantPos {
			t.Errorf("%q: position = %d, want %d (err %v)", c.src, pos, c.wantPos, err)
		}
	}
	if _, ok := ErrPosition(errNoPos); ok {
		t.Error("ErrPosition reported a position for a plain error")
	}
}

var errNoPos = errors.New("plain")
