package vql

import (
	"fmt"
	"sort"
	"strings"

	"vaq/internal/annot"
)

// PredicateKind distinguishes the two simple predicate forms.
type PredicateKind int

const (
	// ActionPred is `act = 'label'`.
	ActionPred PredicateKind = iota
	// ObjectPred is one label of `obj.include(...)`.
	ObjectPred
	// RelationPred is `rel('a', 'kind', 'b')` (footnote 2 extension).
	RelationPred
)

// Predicate is a simple predicate in the lowered plan.
type Predicate struct {
	Kind  PredicateKind
	Label annot.Label
	// Relation fields (RelationPred only).
	RelA, RelB annot.Label
	RelKind    string
}

func (p Predicate) String() string {
	switch p.Kind {
	case ActionPred:
		return "act=" + string(p.Label)
	case RelationPred:
		return fmt.Sprintf("rel(%s %s %s)", p.RelA, p.RelKind, p.RelB)
	}
	return "obj:" + string(p.Label)
}

// Plan is the compiled, executable form of a VQL statement. The WHERE
// clause is lowered to conjunctive normal form: the query is satisfied
// on a clip iff every clause has at least one satisfied predicate
// (footnotes 3–4 of the paper).
type Plan struct {
	// Input names the video or stream.
	Input string
	// CNF is the predicate tree in conjunctive normal form; empty means
	// no WHERE clause.
	CNF [][]Predicate
	// K is the LIMIT (0 = unlimited); Ranked marks ORDER BY RANK.
	K      int
	Ranked bool
}

// Compile lowers a parsed statement to a Plan. Semantic errors carry
// the byte offset of the clause they complain about (see ErrPosition).
func Compile(st *Statement) (*Plan, error) {
	if st.Input == "" {
		return nil, errf(0, "statement has no input video")
	}
	hasMerge := false
	for _, it := range st.Select {
		if it.Func == "MERGE" {
			hasMerge = true
		}
	}
	if !hasMerge && len(st.Select) > 0 && st.Select[0].Func != "" {
		return nil, errf(st.Select[0].Pos, "SELECT must project MERGE(clipID) (or a bare column)")
	}
	p := &Plan{Input: st.Input, K: st.Limit, Ranked: st.OrderByRank}
	if st.Where != nil {
		p.CNF = toCNF(st.Where)
		for _, clause := range p.CNF {
			if len(clause) == 0 {
				return nil, errf(max(st.WherePos, 0), "empty clause after CNF lowering")
			}
		}
	}
	if st.OrderByRank && st.Limit == 0 {
		return nil, errf(max(st.OrderPos, 0), "ORDER BY RANK requires LIMIT K")
	}
	return p, nil
}

// ParseAndCompile parses src and compiles it in one step.
func ParseAndCompile(src string) (*Plan, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(st)
}

// toCNF lowers a predicate tree to conjunctive normal form by
// distributing OR over AND, expanding obj.include into one predicate per
// label, and deduplicating predicates within each clause.
func toCNF(e Expr) [][]Predicate {
	switch e := e.(type) {
	case ActionEq:
		return [][]Predicate{{{Kind: ActionPred, Label: annot.Label(e.Label)}}}
	case ObjInclude:
		// include(a, b) means both present: one singleton clause each.
		out := make([][]Predicate, 0, len(e.Labels))
		for _, l := range e.Labels {
			out = append(out, []Predicate{{Kind: ObjectPred, Label: annot.Label(l)}})
		}
		return out
	case RelationExpr:
		return [][]Predicate{{{
			Kind: RelationPred,
			RelA: annot.Label(e.A), RelB: annot.Label(e.B), RelKind: e.Kind,
		}}}
	case And:
		return append(toCNF(e.L), toCNF(e.R)...)
	case Or:
		// (A1 ∧ ... ∧ An) ∨ (B1 ∧ ... ∧ Bm) = ∧_{i,j} (Ai ∨ Bj)
		left, right := toCNF(e.L), toCNF(e.R)
		var out [][]Predicate
		for _, lc := range left {
			for _, rc := range right {
				out = append(out, dedupClause(append(append([]Predicate{}, lc...), rc...)))
			}
		}
		return out
	default:
		return nil
	}
}

func dedupClause(c []Predicate) []Predicate {
	sort.Slice(c, func(i, j int) bool {
		if c[i].Kind != c[j].Kind {
			return c[i].Kind < c[j].Kind
		}
		return c[i].Label < c[j].Label
	})
	out := c[:0]
	for i, p := range c {
		if i == 0 || p != c[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// SimpleQuery reports whether the plan is a pure conjunction of simple
// object/action predicates with at most one action — the form the
// SVAQ/SVAQD/RVAQ algorithms consume directly — and returns it as an
// annot.Query. Plans with relation predicates are not simple; use
// SimpleQueryWithRelations.
func (p *Plan) SimpleQuery() (annot.Query, bool) {
	q, rels, ok := p.SimpleQueryWithRelations()
	if !ok || len(rels) > 0 {
		return annot.Query{}, false
	}
	return q, true
}

// SimpleQueryWithRelations is SimpleQuery extended to conjunctions that
// also carry relation predicates (footnote 2): it returns the base
// conjunctive query plus the relation predicates in clause order.
func (p *Plan) SimpleQueryWithRelations() (annot.Query, []Predicate, bool) {
	var q annot.Query
	var rels []Predicate
	seenObj := map[annot.Label]bool{}
	for _, clause := range p.CNF {
		if len(clause) != 1 {
			return annot.Query{}, nil, false
		}
		pred := clause[0]
		switch pred.Kind {
		case ActionPred:
			if q.Action != "" && q.Action != pred.Label {
				return annot.Query{}, nil, false // multiple distinct actions
			}
			q.Action = pred.Label
		case ObjectPred:
			if !seenObj[pred.Label] {
				seenObj[pred.Label] = true
				q.Objects = append(q.Objects, pred.Label)
			}
		case RelationPred:
			rels = append(rels, pred)
		}
	}
	if q.Validate() != nil {
		return annot.Query{}, nil, false
	}
	return q, rels, true
}

// Labels returns all object and action labels the plan references, each
// sorted, for model binding.
func (p *Plan) Labels() (objects, actions []annot.Label) {
	objSet, actSet := map[annot.Label]bool{}, map[annot.Label]bool{}
	for _, clause := range p.CNF {
		for _, pred := range clause {
			switch pred.Kind {
			case ActionPred:
				actSet[pred.Label] = true
			case ObjectPred:
				objSet[pred.Label] = true
			case RelationPred:
				objSet[pred.RelA] = true
				objSet[pred.RelB] = true
			}
		}
	}
	for l := range objSet {
		objects = append(objects, l)
	}
	for l := range actSet {
		actions = append(actions, l)
	}
	sort.Slice(objects, func(i, j int) bool { return objects[i] < objects[j] })
	sort.Slice(actions, func(i, j int) bool { return actions[i] < actions[j] })
	return objects, actions
}

func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan(%s", p.Input)
	for _, clause := range p.CNF {
		parts := make([]string, len(clause))
		for i, pr := range clause {
			parts[i] = pr.String()
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(parts, " OR "))
	}
	if p.Ranked {
		fmt.Fprintf(&b, " rank top-%d", p.K)
	} else if p.K > 0 {
		fmt.Fprintf(&b, " limit %d", p.K)
	}
	b.WriteString(")")
	return b.String()
}
