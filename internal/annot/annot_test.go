package annot

import (
	"testing"

	"vaq/internal/interval"
	"vaq/internal/video"
)

func testMeta() video.Meta {
	return video.Meta{Name: "t", Frames: 1000, Geom: video.Geometry{FPS: 30, ShotLen: 10, ShotsPerClip: 5}}
}

func TestAddObjectClampsToVideo(t *testing.T) {
	a := NewVideo(testMeta())
	a.AddObject("car", interval.Set{{Lo: -5, Hi: 2000}})
	got := a.Objects["car"]
	want := interval.Set{{Lo: 0, Hi: 999}}
	if !got.Equal(want) {
		t.Fatalf("Objects[car] = %v, want %v", got, want)
	}
}

func TestAddObjectMerges(t *testing.T) {
	a := NewVideo(testMeta())
	a.AddObject("car", interval.Set{{Lo: 0, Hi: 10}})
	a.AddObject("car", interval.Set{{Lo: 5, Hi: 20}})
	if got := a.Objects["car"]; !got.Equal(interval.Set{{Lo: 0, Hi: 20}}) {
		t.Fatalf("merge failed: %v", got)
	}
}

func TestAddActionClampsToShots(t *testing.T) {
	a := NewVideo(testMeta()) // 100 shots
	a.AddAction("run", interval.Set{{Lo: 90, Hi: 500}})
	if got := a.Actions["run"]; !got.Equal(interval.Set{{Lo: 90, Hi: 99}}) {
		t.Fatalf("Actions[run] = %v", got)
	}
}

func TestPresenceQueries(t *testing.T) {
	a := NewVideo(testMeta())
	a.AddObject("car", interval.Set{{Lo: 100, Hi: 199}})
	a.AddAction("run", interval.Set{{Lo: 10, Hi: 19}})
	if !a.ObjectOnFrame("car", 150) || a.ObjectOnFrame("car", 99) {
		t.Error("ObjectOnFrame wrong")
	}
	if !a.ActionOnShot("run", 15) || a.ActionOnShot("run", 9) {
		t.Error("ActionOnShot wrong")
	}
	if a.ObjectOnFrame("bike", 150) {
		t.Error("unknown label should be absent")
	}
}

func TestLabelsSorted(t *testing.T) {
	a := NewVideo(testMeta())
	a.AddObject("zebra", nil)
	a.AddObject("apple", nil)
	a.AddAction("b", nil)
	a.AddAction("a", nil)
	obj := a.ObjectLabels()
	if len(obj) != 2 || obj[0] != "apple" || obj[1] != "zebra" {
		t.Fatalf("ObjectLabels = %v", obj)
	}
	act := a.ActionLabels()
	if len(act) != 2 || act[0] != "a" || act[1] != "b" {
		t.Fatalf("ActionLabels = %v", act)
	}
}

func TestQueryValidateAndString(t *testing.T) {
	if (Query{}).Validate() == nil {
		t.Error("empty query should be invalid")
	}
	q := Query{Action: "run", Objects: []Label{"car", "dog"}}
	if err := q.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if s := q.String(); s != "q:{o1=car; o2=dog; a=run}" {
		t.Errorf("String = %q", s)
	}
	if s := (Query{Action: "run"}).String(); s != "q:{a=run}" {
		t.Errorf("action-only String = %q", s)
	}
	if s := (Query{Objects: []Label{"car"}}).String(); s != "q:{o1=car}" {
		t.Errorf("object-only String = %q", s)
	}
}

func TestGroundTruthClipsIntersection(t *testing.T) {
	a := NewVideo(testMeta()) // clips of 50 frames / 5 shots; 20 clips
	// Action on shots 0..9 => frames 0..99 => clips 0,1 fully covered.
	a.AddAction("run", interval.Set{{Lo: 0, Hi: 9}})
	// Object on frames 50..149 => clips 1,2 covered.
	a.AddObject("car", interval.Set{{Lo: 50, Hi: 149}})
	got, err := a.GroundTruthClips(Query{Action: "run", Objects: []Label{"car"}})
	if err != nil {
		t.Fatal(err)
	}
	want := interval.Set{{Lo: 1, Hi: 1}}
	if !got.Equal(want) {
		t.Fatalf("GroundTruthClips = %v, want %v", got, want)
	}
}

func TestGroundTruthClipsMinCoverRule(t *testing.T) {
	a := NewVideo(testMeta())
	// MinCoverUnits frames in clip 0: counts.
	a.AddObject("car", interval.Set{{Lo: 0, Hi: MinCoverUnits - 1}})
	// A single frame in clip 1: does not count.
	a.AddObject("dog", interval.Set{{Lo: 50, Hi: 50}})
	got, err := a.GroundTruthClips(Query{Objects: []Label{"car"}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(interval.Set{{Lo: 0, Hi: 0}}) {
		t.Fatalf("minimal coverage should count: %v", got)
	}
	got, err = a.GroundTruthClips(Query{Objects: []Label{"dog"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("single-unit coverage should not count: %v", got)
	}
}

func TestGroundTruthClipsInvalidQuery(t *testing.T) {
	a := NewVideo(testMeta())
	if _, err := a.GroundTruthClips(Query{}); err == nil {
		t.Error("want error for empty query")
	}
}

func TestGroundTruthClipsUnknownLabelIsEmpty(t *testing.T) {
	a := NewVideo(testMeta())
	a.AddAction("run", interval.Set{{Lo: 0, Hi: 99}})
	got, err := a.GroundTruthClips(Query{Action: "run", Objects: []Label{"ghost"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("query with never-present object should be empty, got %v", got)
	}
}
