// Package annot holds ground-truth annotations for videos: for each
// object label, the frame intervals during which instances of that
// object are visible, and for each action label, the shot intervals
// during which the action takes place. It also derives, for a query, the
// ground-truth result sequences used for evaluation (§5.1): the
// intersection of the temporal intervals of all query-specified objects
// and the action.
package annot

import (
	"fmt"
	"sort"

	"vaq/internal/interval"
	"vaq/internal/video"
)

// Label names an object type or action category (e.g. "car",
// "washing_dishes").
type Label string

// Video is the full ground-truth annotation of one video.
type Video struct {
	Meta video.Meta
	// Objects maps object labels to the frame intervals during which at
	// least one instance is visible.
	Objects map[Label]interval.Set
	// Actions maps action labels to the shot intervals during which the
	// action takes place.
	Actions map[Label]interval.Set
}

// NewVideo returns an empty annotation for the given video.
func NewVideo(meta video.Meta) *Video {
	return &Video{
		Meta:    meta,
		Objects: map[Label]interval.Set{},
		Actions: map[Label]interval.Set{},
	}
}

// AddObject records that object label o is visible during the given
// frame intervals (merged with any previously recorded presence).
func (a *Video) AddObject(o Label, frames interval.Set) {
	a.Objects[o] = a.Objects[o].Union(frames).Clamp(0, a.Meta.Frames-1)
}

// AddAction records that action label act takes place during the given
// shot intervals.
func (a *Video) AddAction(act Label, shots interval.Set) {
	a.Actions[act] = a.Actions[act].Union(shots).Clamp(0, a.Meta.Shots()-1)
}

// ObjectOnFrame reports whether object o is present on frame v.
func (a *Video) ObjectOnFrame(o Label, v video.FrameIdx) bool {
	return a.Objects[o].Contains(int(v))
}

// ActionOnShot reports whether action act takes place on shot s.
func (a *Video) ActionOnShot(act Label, s video.ShotIdx) bool {
	return a.Actions[act].Contains(int(s))
}

// ObjectLabels returns the annotated object labels in sorted order.
func (a *Video) ObjectLabels() []Label { return sortedLabels(a.Objects) }

// ActionLabels returns the annotated action labels in sorted order.
func (a *Video) ActionLabels() []Label { return sortedLabels(a.Actions) }

func sortedLabels(m map[Label]interval.Set) []Label {
	out := make([]Label, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Query is a conjunctive query per §2: one action plus zero or more
// object predicates.
type Query struct {
	// Action is the queried action label; empty means the query has no
	// action predicate (used by some Table 3 variants such as
	// "a=blowing leaves" alone — there the action is the only predicate).
	Action Label
	// Objects are the queried object labels, in the user-chosen
	// evaluation order (footnote 5: predicate order is user expertise).
	Objects []Label
}

// Validate reports whether the query has at least one predicate.
func (q Query) Validate() error {
	if q.Action == "" && len(q.Objects) == 0 {
		return fmt.Errorf("annot: query has no predicates")
	}
	return nil
}

func (q Query) String() string {
	s := "q:{"
	for i, o := range q.Objects {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("o%d=%s", i+1, o)
	}
	if q.Action != "" {
		if len(q.Objects) > 0 {
			s += "; "
		}
		s += "a=" + string(q.Action)
	}
	return s + "}"
}

// MinCoverUnits is the number of occurrence units (frames for objects,
// shots for actions) a predicate must hold within a clip for the clip to
// count as covered by the ground truth. Two units — the smallest
// statistically meaningful presence, matching the floor of the detection
// critical values — keeps the annotation convention consistent with the
// algorithms' clip indicators, so ideal models reproduce the ground
// truth exactly (Table 4).
const MinCoverUnits = 2

// GroundTruthClips returns the clip intervals over which every query
// predicate is simultaneously true: object frame intervals and action
// shot intervals are each mapped to the clips they cover (a clip counts
// as covered when the predicate holds on at least MinCoverUnits of its
// units), then intersected (§5.1's annotation protocol).
func (a *Video) GroundTruthClips(q Query) (interval.Set, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	g := a.Meta.Geom
	nclips := a.Meta.Clips()
	sets := make([]interval.Set, 0, len(q.Objects)+1)
	if q.Action != "" {
		sets = append(sets, coveredClips(a.Actions[q.Action], g.ShotsPerClip, nclips))
	}
	for _, o := range q.Objects {
		sets = append(sets, coveredClips(a.Objects[o], g.ClipLen(), nclips))
	}
	return interval.IntersectAll(sets...), nil
}

// coveredClips maps fine-grained presence intervals (frames or shots) to
// the clips on which the label is present for at least MinCoverUnits
// units, given unitsPerClip units per clip.
func coveredClips(fine interval.Set, unitsPerClip, nclips int) interval.Set {
	if nclips <= 0 {
		return nil
	}
	minCover := MinCoverUnits
	if minCover > unitsPerClip {
		minCover = unitsPerClip
	}
	ind := make([]bool, nclips)
	for c := 0; c < nclips; c++ {
		lo, hi := c*unitsPerClip, (c+1)*unitsPerClip-1
		cover := fine.Intersect(interval.Set{{Lo: lo, Hi: hi}}).Len()
		ind[c] = cover >= minCover
	}
	return interval.FromIndicators(ind)
}
