package tables

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func sampleRows() []Row {
	return []Row{
		{CID: 3, Score: 0.5},
		{CID: 1, Score: 2.0},
		{CID: 7, Score: 1.0},
		{CID: 2, Score: 1.0}, // tie with CID 7: lower cid first
	}
}

func TestMemTableSortedOrder(t *testing.T) {
	mt := NewMemTable("car", sampleRows())
	var c AccessCounter
	wantCIDs := []int32{1, 2, 7, 3}
	for i, want := range wantCIDs {
		r, err := mt.SortedRow(i, &c)
		if err != nil {
			t.Fatal(err)
		}
		if r.CID != want {
			t.Fatalf("sorted row %d = cid %d, want %d", i, r.CID, want)
		}
	}
	if c.Sorted != 4 {
		t.Fatalf("sorted counter = %d", c.Sorted)
	}
}

func TestMemTableReverseOrder(t *testing.T) {
	mt := NewMemTable("car", sampleRows())
	var c AccessCounter
	r, err := mt.ReverseRow(0, &c)
	if err != nil {
		t.Fatal(err)
	}
	if r.CID != 3 {
		t.Fatalf("bottom row cid = %d, want 3", r.CID)
	}
	if c.Reverse != 1 {
		t.Fatalf("reverse counter = %d", c.Reverse)
	}
}

func TestMemTableRandomGet(t *testing.T) {
	mt := NewMemTable("car", sampleRows())
	var c AccessCounter
	s, ok, err := mt.RandomGet(7, &c)
	if err != nil || !ok || s != 1.0 {
		t.Fatalf("RandomGet(7) = %v,%v,%v", s, ok, err)
	}
	_, ok, _ = mt.RandomGet(99, &c)
	if ok {
		t.Fatal("missing cid found")
	}
	if c.Random != 2 {
		t.Fatalf("random counter = %d", c.Random)
	}
}

func TestMemTableRangeErrors(t *testing.T) {
	mt := NewMemTable("car", sampleRows())
	if _, err := mt.SortedRow(4, nil); err == nil {
		t.Error("sorted out of range accepted")
	}
	if _, err := mt.SortedRow(-1, nil); err == nil {
		t.Error("negative row accepted")
	}
	if _, err := mt.ReverseRow(4, nil); err == nil {
		t.Error("reverse out of range accepted")
	}
}

func TestNilCounterSafe(t *testing.T) {
	mt := NewMemTable("car", sampleRows())
	if _, err := mt.SortedRow(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mt.RandomGet(1, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "car.tbl")
	rows := sampleRows()
	if err := WriteFile(path, "car", rows); err != nil {
		t.Fatal(err)
	}
	ft, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	if ft.Label() != "car" || ft.Len() != 4 {
		t.Fatalf("label=%q len=%d", ft.Label(), ft.Len())
	}
	mt := NewMemTable("car", rows)
	var cm, cf AccessCounter
	for i := 0; i < 4; i++ {
		rm, _ := mt.SortedRow(i, &cm)
		rf, err := ft.SortedRow(i, &cf)
		if err != nil {
			t.Fatal(err)
		}
		if rm != rf {
			t.Fatalf("sorted row %d: mem %v vs file %v", i, rm, rf)
		}
		rm, _ = mt.ReverseRow(i, &cm)
		rf, _ = ft.ReverseRow(i, &cf)
		if rm != rf {
			t.Fatalf("reverse row %d: mem %v vs file %v", i, rm, rf)
		}
	}
	for _, cid := range []int32{1, 2, 3, 7, 42} {
		sm, okm, _ := mt.RandomGet(cid, &cm)
		sf, okf, err := ft.RandomGet(cid, &cf)
		if err != nil {
			t.Fatal(err)
		}
		if sm != sf || okm != okf {
			t.Fatalf("RandomGet(%d): mem %v,%v vs file %v,%v", cid, sm, okm, sf, okf)
		}
	}
	if cm != cf {
		t.Fatalf("counters diverge: mem %+v vs file %+v", cm, cf)
	}
}

// Property: MemTable and FileTable agree on random workloads.
func TestPropMemFileEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dir := t.TempDir()
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(200)
		rows := make([]Row, n)
		seen := map[int32]bool{}
		for i := range rows {
			cid := int32(rng.Intn(500))
			for seen[cid] {
				cid = int32(rng.Intn(500))
			}
			seen[cid] = true
			rows[i] = Row{CID: cid, Score: float64(rng.Intn(50))} // ties likely
		}
		path := filepath.Join(dir, "t.tbl")
		if err := WriteFile(path, "x", rows); err != nil {
			t.Fatal(err)
		}
		ft, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mt := NewMemTable("x", rows)
		for i := 0; i < n; i++ {
			rm, _ := mt.SortedRow(i, nil)
			rf, _ := ft.SortedRow(i, nil)
			if rm != rf {
				t.Fatalf("trial %d row %d: %v vs %v", trial, i, rm, rf)
			}
		}
		for cid := int32(0); cid < 500; cid += 17 {
			sm, okm, _ := mt.RandomGet(cid, nil)
			sf, okf, _ := ft.RandomGet(cid, nil)
			if sm != sf || okm != okf {
				t.Fatalf("trial %d cid %d: %v,%v vs %v,%v", trial, cid, sm, okm, sf, okf)
			}
		}
		ft.Close()
	}
}

func TestOpenFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFile(filepath.Join(dir, "missing.tbl")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.tbl")
	if err := os.WriteFile(bad, []byte("not a table at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(bad); err == nil {
		t.Error("garbage file accepted")
	}
}

func TestEmptyTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.tbl")
	if err := WriteFile(path, "none", nil); err != nil {
		t.Fatal(err)
	}
	ft, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	if ft.Len() != 0 {
		t.Fatalf("len = %d", ft.Len())
	}
	if _, err := ft.SortedRow(0, nil); err == nil {
		t.Error("row 0 of empty table accepted")
	}
	if _, ok, err := ft.RandomGet(1, nil); err != nil || ok {
		t.Errorf("RandomGet on empty = %v, %v", ok, err)
	}
}

func TestAccessCounterAdd(t *testing.T) {
	a := AccessCounter{Sorted: 1, Reverse: 2, Random: 3}
	a.Add(AccessCounter{Sorted: 10, Reverse: 20, Random: 30})
	if a != (AccessCounter{Sorted: 11, Reverse: 22, Random: 33}) {
		t.Fatalf("Add = %+v", a)
	}
}
