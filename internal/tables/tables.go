// Package tables implements the clip score tables of §4.2: per-label
// tables {cid, score} ordered by score, materialized once during the
// ingestion phase and consumed at query time through three access
// paths — sorted access from the top, reverse (sorted) access from the
// bottom, and random access by clip identifier — each counted through an
// AccessCounter so the experiments can report the access totals of
// Tables 6–8.
//
// Two implementations share the Table interface: MemTable keeps rows in
// memory; FileTable serves every row read from disk (one pread per
// logical access), making the random-access cost of the offline
// algorithms physically real.
package tables

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
)

// Row is one entry of a clip score table.
type Row struct {
	CID   int32
	Score float64
}

// AccessCounter tallies logical accesses to the clip score tables; the
// offline experiments report these counts. Not safe for concurrent use
// (one counter per query execution).
type AccessCounter struct {
	Sorted  int64 // sorted accesses from the top
	Reverse int64 // sorted accesses from the bottom
	Random  int64 // random accesses by clip identifier
}

// Add accumulates another counter's tallies.
func (c *AccessCounter) Add(o AccessCounter) {
	c.Sorted += o.Sorted
	c.Reverse += o.Reverse
	c.Random += o.Random
}

// Table is one label's clip score table.
type Table interface {
	// Label names the object or action type the table covers.
	Label() string
	// Len returns the number of rows.
	Len() int
	// SortedRow returns the i-th row in non-increasing score order
	// (i = 0 is the highest-scoring clip).
	SortedRow(i int, c *AccessCounter) (Row, error)
	// ReverseRow returns the i-th row from the bottom (i = 0 is the
	// lowest-scoring clip).
	ReverseRow(i int, c *AccessCounter) (Row, error)
	// RandomGet returns the score of the given clip, reporting whether
	// the clip appears in the table.
	RandomGet(cid int32, c *AccessCounter) (float64, bool, error)
}

// ErrRowRange is returned when a sorted/reverse access runs past the
// table.
var ErrRowRange = errors.New("tables: row index out of range")

// MemTable is an in-memory Table.
type MemTable struct {
	label   string
	byScore []Row // non-increasing score
	byCID   []Row // increasing cid
}

// NewMemTable builds an in-memory table from rows (copied, then sorted).
func NewMemTable(label string, rows []Row) *MemTable {
	t := &MemTable{label: label}
	t.byScore = append([]Row(nil), rows...)
	sortByScore(t.byScore)
	t.byCID = append([]Row(nil), rows...)
	sort.Slice(t.byCID, func(i, j int) bool { return t.byCID[i].CID < t.byCID[j].CID })
	return t
}

// sortByScore orders rows by non-increasing score, breaking ties by cid
// so table order is deterministic.
func sortByScore(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Score != rows[j].Score {
			return rows[i].Score > rows[j].Score
		}
		return rows[i].CID < rows[j].CID
	})
}

// Label implements Table.
func (t *MemTable) Label() string { return t.label }

// Len implements Table.
func (t *MemTable) Len() int { return len(t.byScore) }

// SortedRow implements Table.
func (t *MemTable) SortedRow(i int, c *AccessCounter) (Row, error) {
	if i < 0 || i >= len(t.byScore) {
		return Row{}, fmt.Errorf("%w: sorted %d of %d", ErrRowRange, i, len(t.byScore))
	}
	if c != nil {
		c.Sorted++
	}
	return t.byScore[i], nil
}

// ReverseRow implements Table.
func (t *MemTable) ReverseRow(i int, c *AccessCounter) (Row, error) {
	if i < 0 || i >= len(t.byScore) {
		return Row{}, fmt.Errorf("%w: reverse %d of %d", ErrRowRange, i, len(t.byScore))
	}
	if c != nil {
		c.Reverse++
	}
	return t.byScore[len(t.byScore)-1-i], nil
}

// RandomGet implements Table.
func (t *MemTable) RandomGet(cid int32, c *AccessCounter) (float64, bool, error) {
	if c != nil {
		c.Random++
	}
	i := sort.Search(len(t.byCID), func(i int) bool { return t.byCID[i].CID >= cid })
	if i < len(t.byCID) && t.byCID[i].CID == cid {
		return t.byCID[i].Score, true, nil
	}
	return 0, false, nil
}

// Rows returns a copy of the table in score order (ingestion helper).
func (t *MemTable) Rows() []Row { return append([]Row(nil), t.byScore...) }

// File format: little-endian.
//
//	magic "VAQT" | version u32 | labelLen u32 | label | rowCount u64 |
//	rowCount rows sorted by score desc | rowCount rows sorted by cid asc
//
// Each row is cid int32 (4 bytes) + score float64 (8 bytes).
const (
	fileMagic   = "VAQT"
	fileVersion = 1
	rowSize     = 12
)

// WriteFile persists rows as a table file at path.
func WriteFile(path, label string, rows []Row) error {
	byScore := append([]Row(nil), rows...)
	sortByScore(byScore)
	byCID := append([]Row(nil), rows...)
	sort.Slice(byCID, func(i, j int) bool { return byCID[i].CID < byCID[j].CID })

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tables: create %s: %w", path, err)
	}
	defer f.Close()
	header := make([]byte, 0, 16+len(label))
	header = append(header, fileMagic...)
	header = binary.LittleEndian.AppendUint32(header, fileVersion)
	header = binary.LittleEndian.AppendUint32(header, uint32(len(label)))
	header = append(header, label...)
	header = binary.LittleEndian.AppendUint64(header, uint64(len(rows)))
	if _, err := f.Write(header); err != nil {
		return fmt.Errorf("tables: write header: %w", err)
	}
	buf := make([]byte, 0, rowSize*len(rows))
	for _, r := range byScore {
		buf = appendRow(buf, r)
	}
	for _, r := range byCID {
		buf = appendRow(buf, r)
	}
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("tables: write rows: %w", err)
	}
	return f.Sync()
}

func appendRow(buf []byte, r Row) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.CID))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Score))
}

func decodeRow(b []byte) Row {
	return Row{
		CID:   int32(binary.LittleEndian.Uint32(b)),
		Score: math.Float64frombits(binary.LittleEndian.Uint64(b[4:])),
	}
}

// FileTable serves a table file, reading each accessed row from disk.
type FileTable struct {
	f         *os.File
	label     string
	n         int
	scoreOff  int64 // offset of the score-sorted region
	cidOff    int64 // offset of the cid-sorted region
	cidIndex  []int32
	indexOnce bool
}

// OpenFile opens a table file for query-time access.
func OpenFile(path string) (*FileTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tables: open %s: %w", path, err)
	}
	head := make([]byte, 12)
	if _, err := f.ReadAt(head, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("tables: read header of %s: %w", path, err)
	}
	if string(head[:4]) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("tables: %s is not a table file", path)
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != fileVersion {
		f.Close()
		return nil, fmt.Errorf("tables: %s has unsupported version %d", path, v)
	}
	labelLen := int(binary.LittleEndian.Uint32(head[8:]))
	rest := make([]byte, labelLen+8)
	if _, err := f.ReadAt(rest, 12); err != nil {
		f.Close()
		return nil, fmt.Errorf("tables: read label of %s: %w", path, err)
	}
	label := string(rest[:labelLen])
	n := int(binary.LittleEndian.Uint64(rest[labelLen:]))
	scoreOff := int64(12 + labelLen + 8)
	return &FileTable{
		f:        f,
		label:    label,
		n:        n,
		scoreOff: scoreOff,
		cidOff:   scoreOff + int64(n)*rowSize,
	}, nil
}

// Close releases the underlying file.
func (t *FileTable) Close() error { return t.f.Close() }

// Label implements Table.
func (t *FileTable) Label() string { return t.label }

// Len implements Table.
func (t *FileTable) Len() int { return t.n }

func (t *FileTable) readRow(off int64) (Row, error) {
	var b [rowSize]byte
	if _, err := t.f.ReadAt(b[:], off); err != nil {
		return Row{}, fmt.Errorf("tables: read row: %w", err)
	}
	return decodeRow(b[:]), nil
}

// SortedRow implements Table.
func (t *FileTable) SortedRow(i int, c *AccessCounter) (Row, error) {
	if i < 0 || i >= t.n {
		return Row{}, fmt.Errorf("%w: sorted %d of %d", ErrRowRange, i, t.n)
	}
	if c != nil {
		c.Sorted++
	}
	return t.readRow(t.scoreOff + int64(i)*rowSize)
}

// ReverseRow implements Table.
func (t *FileTable) ReverseRow(i int, c *AccessCounter) (Row, error) {
	if i < 0 || i >= t.n {
		return Row{}, fmt.Errorf("%w: reverse %d of %d", ErrRowRange, i, t.n)
	}
	if c != nil {
		c.Reverse++
	}
	return t.readRow(t.scoreOff + int64(t.n-1-i)*rowSize)
}

// RandomGet implements Table. The binary search runs over an in-memory
// cid index (loaded lazily once, as a real system would cache its
// index); the row itself is read from disk.
func (t *FileTable) RandomGet(cid int32, c *AccessCounter) (float64, bool, error) {
	if c != nil {
		c.Random++
	}
	if !t.indexOnce {
		if err := t.loadIndex(); err != nil {
			return 0, false, err
		}
	}
	i := sort.Search(len(t.cidIndex), func(i int) bool { return t.cidIndex[i] >= cid })
	if i >= len(t.cidIndex) || t.cidIndex[i] != cid {
		return 0, false, nil
	}
	r, err := t.readRow(t.cidOff + int64(i)*rowSize)
	if err != nil {
		return 0, false, err
	}
	return r.Score, true, nil
}

func (t *FileTable) loadIndex() error {
	buf := make([]byte, t.n*rowSize)
	if _, err := t.f.ReadAt(buf, t.cidOff); err != nil {
		return fmt.Errorf("tables: load cid index: %w", err)
	}
	t.cidIndex = make([]int32, t.n)
	for i := 0; i < t.n; i++ {
		t.cidIndex[i] = int32(binary.LittleEndian.Uint32(buf[i*rowSize:]))
	}
	t.indexOnce = true
	return nil
}
