package tables

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func benchRows(n int) []Row {
	rng := rand.New(rand.NewSource(5))
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{CID: int32(i), Score: rng.Float64() * 100}
	}
	return rows
}

func BenchmarkMemSortedRow(b *testing.B) {
	t := NewMemTable("x", benchRows(10000))
	var c AccessCounter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.SortedRow(i%10000, &c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemRandomGet(b *testing.B) {
	t := NewMemTable("x", benchRows(10000))
	var c AccessCounter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := t.RandomGet(int32(i%12000), &c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileRandomGet measures the disk-backed random access the
// offline experiments pay per clip score lookup (Tables 6–8).
func BenchmarkFileRandomGet(b *testing.B) {
	path := filepath.Join(b.TempDir(), "t.tbl")
	if err := WriteFile(path, "x", benchRows(10000)); err != nil {
		b.Fatal(err)
	}
	t, err := OpenFile(path)
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()
	var c AccessCounter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := t.RandomGet(int32(i%12000), &c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileSortedRow(b *testing.B) {
	path := filepath.Join(b.TempDir(), "t.tbl")
	if err := WriteFile(path, "x", benchRows(10000)); err != nil {
		b.Fatal(err)
	}
	t, err := OpenFile(path)
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()
	var c AccessCounter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.SortedRow(i%10000, &c); err != nil {
			b.Fatal(err)
		}
	}
}
