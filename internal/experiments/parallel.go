package experiments

import (
	"os"
	"runtime"
	"time"

	"vaq"
	"vaq/internal/detect"
	"vaq/internal/ingest"
	"vaq/internal/synth"
)

// ParallelRow is one cell of the parallel-speedup study: a phase run at
// a worker count, with the wall clock of the parallel region, the
// aggregate per-unit CPU time (zero where it is not meaningful), and
// the wall-clock speedup over the same phase at one worker.
type ParallelRow struct {
	Phase   string // "ingest", "topk-all", "topk-global"
	Workers int
	Wall    time.Duration
	CPU     time.Duration
	Speedup float64
}

// ParallelSpeedup measures the bounded-parallelism execution layer:
// repository ingestion with 1 vs NumCPU clip scorers, then the
// repository-wide top-k paths with 1 vs NumCPU per-video executions
// (the sharded path exchanges B_lo^K across shards). Results are
// identical across worker counts — the tests assert that — so the rows
// report pure wall-clock effects; on a single-core host the speedups
// hover around 1x.
func (c *Context) ParallelSpeedup() ([]ParallelRow, error) {
	ncpu := runtime.NumCPU()
	counts := []int{1, ncpu}
	if ncpu == 1 {
		counts = []int{1, 4} // still exercises the pooled path
	}
	var out []ParallelRow
	c.printf("Parallel speedup (NumCPU=%d)\n", ncpu)

	// Phase 1: ingestion of one movie, serial vs pooled clip scoring.
	qs, err := synth.MovieScaled("coffee_and_cigarettes", c.Scale)
	if err != nil {
		return nil, err
	}
	truth := qs.World.Truth
	var base time.Duration
	for _, w := range counts {
		scene := qs.World.Scene()
		det := detect.NewSimObjectDetector(scene, c.ObjProfile, nil)
		rec := detect.NewSimActionRecognizer(scene, c.ActProfile, nil)
		start := time.Now()
		if _, err := ingest.Video(det, rec, truth.Meta, truth.ObjectLabels(), truth.ActionLabels(),
			ingest.Config{Workers: w}); err != nil {
			return nil, err
		}
		wall := time.Since(start)
		if w == 1 {
			base = wall
		}
		sp := float64(base) / float64(wall)
		out = append(out, ParallelRow{Phase: "ingest", Workers: w, Wall: wall, Speedup: sp})
		c.printf("  ingest      workers=%-2d wall %10v  %.2fx\n", w, wall.Round(time.Millisecond), sp)
	}

	// Phase 2: the repository fan-out paths over the Table 2 movies.
	dir, err := os.MkdirTemp("", "vaq-parallel-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	repo, err := vaq.OpenRepository(dir)
	if err != nil {
		return nil, err
	}
	// Every video is ingested with the query's labels included, so the
	// ad-hoc query has a (possibly empty) table in each of them.
	q := qs.Query
	for _, name := range []string{"coffee_and_cigarettes", "iron_man", "star_wars_3"} {
		mqs, err := synth.MovieScaled(name, c.Scale)
		if err != nil {
			return nil, err
		}
		scene := mqs.World.Scene()
		det := detect.NewSimObjectDetector(scene, c.ObjProfile, nil)
		rec := detect.NewSimActionRecognizer(scene, c.ActProfile, nil)
		mt := mqs.World.Truth
		vd, err := ingest.Video(det, rec, mt.Meta,
			unionLabels(mt.ObjectLabels(), q.Objects),
			unionLabels(mt.ActionLabels(), []vaq.Label{q.Action}),
			ingest.Config{Workers: ncpu})
		if err != nil {
			return nil, err
		}
		if err := repo.Add(name, vd); err != nil {
			return nil, err
		}
	}
	const k = 5
	phases := []struct {
		name string
		run  func(eo vaq.ExecOptions) (vaq.TopKStats, error)
	}{
		{"topk-all", func(eo vaq.ExecOptions) (vaq.TopKStats, error) {
			_, s, err := repo.TopKAllOpts(q, k, eo)
			return s, err
		}},
		{"topk-global", func(eo vaq.ExecOptions) (vaq.TopKStats, error) {
			_, s, err := repo.TopKGlobalOpts(q, k, eo)
			return s, err
		}},
	}
	for _, ph := range phases {
		var base time.Duration
		for _, w := range counts {
			stats, err := ph.run(vaq.ExecOptions{Workers: w})
			if err != nil {
				return nil, err
			}
			if w == 1 {
				base = stats.Runtime
			}
			sp := float64(base) / float64(stats.Runtime)
			out = append(out, ParallelRow{Phase: ph.name, Workers: w, Wall: stats.Runtime, CPU: stats.CPURuntime, Speedup: sp})
			c.printf("  %-11s workers=%-2d wall %10v  cpu %10v  %.2fx\n",
				ph.name, w, stats.Runtime.Round(time.Microsecond), stats.CPURuntime.Round(time.Microsecond), sp)
		}
	}
	return out, nil
}

// unionLabels appends the extras not already present.
func unionLabels(base, extra []vaq.Label) []vaq.Label {
	have := make(map[vaq.Label]bool, len(base))
	for _, l := range base {
		have[l] = true
	}
	out := append([]vaq.Label{}, base...)
	for _, l := range extra {
		if !have[l] {
			have[l] = true
			out = append(out, l)
		}
	}
	return out
}
