package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"vaq/internal/detect"
	"vaq/internal/explain"
	"vaq/internal/interval"
	"vaq/internal/svaq"
)

// ExplainOverheadResult is one row of the explain-overhead experiment.
type ExplainOverheadResult struct {
	Mode      string  // "off" (nil collector) or "on" (full collector)
	Clips     int     // clips per run
	Reps      int     // repetitions (the median is reported)
	USPerClip float64 // median microseconds per clip
	// Invocations is the profile's engine-attributed invocation total
	// (0 when off); it must equal the engine's own count exactly.
	Invocations int64
}

// ExplainOverhead measures what EXPLAIN collection costs on the online
// hot path. "off" runs the engine exactly as callers without a
// collector do — every hook is a nil-receiver no-op — and "on" attaches
// a full collector (clip outcomes, per-predicate layer attribution,
// plan aggregates). Beyond timing, each "on" run is checked two ways:
// the result sequences must be identical to the "off" run's (collection
// must not perturb evaluation), and the profile's per-layer invocation
// total must equal the engine's own invocation count exactly (the
// accounting is exact, not sampled).
func (c *Context) ExplainOverhead() ([]ExplainOverheadResult, error) {
	qs, err := c.youtube("q2")
	if err != nil {
		return nil, err
	}
	scene := qs.World.Scene()
	meta := qs.World.Truth.Meta
	nclips := meta.Clips()

	run := func(ex *explain.Collector) (time.Duration, interval.Set, int, error) {
		det := detect.NewSimObjectDetector(scene, c.ObjProfile, nil)
		rec := detect.NewSimActionRecognizer(scene, c.ActProfile, nil)
		eng, err := svaq.New(qs.Query, det, rec, meta.Geom, svaq.Config{
			Dynamic: true, HorizonClips: nclips,
		})
		if err != nil {
			return 0, nil, 0, err
		}
		eng.AttachExplain(ex)
		// Settle GC debt before timing so a cycle triggered by the
		// previous run's garbage doesn't land inside this one.
		runtime.GC()
		start := time.Now()
		seqs, err := eng.Run(nclips)
		if err != nil {
			return 0, nil, 0, err
		}
		return time.Since(start), seqs, eng.Invocations(), nil
	}

	// The detector simulation dominates the runtime, and run-to-run noise
	// (GC pauses, CPU frequency, a busy host) is an order of magnitude
	// larger than the collector's real cost. So the experiment measures
	// off and on back-to-back as a pair — alternating which of the two
	// goes first — and reports the median of the per-pair ratios: drift
	// within one pair is small and the alternation cancels what remains,
	// where two separate blocks of reps would hand all the drift to
	// whichever mode ran second.
	const reps = 15
	var baseline interval.Set
	var offDurs, onDurs []time.Duration
	var ratios []float64
	var attributed int64
	for i := 0; i < reps; i++ {
		var offD, onD time.Duration
		pair := []*explain.Collector{nil, explain.NewCollector("bench")}
		if i%2 == 1 {
			pair[0], pair[1] = pair[1], pair[0]
		}
		for _, ex := range pair {
			d, seqs, invocations, err := run(ex)
			if err != nil {
				return nil, err
			}
			if baseline == nil {
				baseline = seqs
			} else if !sameSequences(baseline, seqs) {
				return nil, fmt.Errorf("explain overhead: result sequences diverged: %v vs %v", baseline, seqs)
			}
			if ex == nil {
				offD = d
				continue
			}
			onD = d
			p := ex.Profile()
			attributed = p.EngineInvocations()
			if attributed != int64(invocations) {
				return nil, fmt.Errorf("explain overhead: attributed %d invocations, engine counted %d", attributed, invocations)
			}
		}
		offDurs = append(offDurs, offD)
		onDurs = append(onDurs, onD)
		ratios = append(ratios, float64(onD)/float64(offD))
	}
	medianUS := func(durs []time.Duration) float64 {
		sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
		return float64(durs[len(durs)/2].Microseconds()) / float64(nclips)
	}
	offUS, onUS := medianUS(offDurs), medianUS(onDurs)
	sort.Float64s(ratios)
	ratio := ratios[len(ratios)/2]

	c.printf("EXPLAIN overhead (online path, %d clips, median of %d interleaved pairs):\n", nclips, reps)

	rows := []ExplainOverheadResult{
		{Mode: "off", Clips: nclips, Reps: reps, USPerClip: offUS},
		{Mode: "on", Clips: nclips, Reps: reps, USPerClip: onUS, Invocations: attributed},
	}
	for _, r := range rows {
		c.printf("  explain %-3s  %10.1f µs/clip  (%d invocations attributed)\n", r.Mode, r.USPerClip, r.Invocations)
	}
	c.printf("  explain-on/off ratio: %.3f\n", ratio)
	return rows, nil
}

// sameSequences compares two result sets interval by interval.
func sameSequences(a, b interval.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
