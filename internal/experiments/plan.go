package experiments

import (
	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/plan"
	"vaq/internal/svaq"
	"vaq/internal/synth"
)

// PlanLeg is one row of the adaptive-sampling planner study: the online
// engine over one query at one base sampling rate.
type PlanLeg struct {
	// Rate is the planner's base subsampling rate; 0 is the dense
	// baseline, 1 arms the planner with only the dense rung (and must
	// reproduce the baseline exactly).
	Rate        int
	F1          float64
	Invocations int64 // backend detector+recognizer calls
	// Reduction is dense-leg invocations divided by this leg's.
	Reduction float64
	// Planner outcome counters (zero on the dense leg).
	Accepted  int
	Pruned    int
	Densified int
	// MatchesDense reports whether the leg returned exactly the dense
	// leg's sequences.
	MatchesDense bool
	// Deterministic reports whether a repeat run reproduced the same
	// sequences and the same invocation count.
	Deterministic bool
}

// PlanResult reports the coarse-to-fine planner study.
type PlanResult struct {
	Query string
	Legs  []PlanLeg
}

// planRates is the sweep of the planner study: dense baseline, the
// degenerate rate-1 planner (identity check), then real subsampling.
var planRates = []int{0, 1, 2, 4, 8}

// planLeg runs the online engine once at the given rate and returns the
// result sequences, the backend invocation count and the planner stats.
func (c *Context) planLeg(qs *synth.QuerySet, q annot.Query, rate int) (interval.Set, int64, plan.Stats, error) {
	scene := qs.World.Scene()
	var meter detect.CostMeter
	det := detect.NewSimObjectDetector(scene, c.ObjProfile, &meter)
	rec := detect.NewSimActionRecognizer(scene, c.ActProfile, &meter)
	meta := qs.World.Truth.Meta
	cfg := svaq.Config{
		Dynamic:      true,
		HorizonClips: meta.Clips(),
		Plan:         plan.Config{Rate: rate},
	}
	eng, err := svaq.New(q, det, rec, meta.Geom, cfg)
	if err != nil {
		return nil, 0, plan.Stats{}, err
	}
	seqs, err := eng.Run(meta.Clips())
	if err != nil {
		return nil, 0, plan.Stats{}, err
	}
	return seqs, meter.Calls(), eng.PlanStats(), nil
}

// Plan runs the coarse-to-fine adaptive sampling study: the online
// blowing-leaves query evaluated densely and under the planner at base
// rates 1 (identity), 2, 4 and 8. Each leg reports sequence-level F1
// against ground truth and the backend invocation count; every leg runs
// twice to confirm byte-determinism. The planner trades a bounded
// amount of accuracy (scaled accepts can fire on clips a dense scan
// would reject, truncated ladders extrapolate) for a large cut in model
// invocations — the paper-level claim is ≥2x fewer invocations within
// one F1 point of dense.
func (c *Context) Plan() (*PlanResult, error) {
	qs, err := c.youtube("q2")
	if err != nil {
		return nil, err
	}
	truth, err := qs.World.Truth.GroundTruthClips(qs.Query)
	if err != nil {
		return nil, err
	}

	res := &PlanResult{Query: qs.Query.String()}
	var denseSeqs interval.Set
	var denseCalls int64
	c.printf("Adaptive sampling planner (%v, %d clips):\n", qs.Query, qs.World.Truth.Meta.Clips())
	for _, rate := range planRates {
		seqs, calls, st, err := c.planLeg(qs, qs.Query, rate)
		if err != nil {
			return nil, err
		}
		seqs2, calls2, _, err := c.planLeg(qs, qs.Query, rate)
		if err != nil {
			return nil, err
		}
		if rate == 0 {
			denseSeqs, denseCalls = seqs, calls
		}
		leg := PlanLeg{
			Rate:          rate,
			F1:            f1(seqs, truth),
			Invocations:   calls,
			Accepted:      st.Accepted,
			Pruned:        st.Pruned,
			Densified:     st.Densified,
			MatchesDense:  seqs.Equal(denseSeqs),
			Deterministic: seqs2.Equal(seqs) && calls2 == calls,
		}
		if calls > 0 {
			leg.Reduction = float64(denseCalls) / float64(calls)
		}
		res.Legs = append(res.Legs, leg)
		label := "dense"
		if rate > 0 {
			label = "planned"
		}
		c.printf("  rate %d (%s): F1 %.4f  %8d invocations (%.2fx)  accept/prune/densify %d/%d/%d  matches dense: %v  deterministic: %v\n",
			rate, label, leg.F1, leg.Invocations, leg.Reduction,
			leg.Accepted, leg.Pruned, leg.Densified, leg.MatchesDense, leg.Deterministic)
	}
	return res, nil
}
