// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic workloads of package synth: the
// online accuracy studies (Figures 2–5, Tables 3–5, the runtime
// decomposition of §5.2) and the offline performance studies (Tables
// 6–8). DESIGN.md §3 maps each experiment to its modules; EXPERIMENTS.md
// records paper-reported versus measured values.
package experiments

import (
	"fmt"
	"io"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/metrics"
	"vaq/internal/svaq"
	"vaq/internal/synth"
	"vaq/internal/video"
)

// Context carries the shared knobs of an experiment run.
type Context struct {
	// Out receives the human-readable rows; nil discards them.
	Out io.Writer
	// Scale shrinks the workloads (1 = the paper-sized datasets;
	// quick test/bench modes use ~0.15).
	Scale float64
	// ObjProfile / ActProfile are the default model profiles.
	ObjProfile detect.Profile
	ActProfile detect.Profile
}

// NewContext returns a full-scale context with the paper's default
// models (Mask R-CNN + I3D).
func NewContext(out io.Writer) *Context {
	return &Context{Out: out, Scale: 1, ObjProfile: detect.MaskRCNN, ActProfile: detect.I3D}
}

// Quick returns a scaled-down context for tests and benches.
func Quick(out io.Writer) *Context {
	c := NewContext(out)
	c.Scale = 0.15
	return c
}

func (c *Context) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// youtube loads a YouTube query set at the context's scale.
func (c *Context) youtube(id string) (*synth.QuerySet, error) {
	return synth.YouTubeScaled(id, video.DefaultGeometry(), c.Scale)
}

// onlineRun executes one online engine over a full query set and
// returns the result sequences and the engine (for critical values,
// invocation counts and indicator logs).
type onlineRun struct {
	Seqs   interval.Set
	Engine *svaq.Engine
	Truth  interval.Set // ground-truth clip sequences for the query
	NClips int
}

// runOnline builds detectors for the set's world with the given
// profiles and runs the engine to completion.
func (c *Context) runOnline(qs *synth.QuerySet, q annot.Query, objP, actP detect.Profile, cfg svaq.Config) (*onlineRun, error) {
	scene := qs.World.Scene()
	det := detect.NewSimObjectDetector(scene, objP, nil)
	rec := detect.NewSimActionRecognizer(scene, actP, nil)
	meta := qs.World.Truth.Meta
	if cfg.HorizonClips == 0 {
		cfg.HorizonClips = meta.Clips()
	}
	eng, err := svaq.New(q, det, rec, meta.Geom, cfg)
	if err != nil {
		return nil, err
	}
	seqs, err := eng.Run(meta.Clips())
	if err != nil {
		return nil, err
	}
	truth, err := qs.World.Truth.GroundTruthClips(q)
	if err != nil {
		return nil, err
	}
	return &onlineRun{Seqs: seqs, Engine: eng, Truth: truth, NClips: meta.Clips()}, nil
}

// f1 is shorthand for the sequence-level F1 at the paper's η = 0.5.
func f1(pred, truth interval.Set) float64 {
	return metrics.SequenceF1(pred, truth, metrics.DefaultIOUThreshold).F1
}

// P0Grid is the background-probability grid of Figure 2.
var P0Grid = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}

// FixedP0 is the SVAQ operating point used from Figure 3 onward
// (chosen, as in the paper, from where the Figure 2 curve peaks).
const FixedP0 = 1e-4
