package experiments

import (
	"math"
	"testing"
)

// The experiment tests assert the qualitative shapes the paper reports
// (who wins, by roughly what factor, where crossovers fall) on scaled-
// down workloads; EXPERIMENTS.md records the full-scale values.

func quickCtx() *Context {
	c := NewContext(nil)
	c.Scale = 0.3
	return c
}

func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	res, err := quickCtx().Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2*len(P0Grid) {
		t.Fatalf("rows = %d", len(res))
	}
	byQuery := map[string][]Fig2Result{}
	for _, r := range res {
		byQuery[r.Query] = append(byQuery[r.Query], r)
	}
	for q, rows := range byQuery {
		minD, maxD := 1.0, 0.0
		minS, maxS := 1.0, 0.0
		for _, r := range rows {
			minD, maxD = math.Min(minD, r.SVAQD), math.Max(maxD, r.SVAQD)
			minS, maxS = math.Min(minS, r.SVAQ), math.Max(maxS, r.SVAQ)
		}
		// SVAQD is (nearly) flat in p0; SVAQ swings hard.
		if maxD-minD > 0.1 {
			t.Errorf("%s: SVAQD spread %v too large", q, maxD-minD)
		}
		if maxS-minS < 0.3 {
			t.Errorf("%s: SVAQ spread %v too small — no p0 sensitivity", q, maxS-minS)
		}
		if maxD < 0.6 {
			t.Errorf("%s: SVAQD best %v too low", q, maxD)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	res, err := quickCtx().Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 12 {
		t.Fatalf("rows = %d", len(res))
	}
	wins, sumD := 0, 0.0
	for _, r := range res {
		if r.SVAQD >= r.SVAQ-0.05 {
			wins++
		}
		sumD += r.SVAQD
	}
	// SVAQD matches or beats SVAQ on (almost) every query.
	if wins < 10 {
		t.Errorf("SVAQD only competitive on %d/12 queries: %+v", wins, res)
	}
	if mean := sumD / 12; mean < 0.65 {
		t.Errorf("mean SVAQD F1 %v too low", mean)
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	res, err := quickCtx().Table4()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table4Result{}
	for _, r := range res {
		byName[r.Models] = r
	}
	ideal := byName["Ideal Models"]
	if ideal.SVAQ != 1 || ideal.SVAQD != 1 {
		t.Errorf("ideal models F1 = %v/%v, want 1/1", ideal.SVAQ, ideal.SVAQD)
	}
	// Better detector, better or equal accuracy.
	if byName["MaskRCNN+I3D"].SVAQD < byName["YOLOv3+I3D"].SVAQD-0.1 {
		t.Errorf("MaskRCNN (%v) worse than YOLOv3 (%v)",
			byName["MaskRCNN+I3D"].SVAQD, byName["YOLOv3+I3D"].SVAQD)
	}
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	res, err := quickCtx().Table5()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ActionFPRWithSVAQD > r.ActionFPRRaw {
			t.Errorf("%s: action FPR worsened: %v -> %v", r.Query, r.ActionFPRRaw, r.ActionFPRWithSVAQD)
		}
		if r.ObjectFPRWithSVAQD > r.ObjectFPRRaw {
			t.Errorf("%s: object FPR worsened: %v -> %v", r.Query, r.ObjectFPRRaw, r.ObjectFPRWithSVAQD)
		}
		// The paper reports 50–80%+ of the noise eliminated.
		if r.ObjectNoiseEliminated < 0.5 {
			t.Errorf("%s: only %.0f%% object noise eliminated", r.Query, 100*r.ObjectNoiseEliminated)
		}
	}
}

func TestFig4And5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	res, err := quickCtx().Fig4And5()
	if err != nil {
		t.Fatal(err)
	}
	byQuery := map[string][]ClipSizeResult{}
	for _, r := range res {
		byQuery[r.Query] = append(byQuery[r.Query], r)
	}
	for q, rows := range byQuery {
		first, last := rows[0], rows[len(rows)-1]
		if last.Sequences > first.Sequences {
			t.Errorf("%s: sequences grew with clip size: %d -> %d", q, first.Sequences, last.Sequences)
		}
		minF1, maxF1 := 1.0, 0.0
		for _, r := range rows {
			minF1 = math.Min(minF1, r.FrameF1)
			maxF1 = math.Max(maxF1, r.FrameF1)
		}
		// Frame-level accuracy stays (nearly) flat across clip sizes;
		// the scaled-down workload adds variance, so the tolerance is
		// looser than the full-scale spread recorded in EXPERIMENTS.md.
		if maxF1-minF1 > 0.25 {
			t.Errorf("%s: frame F1 varies %v..%v across clip sizes", q, minF1, maxF1)
		}
		if minF1 < 0.65 {
			t.Errorf("%s: frame F1 %v too low", q, minF1)
		}
	}
}

func TestOnlineRuntimeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	r, err := quickCtx().OnlineRuntime()
	if err != nil {
		t.Fatal(err)
	}
	// The paper: >98% of online runtime is model inference.
	if r.InferenceShare < 0.98 {
		t.Errorf("inference share %v < 0.98", r.InferenceShare)
	}
	if r.ModelInvocations == 0 {
		t.Error("no invocations recorded")
	}
	if r.EndToEndTrainingEst < 60*60*1e9 {
		t.Error("end-to-end cost model missing")
	}
	if r.ClipP50 < 0 || r.ClipP99 < r.ClipP50 {
		t.Errorf("per-clip quantiles inconsistent: p50 %v, p99 %v", r.ClipP50, r.ClipP99)
	}
}

func TestDriftShape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	r, err := quickCtx().Drift()
	if err != nil {
		t.Fatal(err)
	}
	if r.SVAQD <= r.SVAQ {
		t.Errorf("SVAQD (%v) should beat SVAQ (%v) under drift", r.SVAQD, r.SVAQ)
	}
}

func TestTable6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	rows, err := quickCtx().Table6()
	if err != nil {
		t.Fatal(err)
	}
	byMK := map[string]map[int]Table6Row{}
	for _, r := range rows {
		if byMK[r.Method] == nil {
			byMK[r.Method] = map[int]Table6Row{}
		}
		byMK[r.Method][r.K] = r
	}
	for _, k := range Table6Ks {
		rv := byMK["RVAQ"][k].RandomAccesses
		pt := byMK["Pq-Traverse"][k].RandomAccesses
		ns := byMK["RVAQ-noSkip"][k].RandomAccesses
		if rv > pt {
			t.Errorf("K=%d: RVAQ (%d) above Pq-Traverse (%d)", k, rv, pt)
		}
		if ns <= rv {
			t.Errorf("K=%d: noSkip (%d) not worse than RVAQ (%d)", k, ns, rv)
		}
	}
	// Pq-Traverse cost is constant in K.
	if byMK["Pq-Traverse"][1].RandomAccesses != byMK["Pq-Traverse"][15].RandomAccesses {
		t.Error("Pq-Traverse accesses vary with K")
	}
	// RVAQ cost grows with K.
	if byMK["RVAQ"][15].RandomAccesses < byMK["RVAQ"][1].RandomAccesses {
		t.Error("RVAQ accesses shrank with K")
	}
}

func TestTable8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	rows, err := quickCtx().Table8()
	if err != nil {
		t.Fatal(err)
	}
	byMovie := map[string][]Table8Row{}
	for _, r := range rows {
		byMovie[r.Movie] = append(byMovie[r.Movie], r)
	}
	for movie, rs := range byMovie {
		if rs[0].Speedup < 1 {
			t.Errorf("%s: K=1 speedup %v < 1", movie, rs[0].Speedup)
		}
		last := rs[len(rs)-1]
		if !last.MaxK {
			t.Errorf("%s: last row not maxK", movie)
		}
		// At max K RVAQ converges to Pq-Traverse.
		if last.Speedup > 1.5 {
			t.Errorf("%s: maxK speedup %v should approach 1", movie, last.Speedup)
		}
	}
}

func TestAblationShortCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	r, err := quickCtx().AblationShortCircuit()
	if err != nil {
		t.Fatal(err)
	}
	if r.InvocationsSC >= r.InvocationsFull {
		t.Errorf("short-circuit saved nothing: %d vs %d", r.InvocationsSC, r.InvocationsFull)
	}
	if r.SavedFraction <= 0 {
		t.Errorf("saved fraction %v", r.SavedFraction)
	}
}

func TestAblationCritValueAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo")
	}
	rows, err := quickCtx().AblationCritValue()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if d := r.KClosed - r.KMonteCarlo; d < -1 || d > 1 {
			t.Errorf("p=%v: closed k=%d vs monte-carlo k=%d", r.P, r.KClosed, r.KMonteCarlo)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	rows, err := quickCtx().Table7()
	if err != nil {
		t.Fatal(err)
	}
	bySetMethod := map[string]map[string]Table7Row{}
	for _, r := range rows {
		if bySetMethod[r.Set] == nil {
			bySetMethod[r.Set] = map[string]Table7Row{}
		}
		bySetMethod[r.Set][r.Method] = r
	}
	for set, methods := range bySetMethod {
		rv := methods["RVAQ"].RandomAccesses
		pt := methods["Pq-Traverse"].RandomAccesses
		ns := methods["RVAQ-noSkip"].RandomAccesses
		if rv > pt {
			t.Errorf("%s: RVAQ (%d) above Pq-Traverse (%d)", set, rv, pt)
		}
		if ns <= rv {
			t.Errorf("%s: noSkip (%d) not worse than RVAQ (%d)", set, ns, rv)
		}
	}
}

func TestAblationAlphaShape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	rows, err := quickCtx().AblationAlpha()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Alphas) {
		t.Fatalf("rows = %d", len(rows))
	}
	best := 0.0
	for _, r := range rows {
		if r.F1 > best {
			best = r.F1
		}
	}
	if best < 0.7 {
		t.Errorf("best F1 over the alpha sweep = %v", best)
	}
}
