package experiments

import "testing"

// TestChaosQuick runs the chaos experiment at test scale and checks its
// invariants: the wrapper is near-free on a healthy backend, the
// zero-rate curve point matches the clean F1 with no resilience
// activity, and higher fault rates produce retries (and, at the top
// rate, fallbacks) without the run failing.
func TestChaosQuick(t *testing.T) {
	res, err := Quick(nil).Chaos()
	if err != nil {
		t.Fatal(err)
	}
	if res.OverheadRatio > 1.10 {
		// The acceptance budget is 1.02 at paper scale; at test scale a
		// single run is noisier, so the gate here is looser — and the
		// ratio compares two wall-clock legs, so a scheduling burst on a
		// loaded runner can skew one leg. Re-measure once before failing.
		rerun, err := Quick(nil).Chaos()
		if err != nil {
			t.Fatal(err)
		}
		if rerun.OverheadRatio > 1.10 {
			t.Errorf("resilience wrapper overhead ratio %.3f (retry %.3f) too high",
				res.OverheadRatio, rerun.OverheadRatio)
		}
	}
	if len(res.Curve) != len(chaosRates) {
		t.Fatalf("curve has %d points, want %d", len(res.Curve), len(chaosRates))
	}
	clean := res.Curve[0]
	if clean.Retries != 0 || clean.Fallbacks != 0 || clean.DegradedUnits != 0 {
		t.Errorf("zero-rate point shows resilience activity: %+v", clean)
	}
	if clean.F1 <= 0 {
		t.Errorf("zero-rate F1 = %v, want > 0", clean.F1)
	}
	last := res.Curve[len(res.Curve)-1]
	if last.Retries == 0 {
		t.Errorf("top-rate point saw no retries: %+v", last)
	}
	if last.Fallbacks == 0 {
		t.Errorf("top-rate point saw no fallbacks: %+v", last)
	}
	for _, row := range res.Curve {
		if row.F1 < 0 || row.F1 > 1 {
			t.Errorf("rate %v: F1 %v out of range", row.Rate, row.F1)
		}
	}
}
