package experiments

import "testing"

// TestManySessionsQuick runs the many-sessions experiment at test scale
// and checks the PR's acceptance criteria: sharing one inference domain
// across N identical sessions cuts backend invocations at least 5x, and
// every session still produces the baseline's exact sequences.
func TestManySessionsQuick(t *testing.T) {
	res, err := Quick(nil).ManySessions()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions < 8 {
		t.Fatalf("sessions = %d, want >= 8", res.Sessions)
	}
	if res.BaselineCalls == 0 || res.SharedCalls == 0 {
		t.Fatalf("degenerate legs: baseline %d, shared %d", res.BaselineCalls, res.SharedCalls)
	}
	if res.Reduction < 5 {
		t.Errorf("invocation reduction %.2fx, want >= 5x", res.Reduction)
	}
	if !res.Identical {
		t.Error("shared-inference leg diverged from the baseline sequences")
	}
	if res.CacheHits == 0 {
		t.Error("no cache hits across identical sessions")
	}
}
