package experiments

import (
	"fmt"
	"sort"
	"time"

	"vaq/internal/detect"
	"vaq/internal/fault"
	"vaq/internal/resilience"
	"vaq/internal/svaq"
)

// ChaosRow is one point on the degradation curve: the online engine run
// through a transient-error fault schedule at the given rate, with the
// resilience layer absorbing what it can.
type ChaosRow struct {
	Rate          float64 // per-attempt transient error probability
	F1            float64 // sequence F1 against ground truth
	USPerClip     float64
	Retries       int64 // attempts beyond the first
	Fallbacks     int64 // units served by the degradation fallback
	DegradedUnits int   // distinct degraded frames/shots
}

// ChaosResult bundles the chaos experiment: the overhead of the
// resilience wrapper on a healthy backend (budgeted at ratio <= 1.02)
// and the accuracy/latency degradation curve under increasing fault
// rates.
type ChaosResult struct {
	Clips            int
	Reps             int
	BareUSPerClip    float64 // engine on unwrapped detectors
	WrappedUSPerClip float64 // resilience wrapper, no faults
	OverheadRatio    float64 // wrapped / bare
	Curve            []ChaosRow
}

// chaosRates is the transient-error sweep of the degradation curve.
var chaosRates = []float64{0, 0.05, 0.1, 0.2, 0.4}

// chaosPolicy keeps the full retry/breaker machinery armed but with
// zero backoff: at the sweep's fault rates tens of thousands of units
// retry, and even microsecond sleeps are timer-granularity bound — the
// curve would measure the clock, not the policy.
func chaosPolicy() resilience.Policy {
	return resilience.Policy{
		Deadline:        50 * time.Millisecond,
		MaxRetries:      2,
		Seed:            7,
		BreakerFailures: 8,
		BreakerCooldown: 2 * time.Millisecond,
	}
}

// Chaos measures what resilience costs when nothing fails and what it
// buys when things do. The overhead leg runs the online engine bare and
// behind the wrapper (no faults, median of 5 reps); the curve leg
// injects transient detector errors at increasing rates and reports F1,
// latency and the retry/fallback counters — accuracy should fall
// gracefully (retries absorb most faults; fallbacks degrade the rest to
// the prior) rather than the run failing.
func (c *Context) Chaos() (*ChaosResult, error) {
	qs, err := c.youtube("q2")
	if err != nil {
		return nil, err
	}
	scene := qs.World.Scene()
	meta := qs.World.Truth.Meta
	nclips := meta.Clips()
	truth, err := qs.World.Truth.GroundTruthClips(qs.Query)
	if err != nil {
		return nil, err
	}

	// run executes one engine pass; wrap decorates the sim detectors
	// (identity for the bare leg).
	type models struct {
		det detect.ObjectDetector
		rec detect.ActionRecognizer
	}
	run := func(mk func(detect.ObjectDetector, detect.ActionRecognizer) models) (float64, time.Duration, *resilience.Models, error) {
		det := detect.NewSimObjectDetector(scene, c.ObjProfile, nil)
		rec := detect.NewSimActionRecognizer(scene, c.ActProfile, nil)
		m := mk(det, rec)
		eng, err := svaq.New(qs.Query, m.det, m.rec, meta.Geom, svaq.Config{
			Dynamic: true, HorizonClips: nclips,
		})
		if err != nil {
			return 0, 0, nil, err
		}
		start := time.Now()
		seqs, err := eng.Run(nclips)
		if err != nil {
			return 0, 0, nil, err
		}
		d := time.Since(start)
		var rm *resilience.Models
		if rd, ok := m.det.(*resilience.Detector); ok {
			rm = &resilience.Models{Det: rd, Rec: m.rec.(*resilience.Recognizer)}
		}
		return f1(seqs, truth), d, rm, nil
	}

	const reps = 5
	median := func(mk func(detect.ObjectDetector, detect.ActionRecognizer) models) (float64, error) {
		durs := make([]time.Duration, 0, reps)
		for i := 0; i < reps; i++ {
			_, d, _, err := run(mk)
			if err != nil {
				return 0, err
			}
			durs = append(durs, d)
		}
		sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
		return float64(durs[reps/2].Microseconds()) / float64(nclips), nil
	}

	c.printf("Chaos (online path, %d clips, overhead as median of %d runs):\n", nclips, reps)
	bare := func(det detect.ObjectDetector, rec detect.ActionRecognizer) models {
		return models{det, rec}
	}
	pol := chaosPolicy()
	wrapped := func(sched fault.Schedule) func(detect.ObjectDetector, detect.ActionRecognizer) models {
		return func(det detect.ObjectDetector, rec detect.ActionRecognizer) models {
			fdet, frec := detect.AsFallibleObject(det), detect.AsFallibleAction(rec)
			if !sched.Empty() {
				fdet = fault.NewObject(fdet, sched)
				frec = fault.NewAction(frec, sched)
			}
			m := resilience.WrapFallible(fdet, frec, pol, resilience.Options{})
			return models{m.Det, m.Rec}
		}
	}

	bareUS, err := median(bare)
	if err != nil {
		return nil, err
	}
	wrappedUS, err := median(wrapped(fault.Schedule{}))
	if err != nil {
		return nil, err
	}
	res := &ChaosResult{
		Clips:            nclips,
		Reps:             reps,
		BareUSPerClip:    bareUS,
		WrappedUSPerClip: wrappedUS,
		OverheadRatio:    wrappedUS / bareUS,
	}
	c.printf("  bare            %10.1f µs/clip\n", bareUS)
	c.printf("  wrapped (no fault) %7.1f µs/clip  (ratio %.3f, budget 1.02)\n",
		wrappedUS, res.OverheadRatio)

	c.printf("  degradation curve (transient errors, %d retries):\n", pol.MaxRetries)
	for _, rate := range chaosRates {
		sched := fault.Schedule{Seed: 42}
		if rate > 0 {
			var perr error
			sched, perr = fault.Parse(42, fmt.Sprintf("error:0-:%g", rate))
			if perr != nil {
				return nil, perr
			}
		}
		f1v, d, rm, err := run(wrapped(sched))
		if err != nil {
			return nil, err
		}
		row := ChaosRow{
			Rate:      rate,
			F1:        f1v,
			USPerClip: float64(d.Microseconds()) / float64(nclips),
		}
		if rm != nil {
			st := rm.Stats()
			row.Retries = st.Retries
			row.Fallbacks = st.Fallbacks
			row.DegradedUnits = st.DegradedUnits
		}
		res.Curve = append(res.Curve, row)
		c.printf("    rate %4.2f  F1 %.3f  %8.1f µs/clip  retries %6d  fallbacks %5d  degraded %5d\n",
			row.Rate, row.F1, row.USPerClip, row.Retries, row.Fallbacks, row.DegradedUnits)
	}
	return res, nil
}
