package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/fault"
	"vaq/internal/resilience"
	"vaq/internal/video"
)

// HedgeResult bundles the hedging experiment: per-call latency
// quantiles of the resilience wrapper with and without hedged requests
// under an injected latency-episode schedule, plus the extra-invocation
// cost hedging imposes on a perfectly healthy backend (budgeted at
// ratio <= 1.05).
type HedgeResult struct {
	Calls   int
	Rate    float64 // per-unit latency-episode probability
	DelayMS float64 // injected delay per episode

	BaseP50US, BaseP99US     float64 // unhedged, under the schedule
	HedgedP50US, HedgedP99US float64 // hedged, same schedule
	P99Ratio                 float64 // base p99 / hedged p99 (>1 = improvement)
	Hedges, HedgeWins        int64   // replicas launched / rounds they decided

	HealthyInvocations int64   // raw backend calls on the healthy leg
	HealthyExtraRatio  float64 // invocations / calls (budget 1.05)
	HealthyHedges      int64
}

// countingObject counts raw backend invocations. It is deliberately
// fallible-shaped (no InfallibleBackend marker) so the policy machinery
// — hedging included — stays engaged even over a healthy backend.
type countingObject struct {
	inner detect.FallibleObjectDetector
	n     atomic.Int64
}

func (co *countingObject) Name() string { return co.inner.Name() }

func (co *countingObject) DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, error) {
	co.n.Add(1)
	return co.inner.DetectCtx(ctx, v, labels)
}

// Hedge measures what hedged requests buy against tail latency and what
// they cost when nothing is slow. The episode rate (4%) sits below
// 1 − HedgeQuantile's complement so the observed p95 stays in the fast
// mass; the injected delay fits inside the policy deadline, as the
// determinism contract requires of latency episodes.
func (c *Context) Hedge() (*HedgeResult, error) {
	qs, err := c.youtube("q2")
	if err != nil {
		return nil, err
	}
	scene := qs.World.Scene()
	labels := qs.World.Truth.ObjectLabels()
	calls := int(2000 * c.Scale)
	if calls < 300 {
		calls = 300
	}

	const rate = 0.04
	const delay = 10 * time.Millisecond
	sched, err := fault.Parse(42, fmt.Sprintf("latency:0-:%g:%s", rate, delay))
	if err != nil {
		return nil, err
	}
	pol := resilience.Policy{Deadline: 250 * time.Millisecond, MaxRetries: 1, Seed: 7}
	hedged := pol
	hedged.HedgeQuantile = 0.95

	// run drives `calls` frame detections through the wrapper and
	// reports the per-call latency quantiles plus the wrapper stats.
	run := func(p resilience.Policy, sched fault.Schedule, count *countingObject) (p50, p99 time.Duration, st resilience.Stats, err error) {
		fdet := detect.AsFallibleObject(detect.NewSimObjectDetector(scene, c.ObjProfile, nil))
		frec := detect.AsFallibleAction(detect.NewSimActionRecognizer(scene, c.ActProfile, nil))
		if !sched.Empty() {
			fdet = fault.NewObject(fdet, sched)
		}
		if count != nil {
			count.inner = fdet
			fdet = count
		}
		m := resilience.WrapFallible(fdet, frec, p, resilience.Options{})
		durs := make([]time.Duration, calls)
		for i := 0; i < calls; i++ {
			start := time.Now()
			m.Det.Detect(video.FrameIdx(i), labels)
			durs[i] = time.Since(start)
		}
		sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
		return durs[calls/2], durs[calls*99/100], m.Det.Stats(), nil
	}

	c.printf("Hedging (object path, %d calls, latency episodes: rate %g, delay %v):\n", calls, rate, delay)
	bp50, bp99, _, err := run(pol, sched, nil)
	if err != nil {
		return nil, err
	}
	hp50, hp99, hst, err := run(hedged, sched, nil)
	if err != nil {
		return nil, err
	}
	healthy := &countingObject{}
	_, _, hlst, err := run(hedged, fault.Schedule{}, healthy)
	if err != nil {
		return nil, err
	}

	res := &HedgeResult{
		Calls:              calls,
		Rate:               rate,
		DelayMS:            float64(delay.Microseconds()) / 1e3,
		BaseP50US:          float64(bp50.Nanoseconds()) / 1e3,
		BaseP99US:          float64(bp99.Nanoseconds()) / 1e3,
		HedgedP50US:        float64(hp50.Nanoseconds()) / 1e3,
		HedgedP99US:        float64(hp99.Nanoseconds()) / 1e3,
		Hedges:             hst.Hedges,
		HedgeWins:          hst.HedgeWins,
		HealthyInvocations: healthy.n.Load(),
		HealthyExtraRatio:  float64(healthy.n.Load()) / float64(calls),
		HealthyHedges:      hlst.Hedges,
	}
	if res.HedgedP99US > 0 {
		res.P99Ratio = res.BaseP99US / res.HedgedP99US
	}
	c.printf("  unhedged  p50 %8.1f µs  p99 %10.1f µs\n", res.BaseP50US, res.BaseP99US)
	c.printf("  hedged    p50 %8.1f µs  p99 %10.1f µs  (p99 %.1fx better; %d hedges, %d wins)\n",
		res.HedgedP50US, res.HedgedP99US, res.P99Ratio, res.Hedges, res.HedgeWins)
	c.printf("  healthy   %d invocations / %d calls = ratio %.3f (budget 1.05; %d hedges)\n",
		res.HealthyInvocations, calls, res.HealthyExtraRatio, res.HealthyHedges)
	return res, nil
}
