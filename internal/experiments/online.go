package experiments

import (
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/metrics"
	"vaq/internal/quantile"
	"vaq/internal/svaq"
	"vaq/internal/synth"
	"vaq/internal/video"
)

// Fig2Result is one series point of Figure 2: F1 of SVAQ and SVAQD at
// one initial background probability.
type Fig2Result struct {
	Query string
	P0    float64
	SVAQ  float64
	SVAQD float64
}

// Fig2 reproduces Figure 2: sensitivity of SVAQ vs SVAQD to the initial
// background probability on the queries (a) {a=blowing leaves, o=car}
// and (b) {a=washing dishes, o=faucet}.
func (c *Context) Fig2() ([]Fig2Result, error) {
	cases := []struct {
		set string
		q   annot.Query
	}{
		{"q2", annot.Query{Action: "blowing_leaves", Objects: []annot.Label{"car"}}},
		{"q1", annot.Query{Action: "washing_dishes", Objects: []annot.Label{"faucet"}}},
	}
	var out []Fig2Result
	c.printf("Figure 2: F1 vs initial background probability p0\n")
	for _, cs := range cases {
		qs, err := c.youtube(cs.set)
		if err != nil {
			return nil, err
		}
		c.printf("  query %v\n", cs.q)
		for _, p0 := range P0Grid {
			static, err := c.runOnline(qs, cs.q, c.ObjProfile, c.ActProfile,
				svaq.Config{P0Object: p0, P0Action: p0})
			if err != nil {
				return nil, err
			}
			dyn, err := c.runOnline(qs, cs.q, c.ObjProfile, c.ActProfile,
				svaq.Config{Dynamic: true, P0Object: p0, P0Action: p0})
			if err != nil {
				return nil, err
			}
			r := Fig2Result{
				Query: cs.q.String(), P0: p0,
				SVAQ:  f1(static.Seqs, static.Truth),
				SVAQD: f1(dyn.Seqs, dyn.Truth),
			}
			out = append(out, r)
			c.printf("    p0=%.0e  SVAQ=%.3f  SVAQD=%.3f\n", r.P0, r.SVAQ, r.SVAQD)
		}
	}
	return out, nil
}

// Fig3Result is one bar pair of Figure 3.
type Fig3Result struct {
	Set   string
	Query string
	SVAQ  float64 // at the fixed p0 = 1e-4
	SVAQD float64
}

// Fig3 reproduces Figure 3: F1 of SVAQ (p0 fixed to 1e-4) and SVAQD for
// all twelve YouTube queries of Table 1.
func (c *Context) Fig3() ([]Fig3Result, error) {
	var out []Fig3Result
	c.printf("Figure 3: F1 of SVAQ (p0=1e-4) and SVAQD on q1..q12\n")
	for _, id := range synth.YouTubeIDs() {
		qs, err := c.youtube(id)
		if err != nil {
			return nil, err
		}
		static, err := c.runOnline(qs, qs.Query, c.ObjProfile, c.ActProfile,
			svaq.Config{P0Object: FixedP0, P0Action: FixedP0})
		if err != nil {
			return nil, err
		}
		dyn, err := c.runOnline(qs, qs.Query, c.ObjProfile, c.ActProfile,
			svaq.Config{Dynamic: true})
		if err != nil {
			return nil, err
		}
		r := Fig3Result{
			Set: id, Query: qs.Query.String(),
			SVAQ:  f1(static.Seqs, static.Truth),
			SVAQD: f1(dyn.Seqs, dyn.Truth),
		}
		out = append(out, r)
		c.printf("  %-4s %-50s SVAQ=%.3f SVAQD=%.3f\n", r.Set, r.Query, r.SVAQ, r.SVAQD)
	}
	return out, nil
}

// Table3Result is one row of Table 3.
type Table3Result struct {
	Query string
	SVAQ  float64
	SVAQD float64
}

// Table3 reproduces Table 3: F1 as the object predicates of the blowing
// leaves and washing dishes queries vary in number and correlation.
func (c *Context) Table3() ([]Table3Result, error) {
	variants := []struct {
		set string
		q   annot.Query
	}{
		{"q2", annot.Query{Action: "blowing_leaves"}},
		{"q2", annot.Query{Action: "blowing_leaves", Objects: []annot.Label{"person"}}},
		{"q2", annot.Query{Action: "blowing_leaves", Objects: []annot.Label{"plant"}}},
		{"q2", annot.Query{Action: "blowing_leaves", Objects: []annot.Label{"car"}}},
		{"q2", annot.Query{Action: "blowing_leaves", Objects: []annot.Label{"person", "car"}}},
		{"q2", annot.Query{Action: "blowing_leaves", Objects: []annot.Label{"person", "plant", "car"}}},
		{"q1", annot.Query{Action: "washing_dishes"}},
		{"q1", annot.Query{Action: "washing_dishes", Objects: []annot.Label{"person"}}},
		{"q1", annot.Query{Action: "washing_dishes", Objects: []annot.Label{"oven"}}},
		{"q1", annot.Query{Action: "washing_dishes", Objects: []annot.Label{"faucet"}}},
		{"q1", annot.Query{Action: "washing_dishes", Objects: []annot.Label{"faucet", "oven"}}},
		{"q1", annot.Query{Action: "washing_dishes", Objects: []annot.Label{"person", "faucet", "oven"}}},
	}
	sets := map[string]*synth.QuerySet{}
	var out []Table3Result
	c.printf("Table 3: F1 with varying object predicates\n")
	for _, v := range variants {
		qs, ok := sets[v.set]
		if !ok {
			var err error
			qs, err = c.youtube(v.set)
			if err != nil {
				return nil, err
			}
			sets[v.set] = qs
		}
		static, err := c.runOnline(qs, v.q, c.ObjProfile, c.ActProfile,
			svaq.Config{P0Object: FixedP0, P0Action: FixedP0})
		if err != nil {
			return nil, err
		}
		dyn, err := c.runOnline(qs, v.q, c.ObjProfile, c.ActProfile, svaq.Config{Dynamic: true})
		if err != nil {
			return nil, err
		}
		r := Table3Result{
			Query: v.q.String(),
			SVAQ:  f1(static.Seqs, static.Truth),
			SVAQD: f1(dyn.Seqs, dyn.Truth),
		}
		out = append(out, r)
		c.printf("  %-70s SVAQ=%.2f SVAQD=%.2f\n", r.Query, r.SVAQ, r.SVAQD)
	}
	return out, nil
}

// Table4Result is one row of Table 4.
type Table4Result struct {
	Models string
	SVAQ   float64
	SVAQD  float64
}

// Table4 reproduces Table 4: F1 of the query {a=blowing leaves, o=car}
// under different detection-model profiles, including the ideal models.
func (c *Context) Table4() ([]Table4Result, error) {
	q := annot.Query{Action: "blowing_leaves", Objects: []annot.Label{"car"}}
	qs, err := c.youtube("q2")
	if err != nil {
		return nil, err
	}
	combos := []struct {
		name string
		obj  detect.Profile
		act  detect.Profile
	}{
		{"MaskRCNN+I3D", detect.MaskRCNN, detect.I3D},
		{"YOLOv3+I3D", detect.YOLOv3, detect.I3D},
		{"Ideal Models", detect.IdealObject, detect.IdealAction},
	}
	var out []Table4Result
	c.printf("Table 4: F1 by detection model for %v\n", q)
	for _, combo := range combos {
		static, err := c.runOnline(qs, q, combo.obj, combo.act,
			svaq.Config{P0Object: FixedP0, P0Action: FixedP0})
		if err != nil {
			return nil, err
		}
		dyn, err := c.runOnline(qs, q, combo.obj, combo.act, svaq.Config{Dynamic: true})
		if err != nil {
			return nil, err
		}
		r := Table4Result{
			Models: combo.name,
			SVAQ:   f1(static.Seqs, static.Truth),
			SVAQD:  f1(dyn.Seqs, dyn.Truth),
		}
		out = append(out, r)
		c.printf("  %-14s SVAQ=%.2f SVAQD=%.2f\n", r.Models, r.SVAQ, r.SVAQD)
	}
	return out, nil
}

// Table5Result is one row of Table 5: per-unit false positive rates of
// the raw models versus within SVAQD's reported sequences.
type Table5Result struct {
	Query                 string
	ActionFPRRaw          float64
	ActionFPRWithSVAQD    float64
	ObjectFPRRaw          float64
	ObjectFPRWithSVAQD    float64
	ActionNoiseEliminated float64 // fraction of FP shots outside reported sequences
	ObjectNoiseEliminated float64
}

// Table5 reproduces Table 5: how much detector noise SVAQD eliminates.
// The raw rate is the model's per-unit FPR over the whole stream; the
// "with SVAQD" rate keeps the same denominator but only counts the
// false positives that survive inside the reported result sequences —
// everything outside has been eliminated by the query's statistical
// filtering.
func (c *Context) Table5() ([]Table5Result, error) {
	cases := []struct {
		set string
		q   annot.Query
	}{
		{"q2", annot.Query{Action: "blowing_leaves", Objects: []annot.Label{"car"}}},
		{"q1", annot.Query{Action: "washing_dishes", Objects: []annot.Label{"faucet"}}},
	}
	var out []Table5Result
	c.printf("Table 5: detector FPR without vs with SVAQD\n")
	for _, cs := range cases {
		qs, err := c.youtube(cs.set)
		if err != nil {
			return nil, err
		}
		run, err := c.runOnline(qs, cs.q, c.ObjProfile, c.ActProfile,
			svaq.Config{Dynamic: true, RecordIndicators: true})
		if err != nil {
			return nil, err
		}
		geom := qs.World.Truth.Meta.Geom
		nframes := run.NClips * geom.ClipLen()
		nshots := run.NClips * geom.ShotsPerClip

		actTruth := qs.World.Truth.Actions[cs.q.Action]
		objTruth := qs.World.Truth.Objects[cs.q.Objects[0]]
		actPred := run.Engine.ActionIndicators()
		objPred := run.Engine.ObjectIndicators(cs.q.Objects[0])

		fullShots := interval.Set{{Lo: 0, Hi: nshots - 1}}
		fullFrames := interval.Set{{Lo: 0, Hi: nframes - 1}}
		repShots := scaleSeqs(run.Seqs, geom.ShotsPerClip)
		repFrames := scaleSeqs(run.Seqs, geom.ClipLen())

		actRetained := metrics.RetainedFPFraction(actPred, actTruth, repShots)
		objRetained := metrics.RetainedFPFraction(objPred, objTruth, repFrames)
		r := Table5Result{
			Query:                 cs.q.String(),
			ActionFPRRaw:          metrics.FPR(actPred, actTruth, fullShots),
			ObjectFPRRaw:          metrics.FPR(objPred, objTruth, fullFrames),
			ActionNoiseEliminated: 1 - actRetained,
			ObjectNoiseEliminated: 1 - objRetained,
		}
		r.ActionFPRWithSVAQD = r.ActionFPRRaw * actRetained
		r.ObjectFPRWithSVAQD = r.ObjectFPRRaw * objRetained
		out = append(out, r)
		c.printf("  %-50s action FPR %.3f -> %.3f   object FPR %.3f -> %.3f   noise eliminated act %.0f%% obj %.0f%%\n",
			r.Query, r.ActionFPRRaw, r.ActionFPRWithSVAQD, r.ObjectFPRRaw, r.ObjectFPRWithSVAQD,
			100*r.ActionNoiseEliminated, 100*r.ObjectNoiseEliminated)
	}
	return out, nil
}

// scaleSeqs expands clip-id sequences to the covered fine units.
func scaleSeqs(clips interval.Set, unitsPerClip int) interval.Set {
	ivs := make([]interval.Interval, len(clips))
	for i, iv := range clips {
		ivs[i] = interval.Interval{Lo: iv.Lo * unitsPerClip, Hi: (iv.Hi+1)*unitsPerClip - 1}
	}
	return interval.Normalize(ivs)
}

// ClipSizeResult is one point of Figures 4 and 5.
type ClipSizeResult struct {
	Query       string
	ClipFrames  int
	Sequences   int     // Figure 4
	FrameF1     float64 // Figure 5
	FramesFound int
}

// ClipSizes is the sweep of Figures 4–5 (frames per clip; shot length
// stays 10).
var ClipSizes = []int{20, 30, 50, 80, 120}

// Fig4And5 reproduces Figures 4 and 5: the number of result sequences
// shrinks as clips grow, while the frame-level F1 — and the total number
// of frames reported — stays nearly flat.
func (c *Context) Fig4And5() ([]ClipSizeResult, error) {
	cases := []struct {
		set string
		q   annot.Query
	}{
		{"q2", annot.Query{Action: "blowing_leaves", Objects: []annot.Label{"car"}}},
		{"q1", annot.Query{Action: "washing_dishes", Objects: []annot.Label{"faucet"}}},
	}
	var out []ClipSizeResult
	c.printf("Figures 4-5: clip size sweep\n")
	for _, cs := range cases {
		for _, clipFrames := range ClipSizes {
			geom := video.Geometry{FPS: 30, ShotLen: 10, ShotsPerClip: clipFrames / 10}
			if geom.ShotsPerClip < 2 {
				geom.ShotsPerClip = 2
			}
			qs, err := synth.YouTubeScaled(cs.set, geom, c.Scale)
			if err != nil {
				return nil, err
			}
			run, err := c.runOnline(qs, cs.q, c.ObjProfile, c.ActProfile, svaq.Config{Dynamic: true})
			if err != nil {
				return nil, err
			}
			// Frame-level comparison against frame-granularity truth.
			truthFrames, err := groundTruthFrames(qs, cs.q)
			if err != nil {
				return nil, err
			}
			predFrames := scaleSeqs(run.Seqs, geom.ClipLen())
			uf := metrics.UnitF1(predFrames, truthFrames, qs.World.Truth.Meta.Frames)
			r := ClipSizeResult{
				Query:       cs.q.String(),
				ClipFrames:  geom.ClipLen(),
				Sequences:   len(run.Seqs),
				FrameF1:     uf.F1,
				FramesFound: predFrames.Len(),
			}
			out = append(out, r)
			c.printf("  %-50s clip=%3d frames: %3d sequences, frame-F1=%.3f (%d frames)\n",
				r.Query, r.ClipFrames, r.Sequences, r.FrameF1, r.FramesFound)
		}
	}
	return out, nil
}

// groundTruthFrames intersects the query predicates' truth at frame
// granularity (actions expanded from shots).
func groundTruthFrames(qs *synth.QuerySet, q annot.Query) (interval.Set, error) {
	truth := qs.World.Truth
	shotLen := truth.Meta.Geom.ShotLen
	sets := make([]interval.Set, 0, len(q.Objects)+1)
	if q.Action != "" {
		sets = append(sets, scaleSeqs(truth.Actions[q.Action], shotLen))
	}
	for _, o := range q.Objects {
		sets = append(sets, truth.Objects[o])
	}
	return interval.IntersectAll(sets...), nil
}

// RuntimeResult is the §5.2 runtime decomposition.
type RuntimeResult struct {
	Query               string
	TotalRuntime        time.Duration // simulated inference + measured algorithm time
	InferenceTime       time.Duration // simulated model inference (dominates)
	AlgorithmTime       time.Duration // measured wall time of everything else
	InferenceShare      float64
	ModelInvocations    int64
	EndToEndTrainingEst time.Duration // cost model of the per-query end-to-end baseline
	// Per-clip algorithm latency quantiles (inference excluded — it is
	// simulated). Tail latency per clip is what bounds how far behind a
	// live feed the engine can fall.
	ClipP50, ClipP90, ClipP99 time.Duration
}

// endToEndTrainingCost models the paper's end-to-end baseline: fine-
// tuning an I3D-style network per query took the authors >60 hours.
const endToEndTrainingCost = 62 * time.Hour

// OnlineRuntime reproduces the §5.2 runtime observation: >98% of online
// query time is model inference, and a per-query end-to-end model is
// orders of magnitude more expensive to stand up.
func (c *Context) OnlineRuntime() (*RuntimeResult, error) {
	qs, err := c.youtube("q1")
	if err != nil {
		return nil, err
	}
	scene := qs.World.Scene()
	var meter detect.CostMeter
	det := detect.NewSimObjectDetector(scene, c.ObjProfile, &meter)
	rec := detect.NewSimActionRecognizer(scene, c.ActProfile, &meter)
	meta := qs.World.Truth.Meta
	eng, err := svaq.New(qs.Query, det, rec, meta.Geom, svaq.Config{Dynamic: true, HorizonClips: meta.Clips()})
	if err != nil {
		return nil, err
	}
	sk := quantile.New(quantile.DefaultTargets()...)
	start := time.Now()
	for clip := 0; clip < meta.Clips(); clip++ {
		clipStart := time.Now()
		if _, err := eng.ProcessClip(video.ClipIdx(clip)); err != nil {
			return nil, err
		}
		sk.Observe(float64(time.Since(clipStart).Microseconds()))
	}
	wall := time.Since(start)
	r := &RuntimeResult{
		Query:               qs.Query.String(),
		InferenceTime:       meter.Total(),
		AlgorithmTime:       wall,
		TotalRuntime:        meter.Total() + wall,
		ModelInvocations:    meter.Calls(),
		EndToEndTrainingEst: endToEndTrainingCost,
	}
	r.InferenceShare = float64(r.InferenceTime) / float64(r.TotalRuntime)
	r.ClipP50 = time.Duration(sk.Query(0.5)) * time.Microsecond
	r.ClipP90 = time.Duration(sk.Query(0.9)) * time.Microsecond
	r.ClipP99 = time.Duration(sk.Query(0.99)) * time.Microsecond
	c.printf("Online runtime (%s): total %v = inference %v (%.1f%%) + algorithm %v over %d invocations\n",
		r.Query, r.TotalRuntime.Round(time.Second), r.InferenceTime.Round(time.Second),
		100*r.InferenceShare, r.AlgorithmTime.Round(time.Millisecond), r.ModelInvocations)
	c.printf("  per-clip algorithm latency: p50 %v, p90 %v, p99 %v\n", r.ClipP50, r.ClipP90, r.ClipP99)
	c.printf("  end-to-end per-query model baseline (cost model): %v training alone\n", r.EndToEndTrainingEst)
	return r, nil
}

// DriftResult compares SVAQ and SVAQD under a sudden background change
// (the §3.3 surveillance motivation; companion to Figure 2).
type DriftResult struct {
	Query string
	SVAQ  float64
	SVAQD float64
}

// Drift runs the blowing-leaves query on a stream whose detector noise
// rate jumps 6× halfway through (peak traffic at a crossroad camera).
func (c *Context) Drift() (*DriftResult, error) {
	qs, err := c.youtube("q2")
	if err != nil {
		return nil, err
	}
	qs.World.Drift = synth.StepDrift(qs.World.Truth.Meta.Frames/2, 1, 6)
	q := annot.Query{Action: "blowing_leaves", Objects: []annot.Label{"car"}}
	static, err := c.runOnline(qs, q, c.ObjProfile, c.ActProfile,
		svaq.Config{P0Object: FixedP0, P0Action: FixedP0})
	if err != nil {
		return nil, err
	}
	dyn, err := c.runOnline(qs, q, c.ObjProfile, c.ActProfile, svaq.Config{Dynamic: true})
	if err != nil {
		return nil, err
	}
	r := &DriftResult{
		Query: q.String(),
		SVAQ:  f1(static.Seqs, static.Truth),
		SVAQD: f1(dyn.Seqs, dyn.Truth),
	}
	c.printf("Concept drift (noise x6 at midstream): SVAQ=%.3f SVAQD=%.3f\n", r.SVAQ, r.SVAQD)
	return r, nil
}
