package experiments

import "testing"

func TestParallelSpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	c := NewContext(nil)
	c.Scale = 0.1
	rows, err := c.ParallelSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	// Three phases, two worker counts each; every row has a positive
	// wall clock, and the serial rows anchor speedup at exactly 1.
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	phases := map[string]int{}
	for _, r := range rows {
		phases[r.Phase]++
		if r.Wall <= 0 {
			t.Errorf("%s workers=%d: wall clock %v", r.Phase, r.Workers, r.Wall)
		}
		if r.Workers == 1 && r.Speedup != 1 {
			t.Errorf("%s: serial speedup = %v, want 1", r.Phase, r.Speedup)
		}
		if r.Phase != "ingest" && r.CPU <= 0 {
			t.Errorf("%s workers=%d: cpu clock %v", r.Phase, r.Workers, r.CPU)
		}
	}
	for _, p := range []string{"ingest", "topk-all", "topk-global"} {
		if phases[p] != 2 {
			t.Errorf("phase %s has %d rows, want 2", p, phases[p])
		}
	}
}
