package experiments

import (
	"sort"
	"time"

	"vaq/internal/detect"
	"vaq/internal/svaq"
	"vaq/internal/trace"
)

// TraceOverheadResult is one row of the trace-overhead experiment.
type TraceOverheadResult struct {
	Mode      string  // "off" (no tracer attached) or "on" (full tracer)
	Clips     int     // clips per run
	Reps      int     // repetitions (the median is reported)
	USPerClip float64 // median microseconds per clip
	Spans     uint64  // spans recorded per run (0 when off)
}

// TraceOverhead measures what the observability layer costs on the
// online hot path. "off" runs the engine exactly as production callers
// without a tracer do — every counter and span handle is a nil no-op —
// so its delta against the pre-instrumentation engine is the price of
// the nil checks, which this experiment exists to show is within noise.
// "on" attaches a full tracer (spans per clip and predicate, counters,
// stage sketches) and shows the cost of actually recording.
func (c *Context) TraceOverhead() ([]TraceOverheadResult, error) {
	qs, err := c.youtube("q2")
	if err != nil {
		return nil, err
	}
	scene := qs.World.Scene()
	meta := qs.World.Truth.Meta
	nclips := meta.Clips()

	run := func(tr *trace.Tracer) (time.Duration, error) {
		det := detect.NewSimObjectDetector(scene, c.ObjProfile, nil)
		rec := detect.NewSimActionRecognizer(scene, c.ActProfile, nil)
		eng, err := svaq.New(qs.Query, det, rec, meta.Geom, svaq.Config{
			Dynamic: true, HorizonClips: nclips,
		})
		if err != nil {
			return 0, err
		}
		var root *trace.Span
		if tr != nil {
			root = tr.StartSpan("bench", 0)
			eng.AttachTrace(tr, root.ID())
		}
		start := time.Now()
		if _, err := eng.Run(nclips); err != nil {
			return 0, err
		}
		d := time.Since(start)
		root.End()
		return d, nil
	}

	const reps = 5
	measure := func(mkTracer func() *trace.Tracer) (float64, uint64, error) {
		durs := make([]time.Duration, 0, reps)
		var spans uint64
		for i := 0; i < reps; i++ {
			tr := mkTracer()
			d, err := run(tr)
			if err != nil {
				return 0, 0, err
			}
			durs = append(durs, d)
			if tr != nil {
				spans = tr.TotalSpans()
			}
		}
		sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
		median := durs[reps/2]
		return float64(median.Microseconds()) / float64(nclips), spans, nil
	}

	c.printf("Trace overhead (online path, %d clips, median of %d runs):\n", nclips, reps)
	offUS, _, err := measure(func() *trace.Tracer { return nil })
	if err != nil {
		return nil, err
	}
	onUS, spans, err := measure(func() *trace.Tracer {
		return trace.New(trace.WithCapacity((nclips + 1) * 9))
	})
	if err != nil {
		return nil, err
	}

	rows := []TraceOverheadResult{
		{Mode: "off", Clips: nclips, Reps: reps, USPerClip: offUS},
		{Mode: "on", Clips: nclips, Reps: reps, USPerClip: onUS, Spans: spans},
	}
	for _, r := range rows {
		c.printf("  tracing %-3s  %10.1f µs/clip  (%d spans/run)\n", r.Mode, r.USPerClip, r.Spans)
	}
	if offUS > 0 {
		c.printf("  traced/untraced ratio: %.3f\n", onUS/offUS)
	}
	return rows, nil
}
