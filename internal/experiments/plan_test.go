package experiments

import "testing"

// TestPlanQuick runs the adaptive-sampling planner study at test scale
// and checks the PR's acceptance criteria: some planned leg cuts
// detector invocations at least 2x at F1 within one point of dense,
// every leg is byte-deterministic, and the rate-1 leg is identical to
// the dense path in both results and invocation count.
func TestPlanQuick(t *testing.T) {
	res, err := Quick(nil).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Legs) < 3 {
		t.Fatalf("only %d legs", len(res.Legs))
	}
	dense := res.Legs[0]
	if dense.Rate != 0 || dense.Invocations == 0 {
		t.Fatalf("degenerate dense leg: %+v", dense)
	}
	best := 0.0
	for _, l := range res.Legs {
		if !l.Deterministic {
			t.Errorf("rate %d: not deterministic across repeat runs", l.Rate)
		}
		if l.Rate == 1 {
			if !l.MatchesDense {
				t.Error("rate-1 leg diverged from the dense sequences")
			}
			if l.Invocations != dense.Invocations {
				t.Errorf("rate-1 invocations %d != dense %d", l.Invocations, dense.Invocations)
			}
		}
		if l.Rate > 1 && l.F1 >= dense.F1-0.01 && l.Reduction > best {
			best = l.Reduction
		}
	}
	if best < 2 {
		t.Errorf("best matched-accuracy reduction %.2fx, want >= 2x", best)
	}
}
