package experiments

import (
	"fmt"
	"time"

	"vaq/internal/brownout"
	"vaq/internal/detect"
	"vaq/internal/resilience"
	"vaq/internal/svaq"
)

// BrownoutTrajRow is one step of the load-ramp trajectory: the p90
// queue-wait signal fed to the controller and the ladder level in
// force afterwards.
type BrownoutTrajRow struct {
	Step         int
	P90MS        float64
	Level        string
	Transitioned bool // this step moved the ladder
}

// BrownoutLevelRow is one ladder level's quality/latency point: the
// online engine run with every session backend pinned to the level's
// resilience posture.
type BrownoutLevelRow struct {
	Level         string
	F1            float64
	USPerClip     float64
	Fallbacks     int64
	DegradedUnits int
}

// BrownoutResult bundles the brownout experiment: the hysteretic level
// trajectory under a deterministic load ramp (byte-identical across
// two runs when Deterministic) and the accuracy/latency each ladder
// level trades away.
type BrownoutResult struct {
	Clips         int
	Deterministic bool
	Trajectory    []BrownoutTrajRow
	Levels        []BrownoutLevelRow
}

// brownoutRamp is the synthetic p90 queue-wait trace: quiet, a climb
// through the High threshold to 3x, a plateau, then decay back to
// calm. One sample per simulated second.
func brownoutRamp(high time.Duration) []time.Duration {
	var ramp []time.Duration
	for i := 0; i < 4; i++ {
		ramp = append(ramp, high/10)
	}
	for i := 1; i <= 12; i++ {
		ramp = append(ramp, high*time.Duration(i)/4)
	}
	for i := 0; i < 6; i++ {
		ramp = append(ramp, high*3)
	}
	for i := 12; i >= 0; i-- {
		ramp = append(ramp, high*time.Duration(i)/4)
	}
	for i := 0; i < 6; i++ {
		ramp = append(ramp, 0)
	}
	return ramp
}

// runRamp walks one controller over the ramp under a fake clock that
// advances one second per sample, so the trajectory depends only on
// the thresholds and the dwell — never the host's wall clock.
func runRamp(high time.Duration) ([]BrownoutTrajRow, error) {
	clock := time.Unix(0, 0)
	ctl, err := brownout.New(brownout.Config{
		High:  high,
		Dwell: 2 * time.Second,
		Now:   func() time.Time { return clock },
	}, brownout.Options{})
	if err != nil {
		return nil, err
	}
	ramp := brownoutRamp(high)
	rows := make([]BrownoutTrajRow, 0, len(ramp))
	prev := brownout.LevelFull
	for i, p90 := range ramp {
		clock = clock.Add(time.Second)
		lvl := ctl.Observe(p90, true)
		rows = append(rows, BrownoutTrajRow{
			Step:         i,
			P90MS:        float64(p90) / float64(time.Millisecond),
			Level:        lvl.String(),
			Transitioned: lvl != prev,
		})
		prev = lvl
	}
	return rows, nil
}

// levelMode maps a ladder level to the resilience posture the server
// pins session backends to (LevelShed serves nothing — the experiment
// measures it as ModePrior, what in-flight sessions still drain at).
func levelMode(l brownout.Level) resilience.Mode {
	switch {
	case l >= brownout.LevelPrior:
		return resilience.ModePrior
	case l == brownout.LevelCheap:
		return resilience.ModeCheap
	case l == brownout.LevelNoHedge:
		return resilience.ModeNoHedge
	}
	return resilience.ModeFull
}

// Brownout measures the degradation ladder twice over: the control
// side (a deterministic load ramp walked through the hysteretic
// controller, twice, to pin the trajectory) and the data side (the
// online engine run with backends pinned at each level, to price the
// quality each rung trades for headroom).
func (c *Context) Brownout() (*BrownoutResult, error) {
	const high = 100 * time.Millisecond

	traj, err := runRamp(high)
	if err != nil {
		return nil, err
	}
	again, err := runRamp(high)
	if err != nil {
		return nil, err
	}
	deterministic := len(traj) == len(again)
	for i := range traj {
		if !deterministic || traj[i] != again[i] {
			deterministic = false
			break
		}
	}

	qs, err := c.youtube("q2")
	if err != nil {
		return nil, err
	}
	scene := qs.World.Scene()
	meta := qs.World.Truth.Meta
	nclips := meta.Clips()
	truth, err := qs.World.Truth.GroundTruthClips(qs.Query)
	if err != nil {
		return nil, err
	}

	res := &BrownoutResult{Clips: nclips, Deterministic: deterministic, Trajectory: traj}
	c.printf("Brownout (ladder trajectory over a %d-step ramp, high %v; per-level quality on %d clips):\n",
		len(traj), high, nclips)
	prev := ""
	for _, r := range traj {
		if r.Transitioned || prev == "" {
			c.printf("  step %3d  p90 %6.1f ms  -> %s\n", r.Step, r.P90MS, r.Level)
		}
		prev = r.Level
	}
	c.printf("  trajectory deterministic across two runs: %v\n", deterministic)

	for _, lvl := range brownout.Levels() {
		mode := &resilience.ModeVar{}
		mode.Set(levelMode(lvl))
		// The chain's one cheap hop is the YOLOv3 profile, so
		// cheap-profile differs measurably from both full and prior-only.
		opt := resilience.Options{
			Mode: mode,
			FallbackObjects: []detect.FallibleObjectDetector{
				detect.AsFallibleObject(detect.NewSimObjectDetector(scene, detect.YOLOv3, nil)),
			},
			FallbackActions: []detect.FallibleActionRecognizer{
				detect.AsFallibleAction(detect.NewSimActionRecognizer(scene, detect.I3D, nil)),
			},
		}
		pol := resilience.DefaultPolicy()
		pol.Seed = 7
		m := resilience.WrapFallible(
			detect.AsFallibleObject(detect.NewSimObjectDetector(scene, c.ObjProfile, nil)),
			detect.AsFallibleAction(detect.NewSimActionRecognizer(scene, c.ActProfile, nil)),
			pol, opt)
		eng, err := svaq.New(qs.Query, m.Det, m.Rec, meta.Geom, svaq.Config{
			Dynamic: true, HorizonClips: nclips,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		seqs, err := eng.Run(nclips)
		if err != nil {
			return nil, fmt.Errorf("level %s: %w", lvl, err)
		}
		d := time.Since(start)
		st := m.Stats()
		row := BrownoutLevelRow{
			Level:         lvl.String(),
			F1:            f1(seqs, truth),
			USPerClip:     float64(d.Microseconds()) / float64(nclips),
			Fallbacks:     st.Fallbacks,
			DegradedUnits: st.DegradedUnits,
		}
		res.Levels = append(res.Levels, row)
		c.printf("  level %-13s F1 %.3f  %8.1f µs/clip  fallbacks %6d  degraded %6d\n",
			row.Level, row.F1, row.USPerClip, row.Fallbacks, row.DegradedUnits)
	}
	return res, nil
}
