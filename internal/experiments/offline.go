package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"vaq/internal/detect"
	"vaq/internal/ingest"
	"vaq/internal/rvaq"
	"vaq/internal/synth"
)

// ingestMovie generates a movie world at the context scale, runs the
// ingestion phase over the full label universe, persists the metadata to
// dir, and loads it back file-backed so every query-time table access is
// a disk read (as in the paper's secondary-storage setting). A nil dir
// keeps the tables in memory.
func (c *Context) ingestMovie(name, dir string) (*ingest.VideoData, *synth.QuerySet, error) {
	qs, err := synth.MovieScaled(name, c.Scale)
	if err != nil {
		return nil, nil, err
	}
	scene := qs.World.Scene()
	det := detect.NewSimObjectDetector(scene, c.ObjProfile, nil)
	rec := detect.NewSimActionRecognizer(scene, c.ActProfile, nil)
	truth := qs.World.Truth
	vd, err := ingest.Video(det, rec, truth.Meta, truth.ObjectLabels(), truth.ActionLabels(), ingest.Config{Workers: runtime.NumCPU()})
	if err != nil {
		return nil, nil, err
	}
	if dir == "" {
		return vd, qs, nil
	}
	vdir := filepath.Join(dir, name)
	if err := vd.Save(vdir); err != nil {
		return nil, nil, err
	}
	loaded, err := ingest.Load(vdir)
	if err != nil {
		return nil, nil, err
	}
	return loaded, qs, nil
}

// Table6Row is one (method, K) cell pair of Table 6.
type Table6Row struct {
	Method         string
	K              int
	Runtime        time.Duration
	RandomAccesses int64
	SortedAccesses int64
}

// Table6Ks is the K sweep of Table 6.
var Table6Ks = []int{1, 5, 9, 11, 13, 15}

// Table6 reproduces Table 6: runtime and random-access counts of FA,
// RVAQ-noSkip, Pq-Traverse and RVAQ on the movie Coffee and Cigarettes
// as K varies. Tables are file-backed: accesses are real disk reads.
func (c *Context) Table6() ([]Table6Row, error) {
	dir, err := os.MkdirTemp("", "vaq-table6-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	vd, qs, err := c.ingestMovie("coffee_and_cigarettes", dir)
	if err != nil {
		return nil, err
	}
	pq, err := vd.CandidateSequences(qs.Query)
	if err != nil {
		return nil, err
	}
	c.printf("Table 6: Coffee and Cigarettes (%d candidate sequences)\n", len(pq))
	type method struct {
		name string
		run  func(k int) (rvaq.Stats, error)
	}
	methods := []method{
		{"FA", func(k int) (rvaq.Stats, error) {
			_, s, err := rvaq.FA(vd, qs.Query, k, rvaq.DefaultOptions())
			return s, err
		}},
		{"RVAQ-noSkip", func(k int) (rvaq.Stats, error) {
			_, s, err := rvaq.NoSkip(vd, qs.Query, k, rvaq.DefaultOptions())
			return s, err
		}},
		{"Pq-Traverse", func(k int) (rvaq.Stats, error) {
			_, s, err := rvaq.PqTraverse(vd, qs.Query, k, rvaq.DefaultOptions())
			return s, err
		}},
		{"RVAQ", func(k int) (rvaq.Stats, error) {
			_, s, err := rvaq.TopK(vd, qs.Query, k, rvaq.DefaultOptions())
			return s, err
		}},
	}
	var out []Table6Row
	for _, m := range methods {
		c.printf("  %-12s", m.name)
		for _, k := range Table6Ks {
			stats, err := m.run(k)
			if err != nil {
				return nil, fmt.Errorf("%s K=%d: %w", m.name, k, err)
			}
			out = append(out, Table6Row{
				Method: m.name, K: k,
				Runtime:        stats.Runtime,
				RandomAccesses: stats.Accesses.Random,
				SortedAccesses: stats.Accesses.Sorted + stats.Accesses.Reverse,
			})
			c.printf("  K=%-2d %8v;%6d", k, stats.Runtime.Round(time.Microsecond), stats.Accesses.Random)
		}
		c.printf("\n")
	}
	return out, nil
}

// Table7Row is one cell of Table 7.
type Table7Row struct {
	Set            string
	Method         string
	Runtime        time.Duration
	RandomAccesses int64
}

// Table7 reproduces Table 7: the four methods on the YouTube sets q1
// and q2 at K = 5.
func (c *Context) Table7() ([]Table7Row, error) {
	dir, err := os.MkdirTemp("", "vaq-table7-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	const k = 5
	var out []Table7Row
	c.printf("Table 7: YouTube q1, q2 at K=%d\n", k)
	for _, id := range []string{"q1", "q2"} {
		qs, err := c.youtube(id)
		if err != nil {
			return nil, err
		}
		scene := qs.World.Scene()
		det := detect.NewSimObjectDetector(scene, c.ObjProfile, nil)
		rec := detect.NewSimActionRecognizer(scene, c.ActProfile, nil)
		truth := qs.World.Truth
		vd, err := ingest.Video(det, rec, truth.Meta, truth.ObjectLabels(), truth.ActionLabels(), ingest.Config{Workers: runtime.NumCPU()})
		if err != nil {
			return nil, err
		}
		vdir := filepath.Join(dir, id)
		if err := vd.Save(vdir); err != nil {
			return nil, err
		}
		loaded, err := ingest.Load(vdir)
		if err != nil {
			return nil, err
		}
		runs := []struct {
			name string
			f    func() (rvaq.Stats, error)
		}{
			{"FA", func() (rvaq.Stats, error) {
				_, s, err := rvaq.FA(loaded, qs.Query, k, rvaq.DefaultOptions())
				return s, err
			}},
			{"RVAQ-noSkip", func() (rvaq.Stats, error) {
				_, s, err := rvaq.NoSkip(loaded, qs.Query, k, rvaq.DefaultOptions())
				return s, err
			}},
			{"Pq-Traverse", func() (rvaq.Stats, error) {
				_, s, err := rvaq.PqTraverse(loaded, qs.Query, k, rvaq.DefaultOptions())
				return s, err
			}},
			{"RVAQ", func() (rvaq.Stats, error) {
				_, s, err := rvaq.TopK(loaded, qs.Query, k, rvaq.DefaultOptions())
				return s, err
			}},
		}
		c.printf("  %s:", id)
		for _, r := range runs {
			stats, err := r.f()
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", r.name, id, err)
			}
			out = append(out, Table7Row{Set: id, Method: r.name, Runtime: stats.Runtime, RandomAccesses: stats.Accesses.Random})
			c.printf("  %s %v;%d", r.name, stats.Runtime.Round(time.Microsecond), stats.Accesses.Random)
		}
		c.printf("\n")
	}
	return out, nil
}

// Table8Row is one cell of Table 8: the speedup of RVAQ over
// Pq-Traverse.
type Table8Row struct {
	Movie   string
	K       int
	MaxK    bool
	Speedup float64
}

// Table8Ks is the K sweep of Table 8 (the final entry is the movie's
// max K, the number of candidate sequences).
var Table8Ks = []int{1, 3, 5, 7, 9, 11}

// Table8 reproduces Table 8: RVAQ's speedup over Pq-Traverse on the
// movies Iron Man, Star Wars 3 and Titanic as K varies. The speedup is
// computed on random-access counts (the paper's runtime is dominated by
// them; access counts are deterministic where wall time is noisy).
func (c *Context) Table8() ([]Table8Row, error) {
	dir, err := os.MkdirTemp("", "vaq-table8-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	var out []Table8Row
	c.printf("Table 8: speedup of RVAQ vs Pq-Traverse (random accesses)\n")
	for _, name := range []string{"iron_man", "star_wars_3", "titanic"} {
		vd, qs, err := c.ingestMovie(name, dir)
		if err != nil {
			return nil, err
		}
		pq, err := vd.CandidateSequences(qs.Query)
		if err != nil {
			return nil, err
		}
		maxK := len(pq)
		if maxK == 0 {
			return nil, fmt.Errorf("table8: %s has no candidate sequences", name)
		}
		_, base, err := rvaq.PqTraverse(vd, qs.Query, 1, rvaq.DefaultOptions())
		if err != nil {
			return nil, err
		}
		ks := append(append([]int{}, Table8Ks...), maxK)
		c.printf("  %-12s", name)
		for i, k := range ks {
			if k > maxK {
				k = maxK
			}
			_, stats, err := rvaq.TopK(vd, qs.Query, k, rvaq.DefaultOptions())
			if err != nil {
				return nil, err
			}
			speedup := float64(base.Accesses.Random) / float64(max64(stats.Accesses.Random, 1))
			out = append(out, Table8Row{Movie: name, K: k, MaxK: i == len(ks)-1, Speedup: speedup})
			label := fmt.Sprintf("K=%d", k)
			if i == len(ks)-1 {
				label = "maxK"
			}
			c.printf("  %s %.2fx", label, speedup)
		}
		c.printf("\n")
	}
	return out, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
