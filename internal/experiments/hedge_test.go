package experiments

import "testing"

// TestHedgeQuick runs the hedging experiment at test scale and checks
// its invariants: hedges actually fire under the latency-episode
// schedule, some of them win their round, and the healthy leg pays
// (almost) no extra backend invocations. Wall-clock quantiles are
// reported but not asserted tightly — a loaded test machine can blur
// them; the 1.05 extra-invocation budget is enforced at bench time.
func TestHedgeQuick(t *testing.T) {
	res, err := Quick(nil).Hedge()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hedges == 0 {
		t.Error("latency-episode leg launched no hedges")
	}
	if res.HedgeWins == 0 {
		t.Error("no hedge won its round despite 10ms primary episodes")
	}
	if res.HedgeWins > res.Hedges {
		t.Errorf("hedge wins %d exceed hedges launched %d", res.HedgeWins, res.Hedges)
	}
	if res.HealthyInvocations < int64(res.Calls) {
		t.Errorf("healthy leg made %d invocations for %d calls", res.HealthyInvocations, res.Calls)
	}
	// Loose multiple of the 1.05 bench budget: a stalled CI machine may
	// trip a few spurious hedges, but anywhere near systematic hedging
	// on a healthy backend is a bug.
	if res.HealthyExtraRatio > 1.25 {
		t.Errorf("healthy extra-invocation ratio %.3f, want <= 1.25", res.HealthyExtraRatio)
	}
	if res.BaseP99US <= res.BaseP50US {
		t.Errorf("latency schedule left no tail: p50 %v µs, p99 %v µs", res.BaseP50US, res.BaseP99US)
	}
}
