package experiments

import (
	"math/rand"
	"time"

	"vaq/internal/annot"
	"vaq/internal/metrics"
	"vaq/internal/scanstat"
	"vaq/internal/svaq"
)

// Ablation benches for the design choices DESIGN.md §4 calls out.

// ShortCircuitResult reports the model invocations spent with and
// without Algorithm 2's predicate short-circuiting, for both predicate
// orders and with the adaptive ordering optimizer.
type ShortCircuitResult struct {
	Query                 string
	InvocationsFull       int
	InvocationsSC         int // objects evaluated first (query order)
	InvocationsSCReversed int // least selective predicate first
	InvocationsAdaptive   int // cost/(1−pass) adaptive ordering (order.go)
	SavedFraction         float64
	FinalOrder            []string
}

// AblationShortCircuit quantifies the invocation savings of evaluating
// predicates sequentially and skipping the rest of a failed clip
// (footnote 5 of the paper: the predicate order matters).
func (c *Context) AblationShortCircuit() (*ShortCircuitResult, error) {
	qs, err := c.youtube("q1")
	if err != nil {
		return nil, err
	}
	q := qs.Query
	run := func(query annot.Query, cfg svaq.Config) (*svaq.Engine, error) {
		cfg.P0Object, cfg.P0Action = FixedP0, FixedP0
		r, err := c.runOnline(qs, query, c.ObjProfile, c.ActProfile, cfg)
		if err != nil {
			return nil, err
		}
		return r.Engine, nil
	}
	full, err := run(q, svaq.Config{})
	if err != nil {
		return nil, err
	}
	sc, err := run(q, svaq.Config{ShortCircuit: true})
	if err != nil {
		return nil, err
	}
	reversed := annot.Query{Action: q.Action, Objects: reverseLabels(q.Objects)}
	scRev, err := run(reversed, svaq.Config{ShortCircuit: true})
	if err != nil {
		return nil, err
	}
	adaptive, err := run(q, svaq.Config{ShortCircuit: true, AdaptiveOrder: true})
	if err != nil {
		return nil, err
	}
	r := &ShortCircuitResult{
		Query:                 q.String(),
		InvocationsFull:       full.Invocations(),
		InvocationsSC:         sc.Invocations(),
		InvocationsSCReversed: scRev.Invocations(),
		InvocationsAdaptive:   adaptive.Invocations(),
		SavedFraction:         1 - float64(sc.Invocations())/float64(full.Invocations()),
		FinalOrder:            adaptive.Order(),
	}
	c.printf("Ablation short-circuit (%s): full=%d, short-circuit=%d (%.0f%% saved), reversed order=%d, adaptive=%d (final order %v)\n",
		r.Query, r.InvocationsFull, r.InvocationsSC, 100*r.SavedFraction,
		r.InvocationsSCReversed, r.InvocationsAdaptive, r.FinalOrder)
	return r, nil
}

// AlphaResult is one point of the significance-level sensitivity sweep.
type AlphaResult struct {
	Alpha     float64
	Precision float64
	Recall    float64
	F1        float64
}

// Alphas is the significance-level grid of the sweep.
var Alphas = []float64{0.001, 0.01, 0.05, 0.1, 0.2, 0.4}

// AblationAlpha sweeps the Equation 5 significance level for SVAQD on
// the blowing-leaves query: lower α demands stronger evidence per clip
// (precision up, recall down at the extremes).
func (c *Context) AblationAlpha() ([]AlphaResult, error) {
	qs, err := c.youtube("q2")
	if err != nil {
		return nil, err
	}
	q := annot.Query{Action: "blowing_leaves", Objects: []annot.Label{"car"}}
	var out []AlphaResult
	c.printf("Ablation significance level alpha (SVAQD, %v)\n", q)
	for _, alpha := range Alphas {
		run, err := c.runOnline(qs, q, c.ObjProfile, c.ActProfile,
			svaq.Config{Dynamic: true, Alpha: alpha})
		if err != nil {
			return nil, err
		}
		prf := metrics.SequenceF1(run.Seqs, run.Truth, metrics.DefaultIOUThreshold)
		r := AlphaResult{Alpha: alpha, Precision: prf.Precision, Recall: prf.Recall, F1: prf.F1}
		out = append(out, r)
		c.printf("  alpha=%.3f  P=%.3f R=%.3f F1=%.3f\n", r.Alpha, r.Precision, r.Recall, r.F1)
	}
	return out, nil
}

func reverseLabels(in []annot.Label) []annot.Label {
	out := make([]annot.Label, len(in))
	for i, l := range in {
		out[len(in)-1-i] = l
	}
	return out
}

// KernelUResult is one point of the kernel-scale sensitivity sweep.
type KernelUResult struct {
	KernelU float64
	F1      float64
}

// KernelUs is the §3.3 kernel-scale sweep (occurrence units).
var KernelUs = []float64{500, 1000, 2000, 4000, 8000, 16000}

// AblationKernelU sweeps SVAQD's estimator kernel scale on the
// blowing-leaves query.
func (c *Context) AblationKernelU() ([]KernelUResult, error) {
	qs, err := c.youtube("q2")
	if err != nil {
		return nil, err
	}
	q := annot.Query{Action: "blowing_leaves", Objects: []annot.Label{"car"}}
	var out []KernelUResult
	c.printf("Ablation kernel scale u (SVAQD, %v)\n", q)
	for _, u := range KernelUs {
		run, err := c.runOnline(qs, q, c.ObjProfile, c.ActProfile,
			svaq.Config{Dynamic: true, KernelU: u})
		if err != nil {
			return nil, err
		}
		r := KernelUResult{KernelU: u, F1: f1(run.Seqs, run.Truth)}
		out = append(out, r)
		c.printf("  u=%6.0f  F1=%.3f\n", r.KernelU, r.F1)
	}
	return out, nil
}

// CritValueResult compares the Naus closed-form critical value against
// the Monte-Carlo reference.
type CritValueResult struct {
	P            float64
	KClosed      int
	KMonteCarlo  int
	ClosedTime   time.Duration
	MonteCarloNs time.Duration
}

// AblationCritValue compares the closed-form critical-value computation
// against a Monte-Carlo search (4000 trials per k) for the engine's
// object-window geometry, reporting agreement and latency.
func (c *Context) AblationCritValue() ([]CritValueResult, error) {
	rng := rand.New(rand.NewSource(99))
	const w, n, alpha, trials = 50, 100000, 0.05, 4000
	var out []CritValueResult
	c.printf("Ablation critical value: Naus closed form vs Monte Carlo (w=%d)\n", w)
	for _, p := range []float64{1e-4, 1e-3, 1e-2, 5e-2} {
		pr := scanstat.Params{P: p, W: w, N: n}
		t0 := time.Now()
		kc, err := scanstat.CriticalValue(pr, alpha)
		if err != nil {
			return nil, err
		}
		closedTime := time.Since(t0)
		// Monte-Carlo search over a smaller N (simulation cost): the
		// smallest k whose simulated tail is ≤ alpha.
		mcParams := scanstat.Params{P: p, W: w, N: 5000}
		t1 := time.Now()
		km := 1
		for ; km <= w; km++ {
			tail, err := scanstat.MonteCarloTail(mcParams, km, trials, rng)
			if err != nil {
				return nil, err
			}
			if tail <= alpha {
				break
			}
		}
		mcTime := time.Since(t1)
		// Closed form at the Monte-Carlo N for a fair agreement check.
		kcSmall, err := scanstat.CriticalValue(mcParams, alpha)
		if err != nil {
			return nil, err
		}
		out = append(out, CritValueResult{P: p, KClosed: kcSmall, KMonteCarlo: km, ClosedTime: closedTime, MonteCarloNs: mcTime})
		c.printf("  p=%.0e  closed k=%d (N=100k: %d) in %v   monte-carlo k=%d in %v\n",
			p, kcSmall, kc, closedTime, km, mcTime)
	}
	return out, nil
}
