package experiments

import (
	"sync"

	"vaq"
	"vaq/internal/detect"
)

// ManySessionsResult reports the cross-session shared-inference study:
// N concurrent online sessions running the same query over the same
// video, with and without the shared-inference layer between them.
// Since >98% of online runtime is model inference, the invocation
// reduction is (almost exactly) the serving-capacity multiplier.
type ManySessionsResult struct {
	Sessions      int
	Clips         int
	BaselineCalls int64 // backend invocations, one stack per session
	SharedCalls   int64 // backend invocations through one shared domain
	Reduction     float64
	CacheHits     int64
	Coalesced     int64 // duplicate in-flight calls absorbed by dedup
	Identical     bool  // every session, both legs, same sequences
}

// ManySessions runs the cross-query inference sharing experiment: eight
// concurrent sessions of the blowing-leaves query over one video. The
// baseline leg gives every session its own detector stack; the shared
// leg routes all of them through one SharedInference domain (dedup +
// memo cache; the batch window stays 0 so the invocation count is a
// deterministic function of the distinct unit keys). Every session must
// report identical sequences on both legs, and the shared leg must cut
// backend invocations at least 5x — with a full cache each distinct
// (unit, label) is invoked once, so the expected reduction is ~N.
func (c *Context) ManySessions() (*ManySessionsResult, error) {
	const sessions = 8
	qs, err := c.youtube("q2")
	if err != nil {
		return nil, err
	}
	scene := qs.World.Scene()
	meta := qs.World.Truth.Meta
	cfg := vaq.StreamConfig{Dynamic: true, HorizonClips: meta.Clips()}

	runLeg := func(mk func(i int) (vaq.ObjectDetector, vaq.ActionRecognizer, []vaq.StreamOption)) ([]vaq.Sequences, error) {
		seqs := make([]vaq.Sequences, sessions)
		errs := make([]error, sessions)
		var wg sync.WaitGroup
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				det, rec, opts := mk(i)
				stream, err := vaq.NewStreamQuery(qs.Query, det, rec, meta.Geom, cfg, opts...)
				if err != nil {
					errs[i] = err
					return
				}
				seqs[i], errs[i] = stream.Run(meta.Clips())
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return seqs, nil
	}

	// Baseline: a private detector stack per session; one atomic meter
	// totals the invocations across all of them.
	var baseMeter detect.CostMeter
	baseSeqs, err := runLeg(func(int) (vaq.ObjectDetector, vaq.ActionRecognizer, []vaq.StreamOption) {
		return detect.NewSimObjectDetector(scene, c.ObjProfile, &baseMeter),
			detect.NewSimActionRecognizer(scene, c.ActProfile, &baseMeter), nil
	})
	if err != nil {
		return nil, err
	}

	// Shared: one backend pair behind a SharedInference domain; every
	// session wraps the same pair, so the cache and dedup group span all
	// of them. The cache is sized to hold the video's full working set.
	var sharedMeter detect.CostMeter
	si, err := vaq.NewSharedInference(vaq.SharedInferenceConfig{CacheCapacity: 1 << 18})
	if err != nil {
		return nil, err
	}
	sdet := detect.NewSimObjectDetector(scene, c.ObjProfile, &sharedMeter)
	srec := detect.NewSimActionRecognizer(scene, c.ActProfile, &sharedMeter)
	sharedSeqs, err := runLeg(func(int) (vaq.ObjectDetector, vaq.ActionRecognizer, []vaq.StreamOption) {
		return sdet, srec, []vaq.StreamOption{vaq.WithSharedInference(si)}
	})
	if err != nil {
		return nil, err
	}

	identical := true
	for i := 0; i < sessions; i++ {
		if !baseSeqs[i].Equal(baseSeqs[0]) || !sharedSeqs[i].Equal(baseSeqs[0]) {
			identical = false
		}
	}
	st := si.Stats()
	res := &ManySessionsResult{
		Sessions:      sessions,
		Clips:         meta.Clips(),
		BaselineCalls: baseMeter.Calls(),
		SharedCalls:   sharedMeter.Calls(),
		CacheHits:     st.CacheHits,
		Coalesced:     st.Coalesced,
		Identical:     identical,
	}
	if res.SharedCalls > 0 {
		res.Reduction = float64(res.BaselineCalls) / float64(res.SharedCalls)
	}
	c.printf("Many sessions (%d concurrent sessions, %d clips, %v):\n", sessions, res.Clips, qs.Query)
	c.printf("  baseline (per-session stacks): %8d backend invocations\n", res.BaselineCalls)
	c.printf("  shared inference:              %8d backend invocations  (%.1fx reduction)\n",
		res.SharedCalls, res.Reduction)
	c.printf("  cache hits %d, coalesced in-flight %d, identical sequences: %v\n",
		res.CacheHits, res.Coalesced, res.Identical)
	return res, nil
}
