// Package synth generates synthetic video worlds: ground-truth label
// timelines plus the auxiliary structure the simulated detectors need
// (distractor intervals where detectors are confused, and background
// rate drift profiles). It replaces the paper's real videos (ActivityNet
// clips, movies) — see DESIGN.md §1 for why this substitution preserves
// the behaviour the algorithms are sensitive to.
//
// All generation is deterministic given a seed.
package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"vaq/internal/annot"
	"vaq/internal/interval"
	"vaq/internal/video"
)

// EpisodeSpec describes an on/off renewal process for one label's
// presence: episodes of geometric mean length MeanOn units separated by
// gaps of geometric mean length MeanOff units.
type EpisodeSpec struct {
	MeanOn  float64 // mean episode length in occurrence units
	MeanOff float64 // mean gap length in occurrence units
}

// ObjectSpec describes one object label in a world.
type ObjectSpec struct {
	Label annot.Label
	// CorrWithAction is the probability that the object is present
	// during any given action episode (with jittered boundaries). Highly
	// correlated predicates (e.g. "person" during "blowing leaves") have
	// values near 1.
	CorrWithAction float64
	// BoundaryJitter is the maximum number of frames by which the
	// object's presence interval extends or recedes around a correlated
	// action episode.
	BoundaryJitter int
	// Background is the object's presence process outside action
	// episodes (frames). Zero value means no background presence.
	Background EpisodeSpec
	// Distractor is the process generating confusable content (frames)
	// that inflates the detector's false positive rate. Zero value means
	// no distractors.
	Distractor EpisodeSpec
	// Detectability scales how reliably detectors find this label
	// (see detect.Scene.LabelAccuracy); 0 means the default 1.
	Detectability float64
}

// Spec describes a whole synthetic video.
type Spec struct {
	Name   string
	Frames int
	Geom   video.Geometry
	// Action is the single annotated action of the video (the paper's
	// YouTube sets are grouped by action type).
	Action annot.Label
	// ActionEpisodes is the action's episode process, in shots.
	ActionEpisodes EpisodeSpec
	// ActionDistractor generates shots that confuse the action
	// recognizer (e.g. visually similar motion), in shots.
	ActionDistractor EpisodeSpec
	// Objects lists the annotated object labels.
	Objects []ObjectSpec
	// ExtraActions are additional annotated actions uncorrelated with
	// the primary one (so repositories answer ad-hoc queries), in shots.
	ExtraActions map[annot.Label]EpisodeSpec
	Seed         int64
}

// World is a generated synthetic video: the ground truth plus detector-
// facing structure.
type World struct {
	Truth *annot.Video
	// ObjectDistractors holds, per object label, frame intervals of
	// confusable content.
	ObjectDistractors map[annot.Label]interval.Set
	// ActionDistractors holds, per action label, shot intervals of
	// confusable content.
	ActionDistractors map[annot.Label]interval.Set
	// Drift optionally scales detector false-positive rates over time;
	// nil means constant. The argument is the frame index for objects
	// (the shot's first frame for actions); the result multiplies the
	// profile's base FPR.
	Drift func(frame int) float64
	// LabelAccuracy holds per-label detectability factors (see
	// detect.Scene.LabelAccuracy); labels not listed use factor 1.
	LabelAccuracy map[annot.Label]float64
	Seed          int64
}

// episodes draws an alternating on/off renewal process over [0, total)
// and returns the on intervals.
func episodes(rng *rand.Rand, total int, spec EpisodeSpec) interval.Set {
	if spec.MeanOn <= 0 || total <= 0 {
		return nil
	}
	meanOff := spec.MeanOff
	if meanOff <= 0 {
		meanOff = float64(total) // effectively one episode
	}
	var ivs []interval.Interval
	pos := geometric(rng, meanOff) // initial gap
	for pos < total {
		on := 1 + geometric(rng, spec.MeanOn-1)
		hi := pos + on - 1
		if hi >= total {
			hi = total - 1
		}
		ivs = append(ivs, interval.Interval{Lo: pos, Hi: hi})
		pos = hi + 1 + 1 + geometric(rng, meanOff-1)
	}
	return interval.Normalize(ivs)
}

// geometric draws a geometric variate with the given mean (≥ 0).
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (mean + 1)
	n := 0
	for rng.Float64() >= p {
		n++
		if n > 1<<20 { // safety bound
			break
		}
	}
	return n
}

// Scaled returns a copy of the spec with the video length scaled by the
// given factor (floored at one clip); quick test and bench modes use it
// to shrink the paper-sized workloads.
func (s Spec) Scaled(scale float64) Spec {
	if scale <= 0 || scale == 1 {
		return s
	}
	s.Frames = int(float64(s.Frames) * scale)
	if minFrames := s.Geom.ClipLen(); s.Frames < minFrames {
		s.Frames = minFrames
	}
	return s
}

// Generate builds a deterministic World from the spec.
func Generate(spec Spec) (*World, error) {
	if err := spec.Geom.Validate(); err != nil {
		return nil, err
	}
	if spec.Frames < spec.Geom.ClipLen() {
		return nil, fmt.Errorf("synth: video %q too short: %d frames", spec.Name, spec.Frames)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	meta := video.Meta{Name: spec.Name, Frames: spec.Frames, Geom: spec.Geom}
	truth := annot.NewVideo(meta)
	w := &World{
		Truth:             truth,
		ObjectDistractors: map[annot.Label]interval.Set{},
		ActionDistractors: map[annot.Label]interval.Set{},
		LabelAccuracy:     map[annot.Label]float64{},
		Seed:              spec.Seed,
	}

	nshots := meta.Shots()
	actionShots := episodes(rng, nshots, spec.ActionEpisodes)
	if spec.Action != "" {
		truth.AddAction(spec.Action, actionShots)
		w.ActionDistractors[spec.Action] = episodes(rng, nshots, spec.ActionDistractor)
	}
	// Iterate the extra actions in sorted order: ranging over the map
	// directly would consume the seeded rng in a different order each
	// run, making every label's episode set — and everything downstream
	// of the generated world — nondeterministic.
	extraActions := make([]annot.Label, 0, len(spec.ExtraActions))
	for a := range spec.ExtraActions {
		extraActions = append(extraActions, a)
	}
	sort.Slice(extraActions, func(i, j int) bool { return extraActions[i] < extraActions[j] })
	for _, a := range extraActions {
		truth.AddAction(a, episodes(rng, nshots, spec.ExtraActions[a]))
	}

	shotLen := spec.Geom.ShotLen
	for _, os := range spec.Objects {
		var frames []interval.Interval
		// Correlated presence around action episodes.
		for _, ep := range actionShots {
			if rng.Float64() >= os.CorrWithAction {
				continue
			}
			lo := ep.Lo*shotLen - jitter(rng, os.BoundaryJitter)
			hi := (ep.Hi+1)*shotLen - 1 + jitter(rng, os.BoundaryJitter)
			if lo < 0 {
				lo = 0
			}
			frames = append(frames, interval.Interval{Lo: lo, Hi: hi})
		}
		// Background presence episodes snap to clip boundaries: real
		// annotators do not label sub-second slivers, and un-snapped
		// random endpoints would seed isolated one-clip ground-truth
		// fragments no convention can score consistently.
		background := snapToClips(episodes(rng, spec.Frames, os.Background), spec.Geom.ClipLen(), spec.Frames)
		set := interval.Normalize(frames).Union(background)
		truth.AddObject(os.Label, set)
		w.ObjectDistractors[os.Label] = episodes(rng, spec.Frames, os.Distractor)
		if os.Detectability > 0 {
			w.LabelAccuracy[os.Label] = os.Detectability
		}
	}
	return w, nil
}

// snapToClips expands each interval to whole clips.
func snapToClips(s interval.Set, clipLen, frames int) interval.Set {
	ivs := make([]interval.Interval, len(s))
	for i, iv := range s {
		lo := (iv.Lo / clipLen) * clipLen
		hi := (iv.Hi/clipLen+1)*clipLen - 1
		if hi >= frames {
			hi = frames - 1
		}
		ivs[i] = interval.Interval{Lo: lo, Hi: hi}
	}
	return interval.Normalize(ivs)
}

func jitter(rng *rand.Rand, maxAbs int) int {
	if maxAbs <= 0 {
		return 0
	}
	return rng.Intn(2*maxAbs+1) - maxAbs
}

// StepDrift returns a drift profile that multiplies the base false
// positive rate by low before frame `change` and by high afterwards — a
// sudden change of the stream's statistical properties (§3.3's
// surveillance-camera motivation).
func StepDrift(change int, low, high float64) func(int) float64 {
	return func(frame int) float64 {
		if frame < change {
			return low
		}
		return high
	}
}

// CyclicDrift returns a drift profile oscillating between low and high
// with the given period in frames (e.g. daily traffic cycles).
func CyclicDrift(period int, low, high float64) func(int) float64 {
	if period <= 0 {
		period = 1
	}
	return func(frame int) float64 {
		phase := frame % period
		if phase < period/2 {
			return low
		}
		return high
	}
}
