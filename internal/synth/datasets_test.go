package synth

import (
	"testing"

	"vaq/internal/video"
)

func TestYouTubeIDsComplete(t *testing.T) {
	ids := YouTubeIDs()
	if len(ids) != 12 {
		t.Fatalf("expected 12 YouTube sets, got %d", len(ids))
	}
	if ids[0] != "q1" || ids[11] != "q12" {
		t.Fatalf("unexpected ids %v", ids)
	}
}

func TestYouTubeSetsGenerate(t *testing.T) {
	for _, id := range YouTubeIDs() {
		qs, err := YouTubeScaled(id, video.DefaultGeometry(), 0.25)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := qs.Query.Validate(); err != nil {
			t.Errorf("%s: invalid query: %v", id, err)
		}
		if qs.World.Truth.Actions[qs.Query.Action].Len() == 0 {
			t.Errorf("%s: no action episodes for %s", id, qs.Query.Action)
		}
		for _, o := range qs.Query.Objects {
			if qs.World.Truth.Objects[o].Len() == 0 {
				t.Errorf("%s: no presence for object %s", id, o)
			}
		}
		// Table 3 relies on the person predicate being annotated.
		if qs.World.Truth.Objects["person"].Len() == 0 {
			t.Errorf("%s: person not annotated", id)
		}
		if qs.World.LabelAccuracy["person"] <= 1 {
			t.Errorf("%s: person should be more detectable than baseline", id)
		}
	}
}

func TestYouTubeLengthMatchesTable1(t *testing.T) {
	qs, err := YouTube("q1")
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: q1 totals 57 minutes.
	want := 57 * 60 * 30
	if qs.World.Truth.Meta.Frames != want {
		t.Fatalf("q1 frames = %d, want %d", qs.World.Truth.Meta.Frames, want)
	}
	if qs.Minutes != 57 {
		t.Fatalf("q1 minutes = %d", qs.Minutes)
	}
}

func TestYouTubeUnknownID(t *testing.T) {
	if _, err := YouTube("q99"); err == nil {
		t.Fatal("unknown set accepted")
	}
}

func TestMoviesGenerate(t *testing.T) {
	names := MovieNames()
	if len(names) != 4 {
		t.Fatalf("expected 4 movies, got %d", len(names))
	}
	for _, name := range names {
		qs, err := MovieScaled(name, 0.2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		truth := qs.World.Truth
		// The ingestion phase needs a wide label universe (§4.2).
		if len(truth.ObjectLabels()) < 10 {
			t.Errorf("%s: only %d object labels", name, len(truth.ObjectLabels()))
		}
		if len(truth.ActionLabels()) < 5 {
			t.Errorf("%s: only %d action labels", name, len(truth.ActionLabels()))
		}
		if truth.Actions[qs.Query.Action].Len() == 0 {
			t.Errorf("%s: queried action absent", name)
		}
	}
}

func TestMovieUnknown(t *testing.T) {
	if _, err := Movie("inexistent_movie"); err == nil {
		t.Fatal("unknown movie accepted")
	}
}

func TestMovieLengthMatchesTable2(t *testing.T) {
	qs, err := Movie("titanic")
	if err != nil {
		t.Fatal(err)
	}
	want := 194 * 60 * 30 // 3h14min at 30 fps
	if qs.World.Truth.Meta.Frames != want {
		t.Fatalf("titanic frames = %d, want %d", qs.World.Truth.Meta.Frames, want)
	}
}

func TestSceneAdapter(t *testing.T) {
	qs, err := YouTubeScaled("q2", video.DefaultGeometry(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sc := qs.World.Scene()
	if sc.Truth != qs.World.Truth || sc.Seed != qs.World.Seed {
		t.Fatal("Scene adapter lost fields")
	}
	if len(sc.ObjectDistractors) != len(qs.World.ObjectDistractors) {
		t.Fatal("Scene adapter lost distractors")
	}
}
