package synth

import (
	"fmt"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/video"
)

// Scene adapts the generated world for the simulated detectors.
func (w *World) Scene() *detect.Scene {
	return &detect.Scene{
		Truth:             w.Truth,
		ObjectDistractors: w.ObjectDistractors,
		ActionDistractors: w.ActionDistractors,
		Drift:             w.Drift,
		LabelAccuracy:     w.LabelAccuracy,
		Seed:              w.Seed,
	}
}

// QuerySet is one evaluation workload: a generated world plus the query
// issued against it, mirroring one row of Table 1 or Table 2.
type QuerySet struct {
	ID    string
	World *World
	Query annot.Query
	// Minutes is the paper-reported total video length of the set.
	Minutes int
}

// baseObject builds the standard object spec used across the YouTube
// sets: presence correlated with the action, some background presence,
// and occasional distractor bursts that confuse detectors.
func baseObject(label annot.Label, corr float64) ObjectSpec {
	return ObjectSpec{
		Label:          label,
		CorrWithAction: corr,
		BoundaryJitter: 40,
		Background:     EpisodeSpec{MeanOn: 250, MeanOff: 9000},
		Distractor:     EpisodeSpec{MeanOn: 18, MeanOff: 2500},
	}
}

// personObject is the highly correlated, highly detectable "person"
// predicate that Table 3 relies on.
func personObject() ObjectSpec {
	o := baseObject("person", 0.97)
	o.Background = EpisodeSpec{MeanOn: 400, MeanOff: 5000}
	o.Detectability = 2.5
	return o
}

// youtubeRow captures one row of Table 1.
type youtubeRow struct {
	id      string
	action  annot.Label
	objects []annot.Label
	corr    []float64
	minutes int
}

var youtubeRows = []youtubeRow{
	{"q1", "washing_dishes", []annot.Label{"faucet", "oven"}, []float64{0.85, 0.60}, 57},
	{"q2", "blowing_leaves", []annot.Label{"car", "plant"}, []float64{0.60, 0.80}, 52},
	{"q3", "walking_the_dog", []annot.Label{"tree", "chair"}, []float64{0.80, 0.55}, 127},
	{"q4", "drinking_beer", []annot.Label{"bottle", "chair"}, []float64{0.90, 0.70}, 63},
	{"q5", "volleyball", []annot.Label{"tree"}, []float64{0.75}, 110},
	{"q6", "playing_rubik_cube", []annot.Label{"clock"}, []float64{0.65}, 89},
	{"q7", "cleaning_sink", []annot.Label{"faucet", "knife"}, []float64{0.90, 0.55}, 84},
	{"q8", "kneeling", []annot.Label{"tree"}, []float64{0.70}, 104},
	{"q9", "doing_crunches", []annot.Label{"chair"}, []float64{0.75}, 85},
	{"q10", "blow_drying_hair", []annot.Label{"kid"}, []float64{0.80}, 138},
	{"q11", "washing_hands", []annot.Label{"faucet", "dish"}, []float64{0.90, 0.70}, 113},
	{"q12", "archery", []annot.Label{"sunglasses"}, []float64{0.60}, 156},
}

// YouTubeSpec returns the generation spec of one YouTube set (q1..q12),
// so callers can override the geometry (Figures 4–5 vary the clip size).
func YouTubeSpec(id string, geom video.Geometry) (Spec, annot.Query, error) {
	for _, row := range youtubeRows {
		if row.id != id {
			continue
		}
		spec := Spec{
			Name:   id + "_" + string(row.action),
			Frames: geom.FramesForDuration(float64(row.minutes) * 60),
			Geom:   geom,
			Action: row.action,
			// Activity episodes last ~25s (75 shots) with ~90s gaps.
			ActionEpisodes:   EpisodeSpec{MeanOn: 75, MeanOff: 270},
			ActionDistractor: EpisodeSpec{MeanOn: 4, MeanOff: 1400},
			Seed:             int64(1000 + len(row.id)*7 + int(row.id[len(row.id)-1])),
		}
		spec.Objects = append(spec.Objects, personObject())
		for i, o := range row.objects {
			spec.Objects = append(spec.Objects, baseObject(o, row.corr[i]))
		}
		q := annot.Query{Action: row.action, Objects: row.objects}
		return spec, q, nil
	}
	return Spec{}, annot.Query{}, fmt.Errorf("synth: unknown YouTube set %q", id)
}

// YouTube generates one of the paper's twelve YouTube query sets with
// the default geometry.
func YouTube(id string) (*QuerySet, error) {
	return YouTubeWithGeometry(id, video.DefaultGeometry())
}

// YouTubeWithGeometry generates a YouTube set with a custom geometry.
func YouTubeWithGeometry(id string, geom video.Geometry) (*QuerySet, error) {
	return YouTubeScaled(id, geom, 1)
}

// YouTubeScaled generates a YouTube set at a fraction of its full
// length with a custom geometry (used by quick test/bench modes).
func YouTubeScaled(id string, geom video.Geometry, scale float64) (*QuerySet, error) {
	spec, q, err := YouTubeSpec(id, geom)
	if err != nil {
		return nil, err
	}
	spec = spec.Scaled(scale)
	w, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	minutes := 0
	for _, row := range youtubeRows {
		if row.id == id {
			minutes = row.minutes
		}
	}
	return &QuerySet{ID: id, World: w, Query: q, Minutes: minutes}, nil
}

// YouTubeIDs lists the twelve set identifiers of Table 1 in order.
func YouTubeIDs() []string {
	out := make([]string, len(youtubeRows))
	for i, r := range youtubeRows {
		out[i] = r.id
	}
	return out
}

// movieRow captures one row of Table 2.
type movieRow struct {
	name    string
	action  annot.Label
	objects []annot.Label
	minutes int
	seed    int64
}

var movieRows = []movieRow{
	{"coffee_and_cigarettes", "smoking", []annot.Label{"wine_glass", "cup"}, 96, 21001},
	{"iron_man", "robot_dancing", []annot.Label{"car", "airplane"}, 126, 21002},
	{"star_wars_3", "archery", []annot.Label{"bird", "cat"}, 134, 21003},
	{"titanic", "kissing", []annot.Label{"surfboard", "boat"}, 194, 21004},
}

// movieExtraObjects is the rest of the object universe a repository
// ingests: the ingestion phase materializes tables for every label the
// deployed models support, not just the queried ones (§4.2).
var movieExtraObjects = []annot.Label{
	"person", "chair", "table", "bottle", "phone", "dog", "horse", "tv",
	"book", "clock", "umbrella", "hat",
}

// movieExtraActions are additional recognizable actions for ad-hoc
// queries against the repository.
var movieExtraActions = []annot.Label{
	"running", "jumping", "dancing", "eating", "driving", "fighting",
	"swimming", "talking",
}

// MovieSpec returns the generation spec of one Table 2 movie.
func MovieSpec(name string) (Spec, annot.Query, error) {
	for _, row := range movieRows {
		if row.name != name {
			continue
		}
		geom := video.DefaultGeometry()
		spec := Spec{
			Name:   row.name,
			Frames: geom.FramesForDuration(float64(row.minutes) * 60),
			Geom:   geom,
			Action: row.action,
			// Movie scenes with the queried action recur throughout the
			// film with widely varying lengths, yielding ~20 candidate
			// sequences per movie as in the paper's Table 6 setting.
			ActionEpisodes:   EpisodeSpec{MeanOn: 90, MeanOff: 420},
			ActionDistractor: EpisodeSpec{MeanOn: 4, MeanOff: 900},
			ExtraActions:     map[annot.Label]EpisodeSpec{},
			Seed:             row.seed,
		}
		for i, o := range row.objects {
			spec.Objects = append(spec.Objects, baseObject(o, 0.9-0.15*float64(i)))
		}
		for i, o := range movieExtraObjects {
			os := baseObject(o, 0.1)
			os.Background = EpisodeSpec{MeanOn: 300 + 40*float64(i), MeanOff: 4000 + 500*float64(i)}
			spec.Objects = append(spec.Objects, os)
		}
		for i, a := range movieExtraActions {
			spec.ExtraActions[a] = EpisodeSpec{MeanOn: 40 + 10*float64(i), MeanOff: 900 + 100*float64(i)}
		}
		q := annot.Query{Action: row.action, Objects: row.objects}
		return spec, q, nil
	}
	return Spec{}, annot.Query{}, fmt.Errorf("synth: unknown movie %q", name)
}

// Movie generates one of the Table 2 movies.
func Movie(name string) (*QuerySet, error) {
	return MovieScaled(name, 1)
}

// MovieScaled generates a movie at a fraction of its full length (used
// by quick test/bench modes).
func MovieScaled(name string, scale float64) (*QuerySet, error) {
	spec, q, err := MovieSpec(name)
	if err != nil {
		return nil, err
	}
	spec = spec.Scaled(scale)
	w, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	minutes := 0
	for _, row := range movieRows {
		if row.name == name {
			minutes = row.minutes
		}
	}
	return &QuerySet{ID: name, World: w, Query: q, Minutes: minutes}, nil
}

// MovieNames lists the Table 2 movies in order.
func MovieNames() []string {
	out := make([]string, len(movieRows))
	for i, r := range movieRows {
		out[i] = r.name
	}
	return out
}
