package synth

import (
	"testing"

	"vaq/internal/annot"
	"vaq/internal/interval"
	"vaq/internal/video"
)

func smallSpec() Spec {
	return Spec{
		Name:             "t",
		Frames:           30000,
		Geom:             video.DefaultGeometry(),
		Action:           "run",
		ActionEpisodes:   EpisodeSpec{MeanOn: 50, MeanOff: 200},
		ActionDistractor: EpisodeSpec{MeanOn: 4, MeanOff: 500},
		Objects: []ObjectSpec{{
			Label:          "car",
			CorrWithAction: 0.8,
			BoundaryJitter: 20,
			Background:     EpisodeSpec{MeanOn: 200, MeanOff: 5000},
			Distractor:     EpisodeSpec{MeanOn: 15, MeanOff: 2000},
			Detectability:  1.5,
		}},
		ExtraActions: map[annot.Label]EpisodeSpec{"jump": {MeanOn: 30, MeanOff: 800}},
		Seed:         42,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Truth.Actions["run"].Equal(b.Truth.Actions["run"]) {
		t.Fatal("action timelines differ across identical generations")
	}
	if !a.Truth.Objects["car"].Equal(b.Truth.Objects["car"]) {
		t.Fatal("object timelines differ across identical generations")
	}
	if !a.ObjectDistractors["car"].Equal(b.ObjectDistractors["car"]) {
		t.Fatal("distractors differ across identical generations")
	}
}

// TestGenerateDeterministicManyExtraActions pins the sorted iteration
// over Spec.ExtraActions: with several entries, map-order iteration
// would consume the shared RNG in a different order each run and change
// every timeline drawn after the first extra action.
func TestGenerateDeterministicManyExtraActions(t *testing.T) {
	spec := smallSpec()
	spec.ExtraActions = map[annot.Label]EpisodeSpec{}
	for _, l := range []annot.Label{"jump", "walk", "sit", "wave", "fall", "spin"} {
		spec.ExtraActions[l] = EpisodeSpec{MeanOn: 30, MeanOff: 800}
	}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for l := range spec.ExtraActions {
		if !a.Truth.Actions[l].Equal(b.Truth.Actions[l]) {
			t.Fatalf("extra action %s differs across identical generations", l)
		}
	}
	if !a.Truth.Objects["car"].Equal(b.Truth.Objects["car"]) {
		t.Fatal("object timeline differs across identical generations")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(smallSpec())
	spec := smallSpec()
	spec.Seed = 43
	b, _ := Generate(spec)
	if a.Truth.Actions["run"].Equal(b.Truth.Actions["run"]) {
		t.Fatal("different seeds produced identical timelines")
	}
}

func TestGenerateContents(t *testing.T) {
	w, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Truth.Actions["run"]) == 0 {
		t.Fatal("no action episodes")
	}
	if len(w.Truth.Actions["jump"]) == 0 {
		t.Fatal("no extra action episodes")
	}
	if len(w.Truth.Objects["car"]) == 0 {
		t.Fatal("no object presence")
	}
	if w.LabelAccuracy["car"] != 1.5 {
		t.Fatalf("detectability not propagated: %v", w.LabelAccuracy)
	}
	// Correlation: a majority of action episodes should overlap car
	// presence (corr = 0.8 plus background).
	overlapping := 0
	shotLen := w.Truth.Meta.Geom.ShotLen
	for _, ep := range w.Truth.Actions["run"] {
		frames := interval.Set{{Lo: ep.Lo * shotLen, Hi: (ep.Hi+1)*shotLen - 1}}
		if w.Truth.Objects["car"].Intersect(frames).Len() > 0 {
			overlapping++
		}
	}
	total := len(w.Truth.Actions["run"])
	if float64(overlapping)/float64(total) < 0.6 {
		t.Fatalf("only %d/%d action episodes overlap the correlated object", overlapping, total)
	}
}

func TestGenerateValidation(t *testing.T) {
	spec := smallSpec()
	spec.Frames = 10
	if _, err := Generate(spec); err == nil {
		t.Error("too-short video accepted")
	}
	spec = smallSpec()
	spec.Geom.ShotLen = 0
	if _, err := Generate(spec); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestScaled(t *testing.T) {
	spec := smallSpec()
	s := spec.Scaled(0.1)
	if s.Frames != 3000 {
		t.Fatalf("Scaled frames = %d", s.Frames)
	}
	if spec.Scaled(1).Frames != spec.Frames {
		t.Fatal("scale 1 changed frames")
	}
	tiny := spec.Scaled(1e-9)
	if tiny.Frames != spec.Geom.ClipLen() {
		t.Fatalf("tiny scale should floor at one clip, got %d", tiny.Frames)
	}
}

func TestDriftProfiles(t *testing.T) {
	d := StepDrift(100, 1, 5)
	if d(99) != 1 || d(100) != 5 {
		t.Error("StepDrift boundary wrong")
	}
	c := CyclicDrift(100, 1, 5)
	if c(10) != 1 || c(60) != 5 || c(110) != 1 {
		t.Error("CyclicDrift phases wrong")
	}
	if CyclicDrift(0, 1, 5)(0) != 5 {
		t.Error("CyclicDrift with period 0 should not panic")
	}
}

func TestEpisodesRespectBounds(t *testing.T) {
	w, _ := Generate(smallSpec())
	nshots := w.Truth.Meta.Shots()
	for _, ep := range w.Truth.Actions["run"] {
		if ep.Lo < 0 || ep.Hi >= nshots {
			t.Fatalf("episode %v out of [0,%d)", ep, nshots)
		}
	}
	for _, ep := range w.Truth.Objects["car"] {
		if ep.Lo < 0 || ep.Hi >= w.Truth.Meta.Frames {
			t.Fatalf("object interval %v out of range", ep)
		}
	}
}

// Episode lengths should track the spec's means (within sampling error).
func TestEpisodeStatistics(t *testing.T) {
	spec := smallSpec()
	spec.Frames = 600000 // long video for stable statistics
	spec.ActionEpisodes = EpisodeSpec{MeanOn: 40, MeanOff: 160}
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	eps := w.Truth.Actions["run"]
	if len(eps) < 50 {
		t.Fatalf("too few episodes for statistics: %d", len(eps))
	}
	total := 0
	for _, ep := range eps {
		total += ep.Len()
	}
	meanOn := float64(total) / float64(len(eps))
	if meanOn < 25 || meanOn > 55 {
		t.Fatalf("mean episode length %v far from spec 40", meanOn)
	}
	// Duty cycle ≈ MeanOn/(MeanOn+MeanOff) = 0.2.
	duty := float64(eps.Len()) / float64(w.Truth.Meta.Shots())
	if duty < 0.12 || duty > 0.28 {
		t.Fatalf("duty cycle %v far from 0.2", duty)
	}
}

// Background object episodes snap to whole clips (no ground-truth
// slivers; see the snapToClips comment).
func TestBackgroundEpisodesClipAligned(t *testing.T) {
	spec := smallSpec()
	spec.Objects[0].CorrWithAction = 0 // background only
	spec.Objects[0].BoundaryJitter = 0
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	clipLen := spec.Geom.ClipLen()
	for _, iv := range w.Truth.Objects["car"] {
		if iv.Lo%clipLen != 0 {
			t.Fatalf("background episode start %d not clip-aligned", iv.Lo)
		}
		if (iv.Hi+1)%clipLen != 0 && iv.Hi != spec.Frames-1 {
			t.Fatalf("background episode end %d not clip-aligned", iv.Hi)
		}
	}
}
