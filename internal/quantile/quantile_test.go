package quantile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exact returns the true quantile of data (which it sorts).
func exact(data []float64, q float64) float64 {
	sort.Float64s(data)
	idx := int(q * float64(len(data)))
	if idx >= len(data) {
		idx = len(data) - 1
	}
	return data[idx]
}

// rankOf returns the rank (0-based count of elements <= v) of v in
// sorted data.
func rankOf(sorted []float64, v float64) int {
	return sort.SearchFloat64s(sorted, math.Nextafter(v, math.Inf(1)))
}

// checkTargets asserts every target quantile is answered within
// 2·ε·n ranks of the truth (the CKMS bound is ε·n; the factor 2 gives
// headroom for the buffered-merge variant).
func checkTargets(t *testing.T, s *Sketch, data []float64) {
	t.Helper()
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	n := float64(len(data))
	for _, tgt := range s.targets {
		got := s.Query(tgt.Quantile)
		wantRank := tgt.Quantile * n
		gotRank := float64(rankOf(sorted, got))
		if d := math.Abs(gotRank - wantRank); d > 2*tgt.Epsilon*n+1 {
			t.Errorf("q=%.3f: estimate %v has rank %v, want %v ± %v",
				tgt.Quantile, got, gotRank, wantRank, 2*tgt.Epsilon*n+1)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	s := New()
	if got := s.Query(0.5); got != 0 {
		t.Fatalf("empty sketch Query = %v, want 0", got)
	}
	if s.Count() != 0 {
		t.Fatalf("empty sketch Count = %d", s.Count())
	}
	s.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Query(q); got != 42 {
			t.Fatalf("single-sample Query(%v) = %v, want 42", q, got)
		}
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
}

func TestUniformStream(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New()
	data := make([]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		v := rng.Float64()
		s.Observe(v)
		data = append(data, v)
	}
	checkTargets(t, s, data)
}

func TestExponentialTail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	data := make([]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		v := rng.ExpFloat64() * 10 // latency-like heavy tail
		s.Observe(v)
		data = append(data, v)
	}
	checkTargets(t, s, data)
}

func TestSortedAndReversedInput(t *testing.T) {
	for name, order := range map[string]func(i, n int) float64{
		"ascending":  func(i, n int) float64 { return float64(i) },
		"descending": func(i, n int) float64 { return float64(n - i) },
	} {
		s := New()
		data := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := order(i, 20000)
			s.Observe(v)
			data = append(data, v)
		}
		t.Run(name, func(t *testing.T) { checkTargets(t, s, data) })
	}
}

func TestCompressionBoundsSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New()
	for i := 0; i < 200000; i++ {
		s.Observe(rng.NormFloat64())
	}
	if s.Count() != 200000 {
		t.Fatalf("Count = %d, want 200000", s.Count())
	}
	if got := s.Samples(); got > 2000 {
		t.Errorf("sketch retains %d samples for 200k observations; compression is not working", got)
	}
}

func TestMinMax(t *testing.T) {
	s := New()
	for _, v := range []float64{5, -3, 17, 0.5} {
		s.Observe(v)
	}
	if s.Min() != -3 || s.Max() != 17 {
		t.Fatalf("Min/Max = %v/%v, want -3/17", s.Min(), s.Max())
	}
}

func TestReset(t *testing.T) {
	s := New()
	for i := 0; i < 1000; i++ {
		s.Observe(float64(i))
	}
	s.Reset()
	if s.Count() != 0 || s.Query(0.5) != 0 {
		t.Fatalf("after Reset: Count=%d Query=%v", s.Count(), s.Query(0.5))
	}
	s.Observe(9)
	if s.Query(0.5) != 9 {
		t.Fatalf("sketch unusable after Reset: Query = %v", s.Query(0.5))
	}
}

func TestCustomTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := New(Target{Quantile: 0.999, Epsilon: 0.0005})
	data := make([]float64, 0, 100000)
	for i := 0; i < 100000; i++ {
		v := rng.ExpFloat64()
		s.Observe(v)
		data = append(data, v)
	}
	checkTargets(t, s, data)
}

func BenchmarkObserve(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.ExpFloat64()
	}
	s := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(vals[i&4095])
	}
}

func BenchmarkQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	s := New()
	for i := 0; i < 100000; i++ {
		s.Observe(rng.ExpFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(0.99)
	}
}
