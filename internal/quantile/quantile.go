// Package quantile implements a streaming estimator for targeted
// quantiles after Cormode, Korn, Muthukrishnan and Srivastava,
// "Effective Computation of Biased Quantiles over Data Streams" (ICDE
// 2005). The sketch keeps a small, merge-compressed sample of the
// stream whose per-sample rank uncertainty is bounded by the invariant
// function of the targeted-quantiles variant: each requested quantile φ
// is answered within ±ε·n ranks while the space stays logarithmic in
// the relative error rather than linear in the stream.
//
// The server's /metricsz endpoint feeds one sketch per route with
// request latencies and reads p50/p90/p99 back out; cmd/vaqbench uses
// the same sketch for per-clip latency tails. A Sketch is not safe for
// concurrent use — callers serialize access (see server.metrics).
package quantile

import (
	"math"
	"sort"
)

// Target requests that quantile φ = Quantile be answered within
// ±Epsilon·n ranks.
type Target struct {
	Quantile float64 // in (0, 1)
	Epsilon  float64 // in (0, 1); smaller is tighter and larger
}

// DefaultTargets covers the latency-reporting quantiles of /metricsz:
// the median loosely, the tail tightly.
func DefaultTargets() []Target {
	return []Target{
		{Quantile: 0.50, Epsilon: 0.02},
		{Quantile: 0.90, Epsilon: 0.01},
		{Quantile: 0.99, Epsilon: 0.001},
	}
}

// sample is one retained stream element: g is the gap between this
// sample's minimum possible rank and the previous sample's, delta the
// uncertainty span of its own rank.
type sample struct {
	v     float64
	g     float64
	delta float64
}

// Sketch is a CKMS targeted-quantiles sketch.
type Sketch struct {
	targets []Target
	samples []sample // ascending by v
	buf     []float64
	n       float64 // observations absorbed into samples
}

// New builds a sketch answering the given targets (DefaultTargets when
// none are supplied). Targets with out-of-range fields are clamped.
func New(targets ...Target) *Sketch {
	if len(targets) == 0 {
		targets = DefaultTargets()
	}
	ts := make([]Target, len(targets))
	copy(ts, targets)
	for i := range ts {
		q := clamp(ts[i].Quantile, 1e-6, 1-1e-6)
		ts[i].Quantile = q
		// ε must stay below q(1−q)/2: beyond it the invariant admits
		// rank uncertainty at the front of the stream exceeding the
		// target rank itself, and the first-crossing query degenerates.
		ts[i].Epsilon = clamp(ts[i].Epsilon, 1e-6, 0.9*q*(1-q)/2)
	}
	return &Sketch{targets: ts, buf: make([]float64, 0, bufCap)}
}

const bufCap = 500

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// invariant is f(r, n): the maximum permitted rank uncertainty for a
// sample of minimum rank r, the minimum over all targets' constraints
// (floored at 1 so adjacent duplicates can still merge).
func (s *Sketch) invariant(r, n float64) float64 {
	m := math.MaxFloat64
	for _, t := range s.targets {
		var f float64
		if r <= t.Quantile*n {
			f = 2 * t.Epsilon * (n - r) / (1 - t.Quantile)
		} else {
			f = 2 * t.Epsilon * r / t.Quantile
		}
		if f < m {
			m = f
		}
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Observe adds one value to the stream.
func (s *Sketch) Observe(v float64) {
	s.buf = append(s.buf, v)
	if len(s.buf) >= bufCap {
		s.flush()
	}
}

// flush merges the insert buffer into the sample list and compresses.
func (s *Sketch) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	merged := make([]sample, 0, len(s.samples)+len(s.buf))
	var r float64 // minimum rank of the last appended retained sample
	i := 0
	for _, smp := range s.samples {
		for i < len(s.buf) && s.buf[i] < smp.v {
			// New element inserted before smp: its rank is known only
			// to the uncertainty already present at this position.
			merged = append(merged, sample{v: s.buf[i], g: 1, delta: s.invariant(r, s.n) - 1})
			s.n++
			r++
			i++
		}
		merged = append(merged, smp)
		r += smp.g
	}
	for ; i < len(s.buf); i++ {
		// Appended at the end: exact maximum rank, no uncertainty.
		merged = append(merged, sample{v: s.buf[i], g: 1})
		s.n++
	}
	if len(merged) > 0 {
		merged[0].delta = 0 // the minimum is always exact
		merged[len(merged)-1].delta = 0
	}
	s.samples = merged
	s.buf = s.buf[:0]
	s.compress()
}

// compress merges adjacent samples whose combined uncertainty still
// satisfies the invariant, scanning right to left so ranks of samples
// not yet visited are unaffected.
func (s *Sketch) compress() {
	if len(s.samples) < 3 {
		return
	}
	// Precompute minimum ranks.
	r := make([]float64, len(s.samples))
	acc := 0.0
	for i, smp := range s.samples {
		acc += smp.g
		r[i] = acc
	}
	out := s.samples
	for i := len(out) - 2; i >= 1; i-- {
		if out[i].g+out[i+1].g+out[i+1].delta <= s.invariant(r[i-1], s.n) {
			out[i+1].g += out[i].g
			copy(out[i:], out[i+1:])
			out = out[:len(out)-1]
			copy(r[i:], r[i+1:])
			r = r[:len(r)-1]
		}
	}
	s.samples = out
}

// Query returns the estimated value of quantile q (any q in [0,1], best
// accuracy at the sketch's targets). It returns 0 on an empty sketch.
func (s *Sketch) Query(q float64) float64 {
	s.flush()
	if len(s.samples) == 0 {
		return 0
	}
	if q <= 0 {
		return s.samples[0].v
	}
	if q >= 1 {
		return s.samples[len(s.samples)-1].v
	}
	want := q * s.n
	tol := s.invariant(want, s.n) / 2
	var r float64
	for i := 0; i < len(s.samples)-1; i++ {
		r += s.samples[i].g
		nxt := s.samples[i+1]
		if r+nxt.g+nxt.delta > want+tol {
			return s.samples[i].v
		}
	}
	return s.samples[len(s.samples)-1].v
}

// Count returns the number of observed values.
func (s *Sketch) Count() int64 { return int64(s.n) + int64(len(s.buf)) }

// Samples returns the current number of retained samples (diagnostics:
// the whole point of the sketch is that this stays far below Count).
func (s *Sketch) Samples() int {
	s.flush()
	return len(s.samples)
}

// Min and Max return the exact stream extremes (0 on an empty sketch).
func (s *Sketch) Min() float64 { return s.Query(0) }

// Max returns the exact maximum observed value.
func (s *Sketch) Max() float64 { return s.Query(1) }

// Reset discards all observations, keeping the targets.
func (s *Sketch) Reset() {
	s.samples = s.samples[:0]
	s.buf = s.buf[:0]
	s.n = 0
}
