// Package scanstat implements the scan statistics machinery of §3.2:
// the probability that some window of w consecutive occurrence units
// (frames or shots) contains at least k positive predictions, under a
// background Bernoulli success probability p, and the derived critical
// value k_crit of Equation 5.
//
// Following the approach of Naus (1982) as popularized by Turner,
// Ghahramani and Bottone (2010) — reference [45] of the paper — the tail
// probability is approximated as
//
//	P(S_w(N) ≥ k | p, w, L) ≈ 1 − Q₂ · (Q₃/Q₂)^(L−2),  L = N/w,
//
// where Q₂ = P(S_w(2w) < k) and Q₃ = P(S_w(3w) < k) are computed in
// closed form for Bernoulli trials using the binomial distribution
// b(i; w, p) with window mean ψ = p·w. The package also ships an exact
// Monte-Carlo estimator and, for small windows, tests compare the closed
// forms to brute-force enumeration.
package scanstat

import (
	"errors"
	"fmt"
	"math"
)

// Params bundles the inputs of the scan-statistic computation.
type Params struct {
	// P is the background probability of a positive prediction on one
	// occurrence unit (Bernoulli success probability).
	P float64
	// W is the scanning window length in occurrence units. For object
	// predicates this is the clip length in frames; for the action
	// predicate, the clip length in shots (§3.2).
	W int
	// N is the total number of occurrence units observed. L = N/W.
	N int
}

// Validate reports whether the parameters are usable.
func (pr Params) Validate() error {
	switch {
	case !(pr.P >= 0 && pr.P <= 1):
		return fmt.Errorf("scanstat: probability %v outside [0,1]", pr.P)
	case pr.W <= 0:
		return fmt.Errorf("scanstat: window %d must be positive", pr.W)
	case pr.N < pr.W:
		return fmt.Errorf("scanstat: N=%d shorter than window %d", pr.N, pr.W)
	}
	return nil
}

// lnFact returns ln(n!).
func lnFact(n int) float64 {
	v, _ := math.Lgamma(float64(n) + 1)
	return v
}

// binomPMF returns P(X = k) for X ~ Binomial(w, p), computed in log
// space for numerical stability.
func binomPMF(k, w int, p float64) float64 {
	if k < 0 || k > w {
		return 0
	}
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == w {
			return 1
		}
		return 0
	}
	return math.Exp(lnFact(w) - lnFact(k) - lnFact(w-k) +
		float64(k)*math.Log(p) + float64(w-k)*math.Log(1-p))
}

// binomCDF returns P(X ≤ k) for X ~ Binomial(w, p).
func binomCDF(k, w int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= w {
		return 1
	}
	sum := 0.0
	for i := 0; i <= k; i++ {
		sum += binomPMF(i, w, p)
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// BinomTail returns P(X ≥ k) for X ~ Binomial(n, p): the probability
// that at least k of n background units are positive. The adaptive
// sampling planner (package plan) uses it to prune clips whose
// unsampled remainder is overwhelmingly unlikely to reach the critical
// value. k ≤ 0 yields 1; k > n yields 0; n ≤ 0 degenerates to the
// point mass at zero.
func BinomTail(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if n < k {
		return 0
	}
	v := 1 - binomCDF(k-1, n, p)
	if v < 0 {
		return 0
	}
	return v
}

// q2 returns Q₂ = P(S_w(2w) < k) for Bernoulli trials (Naus 1982, with
// binomial b(i; w, p), F its CDF, and ψ = w·p):
//
//	Q₂ = F(k−1)² − (k−1)·b(k)·F(k−2) + ψ·b(k)·F(k−3)
func q2(k, w int, p float64) float64 {
	F := func(i int) float64 { return binomCDF(i, w, p) }
	bk := binomPMF(k, w, p)
	psi := float64(w) * p
	v := F(k-1)*F(k-1) - float64(k-1)*bk*F(k-2) + psi*bk*F(k-3)
	return clamp01(v)
}

// q3 returns Q₃ = P(S_w(3w) < k) for Bernoulli trials (Naus 1982, same
// substitution, f(i) = b(i; w, p)):
//
//	Q₃ = F(k−1)³ − A₁ + A₂ + A₃ − A₄
//	A₁ = 2·f(k)·F(k−1)·[(k−1)F(k−2) − ψF(k−3)]
//	A₂ = ½·f(k)²·[(k−1)(k−2)F(k−3) − 2(k−2)ψF(k−4) + ψ²F(k−5)]
//	A₃ = Σ_{r=1}^{k−1} f(2k−r)·F(r−1)²
//	A₄ = Σ_{r=2}^{k−1} f(2k−r)·f(r)·[(r−1)F(r−2) − ψF(r−3)]
func q3(k, w int, p float64) float64 {
	F := func(i int) float64 { return binomCDF(i, w, p) }
	f := func(i int) float64 { return binomPMF(i, w, p) }
	psi := float64(w) * p
	fk := f(k)
	a1 := 2 * fk * F(k-1) * (float64(k-1)*F(k-2) - psi*F(k-3))
	a2 := 0.5 * fk * fk *
		(float64(k-1)*float64(k-2)*F(k-3) - 2*float64(k-2)*psi*F(k-4) + psi*psi*F(k-5))
	a3 := 0.0
	for r := 1; r <= k-1; r++ {
		a3 += f(2*k-r) * F(r-1) * F(r-1)
	}
	a4 := 0.0
	for r := 2; r <= k-1; r++ {
		a4 += f(2*k-r) * f(r) * (float64(r-1)*F(r-2) - psi*F(r-3))
	}
	v := F(k-1)*F(k-1)*F(k-1) - a1 + a2 + a3 - a4
	return clamp01(v)
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

// TailProb approximates P(S_w(N) ≥ k | p, w, L): the probability that
// some window of W consecutive occurrence units contains at least k
// events when the background event probability is P.
func TailProb(pr Params, k int) (float64, error) {
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	if k <= 0 {
		return 1, nil
	}
	if pr.P == 0 {
		return 0, nil
	}
	L := float64(pr.N) / float64(pr.W)
	if L < 2 {
		// With fewer than two windows the two-window closed form is the
		// best available estimate; it upper-bounds the true tail.
		return clamp01(1 - q2(k, pr.W, pr.P)), nil
	}
	Q2 := q2(k, pr.W, pr.P)
	Q3 := q3(k, pr.W, pr.P)
	if Q2 <= 0 {
		return 1, nil
	}
	ratio := Q3 / Q2
	if ratio > 1 {
		ratio = 1
	}
	return clamp01(1 - Q2*math.Pow(ratio, L-2)), nil
}

// ErrNoCriticalValue is returned when even k = W events in a window is
// not significant at the requested level (background probability too
// high for the window to ever reject).
var ErrNoCriticalValue = errors.New("scanstat: no critical value at this significance level")

// CriticalValue returns the smallest k such that
// P(S_w(N) ≥ k | p, w, L) ≤ alpha (Equation 5). The result is clamped to
// at least 1 and at most W (a window cannot contain more events than
// occurrence units).
func CriticalValue(pr Params, alpha float64) (int, error) {
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	if !(alpha > 0 && alpha < 1) {
		return 0, fmt.Errorf("scanstat: significance level %v outside (0,1)", alpha)
	}
	if pr.P == 0 {
		return 1, nil
	}
	// TailProb is non-increasing in k; binary search for the boundary.
	lo, hi := 1, pr.W
	tailAt := func(k int) float64 {
		t, err := TailProb(pr, k)
		if err != nil {
			// Validate already passed; TailProb cannot fail here.
			panic(err)
		}
		return t
	}
	if tailAt(hi) > alpha {
		return 0, ErrNoCriticalValue
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if tailAt(mid) <= alpha {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
