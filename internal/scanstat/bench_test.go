package scanstat

import "testing"

// BenchmarkCriticalValue measures the per-update cost SVAQD pays when a
// background probability moves outside the recompute tolerance.
func BenchmarkCriticalValue(b *testing.B) {
	pr := Params{P: 0.03, W: 50, N: 100000}
	for i := 0; i < b.N; i++ {
		if _, err := CriticalValue(pr, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTailProb(b *testing.B) {
	pr := Params{P: 0.03, W: 50, N: 100000}
	for i := 0; i < b.N; i++ {
		if _, err := TailProb(pr, 9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarkovTailExact measures the FMCE embedding at the action
// window size (W = 5 shots) and a mid-size window.
func BenchmarkMarkovTailExact(b *testing.B) {
	for _, w := range []int{5, 12} {
		b.Run(string(rune('0'+w/10))+string(rune('0'+w%10)), func(b *testing.B) {
			mp := MarkovParams{P01: 0.01, P11: 0.4, W: w, N: 10000}
			for i := 0; i < b.N; i++ {
				if _, err := MarkovTailExact(mp, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
