package scanstat

import "math/rand"

// MonteCarloTail estimates P(S_w(N) ≥ k) exactly by simulation: it draws
// trials sequences of N Bernoulli(P) occurrence units and reports the
// fraction in which some window of W consecutive units holds at least k
// successes. It is the reference implementation against which the Naus
// approximation is validated in tests, and is also exposed so callers can
// cross-check critical values for unusual parameter regimes.
func MonteCarloTail(pr Params, k, trials int, rng *rand.Rand) (float64, error) {
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	if k <= 0 {
		return 1, nil
	}
	hits := 0
	buf := make([]bool, pr.N)
	for t := 0; t < trials; t++ {
		for i := range buf {
			buf[i] = rng.Float64() < pr.P
		}
		if maxWindowCount(buf, pr.W) >= k {
			hits++
		}
	}
	return float64(hits) / float64(trials), nil
}

// maxWindowCount returns S_w(N): the maximum number of successes in any
// window of w consecutive trials.
func maxWindowCount(trials []bool, w int) int {
	if len(trials) < w {
		w = len(trials)
	}
	count, best := 0, 0
	for i, v := range trials {
		if v {
			count++
		}
		if i >= w && trials[i-w] {
			count--
		}
		if count > best {
			best = count
		}
	}
	return best
}
