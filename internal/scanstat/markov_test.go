package scanstat

import (
	"math"
	"math/rand"
	"testing"
)

func TestMarkovValidate(t *testing.T) {
	bad := []MarkovParams{
		{P01: -0.1, P11: 0.5, W: 5, N: 100},
		{P01: 0.1, P11: 1.5, W: 5, N: 100},
		{P01: 0.1, P11: 0.5, W: 0, N: 100},
		{P01: 0.1, P11: 0.5, W: 5, N: 3},
	}
	for _, mp := range bad {
		if mp.Validate() == nil {
			t.Errorf("Validate(%+v) = nil", mp)
		}
	}
}

func TestMarkovStationary(t *testing.T) {
	mp := MarkovParams{P01: 0.1, P11: 0.7}
	// π = p01/(p01+1-p11) = 0.1/0.4 = 0.25.
	if got := mp.Stationary(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Stationary = %v", got)
	}
	frozen := MarkovParams{P01: 0, P11: 1}
	if got := frozen.Stationary(); got != 0.5 {
		t.Fatalf("frozen chain stationary = %v", got)
	}
}

// exactScanBelowMarkov brute-forces P(S_w(n) ≥ k) over all 2^n outcome
// strings, weighting by the Markov chain started at stationarity.
func exactMarkovTail(n, w, k int, p01, p11 float64) float64 {
	pi1 := MarkovParams{P01: p01, P11: p11}.Stationary()
	total := 0.0
	for m := 0; m < 1<<n; m++ {
		exceeds := false
		for s := 0; s+w <= n && !exceeds; s++ {
			c := 0
			for i := s; i < s+w; i++ {
				if m>>i&1 == 1 {
					c++
				}
			}
			if c >= k {
				exceeds = true
			}
		}
		if !exceeds {
			continue
		}
		prob := pi1
		if m&1 == 0 {
			prob = 1 - pi1
		}
		for i := 1; i < n; i++ {
			prev := m >> (i - 1) & 1
			cur := m >> i & 1
			p := p01
			if prev == 1 {
				p = p11
			}
			if cur == 1 {
				prob *= p
			} else {
				prob *= 1 - p
			}
		}
		total += prob
	}
	return total
}

func TestMarkovTailExactAgainstBruteForce(t *testing.T) {
	cases := []struct {
		mp MarkovParams
		k  int
	}{
		{MarkovParams{P01: 0.2, P11: 0.6, W: 3, N: 8}, 2},
		{MarkovParams{P01: 0.1, P11: 0.5, W: 4, N: 10}, 3},
		{MarkovParams{P01: 0.3, P11: 0.3, W: 3, N: 9}, 2}, // iid special case
		{MarkovParams{P01: 0.05, P11: 0.8, W: 5, N: 12}, 4},
	}
	for _, c := range cases {
		got, err := MarkovTailExact(c.mp, c.k)
		if err != nil {
			t.Fatal(err)
		}
		want := exactMarkovTail(c.mp.N, c.mp.W, c.k, c.mp.P01, c.mp.P11)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%+v k=%d: embedding %v vs brute force %v", c.mp, c.k, got, want)
		}
	}
}

func TestMarkovTailExactIIDMatchesBinomialModel(t *testing.T) {
	// With P01 = P11 = p the chain is i.i.d.; the exact embedding must
	// then agree with the i.i.d. Monte Carlo reference.
	mp := MarkovParams{P01: 0.05, P11: 0.05, W: 10, N: 500}
	exact, err := MarkovTailExact(mp, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	mc, err := MonteCarloTail(Params{P: 0.05, W: 10, N: 500}, 4, 6000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-mc) > 0.05 {
		t.Fatalf("iid embedding %v vs iid monte carlo %v", exact, mc)
	}
}

func TestMarkovTailExactAgainstMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo")
	}
	rng := rand.New(rand.NewSource(6))
	mp := MarkovParams{P01: 0.03, P11: 0.5, W: 10, N: 800}
	for _, k := range []int{3, 5, 7} {
		exact, err := MarkovTailExact(mp, k)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := MonteCarloTailMarkov(mp, k, 6000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-mc) > 0.05 {
			t.Errorf("k=%d: exact %v vs monte carlo %v", k, exact, mc)
		}
	}
}

func TestMarkovTailEdgeCases(t *testing.T) {
	mp := MarkovParams{P01: 0.1, P11: 0.5, W: 5, N: 50}
	if got, _ := MarkovTailExact(mp, 0); got != 1 {
		t.Errorf("k=0 tail = %v", got)
	}
	if got, _ := MarkovTailExact(mp, 6); got != 0 {
		t.Errorf("k>W tail = %v", got)
	}
	if _, err := MarkovTailExact(MarkovParams{P01: 0.1, P11: 0.5, W: 20, N: 100}, 3); err == nil {
		t.Error("oversized exact window accepted")
	}
}

// Positive dependence (P11 > P01) clusters events, making large window
// counts more likely than under an i.i.d. chain with the same marginal.
func TestPositiveDependenceFattensTail(t *testing.T) {
	dep := MarkovParams{P01: 0.02, P11: 0.6, W: 10, N: 1000}
	pi := dep.Stationary()
	iid := MarkovParams{P01: pi, P11: pi, W: 10, N: 1000}
	k := 5
	depTail, err := MarkovTailExact(dep, k)
	if err != nil {
		t.Fatal(err)
	}
	iidTail, err := MarkovTailExact(iid, k)
	if err != nil {
		t.Fatal(err)
	}
	if depTail <= iidTail {
		t.Fatalf("dependent tail %v not above iid tail %v", depTail, iidTail)
	}
}

func TestCriticalValueMarkov(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mp := MarkovParams{P01: 0.01, P11: 0.4, W: 10, N: 2000}
	k, err := CriticalValueMarkov(mp, 0.05, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	at, _ := MarkovTailExact(mp, k)
	if at > 0.05 {
		t.Fatalf("tail at k=%d is %v > alpha", k, at)
	}
	if k > 1 {
		below, _ := MarkovTailExact(mp, k-1)
		if below <= 0.05 {
			t.Fatalf("k=%d not minimal", k)
		}
	}
	// The dependent critical value must exceed the i.i.d. one at the
	// same marginal rate (clustering needs a higher bar).
	pi := mp.Stationary()
	kIID, err := CriticalValue(Params{P: pi, W: 10, N: 2000}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if k < kIID {
		t.Fatalf("markov k=%d below iid k=%d", k, kIID)
	}
	if _, err := CriticalValueMarkov(mp, 0, 100, rng); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := CriticalValueMarkov(MarkovParams{P01: 2, W: 5, N: 50}, 0.05, 100, rng); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestCriticalValueMarkovNoSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mp := MarkovParams{P01: 0.9, P11: 0.95, W: 5, N: 100}
	if _, err := CriticalValueMarkov(mp, 1e-6, 100, rng); err != ErrNoCriticalValue {
		t.Fatalf("err = %v, want ErrNoCriticalValue", err)
	}
}
