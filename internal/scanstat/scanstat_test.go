package scanstat

import (
	"math"
	"math/rand"
	"testing"
)

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, p := range []float64{0, 0.01, 0.3, 0.5, 1} {
		for _, w := range []int{1, 5, 50} {
			sum := 0.0
			for k := 0; k <= w; k++ {
				sum += binomPMF(k, w, p)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("w=%d p=%v: pmf sums to %v", w, p, sum)
			}
		}
	}
}

func TestBinomCDFMatchesPMF(t *testing.T) {
	w, p := 20, 0.17
	sum := 0.0
	for k := 0; k <= w; k++ {
		sum += binomPMF(k, w, p)
		if got := binomCDF(k, w, p); math.Abs(got-sum) > 1e-9 {
			t.Fatalf("CDF(%d) = %v, want %v", k, got, sum)
		}
	}
	if binomCDF(-1, w, p) != 0 {
		t.Error("CDF(-1) != 0")
	}
	if binomPMF(-3, w, p) != 0 {
		t.Error("PMF(-3) != 0")
	}
	if binomPMF(w+1, w, p) != 0 {
		t.Error("PMF(w+1) != 0")
	}
	if binomCDF(w, w, p) != 1 {
		t.Error("CDF(w) != 1")
	}
}

// exactScanBelow computes P(S_w(n) < k) by brute-force enumeration over
// all 2^n Bernoulli outcomes; only usable for small n.
func exactScanBelow(n, w, k int, p float64) float64 {
	total := 0.0
	for m := 0; m < 1<<n; m++ {
		ok := true
		for s := 0; s+w <= n && ok; s++ {
			c := 0
			for i := s; i < s+w; i++ {
				if m>>i&1 == 1 {
					c++
				}
			}
			if c >= k {
				ok = false
			}
		}
		if !ok {
			continue
		}
		prob := 1.0
		for i := 0; i < n; i++ {
			if m>>i&1 == 1 {
				prob *= p
			} else {
				prob *= 1 - p
			}
		}
		total += prob
	}
	return total
}

// TestQ2Q3AgainstExactEnumeration checks the closed-form Q2 and Q3
// against exhaustive enumeration for small windows.
func TestQ2Q3AgainstExactEnumeration(t *testing.T) {
	cases := []struct {
		w, k int
		p    float64
	}{
		{4, 2, 0.2}, {4, 3, 0.3}, {5, 2, 0.1}, {5, 3, 0.25}, {6, 3, 0.15}, {6, 4, 0.3}, {8, 3, 0.1},
	}
	for _, c := range cases {
		e2 := exactScanBelow(2*c.w, c.w, c.k, c.p)
		a2 := q2(c.k, c.w, c.p)
		if math.Abs(e2-a2) > 0.02 {
			t.Errorf("w=%d k=%d p=%v: Q2 approx %.5f vs exact %.5f", c.w, c.k, c.p, a2, e2)
		}
		e3 := exactScanBelow(3*c.w, c.w, c.k, c.p)
		a3 := q3(c.k, c.w, c.p)
		if math.Abs(e3-a3) > 0.025 {
			t.Errorf("w=%d k=%d p=%v: Q3 approx %.5f vs exact %.5f", c.w, c.k, c.p, a3, e3)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{P: -0.1, W: 10, N: 100},
		{P: 1.1, W: 10, N: 100},
		{P: 0.1, W: 0, N: 100},
		{P: 0.1, W: 10, N: 5},
	}
	for _, pr := range bad {
		if pr.Validate() == nil {
			t.Errorf("Validate(%+v) = nil, want error", pr)
		}
	}
	if err := (Params{P: 0.1, W: 10, N: 100}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestTailProbEdgeCases(t *testing.T) {
	pr := Params{P: 0.1, W: 10, N: 100}
	if got, _ := TailProb(pr, 0); got != 1 {
		t.Errorf("TailProb(k=0) = %v, want 1", got)
	}
	if got, _ := TailProb(Params{P: 0, W: 10, N: 100}, 1); got != 0 {
		t.Errorf("TailProb(p=0) = %v, want 0", got)
	}
	if _, err := TailProb(Params{P: 2, W: 10, N: 100}, 1); err == nil {
		t.Error("TailProb with invalid params: want error")
	}
}

func TestTailProbMonotoneInK(t *testing.T) {
	pr := Params{P: 0.05, W: 50, N: 5000}
	prev := 2.0
	for k := 1; k <= 50; k++ {
		got, err := TailProb(pr, k)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev+1e-12 {
			t.Fatalf("TailProb not non-increasing at k=%d: %v > %v", k, got, prev)
		}
		prev = got
	}
}

func TestTailProbMonotoneInP(t *testing.T) {
	prev := -1.0
	for _, p := range []float64{0.001, 0.01, 0.05, 0.1, 0.2, 0.4} {
		got, err := TailProb(Params{P: p, W: 30, N: 3000}, 8)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-1e-12 {
			t.Fatalf("TailProb not non-decreasing in p at p=%v: %v < %v", p, got, prev)
		}
		prev = got
	}
}

// TestTailProbAgainstMonteCarlo validates the Naus closed-form
// approximation against simulation across parameter regimes.
func TestTailProbAgainstMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo validation skipped in -short")
	}
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		pr Params
		k  int
	}{
		{Params{P: 0.02, W: 50, N: 2000}, 5},
		{Params{P: 0.02, W: 50, N: 2000}, 8},
		{Params{P: 0.05, W: 30, N: 1500}, 6},
		{Params{P: 0.10, W: 20, N: 1000}, 8},
		{Params{P: 0.01, W: 50, N: 5000}, 4},
	}
	for _, c := range cases {
		approx, err := TailProb(c.pr, c.k)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := MonteCarloTail(c.pr, c.k, 4000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(approx-mc) > 0.08 {
			t.Errorf("params=%+v k=%d: approx=%.4f mc=%.4f differ too much", c.pr, c.k, approx, mc)
		}
	}
}

func TestCriticalValueThresholdProperty(t *testing.T) {
	pr := Params{P: 0.03, W: 50, N: 10000}
	alpha := 0.05
	k, err := CriticalValue(pr, alpha)
	if err != nil {
		t.Fatal(err)
	}
	at, _ := TailProb(pr, k)
	if at > alpha {
		t.Fatalf("TailProb(k_crit=%d) = %v > alpha", k, at)
	}
	if k > 1 {
		below, _ := TailProb(pr, k-1)
		if below <= alpha {
			t.Fatalf("k_crit=%d not minimal: TailProb(k-1) = %v <= alpha", k, below)
		}
	}
}

func TestCriticalValueMonotoneInP(t *testing.T) {
	prev := 0
	for _, p := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 5e-2} {
		k, err := CriticalValue(Params{P: p, W: 50, N: 100000}, 0.05)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if k < prev {
			t.Fatalf("k_crit decreased as p grew: p=%v k=%d prev=%d", p, k, prev)
		}
		prev = k
	}
}

func TestCriticalValueZeroP(t *testing.T) {
	k, err := CriticalValue(Params{P: 0, W: 50, N: 1000}, 0.05)
	if err != nil || k != 1 {
		t.Fatalf("CriticalValue(p=0) = %d, %v; want 1, nil", k, err)
	}
}

func TestCriticalValueNoSolution(t *testing.T) {
	// With p close to 1, even a full window of events is unsurprising.
	_, err := CriticalValue(Params{P: 0.99, W: 10, N: 1000}, 0.001)
	if err != ErrNoCriticalValue {
		t.Fatalf("err = %v, want ErrNoCriticalValue", err)
	}
}

func TestCriticalValueBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, 1, -0.5, 1.5} {
		if _, err := CriticalValue(Params{P: 0.1, W: 10, N: 100}, alpha); err == nil {
			t.Errorf("alpha=%v: want error", alpha)
		}
	}
}

func TestMaxWindowCount(t *testing.T) {
	cases := []struct {
		trials []bool
		w      int
		want   int
	}{
		{[]bool{true, false, true, true}, 2, 2},
		{[]bool{false, false, false}, 2, 0},
		{[]bool{true, true, true}, 5, 3}, // window longer than sequence
		{[]bool{true, false, false, true, true, true}, 3, 3},
	}
	for _, c := range cases {
		if got := maxWindowCount(c.trials, c.w); got != c.want {
			t.Errorf("maxWindowCount(%v, %d) = %d, want %d", c.trials, c.w, got, c.want)
		}
	}
}

func TestMonteCarloTailEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if got, _ := MonteCarloTail(Params{P: 0.5, W: 5, N: 50}, 0, 10, rng); got != 1 {
		t.Errorf("MonteCarloTail(k=0) = %v, want 1", got)
	}
	if _, err := MonteCarloTail(Params{P: -1, W: 5, N: 50}, 1, 10, rng); err == nil {
		t.Error("invalid params: want error")
	}
}
