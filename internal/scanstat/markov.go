package scanstat

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Footnote 7 of the paper notes that the scan-statistics analysis
// extends to Bernoulli trials with known Markov dependencies through the
// finite Markov chain embedding (FMCE) technique. This file provides
// that extension for first-order two-state chains: the exact tail
// probability by embedding the window contents as chain states (small
// windows), a Monte-Carlo estimator (any window), and the derived
// critical value.

// MarkovParams describes occurrence units forming a two-state Markov
// chain: P01 = P(event | previous unit had no event) and
// P11 = P(event | previous unit had an event). P01 = P11 recovers the
// i.i.d. case.
type MarkovParams struct {
	P01, P11 float64
	// W is the scanning window length; N the total number of units.
	W, N int
}

// Validate reports whether the parameters are usable.
func (mp MarkovParams) Validate() error {
	switch {
	case !(mp.P01 >= 0 && mp.P01 <= 1):
		return fmt.Errorf("scanstat: P01 %v outside [0,1]", mp.P01)
	case !(mp.P11 >= 0 && mp.P11 <= 1):
		return fmt.Errorf("scanstat: P11 %v outside [0,1]", mp.P11)
	case mp.W <= 0:
		return fmt.Errorf("scanstat: window %d must be positive", mp.W)
	case mp.N < mp.W:
		return fmt.Errorf("scanstat: N=%d shorter than window %d", mp.N, mp.W)
	}
	return nil
}

// Stationary returns the chain's stationary event probability
// π₁ = P01 / (P01 + 1 − P11).
func (mp MarkovParams) Stationary() float64 {
	denom := mp.P01 + 1 - mp.P11
	if denom == 0 {
		// P01 = 0, P11 = 1: the chain freezes in its initial state; use
		// an uninformative 1/2.
		return 0.5
	}
	return mp.P01 / denom
}

// maxExactMarkovW bounds the window length for the exact embedding: the
// state space is 2^(W−1) window contents.
const maxExactMarkovW = 14

// MarkovTailExact computes P(S_w(N) ≥ k) exactly for Markov-dependent
// trials by finite Markov chain embedding: each state encodes the last
// W−1 outcomes (bit 0 = most recent); a trial whose completed window
// holds at least k events moves the mass to an absorbing state. Only
// available for W ≤ 14.
func MarkovTailExact(mp MarkovParams, k int) (float64, error) {
	if err := mp.Validate(); err != nil {
		return 0, err
	}
	if mp.W > maxExactMarkovW {
		return 0, fmt.Errorf("scanstat: exact Markov embedding limited to W ≤ %d, got %d (use MonteCarloTailMarkov)", maxExactMarkovW, mp.W)
	}
	if k <= 0 {
		return 1, nil
	}
	if k > mp.W {
		return 0, nil
	}
	histBits := mp.W - 1
	size := 1 << histBits
	mask := size - 1
	cur := make([]float64, size)
	next := make([]float64, size)
	absorbed := 0.0

	// Warm-up: build the first W−1 outcomes (no complete window yet).
	pi1 := mp.Stationary()
	cur[0] = 1
	for t := 0; t < histBits; t++ {
		for i := range next {
			next[i] = 0
		}
		for m, p := range cur[:1<<t] {
			if p == 0 {
				continue
			}
			p1 := pi1
			if t > 0 {
				if m&1 == 1 {
					p1 = mp.P11
				} else {
					p1 = mp.P01
				}
			}
			next[m<<1] += p * (1 - p1)
			next[m<<1|1] += p * p1
		}
		cur, next = next, cur
	}

	// Main pass: each further trial completes a window.
	for t := histBits; t < mp.N; t++ {
		for i := range next {
			next[i] = 0
		}
		for m, p := range cur {
			if p == 0 {
				continue
			}
			p1 := pi1
			if histBits > 0 {
				if m&1 == 1 {
					p1 = mp.P11
				} else {
					p1 = mp.P01
				}
			} else if t > 0 {
				// W = 1: no history bits; chain state is the previous
				// outcome, which a single state cannot carry — fall
				// back to the stationary probability (documented
				// approximation for the degenerate window).
				p1 = pi1
			}
			c := bits.OnesCount(uint(m))
			// Outcome 0.
			if c >= k {
				absorbed += p * (1 - p1)
			} else {
				next[(m<<1)&mask] += p * (1 - p1)
			}
			// Outcome 1.
			if c+1 >= k {
				absorbed += p * p1
			} else {
				next[(m<<1|1)&mask] += p * p1
			}
		}
		cur, next = next, cur
	}
	return clamp01(absorbed), nil
}

// MonteCarloTailMarkov estimates P(S_w(N) ≥ k) for Markov-dependent
// trials by simulation, starting each sequence from the stationary
// distribution.
func MonteCarloTailMarkov(mp MarkovParams, k, trials int, rng *rand.Rand) (float64, error) {
	if err := mp.Validate(); err != nil {
		return 0, err
	}
	if k <= 0 {
		return 1, nil
	}
	hits := 0
	buf := make([]bool, mp.N)
	pi1 := mp.Stationary()
	for t := 0; t < trials; t++ {
		prev := rng.Float64() < pi1
		buf[0] = prev
		for i := 1; i < mp.N; i++ {
			p := mp.P01
			if prev {
				p = mp.P11
			}
			prev = rng.Float64() < p
			buf[i] = prev
		}
		if maxWindowCount(buf, mp.W) >= k {
			hits++
		}
	}
	return float64(hits) / float64(trials), nil
}

// CriticalValueMarkov returns the smallest k with
// P(S_w(N) ≥ k) ≤ alpha for Markov-dependent trials, using the exact
// embedding when the window permits and Monte Carlo (with the given
// trials and rng) otherwise.
func CriticalValueMarkov(mp MarkovParams, alpha float64, trials int, rng *rand.Rand) (int, error) {
	if err := mp.Validate(); err != nil {
		return 0, err
	}
	if !(alpha > 0 && alpha < 1) {
		return 0, fmt.Errorf("scanstat: significance level %v outside (0,1)", alpha)
	}
	tail := func(k int) (float64, error) {
		if mp.W <= maxExactMarkovW {
			return MarkovTailExact(mp, k)
		}
		return MonteCarloTailMarkov(mp, k, trials, rng)
	}
	// The tail is non-increasing in k; scan upward (W is small).
	for k := 1; k <= mp.W; k++ {
		t, err := tail(k)
		if err != nil {
			return 0, err
		}
		if t <= alpha {
			return k, nil
		}
	}
	return 0, ErrNoCriticalValue
}
