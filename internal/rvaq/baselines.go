package rvaq

import (
	"fmt"
	"sort"
	"time"

	"vaq/internal/annot"
	"vaq/internal/ingest"
	"vaq/internal/interval"
	"vaq/internal/tables"
)

// NoSkip runs RVAQ with the skip mechanism disabled (§5.1's
// RVAQ-noSkip): the iterator processes every clip of the video, paying
// random accesses for clips outside P_q too.
func NoSkip(vd *ingest.VideoData, q annot.Query, k int, opts Options) ([]SeqResult, Stats, error) {
	opts = opts.withDefaults()
	opts.Skip = false
	return TopK(vd, q, k, opts)
}

// PqTraverse is the §5.1 baseline that random-accesses every clip of
// every sequence in P_q, computes all sequence scores exactly, and
// returns the K best. Its cost is constant in K.
func PqTraverse(vd *ingest.VideoData, q annot.Query, k int, opts Options) ([]SeqResult, Stats, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("rvaq: k must be positive, got %d", k)
	}
	pq, err := vd.CandidateSequences(q)
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{Candidates: len(pq)}
	act, objs, err := vd.QueryTables(q)
	if err != nil {
		return nil, stats, err
	}
	fns := opts.Score
	it := newTBClip(act, objs, fns, &stats.Accesses, func(int32) bool { return false }, nil)

	results := make([]SeqResult, 0, len(pq))
	for _, iv := range pq {
		total := fns.F.Zero()
		for c := iv.Lo; c <= iv.Hi; c++ {
			s, err := it.ScoreClip(int32(c))
			if err != nil {
				return nil, stats, err
			}
			total = fns.F.Merge(total, s)
		}
		results = append(results, SeqResult{Seq: iv, Score: total})
	}
	sortResults(results)
	if len(results) > k {
		results = results[:k]
	}
	stats.Runtime = time.Since(start)
	return results, stats, nil
}

// FA is Fagin's Algorithm adapted as in §5.1: sorted access in parallel
// over the query tables produces clips in score order; clips outside the
// ranges of P_q are disregarded; clips inside are scored by random
// access. The algorithm stops once the score of every sequence in P_q is
// complete and returns the K best.
func FA(vd *ingest.VideoData, q annot.Query, k int, opts Options) ([]SeqResult, Stats, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("rvaq: k must be positive, got %d", k)
	}
	pq, err := vd.CandidateSequences(q)
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{Candidates: len(pq)}
	if len(pq) == 0 {
		stats.Runtime = time.Since(start)
		return nil, stats, nil
	}
	act, objs, err := vd.QueryTables(q)
	if err != nil {
		return nil, stats, err
	}
	fns := opts.Score

	remaining := pq.Len() // clips of P_q still unscored
	seqScore := make([]float64, len(pq))
	for i := range seqScore {
		seqScore[i] = fns.F.Zero()
	}
	scored := map[int32]bool{}
	it := newTBClip(act, objs, fns, &stats.Accesses, func(int32) bool { return false }, nil)

	ts := it.allTables()
	for row := 0; remaining > 0; row++ {
		progressed := false
		for _, t := range ts {
			if row >= t.Len() {
				continue
			}
			progressed = true
			r, err := t.SortedRow(row, &stats.Accesses)
			if err != nil {
				return nil, stats, err
			}
			if scored[r.CID] {
				continue
			}
			scored[r.CID] = true
			// Fagin's algorithm produces each clip with its full score:
			// every distinct clip seen under sorted access is completed
			// by random access, and only then checked against the
			// ranges of P_q (clips outside are disregarded).
			s, err := it.ScoreClip(r.CID)
			if err != nil {
				return nil, stats, err
			}
			si, ok := findSeq(pq, r.CID)
			if !ok {
				continue
			}
			seqScore[si] = fns.F.Merge(seqScore[si], s)
			remaining--
		}
		if !progressed {
			break // tables exhausted; unseen P_q clips score zero
		}
	}

	results := make([]SeqResult, len(pq))
	for i, iv := range pq {
		results[i] = SeqResult{Seq: iv, Score: seqScore[i]}
	}
	sortResults(results)
	if len(results) > k {
		results = results[:k]
	}
	stats.Runtime = time.Since(start)
	return results, stats, nil
}

// Naive computes the exact ranking by brute force without access
// accounting shortcuts; it is the reference oracle used by tests.
func Naive(vd *ingest.VideoData, q annot.Query, k int, opts Options) ([]SeqResult, error) {
	res, _, err := PqTraverse(vd, q, k, opts)
	return res, err
}

func sortResults(results []SeqResult) {
	sort.Slice(results, func(a, b int) bool {
		if results[a].Score != results[b].Score {
			return results[a].Score > results[b].Score
		}
		return results[a].Seq.Lo < results[b].Seq.Lo
	})
}

// SequencesOf re-exports the candidate computation for callers that want
// P_q without ranking (Equation 12).
func SequencesOf(vd *ingest.VideoData, q annot.Query) (interval.Set, error) {
	return vd.CandidateSequences(q)
}

// AccessTotal sums an AccessCounter for reporting.
func AccessTotal(c tables.AccessCounter) int64 { return c.Sorted + c.Reverse + c.Random }
