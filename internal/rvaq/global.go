package rvaq

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// GlobalBound coordinates the shards of a parallel multi-video top-k.
// Each shard (one RVAQ execution per video) periodically publishes the
// lower bounds of its current top-k sequences; the exchange maintains
// the global B_lo^K — the k-th largest lower bound across every shard —
// which each shard reads to prune candidates that cannot reach the
// *global* top-k, not merely its local one.
//
// Safety: a published lower bound belongs to a concrete candidate
// sequence, and sequences are distinct across shards (different videos)
// and within a shard's published batch. If l is the k-th largest
// published bound, at least k distinct sequences have exact score ≥ l,
// so the k-th best global exact score is ≥ l; pruning any sequence
// whose upper bound is strictly below l is conservative. Exact scores
// never change, so the bound is kept monotonically non-decreasing and
// stays valid even when a shard's local lower bounds later shift.
type GlobalBound struct {
	k int

	mu     sync.Mutex
	shards map[int][]float64 // shard id → its latest top-k lower bounds

	// cur holds math.Float64bits of the current global B_lo^K; shards
	// read it lock-free on every pruning pass.
	cur atomic.Uint64
}

// NewGlobalBound builds an exchange for a top-k query.
func NewGlobalBound(k int) *GlobalBound {
	g := &GlobalBound{k: k, shards: map[int][]float64{}}
	g.cur.Store(math.Float64bits(negInf))
	return g
}

// Publish replaces shard's contribution with the lower bounds of its
// current top-k sequences and refreshes the global bound.
func (g *GlobalBound) Publish(shard int, los []float64) {
	g.mu.Lock()
	g.shards[shard] = append(g.shards[shard][:0], los...)
	all := make([]float64, 0, len(g.shards)*g.k)
	for _, s := range g.shards {
		all = append(all, s...)
	}
	g.mu.Unlock()
	if len(all) < g.k {
		return // fewer than k sequences bounded so far: no global floor yet
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	kth := all[g.k-1]
	// Monotone max: an older, higher bound remains valid forever.
	for {
		old := g.cur.Load()
		if math.Float64frombits(old) >= kth || g.cur.CompareAndSwap(old, math.Float64bits(kth)) {
			return
		}
	}
}

// Bound returns the current global B_lo^K (negInf until k sequences
// have been published).
func (g *GlobalBound) Bound() float64 {
	return math.Float64frombits(g.cur.Load())
}

// Raise folds a remote tier's sound global bound into the exchange
// (monotone max). It is the cross-process import hook: a shard's local
// B_lo^K is the k-th largest lower bound over its own candidates, and
// adding the rest of the fleet's candidates can only raise the true
// global k-th best score, so any shard's exported Bound() — or any max
// of such bounds a coordinator broadcasts — is safe to fold in here.
// Raising never invalidates anything: pruning stays conservative, so a
// broadcast can change work counts but never results.
func (g *GlobalBound) Raise(b float64) {
	for {
		old := g.cur.Load()
		if math.Float64frombits(old) >= b || g.cur.CompareAndSwap(old, math.Float64bits(b)) {
			return
		}
	}
}
