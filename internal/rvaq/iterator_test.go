package rvaq

import (
	"testing"

	"vaq/internal/score"
	"vaq/internal/tables"
)

func iterTables() (tables.Table, []tables.Table) {
	act := tables.NewMemTable("a", []tables.Row{
		{CID: 0, Score: 9}, {CID: 1, Score: 5}, {CID: 2, Score: 1},
	})
	obj := tables.NewMemTable("o", []tables.Row{
		{CID: 0, Score: 4}, {CID: 1, Score: 8}, {CID: 2, Score: 2},
	})
	return act, []tables.Table{obj}
}

func TestTBClipFrontiersMonotone(t *testing.T) {
	act, objs := iterTables()
	var c tables.AccessCounter
	it := newTBClip(act, objs, score.Default(), &c, func(int32) bool { return false }, nil)
	prevTop, prevBtm := 1e18, -1.0
	for !it.Exhausted() {
		top, btm, err := it.Step()
		if err != nil {
			t.Fatal(err)
		}
		if top > prevTop+1e-9 {
			t.Fatalf("tauTop increased: %v -> %v", prevTop, top)
		}
		if btm < prevBtm-1e-9 && !it.Exhausted() {
			t.Fatalf("tauBtm decreased: %v -> %v", prevBtm, btm)
		}
		prevTop, prevBtm = top, btm
	}
}

func TestTBClipScoresAllClipsExactly(t *testing.T) {
	act, objs := iterTables()
	var c tables.AccessCounter
	scored := map[int32]float64{}
	it := newTBClip(act, objs, score.Default(), &c, func(int32) bool { return false },
		func(cid int32, lo, _ float64) { scored[cid] = lo })
	for !it.Exhausted() {
		if _, _, err := it.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// g = act * obj: clip 0 = 9*4 = 36, clip 1 = 5*8 = 40, clip 2 = 2.
	want := map[int32]float64{0: 36, 1: 40, 2: 2}
	for cid, w := range want {
		if scored[cid] != w {
			t.Fatalf("clip %d scored %v, want %v", cid, scored[cid], w)
		}
	}
	if len(scored) != 3 {
		t.Fatalf("scored %d clips, want 3", len(scored))
	}
}

func TestTBClipOnScoredFiresOnce(t *testing.T) {
	act, objs := iterTables()
	var c tables.AccessCounter
	calls := map[int32]int{}
	it := newTBClip(act, objs, score.Default(), &c, func(int32) bool { return false },
		func(cid int32, _, _ float64) { calls[cid]++ })
	for i := 0; i < 10 && !it.Exhausted(); i++ {
		if _, _, err := it.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for cid, n := range calls {
		if n != 1 {
			t.Fatalf("clip %d scored %d times", cid, n)
		}
	}
}

func TestTBClipSkipAvoidsRandomAccess(t *testing.T) {
	act, objs := iterTables()
	var withSkip, without tables.AccessCounter
	it1 := newTBClip(act, objs, score.Default(), &withSkip,
		func(cid int32) bool { return cid == 1 }, nil)
	for !it1.Exhausted() {
		if _, _, err := it1.Step(); err != nil {
			t.Fatal(err)
		}
	}
	it2 := newTBClip(act, objs, score.Default(), &without, func(int32) bool { return false }, nil)
	for !it2.Exhausted() {
		if _, _, err := it2.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if withSkip.Random >= without.Random {
		t.Fatalf("skip did not save random accesses: %d vs %d", withSkip.Random, without.Random)
	}
	if _, known := it1.Known(1); known {
		t.Fatal("skipped clip was scored")
	}
}

func TestTBClipKnownAndScoreClip(t *testing.T) {
	act, objs := iterTables()
	var c tables.AccessCounter
	it := newTBClip(act, objs, score.Default(), &c, func(int32) bool { return false }, nil)
	if _, ok := it.Known(0); ok {
		t.Fatal("clip known before any step")
	}
	s, err := it.ScoreClip(99) // absent everywhere: score 0
	if err != nil || s != 0 {
		t.Fatalf("absent clip score = %v, %v", s, err)
	}
}

// TestTBClipSortedAccessCounts pins the exact per-table sorted-access
// totals of the two-ended scan, regression-testing the bottom-pass
// stand-down: when the top pass of the same step consumed the last
// unread row, the bottom pass must not re-read it and double-count a
// sorted access.
func TestTBClipSortedAccessCounts(t *testing.T) {
	// 1-row table: the first step's top pass consumes the only row, so
	// the bottom pass never reads anything — exactly 1 sorted access
	// and 0 reverse accesses per table.
	one := tables.NewMemTable("o1", []tables.Row{{CID: 0, Score: 3}})
	var c1 tables.AccessCounter
	it1 := newTBClip(nil, []tables.Table{one}, score.Default(), &c1, func(int32) bool { return false }, nil)
	for !it1.Exhausted() {
		if _, _, err := it1.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c1.Sorted != 1 || c1.Reverse != 0 {
		t.Errorf("1-row table: sorted/reverse = %d/%d, want 1/0", c1.Sorted, c1.Reverse)
	}

	// 3-row table: step 1 reads one row from each end, step 2's top pass
	// takes the middle row and the bottom pass stands down — 2 sorted
	// plus 1 reverse access, never 4 reads of 3 rows.
	three := tables.NewMemTable("o3", []tables.Row{
		{CID: 0, Score: 9}, {CID: 1, Score: 5}, {CID: 2, Score: 1},
	})
	var c3 tables.AccessCounter
	it3 := newTBClip(nil, []tables.Table{three}, score.Default(), &c3, func(int32) bool { return false }, nil)
	steps := 0
	for !it3.Exhausted() {
		if _, _, err := it3.Step(); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if c3.Sorted != 2 || c3.Reverse != 1 {
		t.Errorf("3-row table: sorted/reverse = %d/%d, want 2/1", c3.Sorted, c3.Reverse)
	}
	if steps != 2 {
		t.Errorf("3-row table took %d steps, want 2", steps)
	}
	// Every clip must still have been scored exactly once (3 random
	// accesses on the single-table query).
	if c3.Random != 3 {
		t.Errorf("3-row table: random = %d, want 3", c3.Random)
	}
}

func TestTBClipActionlessQueryUsesNeutralAction(t *testing.T) {
	_, objs := iterTables()
	var c tables.AccessCounter
	it := newTBClip(nil, objs, score.Default(), &c, func(int32) bool { return false }, nil)
	s, err := it.ScoreClip(1)
	if err != nil {
		t.Fatal(err)
	}
	if s != 8 { // 1 (neutral action) * 8
		t.Fatalf("actionless score = %v, want 8", s)
	}
}
