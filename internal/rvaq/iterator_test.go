package rvaq

import (
	"testing"

	"vaq/internal/score"
	"vaq/internal/tables"
)

func iterTables() (tables.Table, []tables.Table) {
	act := tables.NewMemTable("a", []tables.Row{
		{CID: 0, Score: 9}, {CID: 1, Score: 5}, {CID: 2, Score: 1},
	})
	obj := tables.NewMemTable("o", []tables.Row{
		{CID: 0, Score: 4}, {CID: 1, Score: 8}, {CID: 2, Score: 2},
	})
	return act, []tables.Table{obj}
}

func TestTBClipFrontiersMonotone(t *testing.T) {
	act, objs := iterTables()
	var c tables.AccessCounter
	it := newTBClip(act, objs, score.Default(), &c, func(int32) bool { return false }, nil)
	prevTop, prevBtm := 1e18, -1.0
	for !it.Exhausted() {
		top, btm, err := it.Step()
		if err != nil {
			t.Fatal(err)
		}
		if top > prevTop+1e-9 {
			t.Fatalf("tauTop increased: %v -> %v", prevTop, top)
		}
		if btm < prevBtm-1e-9 && !it.Exhausted() {
			t.Fatalf("tauBtm decreased: %v -> %v", prevBtm, btm)
		}
		prevTop, prevBtm = top, btm
	}
}

func TestTBClipScoresAllClipsExactly(t *testing.T) {
	act, objs := iterTables()
	var c tables.AccessCounter
	scored := map[int32]float64{}
	it := newTBClip(act, objs, score.Default(), &c, func(int32) bool { return false },
		func(cid int32, s float64) { scored[cid] = s })
	for !it.Exhausted() {
		if _, _, err := it.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// g = act * obj: clip 0 = 9*4 = 36, clip 1 = 5*8 = 40, clip 2 = 2.
	want := map[int32]float64{0: 36, 1: 40, 2: 2}
	for cid, w := range want {
		if scored[cid] != w {
			t.Fatalf("clip %d scored %v, want %v", cid, scored[cid], w)
		}
	}
	if len(scored) != 3 {
		t.Fatalf("scored %d clips, want 3", len(scored))
	}
}

func TestTBClipOnScoredFiresOnce(t *testing.T) {
	act, objs := iterTables()
	var c tables.AccessCounter
	calls := map[int32]int{}
	it := newTBClip(act, objs, score.Default(), &c, func(int32) bool { return false },
		func(cid int32, _ float64) { calls[cid]++ })
	for i := 0; i < 10 && !it.Exhausted(); i++ {
		if _, _, err := it.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for cid, n := range calls {
		if n != 1 {
			t.Fatalf("clip %d scored %d times", cid, n)
		}
	}
}

func TestTBClipSkipAvoidsRandomAccess(t *testing.T) {
	act, objs := iterTables()
	var withSkip, without tables.AccessCounter
	it1 := newTBClip(act, objs, score.Default(), &withSkip,
		func(cid int32) bool { return cid == 1 }, nil)
	for !it1.Exhausted() {
		if _, _, err := it1.Step(); err != nil {
			t.Fatal(err)
		}
	}
	it2 := newTBClip(act, objs, score.Default(), &without, func(int32) bool { return false }, nil)
	for !it2.Exhausted() {
		if _, _, err := it2.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if withSkip.Random >= without.Random {
		t.Fatalf("skip did not save random accesses: %d vs %d", withSkip.Random, without.Random)
	}
	if _, known := it1.Known(1); known {
		t.Fatal("skipped clip was scored")
	}
}

func TestTBClipKnownAndScoreClip(t *testing.T) {
	act, objs := iterTables()
	var c tables.AccessCounter
	it := newTBClip(act, objs, score.Default(), &c, func(int32) bool { return false }, nil)
	if _, ok := it.Known(0); ok {
		t.Fatal("clip known before any step")
	}
	s, err := it.ScoreClip(99) // absent everywhere: score 0
	if err != nil || s != 0 {
		t.Fatalf("absent clip score = %v, %v", s, err)
	}
}

func TestTBClipActionlessQueryUsesNeutralAction(t *testing.T) {
	_, objs := iterTables()
	var c tables.AccessCounter
	it := newTBClip(nil, objs, score.Default(), &c, func(int32) bool { return false }, nil)
	s, err := it.ScoreClip(1)
	if err != nil {
		t.Fatal(err)
	}
	if s != 8 { // 1 (neutral action) * 8
		t.Fatalf("actionless score = %v, want 8", s)
	}
}
