package rvaq

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
)

// countdownCtx reports expiry after a fixed number of Err() polls — a
// deterministic stand-in for a deadline firing mid-run (the TBClip loop
// polls ctx.Err() once per iteration).
type countdownCtx struct {
	context.Context
	left *atomic.Int32
}

func (c countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.DeadlineExceeded
	}
	return nil
}

func expireAfter(n int32) countdownCtx {
	var left atomic.Int32
	left.Store(n)
	return countdownCtx{Context: context.Background(), left: &left}
}

func TestPartialOnExpiredContext(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	vd, q := synthVideoData(rng, 3000, 40)

	// Without Partial an expired ctx is an error (pre-existing contract).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := TopKCtx(ctx, vd, q, 5, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("non-partial expired run: err = %v, want Canceled", err)
	}

	// With Partial the same expiry yields a flagged, well-formed answer.
	opts := DefaultOptions()
	opts.Partial = true
	res, stats, err := TopKCtx(ctx, vd, q, 5, opts)
	if err != nil {
		t.Fatalf("partial expired run errored: %v", err)
	}
	if !stats.Incomplete {
		t.Fatal("partial expired run not marked Incomplete")
	}
	if len(res) > 5 {
		t.Fatalf("partial run returned %d results for k=5", len(res))
	}
}

func TestPartialMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	vd, q := synthVideoData(rng, 3000, 40)
	opts := DefaultOptions()
	opts.Partial = true

	// Expire after a handful of iterations: the run must surface the
	// bounds established so far instead of erroring.
	res, stats, err := TopKCtx(expireAfter(6), vd, q, 5, opts)
	if err != nil {
		t.Fatalf("mid-run partial errored: %v", err)
	}
	if !stats.Incomplete {
		t.Fatal("mid-run partial not marked Incomplete")
	}
	if stats.Iterations == 0 || stats.Iterations > 6 {
		t.Fatalf("iterations = %d, want 1..6", stats.Iterations)
	}
	if len(res) == 0 {
		t.Fatal("mid-run partial returned no results")
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatalf("partial ranking not sorted: %+v", res)
		}
	}
	// The partial sequences are genuine candidates of the query.
	pq, err := vd.CandidateSequences(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if _, ok := findSeq(pq, int32(r.Seq.Lo)); !ok {
			t.Errorf("partial result %v is not a candidate sequence", r.Seq)
		}
	}

	// A completed run is never marked Incomplete.
	full, fstats, err := TopKCtx(context.Background(), vd, q, 5, opts)
	if err != nil || fstats.Incomplete {
		t.Fatalf("full run: err=%v incomplete=%v", err, fstats.Incomplete)
	}
	if len(full) == 0 {
		t.Fatal("full run returned nothing")
	}
}

func TestStatsMergePropagatesIncomplete(t *testing.T) {
	var a, b Stats
	b.Incomplete = true
	a.Merge(b)
	if !a.Incomplete {
		t.Fatal("Merge dropped Incomplete")
	}
	a.Merge(Stats{})
	if !a.Incomplete {
		t.Fatal("Merge with complete stats cleared Incomplete")
	}
}
