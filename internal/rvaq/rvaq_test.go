package rvaq

import (
	"math"
	"math/rand"
	"testing"

	"vaq/internal/annot"
	"vaq/internal/ingest"
	"vaq/internal/interval"
	"vaq/internal/score"
	"vaq/internal/tables"
	"vaq/internal/video"
)

// synthVideoData fabricates an ingested video directly: per-label clip
// scores over nclips clips, individual sequences derived from which
// clips carry meaningful scores. Every clip inside a label's sequences
// has a positive score in that label's table — the invariant real
// ingestion guarantees.
func synthVideoData(rng *rand.Rand, nclips, nseqs int) (*ingest.VideoData, annot.Query) {
	q := annot.Query{Action: "a", Objects: []annot.Label{"o1", "o2"}}
	labels := []annot.Label{"a", "o1", "o2"}

	// Candidate regions: random disjoint sequences.
	var ivs []interval.Interval
	pos := rng.Intn(5)
	for i := 0; i < nseqs && pos < nclips-2; i++ {
		length := 1 + rng.Intn(12)
		hi := pos + length - 1
		if hi >= nclips {
			hi = nclips - 1
		}
		ivs = append(ivs, interval.Interval{Lo: pos, Hi: hi})
		pos = hi + 2 + rng.Intn(10)
	}
	seqs := interval.Normalize(ivs)

	vd := &ingest.VideoData{
		Meta:      video.Meta{Name: "synth", Frames: nclips * 50, Geom: video.DefaultGeometry()},
		ObjTables: map[annot.Label]tables.Table{},
		ActTables: map[annot.Label]tables.Table{},
		ObjSeqs:   map[annot.Label]interval.Set{},
		ActSeqs:   map[annot.Label]interval.Set{},
	}
	for _, l := range labels {
		var rows []tables.Row
		for c := 0; c < nclips; c++ {
			switch {
			case seqs.Contains(c):
				// In-sequence clips always have positive scores.
				rows = append(rows, tables.Row{CID: int32(c), Score: 0.5 + rng.Float64()*20})
			case rng.Float64() < 0.3:
				// Background noise rows elsewhere.
				rows = append(rows, tables.Row{CID: int32(c), Score: rng.Float64() * 3})
			}
		}
		tab := tables.NewMemTable(string(l), rows)
		if l == "a" {
			vd.ActTables[l] = tab
			vd.ActSeqs[l] = seqs
		} else {
			vd.ObjTables[l] = tab
			vd.ObjSeqs[l] = seqs
		}
	}
	return vd, q
}

func resultsEqual(a, b []SeqResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || math.Abs(a[i].Score-b[i].Score) > 1e-6 {
			return false
		}
	}
	return true
}

// TestPropRVAQMatchesOracle is the central correctness property: on
// random workloads, RVAQ (with and without skip), FA and Pq-Traverse
// return identical rankings for every K, for both scoring schemes.
func TestPropRVAQMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	schemes := []score.Functions{
		score.Default(),
		{H: score.Additive{}, G: score.Additive{}, F: score.MaxSeq{}},
	}
	for trial := 0; trial < 40; trial++ {
		vd, q := synthVideoData(rng, 150+rng.Intn(200), 2+rng.Intn(12))
		fns := schemes[trial%len(schemes)]
		opts := Options{Score: fns, Skip: true, ExactScores: true}
		pq, err := vd.CandidateSequences(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 5, len(pq), len(pq) + 3} {
			if k <= 0 {
				continue
			}
			oracle, _, err := PqTraverse(vd, q, k, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := TopK(vd, q, k, opts)
			if err != nil {
				t.Fatalf("trial %d k %d: %v", trial, k, err)
			}
			if !resultsEqual(got, oracle) {
				t.Fatalf("trial %d k=%d: RVAQ %v != oracle %v", trial, k, got, oracle)
			}
			ns, _, err := NoSkip(vd, q, k, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !resultsEqual(ns, oracle) {
				t.Fatalf("trial %d k=%d: NoSkip %v != oracle %v", trial, k, ns, oracle)
			}
			fa, _, err := FA(vd, q, k, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !resultsEqual(fa, oracle) {
				t.Fatalf("trial %d k=%d: FA %v != oracle %v", trial, k, fa, oracle)
			}
		}
	}
}

func TestRVAQSkipReducesAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vd, q := synthVideoData(rng, 400, 15)
	_, withSkip, err := TopK(vd, q, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, noSkip, err := NoSkip(vd, q, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if withSkip.Accesses.Random >= noSkip.Accesses.Random {
		t.Fatalf("skip did not reduce random accesses: %d vs %d",
			withSkip.Accesses.Random, noSkip.Accesses.Random)
	}
}

func TestRVAQConvergesToPqTraverseAtMaxK(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	vd, q := synthVideoData(rng, 300, 12)
	pq, _ := vd.CandidateSequences(q)
	_, rv, err := TopK(vd, q, len(pq), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, pt, err := PqTraverse(vd, q, len(pq), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// With all sequences requested and exact scores, RVAQ must do at
	// least as much random-access work as Pq-Traverse's lower bound,
	// but not wildly more (within 2x).
	if rv.Accesses.Random > 2*pt.Accesses.Random {
		t.Fatalf("RVAQ at max K uses %d accesses vs Pq-Traverse %d", rv.Accesses.Random, pt.Accesses.Random)
	}
}

func TestTopKValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vd, q := synthVideoData(rng, 100, 3)
	if _, _, err := TopK(vd, q, 0, DefaultOptions()); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := PqTraverse(vd, q, -1, DefaultOptions()); err == nil {
		t.Error("negative k accepted")
	}
	if _, _, err := FA(vd, q, 0, DefaultOptions()); err == nil {
		t.Error("FA k=0 accepted")
	}
	if _, _, err := TopK(vd, annot.Query{Action: "ghost"}, 1, DefaultOptions()); err == nil {
		t.Error("unknown action accepted")
	}
}

func TestTopKEmptyCandidates(t *testing.T) {
	vd := &ingest.VideoData{
		Meta:      video.Meta{Name: "empty", Frames: 5000, Geom: video.DefaultGeometry()},
		ObjTables: map[annot.Label]tables.Table{"o1": tables.NewMemTable("o1", nil)},
		ActTables: map[annot.Label]tables.Table{"a": tables.NewMemTable("a", nil)},
		ObjSeqs:   map[annot.Label]interval.Set{"o1": nil},
		ActSeqs:   map[annot.Label]interval.Set{"a": nil},
	}
	q := annot.Query{Action: "a", Objects: []annot.Label{"o1"}}
	for _, f := range []func(*ingest.VideoData, annot.Query, int, Options) ([]SeqResult, Stats, error){TopK, NoSkip, PqTraverse, FA} {
		res, stats, err := f(vd, q, 3, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 0 || stats.Candidates != 0 {
			t.Fatalf("empty candidates yielded %v", res)
		}
	}
}

func TestResultsSortedByScore(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vd, q := synthVideoData(rng, 250, 10)
	res, _, err := TopK(vd, q, 8, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatalf("results not sorted: %v", res)
		}
	}
}

func TestInexactScoresAreLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	vd, q := synthVideoData(rng, 250, 10)
	opts := DefaultOptions()
	opts.ExactScores = false
	approx, approxStats, err := TopK(vd, q, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	exact, exactStats, err := TopK(vd, q, 3, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Same membership (compare as sets of sequences).
	mem := map[interval.Interval]float64{}
	for _, r := range exact {
		mem[r.Seq] = r.Score
	}
	for _, r := range approx {
		want, ok := mem[r.Seq]
		if !ok {
			t.Fatalf("inexact mode changed membership: %v not in %v", r.Seq, exact)
		}
		if r.Score > want+1e-9 {
			t.Fatalf("lower bound %v exceeds exact %v", r.Score, want)
		}
	}
	if approxStats.Accesses.Random > exactStats.Accesses.Random {
		t.Fatalf("inexact mode used more accesses: %d vs %d",
			approxStats.Accesses.Random, exactStats.Accesses.Random)
	}
}

func TestFindSeq(t *testing.T) {
	pq := interval.Set{{Lo: 3, Hi: 7}, {Lo: 20, Hi: 22}}
	if i, ok := findSeq(pq, 5); !ok || i != 0 {
		t.Fatalf("findSeq(5) = %d,%v", i, ok)
	}
	if i, ok := findSeq(pq, 21); !ok || i != 1 {
		t.Fatalf("findSeq(21) = %d,%v", i, ok)
	}
	if _, ok := findSeq(pq, 10); ok {
		t.Fatal("findSeq(10) should miss")
	}
}

func TestNegativeScoreRejected(t *testing.T) {
	vd := &ingest.VideoData{
		Meta: video.Meta{Name: "neg", Frames: 500, Geom: video.DefaultGeometry()},
		ObjTables: map[annot.Label]tables.Table{
			"o1": tables.NewMemTable("o1", []tables.Row{{CID: 1, Score: -5}}),
		},
		ActTables: map[annot.Label]tables.Table{},
		ObjSeqs:   map[annot.Label]interval.Set{"o1": {{Lo: 1, Hi: 1}}},
		ActSeqs:   map[annot.Label]interval.Set{},
	}
	q := annot.Query{Objects: []annot.Label{"o1"}}
	if _, _, err := TopK(vd, q, 1, DefaultOptions()); err == nil {
		t.Fatal("negative clip score accepted")
	}
}

func TestAccessTotal(t *testing.T) {
	c := tables.AccessCounter{Sorted: 1, Reverse: 2, Random: 3}
	if AccessTotal(c) != 6 {
		t.Fatalf("AccessTotal = %d", AccessTotal(c))
	}
}

func TestSequencesOf(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	vd, q := synthVideoData(rng, 100, 4)
	pq, err := SequencesOf(vd, q)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := vd.CandidateSequences(q)
	if !pq.Equal(direct) {
		t.Fatal("SequencesOf differs from CandidateSequences")
	}
}
