package rvaq

import (
	"math/rand"
	"testing"
)

// BenchmarkTopK measures one full RVAQ execution over a 2000-clip
// in-memory workload with 20 candidate sequences.
func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	vd, q := synthVideoData(rng, 2000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := TopK(vd, q, 5, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPqTraverse(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	vd, q := synthVideoData(rng, 2000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PqTraverse(vd, q, 5, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFA(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	vd, q := synthVideoData(rng, 2000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FA(vd, q, 5, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
