package rvaq

import (
	"math/rand"
	"testing"

	"vaq/internal/annot"
	"vaq/internal/ingest"
	"vaq/internal/tables"
)

// markDegraded spreads degraded units over random clips: frames and
// shots at hops 1..3 plus the occasional hop-0 "unknown" unit from a
// legacy manifest, exercising the worst-hop and sticky-unknown rules of
// DegradedClipHops.
func markDegraded(rng *rand.Rand, vd *ingest.VideoData, nclips int) {
	g := vd.Meta.Geom
	frameHops := map[int]int{}
	shotHops := map[int]int{}
	for c := 0; c < nclips; c++ {
		if rng.Float64() >= 0.25 {
			continue
		}
		hop := rng.Intn(4) // 0 = unknown, 1..3 = chain hops
		if rng.Float64() < 0.5 {
			frameHops[c*g.ClipLen()+rng.Intn(g.ClipLen())] = hop
		} else {
			shotHops[c*g.ShotsPerClip+rng.Intn(g.ShotsPerClip)] = hop
		}
		// Sometimes a second unit in the same clip at another hop, so
		// the worst-hop aggregation actually has something to aggregate.
		if rng.Float64() < 0.3 {
			frameHops[c*g.ClipLen()] = rng.Intn(4)
		}
	}
	vd.SetDegradedFrames(frameHops)
	vd.SetDegradedShots(shotHops)
}

// scaleActionTable returns a copy of vd whose action table pre-applies
// each degraded clip's per-hop factor. Because the additive scheme's
// G is linear in the action score (G = action · Σobjects) and F sums
// (or maxes) per-clip scores, discounting a clip's combined score by
// its factor is identical to scaling its action row — so a plain run
// over the scaled copy is an exact oracle for the discounted run.
func scaleActionTable(vd *ingest.VideoData, table []float64) *ingest.VideoData {
	factors := map[int32]float64{}
	for cid, hop := range vd.DegradedClipHops() {
		factors[cid] = 1 - hopDiscount(table, hop)
	}
	cp := *vd
	cp.ActTables = map[annot.Label]tables.Table{}
	for l, tab := range vd.ActTables {
		rows := tab.(*tables.MemTable).Rows()
		for i := range rows {
			if f, ok := factors[rows[i].CID]; ok {
				rows[i].Score *= f
			}
		}
		cp.ActTables[l] = tables.NewMemTable(string(l), rows)
	}
	// The copy must not look degraded itself, or the plain run would
	// be rejected... it isn't (no discount armed), but keep it clean.
	cp.DegradedFrames, cp.DegradedFrameHops = nil, nil
	cp.DegradedShots, cp.DegradedShotHops = nil, nil
	return &cp
}

// TestHopDiscountMatchesOracle is the per-hop correctness property: a
// discounted run over degraded data returns exactly the ranking of a
// plain run over a copy whose action scores pre-apply each clip's
// per-hop factor.
func TestHopDiscountMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	table := []float64{0.2, 0.6}
	for trial := 0; trial < 25; trial++ {
		vd, q := synthVideoData(rng, 150+rng.Intn(150), 2+rng.Intn(10))
		markDegraded(rng, vd, 150)
		oracle := scaleActionTable(vd, table)
		for _, k := range []int{1, 3, 8} {
			got, stats, err := TopK(vd, q, k, Options{Skip: true, ExactScores: true, HopDiscounts: table})
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := TopK(oracle, q, k, Options{Skip: true, ExactScores: true})
			if err != nil {
				t.Fatal(err)
			}
			if !resultsEqual(got, want) {
				t.Fatalf("trial %d k=%d: discounted %v != pre-scaled oracle %v", trial, k, got, want)
			}
			if len(vd.DegradedClipHops()) > 0 && len(got) > 0 && stats.DegradedClips == 0 {
				// Not every trial's degraded clips intersect the
				// candidates, but the counter must move when they do.
				for cid := range vd.DegradedClipHops() {
					for _, r := range got {
						if int(cid) >= r.Seq.Lo && int(cid) <= r.Seq.Hi {
							t.Fatalf("trial %d: degraded clip %d in results but DegradedClips = 0", trial, cid)
						}
					}
				}
			}
		}
	}
}

// TestFlatDiscountIsSingleEntryTable pins the compatibility contract:
// a single-entry hop table is byte-identical to the legacy flat
// DegradedDiscount, results and stats both.
func TestFlatDiscountIsSingleEntryTable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		vd, q := synthVideoData(rng, 200, 8)
		markDegraded(rng, vd, 200)
		flat, fstats, err := TopK(vd, q, 5, Options{Skip: true, ExactScores: true, DegradedDiscount: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		tab, tstats, err := TopK(vd, q, 5, Options{Skip: true, ExactScores: true, HopDiscounts: []float64{0.4}})
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(flat, tab) {
			t.Fatalf("trial %d: flat %v != single-entry table %v", trial, flat, tab)
		}
		if fstats.DegradedClips != tstats.DegradedClips {
			t.Fatalf("trial %d: DegradedClips %d (flat) != %d (table)", trial, fstats.DegradedClips, tstats.DegradedClips)
		}
	}
}

// TestHopDiscountValidation pins the option validation: out-of-range
// entries and mixing the flat and per-hop forms are rejected.
func TestHopDiscountValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vd, q := synthVideoData(rng, 100, 4)
	for _, opts := range []Options{
		{HopDiscounts: []float64{0.5, 1.5}},
		{HopDiscounts: []float64{-0.2}},
		{HopDiscounts: []float64{0.5}, DegradedDiscount: 0.5},
	} {
		if _, _, err := TopK(vd, q, 3, opts); err == nil {
			t.Errorf("opts %+v accepted, want error", opts)
		}
	}
}

// TestHopDiscountTableLookup pins hopDiscount's clamping rules: hops
// past the table take its last entry, hop 0 the worst entry.
func TestHopDiscountTableLookup(t *testing.T) {
	table := []float64{0.1, 0.6, 0.3}
	cases := []struct {
		hop  int
		want float64
	}{
		{1, 0.1}, {2, 0.6}, {3, 0.3},
		{4, 0.3}, {9, 0.3}, // past the table: clamp to last
		{0, 0.6}, // unknown: assume the worst entry
		{-1, 0.6},
	}
	for _, tc := range cases {
		if got := hopDiscount(table, tc.hop); got != tc.want {
			t.Errorf("hopDiscount(%v, %d) = %v, want %v", table, tc.hop, got, tc.want)
		}
	}
}
