package rvaq

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"vaq/internal/annot"
	"vaq/internal/ingest"
	"vaq/internal/score"
	"vaq/internal/tables"
)

// countingTable wraps a Table and tallies random accesses per clip, so
// tests can assert that no clip is ever random-accessed twice through
// the iterator's score cache.
type countingTable struct {
	tables.Table
	random map[int32]int
}

func (t *countingTable) RandomGet(cid int32, c *tables.AccessCounter) (float64, bool, error) {
	t.random[cid]++
	return t.Table.RandomGet(cid, c)
}

// TestScoreAndRecordAccessesOnce is the regression test for the
// exactScore encapsulation bug: every exact clip score must flow
// through scoreAndRecord, which random-accesses each clip's tables at
// most once and announces the score through onScored exactly once —
// even when the finish phase re-requests clips the TBClip passes
// already scored.
func TestScoreAndRecordAccessesOnce(t *testing.T) {
	rows := []tables.Row{{CID: 0, Score: 3}, {CID: 1, Score: 2}, {CID: 2, Score: 1}}
	act := &countingTable{Table: tables.NewMemTable("a", rows), random: map[int32]int{}}
	obj := &countingTable{Table: tables.NewMemTable("o", rows), random: map[int32]int{}}

	var counter tables.AccessCounter
	scored := map[int32]int{}
	it := newTBClip(act, []tables.Table{obj}, score.Default(), &counter,
		func(int32) bool { return false },
		func(cid int32, _, _ float64) { scored[cid]++ })

	for _, cid := range []int32{1, 1, 0, 1, 0} {
		if _, err := it.scoreAndRecord(cid); err != nil {
			t.Fatal(err)
		}
	}
	if counter.Random != 4 { // 2 distinct clips × 2 tables
		t.Fatalf("Random accesses = %d, want 4 (each clip once per table)", counter.Random)
	}
	for cid, n := range scored {
		if n != 1 {
			t.Fatalf("onScored fired %d times for clip %d, want exactly 1", n, cid)
		}
	}
	if len(scored) != 2 {
		t.Fatalf("onScored covered %d clips, want 2", len(scored))
	}
}

// TestTopKNeverDoubleAccessesAClip runs full RVAQ executions (exact
// scores on) over random workloads and asserts each clip is random-
// accessed at most once per table, finish phase included.
func TestTopKNeverDoubleAccessesAClip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		vd, q := synthVideoData(rng, 120, 8)
		wrapped := map[int32]map[int32]int{} // table idx → cid → count
		var idx int32
		wrap := func(tab tables.Table) tables.Table {
			m := map[int32]int{}
			wrapped[idx] = m
			idx++
			return &countingTable{Table: tab, random: m}
		}
		for l, tab := range vd.ActTables {
			vd.ActTables[l] = wrap(tab)
		}
		for l, tab := range vd.ObjTables {
			vd.ObjTables[l] = wrap(tab)
		}
		for _, k := range []int{1, 3, 7} {
			for _, m := range wrapped {
				clear(m)
			}
			if _, _, err := TopK(vd, q, k, DefaultOptions()); err != nil {
				t.Fatal(err)
			}
			for ti, m := range wrapped {
				for cid, n := range m {
					if n > 1 {
						t.Fatalf("trial %d k=%d: clip %d random-accessed %d times in table %d", trial, k, cid, n, ti)
					}
				}
			}
		}
	}
}

func TestTopKCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vd, q := synthVideoData(rng, 200, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := TopKCtx(ctx, vd, q, 3, DefaultOptions()); err != context.Canceled {
		t.Fatalf("TopKCtx on a cancelled context = %v, want context.Canceled", err)
	}
}

func TestGlobalBound(t *testing.T) {
	g := NewGlobalBound(3)
	if b := g.Bound(); b != negInf {
		t.Fatalf("empty exchange bound = %v, want -inf", b)
	}
	g.Publish(0, []float64{5, 2}) // only two sequences: still no floor
	if b := g.Bound(); b != negInf {
		t.Fatalf("under-k bound = %v, want -inf", b)
	}
	g.Publish(1, []float64{4})
	if b := g.Bound(); b != 2 {
		t.Fatalf("bound = %v, want 2 (3rd largest of {5,4,2})", b)
	}
	g.Publish(1, []float64{4, 3, 1})
	if b := g.Bound(); b != 3 {
		t.Fatalf("bound = %v, want 3 (3rd largest of {5,4,3,2,1})", b)
	}
	// Monotone: a shard republishing weaker bounds cannot lower it.
	g.Publish(0, []float64{0.5})
	if b := g.Bound(); b != 3 {
		t.Fatalf("bound regressed to %v after a weaker publish, want 3", b)
	}
}

// globalEntry tags a per-video result for merging in the tests.
type globalEntry struct {
	video int
	res   SeqResult
}

func mergeGlobal(perVideo [][]SeqResult, k int) []globalEntry {
	var all []globalEntry
	for v, res := range perVideo {
		for _, r := range res {
			all = append(all, globalEntry{video: v, res: r})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].res.Score != all[b].res.Score {
			return all[a].res.Score > all[b].res.Score
		}
		if all[a].video != all[b].video {
			return all[a].video < all[b].video
		}
		return all[a].res.Seq.Lo < all[b].res.Seq.Lo
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TestBoundExchangePreservesResults runs shard-per-video executions
// with the cross-shard exchange (concurrently, exercising the atomics
// under -race) and asserts the merged global top-k matches the
// exchange-free sequential runs, across ks and exchange periods.
func TestBoundExchangePreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		nvideos := 2 + rng.Intn(3)
		vds := make([]*videoCase, nvideos)
		for i := range vds {
			vd, q := synthVideoData(rng, 80+rng.Intn(120), 6+rng.Intn(6))
			vds[i] = &videoCase{vd: vd, q: q}
		}
		q := vds[0].q
		for _, k := range []int{1, 3, 5} {
			seq := make([][]SeqResult, nvideos)
			for i, vc := range vds {
				res, _, err := TopK(vc.vd, q, k, DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				seq[i] = res
			}
			for _, every := range []int{1, 8} {
				par := make([][]SeqResult, nvideos)
				gb := NewGlobalBound(k)
				var wg sync.WaitGroup
				errs := make([]error, nvideos)
				for i, vc := range vds {
					wg.Add(1)
					go func(i int, vc *videoCase) {
						defer wg.Done()
						opts := DefaultOptions()
						opts.Bound, opts.Shard, opts.ExchangeEvery = gb, i, every
						par[i], _, errs[i] = TopK(vc.vd, q, k, opts)
					}(i, vc)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						t.Fatal(err)
					}
				}
				want, got := mergeGlobal(seq, k), mergeGlobal(par, k)
				if len(want) != len(got) {
					t.Fatalf("trial %d k=%d every=%d: %d results vs %d sequential", trial, k, every, len(got), len(want))
				}
				for i := range want {
					if want[i].video != got[i].video || want[i].res.Seq != got[i].res.Seq ||
						math.Abs(want[i].res.Score-got[i].res.Score) > 1e-9 {
						t.Fatalf("trial %d k=%d every=%d: result %d = %+v, want %+v", trial, k, every, i, got[i], want[i])
					}
				}
			}
		}
	}
}

type videoCase struct {
	vd *ingest.VideoData
	q  annot.Query
}
