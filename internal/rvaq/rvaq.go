// Package rvaq implements the offline query phase of the paper (§4.3–
// §4.4): algorithm RVAQ returns the top-K result sequences of a query
// against an ingested video, ranked by a user-supplied scoring scheme,
// while pruning clip-score-table accesses through progressively refined
// per-sequence score bounds (Equations 13–15) and a dynamically growing
// skip set. The package also ships the paper's comparison baselines:
// Fagin's algorithm (FA), RVAQ without the skip mechanism, and
// Pq-Traverse.
package rvaq

import (
	"context"
	"fmt"
	"sort"
	"time"

	"vaq/internal/annot"
	"vaq/internal/explain"
	"vaq/internal/ingest"
	"vaq/internal/interval"
	"vaq/internal/pqueue"
	"vaq/internal/score"
	"vaq/internal/tables"
	"vaq/internal/trace"
)

// SeqResult is one ranked result sequence.
type SeqResult struct {
	Seq   interval.Interval // clip-id range (c_l, c_r)
	Score float64           // exact when Options.ExactScores, else the lower bound
	// Degraded marks a sequence containing at least one clip whose
	// ingest-time model outputs came from the resilience fallback chain.
	// Only set when Options.DegradedDiscount is armed (its Score is then
	// already down-weighted).
	Degraded bool
}

// Stats reports the cost of one query execution. For a single
// execution Runtime and CPURuntime coincide; aggregated over a
// parallel multi-video run, Runtime is the wall clock of the parallel
// region while CPURuntime sums the per-video runtimes, so
// CPURuntime/Runtime measures the effective speedup.
type Stats struct {
	Accesses   tables.AccessCounter
	Runtime    time.Duration // wall clock
	CPURuntime time.Duration // aggregate per-execution runtime
	Candidates int           // |P_q|
	Iterations int           // TBClip steps (RVAQ variants only)
	// DegradedClips counts degraded clips inside the candidate
	// sequences (only computed when Options.DegradedDiscount is armed).
	DegradedClips int
	// DensifiedClips counts clips whose scores were completed through
	// Options.Densify on a planned repository.
	DensifiedClips int
	// Bounded marks a run over a planned repository without a
	// densifier: result scores are sound lower bounds, not exact.
	Bounded bool
	// Incomplete marks a partial result: the run's deadline expired
	// before the stopping condition and Options.Partial returned the
	// best-so-far ranking (lower-bound scores) instead of an error.
	Incomplete bool
}

// Merge accumulates another execution's cost into s (wall-clock Runtime
// is left to the caller, who knows the parallel region's extent). A
// single incomplete shard marks the merged result incomplete.
func (s *Stats) Merge(o Stats) {
	s.Accesses.Add(o.Accesses)
	s.CPURuntime += o.CPURuntime
	s.Candidates += o.Candidates
	s.Iterations += o.Iterations
	s.DegradedClips += o.DegradedClips
	s.DensifiedClips += o.DensifiedClips
	s.Bounded = s.Bounded || o.Bounded
	s.Incomplete = s.Incomplete || o.Incomplete
}

// Options tunes a TopK execution.
type Options struct {
	// Score is the scoring scheme; zero value uses score.Default().
	Score score.Functions
	// Skip enables the C_skip mechanism of §4.3 (default on; RVAQ-noSkip
	// sets it off and processes every clip of the video).
	Skip bool
	// ExactScores computes exact scores for the returned top-K
	// sequences (random-accessing their remaining clips once membership
	// is decided). Off, the returned scores are the lower bounds at the
	// stopping point.
	ExactScores bool
	// Bound, when non-nil, joins the execution to a cross-shard bound
	// exchange (one shard per video of a parallel multi-video top-k):
	// the run periodically publishes its top-k lower bounds and prunes
	// with the global B_lo^K, so shards prune each other. The exchanged
	// bounds are conservative — results are identical to a run without
	// the exchange.
	Bound *GlobalBound
	// Shard identifies this execution in the exchange.
	Shard int
	// ExchangeEvery is the iteration period of the exchange (default 8).
	ExchangeEvery int
	// Partial returns the best-so-far top-K (lower-bound scores, no
	// exact-score completion) with Stats.Incomplete set when ctx expires
	// mid-run, instead of dropping the whole query with ctx's error.
	// Bounds only tighten monotonically, so a partial ranking is a valid
	// — just unrefined — answer. Off, an expired ctx is an error (the
	// pre-existing behavior).
	Partial bool
	// DegradedDiscount, in (0, 1], down-weights clips the repository
	// marked degraded at ingest time (VideoData.DegradedClips): a
	// degraded clip's exact score is multiplied by (1 − discount), and
	// results whose sequence contains a degraded clip carry
	// SeqResult.Degraded. The frontier bounds stay valid — a discounted
	// score never exceeds its raw value, so τ_top is still an upper
	// bound, and τ_btm is conservatively scaled by (1 − discount) for
	// the lower bound. 0 disables (degraded clips score as ingested).
	// RVAQ only; the baselines ignore it.
	DegradedDiscount float64
	// HopDiscounts generalizes DegradedDiscount to a per-hop table:
	// entry h−1 is the discount applied to clips whose worst degraded
	// unit was served by fallback hop h (1-based, as recorded in
	// VideoData.DegradedFrameHops/DegradedShotHops), so a hop-1
	// cheap-profile serve is down-weighted less than a hop-3
	// prior-only one. Hops past the table clamp to its last entry;
	// units with no recorded hop (pre-hop manifests) take the table's
	// worst (maximum) entry. Every entry must lie in [0, 1]. τ_btm is
	// conservatively scaled by (1 − max entry), so the frontier
	// bounds stay sound exactly as with the flat discount — which is
	// the single-entry-table special case. Mutually exclusive with
	// DegradedDiscount.
	HopDiscounts []float64
	// Densify, when non-nil on a planned repository (VideoData.Plan
	// set), recomputes a clip's exact score from every unit of the
	// source video, replacing the stored lower bound. With it armed the
	// run returns exact top-K results: clips are densified on first
	// touch, the finishing pass settles any membership contention the
	// bounds leave at exhaustion, and Stats.DensifiedClips counts the
	// completions. Without it, planned runs rank by lower bounds
	// (ExactScores is forced off and Stats.Bounded set). Dense
	// repositories ignore it.
	Densify func(cid int32) (float64, error)
	// Explain, when non-nil, collects the EXPLAIN top-k section: the
	// τ_top / B_lo^K bound trajectory, pruning and cache counters, and
	// the final access totals. Sharded runs share one collector (it is
	// concurrency-safe) and accumulate, mirroring Stats.Merge. Nil —
	// the default — costs only nil checks on the iteration path.
	Explain *explain.Collector
}

// DefaultOptions returns the standard RVAQ configuration.
func DefaultOptions() Options {
	return Options{Score: score.Default(), Skip: true, ExactScores: true}
}

func (o Options) withDefaults() Options {
	if o.Score.H == nil {
		o.Score = score.Default()
	}
	return o
}

// seqState tracks one candidate sequence's bound bookkeeping.
type seqState struct {
	iv         interval.Interval
	knownScore float64 // F-combined (lower-bound) scores of known clips
	// knownHi is the F-combined upper bounds of the same clips; equal to
	// knownScore except on a planned repository without a densifier,
	// where scored clips carry (lo, hi) pairs.
	knownHi    float64
	knownCount int
	up, lo     float64 // current bounds
	pruned     bool    // conclusively out of the top-K (clips skipped)
	degraded   bool    // contains a degraded clip (discount armed only)
}

// TopK runs RVAQ (Algorithm 4): top-K result sequences of query q over
// the ingested video vd.
func TopK(vd *ingest.VideoData, q annot.Query, k int, opts Options) ([]SeqResult, Stats, error) {
	return TopKCtx(context.Background(), vd, q, k, opts)
}

// TopKCtx is TopK with cancellation: the run checks ctx between TBClip
// iterations and returns ctx's error once it fires. When ctx carries a
// trace.Tracer, the run opens an "rvaq.topk" span (nested under ctx's
// current span) with child spans for the candidate computation, the
// TBClip iteration and the finishing pass, and feeds the rvaq.* counter
// catalogue (see docs/OBSERVABILITY.md).
func TopKCtx(ctx context.Context, vd *ingest.VideoData, q annot.Query, k int, opts Options) (_ []SeqResult, _ Stats, err error) {
	start := time.Now()
	opts = opts.withDefaults()
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("rvaq: k must be positive, got %d", k)
	}
	if d := opts.DegradedDiscount; d < 0 || d > 1 {
		return nil, Stats{}, fmt.Errorf("rvaq: DegradedDiscount must be in [0, 1], got %v", d)
	}
	for _, d := range opts.HopDiscounts {
		if d < 0 || d > 1 {
			return nil, Stats{}, fmt.Errorf("rvaq: hop discounts must be in [0, 1], got %v", d)
		}
	}
	if len(opts.HopDiscounts) > 0 && opts.DegradedDiscount > 0 {
		return nil, Stats{}, fmt.Errorf("rvaq: DegradedDiscount and HopDiscounts are mutually exclusive")
	}
	tr := trace.FromContext(ctx)
	ctx, qspan := trace.Start(ctx, "rvaq.topk")
	opts.Explain.TopKConfigure(k)
	stats := Stats{}
	if tr != nil {
		qspan.SetAttr("video", vd.Meta.Name)
		qspan.SetInt("k", int64(k))
		if opts.Bound != nil {
			qspan.SetInt("shard", int64(opts.Shard))
		}
		tr.Counter("rvaq.queries").Add(1)
		defer func() {
			qspan.SetInt("iterations", int64(stats.Iterations))
			qspan.SetInt("random_accesses", stats.Accesses.Random)
			if err != nil {
				qspan.SetAttr("error", err.Error())
			}
			qspan.End()
			tr.Counter("rvaq.iterations").Add(int64(stats.Iterations))
			tr.Counter("rvaq.candidates").Add(int64(stats.Candidates))
			tr.Counter("rvaq.random_accesses").Add(stats.Accesses.Random)
			tr.Counter("rvaq.sorted_accesses").Add(stats.Accesses.Sorted + stats.Accesses.Reverse)
		}()
	}
	_, cspan := trace.Start(ctx, "rvaq.candidates")
	pq, err := vd.CandidateSequences(q) // Equation 12
	cspan.End()
	if err != nil {
		return nil, stats, err
	}
	stats.Candidates = len(pq)
	if len(pq) == 0 {
		stats.Runtime = time.Since(start)
		stats.CPURuntime = stats.Runtime
		return nil, stats, nil
	}
	act, objs, err := vd.QueryTables(q)
	if err != nil {
		return nil, stats, err
	}
	fns := opts.Score

	seqs := make([]*seqState, len(pq))
	for i, iv := range pq {
		seqs[i] = &seqState{iv: iv, knownScore: fns.F.Zero(), knownHi: fns.F.Zero()}
	}

	// Degraded-clip discounting (armed by DegradedDiscount > 0 or a
	// HopDiscounts table — the flat discount is the single-entry
	// special case): mark the candidate sequences touching degraded
	// clips, and scale the bottom frontier bound conservatively —
	// every unseen clip's effective score is at least its raw τ_btm
	// bound times the worst-case factor (1 − max table entry).
	hopTable := opts.HopDiscounts
	if len(hopTable) == 0 && opts.DegradedDiscount > 0 {
		hopTable = []float64{opts.DegradedDiscount}
	}
	var degraded map[int32]int
	btmFactor := 1.0
	if len(hopTable) > 0 {
		degraded = vd.DegradedClipHops()
		if len(degraded) > 0 {
			btmFactor = 1 - maxDiscount(hopTable)
			for cid := range degraded {
				if i, ok := findSeq(pq, cid); ok {
					seqs[i].degraded = true
					stats.DegradedClips++
				}
			}
		}
	}

	// C_skip starts as the complement of P_q: the iterator never
	// random-accesses clips outside the candidate sequences. Pruned
	// sequences extend it as the algorithm progresses (§4.3).
	skip := func(cid int32) bool {
		i, ok := findSeq(pq, cid)
		if !ok {
			return true
		}
		return seqs[i].pruned
	}
	if !opts.Skip {
		skip = func(int32) bool { return false }
	}

	onScored := func(cid int32, lo, hi float64) {
		if i, ok := findSeq(pq, cid); ok {
			seqs[i].knownScore = fns.F.Merge(seqs[i].knownScore, lo)
			seqs[i].knownHi = fns.F.Merge(seqs[i].knownHi, hi)
			seqs[i].knownCount++
		}
	}

	it := newTBClip(act, objs, fns, &stats.Accesses, skip, onScored)
	// Planned repository: stored table scores are lower bounds from the
	// ingest-time adaptive sampling planner. Arm the iterator's slack
	// bookkeeping so every bound stays sound, and without a densifier
	// fall back to ranking by lower bounds.
	planned := !vd.Plan.Empty()
	if planned {
		it.armPlan(vd.Plan, opts.Densify)
		if opts.Densify == nil {
			opts.ExactScores = false
			stats.Bounded = true
		}
	}
	if len(degraded) > 0 {
		it.discount = func(cid int32) float64 {
			if hop, ok := degraded[cid]; ok {
				return 1 - hopDiscount(hopTable, hop)
			}
			return 1
		}
	}
	it.ex = opts.Explain
	var cSeqsPruned, cClipsPruned, cExchange *trace.Counter
	var stStep *trace.Stage
	if tr != nil {
		it.cacheHits = tr.Counter("rvaq.score_cache_hits")
		cSeqsPruned = tr.Counter("rvaq.seqs_pruned")
		cClipsPruned = tr.Counter("rvaq.clips_pruned")
		cExchange = tr.Counter("rvaq.exchange_rounds")
		stStep = tr.Stage("rvaq.step")
	}
	ictx, iterSpan := trace.Start(ctx, "rvaq.iterate")

	for {
		if err := ctx.Err(); err != nil {
			iterSpan.End()
			if opts.Partial {
				// Deadline mid-run: surface what the bounds already
				// establish rather than erroring. Scores are the current
				// lower bounds; no random accesses are spent finishing.
				stats.Incomplete = true
				opts.Explain.TopKPartial()
				if tr != nil {
					tr.Counter("rvaq.partial_results").Add(1)
					qspan.SetAttr("incomplete", "true")
				}
				// Before the first iteration the bounds carry no
				// information; the honest partial answer is empty.
				var topK []int
				if stats.Iterations > 0 {
					topK, _, _ = selectTopK(seqs, k)
				}
				po := opts
				po.ExactScores = false
				return finish(ctx, it, fns, seqs, topK, k, po, &stats, start)
			}
			stats.Runtime = time.Since(start)
			stats.CPURuntime = stats.Runtime
			return nil, stats, err
		}
		var stepStart time.Time
		if stStep != nil {
			stepStart = time.Now()
		}
		tauTop, tauBtm, err := it.Step()
		if err != nil {
			iterSpan.End()
			return nil, stats, err
		}
		tauBtm *= btmFactor // conservative under the degraded discount
		stats.Iterations++
		exhausted := it.Exhausted()
		if exhausted {
			// Every row has been seen: clips never scored are absent
			// from every table and carry stored score zero. On a dense
			// repository that is their exact score; on a planned one
			// their unsampled units may still hide mass, so the hi side
			// absorbs the slack-only bound per clip.
			tauTop, tauBtm = 0, 0
			for _, s := range seqs {
				n := s.iv.Len() - s.knownCount
				if n <= 0 || s.pruned {
					continue
				}
				s.knownScore = fns.F.Merge(s.knownScore, fns.F.MergeN(0, n))
				if planned {
					for c := s.iv.Lo; c <= s.iv.Hi; c++ {
						if _, known := it.Known(int32(c)); !known {
							s.knownHi = fns.F.Merge(s.knownHi, it.absentHi(int32(c)))
						}
					}
				} else {
					s.knownHi = fns.F.Merge(s.knownHi, fns.F.MergeN(0, n))
				}
				s.knownCount = s.iv.Len()
			}
		}
		// Refresh bounds (Equations 13–14): known clips contribute their
		// (lo, hi) pair — exact outside planned-without-densifier runs —
		// and each unknown clip is bounded by the frontier values.
		for _, s := range seqs {
			unknown := s.iv.Len() - s.knownCount
			s.up = fns.F.Merge(s.knownHi, fns.F.MergeN(tauTop, unknown))
			s.lo = fns.F.Merge(s.knownScore, fns.F.MergeN(tauBtm, unknown))
		}
		topK, bloK, bupRest := selectTopK(seqs, k)
		opts.Explain.TopKIteration(opts.Shard, stats.Iterations, tauTop, bloK)
		// Cross-shard exchange: periodically publish this shard's top-k
		// lower bounds and prune with the global B_lo^K, which is at
		// least as tight as the local one once other shards have
		// stronger candidates.
		pruneAt := bloK
		if opts.Bound != nil {
			every := opts.ExchangeEvery
			if every <= 0 {
				every = defaultExchangeEvery
			}
			if stats.Iterations%every == 0 || exhausted {
				_, exSpan := trace.Start(ictx, "rvaq.exchange")
				los := make([]float64, 0, len(topK))
				for _, i := range topK {
					los = append(los, seqs[i].lo)
				}
				opts.Bound.Publish(opts.Shard, los)
				cExchange.Add(1)
				exSpan.SetInt("iteration", int64(stats.Iterations))
				exSpan.End()
			}
			if g := opts.Bound.Bound(); g > pruneAt {
				pruneAt = g
			}
		}
		// Grow the skip set: sequences that can no longer reach the
		// top-K (Algorithm 4 lines 13–14).
		if opts.Skip {
			for _, s := range seqs {
				if !s.pruned && s.up < pruneAt {
					s.pruned = true
					// Every still-unknown clip of a pruned sequence is a
					// random access B_lo^K saved the query.
					cSeqsPruned.Add(1)
					cClipsPruned.Add(int64(s.iv.Len() - s.knownCount))
					opts.Explain.TopKSeqPruned(s.iv.Len() - s.knownCount)
				}
			}
		}
		if stStep != nil {
			stStep.Observe(time.Since(stepStart))
		}
		// Stopping condition (Equation 15).
		if bloK >= bupRest || exhausted {
			iterSpan.End()
			return finish(ctx, it, fns, seqs, topK, k, opts, &stats, start)
		}
	}
}

// hopDiscount picks the table entry for a clip's worst 1-based hop:
// hops past the table clamp to its last entry, and hop 0 ("unknown",
// from pre-hop manifests) takes the worst (maximum) entry.
func hopDiscount(table []float64, hop int) float64 {
	if hop <= 0 {
		return maxDiscount(table)
	}
	if hop > len(table) {
		hop = len(table)
	}
	return table[hop-1]
}

func maxDiscount(table []float64) float64 {
	m := 0.0
	for _, d := range table {
		if d > m {
			m = d
		}
	}
	return m
}

// findSeq locates the candidate sequence containing cid.
func findSeq(pq interval.Set, cid int32) (int, bool) {
	c := int(cid)
	i := sort.Search(len(pq), func(i int) bool { return pq[i].Hi >= c })
	if i < len(pq) && pq[i].Contains(c) {
		return i, true
	}
	return 0, false
}

// selectTopK returns the indices of the k sequences with the highest
// lower bounds (PQ_lo^K), the minimum lower bound among them (B_lo^K),
// and the maximum upper bound among the rest (B_up^¬K; −∞ when none).
// A size-k indexed min-heap realizes PQ_lo^K in O(S log k) per
// refresh; evicted sequences feed B_up^¬K directly.
func selectTopK(seqs []*seqState, k int) (topK []int, bloK, bupRest float64) {
	if k > len(seqs) {
		k = len(seqs)
	}
	pqLo := pqueue.New(len(seqs), pqueue.Min)
	bupRest = negInf
	for i, s := range seqs {
		if pqLo.Len() < k {
			pqLo.Push(i, s.lo)
			continue
		}
		j, minLo, _ := pqLo.Peek()
		// Deterministic ties: the earlier sequence stays in the top-K.
		if s.lo > minLo || (s.lo == minLo && s.iv.Lo < seqs[j].iv.Lo) {
			pqLo.Remove(j)
			pqLo.Push(i, s.lo)
			if seqs[j].up > bupRest {
				bupRest = seqs[j].up
			}
		} else if s.up > bupRest {
			bupRest = s.up
		}
	}
	topK = make([]int, 0, pqLo.Len())
	bloK = negInf
	for {
		i, lo, ok := pqLo.Pop()
		if !ok {
			break
		}
		if bloK == negInf {
			bloK = lo // the heap pops its minimum first
		}
		topK = append(topK, i)
	}
	return topK, bloK, bupRest
}

const negInf = -1e308

// defaultExchangeEvery is the default iteration period of the
// cross-shard bound exchange: frequent enough that shards see each
// other's progress early, sparse enough that the shared atomic and
// mutex stay off the per-row hot path.
const defaultExchangeEvery = 8

// finish materializes the final ranking; with ExactScores it completes
// the top-K sequences' scores by random access to their remaining clips.
func finish(ctx context.Context, it *tbClip, fns score.Functions, seqs []*seqState, topK []int, k int, opts Options, stats *Stats, start time.Time) ([]SeqResult, Stats, error) {
	_, fspan := trace.Start(ctx, "rvaq.finish")
	defer fspan.End()
	if it.densify != nil && opts.ExactScores {
		var err error
		if topK, err = resolveBounded(it, fns, seqs, k); err != nil {
			return nil, *stats, err
		}
	}
	results := make([]SeqResult, 0, len(topK))
	for _, i := range topK {
		s := seqs[i]
		scoreVal := s.lo
		if opts.ExactScores {
			exact, err := exactScore(it, fns, s)
			if err != nil {
				return nil, *stats, err
			}
			scoreVal = exact
		}
		results = append(results, SeqResult{Seq: s.iv, Score: scoreVal, Degraded: s.degraded})
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Score != results[b].Score {
			return results[a].Score > results[b].Score
		}
		return results[a].Seq.Lo < results[b].Seq.Lo
	})
	if len(results) > k {
		results = results[:k]
	}
	stats.DensifiedClips = it.densified
	stats.Runtime = time.Since(start)
	stats.CPURuntime = stats.Runtime
	opts.Explain.TopKFinish(stats.Candidates, stats.Iterations,
		stats.Accesses.Random, stats.Accesses.Sorted+stats.Accesses.Reverse)
	return results, *stats, nil
}

// resolveBounded settles top-K membership on a planned repository with
// a densifier. The stopping condition can fire at exhaustion with the
// lower and upper bounds of contending sequences still overlapping
// (clips absent from every table may hide mass in their unsampled
// units). Densifying a sequence pins lo = up = exact, so repeatedly
// completing the current top-K by lower bound plus every still-bounded
// contender converges: each round makes at least one more sequence
// exact, and with every contender exact the membership test
// B_lo^K ≥ B_up^¬K holds by construction of selectTopK.
func resolveBounded(it *tbClip, fns score.Functions, seqs []*seqState, k int) ([]int, error) {
	for {
		topK, bloK, bupRest := selectTopK(seqs, k)
		if bloK >= bupRest {
			return topK, nil
		}
		inTop := make(map[int]bool, len(topK))
		for _, i := range topK {
			inTop[i] = true
		}
		progress := false
		settle := func(i int) error {
			s := seqs[i]
			if s.lo == s.up {
				return nil
			}
			exact, err := exactScore(it, fns, s)
			if err != nil {
				return err
			}
			s.knownScore, s.knownHi = exact, exact
			s.knownCount = s.iv.Len()
			s.lo, s.up = exact, exact
			progress = true
			return nil
		}
		for _, i := range topK {
			if err := settle(i); err != nil {
				return nil, err
			}
		}
		for i, s := range seqs {
			if !inTop[i] && s.up > bloK {
				if err := settle(i); err != nil {
					return nil, err
				}
			}
		}
		if !progress {
			return topK, nil // every contender exact; bounds as tight as they get
		}
	}
}

// exactScore completes a sequence's exact score through the iterator's
// scoreAndRecord, so clips already scored are never random-accessed
// again and every newly scored clip is recorded (and announced) exactly
// like the ones the TBClip passes saw.
func exactScore(it *tbClip, fns score.Functions, s *seqState) (float64, error) {
	total := fns.F.Zero()
	for c := s.iv.Lo; c <= s.iv.Hi; c++ {
		v, err := it.scoreAndRecord(int32(c))
		if err != nil {
			return 0, err
		}
		total = fns.F.Merge(total, v)
	}
	return total, nil
}
