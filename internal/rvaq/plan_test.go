package rvaq

import (
	"testing"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/ingest"
	"vaq/internal/interval"
	"vaq/internal/plan"
	"vaq/internal/score"
	"vaq/internal/video"
)

// plannedWorld ingests one deterministic scene twice: densely and under
// the rate-8 sampling planner, returning both repositories plus a
// densifier over the planned one.
func plannedWorld(t *testing.T) (dense, planned *ingest.VideoData, densify func(int32) (float64, error), q annot.Query) {
	t.Helper()
	geom := video.DefaultGeometry()
	meta := video.Meta{Name: "pv", Frames: 25000, Geom: geom} // 500 clips
	truth := annot.NewVideo(meta)
	truth.AddAction("run", interval.Set{{Lo: 200, Hi: 349}, {Lo: 1800, Hi: 1899}})
	truth.AddObject("car", interval.Set{{Lo: 2000, Hi: 3999}, {Lo: 17500, Hi: 19499}})
	scene := &detect.Scene{Truth: truth, Seed: 77}
	q = annot.Query{Action: "run", Objects: []annot.Label{"car"}}

	mk := func(pcfg plan.Config) *ingest.VideoData {
		det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
		rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
		vd, err := ingest.Video(det, rec, meta,
			truth.ObjectLabels(), truth.ActionLabels(), ingest.Config{Plan: pcfg})
		if err != nil {
			t.Fatal(err)
		}
		return vd
	}
	dense = mk(plan.Config{})
	planned = mk(plan.Config{Rate: 8})
	if planned.Plan.Empty() {
		t.Fatal("rate-8 ingest sampled every clip densely")
	}

	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	var err error
	densify, err = ingest.NewDensifier(planned, det, rec, q, score.Functions{})
	if err != nil {
		t.Fatal(err)
	}
	return dense, planned, densify, q
}

// TestPlannedTopKDensifiedMatchesDense: a planned repository queried
// with a densifier must return exactly the dense repository's top-K —
// same sequences, same exact scores — because every touched clip is
// completed to its dense score and τ_top stays a sound upper bound.
func TestPlannedTopKDensifiedMatchesDense(t *testing.T) {
	dense, planned, densify, q := plannedWorld(t)

	for _, k := range []int{1, 3, 5} {
		want, _, err := TopK(dense, q, k, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.Densify = densify
		got, stats, err := TopK(planned, q, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Bounded {
			t.Errorf("k=%d: densified run reported Bounded", k)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d results vs dense %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i].Seq != want[i].Seq || got[i].Score != want[i].Score {
				t.Errorf("k=%d result %d: %+v vs dense %+v", k, i, got[i], want[i])
			}
		}
		if k > 1 && stats.DensifiedClips == 0 {
			t.Errorf("k=%d: no clip densified on a planned repository", k)
		}
	}
}

// TestPlannedTopKBoundedIsSoundLowerBound: without a densifier the run
// must flag Stats.Bounded and report scores that never exceed the dense
// exact score of the same sequence.
func TestPlannedTopKBoundedIsSoundLowerBound(t *testing.T) {
	dense, planned, _, q := plannedWorld(t)

	exact := map[interval.Interval]float64{}
	want, _, err := TopK(dense, q, 10, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range want {
		exact[r.Seq] = r.Score
	}

	got, stats, err := TopK(planned, q, 3, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Bounded {
		t.Error("planned run without densifier did not report Bounded")
	}
	for _, r := range got {
		if e, ok := exact[r.Seq]; ok && r.Score > e+1e-9 {
			t.Errorf("sequence %v bounded score %v exceeds dense exact %v", r.Seq, r.Score, e)
		}
	}
}
