package rvaq

import (
	"fmt"

	"vaq/internal/explain"
	"vaq/internal/ingest"
	"vaq/internal/score"
	"vaq/internal/tables"
	"vaq/internal/trace"
)

// tbClip is the TBClip iterator of §4.4 (Algorithm 5). Each Step
// performs one round of sorted access in parallel over all query tables
// from the top and (symmetrically) from the bottom, fully scores every
// newly seen, non-skipped clip via random accesses, and maintains the
// frontier bounds:
//
//   - τtop = g over the tables' current top-frontier scores: an upper
//     bound on the score of every clip never yet seen/scored, and
//   - τbtm = g over the bottom-frontier scores: the matching lower
//     bound.
//
// (Every unseen clip sits, in each table, strictly between the two
// frontiers, so g's monotonicity gives both bounds; clips of P_q appear
// in every query table because a positive clip indicator implies a
// positive clip score.)
//
// The iterator also reports c_top / c_btm — the highest- and lowest-
// scoring clips among those scored and not yet consumed — matching
// Algorithm 5's return values.
type tbClip struct {
	act     tables.Table   // nil when the query has no action predicate
	objs    []tables.Table // object tables in query order
	fns     score.Functions
	counter *tables.AccessCounter
	skip    func(cid int32) bool // shared skip predicate (C_skip, §4.3)

	stampTop, stampBtm int
	frontTop, frontBtm []float64 // per-table frontier scores (act first if present)

	scores map[int32]float64 // exact clip scores, by random access
	// discount, when non-nil, maps a clip to a multiplicative factor in
	// (0, 1] applied to its raw score before memoization — RVAQ arms it
	// for degraded clips. The cache (and hence every bound and result)
	// holds effective scores.
	discount func(cid int32) float64
	// onScored is invoked exactly once per clip when its score becomes
	// known (RVAQ attributes it to the clip's sequence). On a planned
	// repository without a densifier, lo < hi for partially sampled
	// clips; everywhere else lo == hi is the exact score.
	onScored func(cid int32, lo, hi float64)
	// cacheHits, when set by a traced run, counts scoreAndRecord calls
	// answered from the exact-score cache (nil-safe).
	cacheHits *trace.Counter
	// ex, when set, feeds the EXPLAIN top-k section (nil-safe).
	ex *explain.Collector

	// plan, when non-nil, marks a planned repository: stored table
	// scores of partially sampled clips are LOWER bounds (ingest ran
	// the adaptive sampling planner). scoreAndRecord then either
	// completes clips exactly through densify or reports (lo, hi)
	// pairs, and the top frontier is augmented by maxSlack so τtop
	// still upper-bounds unseen clips' true scores.
	plan     *ingest.PlanInfo
	maxSlack []float64 // per table, allTables order
	densify  func(cid int32) (float64, error)
	// densified counts clips completed through densify.
	densified int
}

func newTBClip(act tables.Table, objs []tables.Table, fns score.Functions, counter *tables.AccessCounter, skip func(int32) bool, onScored func(cid int32, lo, hi float64)) *tbClip {
	nt := len(objs)
	if act != nil {
		nt++
	}
	it := &tbClip{
		act: act, objs: objs, fns: fns, counter: counter, skip: skip,
		frontTop: make([]float64, nt),
		frontBtm: make([]float64, nt),
		scores:   map[int32]float64{},
		onScored: onScored,
	}
	return it
}

// armPlan switches the iterator into planned-repository mode: p's
// per-clip slack widens random-accessed scores into (lo, hi) pairs and
// the per-table maximum slack augments the top frontier. densify, when
// non-nil, instead completes every random-accessed clip to its exact
// score on first touch.
func (it *tbClip) armPlan(p *ingest.PlanInfo, densify func(cid int32) (float64, error)) {
	it.plan = p
	it.densify = densify
	it.maxSlack = make([]float64, 0, len(it.objs)+1)
	if it.act != nil {
		it.maxSlack = append(it.maxSlack, p.MaxShotSlack())
	}
	for range it.objs {
		it.maxSlack = append(it.maxSlack, p.MaxFrameSlack())
	}
}

// allTables yields the tables in canonical order: action first (if any),
// then objects.
func (it *tbClip) allTables() []tables.Table {
	out := make([]tables.Table, 0, len(it.objs)+1)
	if it.act != nil {
		out = append(out, it.act)
	}
	return append(out, it.objs...)
}

// Exhausted reports whether both passes have consumed every row of every
// table (all clips with any non-zero score are scored).
func (it *tbClip) Exhausted() bool {
	for _, t := range it.allTables() {
		if it.stampTop+it.stampBtm < t.Len() {
			return false
		}
	}
	return true
}

// Step advances both passes by one row per table and returns the current
// frontier bounds. Newly seen clips that are not skipped are scored
// exactly (random access to every query table).
func (it *tbClip) Step() (tauTop, tauBtm float64, err error) {
	ts := it.allTables()
	// Top pass.
	for i, t := range ts {
		if it.stampTop < t.Len() && it.stampTop+it.stampBtm < t.Len() {
			row, err := t.SortedRow(it.stampTop, it.counter)
			if err != nil {
				return 0, 0, err
			}
			it.frontTop[i] = row.Score
			if err := it.observe(row.CID); err != nil {
				return 0, 0, err
			}
		} else {
			it.frontTop[i] = 0 // table exhausted: every remaining clip is absent from it
		}
	}
	// Bottom pass. The top pass of this same step has already consumed
	// its row (stampTop+1 rows from the top in total), so when exactly
	// one unconsumed row remained at step entry the two passes would
	// meet on the same physical row — the bottom pass must stand down
	// rather than re-read it and double-count a sorted access.
	for i, t := range ts {
		if it.stampBtm < t.Len() && it.stampTop+it.stampBtm+1 < t.Len() {
			row, err := t.ReverseRow(it.stampBtm, it.counter)
			if err != nil {
				return 0, 0, err
			}
			it.frontBtm[i] = row.Score
			if err := it.observe(row.CID); err != nil {
				return 0, 0, err
			}
		} else {
			it.frontBtm[i] = 0
		}
	}
	it.stampTop++
	it.stampBtm++
	return it.tauTop(), it.tau(it.frontBtm), nil
}

// tauTop is tau over the top frontier. On a planned repository each
// table's frontier score is augmented by the table's maximum slack
// first: an unseen clip's STORED score sits below the frontier, but its
// true score may exceed it by up to the slack of its unsampled units,
// and g's monotonicity turns the per-table upper bounds into a sound
// clip-score bound — the reason the stopping condition never fires
// early on planned metadata.
func (it *tbClip) tauTop() float64 {
	if it.plan == nil {
		return it.tau(it.frontTop)
	}
	aug := make([]float64, len(it.frontTop))
	for i, s := range it.frontTop {
		aug[i] = s + it.maxSlack[i]
	}
	return it.tau(aug)
}

// tau combines per-table frontier scores with g. Queries without an
// action predicate evaluate g with a neutral action score of 1 (the
// multiplicative identity of the default scheme), consistently with
// ScoreClip.
func (it *tbClip) tau(front []float64) float64 {
	i := 0
	actScore := 1.0
	if it.act != nil {
		actScore = front[0]
		i = 1
	}
	return it.fns.G.CombineClip(actScore, front[i:])
}

// observe fully scores a newly seen clip unless it is skipped or already
// known.
func (it *tbClip) observe(cid int32) error {
	if it.skip(cid) {
		return nil
	}
	_, err := it.scoreAndRecord(cid)
	return err
}

// scoreAndRecord is the single gateway to the exact-score cache: it
// returns cid's score, computing, memoizing and announcing it (through
// onScored) on first use. Repeated calls never touch the tables again,
// so Stats.Accesses counts each random access exactly once per clip no
// matter how callers interleave.
func (it *tbClip) scoreAndRecord(cid int32) (float64, error) {
	if s, known := it.scores[cid]; known {
		it.cacheHits.Add(1)
		it.ex.TopKScoreCacheHit()
		return s, nil
	}
	var lo, hi float64
	var err error
	if it.densify != nil {
		// Plan-aware exact completion: recompute the clip's score from
		// every unit instead of trusting the stored lower bound.
		lo, err = it.densify(cid)
		hi = lo
		it.densified++
		it.ex.TopKDensified()
	} else {
		lo, hi, err = it.scoreBounds(cid)
	}
	if err != nil {
		return 0, err
	}
	if it.discount != nil {
		f := it.discount(cid)
		lo *= f
		hi *= f
	}
	it.scores[cid] = lo
	if it.onScored != nil {
		it.onScored(cid, lo, hi)
	}
	return lo, nil
}

// ScoreClip computes the clip score S_q^(c) (Equation 9) with one random
// access per query table. On a planned repository the result is the
// STORED score — a lower bound for partially sampled clips.
func (it *tbClip) ScoreClip(cid int32) (float64, error) {
	lo, _, err := it.scoreBounds(cid)
	return lo, err
}

// scoreBounds performs one random access per query table and combines
// the stored scores with g. On a dense repository lo == hi is the exact
// clip score; on a planned one hi additionally absorbs the clip's
// unsampled-unit slack per table (sound by g's monotonicity over
// non-negative arguments).
func (it *tbClip) scoreBounds(cid int32) (lo, hi float64, err error) {
	actLo, actHi := 1.0, 1.0 // neutral when the query has no action predicate
	if it.act != nil {
		s, _, err := it.act.RandomGet(cid, it.counter)
		if err != nil {
			return 0, 0, err
		}
		actLo, actHi = s, s+it.plan.ShotSlack(cid) // ShotSlack is nil-safe: 0 when dense
	}
	objLo := make([]float64, len(it.objs))
	var objHi []float64
	if it.plan != nil {
		objHi = make([]float64, len(it.objs))
	}
	for i, t := range it.objs {
		s, _, err := t.RandomGet(cid, it.counter)
		if err != nil {
			return 0, 0, err
		}
		objLo[i] = s
		if objHi != nil {
			objHi[i] = s + it.plan.FrameSlack(cid)
		}
	}
	lo = it.fns.G.CombineClip(actLo, objLo)
	if lo < 0 {
		return 0, 0, fmt.Errorf("rvaq: clip %d has negative score %v; the bound maintenance requires non-negative scores", cid, lo)
	}
	if it.plan == nil {
		return lo, lo, nil
	}
	return lo, it.fns.G.CombineClip(actHi, objHi), nil
}

// absentHi upper-bounds the true score of a clip absent from every
// table: zero on a dense repository, the slack-only combination on a
// planned one (the clip's unsampled units may hide score mass the
// tables never saw).
func (it *tbClip) absentHi(cid int32) float64 {
	if it.plan == nil {
		return 0
	}
	act := 1.0
	if it.act != nil {
		act = it.plan.ShotSlack(cid)
	}
	objs := make([]float64, len(it.objs))
	for i := range objs {
		objs[i] = it.plan.FrameSlack(cid)
	}
	hi := it.fns.G.CombineClip(act, objs)
	if it.discount != nil {
		hi *= it.discount(cid)
	}
	return hi
}

// Known returns the exact score of cid if it has been computed.
func (it *tbClip) Known(cid int32) (float64, bool) {
	s, ok := it.scores[cid]
	return s, ok
}
