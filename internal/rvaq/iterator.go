package rvaq

import (
	"fmt"

	"vaq/internal/score"
	"vaq/internal/tables"
	"vaq/internal/trace"
)

// tbClip is the TBClip iterator of §4.4 (Algorithm 5). Each Step
// performs one round of sorted access in parallel over all query tables
// from the top and (symmetrically) from the bottom, fully scores every
// newly seen, non-skipped clip via random accesses, and maintains the
// frontier bounds:
//
//   - τtop = g over the tables' current top-frontier scores: an upper
//     bound on the score of every clip never yet seen/scored, and
//   - τbtm = g over the bottom-frontier scores: the matching lower
//     bound.
//
// (Every unseen clip sits, in each table, strictly between the two
// frontiers, so g's monotonicity gives both bounds; clips of P_q appear
// in every query table because a positive clip indicator implies a
// positive clip score.)
//
// The iterator also reports c_top / c_btm — the highest- and lowest-
// scoring clips among those scored and not yet consumed — matching
// Algorithm 5's return values.
type tbClip struct {
	act     tables.Table   // nil when the query has no action predicate
	objs    []tables.Table // object tables in query order
	fns     score.Functions
	counter *tables.AccessCounter
	skip    func(cid int32) bool // shared skip predicate (C_skip, §4.3)

	stampTop, stampBtm int
	frontTop, frontBtm []float64 // per-table frontier scores (act first if present)

	scores map[int32]float64 // exact clip scores, by random access
	// discount, when non-nil, maps a clip to a multiplicative factor in
	// (0, 1] applied to its raw score before memoization — RVAQ arms it
	// for degraded clips. The cache (and hence every bound and result)
	// holds effective scores.
	discount func(cid int32) float64
	// onScored is invoked exactly once per clip when its exact score
	// becomes known (RVAQ attributes it to the clip's sequence).
	onScored func(cid int32, s float64)
	// cacheHits, when set by a traced run, counts scoreAndRecord calls
	// answered from the exact-score cache (nil-safe).
	cacheHits *trace.Counter
}

func newTBClip(act tables.Table, objs []tables.Table, fns score.Functions, counter *tables.AccessCounter, skip func(int32) bool, onScored func(int32, float64)) *tbClip {
	nt := len(objs)
	if act != nil {
		nt++
	}
	it := &tbClip{
		act: act, objs: objs, fns: fns, counter: counter, skip: skip,
		frontTop: make([]float64, nt),
		frontBtm: make([]float64, nt),
		scores:   map[int32]float64{},
		onScored: onScored,
	}
	return it
}

// allTables yields the tables in canonical order: action first (if any),
// then objects.
func (it *tbClip) allTables() []tables.Table {
	out := make([]tables.Table, 0, len(it.objs)+1)
	if it.act != nil {
		out = append(out, it.act)
	}
	return append(out, it.objs...)
}

// Exhausted reports whether both passes have consumed every row of every
// table (all clips with any non-zero score are scored).
func (it *tbClip) Exhausted() bool {
	for _, t := range it.allTables() {
		if it.stampTop+it.stampBtm < t.Len() {
			return false
		}
	}
	return true
}

// Step advances both passes by one row per table and returns the current
// frontier bounds. Newly seen clips that are not skipped are scored
// exactly (random access to every query table).
func (it *tbClip) Step() (tauTop, tauBtm float64, err error) {
	ts := it.allTables()
	// Top pass.
	for i, t := range ts {
		if it.stampTop < t.Len() && it.stampTop+it.stampBtm < t.Len() {
			row, err := t.SortedRow(it.stampTop, it.counter)
			if err != nil {
				return 0, 0, err
			}
			it.frontTop[i] = row.Score
			if err := it.observe(row.CID); err != nil {
				return 0, 0, err
			}
		} else {
			it.frontTop[i] = 0 // table exhausted: every remaining clip is absent from it
		}
	}
	// Bottom pass.
	for i, t := range ts {
		if it.stampBtm < t.Len() && it.stampTop+it.stampBtm < t.Len() {
			row, err := t.ReverseRow(it.stampBtm, it.counter)
			if err != nil {
				return 0, 0, err
			}
			it.frontBtm[i] = row.Score
			if err := it.observe(row.CID); err != nil {
				return 0, 0, err
			}
		} else {
			it.frontBtm[i] = 0
		}
	}
	it.stampTop++
	it.stampBtm++
	return it.tau(it.frontTop), it.tau(it.frontBtm), nil
}

// tau combines per-table frontier scores with g. Queries without an
// action predicate evaluate g with a neutral action score of 1 (the
// multiplicative identity of the default scheme), consistently with
// ScoreClip.
func (it *tbClip) tau(front []float64) float64 {
	i := 0
	actScore := 1.0
	if it.act != nil {
		actScore = front[0]
		i = 1
	}
	return it.fns.G.CombineClip(actScore, front[i:])
}

// observe fully scores a newly seen clip unless it is skipped or already
// known.
func (it *tbClip) observe(cid int32) error {
	if it.skip(cid) {
		return nil
	}
	_, err := it.scoreAndRecord(cid)
	return err
}

// scoreAndRecord is the single gateway to the exact-score cache: it
// returns cid's score, computing, memoizing and announcing it (through
// onScored) on first use. Repeated calls never touch the tables again,
// so Stats.Accesses counts each random access exactly once per clip no
// matter how callers interleave.
func (it *tbClip) scoreAndRecord(cid int32) (float64, error) {
	if s, known := it.scores[cid]; known {
		it.cacheHits.Add(1)
		return s, nil
	}
	s, err := it.ScoreClip(cid)
	if err != nil {
		return 0, err
	}
	if it.discount != nil {
		s *= it.discount(cid)
	}
	it.scores[cid] = s
	if it.onScored != nil {
		it.onScored(cid, s)
	}
	return s, nil
}

// ScoreClip computes the exact clip score S_q^(c) (Equation 9) with one
// random access per query table.
func (it *tbClip) ScoreClip(cid int32) (float64, error) {
	actScore := 1.0 // neutral when the query has no action predicate
	if it.act != nil {
		s, _, err := it.act.RandomGet(cid, it.counter)
		if err != nil {
			return 0, err
		}
		actScore = s
	}
	objScores := make([]float64, len(it.objs))
	for i, t := range it.objs {
		s, _, err := t.RandomGet(cid, it.counter)
		if err != nil {
			return 0, err
		}
		objScores[i] = s
	}
	s := it.fns.G.CombineClip(actScore, objScores)
	if s < 0 {
		return 0, fmt.Errorf("rvaq: clip %d has negative score %v; the bound maintenance requires non-negative scores", cid, s)
	}
	return s, nil
}

// Known returns the exact score of cid if it has been computed.
func (it *tbClip) Known(cid int32) (float64, bool) {
	s, ok := it.scores[cid]
	return s, ok
}
