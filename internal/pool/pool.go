// Package pool provides the bounded-parallelism execution layer shared
// by the serving daemon's online sessions and the offline query paths:
// a context-aware counting semaphore. One Pool per process boundary
// (e.g. the daemon's -workers flag) makes online clip evaluations and
// offline per-video RVAQ runs compete for the same bounded concurrency
// instead of oversubscribing the machine.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"vaq/internal/trace"
)

// Acquire failures distinguish *why* the caller never got a slot: a
// queue wait that outlived the caller's deadline is the pool's fault
// (overload — the admission controller sheds on these), while a caller
// that went away mid-wait is not. Both wrap the underlying context
// error, so errors.Is(err, context.DeadlineExceeded) etc. keep working.
var (
	// ErrQueueTimeout — the wait for a slot exceeded the deadline.
	ErrQueueTimeout = errors.New("pool: queue wait exceeded deadline")
	// ErrQueueCancelled — the caller was cancelled while queued.
	ErrQueueCancelled = errors.New("pool: caller cancelled while queued")
)

// Pool is a counting semaphore with context-aware acquisition. The zero
// value is not usable; build with New.
type Pool struct {
	slots    chan struct{}
	waiting  atomic.Int64
	observer atomic.Value // func(time.Duration), set via SetObserver
}

// New sizes a pool. Non-positive n falls back to runtime.GOMAXPROCS(0).
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{slots: make(chan struct{}, n)}
}

// Cap returns the pool's slot count.
func (p *Pool) Cap() int { return cap(p.slots) }

// InUse returns the number of slots currently held.
func (p *Pool) InUse() int { return len(p.slots) }

// Waiting returns the number of callers currently blocked in Acquire —
// the queue depth an admission controller watches.
func (p *Pool) Waiting() int { return int(p.waiting.Load()) }

// SetObserver installs a callback receiving every Acquire's wait time
// (successful or not); the serving daemon feeds its load-shedding
// window from it. Safe to call concurrently; nil clears nothing —
// install a no-op instead.
func (p *Pool) SetObserver(fn func(wait time.Duration)) {
	if fn != nil {
		p.observer.Store(fn)
	}
}

// wrapAcquireErr classifies a context failure during acquisition.
func wrapAcquireErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrQueueTimeout, err)
	}
	return fmt.Errorf("%w: %w", ErrQueueCancelled, err)
}

// Acquire blocks until a slot is free or ctx is done, in which case it
// returns ErrQueueTimeout or ErrQueueCancelled (wrapping ctx's error)
// without holding a slot. A nil ctx never gives up. When ctx carries a
// tracer, the time spent waiting is recorded in the "pool.wait" stage
// sketch (including cancelled waits).
func (p *Pool) Acquire(ctx context.Context) error {
	if ctx == nil {
		p.slots <- struct{}{}
		return nil
	}
	start := time.Now()
	st := trace.FromContext(ctx).Stage("pool.wait")
	defer func() {
		waited := time.Since(start)
		st.Observe(waited)
		if fn, ok := p.observer.Load().(func(time.Duration)); ok {
			fn(waited)
		}
	}()
	// Prefer the cancellation signal when both are ready, so a cancelled
	// caller never grabs a slot it would release unused.
	if err := ctx.Err(); err != nil {
		return wrapAcquireErr(err)
	}
	p.waiting.Add(1)
	defer p.waiting.Add(-1)
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return wrapAcquireErr(ctx.Err())
	}
}

// TryAcquire takes a slot if one is immediately free.
func (p *Pool) TryAcquire() bool {
	select {
	case p.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by Acquire or TryAcquire.
func (p *Pool) Release() {
	select {
	case <-p.slots:
	default:
		panic("pool: Release without Acquire")
	}
}

// Do runs f while holding a slot; it propagates the acquisition error
// when ctx expires first.
func (p *Pool) Do(ctx context.Context, f func() error) error {
	if err := p.Acquire(ctx); err != nil {
		return err
	}
	defer p.Release()
	return f()
}
