// Package pool provides the bounded-parallelism execution layer shared
// by the serving daemon's online sessions and the offline query paths:
// a context-aware counting semaphore. One Pool per process boundary
// (e.g. the daemon's -workers flag) makes online clip evaluations and
// offline per-video RVAQ runs compete for the same bounded concurrency
// instead of oversubscribing the machine.
package pool

import (
	"context"
	"runtime"
	"time"

	"vaq/internal/trace"
)

// Pool is a counting semaphore with context-aware acquisition. The zero
// value is not usable; build with New.
type Pool struct {
	slots chan struct{}
}

// New sizes a pool. Non-positive n falls back to runtime.GOMAXPROCS(0).
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{slots: make(chan struct{}, n)}
}

// Cap returns the pool's slot count.
func (p *Pool) Cap() int { return cap(p.slots) }

// InUse returns the number of slots currently held.
func (p *Pool) InUse() int { return len(p.slots) }

// Acquire blocks until a slot is free or ctx is done, in which case it
// returns ctx's error without holding a slot. A nil ctx never gives up.
// When ctx carries a tracer, the time spent waiting is recorded in the
// "pool.wait" stage sketch (including cancelled waits).
func (p *Pool) Acquire(ctx context.Context) error {
	if ctx == nil {
		p.slots <- struct{}{}
		return nil
	}
	if st := trace.FromContext(ctx).Stage("pool.wait"); st != nil {
		start := time.Now()
		defer func() { st.Observe(time.Since(start)) }()
	}
	// Prefer the cancellation signal when both are ready, so a cancelled
	// caller never grabs a slot it would release unused.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot if one is immediately free.
func (p *Pool) TryAcquire() bool {
	select {
	case p.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by Acquire or TryAcquire.
func (p *Pool) Release() {
	select {
	case <-p.slots:
	default:
		panic("pool: Release without Acquire")
	}
}

// Do runs f while holding a slot; it propagates the acquisition error
// when ctx expires first.
func (p *Pool) Do(ctx context.Context, f func() error) error {
	if err := p.Acquire(ctx); err != nil {
		return err
	}
	defer p.Release()
	return f()
}
