package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCapDefaults(t *testing.T) {
	if got := New(0).Cap(); got <= 0 {
		t.Fatalf("New(0).Cap() = %d, want > 0", got)
	}
	if got := New(3).Cap(); got != 3 {
		t.Fatalf("New(3).Cap() = %d, want 3", got)
	}
}

func TestBoundsConcurrency(t *testing.T) {
	const slots, tasks = 3, 32
	p := New(slots)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			defer p.Release()
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > slots {
		t.Fatalf("peak concurrency %d exceeds pool cap %d", got, slots)
	}
	if p.InUse() != 0 {
		t.Fatalf("%d slots leaked", p.InUse())
	}
}

func TestAcquireHonoursCancellation(t *testing.T) {
	p := New(1)
	if !p.TryAcquire() {
		t.Fatal("TryAcquire on an empty pool failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Acquire(ctx); err == nil {
		t.Fatal("Acquire with a cancelled context succeeded")
	}
	// The failed Acquire must not have consumed the waiting slot.
	p.Release()
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.Release()
}

func TestAcquireUnblocksOnCancel(t *testing.T) {
	p := New(1)
	if err := p.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- p.Acquire(ctx) }()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Acquire = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire did not unblock on cancellation")
	}
	p.Release()
}

// TestAcquireErrorClassification is the satellite's contract: callers
// can tell a queue timeout (overload — shed) from a client that went
// away (not overload), while errors.Is on the raw context errors keeps
// working.
func TestAcquireErrorClassification(t *testing.T) {
	p := New(1)
	if !p.TryAcquire() {
		t.Fatal("TryAcquire failed on empty pool")
	}
	defer p.Release()

	// Queue timeout: the wait outlives the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := p.Acquire(ctx)
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("deadline wait: err = %v, want ErrQueueTimeout", err)
	}
	if errors.Is(err, ErrQueueCancelled) {
		t.Fatalf("deadline wait misclassified as cancelled: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ErrQueueTimeout does not wrap DeadlineExceeded: %v", err)
	}

	// Client cancel: the caller goes away mid-wait.
	cctx, ccancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- p.Acquire(cctx) }()
	time.Sleep(5 * time.Millisecond)
	ccancel()
	err = <-errc
	if !errors.Is(err, ErrQueueCancelled) {
		t.Fatalf("cancelled wait: err = %v, want ErrQueueCancelled", err)
	}
	if errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("cancelled wait misclassified as timeout: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ErrQueueCancelled does not wrap Canceled: %v", err)
	}
}

func TestWaitingGaugeAndObserver(t *testing.T) {
	p := New(1)
	if p.Waiting() != 0 {
		t.Fatalf("idle pool Waiting() = %d", p.Waiting())
	}
	var observed atomic.Int64
	p.SetObserver(func(time.Duration) { observed.Add(1) })

	if !p.TryAcquire() {
		t.Fatal("TryAcquire failed")
	}
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		done <- p.Acquire(context.Background())
	}()
	<-started
	deadline := time.Now().Add(2 * time.Second)
	for p.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("Waiting() never reached 1 (got %d)", p.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	p.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	p.Release()
	if p.Waiting() != 0 {
		t.Fatalf("Waiting() = %d after drain", p.Waiting())
	}
	if observed.Load() == 0 {
		t.Fatal("observer saw no acquisitions")
	}
}

func TestDoReleasesOnError(t *testing.T) {
	p := New(1)
	wantErr := context.DeadlineExceeded
	if err := p.Do(context.Background(), func() error { return wantErr }); err != wantErr {
		t.Fatalf("Do = %v, want %v", err, wantErr)
	}
	if p.InUse() != 0 {
		t.Fatal("Do leaked its slot on error")
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release on an idle pool did not panic")
		}
	}()
	New(1).Release()
}
