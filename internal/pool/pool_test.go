package pool

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCapDefaults(t *testing.T) {
	if got := New(0).Cap(); got <= 0 {
		t.Fatalf("New(0).Cap() = %d, want > 0", got)
	}
	if got := New(3).Cap(); got != 3 {
		t.Fatalf("New(3).Cap() = %d, want 3", got)
	}
}

func TestBoundsConcurrency(t *testing.T) {
	const slots, tasks = 3, 32
	p := New(slots)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			defer p.Release()
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > slots {
		t.Fatalf("peak concurrency %d exceeds pool cap %d", got, slots)
	}
	if p.InUse() != 0 {
		t.Fatalf("%d slots leaked", p.InUse())
	}
}

func TestAcquireHonoursCancellation(t *testing.T) {
	p := New(1)
	if !p.TryAcquire() {
		t.Fatal("TryAcquire on an empty pool failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Acquire(ctx); err == nil {
		t.Fatal("Acquire with a cancelled context succeeded")
	}
	// The failed Acquire must not have consumed the waiting slot.
	p.Release()
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.Release()
}

func TestAcquireUnblocksOnCancel(t *testing.T) {
	p := New(1)
	if err := p.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- p.Acquire(ctx) }()
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("Acquire = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire did not unblock on cancellation")
	}
	p.Release()
}

func TestDoReleasesOnError(t *testing.T) {
	p := New(1)
	wantErr := context.DeadlineExceeded
	if err := p.Do(context.Background(), func() error { return wantErr }); err != wantErr {
		t.Fatalf("Do = %v, want %v", err, wantErr)
	}
	if p.InUse() != 0 {
		t.Fatal("Do leaked its slot on error")
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release on an idle pool did not panic")
		}
	}()
	New(1).Release()
}
