package plan

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func TestEnabled(t *testing.T) {
	for rate, want := range map[int]bool{0: false, 1: true, 2: true, 8: true} {
		if got := (Config{Rate: rate}).Enabled(); got != want {
			t.Errorf("Rate %d: Enabled() = %v, want %v", rate, got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := []Config{
		{},
		{Rate: 1},
		{Rate: 8, Levels: 2},
		{Rate: 4, Margin: 1, Tail: 0.5, MinSample: 1, Power: 0.5},
		{Rate: 4, Margin: 3.5, Tail: 1e-6, MinSample: 100, Power: 0.999},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{Rate: -1},
		{Levels: -1},
		{Margin: 0.5},
		{Margin: -1},
		{Tail: 1},
		{Tail: -0.1},
		{MinSample: -1},
		{Power: 1},
		{Power: -0.5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestStrides(t *testing.T) {
	cases := []struct {
		cfg  Config
		want []int
	}{
		{Config{}, []int{1}},
		{Config{Rate: 1}, []int{1}},
		{Config{Rate: 2}, []int{2, 1}},
		{Config{Rate: 8}, []int{8, 4, 2, 1}},
		// Non-power-of-two rates land on 1 via integer halving plus the
		// explicit final dense rung.
		{Config{Rate: 6}, []int{6, 3, 1}},
		{Config{Rate: 5}, []int{5, 2, 1}},
		// Levels truncates the ladder, base rung included.
		{Config{Rate: 8, Levels: 2}, []int{8, 4}},
		{Config{Rate: 8, Levels: 10}, []int{8, 4, 2, 1}},
	}
	for _, c := range cases {
		if got := c.cfg.Strides(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Strides(%+v) = %v, want %v", c.cfg, got, c.want)
		}
	}
}

// TestOffsetsPartition checks the core invariant behind the planner's
// exactness: over a full ladder the per-rung offsets are disjoint,
// ascending, and together cover every unit of [0, w) exactly once.
func TestOffsetsPartition(t *testing.T) {
	for _, rate := range []int{1, 2, 3, 5, 8, 16} {
		for _, w := range []int{1, 2, 5, 7, 16, 50, 101} {
			strides := Config{Rate: rate}.Strides()
			seen := make([]int, w)
			for r := range strides {
				offs := Offsets(w, strides, r)
				for i, u := range offs {
					if u < 0 || u >= w {
						t.Fatalf("rate %d w %d rung %d: offset %d outside [0, %d)", rate, w, r, u, w)
					}
					if i > 0 && offs[i-1] >= u {
						t.Fatalf("rate %d w %d rung %d: offsets not ascending: %v", rate, w, r, offs)
					}
					seen[u]++
				}
			}
			for u, n := range seen {
				if n != 1 {
					t.Fatalf("rate %d w %d: unit %d sampled %d times", rate, w, u, n)
				}
			}
		}
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{Accept: "accept", Prune: "prune", Undecided: "undecided", Decision(42): "undecided"} {
		if got := d.String(); got != want {
			t.Errorf("Decision(%d).String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestDecideSoundRules(t *testing.T) {
	var c Config
	// Rule 1: count already clears k, no matter how sparse the sample.
	if got := c.Decide(100, 3, 5, 5, 0.01); got != Accept {
		t.Errorf("rule 1: got %v, want accept", got)
	}
	// Rule 2: even all-positive remaining units cannot reach k.
	if got := c.Decide(100, 98, 0, 3, 0.01); got != Prune {
		t.Errorf("rule 2: got %v, want prune", got)
	}
	// Full density always decides, regardless of the statistical knobs.
	if got := c.Decide(50, 50, 10, 10, 0.5); got != Accept {
		t.Errorf("dense accept: got %v, want accept", got)
	}
	if got := c.Decide(50, 50, 9, 10, 0.5); got != Prune {
		t.Errorf("dense prune: got %v, want prune", got)
	}
}

func TestDecideMinSampleGate(t *testing.T) {
	var c Config
	// Below DefaultMinSample the statistical rules stay silent even on a
	// sample that would otherwise extrapolate far past k.
	if got := c.Decide(1000, 4, 3, 10, 1e-4); got != Undecided {
		t.Errorf("below MinSample: got %v, want undecided", got)
	}
	// An explicit MinSample of 1 re-enables them at the same sample.
	c1 := Config{MinSample: 1}
	if got := c1.Decide(1000, 4, 3, 10, 1e-4); got == Undecided {
		t.Errorf("MinSample 1: statistical rules still gated")
	}
}

func TestDecideScaledAccept(t *testing.T) {
	var c Config
	// 30 positives in 100 samples over w=1000 with k=50: extrapolation
	// 300 >= Margin*k = 100 and the sample is wildly inconsistent with
	// the critical density 0.05 (mean 5, observed 30).
	if got := c.Decide(1000, 100, 30, 50, 1e-4); got != Accept {
		t.Errorf("scaled accept: got %v, want accept", got)
	}
	// Significance gate: a single positive in 10 samples extrapolates to
	// 100 >= Margin*k = 4, but P(X>=1 | n=10, p=k/w=0.002) ~ 0.02 > Tail,
	// so a lone detector false positive must NOT accept the clip.
	if got := c.Decide(1000, 10, 1, 2, 1e-5); got == Accept {
		t.Errorf("significance gate: lone positive accepted")
	}
}

func TestDecideBackgroundPrune(t *testing.T) {
	var c Config
	// Zero positives in 250 samples, k=10, background 1e-4: the power
	// gate holds (a critical-density clip would beat 0 with prob ~0.92),
	// the sample looks like background, and 750 remaining background
	// units cannot plausibly produce 10 events.
	if got := c.Decide(1000, 250, 0, 10, 1e-4); got != Prune {
		t.Errorf("background prune: got %v, want prune", got)
	}
	// Power gate: the same zero count on only 100 samples is still
	// consistent with a critical-density clip (P(X>=1) ~ 0.63 < 1-Power),
	// so the rung must densify instead of pruning.
	if got := c.Decide(1000, 100, 0, 10, 1e-4); got != Undecided {
		t.Errorf("power gate: got %v, want undecided", got)
	}
	// Background-consistency gate: 3 positives in 900 samples are
	// significant against p=1e-5 (the sample does NOT look like
	// background), so the clip must not be pruned by a background model
	// that does not describe it.
	if got := c.Decide(1000, 900, 3, 10, 1e-5); got == Prune {
		t.Errorf("background-consistency gate: significant sample pruned")
	}
}

func TestDecideZeroBackground(t *testing.T) {
	// p = 0 must not panic and must still prune a zero-count sample with
	// enough power.
	var c Config
	if got := c.Decide(1000, 250, 0, 10, 0); got != Prune {
		t.Errorf("p=0 prune: got %v, want prune", got)
	}
}

// probe records the unit-evaluation order so tests can pin the exact
// access pattern.
type probe struct {
	pos   func(u int) bool
	order []int
}

func (p *probe) eval(u int) (bool, error) {
	p.order = append(p.order, u)
	return p.pos(u), nil
}

func ident(w int) []int {
	out := make([]int, w)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestEvaluateRejectsBadWindow(t *testing.T) {
	_, err := Config{Rate: 4}.Evaluate(0, 1, 0.1, func(int) (bool, error) { return false, nil })
	if err == nil {
		t.Fatal("w=0 accepted")
	}
}

func TestEvaluatePropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Config{Rate: 4}.Evaluate(100, 3, 1e-4, func(int) (bool, error) { return false, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestEvaluateSmallWindowDense pins the optional-stopping fix: windows
// no longer than MinSample are evaluated densely in order, with no
// early stopping, so the run the caller feeds the background estimator
// is byte-identical to the dense path.
func TestEvaluateSmallWindowDense(t *testing.T) {
	p := &probe{pos: func(u int) bool { return u == 0 }}
	res, err := Config{Rate: 8}.Evaluate(5, 2, 0.01, p.eval)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.order, ident(5)) {
		t.Errorf("small window order = %v, want 0..4 dense", p.order)
	}
	if res.Positive || !res.Exact || res.Sampled != 5 || res.Count != 1 {
		t.Errorf("small window result = %+v, want exact negative with 5 sampled, 1 positive", res)
	}
}

func TestEvaluateRateOneIsDense(t *testing.T) {
	p := &probe{pos: func(u int) bool { return u%7 == 0 }}
	res, err := Config{Rate: 1}.Evaluate(50, 100, 1e-4, p.eval)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.order, ident(50)) {
		t.Errorf("rate-1 order = %v, want 0..49 dense", p.order)
	}
	if res.Positive || !res.Exact || res.Sampled != 50 {
		t.Errorf("rate-1 result = %+v", res)
	}
}

func TestEvaluateSoundAcceptStopsEarly(t *testing.T) {
	p := &probe{pos: func(u int) bool { return true }}
	res, err := Config{Rate: 4}.Evaluate(100, 3, 1e-4, p.eval)
	if err != nil {
		t.Fatal(err)
	}
	// The base rung samples units 0,4,...,96; rule 1 fires at its end.
	if res.Rungs != 1 || res.Sampled != 25 || !res.Positive || !res.Exact {
		t.Errorf("result = %+v, want exact accept after the 25-unit base rung", res)
	}
	if len(p.order) != 25 || p.order[0] != 0 || p.order[24] != 96 {
		t.Errorf("order = %v, want the stride-4 lattice", p.order)
	}
}

func TestEvaluateStatisticalPrune(t *testing.T) {
	p := &probe{pos: func(u int) bool { return false }}
	res, err := Config{Rate: 4}.Evaluate(1000, 10, 1e-4, p.eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Positive || res.Exact || res.Sampled != 250 || res.Rungs != 1 {
		t.Errorf("result = %+v, want statistical prune after the 250-unit base rung", res)
	}
}

func TestEvaluateDensifiesToExact(t *testing.T) {
	// 12 positives clustered at the window start, k=13: no sparse rung
	// can decide, the ladder must reach full density and settle exactly.
	p := &probe{pos: func(u int) bool { return u < 12 }}
	res, err := Config{Rate: 4}.Evaluate(100, 13, 0.05, p.eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Positive || !res.Exact || res.Sampled != 100 {
		t.Errorf("result = %+v, want exact dense negative", res)
	}
	if len(p.order) != 100 {
		t.Errorf("sampled %d units, want all 100", len(p.order))
	}
}

func TestEvaluateTruncatedLadderFinalizes(t *testing.T) {
	// One rung only: 10 positives in the base rung's 25 samples with
	// k=30 decide nothing, so the truncated ladder extrapolates
	// 10*100/25 = 40 >= 30 and reports an inexact positive.
	p := &probe{pos: func(u int) bool { return u < 40 }}
	res, err := Config{Rate: 4, Levels: 1}.Evaluate(100, 30, 0.3, p.eval)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Positive || res.Exact || res.Sampled != 25 || res.Rungs != 1 {
		t.Errorf("result = %+v, want extrapolated positive from the truncated ladder", res)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	pos := func(u int) bool { return u%13 == 0 || u == 77 }
	run := func() (Result, []int) {
		p := &probe{pos: pos}
		res, err := Config{Rate: 8}.Evaluate(200, 9, 1e-3, p.eval)
		if err != nil {
			t.Fatal(err)
		}
		return res, p.order
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1 != r2 || !reflect.DeepEqual(o1, o2) {
		t.Errorf("repeat run diverged: %+v %v vs %+v %v", r1, o1, r2, o2)
	}
}

// TestEvaluateMatchesDense is the planner's metamorphic core: for a
// grid of windows, rates and positive layouts, full-ladder planning
// must reach the dense indicator exactly whenever it decides by a
// sound rule, and every rate-1 run must equal the dense scan in both
// indicator and access order.
func TestEvaluateMatchesDense(t *testing.T) {
	layouts := []func(u int) bool{
		func(u int) bool { return false },
		func(u int) bool { return true },
		func(u int) bool { return u%9 == 0 },
		func(u int) bool { return u < 5 },
		func(u int) bool { return u >= 45 },
	}
	for li, pos := range layouts {
		for _, w := range []int{50, 101} {
			for _, k := range []int{1, 3, 10} {
				dense := 0
				for u := 0; u < w; u++ {
					if pos(u) {
						dense++
					}
				}
				want := dense >= k
				for _, rate := range []int{1, 2, 8} {
					p := &probe{pos: pos}
					res, err := Config{Rate: rate}.Evaluate(w, k, 1e-4, p.eval)
					if err != nil {
						t.Fatal(err)
					}
					if res.Exact && res.Positive != want {
						t.Errorf("layout %d w=%d k=%d rate=%d: exact decision %v, dense %v", li, w, k, rate, res.Positive, want)
					}
					if rate == 1 {
						if res.Positive != want || !reflect.DeepEqual(p.order, ident(w)) {
							t.Errorf("layout %d w=%d k=%d: rate-1 not byte-identical to dense", li, w, k)
						}
					}
				}
			}
		}
	}
}

func TestFinalize(t *testing.T) {
	cases := []struct {
		w, sampled, count, k int
		want                 bool
	}{
		{100, 25, 10, 30, true},  // 40 extrapolated >= 30
		{100, 25, 7, 30, false},  // 28 extrapolated < 30
		{100, 100, 30, 30, true}, // dense boundary
		{100, 100, 29, 30, false},
	}
	for _, c := range cases {
		if got := Finalize(c.w, c.sampled, c.count, c.k); got != c.want {
			t.Errorf("Finalize(%d, %d, %d, %d) = %v, want %v", c.w, c.sampled, c.count, c.k, got, c.want)
		}
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.Observe(100, Result{Positive: true, Sampled: 25})
	s.Observe(100, Result{Positive: false, Sampled: 25})
	s.Observe(100, Result{Positive: true, Sampled: 100})
	if s.Clips != 3 || s.Accepted != 1 || s.Pruned != 1 || s.Densified != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Units != 150 || s.UnitsDense != 300 {
		t.Errorf("units = %d/%d, want 150/300", s.Units, s.UnitsDense)
	}
	if got := s.Savings(); got != 2 {
		t.Errorf("Savings() = %v, want 2", got)
	}

	var o Stats
	o.Observe(50, Result{Positive: false, Sampled: 10})
	s.Add(o)
	if s.Clips != 4 || s.Pruned != 2 || s.Units != 160 || s.UnitsDense != 350 {
		t.Errorf("after Add: %+v", s)
	}

	if got := (Stats{}).Savings(); got != 1 {
		t.Errorf("empty Savings() = %v, want 1", got)
	}
}

func ExampleConfig_Strides() {
	fmt.Println(Config{Rate: 8}.Strides())
	fmt.Println(Config{Rate: 8, Levels: 2}.Strides())
	// Output:
	// [8 4 2 1]
	// [8 4]
}
