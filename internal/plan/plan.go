// Package plan implements a coarse-to-fine adaptive sampling planner
// in the style of MIRIS: instead of invoking the models on every
// occurrence unit (frame or shot) of a clip, a predicate is first
// evaluated on a sparse subsample (1 unit in Rate), and the clip is
// accepted or pruned as soon as the scan-statistic critical value
// k_crit — the uncertainty signal the engines already maintain — makes
// the remaining units irrelevant. Only undecided clips are recursively
// densified, rung by rung, until the full density settles the
// indicator exactly.
//
// Four decision rules run at the end of every rung, on a window of w
// units of which m were sampled and c scored positive:
//
//  1. sound accept: c ≥ k. The true count only grows with more
//     samples, so the indicator (count ≥ k_crit) is already certain.
//  2. sound prune: c + (w − m) < k. Even if every unsampled unit were
//     positive the window could not reach k.
//  3. scaled-k_crit accept: ĉ = c·w/m ≥ Margin·k, AND the sample is
//     statistically inconsistent with every sub-critical density:
//     P(X ≥ c) ≤ Tail for X ~ Binomial(m, k/w). The extrapolation
//     clears the critical value with a safety margin and the
//     significance gate keeps a couple of detector false positives on
//     a sparse rung from extrapolating past it.
//  4. background-tail prune, requiring three things at once: the
//     power gate — a clip at exactly the critical density k/w would
//     have shown more than c positives with probability ≥ 1 − Power,
//     so an unlucky sparse lattice over a marginal true clip cannot
//     trigger a prune; the sampled units look like background —
//     P(X ≥ c) > Tail for X ~ Binomial(m, p); and background could
//     not plausibly fill the gap — P(X ≥ k − c) ≤ Tail for
//     X ~ Binomial(w − m, p), with p the predicate's background
//     probability.
//
// The statistical rules (3–4) only fire on samples of at least
// MinSample units, and windows no longer than MinSample units are
// evaluated densely outright: early stopping on a handful of units
// saves almost nothing and correlates run length with clip content,
// which would feed the dynamic background estimator an
// optional-stopping-biased sample (see Evaluate).
//
// Rules 1–2 keep the planner exact in the limit: the final rung is
// fully dense (stride 1), where rule 1 or rule 2 always fires, so an
// undecided clip ends with precisely the dense indicator. A planner
// with Rate ≤ 1 runs that single dense rung and is byte-identical to
// the unplanned path. See docs/PLANNER.md for the soundness argument
// and tuning guidance.
package plan

import (
	"fmt"

	"vaq/internal/scanstat"
)

// Default statistical-rule parameters (see Config).
const (
	DefaultMargin    = 2.0
	DefaultTail      = 1e-3
	DefaultMinSample = 8
	DefaultPower     = 0.1
)

// Config parameterizes the planner. The zero value disables planning
// (dense evaluation).
type Config struct {
	// Rate is the base sampling stride: the first rung evaluates one
	// unit in Rate. 0 disables planning entirely; 1 arms the planner
	// machinery with the single dense rung (byte-identical to the
	// unplanned path — the metamorphic check of choice).
	Rate int
	// Levels caps the densification ladder length, base rung included.
	// 0 means the full ladder (Rate, Rate/2, …, 1); a truncated ladder
	// never reaches full density and settles still-undecided clips by
	// density extrapolation (ĉ ≥ k), trading exactness for a hard cost
	// ceiling.
	Levels int
	// Margin is the safety factor of the scaled-k_crit accept (rule 3);
	// must be ≥ 1 when set, 0 means DefaultMargin.
	Margin float64
	// Tail is the significance level of the background-tail prune
	// (rule 4); must be in [0, 1) when set, 0 means DefaultTail.
	Tail float64
	// MinSample is the smallest sample on which the statistical rules
	// (3–4) may decide; rungs with fewer evaluated units can only decide
	// soundly, otherwise they densify. Binomial reasoning on one or two
	// units is noise — a short window at a high rate would otherwise be
	// settled by a couple of detector outputs. 0 means DefaultMinSample;
	// negative values are rejected (the sound rules ignore this knob, so
	// MinSample 1 effectively disables it).
	MinSample int
	// Power is the false-negative risk of the background-tail prune's
	// power gate: a rung may prune only once the sample is large enough
	// that a clip sitting at the critical density k/w would, with
	// probability ≥ 1 − Power, have shown more positives than observed.
	// Short windows (a clip's shots) never reach that power before the
	// dense rung, so they settle exactly — which is what keeps marginal
	// true clips from being pruned on an unlucky sparse sample. Must be
	// in (0, 1) when set; 0 means DefaultPower.
	Power float64
}

// Enabled reports whether the planner is armed. Rate 1 counts as
// enabled — the ladder is the single dense rung, so results are
// byte-identical to the unplanned path while still exercising the
// planner machinery.
func (c Config) Enabled() bool { return c.Rate >= 1 }

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Rate < 0 {
		return fmt.Errorf("plan: Rate must be non-negative, got %d", c.Rate)
	}
	if c.Levels < 0 {
		return fmt.Errorf("plan: Levels must be non-negative, got %d", c.Levels)
	}
	if c.Margin != 0 && c.Margin < 1 {
		return fmt.Errorf("plan: Margin must be >= 1 (or 0 for the default), got %v", c.Margin)
	}
	if c.Tail != 0 && !(c.Tail > 0 && c.Tail < 1) {
		return fmt.Errorf("plan: Tail must be in (0, 1) (or 0 for the default), got %v", c.Tail)
	}
	if c.MinSample < 0 {
		return fmt.Errorf("plan: MinSample must be non-negative (0 for the default), got %d", c.MinSample)
	}
	if c.Power != 0 && !(c.Power > 0 && c.Power < 1) {
		return fmt.Errorf("plan: Power must be in (0, 1) (or 0 for the default), got %v", c.Power)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Margin == 0 {
		c.Margin = DefaultMargin
	}
	if c.Tail == 0 {
		c.Tail = DefaultTail
	}
	if c.MinSample == 0 {
		c.MinSample = DefaultMinSample
	}
	if c.Power == 0 {
		c.Power = DefaultPower
	}
	return c
}

// Strides returns the densification ladder: the sampling stride of each
// rung, halving from Rate down to 1, truncated to Levels rungs when
// Levels > 0. A disabled planner has the single dense rung [1].
func (c Config) Strides() []int {
	if c.Rate <= 1 {
		return []int{1}
	}
	var out []int
	for s := c.Rate; s >= 1; s /= 2 {
		out = append(out, s)
	}
	if out[len(out)-1] != 1 {
		out = append(out, 1)
	}
	if c.Levels > 0 && len(out) > c.Levels {
		out = out[:c.Levels]
	}
	return out
}

// Offsets returns, in ascending order, the unit offsets of [0, w) newly
// sampled at rung r of the ladder: the multiples of strides[r] that no
// earlier rung already covered. Over all rungs of a full ladder the
// offsets partition [0, w).
func Offsets(w int, strides []int, r int) []int {
	var out []int
units:
	for u := 0; u < w; u++ {
		if u%strides[r] != 0 {
			continue
		}
		for _, s := range strides[:r] {
			if u%s == 0 {
				continue units
			}
		}
		out = append(out, u)
	}
	return out
}

// Decision is the outcome of one rung's decision rules.
type Decision int

const (
	// Undecided means no rule fired: densify another rung.
	Undecided Decision = iota
	// Accept decides the indicator positive.
	Accept
	// Prune decides the indicator negative.
	Prune
)

func (d Decision) String() string {
	switch d {
	case Accept:
		return "accept"
	case Prune:
		return "prune"
	default:
		return "undecided"
	}
}

// Decide reasons: which rule settled a planned evaluation. Reported in
// Result.Reason and histogrammed by the EXPLAIN profiles.
const (
	// ReasonSoundAccept / ReasonSoundPrune are the sound rules (1–2).
	ReasonSoundAccept = "sound-accept"
	ReasonSoundPrune  = "sound-prune"
	// ReasonScaledAccept is the scaled-k_crit accept (rule 3).
	ReasonScaledAccept = "scaled-accept"
	// ReasonBgTailPrune is the background-tail prune (rule 4).
	ReasonBgTailPrune = "bg-tail-prune"
	// ReasonExtrapolated marks a truncated ladder settled by density
	// extrapolation (Finalize) rather than a decision rule.
	ReasonExtrapolated = "extrapolated"
)

// Decide applies the four decision rules to one predicate window:
// w units total, sampled of them evaluated, count positive among those,
// against critical value k and background probability p. At full
// density (sampled ≥ w) the sound rules always decide.
func (c Config) Decide(w, sampled, count, k int, p float64) Decision {
	d, _ := c.decide(w, sampled, count, k, p)
	return d
}

// decide is Decide plus the reason constant naming the rule that fired
// (empty while undecided).
func (c Config) decide(w, sampled, count, k int, p float64) (Decision, string) {
	if count >= k {
		return Accept, ReasonSoundAccept // rule 1 (sound)
	}
	rest := w - sampled
	if count+rest < k {
		return Prune, ReasonSoundPrune // rule 2 (sound)
	}
	c = c.withDefaults()
	if sampled < c.MinSample {
		return Undecided, "" // statistical rules need a real sample
	}
	// Rule 3: the density extrapolation must clear the scaled critical
	// value AND the sample must be statistically inconsistent with every
	// sub-critical density (the most favourable such density is k/w):
	// without the significance gate, one or two detector false positives
	// on a sparse rung extrapolate past Margin·k and accept background.
	if float64(count)*float64(w) >= c.Margin*float64(k)*float64(sampled) &&
		scanstat.BinomTail(sampled, float64(k)/float64(w), count) <= c.Tail {
		return Accept, ReasonScaledAccept // rule 3 (scaled k_crit)
	}
	// Rule 4: prune only when three things hold. (a) Power gate: the
	// sample is statistically inconsistent with the critical density —
	// a clip at exactly k/w would have shown more than count positives
	// with probability ≥ 1 − Power, so missing all of a marginal clip's
	// events on an unlucky sparse lattice cannot trigger a prune.
	// (b) The sampled units themselves look like background (observing
	// count or more is unremarkable at rate p). (c) Background could
	// not plausibly fill the k − count gap. Without (a) and (b), a
	// boundary clip would be judged by a background model that does not
	// describe it.
	if scanstat.BinomTail(sampled, float64(k)/float64(w), count+1) >= 1-c.Power &&
		scanstat.BinomTail(sampled, p, count) > c.Tail &&
		scanstat.BinomTail(rest, p, k-count) <= c.Tail {
		return Prune, ReasonBgTailPrune // rule 4 (background tail)
	}
	return Undecided, ""
}

// Finalize settles a clip a truncated ladder left undecided: the
// density extrapolation ĉ = count·w/sampled against k, the planner's
// best estimate of the dense indicator.
func Finalize(w, sampled, count, k int) bool {
	return float64(count)*float64(w) >= float64(k)*float64(sampled)
}

// Result reports one planned predicate evaluation.
type Result struct {
	// Positive is the decided clip indicator.
	Positive bool
	// Exact marks a decision by the sound rules (1–2) — including any
	// decision at full density — as opposed to the statistical rules or
	// a truncated-ladder extrapolation.
	Exact bool
	// Sampled and Count are the units evaluated and the positives among
	// them when the decision fired.
	Sampled int
	Count   int
	// BaseSampled is the share of Sampled evaluated on the base rung —
	// the planner's sparse first look; Sampled − BaseSampled went to
	// densification. (Decisions fire only at rung boundaries, so the
	// base rung always completes and the split is exact.)
	BaseSampled int
	// Rungs is the number of ladder rungs evaluated.
	Rungs int
	// Reason names the decision rule that settled the evaluation (one
	// of the Reason* constants).
	Reason string
}

// Evaluate runs the coarse-to-fine loop for one predicate over a
// w-unit window with critical value k and background probability p,
// probing units through eval (offsets in [0, w), each at most once,
// in deterministic order). Unit evaluation stops the moment a rung's
// decision fires.
func (c Config) Evaluate(w, k int, p float64, eval func(unit int) (bool, error)) (Result, error) {
	if w <= 0 {
		return Result{}, fmt.Errorf("plan: window must be positive, got %d", w)
	}
	strides := c.Strides()
	// Windows no longer than MinSample evaluate densely: the statistical
	// rules cannot fire below MinSample units anyway, and even the sound
	// rules' early stopping is harmful on a handful of units — the run
	// length then correlates with the clip's content (zero runs stop
	// early, positive runs go deep), which feeds the dynamic background
	// estimator an optional-stopping-biased sample. The units saved on
	// such windows are negligible next to the long (object) windows.
	if w <= c.withDefaults().MinSample {
		strides = []int{1}
	}
	res := Result{}
	for r := range strides {
		for _, u := range Offsets(w, strides, r) {
			pos, err := eval(u)
			if err != nil {
				return res, err
			}
			res.Sampled++
			if pos {
				res.Count++
			}
		}
		if r == 0 {
			res.BaseSampled = res.Sampled
		}
		res.Rungs = r + 1
		d, reason := c.decide(w, res.Sampled, res.Count, k, p)
		switch d {
		case Accept:
			res.Positive = true
			res.Exact = res.Count >= k
			res.Reason = reason
			return res, nil
		case Prune:
			res.Positive = false
			res.Exact = res.Count+(w-res.Sampled) < k
			res.Reason = reason
			return res, nil
		}
	}
	// Truncated ladder exhausted while undecided: extrapolate.
	res.Positive = Finalize(w, res.Sampled, res.Count, k)
	res.Reason = ReasonExtrapolated
	return res, nil
}

// Stats accumulates planner outcomes across clips.
type Stats struct {
	// Clips counts planned predicate evaluations.
	Clips int
	// Accepted / Pruned count decisions made before full density;
	// Densified counts evaluations that ran the ladder to its last rung.
	Accepted  int
	Pruned    int
	Densified int
	// Units is the total units evaluated; UnitsDense is what a dense
	// evaluation would have cost.
	Units      int64
	UnitsDense int64
}

// Observe folds one evaluation over a w-unit window into the stats.
func (s *Stats) Observe(w int, r Result) {
	s.Clips++
	s.Units += int64(r.Sampled)
	s.UnitsDense += int64(w)
	switch {
	case r.Sampled >= w:
		s.Densified++
	case r.Positive:
		s.Accepted++
	default:
		s.Pruned++
	}
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Clips += o.Clips
	s.Accepted += o.Accepted
	s.Pruned += o.Pruned
	s.Densified += o.Densified
	s.Units += o.Units
	s.UnitsDense += o.UnitsDense
}

// Savings is the invocation-reduction factor versus dense evaluation
// (1 when nothing was planned).
func (s Stats) Savings() float64 {
	if s.Units == 0 || s.UnitsDense == 0 {
		return 1
	}
	return float64(s.UnitsDense) / float64(s.Units)
}
