// Package fault is a deterministic, seed-driven fault injector for the
// detection backends: it wraps the fallible detector/recognizer
// interfaces of package detect with configurable error rates, latency
// spikes, transient stalls and score-corruption episodes, schedulable
// per unit range (frame index for detectors, shot index for
// recognizers) so chaos runs are exactly reproducible.
//
// Every injection decision is a pure function of (schedule seed,
// episode index, unit, attempt number): the same seed and schedule
// produce the same faults in the same places regardless of wall clock
// or goroutine interleaving, which is what makes the resilience layer's
// degraded outputs byte-for-byte reproducible (the determinism tests in
// package resilience rely on this). The attempt number — how many times
// the unit has been queried so far — is what makes injected errors
// *transient*: a retry is a fresh draw, so a retry policy genuinely
// recovers a fraction of faults instead of replaying them.
package fault

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/video"
)

// ErrInjected is the error every Error-kind episode returns, wrapped
// with the backend name and unit. The resilience layer treats it (like
// any backend error) as transient and retriable.
var ErrInjected = errors.New("fault: injected backend error")

// Kind enumerates the fault families an Episode injects.
type Kind int

const (
	// Error fails the call outright with ErrInjected.
	Error Kind = iota
	// Latency delays the call by Delay before it proceeds (a slow
	// backend that still answers). The sleep honours ctx.
	Latency
	// Stall blocks the call for Delay — typically far beyond any
	// sensible deadline — returning ctx's error if it fires first (a
	// wedged backend the caller must time out of).
	Stall
	// Corrupt lets the call succeed but replaces every returned score
	// with deterministic garbage (a model returning confident nonsense).
	Corrupt
)

var kindNames = map[Kind]string{Error: "error", Latency: "latency", Stall: "stall", Corrupt: "corrupt"}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Episode is one scheduled fault regime over a unit range.
type Episode struct {
	Kind Kind
	// Lo and Hi bound the covered unit range, inclusive; Hi < 0 means
	// open-ended (every unit from Lo on).
	Lo, Hi int
	// Rate is the per-invocation probability the fault fires on a
	// covered unit (0 never, 1 always).
	Rate float64
	// Delay is the injected latency for Latency and Stall episodes.
	Delay time.Duration
}

func (e Episode) covers(unit int) bool {
	return unit >= e.Lo && (e.Hi < 0 || unit <= e.Hi)
}

func (e Episode) String() string {
	hi := strconv.Itoa(e.Hi)
	if e.Hi < 0 {
		hi = ""
	}
	s := fmt.Sprintf("%v:%d-%s:%g", e.Kind, e.Lo, hi, e.Rate)
	if e.Delay > 0 {
		s += ":" + e.Delay.String()
	}
	return s
}

// Schedule is a reproducible fault plan: a seed plus the episode list.
// The zero value injects nothing.
type Schedule struct {
	Seed     int64
	Episodes []Episode
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Episodes) == 0 }

func (s Schedule) String() string {
	parts := make([]string, len(s.Episodes))
	for i, e := range s.Episodes {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// Parse builds a schedule from a comma-separated episode spec, each
// episode written kind:lo-hi:rate[:delay] — e.g.
//
//	error:0-999:0.1,latency:500-:0.2:20ms,stall:100-120:1:5s
//
// An empty hi ("500-") means open-ended. The CLIs (vaqd -fault,
// vaqingest -fault, vaqbench chaos) accept this syntax.
func Parse(seed int64, spec string) (Schedule, error) {
	sched := Schedule{Seed: seed}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return sched, nil
	}
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 3 || len(fields) > 4 {
			return Schedule{}, fmt.Errorf("fault: episode %q: want kind:lo-hi:rate[:delay]", part)
		}
		var ep Episode
		switch strings.ToLower(fields[0]) {
		case "error":
			ep.Kind = Error
		case "latency":
			ep.Kind = Latency
		case "stall":
			ep.Kind = Stall
		case "corrupt":
			ep.Kind = Corrupt
		default:
			return Schedule{}, fmt.Errorf("fault: episode %q: unknown kind %q", part, fields[0])
		}
		lo, hi, ok := strings.Cut(fields[1], "-")
		if !ok {
			return Schedule{}, fmt.Errorf("fault: episode %q: range %q wants lo-hi", part, fields[1])
		}
		var err error
		if ep.Lo, err = strconv.Atoi(lo); err != nil || ep.Lo < 0 {
			return Schedule{}, fmt.Errorf("fault: episode %q: bad range start %q", part, lo)
		}
		if hi == "" {
			ep.Hi = -1
		} else if ep.Hi, err = strconv.Atoi(hi); err != nil || ep.Hi < ep.Lo {
			return Schedule{}, fmt.Errorf("fault: episode %q: bad range end %q", part, hi)
		}
		if ep.Rate, err = strconv.ParseFloat(fields[2], 64); err != nil || math.IsNaN(ep.Rate) || ep.Rate < 0 || ep.Rate > 1 {
			return Schedule{}, fmt.Errorf("fault: episode %q: rate %q outside [0,1]", part, fields[2])
		}
		if len(fields) == 4 {
			if ep.Delay, err = time.ParseDuration(fields[3]); err != nil || ep.Delay < 0 {
				return Schedule{}, fmt.Errorf("fault: episode %q: bad delay %q", part, fields[3])
			}
		}
		if (ep.Kind == Latency || ep.Kind == Stall) && ep.Delay == 0 {
			return Schedule{}, fmt.Errorf("fault: episode %q: %v episodes need a delay", part, ep.Kind)
		}
		sched.Episodes = append(sched.Episodes, ep)
	}
	return sched, nil
}

// Counts is a snapshot of the faults an injector has fired, by kind.
type Counts struct {
	Errors    int64 `json:"errors"`
	Latencies int64 `json:"latencies"`
	Stalls    int64 `json:"stalls"`
	Corrupted int64 `json:"corrupted"`
}

// Total sums all fired faults.
func (c Counts) Total() int64 { return c.Errors + c.Latencies + c.Stalls + c.Corrupted }

// Call pins one invocation's injection coordinates, overriding the
// injector's internal per-unit attempt counter.
type Call struct {
	// Attempt is the retry round, 0 for the first try. Decisive draws —
	// Error, Corrupt, Stall — key on it alone, so every replica of one
	// round sees the same outcome.
	Attempt int
	// Replica distinguishes hedged racers within one round (0 =
	// primary). Only Latency draws mix it in: a hedged replica can dodge
	// a latency spike, which moves wall-clock time but never result
	// bytes (provided the delay fits the caller's per-attempt deadline —
	// delays meant to outlive the deadline belong in Stall episodes,
	// whose draws replicas share).
	Replica int
}

type callKeyType struct{}

// WithCall returns a context carrying explicit injection coordinates.
// The resilience layer sets them on every policied call: hedged
// replicas of one retry round must share that round's decisive draws,
// which the internal counter — one bump per call — cannot express, and
// concurrent racers must not skew the counts of later rounds.
func WithCall(ctx context.Context, attempt, replica int) context.Context {
	return context.WithValue(ctx, callKeyType{}, Call{Attempt: attempt, Replica: replica})
}

// CallFrom reports the injection coordinates carried by ctx, if any.
func CallFrom(ctx context.Context) (Call, bool) {
	c, ok := ctx.Value(callKeyType{}).(Call)
	return c, ok
}

// replicaStride offsets a replica's Latency draws into a disjoint part
// of the per-unit hash stream (attempt numbers stay tiny next to it).
const replicaStride = 1 << 20

// draw picks the hash-draw index of one episode decision for the call;
// see Call for which kinds mix the replica in.
func (e Episode) draw(c Call) int {
	if e.Kind == Latency && c.Replica > 0 {
		return c.Attempt + replicaStride*c.Replica
	}
	return c.Attempt
}

// injector holds the state shared by the object and action wrappers.
type injector struct {
	sched Schedule
	salt  string

	errors, latencies, stalls, corrupted atomic.Int64

	mu       sync.Mutex
	attempts map[int]int // per-unit invocation count
}

func newInjector(sched Schedule, salt string) injector {
	return injector{sched: sched, salt: salt, attempts: map[int]int{}}
}

// nextAttempt returns how many times the unit has been queried before
// this call. Per-unit counting keeps decisions deterministic under
// parallel execution: units are independent, and within one unit the
// call sequence (first try, retry, ...) is serial in every caller.
func (in *injector) nextAttempt(unit int) int {
	in.mu.Lock()
	n := in.attempts[unit]
	in.attempts[unit] = n + 1
	in.mu.Unlock()
	return n
}

// counts snapshots the fired-fault counters.
func (in *injector) counts() Counts {
	return Counts{
		Errors:    in.errors.Load(),
		Latencies: in.latencies.Load(),
		Stalls:    in.stalls.Load(),
		Corrupted: in.corrupted.Load(),
	}
}

// inject runs the schedule against one invocation. It returns a non-nil
// error when an Error episode fires (or a sleep is cut short by ctx)
// and reports whether a Corrupt episode fired.
func (in *injector) inject(ctx context.Context, backend string, unit int) (corrupt bool, err error) {
	call, explicit := CallFrom(ctx)
	if !explicit {
		call.Attempt = in.nextAttempt(unit)
	}
	for i, ep := range in.sched.Episodes {
		if !ep.covers(unit) {
			continue
		}
		if !fires(in.sched.Seed, in.salt, i, unit, ep.draw(call), ep.Rate) {
			continue
		}
		switch ep.Kind {
		case Latency, Stall:
			if ep.Kind == Latency {
				in.latencies.Add(1)
			} else {
				in.stalls.Add(1)
			}
			if err := sleep(ctx, ep.Delay); err != nil {
				return false, err
			}
		case Error:
			in.errors.Add(1)
			return false, fmt.Errorf("%w: %s unit %d attempt %d", ErrInjected, backend, unit, call.Attempt)
		case Corrupt:
			in.corrupted.Add(1)
			corrupt = true
		}
	}
	return corrupt, nil
}

// corruptKey seeds the deterministic garbage scores of one invocation.
func (in *injector) corruptKey(unit, i int) float64 {
	return unitRand(hashKey(in.sched.Seed, in.salt+"/corrupt", int64(unit)), uint64(i))
}

// fires decides one (episode, unit, attempt) injection: a pure hash of
// the schedule seed and the coordinates, so runs are reproducible.
func fires(seed int64, salt string, episode, unit, attempt int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	key := hashKey(seed, salt+"/"+strconv.Itoa(episode), int64(unit))
	return unitRand(key, uint64(attempt)) < rate
}

// sleep waits for d, returning ctx's error if it fires first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ObjectInjector wraps a fallible object detector with a fault
// schedule; it implements detect.FallibleObjectDetector.
type ObjectInjector struct {
	backend detect.FallibleObjectDetector
	in      injector
}

// NewObject wraps backend with the schedule. Frame indices are the
// schedule's units.
func NewObject(backend detect.FallibleObjectDetector, sched Schedule) *ObjectInjector {
	return &ObjectInjector{backend: backend, in: newInjector(sched, "obj")}
}

// Name implements detect.FallibleObjectDetector.
func (o *ObjectInjector) Name() string { return o.backend.Name() }

// Counts snapshots the faults fired so far.
func (o *ObjectInjector) Counts() Counts { return o.in.counts() }

// DetectCtx implements detect.FallibleObjectDetector, applying the
// schedule before (errors, delays) and after (score corruption) the
// wrapped backend's call.
func (o *ObjectInjector) DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, error) {
	corrupt, err := o.in.inject(ctx, o.backend.Name(), int(v))
	if err != nil {
		return nil, err
	}
	dets, err := o.backend.DetectCtx(ctx, v, labels)
	if err != nil || !corrupt {
		return dets, err
	}
	out := make([]detect.Detection, len(dets))
	for i, d := range dets {
		d.Score = o.in.corruptKey(int(v), i)
		out[i] = d
	}
	return out, nil
}

// ActionInjector wraps a fallible action recognizer with a fault
// schedule; it implements detect.FallibleActionRecognizer. Shot indices
// are the schedule's units.
type ActionInjector struct {
	backend detect.FallibleActionRecognizer
	in      injector
}

// NewAction wraps backend with the schedule.
func NewAction(backend detect.FallibleActionRecognizer, sched Schedule) *ActionInjector {
	return &ActionInjector{backend: backend, in: newInjector(sched, "act")}
}

// Name implements detect.FallibleActionRecognizer.
func (a *ActionInjector) Name() string { return a.backend.Name() }

// Counts snapshots the faults fired so far.
func (a *ActionInjector) Counts() Counts { return a.in.counts() }

// RecognizeCtx implements detect.FallibleActionRecognizer.
func (a *ActionInjector) RecognizeCtx(ctx context.Context, s video.ShotIdx, labels []annot.Label) ([]detect.ActionScore, error) {
	corrupt, err := a.in.inject(ctx, a.backend.Name(), int(s))
	if err != nil {
		return nil, err
	}
	scores, err := a.backend.RecognizeCtx(ctx, s, labels)
	if err != nil || !corrupt {
		return scores, err
	}
	out := make([]detect.ActionScore, len(scores))
	for i, sc := range scores {
		sc.Score = a.in.corruptKey(int(s), i)
		out[i] = sc
	}
	return out, nil
}

// splitmix64 / hashKey / unitRand mirror the deterministic hash-based
// generator of package detect (unexported there): decisions must be
// reproducible per coordinate regardless of invocation order.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashKey(seed int64, salt string, unit int64) uint64 {
	h := splitmix64(uint64(seed))
	for _, b := range []byte(salt) {
		h = splitmix64(h ^ uint64(b))
	}
	return splitmix64(h ^ uint64(unit))
}

func unitRand(key uint64, n uint64) float64 {
	v := splitmix64(key + n*0x9e3779b97f4a7c15)
	return float64(v>>11) / float64(1<<53)
}
