package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/video"
)

// stubObject is a trivially-succeeding fallible backend.
type stubObject struct{ calls int }

func (s *stubObject) Name() string { return "stub" }

func (s *stubObject) DetectCtx(_ context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, error) {
	s.calls++
	out := make([]detect.Detection, len(labels))
	for i, l := range labels {
		out[i] = detect.Detection{Label: l, Score: 0.75}
	}
	return out, nil
}

type stubAction struct{}

func (stubAction) Name() string { return "stub-act" }

func (stubAction) RecognizeCtx(_ context.Context, s video.ShotIdx, labels []annot.Label) ([]detect.ActionScore, error) {
	out := make([]detect.ActionScore, len(labels))
	for i, l := range labels {
		out[i] = detect.ActionScore{Label: l, Score: 0.6}
	}
	return out, nil
}

var testLabels = []annot.Label{"person", "car"}

func TestParse(t *testing.T) {
	sched, err := Parse(7, "error:0-999:0.1,latency:500-:0.2:20ms,stall:100-120:1:5s,corrupt:0-:0.05")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sched.Seed != 7 || len(sched.Episodes) != 4 {
		t.Fatalf("got %+v", sched)
	}
	want := []Episode{
		{Kind: Error, Lo: 0, Hi: 999, Rate: 0.1},
		{Kind: Latency, Lo: 500, Hi: -1, Rate: 0.2, Delay: 20 * time.Millisecond},
		{Kind: Stall, Lo: 100, Hi: 120, Rate: 1, Delay: 5 * time.Second},
		{Kind: Corrupt, Lo: 0, Hi: -1, Rate: 0.05},
	}
	for i, ep := range sched.Episodes {
		if ep != want[i] {
			t.Errorf("episode %d: got %+v want %+v", i, ep, want[i])
		}
	}
	// Round-trips through String.
	back, err := Parse(7, sched.String())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", sched.String(), err)
	}
	for i := range back.Episodes {
		if back.Episodes[i] != sched.Episodes[i] {
			t.Errorf("round-trip episode %d: %+v != %+v", i, back.Episodes[i], sched.Episodes[i])
		}
	}
	// Empty spec is the empty schedule.
	if s, err := Parse(1, "  "); err != nil || !s.Empty() {
		t.Errorf("empty spec: %+v, %v", s, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"error",                // too few fields
		"error:0-9:0.1:1s:x",   // too many fields
		"wedge:0-9:0.5",        // unknown kind
		"error:9:0.5",          // range without dash
		"error:-1-9:0.5",       // negative start
		"error:9-3:0.5",        // end before start
		"error:0-9:1.5",        // rate out of range
		"latency:0-9:0.5",      // latency without delay
		"stall:0-9:0.5",        // stall without delay
		"latency:0-9:0.5:-3ms", // negative delay
	} {
		if _, err := Parse(1, spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}

func TestErrorEpisodeRateAndDeterminism(t *testing.T) {
	sched := Schedule{Seed: 42, Episodes: []Episode{{Kind: Error, Lo: 0, Hi: -1, Rate: 0.1}}}
	run := func() (errs int, pattern []bool) {
		inj := NewObject(&stubObject{}, sched)
		for f := 0; f < 2000; f++ {
			_, err := inj.DetectCtx(context.Background(), video.FrameIdx(f), testLabels)
			failed := err != nil
			if failed {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("frame %d: error %v is not ErrInjected", f, err)
				}
				errs++
			}
			pattern = append(pattern, failed)
		}
		return errs, pattern
	}
	errs1, pat1 := run()
	errs2, pat2 := run()
	if errs1 != errs2 {
		t.Fatalf("non-deterministic error counts: %d vs %d", errs1, errs2)
	}
	for i := range pat1 {
		if pat1[i] != pat2[i] {
			t.Fatalf("frame %d: fault pattern differs across identical runs", i)
		}
	}
	// ~10% of 2000 = 200; allow a generous band.
	if errs1 < 120 || errs1 > 290 {
		t.Errorf("rate 0.1 over 2000 frames fired %d times, want ~200", errs1)
	}
	// Counters match observed faults.
	inj := NewObject(&stubObject{}, sched)
	for f := 0; f < 100; f++ {
		inj.DetectCtx(context.Background(), video.FrameIdx(f), testLabels)
	}
	c := inj.Counts()
	if c.Errors == 0 || c.Errors != c.Total() {
		t.Errorf("counts = %+v, want only errors, non-zero", c)
	}
}

func TestRetriesAreFreshDraws(t *testing.T) {
	// With rate 0.5 and per-attempt draws, a frame that fails on the
	// first attempt should eventually succeed on retry.
	sched := Schedule{Seed: 1, Episodes: []Episode{{Kind: Error, Lo: 0, Hi: -1, Rate: 0.5}}}
	inj := NewObject(&stubObject{}, sched)
	recovered := 0
	for f := 0; f < 50; f++ {
		var err error
		for attempt := 0; attempt < 20; attempt++ {
			if _, err = inj.DetectCtx(context.Background(), video.FrameIdx(f), testLabels); err == nil {
				if attempt > 0 {
					recovered++
				}
				break
			}
		}
		if err != nil {
			t.Fatalf("frame %d never recovered over 20 attempts at rate 0.5", f)
		}
	}
	if recovered == 0 {
		t.Error("no frame needed a retry at rate 0.5 over 50 frames")
	}
}

func TestEpisodeRanges(t *testing.T) {
	sched := Schedule{Seed: 9, Episodes: []Episode{{Kind: Error, Lo: 10, Hi: 19, Rate: 1}}}
	inj := NewObject(&stubObject{}, sched)
	for f := 0; f < 30; f++ {
		_, err := inj.DetectCtx(context.Background(), video.FrameIdx(f), testLabels)
		inRange := f >= 10 && f <= 19
		if inRange && err == nil {
			t.Errorf("frame %d: in-episode call did not fail", f)
		}
		if !inRange && err != nil {
			t.Errorf("frame %d: out-of-episode call failed: %v", f, err)
		}
	}
}

func TestLatencyAndStall(t *testing.T) {
	sched := Schedule{Seed: 3, Episodes: []Episode{{Kind: Latency, Lo: 0, Hi: -1, Rate: 1, Delay: 30 * time.Millisecond}}}
	inj := NewObject(&stubObject{}, sched)
	start := time.Now()
	if _, err := inj.DetectCtx(context.Background(), 0, testLabels); err != nil {
		t.Fatalf("latency episode errored: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("latency episode delayed only %v, want >= 30ms", d)
	}

	// A stall longer than the deadline returns ctx's error.
	stall := Schedule{Seed: 3, Episodes: []Episode{{Kind: Stall, Lo: 0, Hi: -1, Rate: 1, Delay: 10 * time.Second}}}
	sinj := NewObject(&stubObject{}, stall)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start = time.Now()
	_, err := sinj.DetectCtx(ctx, 0, testLabels)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled call returned %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("stalled call took %v despite 20ms deadline", d)
	}
	if c := sinj.Counts(); c.Stalls != 1 {
		t.Errorf("stall count = %d, want 1", c.Stalls)
	}
}

func TestCorruptScores(t *testing.T) {
	sched := Schedule{Seed: 11, Episodes: []Episode{{Kind: Corrupt, Lo: 0, Hi: -1, Rate: 1}}}
	inj := NewObject(&stubObject{}, sched)
	dets, err := inj.DetectCtx(context.Background(), 5, testLabels)
	if err != nil {
		t.Fatalf("corrupt episode errored: %v", err)
	}
	if len(dets) != len(testLabels) {
		t.Fatalf("got %d detections, want %d", len(dets), len(testLabels))
	}
	for i, d := range dets {
		if d.Score == 0.75 {
			t.Errorf("detection %d score untouched by corruption", i)
		}
		if d.Score < 0 || d.Score > 1 {
			t.Errorf("corrupted score %v outside [0,1]", d.Score)
		}
		if d.Label != testLabels[i] {
			t.Errorf("corruption changed label %d: %v", i, d.Label)
		}
	}
	// Corruption itself is deterministic.
	again, _ := NewObject(&stubObject{}, sched).DetectCtx(context.Background(), 5, testLabels)
	for i := range dets {
		if dets[i] != again[i] {
			t.Errorf("corrupted detection %d differs across runs: %+v vs %+v", i, dets[i], again[i])
		}
	}
}

func TestActionInjector(t *testing.T) {
	sched := Schedule{Seed: 5, Episodes: []Episode{{Kind: Error, Lo: 0, Hi: 4, Rate: 1}, {Kind: Corrupt, Lo: 5, Hi: -1, Rate: 1}}}
	inj := NewAction(stubAction{}, sched)
	if inj.Name() != "stub-act" {
		t.Errorf("Name = %q", inj.Name())
	}
	if _, err := inj.RecognizeCtx(context.Background(), 2, testLabels); !errors.Is(err, ErrInjected) {
		t.Errorf("shot 2: want ErrInjected, got %v", err)
	}
	scores, err := inj.RecognizeCtx(context.Background(), 7, testLabels)
	if err != nil {
		t.Fatalf("shot 7: %v", err)
	}
	for _, s := range scores {
		if s.Score == 0.6 {
			t.Errorf("shot 7 score untouched by corruption")
		}
	}
	c := inj.Counts()
	if c.Errors != 1 || c.Corrupted != 1 {
		t.Errorf("counts = %+v, want 1 error + 1 corrupted", c)
	}
}

func TestEmptyScheduleIsTransparent(t *testing.T) {
	stub := &stubObject{}
	inj := NewObject(stub, Schedule{})
	dets, err := inj.DetectCtx(context.Background(), 0, testLabels)
	if err != nil || len(dets) != 2 || dets[0].Score != 0.75 {
		t.Fatalf("empty schedule altered the call: %v, %+v", err, dets)
	}
	if stub.calls != 1 {
		t.Errorf("backend called %d times, want 1", stub.calls)
	}
	if c := inj.Counts(); c.Total() != 0 {
		t.Errorf("counts = %+v, want zero", c)
	}
}
