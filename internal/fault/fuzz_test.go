package fault_test

import (
	"reflect"
	"testing"

	"vaq/internal/fault"
)

// FuzzParse drives the kind:lo-hi:rate[:delay] spec grammar: rejected
// inputs must fail cleanly (no panic), and anything Parse accepts must
// round-trip — re-parsing Schedule.String() yields the same schedule.
// The seed corpus is the specs the docs and CI actually use plus
// near-miss rejects for each validation rule.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// docs/ROBUSTNESS.md and ci.yml specs.
		"error:0-999:0.1,latency:500-:0.2:20ms,stall:100-120:1:5s",
		"error:0-:0.25",
		"error:0-:0.1",
		"corrupt:0-:0.3",
		"latency:0-:0.04:20ms",
		"stall:0-50:1:2s",
		"",
		// One near-miss per validation rule.
		"bogus:0-1:0.5",                  // unknown kind
		"error:10-5:0.5",                 // hi < lo
		"error:-3-5:0.5",                 // negative lo
		"error:0:0.5",                    // range without dash
		"error:0-1:1.5",                  // rate > 1
		"error:0-1:NaN",                  // NaN rate
		"latency:0-:0.5",                 // latency without delay
		"stall:0-1:0.5:-2s",              // negative delay
		"error:0-1:0.1:1s:x",             // too many fields
		"error:0-1",                      // too few fields
		" error:0-1:0.5 ,  corrupt:2-:1", // whitespace tolerance
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		sched, err := fault.Parse(7, spec)
		if err != nil {
			return // a clean reject is all the grammar owes us
		}
		printed := sched.String()
		again, err := fault.Parse(7, printed)
		if err != nil {
			t.Fatalf("Parse(%q) accepted but its String %q does not re-parse: %v", spec, printed, err)
		}
		if !reflect.DeepEqual(sched, again) {
			t.Fatalf("round-trip drift for %q:\n first %#v\nsecond %#v", spec, sched, again)
		}
		if again.String() != printed {
			t.Fatalf("String not a fixpoint for %q: %q then %q", spec, printed, again.String())
		}
	})
}
