package svaq

import (
	"fmt"
	"math"

	"vaq/internal/bgprob"
	"vaq/internal/scanstat"
)

// MinK sentinels for TrackerConfig.MinK (and Config.MinK). The zero
// value deliberately means "auto" so existing call sites keep their
// behavior; callers who want no floor at all say so explicitly.
const (
	// MinKAuto applies the engine default floor: 2 for dynamic
	// trackers (the self-consistent background estimation needs k ≥ 2
	// to converge, see Config.MinK), 1 otherwise.
	MinKAuto = 0
	// MinKNone disables the floor: the critical value may settle at
	// the scan statistic's raw minimum of 1 even on a dynamic tracker.
	MinKNone = -1
)

// LabelTracker is the per-predicate statistical state machine shared by
// the online engine (one tracker per query predicate) and the ingestion
// phase (one tracker per supported label): it turns per-clip event
// counts into clip indicators using the scan-statistics critical value
// (Equations 1–2, 5) and, in dynamic mode, re-estimates the background
// probability online (§3.3).
type LabelTracker struct {
	w       int // window length in occurrence units (units per clip)
	horizon int // total occurrence units N for Equation 5
	alpha   float64
	minK    int
	tol     float64
	dynamic bool

	est   *bgprob.Estimator
	k     int     // detection critical value
	kExcl int     // estimator exclusion threshold (single-window)
	pLast float64 // probability at last recomputation
}

// TrackerConfig parameterizes a LabelTracker.
type TrackerConfig struct {
	// UnitsPerClip is the scanning window w: frames per clip for object
	// predicates, shots per clip for action predicates.
	UnitsPerClip int
	// HorizonClips is N/w of Equation 5.
	HorizonClips int
	// Alpha is the significance level, in (0, 1). 0 means the default
	// 0.05 — an exact significance level of 0 is not meaningful, so the
	// zero value is unambiguous; out-of-range values are rejected.
	Alpha float64
	// P0 is the (initial) background probability.
	P0 float64
	// Dynamic enables the §3.3 online estimation; false freezes P0.
	Dynamic bool
	// KernelU is the estimator kernel scale in occurrence units.
	KernelU float64
	// MinK floors the critical value: MinKAuto (the zero value) applies
	// the engine default, MinKNone disables the floor, positive values
	// floor k explicitly; anything below MinKNone is rejected.
	MinK int
	// RecomputeTol is the relative probability change that triggers
	// recomputation (see Config.RecomputeTol).
	RecomputeTol float64
}

// NewLabelTracker builds a tracker; the zero-valued optional fields of
// cfg get the engine defaults.
func NewLabelTracker(cfg TrackerConfig) (*LabelTracker, error) {
	if cfg.UnitsPerClip <= 0 {
		return nil, fmt.Errorf("svaq: UnitsPerClip must be positive, got %d", cfg.UnitsPerClip)
	}
	if cfg.HorizonClips <= 0 {
		return nil, fmt.Errorf("svaq: HorizonClips must be positive, got %d", cfg.HorizonClips)
	}
	if cfg.Alpha < 0 || cfg.Alpha >= 1 {
		return nil, fmt.Errorf("svaq: Alpha must be in (0, 1) (0 means the 0.05 default), got %v", cfg.Alpha)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.05
	}
	if cfg.KernelU <= 0 {
		cfg.KernelU = 4000
	}
	switch {
	case cfg.MinK < MinKNone:
		return nil, fmt.Errorf("svaq: MinK must be >= %d (MinKNone), got %d", MinKNone, cfg.MinK)
	case cfg.MinK == MinKNone:
		cfg.MinK = 1 // the scan statistic never goes below k = 1
	case cfg.MinK == MinKAuto:
		if cfg.Dynamic {
			cfg.MinK = 2
		} else {
			cfg.MinK = 1
		}
	}
	if cfg.RecomputeTol == 0 {
		cfg.RecomputeTol = 0.02
	}
	est, err := bgprob.New(cfg.KernelU, cfg.P0)
	if err != nil {
		return nil, err
	}
	lt := &LabelTracker{
		w:       cfg.UnitsPerClip,
		horizon: cfg.HorizonClips * cfg.UnitsPerClip,
		alpha:   cfg.Alpha,
		minK:    cfg.MinK,
		tol:     cfg.RecomputeTol,
		dynamic: cfg.Dynamic,
		est:     est,
		pLast:   -1, // force the initial recomputation
	}
	if err := lt.recompute(); err != nil {
		return nil, err
	}
	return lt, nil
}

// recompute derives the detection critical value k (Equation 5) and the
// estimator exclusion threshold from the current background
// probability, skipping the work while the probability is within tol of
// the last value used.
func (lt *LabelTracker) recompute() error {
	p := lt.est.P()
	if lt.pLast >= 0 && withinTol(p, lt.pLast, lt.tol) {
		return nil
	}
	k, err := criticalOrMax(scanstat.Params{P: p, W: lt.w, N: lt.horizon}, lt.alpha)
	if err != nil {
		return err
	}
	lt.k = max(min(k, lt.w), lt.minK)
	// The exclusion threshold uses a single-window horizon so it stays
	// decoupled from the detection threshold: tying exclusion to the
	// detection k lets boundary clips ratchet the background estimate
	// upward (see updateEstimator).
	kx, err := criticalOrMax(scanstat.Params{P: p, W: lt.w, N: lt.w}, lt.alpha)
	if err != nil {
		return err
	}
	lt.kExcl = max(min(kx, lt.w), 2)
	lt.pLast = p
	return nil
}

// criticalOrMax degrades to requiring a full window of events when no k
// rejects at the requested level (background too noisy to ever reject).
func criticalOrMax(pr scanstat.Params, alpha float64) (int, error) {
	k, err := scanstat.CriticalValue(pr, alpha)
	if err == scanstat.ErrNoCriticalValue {
		return pr.W, nil
	}
	return k, err
}

// withinTol reports whether p is within rel relative distance of ref.
func withinTol(p, ref, rel float64) bool {
	if rel < 0 {
		return false
	}
	if ref == 0 {
		return p == 0
	}
	d := p - ref
	if d < 0 {
		d = -d
	}
	return d/ref <= rel
}

// ObserveClip consumes one clip's positive-prediction count and returns
// the clip indicator (count ≥ k_crit). In dynamic mode it also feeds the
// background estimator and refreshes the critical value.
func (lt *LabelTracker) ObserveClip(count int) (bool, error) {
	positive := count >= lt.k
	if lt.dynamic {
		// §1: the background distribution describes model predictions
		// when the predicate is NOT satisfied; clips whose counts are
		// already significant for a single window are excluded so true
		// event-dense segments cannot contaminate the estimate.
		if count < lt.kExcl {
			lt.est.ObserveRun(lt.w, count)
		}
		if err := lt.recompute(); err != nil {
			return positive, err
		}
	}
	return positive, nil
}

// ObserveRun folds a partially sampled clip into the tracker: the
// adaptive sampling planner evaluated `units` of the clip's w units and
// `count` of them were positive. No indicator is derived — the planner
// decides it from its own bounds — but in dynamic mode the estimator
// consumes the run (with the exclusion threshold scaled to the sample
// size, so subsampled background clips are excluded at the same
// per-unit density as dense ones) and the critical value is refreshed.
// A fully sampled run (units == w) updates the tracker byte-identically
// to ObserveClip.
func (lt *LabelTracker) ObserveRun(units, count int) error {
	if units <= 0 || units > lt.w {
		return fmt.Errorf("svaq: ObserveRun units %d outside [1, %d]", units, lt.w)
	}
	if !lt.dynamic {
		return nil
	}
	kx := lt.kExcl
	if units < lt.w {
		// Floor the scaled threshold at 2, like recompute floors kExcl:
		// without it a sparse rung's threshold rounds to 1 and every run
		// containing a single positive is excluded, so the estimator only
		// ever sees zeros and the background probability collapses.
		kx = int(math.Ceil(float64(lt.kExcl) * float64(units) / float64(lt.w)))
		if kx < 2 {
			kx = 2
		}
	}
	if count < kx {
		lt.est.ObserveRun(units, count)
	}
	return lt.recompute()
}

// Indicator returns the clip indicator for a count without mutating the
// tracker.
func (lt *LabelTracker) Indicator(count int) bool { return count >= lt.k }

// K returns the current detection critical value.
func (lt *LabelTracker) K() int { return lt.k }

// P returns the current background probability estimate.
func (lt *LabelTracker) P() float64 { return lt.est.P() }
