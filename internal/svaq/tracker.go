package svaq

import (
	"fmt"

	"vaq/internal/bgprob"
	"vaq/internal/scanstat"
)

// LabelTracker is the per-predicate statistical state machine shared by
// the online engine (one tracker per query predicate) and the ingestion
// phase (one tracker per supported label): it turns per-clip event
// counts into clip indicators using the scan-statistics critical value
// (Equations 1–2, 5) and, in dynamic mode, re-estimates the background
// probability online (§3.3).
type LabelTracker struct {
	w       int // window length in occurrence units (units per clip)
	horizon int // total occurrence units N for Equation 5
	alpha   float64
	minK    int
	tol     float64
	dynamic bool

	est   *bgprob.Estimator
	k     int     // detection critical value
	kExcl int     // estimator exclusion threshold (single-window)
	pLast float64 // probability at last recomputation
}

// TrackerConfig parameterizes a LabelTracker.
type TrackerConfig struct {
	// UnitsPerClip is the scanning window w: frames per clip for object
	// predicates, shots per clip for action predicates.
	UnitsPerClip int
	// HorizonClips is N/w of Equation 5.
	HorizonClips int
	// Alpha is the significance level (default 0.05).
	Alpha float64
	// P0 is the (initial) background probability.
	P0 float64
	// Dynamic enables the §3.3 online estimation; false freezes P0.
	Dynamic bool
	// KernelU is the estimator kernel scale in occurrence units.
	KernelU float64
	// MinK floors the critical value (see Config.MinK).
	MinK int
	// RecomputeTol is the relative probability change that triggers
	// recomputation (see Config.RecomputeTol).
	RecomputeTol float64
}

// NewLabelTracker builds a tracker; the zero-valued optional fields of
// cfg get the engine defaults.
func NewLabelTracker(cfg TrackerConfig) (*LabelTracker, error) {
	if cfg.UnitsPerClip <= 0 {
		return nil, fmt.Errorf("svaq: UnitsPerClip must be positive, got %d", cfg.UnitsPerClip)
	}
	if cfg.HorizonClips <= 0 {
		return nil, fmt.Errorf("svaq: HorizonClips must be positive, got %d", cfg.HorizonClips)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.05
	}
	if cfg.KernelU <= 0 {
		cfg.KernelU = 4000
	}
	if cfg.MinK == 0 {
		if cfg.Dynamic {
			cfg.MinK = 2
		} else {
			cfg.MinK = 1
		}
	}
	if cfg.RecomputeTol == 0 {
		cfg.RecomputeTol = 0.02
	}
	est, err := bgprob.New(cfg.KernelU, cfg.P0)
	if err != nil {
		return nil, err
	}
	lt := &LabelTracker{
		w:       cfg.UnitsPerClip,
		horizon: cfg.HorizonClips * cfg.UnitsPerClip,
		alpha:   cfg.Alpha,
		minK:    cfg.MinK,
		tol:     cfg.RecomputeTol,
		dynamic: cfg.Dynamic,
		est:     est,
		pLast:   -1, // force the initial recomputation
	}
	if err := lt.recompute(); err != nil {
		return nil, err
	}
	return lt, nil
}

// recompute derives the detection critical value k (Equation 5) and the
// estimator exclusion threshold from the current background
// probability, skipping the work while the probability is within tol of
// the last value used.
func (lt *LabelTracker) recompute() error {
	p := lt.est.P()
	if lt.pLast >= 0 && withinTol(p, lt.pLast, lt.tol) {
		return nil
	}
	k, err := criticalOrMax(scanstat.Params{P: p, W: lt.w, N: lt.horizon}, lt.alpha)
	if err != nil {
		return err
	}
	lt.k = max(min(k, lt.w), lt.minK)
	// The exclusion threshold uses a single-window horizon so it stays
	// decoupled from the detection threshold: tying exclusion to the
	// detection k lets boundary clips ratchet the background estimate
	// upward (see updateEstimator).
	kx, err := criticalOrMax(scanstat.Params{P: p, W: lt.w, N: lt.w}, lt.alpha)
	if err != nil {
		return err
	}
	lt.kExcl = max(min(kx, lt.w), 2)
	lt.pLast = p
	return nil
}

// criticalOrMax degrades to requiring a full window of events when no k
// rejects at the requested level (background too noisy to ever reject).
func criticalOrMax(pr scanstat.Params, alpha float64) (int, error) {
	k, err := scanstat.CriticalValue(pr, alpha)
	if err == scanstat.ErrNoCriticalValue {
		return pr.W, nil
	}
	return k, err
}

// withinTol reports whether p is within rel relative distance of ref.
func withinTol(p, ref, rel float64) bool {
	if rel < 0 {
		return false
	}
	if ref == 0 {
		return p == 0
	}
	d := p - ref
	if d < 0 {
		d = -d
	}
	return d/ref <= rel
}

// ObserveClip consumes one clip's positive-prediction count and returns
// the clip indicator (count ≥ k_crit). In dynamic mode it also feeds the
// background estimator and refreshes the critical value.
func (lt *LabelTracker) ObserveClip(count int) (bool, error) {
	positive := count >= lt.k
	if lt.dynamic {
		// §1: the background distribution describes model predictions
		// when the predicate is NOT satisfied; clips whose counts are
		// already significant for a single window are excluded so true
		// event-dense segments cannot contaminate the estimate.
		if count < lt.kExcl {
			lt.est.ObserveRun(lt.w, count)
		}
		if err := lt.recompute(); err != nil {
			return positive, err
		}
	}
	return positive, nil
}

// Indicator returns the clip indicator for a count without mutating the
// tracker.
func (lt *LabelTracker) Indicator(count int) bool { return count >= lt.k }

// K returns the current detection critical value.
func (lt *LabelTracker) K() int { return lt.k }

// P returns the current background probability estimate.
func (lt *LabelTracker) P() float64 { return lt.est.P() }
