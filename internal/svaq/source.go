package svaq

import (
	"context"
	"fmt"

	"vaq/internal/interval"
	"vaq/internal/video"
)

// Source abstracts a clip-granularity video feed for the online case: a
// live camera, a file decoder, or a simulated stream. Next blocks until
// the next clip is available and reports done when the stream ends.
type Source interface {
	// Next returns the index of the next clip (consecutive from 0) or
	// done = true at end of stream.
	Next(ctx context.Context) (c video.ClipIdx, done bool, err error)
}

// SequenceEvent notifies a subscriber of result-sequence boundaries as
// the stream progresses — the online reporting mode of §1 ("query
// results have to be reported as the video streams").
type SequenceEvent struct {
	// Open is true when a new result sequence starts at Clip; false
	// when the sequence that started earlier closes at Clip (its last
	// positive clip).
	Open bool
	Clip video.ClipIdx
}

// Consume drives the engine from a source until the stream ends or the
// context is cancelled, delivering sequence boundary events to onEvent
// (which may be nil). It returns the result sequences over everything
// processed.
func (e *Engine) Consume(ctx context.Context, src Source, onEvent func(SequenceEvent)) (interval.Set, error) {
	inSeq := false
	var last video.ClipIdx
	for {
		if err := ctx.Err(); err != nil {
			return e.Sequences(), err
		}
		c, done, err := src.Next(ctx)
		if done {
			break
		}
		if err != nil {
			return e.Sequences(), err
		}
		res, err := e.ProcessClip(c)
		if err != nil {
			return e.Sequences(), err
		}
		switch {
		case res.Positive && !inSeq:
			inSeq = true
			if onEvent != nil {
				onEvent(SequenceEvent{Open: true, Clip: c})
			}
		case !res.Positive && inSeq:
			inSeq = false
			if onEvent != nil {
				onEvent(SequenceEvent{Open: false, Clip: last})
			}
		}
		last = c
	}
	if inSeq && onEvent != nil {
		onEvent(SequenceEvent{Open: false, Clip: last})
	}
	return e.Sequences(), nil
}

// SliceSource replays a fixed number of clips; the simplest Source.
type SliceSource struct {
	n    int
	next video.ClipIdx
}

// NewSliceSource returns a source yielding clips 0..n−1.
func NewSliceSource(n int) *SliceSource { return &SliceSource{n: n} }

// Next implements Source.
func (s *SliceSource) Next(ctx context.Context) (video.ClipIdx, bool, error) {
	if err := ctx.Err(); err != nil {
		return 0, false, err
	}
	if int(s.next) >= s.n {
		return 0, true, nil
	}
	c := s.next
	s.next++
	return c, false, nil
}

// ChanSource adapts a channel of clip indices into a Source; closing
// the channel ends the stream. Clips must arrive consecutively from 0
// (the engine enforces it).
type ChanSource struct {
	C <-chan video.ClipIdx
}

// Next implements Source.
func (s ChanSource) Next(ctx context.Context) (video.ClipIdx, bool, error) {
	select {
	case <-ctx.Done():
		return 0, false, ctx.Err()
	case c, ok := <-s.C:
		if !ok {
			return 0, true, nil
		}
		return c, false, nil
	}
}

var _ Source = (*SliceSource)(nil)
var _ Source = ChanSource{}

// String implements fmt.Stringer for diagnostics.
func (ev SequenceEvent) String() string {
	if ev.Open {
		return fmt.Sprintf("open@%d", ev.Clip)
	}
	return fmt.Sprintf("close@%d", ev.Clip)
}
