package svaq

import (
	"fmt"

	"vaq/internal/detect"
)

// Footnote 2 extension: queries may additionally constrain spatial
// relationships between objects ("human left of the car"). Each relation
// yields a binary per-frame output derived from the detection outcomes
// (detect.EvalRelation) and is then treated exactly like an object
// predicate: counted per clip and compared against its own
// scan-statistics critical value.

// WithRelations augments an engine built by New with relation
// predicates. It must be called before the first clip is processed.
func (e *Engine) WithRelations(rels []detect.Relation) error {
	if e.nextClip != 0 {
		return fmt.Errorf("svaq: relations must be added before processing starts")
	}
	if len(rels) > 0 && e.det == nil {
		return fmt.Errorf("svaq: relation predicates need an object detector")
	}
	for _, r := range rels {
		lt, err := NewLabelTracker(e.cfg.trackerConfig(e.geom.ClipLen(), e.cfg.P0Object, e.cfg.KernelU))
		if err != nil {
			return fmt.Errorf("svaq: relation %v: %w", r, err)
		}
		e.relations = append(e.relations, relationState{
			rd:  detect.NewRelationDetector(e.det, r, e.cfg.Thresholds.Object),
			trk: lt,
		})
	}
	return nil
}

type relationState struct {
	rd  *detect.RelationDetector
	trk *LabelTracker
}
