package svaq

import (
	"math/rand"
	"testing"

	"vaq/internal/scanstat"
)

func TestLabelTrackerValidation(t *testing.T) {
	if _, err := NewLabelTracker(TrackerConfig{UnitsPerClip: 0, HorizonClips: 10}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewLabelTracker(TrackerConfig{UnitsPerClip: 50, HorizonClips: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := NewLabelTracker(TrackerConfig{UnitsPerClip: 50, HorizonClips: 100, P0: 1e-4}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestStaticTrackerKeepsK(t *testing.T) {
	lt, err := NewLabelTracker(TrackerConfig{
		UnitsPerClip: 50, HorizonClips: 2000, P0: 1e-3, Dynamic: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	k0 := lt.K()
	for i := 0; i < 200; i++ {
		if _, err := lt.ObserveClip(i % 50); err != nil {
			t.Fatal(err)
		}
	}
	if lt.K() != k0 {
		t.Fatalf("static tracker changed k: %d -> %d", k0, lt.K())
	}
}

func TestDynamicTrackerConvergesToNoiseRate(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	lt, err := NewLabelTracker(TrackerConfig{
		UnitsPerClip: 50, HorizonClips: 2000, P0: 1e-4, Dynamic: true, KernelU: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pure-noise stream at 1% per unit.
	const noise = 0.01
	for c := 0; c < 3000; c++ {
		count := 0
		for u := 0; u < 50; u++ {
			if rng.Float64() < noise {
				count++
			}
		}
		if _, err := lt.ObserveClip(count); err != nil {
			t.Fatal(err)
		}
	}
	if p := lt.P(); p < 0.004 || p > 0.02 {
		t.Fatalf("estimated background %v far from %v", lt.P(), noise)
	}
	// A true event burst (45/50 units) must be flagged positive and
	// must NOT move the background estimate.
	before := lt.P()
	pos, err := lt.ObserveClip(45)
	if err != nil {
		t.Fatal(err)
	}
	if !pos {
		t.Fatal("dense clip not positive")
	}
	if lt.P() != before {
		t.Fatalf("dense clip contaminated the estimate: %v -> %v", before, lt.P())
	}
}

func TestDynamicTrackerPriorWashesOut(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	finalK := map[float64]int{}
	for _, p0 := range []float64{1e-6, 1e-2} {
		lt, err := NewLabelTracker(TrackerConfig{
			UnitsPerClip: 50, HorizonClips: 2000, P0: p0, Dynamic: true, KernelU: 2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(rng.Int63()))
		_ = r
		local := rand.New(rand.NewSource(7)) // same stream for both priors
		for c := 0; c < 4000; c++ {
			count := 0
			for u := 0; u < 50; u++ {
				if local.Float64() < 0.008 {
					count++
				}
			}
			if _, err := lt.ObserveClip(count); err != nil {
				t.Fatal(err)
			}
		}
		finalK[p0] = lt.K()
	}
	if finalK[1e-6] != finalK[1e-2] {
		t.Fatalf("priors did not wash out: k=%v", finalK)
	}
}

func TestTrackerIndicatorPure(t *testing.T) {
	lt, _ := NewLabelTracker(TrackerConfig{UnitsPerClip: 50, HorizonClips: 100, P0: 1e-3})
	k := lt.K()
	if lt.Indicator(k-1) || !lt.Indicator(k) {
		t.Fatal("Indicator boundary wrong")
	}
	if lt.K() != k {
		t.Fatal("Indicator mutated the tracker")
	}
}

func TestMinKFloor(t *testing.T) {
	lt, err := NewLabelTracker(TrackerConfig{
		UnitsPerClip: 50, HorizonClips: 100, P0: 1e-9, Dynamic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lt.K() < 2 {
		t.Fatalf("dynamic k = %d, want ≥ 2", lt.K())
	}
	lt2, _ := NewLabelTracker(TrackerConfig{
		UnitsPerClip: 50, HorizonClips: 100, P0: 1e-9, Dynamic: true, MinK: 5,
	})
	if lt2.K() < 5 {
		t.Fatalf("explicit MinK ignored: %d", lt2.K())
	}
}

func TestSaturatedBackgroundDegradesToFullWindow(t *testing.T) {
	lt, err := NewLabelTracker(TrackerConfig{
		UnitsPerClip: 10, HorizonClips: 1000, P0: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lt.K() != 10 {
		t.Fatalf("k = %d, want full window 10", lt.K())
	}
}

// TestAlphaZeroSentinel pins the MinK/Alpha sentinel semantics: the
// zero value means "engine default", not "significance level zero",
// and out-of-range values are rejected rather than silently defaulted.
func TestAlphaZeroSentinel(t *testing.T) {
	base := TrackerConfig{UnitsPerClip: 50, HorizonClips: 1000, P0: 1e-3}
	for _, alpha := range []float64{-0.1, 1, 1.5} {
		cfg := base
		cfg.Alpha = alpha
		if _, err := NewLabelTracker(cfg); err == nil {
			t.Errorf("Alpha %v accepted", alpha)
		}
	}
	def, err := NewLabelTracker(base)
	if err != nil {
		t.Fatal(err)
	}
	explicit := base
	explicit.Alpha = 0.05
	exp, err := NewLabelTracker(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if def.K() != exp.K() {
		t.Errorf("zero Alpha k = %d, explicit 0.05 k = %d", def.K(), exp.K())
	}
}

func TestMinKSentinels(t *testing.T) {
	base := TrackerConfig{UnitsPerClip: 50, HorizonClips: 100, P0: 1e-9, Dynamic: true}

	cfg := base
	cfg.MinK = MinKNone - 1
	if _, err := NewLabelTracker(cfg); err == nil {
		t.Error("MinK below MinKNone accepted")
	}

	// MinKNone lifts the dynamic floor of 2: with a near-zero background
	// the raw critical value is 1 and must be allowed to stand.
	cfg = base
	cfg.MinK = MinKNone
	lt, err := NewLabelTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lt.K() != 1 {
		t.Errorf("MinKNone k = %d, want the raw minimum 1", lt.K())
	}

	// MinKAuto (the zero value) keeps the dynamic default floor.
	auto, err := NewLabelTracker(base)
	if err != nil {
		t.Fatal(err)
	}
	if auto.K() < 2 {
		t.Errorf("MinKAuto dynamic k = %d, want >= 2", auto.K())
	}
}

// TestCriticalOrMax pins the degradation path: when no k rejects at the
// requested level (ErrNoCriticalValue), the tracker requires a full
// window of events instead of failing.
func TestCriticalOrMax(t *testing.T) {
	pr := scanstat.Params{P: 0.95, W: 10, N: 10000}
	if _, err := scanstat.CriticalValue(pr, 0.05); err != scanstat.ErrNoCriticalValue {
		t.Fatalf("precondition: want ErrNoCriticalValue, got %v", err)
	}
	k, err := criticalOrMax(pr, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if k != pr.W {
		t.Errorf("criticalOrMax = %d, want full window %d", k, pr.W)
	}

	// The normal path passes the scan-statistic value through.
	pr2 := scanstat.Params{P: 1e-3, W: 50, N: 100000}
	want, err := scanstat.CriticalValue(pr2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	got, err := criticalOrMax(pr2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("criticalOrMax = %d, want %d", got, want)
	}

	// Other errors (invalid params) still propagate.
	if _, err := criticalOrMax(scanstat.Params{P: -1, W: 10, N: 100}, 0.05); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestObserveRunValidation(t *testing.T) {
	lt, err := NewLabelTracker(TrackerConfig{UnitsPerClip: 50, HorizonClips: 100, P0: 1e-3, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, units := range []int{0, -1, 51} {
		if err := lt.ObserveRun(units, 0); err == nil {
			t.Errorf("units %d accepted", units)
		}
	}
}

// TestObserveRunFullMatchesObserveClip: a fully sampled run must update
// the tracker byte-identically to the dense ObserveClip path.
func TestObserveRunFullMatchesObserveClip(t *testing.T) {
	mk := func() *LabelTracker {
		lt, err := NewLabelTracker(TrackerConfig{UnitsPerClip: 50, HorizonClips: 2000, P0: 1e-4, Dynamic: true, KernelU: 500})
		if err != nil {
			t.Fatal(err)
		}
		return lt
	}
	a, b := mk(), mk()
	counts := []int{0, 1, 0, 2, 0, 0, 1, 49, 0, 3}
	for _, c := range counts {
		if _, err := a.ObserveClip(c); err != nil {
			t.Fatal(err)
		}
		if err := b.ObserveRun(50, c); err != nil {
			t.Fatal(err)
		}
	}
	if a.P() != b.P() || a.K() != b.K() {
		t.Errorf("full run diverged from dense: P %v/%v, K %d/%d", a.P(), b.P(), a.K(), b.K())
	}
}

// TestObserveRunScaledExclusionFloor pins the subsample-exclusion fix:
// with kExcl at its floor of 2, the threshold scaled to a sparse run
// rounds to 1, and without the floor every run containing a single
// positive would be excluded — the estimator would only ever see zeros
// and the background estimate would collapse.
func TestObserveRunScaledExclusionFloor(t *testing.T) {
	mk := func() *LabelTracker {
		lt, err := NewLabelTracker(TrackerConfig{UnitsPerClip: 50, HorizonClips: 2000, P0: 1e-4, Dynamic: true, KernelU: 200})
		if err != nil {
			t.Fatal(err)
		}
		return lt
	}
	// 1 positive in a 10-unit run: scaled threshold ceil(2*10/50) = 1,
	// floored to 2, so the run must be fed to the estimator.
	lt := mk()
	before := lt.P()
	if err := lt.ObserveRun(10, 1); err != nil {
		t.Fatal(err)
	}
	if lt.P() == before {
		t.Error("single-positive sparse run excluded from the estimator")
	}
	// A saturated run (every sampled unit positive) always clears the
	// scaled threshold and must be excluded.
	lt = mk()
	before = lt.P()
	if err := lt.ObserveRun(10, 10); err != nil {
		t.Fatal(err)
	}
	if lt.P() != before {
		t.Error("saturated sparse run contaminated the estimator")
	}
}

func TestObserveRunStaticNoop(t *testing.T) {
	lt, err := NewLabelTracker(TrackerConfig{UnitsPerClip: 50, HorizonClips: 100, P0: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	p, k := lt.P(), lt.K()
	if err := lt.ObserveRun(10, 0); err != nil {
		t.Fatal(err)
	}
	if lt.P() != p || lt.K() != k {
		t.Error("static tracker mutated by ObserveRun")
	}
}

func TestWithinTol(t *testing.T) {
	if !withinTol(1.0, 1.01, 0.02) {
		t.Error("within tolerance rejected")
	}
	if withinTol(1.0, 1.5, 0.02) {
		t.Error("out of tolerance accepted")
	}
	if withinTol(0.5, 0, 0.02) {
		t.Error("uninitialized ref accepted")
	}
	if !withinTol(0, 0, 0.02) {
		t.Error("zero-zero rejected")
	}
	if withinTol(1.0, 1.0, -1) {
		t.Error("negative tolerance must force recompute")
	}
}
