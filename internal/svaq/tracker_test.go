package svaq

import (
	"math/rand"
	"testing"
)

func TestLabelTrackerValidation(t *testing.T) {
	if _, err := NewLabelTracker(TrackerConfig{UnitsPerClip: 0, HorizonClips: 10}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewLabelTracker(TrackerConfig{UnitsPerClip: 50, HorizonClips: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := NewLabelTracker(TrackerConfig{UnitsPerClip: 50, HorizonClips: 100, P0: 1e-4}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestStaticTrackerKeepsK(t *testing.T) {
	lt, err := NewLabelTracker(TrackerConfig{
		UnitsPerClip: 50, HorizonClips: 2000, P0: 1e-3, Dynamic: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	k0 := lt.K()
	for i := 0; i < 200; i++ {
		if _, err := lt.ObserveClip(i % 50); err != nil {
			t.Fatal(err)
		}
	}
	if lt.K() != k0 {
		t.Fatalf("static tracker changed k: %d -> %d", k0, lt.K())
	}
}

func TestDynamicTrackerConvergesToNoiseRate(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	lt, err := NewLabelTracker(TrackerConfig{
		UnitsPerClip: 50, HorizonClips: 2000, P0: 1e-4, Dynamic: true, KernelU: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pure-noise stream at 1% per unit.
	const noise = 0.01
	for c := 0; c < 3000; c++ {
		count := 0
		for u := 0; u < 50; u++ {
			if rng.Float64() < noise {
				count++
			}
		}
		if _, err := lt.ObserveClip(count); err != nil {
			t.Fatal(err)
		}
	}
	if p := lt.P(); p < 0.004 || p > 0.02 {
		t.Fatalf("estimated background %v far from %v", lt.P(), noise)
	}
	// A true event burst (45/50 units) must be flagged positive and
	// must NOT move the background estimate.
	before := lt.P()
	pos, err := lt.ObserveClip(45)
	if err != nil {
		t.Fatal(err)
	}
	if !pos {
		t.Fatal("dense clip not positive")
	}
	if lt.P() != before {
		t.Fatalf("dense clip contaminated the estimate: %v -> %v", before, lt.P())
	}
}

func TestDynamicTrackerPriorWashesOut(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	finalK := map[float64]int{}
	for _, p0 := range []float64{1e-6, 1e-2} {
		lt, err := NewLabelTracker(TrackerConfig{
			UnitsPerClip: 50, HorizonClips: 2000, P0: p0, Dynamic: true, KernelU: 2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(rng.Int63()))
		_ = r
		local := rand.New(rand.NewSource(7)) // same stream for both priors
		for c := 0; c < 4000; c++ {
			count := 0
			for u := 0; u < 50; u++ {
				if local.Float64() < 0.008 {
					count++
				}
			}
			if _, err := lt.ObserveClip(count); err != nil {
				t.Fatal(err)
			}
		}
		finalK[p0] = lt.K()
	}
	if finalK[1e-6] != finalK[1e-2] {
		t.Fatalf("priors did not wash out: k=%v", finalK)
	}
}

func TestTrackerIndicatorPure(t *testing.T) {
	lt, _ := NewLabelTracker(TrackerConfig{UnitsPerClip: 50, HorizonClips: 100, P0: 1e-3})
	k := lt.K()
	if lt.Indicator(k-1) || !lt.Indicator(k) {
		t.Fatal("Indicator boundary wrong")
	}
	if lt.K() != k {
		t.Fatal("Indicator mutated the tracker")
	}
}

func TestMinKFloor(t *testing.T) {
	lt, err := NewLabelTracker(TrackerConfig{
		UnitsPerClip: 50, HorizonClips: 100, P0: 1e-9, Dynamic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lt.K() < 2 {
		t.Fatalf("dynamic k = %d, want ≥ 2", lt.K())
	}
	lt2, _ := NewLabelTracker(TrackerConfig{
		UnitsPerClip: 50, HorizonClips: 100, P0: 1e-9, Dynamic: true, MinK: 5,
	})
	if lt2.K() < 5 {
		t.Fatalf("explicit MinK ignored: %d", lt2.K())
	}
}

func TestSaturatedBackgroundDegradesToFullWindow(t *testing.T) {
	lt, err := NewLabelTracker(TrackerConfig{
		UnitsPerClip: 10, HorizonClips: 1000, P0: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lt.K() != 10 {
		t.Fatalf("k = %d, want full window 10", lt.K())
	}
}

func TestWithinTol(t *testing.T) {
	if !withinTol(1.0, 1.01, 0.02) {
		t.Error("within tolerance rejected")
	}
	if withinTol(1.0, 1.5, 0.02) {
		t.Error("out of tolerance accepted")
	}
	if withinTol(0.5, 0, 0.02) {
		t.Error("uninitialized ref accepted")
	}
	if !withinTol(0, 0, 0.02) {
		t.Error("zero-zero rejected")
	}
	if withinTol(1.0, 1.0, -1) {
		t.Error("negative tolerance must force recompute")
	}
}
