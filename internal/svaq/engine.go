// Package svaq implements the online case of the paper (§3): streaming
// algorithms SVAQ (Algorithm 1, static critical values) and SVAQD
// (Algorithm 3, dynamic background-probability updates) that identify
// the video-stream segments satisfying a query combining an action with
// object predicates.
//
// The engine consumes clips in order. For each clip it evaluates the
// per-predicate indicators of Algorithm 2 — counting positive
// per-frame object detections and per-shot action predictions against
// the scan-statistics critical values k_crit (§3.2) — and merges
// consecutive positive clips into result sequences (Equation 4).
package svaq

import (
	"fmt"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/explain"
	"vaq/internal/interval"
	"vaq/internal/plan"
	"vaq/internal/trace"
	"vaq/internal/video"
)

// Config tunes an Engine. The zero value is completed by sensible
// defaults in New.
type Config struct {
	// Thresholds are T_obj and T_act (§2); zero value uses
	// detect.DefaultThresholds.
	Thresholds detect.Thresholds
	// Alpha is the significance level of Equation 5 (default 0.05).
	Alpha float64
	// HorizonClips is the clip count whose occurrence units form the
	// scan statistic's total trial count N (default 2000). For bounded
	// videos, pass the video's clip count.
	HorizonClips int
	// Dynamic selects SVAQD: background probabilities are estimated
	// online (§3.3) and critical values recomputed as they move. False
	// selects SVAQ with fixed probabilities.
	Dynamic bool
	// P0Object / P0Action are the initial background probabilities. For
	// SVAQ they are final; for SVAQD they only seed the estimators
	// (default 1e-4, the paper's SVAQ operating point).
	P0Object float64
	P0Action float64
	// KernelU is the SVAQD kernel scale in occurrence units (default
	// 4000 frames for objects; the action estimator scales it by the
	// shot length so both kernels span the same wall-clock extent).
	KernelU float64
	// ShortCircuit evaluates predicates sequentially and skips the rest
	// of a clip once one predicate fails (Algorithm 2 lines 6–8),
	// saving model invocations at the price of starving later
	// predicates' estimators on negative clips. The ablation bench
	// exercises both settings.
	ShortCircuit bool
	// AdaptiveOrder reorders the short-circuit pipeline online by
	// ascending cost/(1−pass-rate) — the footnote 5 future work; see
	// order.go. Only meaningful with ShortCircuit.
	AdaptiveOrder bool
	// ExploreEvery forces every predicate to be evaluated on every
	// n-th clip when both ShortCircuit and AdaptiveOrder are on, so the
	// pass-rate estimates of late-pipeline predicates stay fresh
	// (default 20).
	ExploreEvery int
	// ActionCostWeight scales the per-invocation cost of the action
	// recognizer relative to a frame detection when ranking predicates
	// (default 4: shot models are heavier; e.g. I3D vs Mask R-CNN
	// per-invocation latency).
	ActionCostWeight float64
	// MinK floors the critical values. The self-consistent background
	// estimation of SVAQD (estimators learn only from clips whose
	// counts are statistically consistent with background) needs k ≥ 2
	// to converge. Zero means auto: 2 for Dynamic engines, 1 otherwise.
	MinK int
	// RecomputeTol skips the critical-value recomputation while a
	// background probability stays within this relative distance of the
	// value it last used (default 0.02). Set negative to force
	// recomputation on every update.
	RecomputeTol float64
	// RecordIndicators keeps the per-frame / per-shot prediction
	// indicator streams for the query labels, enabling the FPR analysis
	// of Table 5. Off by default (memory proportional to stream length).
	// Incompatible with an enabled Plan (subsampled evaluation leaves
	// gaps in the streams).
	RecordIndicators bool
	// Plan enables coarse-to-fine adaptive sampling (package plan) for
	// the object and action predicates: each clip is first evaluated on
	// a sparse unit subsample and densified only while the scan-
	// statistic bounds leave the indicator undecided. Relation
	// predicates always run dense (they spend no model invocations).
	// The zero value evaluates densely; Plan.Rate == 1 runs the planner
	// machinery but is byte-identical to the dense path.
	Plan plan.Config
}

func (c Config) withDefaults() Config {
	if c.Thresholds == (detect.Thresholds{}) {
		c.Thresholds = detect.DefaultThresholds()
	}
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.HorizonClips == 0 {
		c.HorizonClips = 2000
	}
	if c.P0Object == 0 {
		c.P0Object = 1e-4
	}
	if c.P0Action == 0 {
		c.P0Action = 1e-4
	}
	if c.KernelU == 0 {
		c.KernelU = 4000
	}
	if c.ExploreEvery == 0 {
		c.ExploreEvery = 20
	}
	if c.ActionCostWeight == 0 {
		c.ActionCostWeight = 4
	}
	return c
}

// trackerConfig translates the engine configuration for one predicate's
// LabelTracker.
func (c Config) trackerConfig(unitsPerClip int, p0, kernelU float64) TrackerConfig {
	return TrackerConfig{
		UnitsPerClip: unitsPerClip,
		HorizonClips: c.HorizonClips,
		Alpha:        c.Alpha,
		P0:           p0,
		Dynamic:      c.Dynamic,
		KernelU:      kernelU,
		MinK:         c.MinK,
		RecomputeTol: c.RecomputeTol,
	}
}

// ClipResult reports the evaluation of one clip (Algorithm 2).
type ClipResult struct {
	Clip     video.ClipIdx
	Positive bool
	// ObjectCounts holds, per evaluated object predicate, the number of
	// frames in the clip with a positive prediction. Predicates skipped
	// by short-circuiting are absent.
	ObjectCounts map[annot.Label]int
	// ActionCount is the number of shots with a positive action
	// prediction; −1 when the action was skipped by short-circuiting.
	ActionCount int
	// RelationCounts holds, per evaluated relation predicate (footnote 2
	// extension; see Engine.WithRelations), the number of frames on
	// which the relation holds.
	RelationCounts map[string]int
	// Invocations counts model calls spent on this clip (object
	// detector calls plus action recognizer calls).
	Invocations int
}

// Engine processes one video stream for one query.
type Engine struct {
	query annot.Query
	det   detect.ObjectDetector
	rec   detect.ActionRecognizer
	geom  video.Geometry
	cfg   Config

	objTrk    map[annot.Label]*LabelTracker
	actTrk    *LabelTracker
	relations []relationState

	// short-circuit pipeline (order.go)
	order []predRef
	stats []predStats

	nextClip   video.ClipIdx
	indicators []bool

	// planner outcome accounting (Config.Plan)
	planStats plan.Stats

	// indicator logs (RecordIndicators)
	objLog map[annot.Label][]bool
	actLog []bool

	invocations int

	// tracing (AttachTrace); nil when untraced, and every handle is
	// nil-safe, so the stepping path pays only nil checks.
	tr        *trace.Tracer
	traceRoot trace.SpanID
	cFrames   *trace.Counter
	cShots    *trace.Counter
	cClips    *trace.Counter
	stClip    *trace.Stage

	// EXPLAIN collection (AttachExplain); nil when off — the collector
	// is nil-safe, the e.ex guards just skip building observations.
	ex *explain.Collector
}

// AttachTrace wires the engine to a tracer: every subsequent clip
// evaluation opens a span (parented under parent, e.g. a session or CLI
// root span) with one child span per evaluated predicate stage, and the
// engine bumps the detect.*_invocations and svaq.clips counters. Call
// before the first ProcessClip; the engine is single-goroutine, so no
// synchronization is involved.
func (e *Engine) AttachTrace(tr *trace.Tracer, parent trace.SpanID) {
	e.tr, e.traceRoot = tr, parent
	e.cFrames = tr.Counter("detect.frame_invocations")
	e.cShots = tr.Counter("detect.shot_invocations")
	e.cClips = tr.Counter("svaq.clips")
	e.stClip = tr.Stage("svaq.clip")
}

// AttachExplain wires the engine to an EXPLAIN collector: every
// subsequent predicate evaluation and clip outcome is attributed to
// its decision source and invocation layer. Call before the first
// ProcessClip; a nil collector leaves collection off.
func (e *Engine) AttachExplain(c *explain.Collector) { e.ex = c }

// New builds an engine for query q over a stream with the given
// geometry, using the supplied models.
func New(q annot.Query, det detect.ObjectDetector, rec detect.ActionRecognizer, geom video.Geometry, cfg Config) (*Engine, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if q.Action != "" && rec == nil {
		return nil, fmt.Errorf("svaq: query has an action predicate but no action recognizer")
	}
	if len(q.Objects) > 0 && det == nil {
		return nil, fmt.Errorf("svaq: query has object predicates but no object detector")
	}
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.Plan.Enabled() && cfg.RecordIndicators {
		return nil, fmt.Errorf("svaq: RecordIndicators requires dense evaluation; disable Plan (Rate %d) to record indicator streams", cfg.Plan.Rate)
	}
	cfg = cfg.withDefaults()
	e := &Engine{
		query:  q,
		det:    det,
		rec:    rec,
		geom:   geom,
		cfg:    cfg,
		objTrk: map[annot.Label]*LabelTracker{},
		objLog: map[annot.Label][]bool{},
	}
	for _, o := range q.Objects {
		lt, err := NewLabelTracker(cfg.trackerConfig(geom.ClipLen(), cfg.P0Object, cfg.KernelU))
		if err != nil {
			return nil, fmt.Errorf("svaq: object %q: %w", o, err)
		}
		e.objTrk[o] = lt
	}
	if q.Action != "" {
		// The action tracker works in shots; scale the kernel so it
		// spans the same wall-clock extent as the object kernels.
		u := cfg.KernelU / float64(geom.ShotLen)
		if u < 1 {
			u = 1
		}
		lt, err := NewLabelTracker(cfg.trackerConfig(geom.ShotsPerClip, cfg.P0Action, u))
		if err != nil {
			return nil, fmt.Errorf("svaq: action %q: %w", q.Action, err)
		}
		e.actTrk = lt
	}
	return e, nil
}

// CriticalValues returns the current per-object critical values and the
// action critical value (0 if the query has no action predicate).
func (e *Engine) CriticalValues() (obj map[annot.Label]int, act int) {
	out := make(map[annot.Label]int, len(e.objTrk))
	for o, lt := range e.objTrk {
		out[o] = lt.K()
	}
	if e.actTrk != nil {
		act = e.actTrk.K()
	}
	return out, act
}

// BackgroundP returns the current background probability of the given
// object predicate, or of the action when label equals the query action.
func (e *Engine) BackgroundP(label annot.Label) float64 {
	if lt, ok := e.objTrk[label]; ok {
		return lt.P()
	}
	if label == e.query.Action && e.actTrk != nil {
		return e.actTrk.P()
	}
	return 0
}

// ProcessClip evaluates the next clip of the stream (clips must be fed
// in order starting at 0) and returns its evaluation.
func (e *Engine) ProcessClip(c video.ClipIdx) (ClipResult, error) {
	if c != e.nextClip {
		return ClipResult{}, fmt.Errorf("svaq: clips must be processed in order: got %d, want %d", c, e.nextClip)
	}
	e.nextClip++
	res, err := e.evaluateClip(c)
	if err != nil {
		return ClipResult{}, err
	}
	e.indicators = append(e.indicators, res.Positive)
	e.invocations += res.Invocations
	return res, nil
}

// evaluateClip is Algorithm 2: per-predicate indicators on clip c,
// optionally short-circuiting after the first failed predicate. The
// pipeline order is the query order unless Config.AdaptiveOrder is on.
func (e *Engine) evaluateClip(c video.ClipIdx) (ClipResult, error) {
	e.initOrder()
	if e.cfg.AdaptiveOrder {
		e.reorder()
	}
	var clipSpan *trace.Span
	var clipStart time.Time
	if e.tr != nil {
		clipSpan = e.tr.StartSpan("svaq.clip", e.traceRoot)
		clipSpan.SetInt("clip", int64(c))
		clipStart = time.Now()
		defer func() {
			e.cClips.Add(1)
			e.stClip.Observe(time.Since(clipStart))
			clipSpan.End()
		}()
	}
	res := ClipResult{
		Clip:         c,
		Positive:     true,
		ObjectCounts: map[annot.Label]int{},
		ActionCount:  -1,
	}
	// Exploration clips evaluate everything so late-pipeline pass-rate
	// estimates stay fresh under adaptive ordering.
	shortCircuit := e.cfg.ShortCircuit
	if e.cfg.AdaptiveOrder && shortCircuit && int(c)%e.cfg.ExploreEvery == 0 {
		shortCircuit = false
	}
	for _, ref := range e.order {
		if !res.Positive && shortCircuit {
			return res, nil
		}
		var predSpan *trace.Span
		if e.tr != nil {
			predSpan = e.tr.StartSpan(e.predName(ref), clipSpan.ID())
		}
		positive, err := e.evalPredicate(ref, c, &res)
		predSpan.End()
		if err != nil {
			return res, err
		}
		e.observePass(ref, positive)
		if !positive {
			// The first failing predicate settles the clip; attribute the
			// rejection to its decision machinery (relations always run
			// dense, so they reject via the scan statistic even when the
			// planner is armed).
			if res.Positive && e.ex != nil {
				if ref.kind != predRelation && e.cfg.Plan.Enabled() {
					e.ex.ClipOutcome(explain.ClipPlanPrune)
				} else {
					e.ex.ClipOutcome(explain.ClipScanReject)
				}
			}
			res.Positive = false
		}
	}
	if res.Positive && e.ex != nil {
		if e.cfg.Plan.Enabled() {
			e.ex.ClipOutcome(explain.ClipPlanAccept)
		} else {
			e.ex.ClipOutcome(explain.ClipScanAccept)
		}
	}
	return res, nil
}

// detectObject returns the prediction indicator 1_{o}(v): whether any
// detection of label o on frame v scores at least T_obj.
func (e *Engine) detectObject(v video.FrameIdx, o annot.Label) bool {
	for _, d := range e.det.Detect(v, []annot.Label{o}) {
		if d.Label == o && d.Score >= e.cfg.Thresholds.Object {
			return true
		}
	}
	return false
}

// recognizeAction returns the prediction indicator 1_{a}(s).
func (e *Engine) recognizeAction(s video.ShotIdx) bool {
	for _, a := range e.rec.Recognize(s, []annot.Label{e.query.Action}) {
		if a.Label == e.query.Action && a.Score >= e.cfg.Thresholds.Action {
			return true
		}
	}
	return false
}

// Run processes clips 0..nclips−1 and returns the result sequences.
func (e *Engine) Run(nclips int) (interval.Set, error) {
	for c := e.nextClip; int(c) < nclips; c++ {
		if _, err := e.ProcessClip(c); err != nil {
			return nil, err
		}
	}
	return e.Sequences(), nil
}

// Sequences returns the result sequences over the clips processed so
// far: maximal runs of positive clips (Equation 4).
func (e *Engine) Sequences() interval.Set {
	return interval.FromIndicators(e.indicators)
}

// Invocations returns the total number of model invocations so far
// (frame detections plus shot recognitions).
func (e *Engine) Invocations() int { return e.invocations }

// PlanStats reports the adaptive sampling planner's outcome counters
// (zero value when Config.Plan is disabled).
func (e *Engine) PlanStats() plan.Stats { return e.planStats }

// ClipsProcessed returns the number of clips consumed so far (the next
// clip expected by ProcessClip).
func (e *Engine) ClipsProcessed() int { return int(e.nextClip) }

// ObjectIndicators returns the recorded per-frame indicator stream of
// an object predicate (nil unless Config.RecordIndicators was set).
func (e *Engine) ObjectIndicators(o annot.Label) []bool { return e.objLog[o] }

// ActionIndicators returns the recorded per-shot indicator stream of
// the action predicate (nil unless Config.RecordIndicators was set).
func (e *Engine) ActionIndicators() []bool { return e.actLog }
