package svaq

import (
	"fmt"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/explain"
	"vaq/internal/interval"
	"vaq/internal/plan"
	"vaq/internal/trace"
	"vaq/internal/video"
)

// The paper's core algorithms consume conjunctive queries of one action
// plus objects; footnotes 3–4 sketch the extension to multiple actions
// and disjunctions by computing per-predicate indicators per clip and
// combining them through the query's conjunctive normal form. CNFEngine
// implements that extension: each distinct label keeps its own
// LabelTracker; a clause is satisfied when any of its predicates is, and
// a clip is positive when every clause is.

// Clause is one disjunction of simple predicates.
type Clause struct {
	// Actions and Objects list the clause's predicates; the clause is
	// satisfied on a clip when at least one has a positive indicator.
	Actions []annot.Label
	Objects []annot.Label
}

// CNFEngine evaluates a conjunction of clauses over a stream.
type CNFEngine struct {
	clauses []Clause
	det     detect.ObjectDetector
	rec     detect.ActionRecognizer
	geom    video.Geometry
	cfg     Config

	objTrk map[annot.Label]*LabelTracker
	actTrk map[annot.Label]*LabelTracker

	nextClip    video.ClipIdx
	indicators  []bool
	invocations int
	planStats   plan.Stats

	// tracing (AttachTrace); nil-safe handles, see Engine.AttachTrace.
	tr        *trace.Tracer
	traceRoot trace.SpanID
	cFrames   *trace.Counter
	cShots    *trace.Counter
	cClips    *trace.Counter
	stClip    *trace.Stage

	// EXPLAIN collection (AttachExplain); see Engine.AttachExplain.
	ex *explain.Collector
}

// AttachTrace wires the CNF engine to a tracer: per-clip spans with one
// child span per evaluated label, plus the shared invocation counters.
// Call before the first ProcessClip.
func (e *CNFEngine) AttachTrace(tr *trace.Tracer, parent trace.SpanID) {
	e.tr, e.traceRoot = tr, parent
	e.cFrames = tr.Counter("detect.frame_invocations")
	e.cShots = tr.Counter("detect.shot_invocations")
	e.cClips = tr.Counter("svaq.clips")
	e.stClip = tr.Stage("svaq.clip")
}

// AttachExplain wires the CNF engine to an EXPLAIN collector; see
// Engine.AttachExplain.
func (e *CNFEngine) AttachExplain(c *explain.Collector) { e.ex = c }

// explainPred feeds one per-label evaluation to the EXPLAIN collector.
func (e *CNFEngine) explainPred(name string, planned bool, pos bool, units int, pr plan.Result) {
	if e.ex == nil {
		return
	}
	o := explain.PredObservation{Name: name, Positive: pos, Planned: planned, Units: units}
	if planned {
		o.BaseUnits = pr.BaseSampled
		o.Rungs = pr.Rungs
		o.Reason = pr.Reason
	}
	e.ex.ObservePredicate(o)
}

// NewCNF builds an engine for the given clauses.
func NewCNF(clauses []Clause, det detect.ObjectDetector, rec detect.ActionRecognizer, geom video.Geometry, cfg Config) (*CNFEngine, error) {
	if len(clauses) == 0 {
		return nil, fmt.Errorf("svaq: CNF query has no clauses")
	}
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	e := &CNFEngine{
		clauses: clauses,
		det:     det,
		rec:     rec,
		geom:    geom,
		cfg:     cfg,
		objTrk:  map[annot.Label]*LabelTracker{},
		actTrk:  map[annot.Label]*LabelTracker{},
	}
	actKernel := cfg.KernelU / float64(geom.ShotLen)
	if actKernel < 1 {
		actKernel = 1
	}
	for _, cl := range e.clauses {
		if len(cl.Actions) == 0 && len(cl.Objects) == 0 {
			return nil, fmt.Errorf("svaq: empty CNF clause")
		}
		for _, o := range cl.Objects {
			if e.objTrk[o] != nil {
				continue
			}
			if det == nil {
				return nil, fmt.Errorf("svaq: object predicate %q but no object detector", o)
			}
			lt, err := NewLabelTracker(cfg.trackerConfig(geom.ClipLen(), cfg.P0Object, cfg.KernelU))
			if err != nil {
				return nil, fmt.Errorf("svaq: object %q: %w", o, err)
			}
			e.objTrk[o] = lt
		}
		for _, a := range cl.Actions {
			if e.actTrk[a] != nil {
				continue
			}
			if rec == nil {
				return nil, fmt.Errorf("svaq: action predicate %q but no action recognizer", a)
			}
			lt, err := NewLabelTracker(cfg.trackerConfig(geom.ShotsPerClip, cfg.P0Action, actKernel))
			if err != nil {
				return nil, fmt.Errorf("svaq: action %q: %w", a, err)
			}
			e.actTrk[a] = lt
		}
	}
	return e, nil
}

// ProcessClip evaluates the next clip (clips must be fed in order).
func (e *CNFEngine) ProcessClip(c video.ClipIdx) (bool, error) {
	if c != e.nextClip {
		return false, fmt.Errorf("svaq: clips must be processed in order: got %d, want %d", c, e.nextClip)
	}
	e.nextClip++
	var clipSpan *trace.Span
	var clipStart time.Time
	if e.tr != nil {
		clipSpan = e.tr.StartSpan("svaq.clip", e.traceRoot)
		clipSpan.SetInt("clip", int64(c))
		clipStart = time.Now()
		defer func() {
			e.cClips.Add(1)
			e.stClip.Observe(time.Since(clipStart))
			clipSpan.End()
		}()
	}
	objPos := map[annot.Label]bool{}
	actPos := map[annot.Label]bool{}
	frameLo, frameHi := e.geom.FrameRangeOfClip(c)
	for o, lt := range e.objTrk {
		var predSpan *trace.Span
		if e.tr != nil {
			predSpan = e.tr.StartSpan("obj:"+string(o), clipSpan.ID())
		}
		detect1 := func(v video.FrameIdx) bool {
			e.invocations++
			for _, d := range e.det.Detect(v, []annot.Label{o}) {
				if d.Label == o && d.Score >= e.cfg.Thresholds.Object {
					return true
				}
			}
			return false
		}
		var pos bool
		var err error
		if e.cfg.Plan.Enabled() {
			w := int(frameHi - frameLo)
			var pr plan.Result
			pr, err = e.cfg.Plan.Evaluate(w, lt.K(), lt.P(), func(u int) (bool, error) {
				return detect1(frameLo + video.FrameIdx(u)), nil
			})
			if err == nil {
				e.cFrames.Add(int64(pr.Sampled))
				e.planStats.Observe(w, pr)
				pos = pr.Positive
				err = lt.ObserveRun(pr.Sampled, pr.Count)
				e.explainPred("obj:"+string(o), true, pos, pr.Sampled, pr)
			}
		} else {
			count := 0
			for v := frameLo; v < frameHi; v++ {
				if detect1(v) {
					count++
				}
			}
			e.cFrames.Add(int64(frameHi - frameLo))
			pos, err = lt.ObserveClip(count)
			e.explainPred("obj:"+string(o), false, pos, int(frameHi-frameLo), plan.Result{})
		}
		predSpan.End()
		if err != nil {
			return false, fmt.Errorf("svaq: object %q: %w", o, err)
		}
		objPos[o] = pos
	}
	shotLo, shotHi := e.geom.ShotRangeOfClip(c)
	for a, lt := range e.actTrk {
		var predSpan *trace.Span
		if e.tr != nil {
			predSpan = e.tr.StartSpan("act:"+string(a), clipSpan.ID())
		}
		recognize1 := func(s video.ShotIdx) bool {
			e.invocations++
			for _, sc := range e.rec.Recognize(s, []annot.Label{a}) {
				if sc.Label == a && sc.Score >= e.cfg.Thresholds.Action {
					return true
				}
			}
			return false
		}
		var pos bool
		var err error
		if e.cfg.Plan.Enabled() {
			w := int(shotHi - shotLo)
			var pr plan.Result
			pr, err = e.cfg.Plan.Evaluate(w, lt.K(), lt.P(), func(u int) (bool, error) {
				return recognize1(shotLo + video.ShotIdx(u)), nil
			})
			if err == nil {
				e.cShots.Add(int64(pr.Sampled))
				e.planStats.Observe(w, pr)
				pos = pr.Positive
				err = lt.ObserveRun(pr.Sampled, pr.Count)
				e.explainPred("act:"+string(a), true, pos, pr.Sampled, pr)
			}
		} else {
			count := 0
			for s := shotLo; s < shotHi; s++ {
				if recognize1(s) {
					count++
				}
			}
			e.cShots.Add(int64(shotHi - shotLo))
			pos, err = lt.ObserveClip(count)
			e.explainPred("act:"+string(a), false, pos, int(shotHi-shotLo), plan.Result{})
		}
		predSpan.End()
		if err != nil {
			return false, fmt.Errorf("svaq: action %q: %w", a, err)
		}
		actPos[a] = pos
	}
	positive := true
	for _, cl := range e.clauses {
		clause := false
		for _, o := range cl.Objects {
			clause = clause || objPos[o]
		}
		for _, a := range cl.Actions {
			clause = clause || actPos[a]
		}
		if !clause {
			positive = false
			break
		}
	}
	// The CNF combination settles the clip from all per-label
	// indicators at once; attribute it to whichever machinery produced
	// them (the planner when armed, the scan statistic otherwise).
	if e.ex != nil {
		switch {
		case positive && e.cfg.Plan.Enabled():
			e.ex.ClipOutcome(explain.ClipPlanAccept)
		case positive:
			e.ex.ClipOutcome(explain.ClipScanAccept)
		case e.cfg.Plan.Enabled():
			e.ex.ClipOutcome(explain.ClipPlanPrune)
		default:
			e.ex.ClipOutcome(explain.ClipScanReject)
		}
	}
	e.indicators = append(e.indicators, positive)
	return positive, nil
}

// Run processes clips 0..nclips−1 and returns the result sequences.
func (e *CNFEngine) Run(nclips int) (interval.Set, error) {
	for c := e.nextClip; int(c) < nclips; c++ {
		if _, err := e.ProcessClip(c); err != nil {
			return nil, err
		}
	}
	return e.Sequences(), nil
}

// Sequences returns the maximal runs of positive clips so far.
func (e *CNFEngine) Sequences() interval.Set {
	return interval.FromIndicators(e.indicators)
}

// Invocations returns the total number of model invocations so far.
func (e *CNFEngine) Invocations() int { return e.invocations }

// PlanStats reports the adaptive sampling planner's outcome counters
// (zero value when Config.Plan is disabled).
func (e *CNFEngine) PlanStats() plan.Stats { return e.planStats }

// ClipsProcessed returns the number of clips consumed so far.
func (e *CNFEngine) ClipsProcessed() int { return int(e.nextClip) }
