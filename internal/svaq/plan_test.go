package svaq

import (
	"testing"

	"vaq/internal/detect"
	"vaq/internal/plan"
)

// TestPlanRateOneByteIdentical is the planner's metamorphic check at
// engine level: a Rate-1 planner runs the single dense rung, so the
// result sequences AND the backend invocation count must be
// byte-identical to the unplanned engine over the same scene. Run with
// -race in CI as the planner determinism smoke.
func TestPlanRateOneByteIdentical(t *testing.T) {
	scene, q := testWorld(t, 11)
	nclips := scene.Truth.Meta.Clips()

	run := func(pcfg plan.Config) (string, int64) {
		var meter detect.CostMeter
		det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, &meter)
		rec := detect.NewSimActionRecognizer(scene, detect.I3D, &meter)
		e, err := New(q, det, rec, scene.Truth.Meta.Geom, Config{
			Dynamic: true, HorizonClips: nclips, Plan: pcfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		seqs, err := e.Run(nclips)
		if err != nil {
			t.Fatal(err)
		}
		return seqs.String(), meter.Calls()
	}

	denseSeqs, denseCalls := run(plan.Config{})
	planSeqs, planCalls := run(plan.Config{Rate: 1})
	if planSeqs != denseSeqs {
		t.Errorf("rate-1 sequences diverge from dense:\n dense: %s\n plan:  %s", denseSeqs, planSeqs)
	}
	if planCalls != denseCalls {
		t.Errorf("rate-1 invocations = %d, dense = %d", planCalls, denseCalls)
	}

	// And the planned path itself must be deterministic run-to-run.
	seqs8a, calls8a := run(plan.Config{Rate: 8})
	seqs8b, calls8b := run(plan.Config{Rate: 8})
	if seqs8a != seqs8b || calls8a != calls8b {
		t.Errorf("rate-8 runs diverge: %q/%d vs %q/%d", seqs8a, calls8a, seqs8b, calls8b)
	}
	if calls8a >= denseCalls {
		t.Errorf("rate-8 invocations %d not below dense %d", calls8a, denseCalls)
	}
}

func TestPlanStatsAccumulate(t *testing.T) {
	scene, q := testWorld(t, 12)
	nclips := scene.Truth.Meta.Clips()
	e := engines(t, scene, q, Config{
		Dynamic: true, HorizonClips: nclips, Plan: plan.Config{Rate: 8},
	})
	if _, err := e.Run(nclips); err != nil {
		t.Fatal(err)
	}
	st := e.PlanStats()
	if st.Clips == 0 {
		t.Fatal("planner ran but Stats.Clips == 0")
	}
	if st.Units >= st.UnitsDense {
		t.Errorf("planned units %d not below dense %d", st.Units, st.UnitsDense)
	}
	if st.Savings() <= 1 {
		t.Errorf("Savings() = %v, want > 1", st.Savings())
	}
}

func TestPlanConfigRejected(t *testing.T) {
	scene, q := testWorld(t, 13)
	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	geom := scene.Truth.Meta.Geom
	if _, err := New(q, det, rec, geom, Config{Plan: plan.Config{Rate: -2}}); err == nil {
		t.Error("negative plan rate accepted")
	}
	if _, err := New(q, det, rec, geom, Config{
		RecordIndicators: true, Plan: plan.Config{Rate: 4},
	}); err == nil {
		t.Error("RecordIndicators with an enabled Plan accepted")
	}
	if _, err := New(q, det, rec, geom, Config{
		RecordIndicators: true, Plan: plan.Config{},
	}); err != nil {
		t.Errorf("RecordIndicators with a disabled Plan rejected: %v", err)
	}
}
