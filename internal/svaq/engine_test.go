package svaq

import (
	"testing"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/metrics"
	"vaq/internal/video"
)

// testWorld builds a small deterministic scene: one action with three
// episodes and one correlated object.
func testWorld(t *testing.T, seed int64) (*detect.Scene, annot.Query) {
	t.Helper()
	geom := video.DefaultGeometry()
	meta := video.Meta{Name: "t", Frames: 60000, Geom: geom} // 1200 clips
	truth := annot.NewVideo(meta)
	// Action on shots: three episodes.
	truth.AddAction("run", interval.Set{{Lo: 100, Hi: 179}, {Lo: 2000, Hi: 2119}, {Lo: 4500, Hi: 4559}})
	// Object covers the action episodes (in frames) with margin, plus a
	// background stretch.
	truth.AddObject("car", interval.Set{
		{Lo: 950, Hi: 1850}, {Lo: 19900, Hi: 21300}, {Lo: 44900, Hi: 45700},
		{Lo: 30000, Hi: 31000},
	})
	scene := &detect.Scene{Truth: truth, Seed: seed}
	return scene, annot.Query{Action: "run", Objects: []annot.Label{"car"}}
}

func engines(t *testing.T, scene *detect.Scene, q annot.Query, cfg Config) *Engine {
	t.Helper()
	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	e, err := New(q, det, rec, scene.Truth.Meta.Geom, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	scene, q := testWorld(t, 1)
	geom := scene.Truth.Meta.Geom
	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	if _, err := New(annot.Query{}, det, rec, geom, Config{}); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := New(q, det, rec, video.Geometry{}, Config{}); err == nil {
		t.Error("invalid geometry accepted")
	}
	if _, err := New(q, det, nil, geom, Config{}); err == nil {
		t.Error("missing recognizer accepted")
	}
	if _, err := New(q, nil, rec, geom, Config{}); err == nil {
		t.Error("missing detector accepted")
	}
	if _, err := New(annot.Query{Objects: []annot.Label{"car"}}, det, nil, geom, Config{}); err != nil {
		t.Errorf("object-only query without recognizer rejected: %v", err)
	}
}

func TestIdealModelsPerfectF1(t *testing.T) {
	scene, q := testWorld(t, 2)
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
	nclips := scene.Truth.Meta.Clips()
	for _, dyn := range []bool{false, true} {
		e, err := New(q, det, rec, scene.Truth.Meta.Geom, Config{Dynamic: dyn, HorizonClips: nclips})
		if err != nil {
			t.Fatal(err)
		}
		seqs, err := e.Run(nclips)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := scene.Truth.GroundTruthClips(q)
		if err != nil {
			t.Fatal(err)
		}
		got := metrics.SequenceF1(seqs, truth, 0.5)
		if got.F1 != 1 {
			t.Fatalf("dynamic=%v: ideal models F1 = %v (%+v)\nseqs=%v\ntruth=%v",
				dyn, got.F1, got, seqs, truth)
		}
	}
}

func TestSVAQDBeatsBadlyTunedSVAQ(t *testing.T) {
	scene, q := testWorld(t, 3)
	nclips := scene.Truth.Meta.Clips()
	truth, _ := scene.Truth.GroundTruthClips(q)
	run := func(cfg Config) float64 {
		cfg.HorizonClips = nclips
		e := engines(t, scene, q, cfg)
		seqs, err := e.Run(nclips)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.SequenceF1(seqs, truth, 0.5).F1
	}
	static := run(Config{P0Object: 0.2, P0Action: 0.2}) // absurd background
	dynamic := run(Config{Dynamic: true, P0Object: 0.2, P0Action: 0.2})
	if dynamic <= static {
		t.Fatalf("SVAQD (%v) should beat badly tuned SVAQ (%v)", dynamic, static)
	}
	if dynamic < 0.8 {
		t.Fatalf("SVAQD F1 = %v, want ≥ 0.8", dynamic)
	}
}

func TestSVAQDPriorIndependent(t *testing.T) {
	scene, q := testWorld(t, 4)
	nclips := scene.Truth.Meta.Clips()
	var first interval.Set
	for i, p0 := range []float64{1e-6, 1e-3, 1e-1} {
		e := engines(t, scene, q, Config{Dynamic: true, P0Object: p0, P0Action: p0, HorizonClips: nclips})
		seqs, err := e.Run(nclips)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = seqs
			continue
		}
		if !seqs.Equal(first) {
			t.Fatalf("p0=%v produced different SVAQD output:\n%v\nvs\n%v", p0, seqs, first)
		}
	}
}

func TestProcessClipOrderEnforced(t *testing.T) {
	scene, q := testWorld(t, 5)
	e := engines(t, scene, q, Config{HorizonClips: 100})
	if _, err := e.ProcessClip(5); err == nil {
		t.Fatal("out-of-order clip accepted")
	}
	if _, err := e.ProcessClip(0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ProcessClip(0); err == nil {
		t.Fatal("replayed clip accepted")
	}
}

func TestShortCircuitSavesInvocations(t *testing.T) {
	scene, q := testWorld(t, 6)
	nclips := scene.Truth.Meta.Clips()
	full := engines(t, scene, q, Config{HorizonClips: nclips})
	sc := engines(t, scene, q, Config{HorizonClips: nclips, ShortCircuit: true})
	if _, err := full.Run(nclips); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(nclips); err != nil {
		t.Fatal(err)
	}
	if sc.Invocations() >= full.Invocations() {
		t.Fatalf("short-circuit did not save: %d vs %d", sc.Invocations(), full.Invocations())
	}
	// Both report identical sequences for a static engine (indicators
	// identical; only skipped work differs).
	if !sc.Sequences().Equal(full.Sequences()) {
		t.Fatalf("short-circuit changed static results:\n%v\nvs\n%v", sc.Sequences(), full.Sequences())
	}
}

func TestActionOnlyAndObjectOnlyQueries(t *testing.T) {
	scene, _ := testWorld(t, 7)
	nclips := scene.Truth.Meta.Clips()
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
	geom := scene.Truth.Meta.Geom

	aq := annot.Query{Action: "run"}
	e, err := New(aq, nil, rec, geom, Config{HorizonClips: nclips})
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := e.Run(nclips)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := scene.Truth.GroundTruthClips(aq)
	if got := metrics.SequenceF1(seqs, truth, 0.5); got.F1 != 1 {
		t.Fatalf("action-only ideal F1 = %v", got.F1)
	}

	oq := annot.Query{Objects: []annot.Label{"car"}}
	e2, err := New(oq, det, nil, geom, Config{HorizonClips: nclips})
	if err != nil {
		t.Fatal(err)
	}
	seqs2, err := e2.Run(nclips)
	if err != nil {
		t.Fatal(err)
	}
	truth2, _ := scene.Truth.GroundTruthClips(oq)
	if got := metrics.SequenceF1(seqs2, truth2, 0.5); got.F1 != 1 {
		t.Fatalf("object-only ideal F1 = %v", got.F1)
	}
}

func TestCriticalValuesExposed(t *testing.T) {
	scene, q := testWorld(t, 8)
	e := engines(t, scene, q, Config{HorizonClips: 1000, P0Object: 1e-3, P0Action: 1e-3})
	obj, act := e.CriticalValues()
	if obj["car"] < 1 || act < 1 {
		t.Fatalf("critical values = %v / %d", obj, act)
	}
	if p := e.BackgroundP("car"); p != 1e-3 {
		t.Fatalf("BackgroundP(car) = %v", p)
	}
	if p := e.BackgroundP("run"); p != 1e-3 {
		t.Fatalf("BackgroundP(run) = %v", p)
	}
	if p := e.BackgroundP("ghost"); p != 0 {
		t.Fatalf("BackgroundP(ghost) = %v", p)
	}
}

func TestRecordIndicators(t *testing.T) {
	scene, q := testWorld(t, 9)
	e := engines(t, scene, q, Config{HorizonClips: 100, RecordIndicators: true})
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	geom := scene.Truth.Meta.Geom
	if got := len(e.ObjectIndicators("car")); got != 100*geom.ClipLen() {
		t.Fatalf("object log length = %d", got)
	}
	if got := len(e.ActionIndicators()); got != 100*geom.ShotsPerClip {
		t.Fatalf("action log length = %d", got)
	}
	e2 := engines(t, scene, q, Config{HorizonClips: 100})
	if _, err := e2.Run(100); err != nil {
		t.Fatal(err)
	}
	if e2.ObjectIndicators("car") != nil || e2.ActionIndicators() != nil {
		t.Fatal("indicator logs recorded without RecordIndicators")
	}
}

func TestRunIdempotentContinuation(t *testing.T) {
	scene, q := testWorld(t, 10)
	e := engines(t, scene, q, Config{HorizonClips: 200})
	for c := 0; c < 50; c++ {
		if _, err := e.ProcessClip(video.ClipIdx(c)); err != nil {
			t.Fatal(err)
		}
	}
	// Run continues from where ProcessClip stopped.
	seqs, err := e.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	whole := engines(t, scene, q, Config{HorizonClips: 200})
	want, err := whole.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if !seqs.Equal(want) {
		t.Fatalf("piecewise run differs: %v vs %v", seqs, want)
	}
}
