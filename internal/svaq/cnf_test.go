package svaq

import (
	"testing"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/video"
)

// cnfWorld has two actions and two objects with known, disjoint
// placements so clause logic is directly checkable with ideal models.
func cnfWorld(t *testing.T) *detect.Scene {
	t.Helper()
	geom := video.DefaultGeometry()
	meta := video.Meta{Name: "cnf", Frames: 20000, Geom: geom} // 400 clips
	truth := annot.NewVideo(meta)
	// In shots (5 per clip): runA on clips 20..39, runB on clips 60..79.
	truth.AddAction("runA", interval.Set{{Lo: 100, Hi: 199}})
	truth.AddAction("runB", interval.Set{{Lo: 300, Hi: 399}})
	// In frames (50 per clip): car on clips 20..49, dog on clips 70..89.
	truth.AddObject("car", interval.Set{{Lo: 1000, Hi: 2499}})
	truth.AddObject("dog", interval.Set{{Lo: 3500, Hi: 4499}})
	return &detect.Scene{Truth: truth, Seed: 55}
}

func idealCNF(t *testing.T, scene *detect.Scene, clauses []Clause) interval.Set {
	t.Helper()
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
	nclips := scene.Truth.Meta.Clips()
	e, err := NewCNF(clauses, det, rec, scene.Truth.Meta.Geom, Config{HorizonClips: nclips})
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := e.Run(nclips)
	if err != nil {
		t.Fatal(err)
	}
	return seqs
}

func TestCNFDisjunctionOfActions(t *testing.T) {
	scene := cnfWorld(t)
	seqs := idealCNF(t, scene, []Clause{{Actions: []annot.Label{"runA", "runB"}}})
	want := interval.Set{{Lo: 20, Hi: 39}, {Lo: 60, Hi: 79}}
	if !seqs.Equal(want) {
		t.Fatalf("runA OR runB = %v, want %v", seqs, want)
	}
}

func TestCNFConjunctionOfClauses(t *testing.T) {
	scene := cnfWorld(t)
	// (runA OR runB) AND car: car spans clips 20..49 ⊇ runA only.
	seqs := idealCNF(t, scene, []Clause{
		{Actions: []annot.Label{"runA", "runB"}},
		{Objects: []annot.Label{"car"}},
	})
	want := interval.Set{{Lo: 20, Hi: 39}}
	if !seqs.Equal(want) {
		t.Fatalf("got %v, want %v", seqs, want)
	}
}

func TestCNFTwoActionsConjunction(t *testing.T) {
	scene := cnfWorld(t)
	// runA AND runB never co-occur.
	seqs := idealCNF(t, scene, []Clause{
		{Actions: []annot.Label{"runA"}},
		{Actions: []annot.Label{"runB"}},
	})
	if len(seqs) != 0 {
		t.Fatalf("disjoint actions conjunction = %v", seqs)
	}
}

func TestCNFMixedClause(t *testing.T) {
	scene := cnfWorld(t)
	// runB OR dog: clips 60..89 (runB 60..79, dog 70..89).
	seqs := idealCNF(t, scene, []Clause{
		{Actions: []annot.Label{"runB"}, Objects: []annot.Label{"dog"}},
	})
	want := interval.Set{{Lo: 60, Hi: 89}}
	if !seqs.Equal(want) {
		t.Fatalf("got %v, want %v", seqs, want)
	}
}

func TestCNFMatchesSimpleEngineOnConjunction(t *testing.T) {
	scene := cnfWorld(t)
	q := annot.Query{Action: "runA", Objects: []annot.Label{"car"}}
	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	nclips := scene.Truth.Meta.Clips()
	cfg := Config{HorizonClips: nclips, Dynamic: true}

	simple, err := New(q, det, rec, scene.Truth.Meta.Geom, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := simple.Run(nclips)
	if err != nil {
		t.Fatal(err)
	}
	cnf, err := NewCNF([]Clause{
		{Actions: []annot.Label{"runA"}},
		{Objects: []annot.Label{"car"}},
	}, det, rec, scene.Truth.Meta.Geom, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cnf.Run(nclips)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2) {
		t.Fatalf("CNF and simple engines disagree on a conjunction:\n%v\nvs\n%v", s1, s2)
	}
}

func TestCNFValidation(t *testing.T) {
	scene := cnfWorld(t)
	geom := scene.Truth.Meta.Geom
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
	if _, err := NewCNF(nil, det, rec, geom, Config{}); err == nil {
		t.Error("no clauses accepted")
	}
	if _, err := NewCNF([]Clause{{}}, det, rec, geom, Config{}); err == nil {
		t.Error("empty clause accepted")
	}
	if _, err := NewCNF([]Clause{{Objects: []annot.Label{"car"}}}, nil, rec, geom, Config{}); err == nil {
		t.Error("missing detector accepted")
	}
	if _, err := NewCNF([]Clause{{Actions: []annot.Label{"runA"}}}, det, nil, geom, Config{}); err == nil {
		t.Error("missing recognizer accepted")
	}
}

func TestCNFOrderEnforced(t *testing.T) {
	scene := cnfWorld(t)
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
	e, err := NewCNF([]Clause{{Actions: []annot.Label{"runA"}}}, det, rec, scene.Truth.Meta.Geom, Config{HorizonClips: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ProcessClip(3); err == nil {
		t.Fatal("out-of-order clip accepted")
	}
}
