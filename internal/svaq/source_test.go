package svaq

import (
	"context"
	"testing"

	"vaq/internal/detect"
	"vaq/internal/video"
)

func TestConsumeMatchesRun(t *testing.T) {
	scene, q := testWorld(t, 21)
	nclips := scene.Truth.Meta.Clips()
	a := engines(t, scene, q, Config{HorizonClips: nclips})
	b := engines(t, scene, q, Config{HorizonClips: nclips})

	want, err := a.Run(nclips)
	if err != nil {
		t.Fatal(err)
	}
	var events []SequenceEvent
	got, err := b.Consume(context.Background(), NewSliceSource(nclips), func(ev SequenceEvent) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("Consume %v != Run %v", got, want)
	}
	// Events come in open/close pairs matching the sequences.
	if len(events) != 2*len(want) {
		t.Fatalf("events = %v for sequences %v", events, want)
	}
	for i, seq := range want {
		open, clos := events[2*i], events[2*i+1]
		if !open.Open || int(open.Clip) != seq.Lo {
			t.Fatalf("event %d = %v, want open@%d", 2*i, open, seq.Lo)
		}
		if clos.Open || int(clos.Clip) != seq.Hi {
			t.Fatalf("event %d = %v, want close@%d", 2*i+1, clos, seq.Hi)
		}
	}
}

func TestConsumeCancellation(t *testing.T) {
	scene, q := testWorld(t, 22)
	e := engines(t, scene, q, Config{HorizonClips: 100})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Consume(ctx, NewSliceSource(100), nil); err == nil {
		t.Fatal("cancelled context not surfaced")
	}
}

func TestChanSource(t *testing.T) {
	scene, q := testWorld(t, 23)
	e := engines(t, scene, q, Config{HorizonClips: 50})
	ch := make(chan video.ClipIdx)
	go func() {
		for c := 0; c < 50; c++ {
			ch <- video.ClipIdx(c)
		}
		close(ch)
	}()
	got, err := e.Consume(context.Background(), ChanSource{C: ch}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := engines(t, scene, q, Config{HorizonClips: 50})
	want, _ := ref.Run(50)
	if !got.Equal(want) {
		t.Fatalf("ChanSource result %v != %v", got, want)
	}
}

func TestChanSourceCancel(t *testing.T) {
	ch := make(chan video.ClipIdx)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := ChanSource{C: ch}
	if _, _, err := src.Next(ctx); err == nil {
		t.Fatal("cancelled Next returned no error")
	}
}

func TestSequenceEventString(t *testing.T) {
	if (SequenceEvent{Open: true, Clip: 3}).String() != "open@3" {
		t.Error("open string")
	}
	if (SequenceEvent{Clip: 7}).String() != "close@7" {
		t.Error("close string")
	}
}

// Consume must also notify the final close when the stream ends inside
// a sequence.
func TestConsumeClosesAtEOF(t *testing.T) {
	scene, q := testWorld(t, 24)
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
	e, err := New(q, det, rec, scene.Truth.Meta.Geom, Config{HorizonClips: 25})
	if err != nil {
		t.Fatal(err)
	}
	// Clips 19..24 lie inside the first truth episode (shots 100..179 =
	// clips 20..35); stop mid-sequence at clip 24.
	var events []SequenceEvent
	if _, err := e.Consume(context.Background(), NewSliceSource(25), func(ev SequenceEvent) {
		events = append(events, ev)
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[len(events)-1].Open {
		t.Fatalf("missing final close event: %v", events)
	}
}
