package svaq

import (
	"testing"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/video"
)

// relationWorld: person and car co-present during the action episodes.
func relationWorld(t *testing.T) (*detect.Scene, annot.Query) {
	t.Helper()
	geom := video.DefaultGeometry()
	meta := video.Meta{Name: "rel", Frames: 40000, Geom: geom} // 800 clips
	truth := annot.NewVideo(meta)
	truth.AddAction("loading", interval.Set{{Lo: 500, Hi: 799}, {Lo: 2500, Hi: 2799}})
	frames := interval.Set{{Lo: 4900, Hi: 8100}, {Lo: 24900, Hi: 28100}}
	truth.AddObject("person", frames)
	truth.AddObject("car", frames)
	return &detect.Scene{Truth: truth, Seed: 71},
		annot.Query{Action: "loading", Objects: []annot.Label{"person", "car"}}
}

func TestRelationsRestrictResults(t *testing.T) {
	scene, q := relationWorld(t)
	nclips := scene.Truth.Meta.Clips()
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)

	plain, err := New(q, det, rec, scene.Truth.Meta.Geom, Config{HorizonClips: nclips})
	if err != nil {
		t.Fatal(err)
	}
	plainSeqs, err := plain.Run(nclips)
	if err != nil {
		t.Fatal(err)
	}
	if len(plainSeqs) == 0 {
		t.Fatal("plain query found nothing; world broken")
	}

	withRel, err := New(q, det, rec, scene.Truth.Meta.Geom, Config{HorizonClips: nclips})
	if err != nil {
		t.Fatal(err)
	}
	if err := withRel.WithRelations([]detect.Relation{
		{A: "person", B: "car", Kind: detect.LeftOf},
	}); err != nil {
		t.Fatal(err)
	}
	relSeqs, err := withRel.Run(nclips)
	if err != nil {
		t.Fatal(err)
	}
	// The relation can only restrict: every relation-positive clip set
	// must be covered by the plain result.
	if extra := relSeqs.Subtract(plainSeqs); extra.Len() > 0 {
		t.Fatalf("relation added clips the plain query rejected: %v", extra)
	}
}

func TestImpossibleRelationEmptiesResults(t *testing.T) {
	scene, q := relationWorld(t)
	// "dog" is never annotated: no relation with it ever holds.
	nclips := scene.Truth.Meta.Clips()
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
	e, err := New(q, det, rec, scene.Truth.Meta.Geom, Config{HorizonClips: nclips})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WithRelations([]detect.Relation{
		{A: "person", B: "dog", Kind: detect.Near},
	}); err != nil {
		t.Fatal(err)
	}
	seqs, err := e.Run(nclips)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 0 {
		t.Fatalf("impossible relation still produced %v", seqs)
	}
}

func TestRelationCountsReported(t *testing.T) {
	scene, q := relationWorld(t)
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
	e, err := New(q, det, rec, scene.Truth.Meta.Geom, Config{HorizonClips: 200})
	if err != nil {
		t.Fatal(err)
	}
	rel := detect.Relation{A: "person", B: "car", Kind: detect.LeftOf}
	if err := e.WithRelations([]detect.Relation{rel}); err != nil {
		t.Fatal(err)
	}
	// Clip 100 lies inside the co-presence region (frames 5000..5049).
	for c := 0; c <= 100; c++ {
		res, err := e.ProcessClip(video.ClipIdx(c))
		if err != nil {
			t.Fatal(err)
		}
		if c == 100 {
			if res.RelationCounts == nil {
				t.Fatal("RelationCounts missing")
			}
			if _, ok := res.RelationCounts[rel.String()]; !ok {
				t.Fatalf("RelationCounts lacks %q: %v", rel.String(), res.RelationCounts)
			}
		}
	}
}

func TestWithRelationsValidation(t *testing.T) {
	scene, q := relationWorld(t)
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
	e, err := New(q, det, rec, scene.Truth.Meta.Geom, Config{HorizonClips: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ProcessClip(0); err != nil {
		t.Fatal(err)
	}
	if err := e.WithRelations([]detect.Relation{{A: "a", B: "b", Kind: detect.Near}}); err == nil {
		t.Error("relations after processing accepted")
	}
	// Action-only engine without a detector cannot take relations.
	e2, err := New(annot.Query{Action: "loading"}, nil, rec, scene.Truth.Meta.Geom, Config{HorizonClips: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.WithRelations([]detect.Relation{{A: "a", B: "b", Kind: detect.Near}}); err == nil {
		t.Error("relations without a detector accepted")
	}
}
