package svaq

import (
	"fmt"
	"sort"

	"vaq/internal/explain"
	"vaq/internal/plan"
	"vaq/internal/video"
)

// Footnote 5 of the paper defers "a thorough investigation into the
// impact of the predicate order" to future work and evaluates predicates
// in user-given order. This file implements that future work: with
// Config.AdaptiveOrder, the engine reorders the short-circuit
// evaluation pipeline online by the classic pipelined-filter rule —
// ascending cost / (1 − pass-rate) — using per-predicate pass rates
// estimated from the stream itself. Periodic exploration clips evaluate
// every predicate so that the estimates of predicates parked late in the
// pipeline stay fresh.

// predKind distinguishes the three predicate families of the engine.
type predKind int

const (
	predObject predKind = iota
	predRelation
	predAction
)

// predRef addresses one predicate of the engine's query.
type predRef struct {
	kind predKind
	idx  int // index into query.Objects or relations; unused for the action
}

// predStats tracks one predicate's online ordering statistics.
type predStats struct {
	// passRate is an exponentially-weighted estimate of
	// P(indicator positive), the predicate's (non-)selectivity.
	passRate float64
	// cost is the predicate's model invocations per clip, optionally
	// weighted (actions run heavier models on fewer units).
	cost float64
	// evaluated counts the clips on which the predicate actually ran.
	evaluated int
}

// passDecay is the EWMA factor for pass-rate updates.
const passDecay = 0.98

// initOrder builds the predicate pipeline in the paper's default order:
// objects in query order, then relations, then the action.
func (e *Engine) initOrder() {
	if e.order != nil {
		return
	}
	clipFrames := float64(e.geom.ClipLen())
	actCost := float64(e.geom.ShotsPerClip) * e.cfg.ActionCostWeight
	for i := range e.query.Objects {
		e.order = append(e.order, predRef{kind: predObject, idx: i})
		e.stats = append(e.stats, predStats{passRate: 0.5, cost: clipFrames})
	}
	for i := range e.relations {
		e.order = append(e.order, predRef{kind: predRelation, idx: i})
		e.stats = append(e.stats, predStats{passRate: 0.5, cost: clipFrames})
	}
	if e.query.Action != "" {
		e.order = append(e.order, predRef{kind: predAction})
		e.stats = append(e.stats, predStats{passRate: 0.5, cost: actCost})
	}
}

// statIndex maps a predRef back to its stats slot (stats are stored in
// construction order: objects, relations, action).
func (e *Engine) statIndex(r predRef) int {
	switch r.kind {
	case predObject:
		return r.idx
	case predRelation:
		return len(e.query.Objects) + r.idx
	default:
		return len(e.query.Objects) + len(e.relations)
	}
}

// reorder sorts the pipeline by ascending cost/(1−passRate): cheap,
// highly selective predicates run first so failed clips are abandoned
// early (the optimal ordering for independent pipelined filters).
func (e *Engine) reorder() {
	rank := func(r predRef) float64 {
		s := e.stats[e.statIndex(r)]
		reject := 1 - s.passRate
		if reject < 0.05 {
			reject = 0.05 // never let a non-selective predicate look free
		}
		return s.cost / reject
	}
	sort.SliceStable(e.order, func(a, b int) bool {
		return rank(e.order[a]) < rank(e.order[b])
	})
}

// observePass feeds a predicate's outcome into its ordering statistics.
func (e *Engine) observePass(r predRef, positive bool) {
	s := &e.stats[e.statIndex(r)]
	v := 0.0
	if positive {
		v = 1
	}
	s.passRate = passDecay*s.passRate + (1-passDecay)*v
	s.evaluated++
}

// evalPredicate runs one predicate of the pipeline on clip c, updating
// the clip result and the predicate's tracker; it returns the indicator.
func (e *Engine) evalPredicate(r predRef, c video.ClipIdx, res *ClipResult) (bool, error) {
	switch r.kind {
	case predObject:
		o := e.query.Objects[r.idx]
		frameLo, frameHi := e.geom.FrameRangeOfClip(c)
		if e.cfg.Plan.Enabled() {
			lt := e.objTrk[o]
			w := int(frameHi - frameLo)
			pr, err := e.cfg.Plan.Evaluate(w, lt.K(), lt.P(), func(u int) (bool, error) {
				return e.detectObject(frameLo+video.FrameIdx(u), o), nil
			})
			if err != nil {
				return false, fmt.Errorf("svaq: object %q: %w", o, err)
			}
			res.Invocations += pr.Sampled
			e.cFrames.Add(int64(pr.Sampled))
			res.ObjectCounts[o] = pr.Count
			e.planStats.Observe(w, pr)
			if err := lt.ObserveRun(pr.Sampled, pr.Count); err != nil {
				return false, fmt.Errorf("svaq: object %q: %w", o, err)
			}
			e.explainPlanned(r, pr)
			return pr.Positive, nil
		}
		count := 0
		for v := frameLo; v < frameHi; v++ {
			pos := e.detectObject(v, o)
			if pos {
				count++
			}
			if e.cfg.RecordIndicators {
				e.objLog[o] = append(e.objLog[o], pos)
			}
		}
		res.Invocations += int(frameHi - frameLo)
		e.cFrames.Add(int64(frameHi - frameLo))
		res.ObjectCounts[o] = count
		positive, err := e.objTrk[o].ObserveClip(count)
		if err != nil {
			return false, fmt.Errorf("svaq: object %q: %w", o, err)
		}
		e.explainDense(r, positive, int(frameHi-frameLo))
		return positive, nil

	case predRelation:
		rs := e.relations[r.idx]
		frameLo, frameHi := e.geom.FrameRangeOfClip(c)
		count := 0
		for v := frameLo; v < frameHi; v++ {
			if rs.rd.Holds(v) {
				count++
			}
		}
		res.Invocations += int(frameHi - frameLo)
		e.cFrames.Add(int64(frameHi - frameLo))
		if res.RelationCounts == nil {
			res.RelationCounts = map[string]int{}
		}
		res.RelationCounts[rs.rd.Relation().String()] = count
		positive, err := rs.trk.ObserveClip(count)
		if err != nil {
			return false, fmt.Errorf("svaq: relation %v: %w", rs.rd.Relation(), err)
		}
		e.explainDense(r, positive, int(frameHi-frameLo))
		return positive, nil

	default: // predAction
		shotLo, shotHi := e.geom.ShotRangeOfClip(c)
		if e.cfg.Plan.Enabled() {
			w := int(shotHi - shotLo)
			pr, err := e.cfg.Plan.Evaluate(w, e.actTrk.K(), e.actTrk.P(), func(u int) (bool, error) {
				return e.recognizeAction(shotLo + video.ShotIdx(u)), nil
			})
			if err != nil {
				return false, fmt.Errorf("svaq: action %q: %w", e.query.Action, err)
			}
			res.Invocations += pr.Sampled
			e.cShots.Add(int64(pr.Sampled))
			res.ActionCount = pr.Count
			e.planStats.Observe(w, pr)
			if err := e.actTrk.ObserveRun(pr.Sampled, pr.Count); err != nil {
				return false, fmt.Errorf("svaq: action %q: %w", e.query.Action, err)
			}
			e.explainPlanned(r, pr)
			return pr.Positive, nil
		}
		count := 0
		for s := shotLo; s < shotHi; s++ {
			pos := e.recognizeAction(s)
			if pos {
				count++
			}
			if e.cfg.RecordIndicators {
				e.actLog = append(e.actLog, pos)
			}
		}
		res.Invocations += int(shotHi - shotLo)
		e.cShots.Add(int64(shotHi - shotLo))
		res.ActionCount = count
		positive, err := e.actTrk.ObserveClip(count)
		if err != nil {
			return false, fmt.Errorf("svaq: action %q: %w", e.query.Action, err)
		}
		e.explainDense(r, positive, int(shotHi-shotLo))
		return positive, nil
	}
}

// explainPlanned feeds one planned predicate evaluation to the EXPLAIN
// collector (no-op when collection is off).
func (e *Engine) explainPlanned(r predRef, pr plan.Result) {
	if e.ex == nil {
		return
	}
	e.ex.ObservePredicate(explain.PredObservation{
		Name:      e.predName(r),
		Positive:  pr.Positive,
		Planned:   true,
		Units:     pr.Sampled,
		BaseUnits: pr.BaseSampled,
		Rungs:     pr.Rungs,
		Reason:    pr.Reason,
	})
}

// explainDense feeds one dense predicate evaluation to the EXPLAIN
// collector (no-op when collection is off).
func (e *Engine) explainDense(r predRef, positive bool, units int) {
	if e.ex == nil {
		return
	}
	e.ex.ObservePredicate(explain.PredObservation{
		Name:     e.predName(r),
		Positive: positive,
		Units:    units,
	})
}

// predName is the human-readable name of one predicate stage, shared by
// the diagnostics listing and the per-stage trace spans.
func (e *Engine) predName(r predRef) string {
	switch r.kind {
	case predObject:
		return "obj:" + string(e.query.Objects[r.idx])
	case predRelation:
		return "rel:" + e.relations[r.idx].rd.Relation().String()
	default:
		return "act:" + string(e.query.Action)
	}
}

// Order reports the current pipeline as human-readable predicate names,
// for diagnostics and the ordering ablation.
func (e *Engine) Order() []string {
	e.initOrder()
	out := make([]string, len(e.order))
	for i, r := range e.order {
		out[i] = e.predName(r)
	}
	return out
}
