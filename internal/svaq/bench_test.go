package svaq

import (
	"testing"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/video"
)

func benchSetup(b *testing.B, cfg Config) *Engine {
	b.Helper()
	geom := video.DefaultGeometry()
	nclips := 1 << 20
	meta := video.Meta{Name: "bench", Frames: nclips * geom.ClipLen(), Geom: geom}
	truth := annot.NewVideo(meta)
	truth.AddAction("run", interval.Set{{Lo: 1000, Hi: 2000}})
	truth.AddObject("car", interval.Set{{Lo: 50000, Hi: 100000}})
	truth.AddObject("dog", interval.Set{{Lo: 60000, Hi: 90000}})
	scene := &detect.Scene{Truth: truth, Seed: 12}
	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	cfg.HorizonClips = nclips
	e, err := New(annot.Query{Action: "run", Objects: []annot.Label{"car", "dog"}},
		det, rec, geom, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkProcessClip measures one full clip evaluation (Algorithm 2):
// 100 object-detector invocations (two predicates × 50 frames) plus 5
// recognizer invocations plus the statistics updates.
func BenchmarkProcessClip(b *testing.B) {
	e := benchSetup(b, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ProcessClip(video.ClipIdx(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessClipDynamic adds SVAQD's estimator updates and
// critical-value maintenance.
func BenchmarkProcessClipDynamic(b *testing.B) {
	e := benchSetup(b, Config{Dynamic: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ProcessClip(video.ClipIdx(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessClipShortCircuit measures the adaptive-order
// short-circuit pipeline on mostly-negative clips.
func BenchmarkProcessClipShortCircuit(b *testing.B) {
	e := benchSetup(b, Config{ShortCircuit: true, AdaptiveOrder: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ProcessClip(video.ClipIdx(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLabelTrackerObserve isolates the per-clip statistics update.
func BenchmarkLabelTrackerObserve(b *testing.B) {
	lt, err := NewLabelTracker(TrackerConfig{
		UnitsPerClip: 50, HorizonClips: 100000, P0: 1e-4, Dynamic: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lt.ObserveClip(i % 3); err != nil {
			b.Fatal(err)
		}
	}
}
