package svaq

import (
	"testing"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/video"
)

// orderWorld: "rare" is almost never present (highly selective); "common"
// is almost always present (barely selective). The optimal pipeline
// evaluates rare first.
func orderWorld(t *testing.T) (*detect.Scene, annot.Query) {
	t.Helper()
	geom := video.DefaultGeometry()
	meta := video.Meta{Name: "ord", Frames: 50000, Geom: geom} // 1000 clips
	truth := annot.NewVideo(meta)
	truth.AddAction("run", interval.Set{{Lo: 400, Hi: 499}}) // clips 80..99
	truth.AddObject("common", interval.Set{{Lo: 0, Hi: 49999}})
	truth.AddObject("rare", interval.Set{{Lo: 4000, Hi: 4999}}) // clips 80..99
	return &detect.Scene{Truth: truth, Seed: 31},
		annot.Query{Action: "run", Objects: []annot.Label{"common", "rare"}}
}

func TestAdaptiveOrderSavesInvocations(t *testing.T) {
	scene, q := orderWorld(t)
	nclips := scene.Truth.Meta.Clips()
	run := func(adaptive bool) (*Engine, int) {
		det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
		rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
		e, err := New(q, det, rec, scene.Truth.Meta.Geom, Config{
			HorizonClips: nclips, ShortCircuit: true, AdaptiveOrder: adaptive,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(nclips); err != nil {
			t.Fatal(err)
		}
		return e, e.Invocations()
	}
	// The user-given order puts the worst predicate (common) first.
	_, fixed := run(false)
	eng, adaptive := run(true)
	if adaptive >= fixed {
		t.Fatalf("adaptive ordering saved nothing: %d vs %d", adaptive, fixed)
	}
	// The optimizer must have moved the rare (selective) object ahead
	// of the common one.
	order := eng.Order()
	posOf := func(name string) int {
		for i, n := range order {
			if n == name {
				return i
			}
		}
		t.Fatalf("predicate %q missing from order %v", name, order)
		return -1
	}
	if posOf("obj:rare") > posOf("obj:common") {
		t.Fatalf("rare predicate not promoted: %v", order)
	}
}

func TestAdaptiveOrderSameResults(t *testing.T) {
	scene, q := orderWorld(t)
	nclips := scene.Truth.Meta.Clips()
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
	mk := func(adaptive bool) interval.Set {
		e, err := New(q, det, rec, scene.Truth.Meta.Geom, Config{
			HorizonClips: nclips, ShortCircuit: true, AdaptiveOrder: adaptive,
		})
		if err != nil {
			t.Fatal(err)
		}
		seqs, err := e.Run(nclips)
		if err != nil {
			t.Fatal(err)
		}
		return seqs
	}
	// With ideal models the reported sequences are order-independent.
	if a, b := mk(true), mk(false); !a.Equal(b) {
		t.Fatalf("adaptive ordering changed results: %v vs %v", a, b)
	}
}

func TestOrderDefaultIsQueryOrder(t *testing.T) {
	scene, q := orderWorld(t)
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
	e, err := New(q, det, rec, scene.Truth.Meta.Geom, Config{HorizonClips: 100})
	if err != nil {
		t.Fatal(err)
	}
	order := e.Order()
	want := []string{"obj:common", "obj:rare", "act:run"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("default order = %v, want %v", order, want)
		}
	}
}

func TestOrderIncludesRelations(t *testing.T) {
	scene, q := orderWorld(t)
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
	e, err := New(q, det, rec, scene.Truth.Meta.Geom, Config{HorizonClips: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WithRelations([]detect.Relation{{A: "rare", B: "common", Kind: detect.Near}}); err != nil {
		t.Fatal(err)
	}
	order := e.Order()
	found := false
	for _, n := range order {
		if n == "rel:rare near common" {
			found = true
		}
	}
	if !found {
		t.Fatalf("relation missing from order %v", order)
	}
}
