// Package api holds the JSON wire contract of the vaqd serving tier:
// the request/response shapes of the HTTP endpoints served by a single
// vaqd (package server) and by the scatter-gather coordinator (package
// shard). It is a leaf package — both tiers and the CLIs' -json modes
// speak these types, so a coordinator can decode exactly what a shard
// encoded without importing the server implementation.
package api

import (
	"vaq/internal/explain"
	"vaq/internal/interval"
	"vaq/internal/trace"
)

// Range is one result sequence: an inclusive clip-id interval. It is
// the JSON shape shared by the HTTP API and the -json mode of the CLIs.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Ranges converts engine result sequences to the wire shape.
func Ranges(s interval.Set) []Range {
	out := make([]Range, 0, len(s))
	for _, iv := range s {
		out = append(out, Range{Lo: iv.Lo, Hi: iv.Hi})
	}
	return out
}

// CreateSessionRequest registers a standing online query.
type CreateSessionRequest struct {
	// Query is the VQL statement to evaluate online.
	Query string `json:"query"`
	// Workload names the synthetic stream (q1..q12 or a Table 2 movie
	// name) the session runs against.
	Workload string `json:"workload"`
	// Scale resizes the workload (0 < Scale <= 4; default 1).
	Scale float64 `json:"scale,omitempty"`
	// Model picks the detector profile: maskrcnn (default), yolov3,
	// ideal.
	Model string `json:"model,omitempty"`
	// Dynamic selects SVAQD (default true).
	Dynamic *bool `json:"dynamic,omitempty"`
	// MaxClips bounds the clips processed; 0 means the whole workload.
	// Values beyond the workload length keep streaming background-only
	// clips (a standing query over a quiet feed).
	MaxClips int `json:"max_clips,omitempty"`
	// PaceMS throttles the stream to one clip per PaceMS milliseconds,
	// simulating a live feed; 0 processes as fast as the pool allows.
	PaceMS int `json:"pace_ms,omitempty"`
}

// CriticalValues reports the scan statistic's current thresholds.
type CriticalValues struct {
	Objects map[string]int `json:"objects,omitempty"`
	Action  int            `json:"action,omitempty"`
}

// SessionInfo is the status of one session.
type SessionInfo struct {
	ID             string          `json:"id"`
	Query          string          `json:"query"`
	Workload       string          `json:"workload"`
	State          string          `json:"state"` // running, done, cancelled, failed
	ClipsTotal     int             `json:"clips_total"`
	ClipsProcessed int             `json:"clips_processed"`
	Invocations    int             `json:"invocations"`
	Sequences      int             `json:"sequences"`
	CriticalValues *CriticalValues `json:"critical_values,omitempty"`
	// Degraded marks a session whose detection backends fell back at
	// least once: some frames/shots were scored by the degradation prior
	// (or fallback profile), not the primary model. DegradedUnits counts
	// them; Retries/Fallbacks/BreakerState expose the resilience layer.
	Degraded      bool   `json:"degraded,omitempty"`
	DegradedUnits int    `json:"degraded_units,omitempty"`
	Retries       int64  `json:"retries,omitempty"`
	Fallbacks     int64  `json:"fallbacks,omitempty"`
	BreakerState  string `json:"breaker_state,omitempty"`
	// Hedges counts hedge replicas the session's backends launched
	// against tail latency; FallbackHops breaks Fallbacks down by
	// degradation-chain hop (last entry is the prior sampler).
	Hedges       int64   `json:"hedges,omitempty"`
	FallbackHops []int64 `json:"fallback_hops,omitempty"`
	// BrownoutLevel is the degradation ladder's active level on a
	// server running the brownout controller (full, no-hedge,
	// cheap-profile, prior-only, shed); empty when unarmed.
	BrownoutLevel string `json:"brownout_level,omitempty"`
	Error         string `json:"error,omitempty"`
}

// SessionList is the GET /v1/sessions response.
type SessionList struct {
	Sessions []SessionInfo `json:"sessions"`
}

// ResultsResponse carries the result sequences found so far. The CLI
// vaqquery -json emits the same shape (with ID left empty).
type ResultsResponse struct {
	ID             string  `json:"id,omitempty"`
	State          string  `json:"state"`
	ClipsProcessed int     `json:"clips_processed"`
	Sequences      []Range `json:"sequences"`
	// Degraded marks results computed partly through the resilience
	// fallback (see SessionInfo.Degraded); DegradedUnits counts the
	// affected frames/shots.
	Degraded      bool `json:"degraded,omitempty"`
	DegradedUnits int  `json:"degraded_units,omitempty"`
	// Explain carries the session's EXPLAIN profile so far when the
	// request asked for it (?explain=true) and the server collects
	// profiles (-explain-ring not negative).
	Explain *explain.Profile `json:"explain,omitempty"`
}

// TopKRequest is an offline ranked query. Either give Action/Objects
// directly, or a ranked VQL statement in Query (ORDER BY RANK ... LIMIT
// K), which also fixes K.
type TopKRequest struct {
	// Video names one repository video; empty runs the query globally
	// across the repository with a merged clip-id namespace.
	Video   string   `json:"video,omitempty"`
	Query   string   `json:"query,omitempty"`
	Action  string   `json:"action,omitempty"`
	Objects []string `json:"objects,omitempty"`
	K       int      `json:"k,omitempty"`
	// TimeoutMS bounds this query tighter than the server's request
	// timeout (it can only shorten it).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Partial asks for the best-so-far ranking (flagged Incomplete)
	// instead of a 504 when the deadline fires mid-run. On the
	// coordinator it additionally tolerates failed shards: survivors'
	// merged results come back flagged Incomplete instead of a 502.
	Partial bool `json:"partial,omitempty"`
	// DegradedDiscount, in (0, 1], down-weights clips the repository
	// marked degraded at ingest time and flags matching results; 0
	// scores them as ingested.
	DegradedDiscount float64 `json:"degraded_discount,omitempty"`
	// HopDiscounts is the per-hop generalization of DegradedDiscount:
	// entry h−1 (in [0, 1]) discounts clips whose worst degraded unit
	// was served by fallback hop h; hops past the table clamp to the
	// last entry, units with no recorded hop take the worst entry.
	// Mutually exclusive with DegradedDiscount.
	HopDiscounts []float64 `json:"hop_discounts,omitempty"`
	// Explain asks for the query's EXPLAIN profile inline in the
	// response (the profile also lands in the /explainz ring whenever
	// the ring is enabled, whether or not Explain is set).
	Explain bool `json:"explain,omitempty"`
	// BoundQuery joins this query to a cross-process B_lo^K bound
	// exchange under the given id (see docs/SHARDING.md): the serving
	// shard registers the id so POST /v1/shard/bound broadcasts from a
	// coordinator can tighten the run's pruning floor mid-flight.
	// Broadcast bounds are conservative — they may only change work
	// counts, never results. Empty (the default) runs standalone.
	BoundQuery string `json:"bound_query,omitempty"`
}

// TopKEntry is one ranked result.
type TopKEntry struct {
	Video string  `json:"video,omitempty"`
	Seq   Range   `json:"seq"`
	Score float64 `json:"score"`
	// Degraded marks a sequence touching at least one clip whose
	// ingest-time model outputs came from the resilience fallback
	// chain (set only when the request armed degraded_discount).
	Degraded bool `json:"degraded,omitempty"`
}

// TopKResponse is the POST /v1/topk response; vaqtopk -json emits the
// same shape.
type TopKResponse struct {
	Results []TopKEntry `json:"results"`
	// RuntimeUS is the engine-side wall-clock runtime in microseconds;
	// CPURuntimeUS sums the per-video runtimes, so their ratio is the
	// effective fan-out speedup.
	RuntimeUS    int64 `json:"runtime_us"`
	CPURuntimeUS int64 `json:"cpu_runtime_us,omitempty"`
	// RandomAccesses counts score-table random accesses (the paper's
	// primary cost metric); Candidates is |Pq|.
	RandomAccesses int64 `json:"random_accesses"`
	Candidates     int   `json:"candidates"`
	// Incomplete marks a partial answer: the request's deadline fired
	// before the stopping condition and TopKRequest.Partial asked for
	// the best-so-far ranking (lower-bound scores) instead of a 504 —
	// or, on the coordinator, at least one shard failed or shed and
	// the merged ranking covers only the surviving shards.
	Incomplete bool `json:"incomplete,omitempty"`
	// DegradedClips counts degraded clips inside the query's candidate
	// sequences (populated when degraded_discount was armed).
	DegradedClips int `json:"degraded_clips,omitempty"`
	// Explain is the query's EXPLAIN profile, present when the request
	// set explain=true.
	Explain *explain.Profile `json:"explain,omitempty"`
}

// BoundExchangeRequest is the POST /v1/shard/bound body: one round of
// the coordinator's cross-shard B_lo^K broadcast against the in-flight
// query registered under Query (TopKRequest.BoundQuery). Bound, when
// present, is a sound global lower bound on the k-th best score that
// the receiving shard folds into its pruning floor (monotone max).
type BoundExchangeRequest struct {
	Query string   `json:"query"`
	Bound *float64 `json:"bound,omitempty"`
}

// BoundExchangeResponse reports the shard's side of a broadcast round.
// Found is false when no in-flight query is registered under the id
// (it already finished, or never reached this shard); Bound is the
// shard's current B_lo^K after folding the request's bound in, absent
// while the shard has no finite floor yet.
type BoundExchangeResponse struct {
	Found bool     `json:"found"`
	Bound *float64 `json:"bound,omitempty"`
}

// ShardHealth is one backend's entry in the coordinator's /healthz:
// the consistent-hash identity, the probe outcome, and the scatter
// client's circuit-breaker state.
type ShardHealth struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	OK   bool   `json:"ok"`
	// Breaker is the coordinator-side circuit breaker guarding this
	// shard (closed, open, half-open).
	Breaker string `json:"breaker"`
	// Status / BrownoutLevel echo the shard's own /healthz when the
	// probe succeeded; Error carries the probe failure otherwise.
	Status        string `json:"status,omitempty"`
	BrownoutLevel string `json:"brownout_level,omitempty"`
	Error         string `json:"error,omitempty"`
}

// CoordHealthzResponse is the coordinator's GET /healthz payload.
type CoordHealthzResponse struct {
	// Status is "ok" when every shard probe succeeded, "degraded" when
	// some (but not all) failed, "unavailable" when none answered.
	Status string        `json:"status"`
	Shards []ShardHealth `json:"shards"`
}

// CoordShardMetrics is one backend's row in the coordinator /metricsz.
type CoordShardMetrics struct {
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	Calls    int64  `json:"calls"`
	Failures int64  `json:"failures,omitempty"`
	Hedges   int64  `json:"hedges,omitempty"`
	Breaker  string `json:"breaker"`
	// BreakerOpens counts closed→open transitions of this shard's
	// breaker since the coordinator started.
	BreakerOpens int64 `json:"breaker_opens,omitempty"`
}

// CoordMetricszResponse is the coordinator's GET /metricsz payload.
type CoordMetricszResponse struct {
	// Scatters counts global top-k queries fanned out to every shard;
	// Routed counts single-shard proxied calls (video-pinned top-k and
	// session traffic); Partials counts scatter responses that came
	// back Incomplete because a shard was down, shedding or timed out.
	Scatters int64 `json:"scatters"`
	Routed   int64 `json:"routed"`
	Partials int64 `json:"partials,omitempty"`
	// BoundRounds counts completed cross-shard bound broadcast rounds.
	BoundRounds int64               `json:"bound_rounds,omitempty"`
	Shards      []CoordShardMetrics `json:"shards"`
}

// ExplainzResponse is the GET /explainz payload: the most recent
// query profiles, newest first. Total counts every profile ever
// collected (the ring retains the last N).
type ExplainzResponse struct {
	Total    int64             `json:"total"`
	Retained int               `json:"retained"`
	Profiles []explain.Profile `json:"profiles"`
}

// HealthzSnapshot is one periodic metrics-history sample: cumulative
// totals plus the tracer counter snapshot at that moment, so deltas
// between samples give windowed rates.
type HealthzSnapshot struct {
	UnixMS   int64            `json:"unix_ms"`
	Requests int64            `json:"requests"`
	Errors   int64            `json:"errors"` // responses with status >= 500
	Sheds    int64            `json:"sheds"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// HealthzResponse is the GET /healthz payload: liveness plus the
// rolling health windows computed from the metrics-history ring.
type HealthzResponse struct {
	Status string `json:"status"` // "ok" or "overloaded"
	// WindowS is the span (seconds) the windowed rates cover: the age
	// of the oldest history sample still inside the rolling window, or
	// 0 when the history is empty (rates are then lifetime totals).
	WindowS float64 `json:"window_s"`
	// Requests / Errors / ErrorRate are windowed: the delta between now
	// and the window's oldest sample.
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	// QueueWaitP90MS is the p90 worker-pool queue wait over the shed
	// window's recent samples (0 until enough samples accrue).
	QueueWaitP90MS float64 `json:"queue_wait_p90_ms"`
	ShedRequests   int64   `json:"shed_requests,omitempty"`
	// Overloaded mirrors the admission controller's verdict (requires
	// -shed-wait to be armed).
	Overloaded bool `json:"overloaded,omitempty"`
	// BrownoutLevel is the degradation ladder's active level (empty
	// when -brownout is unarmed).
	BrownoutLevel string `json:"brownout_level,omitempty"`
	// Snapshots counts retained history samples; History lists them
	// (newest first) when the request asked with ?history=true.
	Snapshots int               `json:"snapshots"`
	History   []HealthzSnapshot `json:"history,omitempty"`
}

// TracezResponse is the GET /tracez payload: the tracer's retained
// spans as trees plus the pipeline counter snapshot taken in the same
// request (so trees and counters describe one moment).
type TracezResponse struct {
	// TotalSpans counts every span ever ended; Retained is how many the
	// bounded ring still holds.
	TotalSpans uint64           `json:"total_spans"`
	Retained   int              `json:"retained"`
	Counters   map[string]int64 `json:"counters"`
	Trees      []*trace.Node    `json:"trees"`
}

// ErrorBody is the structured error payload of every non-2xx response.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Pos is the byte offset of the offending token for VQL errors.
	Pos *int `json:"pos,omitempty"`
}

// ErrorResponse wraps ErrorBody.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}
