package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("x", 0)
	if s != nil {
		t.Fatalf("nil tracer returned non-nil span")
	}
	s.SetAttr("k", "v")
	s.SetInt("n", 3)
	s.End()
	if s.ID() != 0 {
		t.Fatalf("nil span ID = %d, want 0", s.ID())
	}
	tr.Counter("c").Add(1)
	if got := tr.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value %d", got)
	}
	tr.Stage("s").Observe(time.Millisecond)
	if tr.Spans() != nil || tr.Counters() != nil || tr.Stages() != nil {
		t.Fatalf("nil tracer snapshots not empty")
	}
	ctx, s2 := Start(context.Background(), "root")
	if s2 != nil || FromContext(ctx) != nil {
		t.Fatalf("Start without tracer created state")
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	root.SetAttr("video", "iron_man")
	ctx2, child := Start(ctx, "child")
	_, grand := Start(ctx2, "grandchild")
	grand.SetInt("clip", 7)
	grand.End()
	child.End()
	_, sibling := Start(ctx, "sibling")
	sibling.End()
	root.End()

	trees := tr.Trees()
	if len(trees) != 1 {
		t.Fatalf("got %d roots, want 1", len(trees))
	}
	r := trees[0]
	if r.Name != "root" || len(r.Children) != 2 {
		t.Fatalf("root %q with %d children", r.Name, len(r.Children))
	}
	if r.Children[0].Name != "child" || r.Children[1].Name != "sibling" {
		t.Fatalf("children order %q, %q", r.Children[0].Name, r.Children[1].Name)
	}
	g := r.Children[0].Children
	if len(g) != 1 || g[0].Name != "grandchild" {
		t.Fatalf("grandchild missing: %+v", g)
	}
	if len(g[0].Attrs) != 1 || g[0].Attrs[0].Key != "clip" || g[0].Attrs[0].Value != "7" {
		t.Fatalf("grandchild attrs %+v", g[0].Attrs)
	}

	var buf bytes.Buffer
	RenderTrees(&buf, trees)
	out := buf.String()
	for _, want := range []string{"root", "  child", "    grandchild", "clip=7", "video=iron_man"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered tree missing %q:\n%s", want, out)
		}
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(WithCapacity(16))
	for i := 0; i < 40; i++ {
		tr.StartSpan("s", 0).End()
	}
	spans := tr.Spans()
	if len(spans) != 16 {
		t.Fatalf("retained %d spans, want 16", len(spans))
	}
	// Oldest first, and only the most recent window retained.
	if spans[0].ID != SpanID(25) || spans[15].ID != SpanID(40) {
		t.Fatalf("window [%d..%d], want [25..40]", spans[0].ID, spans[15].ID)
	}
	if tr.TotalSpans() != 40 {
		t.Fatalf("total %d, want 40", tr.TotalSpans())
	}
}

func TestCountersAndStagesConcurrent(t *testing.T) {
	tr := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := tr.Counter("hits")
			st := tr.Stage("work")
			for i := 0; i < per; i++ {
				c.Add(1)
				st.Observe(time.Microsecond * time.Duration(i%100))
			}
		}()
	}
	wg.Wait()
	if got := tr.Counter("hits").Value(); got != workers*per {
		t.Fatalf("counter %d, want %d", got, workers*per)
	}
	st := tr.Stages()["work"]
	if st.Count != workers*per {
		t.Fatalf("stage count %d, want %d", st.Count, workers*per)
	}
	if st.MaxUS > 99 || st.P50US < 0 {
		t.Fatalf("implausible stage stats %+v", st)
	}
}

func TestWriteVarz(t *testing.T) {
	tr := New()
	tr.Counter("rvaq.clips_pruned").Add(12)
	tr.Stage("pool.wait").Observe(3 * time.Millisecond)
	tr.StartSpan("q", 0).End()
	var buf bytes.Buffer
	tr.WriteVarz(&buf)
	out := buf.String()
	for _, want := range []string{
		"vaq_rvaq_clips_pruned 12",
		`vaq_stage_us_count{stage="pool_wait"} 1`,
		`vaq_stage_us{stage="pool_wait",q="0.50"}`,
		"vaq_trace_spans_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("varz missing %q:\n%s", want, out)
		}
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	tr := New(WithSlowLog(0, &buf)) // threshold 0: everything is slow
	ctx := NewContext(context.Background(), tr)
	ctx, root := Start(ctx, "rvaq.topk")
	_, child := Start(ctx, "rvaq.iterate")
	child.End()
	root.End()

	line := strings.TrimSpace(buf.String())
	if strings.Count(line, "\n") != 0 || line == "" {
		t.Fatalf("want exactly one JSON line, got %q", buf.String())
	}
	var entry struct {
		Slow  string `json:"slow"`
		DurUS int64  `json:"dur_us"`
		Spans int    `json:"spans"`
		Tree  *Node  `json:"tree"`
	}
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("slow log line not JSON: %v\n%s", err, line)
	}
	if entry.Slow != "rvaq.topk" || entry.Spans != 2 {
		t.Fatalf("entry %+v", entry)
	}
	if entry.Tree == nil || len(entry.Tree.Children) != 1 || entry.Tree.Children[0].Name != "rvaq.iterate" {
		t.Fatalf("tree %+v", entry.Tree)
	}
	// Non-root spans never trigger the log.
	buf.Reset()
	s := tr.StartSpan("child-only", 42)
	s.End()
	if buf.Len() != 0 {
		t.Fatalf("non-root span logged: %q", buf.String())
	}
}

func TestOrphanedChildBecomesRoot(t *testing.T) {
	tr := New(WithCapacity(16))
	parent := tr.StartSpan("parent", 0)
	child := tr.StartSpan("child", parent.ID())
	child.End()
	// The parent never ends, so its record is absent from the ring;
	// some unrelated spans finish around the child.
	for i := 0; i < 10; i++ {
		tr.StartSpan("noise", 0).End()
	}
	roots := tr.Trees()
	for _, r := range roots {
		if r.Name == "child" {
			return // promoted to root once the parent is unavailable
		}
	}
	t.Fatalf("orphaned child not promoted to root: %+v", roots)
}
