package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Node is one span with its retained children, the unit of the /tracez
// payload and of the slow-query log.
type Node struct {
	SpanRecord
	Children []*Node `json:"children,omitempty"`
}

// Trees assembles the retained spans into trees: one root per span
// whose parent is 0 or has been evicted from the ring. Roots and
// children are ordered by start time.
func (t *Tracer) Trees() []*Node {
	return buildTrees(t.Spans())
}

func buildTrees(recs []SpanRecord) []*Node {
	byID := make(map[SpanID]*Node, len(recs))
	for i := range recs {
		byID[recs[i].ID] = &Node{SpanRecord: recs[i]}
	}
	var roots []*Node
	for _, rec := range recs {
		n := byID[rec.ID]
		if p, ok := byID[rec.Parent]; ok && rec.Parent != 0 {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	order := func(ns []*Node) {
		sort.SliceStable(ns, func(a, b int) bool {
			if !ns[a].Start.Equal(ns[b].Start) {
				return ns[a].Start.Before(ns[b].Start)
			}
			return ns[a].ID < ns[b].ID
		})
	}
	order(roots)
	for _, n := range byID {
		order(n.Children)
	}
	return roots
}

// Walk visits n and its descendants depth-first.
func (n *Node) Walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// RenderTrees writes the span trees as an indented text listing — the
// shape the CLIs print after a -trace run:
//
//	rvaq.topk 1.204ms video=iron_man k=5
//	  rvaq.candidates 80µs
//	  rvaq.iterate 1.1ms
//	    rvaq.exchange 3µs iteration=20
func RenderTrees(w io.Writer, roots []*Node) {
	for _, r := range roots {
		renderNode(w, r, 0)
	}
}

func renderNode(w io.Writer, n *Node, depth int) {
	var attrs strings.Builder
	for _, a := range n.Attrs {
		attrs.WriteString(" ")
		attrs.WriteString(a.Key)
		attrs.WriteString("=")
		attrs.WriteString(a.Value)
	}
	fmt.Fprintf(w, "%s%s %s%s\n", strings.Repeat("  ", depth), n.Name, n.Dur.Round(durRound(n.Dur)), attrs.String())
	for _, c := range n.Children {
		renderNode(w, c, depth+1)
	}
}

// durRound picks a rounding unit that keeps the listing readable across
// nanosecond spans and second-long queries.
func durRound(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return time.Millisecond
	case d >= time.Millisecond:
		return time.Microsecond
	default:
		return time.Nanosecond
	}
}

// WriteVarz writes the flat counter and stage snapshot in
// Prometheus-style text exposition: one `vaq_<counter>` gauge line per
// counter and `vaq_stage_us{stage=...,q=...}` summaries per stage.
// Names are lower-cased with [.-] folded to '_'.
func (t *Tracer) WriteVarz(w io.Writer) {
	if t == nil {
		return
	}
	counters := t.Counters()
	fmt.Fprintf(w, "# counters\n")
	for _, name := range sortedKeys(counters) {
		fmt.Fprintf(w, "vaq_%s %d\n", metricName(name), counters[name])
	}
	stages := t.Stages()
	if len(stages) > 0 {
		fmt.Fprintf(w, "# stage latencies (microseconds)\n")
	}
	for _, name := range sortedKeys(stages) {
		st := stages[name]
		mn := metricName(name)
		fmt.Fprintf(w, "vaq_stage_us_count{stage=%q} %d\n", mn, st.Count)
		fmt.Fprintf(w, "vaq_stage_us_sum{stage=%q} %d\n", mn, st.SumUS)
		fmt.Fprintf(w, "vaq_stage_us{stage=%q,q=\"0.50\"} %g\n", mn, st.P50US)
		fmt.Fprintf(w, "vaq_stage_us{stage=%q,q=\"0.90\"} %g\n", mn, st.P90US)
		fmt.Fprintf(w, "vaq_stage_us{stage=%q,q=\"0.99\"} %g\n", mn, st.P99US)
		fmt.Fprintf(w, "vaq_stage_us_max{stage=%q} %g\n", mn, st.MaxUS)
	}
	fmt.Fprintf(w, "vaq_trace_spans_total %d\n", t.TotalSpans())
}

// metricName folds a dotted stage/counter name into the exposition
// charset.
func metricName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, name)
}

// slowEntry is the one-line JSON shape of the slow-query log. ID is
// the root span's "id" attribute when present (session or query id),
// so slow-log lines correlate with /explainz profiles and /tracez
// roots.
type slowEntry struct {
	Slow  string `json:"slow"`
	ID    string `json:"id,omitempty"`
	DurUS int64  `json:"dur_us"`
	Spans int    `json:"spans"`
	Tree  *Node  `json:"tree"`
}

// logSlow dumps the finished root span and its retained descendants as
// one structured JSON line. Called outside t.mu (End released it, and
// the root record is already in the ring).
func (t *Tracer) logSlow(root SpanRecord) {
	var tree *Node
	nspans := 0
	for _, n := range buildTrees(t.Spans()) {
		if n.ID == root.ID {
			tree = n
			n.Walk(func(*Node) { nspans++ })
			break
		}
	}
	if tree == nil {
		tree = &Node{SpanRecord: root}
		nspans = 1
	}
	id := ""
	for _, a := range root.Attrs {
		if a.Key == "id" {
			id = a.Value
			break
		}
	}
	line, err := json.Marshal(slowEntry{Slow: root.Name, ID: id, DurUS: root.DurUS, Spans: nspans, Tree: tree})
	if err != nil {
		return
	}
	t.slowMu.Lock()
	fmt.Fprintf(t.slowW, "%s\n", line)
	t.slowMu.Unlock()
}
