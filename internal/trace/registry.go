package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vaq/internal/quantile"
)

// Counter is a cumulative pipeline-stage counter. Handles are resolved
// once (per engine or query) and bumped lock-free on the hot path; a
// nil *Counter (from a nil tracer) is a no-op.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n.Add(d)
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Counter resolves (creating on first use) the named counter. On a nil
// tracer it returns nil, whose methods are no-ops.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	if c, ok := t.counters.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := t.counters.LoadOrStore(name, &Counter{})
	return c.(*Counter)
}

// Add bumps the named counter (handle resolution included — prefer
// pre-resolved Counter handles on hot paths).
func (t *Tracer) Add(name string, d int64) { t.Counter(name).Add(d) }

// Counters snapshots every counter, sorted by name.
func (t *Tracer) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	out := map[string]int64{}
	t.counters.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Counter).Value()
		return true
	})
	return out
}

// Stage is a per-pipeline-stage latency sketch (one CKMS quantile
// sketch per stage, the same estimator /metricsz uses per route). A nil
// *Stage is a no-op.
type Stage struct {
	mu     sync.Mutex
	sketch *quantile.Sketch
	count  int64
	sumUS  int64
}

// Observe records one duration for the stage.
func (st *Stage) Observe(d time.Duration) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.sketch.Observe(float64(d) / float64(time.Microsecond))
	st.count++
	st.sumUS += d.Microseconds()
	st.mu.Unlock()
}

// StageStats is one stage's latency snapshot, in microseconds.
type StageStats struct {
	Count int64   `json:"count"`
	SumUS int64   `json:"sum_us"`
	P50US float64 `json:"p50_us"`
	P90US float64 `json:"p90_us"`
	P99US float64 `json:"p99_us"`
	MaxUS float64 `json:"max_us"`
}

func (st *Stage) stats() StageStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StageStats{
		Count: st.count,
		SumUS: st.sumUS,
		P50US: st.sketch.Query(0.50),
		P90US: st.sketch.Query(0.90),
		P99US: st.sketch.Query(0.99),
		MaxUS: st.sketch.Max(),
	}
}

// Stage resolves (creating on first use) the named stage sketch. On a
// nil tracer it returns nil, whose Observe is a no-op.
func (t *Tracer) Stage(name string) *Stage {
	if t == nil {
		return nil
	}
	if s, ok := t.stages.Load(name); ok {
		return s.(*Stage)
	}
	s, _ := t.stages.LoadOrStore(name, &Stage{sketch: quantile.New()})
	return s.(*Stage)
}

// Observe records one duration for the named stage (handle resolution
// included — prefer pre-resolved Stage handles on hot paths).
func (t *Tracer) Observe(name string, d time.Duration) { t.Stage(name).Observe(d) }

// Stages snapshots every stage sketch.
func (t *Tracer) Stages() map[string]StageStats {
	if t == nil {
		return nil
	}
	out := map[string]StageStats{}
	t.stages.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Stage).stats()
		return true
	})
	return out
}

// sortedKeys orders a snapshot's keys for deterministic exposition.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
