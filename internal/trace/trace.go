// Package trace is the observability substrate of the query paths: a
// lightweight, allocation-conscious span layer plus a pipeline-stage
// counter/latency registry, threaded through the full online and
// offline paths (server handler → session → svaq stepping /
// rvaq.TopKCtx → ingest table reads → detect invocations).
//
// Design constraints, in order:
//
//   - Zero cost when disabled. Every entry point is nil-safe: a nil
//     *Tracer hands out nil *Span, *Counter and *Stage handles whose
//     methods are no-ops, so instrumented code never branches on a
//     "tracing enabled" flag — it just calls through.
//   - Bounded retention. Finished spans land in a fixed-capacity ring
//     buffer; a long-running daemon keeps the most recent window and
//     forgets the rest. Counters and stage sketches are cumulative.
//   - Monotonic timing. Spans time with time.Since on the monotonic
//     clock reading Go embeds in time.Now.
//
// Spans carry an ID, a parent link, a name and small attribute lists;
// GET /tracez serves the retained spans as JSON trees, GET /varz the
// counter/stage snapshot in Prometheus-style text exposition, and a
// threshold-gated slow-query log dumps root span trees to a writer as
// structured one-line JSON. See docs/OBSERVABILITY.md for the span
// model and the counter catalogue.
package trace

import (
	"context"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one Tracer; 0 means "no span" (the
// parent of a root span).
type SpanID uint64

// Attr is one span attribute. Values are strings; use the SetInt helper
// for numeric attributes.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one in-flight timed operation. It is owned by the goroutine
// that started it until End, which publishes an immutable SpanRecord
// into the tracer's ring buffer. All methods are nil-receiver-safe so
// untraced code paths pay nothing.
type Span struct {
	tr     *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// SpanRecord is a finished span as retained by the ring buffer.
type SpanRecord struct {
	ID     SpanID        `json:"id"`
	Parent SpanID        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"-"`
	DurUS  int64         `json:"dur_us"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Tracer owns span identity, the bounded ring of finished spans, the
// counter registry and the per-stage latency sketches. A nil *Tracer is
// a valid, disabled tracer.
type Tracer struct {
	nextID atomic.Uint64

	mu    sync.Mutex
	ring  []SpanRecord // fixed capacity once full
	next  int          // ring insertion point
	total uint64       // spans ever finished
	cap   int

	counters sync.Map // string → *Counter
	stages   sync.Map // string → *Stage

	slowThresh time.Duration
	slowMu     sync.Mutex
	slowW      io.Writer
}

// DefaultCapacity is the ring-buffer size used when no option overrides
// it: enough for several full traced queries without unbounded growth.
const DefaultCapacity = 4096

// Option configures a Tracer.
type Option func(*Tracer)

// WithCapacity sets the finished-span ring capacity (minimum 16).
func WithCapacity(n int) Option {
	return func(t *Tracer) {
		if n < 16 {
			n = 16
		}
		t.cap = n
	}
}

// WithSlowLog enables the slow-query log: every root span whose
// duration reaches threshold is dumped, with its retained descendants,
// as one line of JSON to w.
func WithSlowLog(threshold time.Duration, w io.Writer) Option {
	return func(t *Tracer) {
		t.slowThresh = threshold
		t.slowW = w
	}
}

// New builds an enabled tracer.
func New(opts ...Option) *Tracer {
	t := &Tracer{cap: DefaultCapacity}
	for _, o := range opts {
		o(t)
	}
	return t
}

// StartSpan opens a span under the given parent (0 for a root span).
// On a nil tracer it returns nil, which every Span method accepts.
func (t *Tracer) StartSpan(name string, parent SpanID) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tr:     t,
		id:     SpanID(t.nextID.Add(1)),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
}

// ID returns the span's identifier (0 for a nil span), for parenting
// spans across API layers that do not share a context.
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr attaches a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: itoa(v)})
}

// End finishes the span and publishes it to the ring buffer. Repeated
// End calls are idempotent; End on a nil span is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	dur := time.Since(s.start)
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		Dur:    dur,
		DurUS:  dur.Microseconds(),
		Attrs:  s.attrs,
	}
	t := s.tr
	t.mu.Lock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
		t.next = (t.next + 1) % t.cap
	}
	t.total++
	t.mu.Unlock()
	if s.parent == 0 && t.slowW != nil && dur >= t.slowThresh {
		t.logSlow(rec)
	}
}

// Spans returns the retained finished spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	if len(t.ring) < t.cap {
		out = append(out, t.ring...)
	} else {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	}
	return out
}

// TotalSpans reports how many spans have finished since the tracer was
// built (retained or evicted).
func (t *Tracer) TotalSpans() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// itoa is a minimal integer formatter kept local so the hot span path
// does not pull strconv's generic machinery into profiles.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// ctxKey types keep the context values private to this package.
type tracerKey struct{}
type spanKey struct{}

// NewContext returns ctx carrying the tracer.
func NewContext(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext extracts the tracer from ctx (nil when absent).
func FromContext(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// ContextWithSpan returns ctx carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext extracts the current span from ctx (nil when absent).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start opens a span named name under ctx's current span, using ctx's
// tracer. Without a tracer it returns (ctx, nil) unchanged — one map
// lookup, no allocation — so instrumented paths call it
// unconditionally.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	s := t.StartSpan(name, SpanFromContext(ctx).ID())
	return ContextWithSpan(ctx, s), s
}
