package detect

import (
	"vaq/internal/annot"
	"vaq/internal/interval"
	"vaq/internal/video"
)

// Scene is the world a simulated model observes: ground truth plus the
// structures that shape its errors. It mirrors synth.World without
// importing it (the detect package stays independent of how scenes are
// produced).
type Scene struct {
	Truth *annot.Video
	// ObjectDistractors / ActionDistractors mark confusable content per
	// label (frames / shots) where the false-positive rate is elevated.
	ObjectDistractors map[annot.Label]interval.Set
	ActionDistractors map[annot.Label]interval.Set
	// Drift optionally scales the base false-positive rate over time
	// (frame index); nil means constant 1.
	Drift func(frame int) float64
	// LabelAccuracy optionally scales per-label detectability: a factor
	// f > 1 raises the effective TPR (toward 1) and lowers the FPR for
	// that label — e.g. "person" is detected more reliably than "faucet"
	// (Table 3 of the paper leans on this asymmetry). Absent labels use
	// factor 1.
	LabelAccuracy map[annot.Label]float64
	Seed          int64
}

// accuracy returns the detectability factor for label (default 1).
func (sc *Scene) accuracy(label annot.Label) float64 {
	if f, ok := sc.LabelAccuracy[label]; ok && f > 0 {
		return f
	}
	return 1
}

// effectiveRates applies the label's detectability factor to a profile's
// TPR (scaling the miss rate down) and FPR (scaling down).
func effectiveRates(p Profile, f float64) (tpr, fprBase, fprDistract float64) {
	tpr = clamp01(1 - (1-p.TPR)/f)
	return tpr, p.FPRBase / f, p.FPRDistractor / f
}

func (sc *Scene) drift(frame int) float64 {
	if sc.Drift == nil {
		return 1
	}
	return sc.Drift(frame)
}

// SimObjectDetector is a simulated object detector over one scene.
type SimObjectDetector struct {
	scene   *Scene
	profile Profile
	meter   *CostMeter
}

// NewSimObjectDetector builds a detector with the given error profile.
// meter may be nil.
func NewSimObjectDetector(scene *Scene, profile Profile, meter *CostMeter) *SimObjectDetector {
	return &SimObjectDetector{scene: scene, profile: profile, meter: meter}
}

// Name implements ObjectDetector.
func (d *SimObjectDetector) Name() string { return d.profile.Name }

// Detect implements ObjectDetector. Results are deterministic per
// (scene seed, label, frame) regardless of invocation order.
func (d *SimObjectDetector) Detect(v video.FrameIdx, labels []annot.Label) []Detection {
	d.meter.Add(d.profile.Cost)
	return d.detectAll(v, labels)
}

// DetectBatch implements BatchObjectDetector: one metered invocation
// covering every frame, byte-identical results to per-frame Detect
// calls (each unit is a pure function of (scene seed, label, frame)).
func (d *SimObjectDetector) DetectBatch(vs []video.FrameIdx, labels []annot.Label) [][]Detection {
	if len(vs) == 0 {
		return nil
	}
	d.meter.AddBatch(d.profile.Cost, len(vs))
	out := make([][]Detection, len(vs))
	for i, v := range vs {
		out[i] = d.detectAll(v, labels)
	}
	return out
}

func (d *SimObjectDetector) detectAll(v video.FrameIdx, labels []annot.Label) []Detection {
	var out []Detection
	for _, label := range labels {
		out = append(out, d.detectLabel(v, label)...)
	}
	return out
}

func (d *SimObjectDetector) detectLabel(v video.FrameIdx, label annot.Label) []Detection {
	key := hashKey(d.scene.Seed, "obj:"+string(label), int64(v))
	truth := d.scene.Truth.Objects[label]
	tpr, fprBase, fprDistract := effectiveRates(d.profile, d.scene.accuracy(label))
	if ep, ok := truth.Find(int(v)); ok {
		return d.truePositives(v, label, ep, key, tpr)
	}
	// Label absent: false positive with base or distractor rate.
	fpr := fprBase * d.scene.drift(int(v))
	if d.scene.ObjectDistractors[label].Contains(int(v)) {
		fpr = fprDistract
	}
	if unitRand(key, 0) >= clamp01(fpr) {
		return nil
	}
	u1, u2 := gaussPair(key, 1)
	return []Detection{{
		Label: label,
		Score: d.profile.FPScore.sample(u1, u2),
		Box:   randomBox(key, 3),
	}}
}

// truePositives emits detections for the instances present during the
// ground-truth episode ep. Each instance is detected independently with
// probability TPR and follows a smooth deterministic trajectory so a
// tracker downstream has realistic work.
func (d *SimObjectDetector) truePositives(v video.FrameIdx, label annot.Label, ep interval.Interval, key uint64, tpr float64) []Detection {
	epKey := hashKey(d.scene.Seed, "ep:"+string(label), int64(ep.Lo))
	instances := 1 + int(splitmix64(epKey)%2) // 1 or 2 instances per episode
	var out []Detection
	for i := 0; i < instances; i++ {
		// One independent draw per instance per frame.
		if unitRand(key, uint64(10+3*i)) >= tpr {
			continue
		}
		u1, u2 := gaussPair(key, uint64(11+3*i))
		out = append(out, Detection{
			Label: label,
			Score: d.profile.TPScore.sample(u1, u2),
			Box:   trajectoryBox(epKey, i, int(v)-ep.Lo),
		})
	}
	return out
}

// trajectoryBox returns instance i's box at the given offset into its
// episode: constant-velocity motion reflecting off the frame borders.
func trajectoryBox(epKey uint64, i, offset int) Box {
	k := splitmix64(epKey + uint64(i)*0x100000001b3)
	w := 0.10 + 0.20*unitRand(k, 0)
	h := 0.10 + 0.20*unitRand(k, 1)
	x0 := unitRand(k, 2) * (1 - w)
	y0 := unitRand(k, 3) * (1 - h)
	vx := (unitRand(k, 4)*2 - 1) * 0.004 // per-frame velocity
	vy := (unitRand(k, 5)*2 - 1) * 0.004
	return Box{
		X: reflect01(x0+vx*float64(offset), 1-w),
		Y: reflect01(y0+vy*float64(offset), 1-h),
		W: w,
		H: h,
	}
}

// reflect01 folds p into [0, lim] as if bouncing between the walls.
func reflect01(p, lim float64) float64 {
	if lim <= 0 {
		return 0
	}
	period := 2 * lim
	p = p - period*float64(int(p/period))
	if p < 0 {
		p += period
	}
	if p > lim {
		p = period - p
	}
	return p
}

func randomBox(key uint64, n uint64) Box {
	w := 0.08 + 0.25*unitRand(key, n)
	h := 0.08 + 0.25*unitRand(key, n+1)
	return Box{
		X: unitRand(key, n+2) * (1 - w),
		Y: unitRand(key, n+3) * (1 - h),
		W: w,
		H: h,
	}
}

// SimActionRecognizer is a simulated shot-level action recognizer.
type SimActionRecognizer struct {
	scene   *Scene
	profile Profile
	meter   *CostMeter
}

// NewSimActionRecognizer builds a recognizer with the given error
// profile. meter may be nil.
func NewSimActionRecognizer(scene *Scene, profile Profile, meter *CostMeter) *SimActionRecognizer {
	return &SimActionRecognizer{scene: scene, profile: profile, meter: meter}
}

// Name implements ActionRecognizer.
func (r *SimActionRecognizer) Name() string { return r.profile.Name }

// Recognize implements ActionRecognizer. Deterministic per
// (scene seed, label, shot).
func (r *SimActionRecognizer) Recognize(s video.ShotIdx, labels []annot.Label) []ActionScore {
	r.meter.Add(r.profile.Cost)
	return r.recognizeAll(s, labels)
}

// RecognizeBatch implements BatchActionRecognizer: one metered
// invocation covering every shot, byte-identical to per-shot Recognize.
func (r *SimActionRecognizer) RecognizeBatch(ss []video.ShotIdx, labels []annot.Label) [][]ActionScore {
	if len(ss) == 0 {
		return nil
	}
	r.meter.AddBatch(r.profile.Cost, len(ss))
	out := make([][]ActionScore, len(ss))
	for i, s := range ss {
		out[i] = r.recognizeAll(s, labels)
	}
	return out
}

func (r *SimActionRecognizer) recognizeAll(s video.ShotIdx, labels []annot.Label) []ActionScore {
	var out []ActionScore
	frame := int(s) * r.scene.Truth.Meta.Geom.ShotLen
	for _, label := range labels {
		key := hashKey(r.scene.Seed, "act:"+string(label), int64(s))
		present := r.scene.Truth.Actions[label].Contains(int(s))
		tpr, fprBase, fprDistract := effectiveRates(r.profile, r.scene.accuracy(label))
		var score float64
		switch {
		case present && unitRand(key, 0) < tpr:
			u1, u2 := gaussPair(key, 1)
			score = r.profile.TPScore.sample(u1, u2)
		case present:
			// Missed: weak sub-threshold response.
			score = 0.30 * unitRand(key, 5)
		default:
			fpr := fprBase * r.scene.drift(frame)
			if r.scene.ActionDistractors[label].Contains(int(s)) {
				fpr = fprDistract
			}
			if unitRand(key, 0) < clamp01(fpr) {
				u1, u2 := gaussPair(key, 1)
				score = r.profile.FPScore.sample(u1, u2)
			}
		}
		if score > 0 {
			out = append(out, ActionScore{Label: label, Score: score})
		}
	}
	return out
}
