package detect

import (
	"fmt"

	"vaq/internal/annot"
	"vaq/internal/video"
)

// Footnote 2 of the paper sketches predicates over spatial relationships
// between objects ("human left of the car"): the system derives a binary
// per-frame output from the object detection outcomes and feeds it into
// the same scan-statistics machinery as plain object predicates. This
// file implements that derivation from bounding boxes.

// RelationKind is a spatial relationship between two boxes.
type RelationKind int

const (
	// LeftOf holds when a's center is left of b's center.
	LeftOf RelationKind = iota
	// RightOf holds when a's center is right of b's center.
	RightOf
	// Above holds when a's center is above b's center (smaller y).
	Above
	// Below holds when a's center is below b's center.
	Below
	// Overlaps holds when the boxes overlap with IoU ≥ 0.1.
	Overlaps
	// Near holds when the centers are within 0.25 of the frame diagonal.
	Near
)

func (k RelationKind) String() string {
	switch k {
	case LeftOf:
		return "left_of"
	case RightOf:
		return "right_of"
	case Above:
		return "above"
	case Below:
		return "below"
	case Overlaps:
		return "overlaps"
	case Near:
		return "near"
	}
	return "unknown"
}

// ParseRelationKind maps the VQL spelling to a kind.
func ParseRelationKind(s string) (RelationKind, error) {
	switch s {
	case "left_of":
		return LeftOf, nil
	case "right_of":
		return RightOf, nil
	case "above":
		return Above, nil
	case "below":
		return Below, nil
	case "overlaps":
		return Overlaps, nil
	case "near":
		return Near, nil
	}
	return 0, fmt.Errorf("detect: unknown relation %q", s)
}

// Relation is a spatial predicate over two object labels.
type Relation struct {
	A, B annot.Label
	Kind RelationKind
}

func (r Relation) String() string {
	return fmt.Sprintf("%s %s %s", r.A, r.Kind, r.B)
}

// holds evaluates the relation on a concrete pair of boxes.
func (r Relation) holds(a, b Box) bool {
	ax, ay := a.X+a.W/2, a.Y+a.H/2
	bx, by := b.X+b.W/2, b.Y+b.H/2
	switch r.Kind {
	case LeftOf:
		return ax < bx
	case RightOf:
		return ax > bx
	case Above:
		return ay < by
	case Below:
		return ay > by
	case Overlaps:
		return a.IoU(b) >= 0.1
	case Near:
		dx, dy := ax-bx, ay-by
		return dx*dx+dy*dy <= 0.25*0.25*2 // 0.25 of the unit diagonal
	}
	return false
}

// EvalRelation returns the per-frame relation indicator derived from a
// frame's detections: true iff some above-threshold detection pair
// (one of label A, one of label B) satisfies the relation. This is the
// binary output footnote 2 describes; it then behaves exactly like an
// object prediction indicator in the scan-statistics machinery.
func EvalRelation(dets []Detection, r Relation, threshold float64) bool {
	for _, da := range dets {
		if da.Label != r.A || da.Score < threshold {
			continue
		}
		for _, db := range dets {
			if db.Label != r.B || db.Score < threshold {
				continue
			}
			if r.holds(da.Box, db.Box) {
				return true
			}
		}
	}
	return false
}

// RelationDetector adapts an ObjectDetector into a per-frame relation
// indicator source.
type RelationDetector struct {
	det       ObjectDetector
	rel       Relation
	threshold float64
}

// NewRelationDetector wraps det to evaluate rel at the given score
// threshold.
func NewRelationDetector(det ObjectDetector, rel Relation, threshold float64) *RelationDetector {
	return &RelationDetector{det: det, rel: rel, threshold: threshold}
}

// Relation returns the wrapped relation.
func (rd *RelationDetector) Relation() Relation { return rd.rel }

// Holds evaluates the relation on frame v (one detector invocation for
// both labels).
func (rd *RelationDetector) Holds(v video.FrameIdx) bool {
	dets := rd.det.Detect(v, []annot.Label{rd.rel.A, rd.rel.B})
	return EvalRelation(dets, rd.rel, rd.threshold)
}
