package detect

import (
	"testing"

	"vaq/internal/annot"
	"vaq/internal/interval"
	"vaq/internal/video"
)

func TestParseRelationKind(t *testing.T) {
	for _, s := range []string{"left_of", "right_of", "above", "below", "overlaps", "near"} {
		k, err := ParseRelationKind(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if k.String() != s {
			t.Errorf("round trip %s -> %s", s, k)
		}
	}
	if _, err := ParseRelationKind("inside"); err == nil {
		t.Error("unknown relation accepted")
	}
	if RelationKind(99).String() != "unknown" {
		t.Error("unknown kind string")
	}
}

func TestRelationHolds(t *testing.T) {
	left := Box{X: 0.1, Y: 0.4, W: 0.1, H: 0.1}  // center (0.15, 0.45)
	right := Box{X: 0.7, Y: 0.1, W: 0.1, H: 0.1} // center (0.75, 0.15)
	cases := []struct {
		kind RelationKind
		a, b Box
		want bool
	}{
		{LeftOf, left, right, true},
		{LeftOf, right, left, false},
		{RightOf, right, left, true},
		{Above, right, left, true}, // right box is higher (smaller y)
		{Below, left, right, true},
		{Overlaps, left, left, true},
		{Overlaps, left, right, false},
		{Near, left, Box{X: 0.12, Y: 0.42, W: 0.1, H: 0.1}, true},
		{Near, left, right, false},
	}
	for _, c := range cases {
		r := Relation{A: "a", B: "b", Kind: c.kind}
		if got := r.holds(c.a, c.b); got != c.want {
			t.Errorf("%s(%+v, %+v) = %v, want %v", c.kind, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalRelation(t *testing.T) {
	dets := []Detection{
		{Label: "person", Score: 0.9, Box: Box{X: 0.1, Y: 0.4, W: 0.1, H: 0.1}},
		{Label: "car", Score: 0.9, Box: Box{X: 0.7, Y: 0.4, W: 0.2, H: 0.15}},
		{Label: "car", Score: 0.3, Box: Box{X: 0.0, Y: 0.4, W: 0.2, H: 0.15}}, // below threshold
	}
	r := Relation{A: "person", B: "car", Kind: LeftOf}
	if !EvalRelation(dets, r, 0.5) {
		t.Fatal("person left of car should hold")
	}
	// The sub-threshold car to the person's left must not flip RightOf.
	r2 := Relation{A: "person", B: "car", Kind: RightOf}
	if EvalRelation(dets, r2, 0.5) {
		t.Fatal("sub-threshold detection should be ignored")
	}
	// Missing labels.
	r3 := Relation{A: "person", B: "dog", Kind: Near}
	if EvalRelation(dets, r3, 0.5) {
		t.Fatal("relation with absent label should not hold")
	}
	if EvalRelation(nil, r, 0.5) {
		t.Fatal("no detections should not hold")
	}
}

func TestRelationDetectorAgainstIdealScene(t *testing.T) {
	meta := video.Meta{Name: "rel", Frames: 5000, Geom: video.DefaultGeometry()}
	truth := annot.NewVideo(meta)
	truth.AddObject("person", interval.Set{{Lo: 0, Hi: 4999}})
	truth.AddObject("car", interval.Set{{Lo: 0, Hi: 4999}})
	scene := &Scene{Truth: truth, Seed: 99}
	det := NewSimObjectDetector(scene, IdealObject, nil)
	rd := NewRelationDetector(det, Relation{A: "person", B: "car", Kind: LeftOf}, 0.5)
	if rd.Relation().Kind != LeftOf {
		t.Fatal("Relation accessor wrong")
	}
	// With both labels always present and moving independently, LeftOf
	// should hold on a substantial fraction of frames but not all.
	holds := 0
	for v := 0; v < 5000; v++ {
		if rd.Holds(video.FrameIdx(v)) {
			holds++
		}
	}
	frac := float64(holds) / 5000
	if frac < 0.2 || frac > 0.95 {
		t.Fatalf("LeftOf fraction %v implausible for independent trajectories", frac)
	}
	// Consistency: Holds equals EvalRelation over the detector output.
	for v := 0; v < 100; v++ {
		dets := det.Detect(video.FrameIdx(v), []annot.Label{"person", "car"})
		want := EvalRelation(dets, rd.rel, 0.5)
		if rd.Holds(video.FrameIdx(v)) != want {
			t.Fatalf("Holds inconsistent at frame %d", v)
		}
	}
}
