package detect

import (
	"testing"

	"vaq/internal/annot"
	"vaq/internal/video"
)

func det(label annot.Label, b Box) Detection { return Detection{Label: label, Score: 0.9, Box: b} }

func TestTrackerKeepsIDAcrossFrames(t *testing.T) {
	trk := NewTracker(0.3, 5)
	d1 := trk.Update(0, []Detection{det("car", Box{0.1, 0.1, 0.2, 0.2})})
	if d1[0].Track != 1 {
		t.Fatalf("first track id = %d, want 1", d1[0].Track)
	}
	// Slightly moved box: same track.
	d2 := trk.Update(1, []Detection{det("car", Box{0.11, 0.1, 0.2, 0.2})})
	if d2[0].Track != 1 {
		t.Fatalf("moved box got track %d, want 1", d2[0].Track)
	}
}

func TestTrackerSeparatesLabels(t *testing.T) {
	trk := NewTracker(0.3, 5)
	trk.Update(0, []Detection{det("car", Box{0.1, 0.1, 0.2, 0.2})})
	d := trk.Update(1, []Detection{det("dog", Box{0.1, 0.1, 0.2, 0.2})})
	if d[0].Track == 1 {
		t.Fatal("different label matched an existing track")
	}
}

func TestTrackerSeparatesDistantBoxes(t *testing.T) {
	trk := NewTracker(0.3, 5)
	trk.Update(0, []Detection{det("car", Box{0.0, 0.0, 0.1, 0.1})})
	d := trk.Update(1, []Detection{det("car", Box{0.8, 0.8, 0.1, 0.1})})
	if d[0].Track == 1 {
		t.Fatal("distant box matched an existing track")
	}
	if trk.ActiveTracks() != 2 {
		t.Fatalf("active tracks = %d, want 2", trk.ActiveTracks())
	}
}

func TestTrackerExpiry(t *testing.T) {
	trk := NewTracker(0.3, 3)
	trk.Update(0, []Detection{det("car", Box{0.1, 0.1, 0.2, 0.2})})
	// No detections for longer than maxAge.
	trk.Update(10, nil)
	d := trk.Update(11, []Detection{det("car", Box{0.1, 0.1, 0.2, 0.2})})
	if d[0].Track == 1 {
		t.Fatal("expired track was reused")
	}
	if trk.TracksOpened() != 2 {
		t.Fatalf("opened = %d, want 2", trk.TracksOpened())
	}
}

func TestTrackerGreedyPicksBestIoU(t *testing.T) {
	trk := NewTracker(0.1, 5)
	trk.Update(0, []Detection{det("car", Box{0.1, 0.1, 0.2, 0.2})})
	// Two candidates overlap the track; the closer one must win.
	d := trk.Update(1, []Detection{
		det("car", Box{0.15, 0.1, 0.2, 0.2}), // lower IoU
		det("car", Box{0.10, 0.1, 0.2, 0.2}), // exact match
	})
	if d[1].Track != 1 {
		t.Fatalf("exact match got track %d, want 1", d[1].Track)
	}
	if d[0].Track == 1 {
		t.Fatal("both detections matched the same track")
	}
}

func TestTrackerTwoInstancesStayStable(t *testing.T) {
	trk := NewTracker(0.3, 10)
	boxA := Box{0.1, 0.1, 0.2, 0.2}
	boxB := Box{0.6, 0.6, 0.2, 0.2}
	var idA, idB int
	for v := 0; v < 50; v++ {
		boxA.X += 0.002
		boxB.Y -= 0.002
		d := trk.Update(video.FrameIdx(v), []Detection{det("car", boxA), det("car", boxB)})
		if v == 0 {
			idA, idB = d[0].Track, d[1].Track
			continue
		}
		if d[0].Track != idA || d[1].Track != idB {
			t.Fatalf("frame %d: tracks drifted: %d/%d vs %d/%d", v, d[0].Track, d[1].Track, idA, idB)
		}
	}
	if trk.TracksOpened() != 2 {
		t.Fatalf("opened = %d, want 2", trk.TracksOpened())
	}
}

func TestTrackerDefaults(t *testing.T) {
	trk := NewTracker(0, 0)
	if trk.iouThresh != 0.3 || trk.maxAge != 15 {
		t.Fatalf("defaults = %v/%v", trk.iouThresh, trk.maxAge)
	}
}

func TestHashKeyStable(t *testing.T) {
	a := hashKey(1, "car", 42)
	b := hashKey(1, "car", 42)
	if a != b {
		t.Fatal("hashKey not deterministic")
	}
	if hashKey(2, "car", 42) == a || hashKey(1, "dog", 42) == a || hashKey(1, "car", 43) == a {
		t.Fatal("hashKey collisions across distinct keys (unexpectedly)")
	}
}

func TestUnitRandUniformish(t *testing.T) {
	key := hashKey(9, "x", 0)
	sum := 0.0
	const n = 20000
	for i := uint64(0); i < n; i++ {
		u := unitRand(key, i)
		if u < 0 || u >= 1 {
			t.Fatalf("unitRand out of [0,1): %v", u)
		}
		sum += u
	}
	if mean := sum / n; mean < 0.48 || mean > 0.52 {
		t.Fatalf("unitRand mean %v far from 0.5", mean)
	}
}

func TestTrackerTieBreakIsDeterministic(t *testing.T) {
	// Two co-located instances: both candidate pairs at frame 1 have
	// identical IoU, so only the (det, trk) tie-break decides the
	// association. It must come out the same on every run: detection 0
	// takes the older track, detection 1 the younger.
	for run := 0; run < 50; run++ {
		trk := NewTracker(0.3, 5)
		b := Box{0.4, 0.4, 0.2, 0.2}
		d0 := trk.Update(0, []Detection{det("car", b), det("car", b)})
		if d0[0].Track != 1 || d0[1].Track != 2 {
			t.Fatalf("run %d: opening ids = %d, %d, want 1, 2", run, d0[0].Track, d0[1].Track)
		}
		d1 := trk.Update(1, []Detection{det("car", b), det("car", b)})
		if d1[0].Track != 1 || d1[1].Track != 2 {
			t.Fatalf("run %d: tied association gave %d, %d, want 1, 2", run, d1[0].Track, d1[1].Track)
		}
	}
}

func TestTrackerSingleDetectionTiedBetweenTwoTracks(t *testing.T) {
	trk := NewTracker(0.3, 5)
	b := Box{0.4, 0.4, 0.2, 0.2}
	trk.Update(0, []Detection{det("car", b), det("car", b)}) // tracks 1 and 2
	d := trk.Update(1, []Detection{det("car", b)})
	if d[0].Track != 1 {
		t.Fatalf("tied single detection matched track %d, want the older track 1", d[0].Track)
	}
}

func TestTrackerSurvivesEmptyFramesWithinMaxAge(t *testing.T) {
	trk := NewTracker(0.3, 5)
	b := Box{0.1, 0.1, 0.2, 0.2}
	trk.Update(0, []Detection{det("car", b)})
	// The detector returns nothing for a few frames mid-track (occlusion
	// or missed detections) — within maxAge the track must survive.
	trk.Update(1, nil)
	trk.Update(2, []Detection{})
	trk.Update(3, nil)
	d := trk.Update(4, []Detection{det("car", b)})
	if d[0].Track != 1 {
		t.Fatalf("track lost over an in-age gap: got %d, want 1", d[0].Track)
	}
	if trk.TracksOpened() != 1 {
		t.Fatalf("opened = %d, want 1", trk.TracksOpened())
	}
}

func TestTrackerExpiryBoundaryExact(t *testing.T) {
	// A gap of exactly maxAge frames keeps the track; maxAge+1 drops it.
	trk := NewTracker(0.3, 3)
	b := Box{0.1, 0.1, 0.2, 0.2}
	trk.Update(0, []Detection{det("car", b)})
	if d := trk.Update(3, []Detection{det("car", b)}); d[0].Track != 1 {
		t.Fatalf("gap == maxAge: got %d, want 1", d[0].Track)
	}
	trk2 := NewTracker(0.3, 3)
	trk2.Update(0, []Detection{det("car", b)})
	if d := trk2.Update(4, []Detection{det("car", b)}); d[0].Track != 2 {
		t.Fatalf("gap > maxAge: got %d, want a fresh track 2", d[0].Track)
	}
}

func TestTrackerStableAcrossFallbackHop(t *testing.T) {
	// A resilience fallback hop swaps the detector mid-track: the
	// fallback model localizes the same instance with a slightly offset
	// box for one frame, then the primary returns. As long as the offset
	// box still clears the IoU threshold, the identifier must not churn.
	trk := NewTracker(0.3, 5)
	primary := Box{0.30, 0.30, 0.20, 0.20}
	fallback := Box{0.32, 0.31, 0.20, 0.20} // same instance, different model
	for f := 0; f < 4; f++ {
		if d := trk.Update(video.FrameIdx(f), []Detection{det("car", primary)}); d[0].Track != 1 {
			t.Fatalf("frame %d: track %d, want 1", f, d[0].Track)
		}
	}
	if d := trk.Update(4, []Detection{det("car", fallback)}); d[0].Track != 1 {
		t.Fatalf("fallback-hop frame: track %d, want 1", d[0].Track)
	}
	for f := 5; f < 8; f++ {
		if d := trk.Update(video.FrameIdx(f), []Detection{det("car", primary)}); d[0].Track != 1 {
			t.Fatalf("frame %d after hop: track %d, want 1", f, d[0].Track)
		}
	}
	if trk.TracksOpened() != 1 {
		t.Fatalf("opened = %d tracks across the hop, want 1", trk.TracksOpened())
	}
}
