package detect

import (
	"testing"

	"vaq/internal/annot"
	"vaq/internal/video"
)

func det(label annot.Label, b Box) Detection { return Detection{Label: label, Score: 0.9, Box: b} }

func TestTrackerKeepsIDAcrossFrames(t *testing.T) {
	trk := NewTracker(0.3, 5)
	d1 := trk.Update(0, []Detection{det("car", Box{0.1, 0.1, 0.2, 0.2})})
	if d1[0].Track != 1 {
		t.Fatalf("first track id = %d, want 1", d1[0].Track)
	}
	// Slightly moved box: same track.
	d2 := trk.Update(1, []Detection{det("car", Box{0.11, 0.1, 0.2, 0.2})})
	if d2[0].Track != 1 {
		t.Fatalf("moved box got track %d, want 1", d2[0].Track)
	}
}

func TestTrackerSeparatesLabels(t *testing.T) {
	trk := NewTracker(0.3, 5)
	trk.Update(0, []Detection{det("car", Box{0.1, 0.1, 0.2, 0.2})})
	d := trk.Update(1, []Detection{det("dog", Box{0.1, 0.1, 0.2, 0.2})})
	if d[0].Track == 1 {
		t.Fatal("different label matched an existing track")
	}
}

func TestTrackerSeparatesDistantBoxes(t *testing.T) {
	trk := NewTracker(0.3, 5)
	trk.Update(0, []Detection{det("car", Box{0.0, 0.0, 0.1, 0.1})})
	d := trk.Update(1, []Detection{det("car", Box{0.8, 0.8, 0.1, 0.1})})
	if d[0].Track == 1 {
		t.Fatal("distant box matched an existing track")
	}
	if trk.ActiveTracks() != 2 {
		t.Fatalf("active tracks = %d, want 2", trk.ActiveTracks())
	}
}

func TestTrackerExpiry(t *testing.T) {
	trk := NewTracker(0.3, 3)
	trk.Update(0, []Detection{det("car", Box{0.1, 0.1, 0.2, 0.2})})
	// No detections for longer than maxAge.
	trk.Update(10, nil)
	d := trk.Update(11, []Detection{det("car", Box{0.1, 0.1, 0.2, 0.2})})
	if d[0].Track == 1 {
		t.Fatal("expired track was reused")
	}
	if trk.TracksOpened() != 2 {
		t.Fatalf("opened = %d, want 2", trk.TracksOpened())
	}
}

func TestTrackerGreedyPicksBestIoU(t *testing.T) {
	trk := NewTracker(0.1, 5)
	trk.Update(0, []Detection{det("car", Box{0.1, 0.1, 0.2, 0.2})})
	// Two candidates overlap the track; the closer one must win.
	d := trk.Update(1, []Detection{
		det("car", Box{0.15, 0.1, 0.2, 0.2}), // lower IoU
		det("car", Box{0.10, 0.1, 0.2, 0.2}), // exact match
	})
	if d[1].Track != 1 {
		t.Fatalf("exact match got track %d, want 1", d[1].Track)
	}
	if d[0].Track == 1 {
		t.Fatal("both detections matched the same track")
	}
}

func TestTrackerTwoInstancesStayStable(t *testing.T) {
	trk := NewTracker(0.3, 10)
	boxA := Box{0.1, 0.1, 0.2, 0.2}
	boxB := Box{0.6, 0.6, 0.2, 0.2}
	var idA, idB int
	for v := 0; v < 50; v++ {
		boxA.X += 0.002
		boxB.Y -= 0.002
		d := trk.Update(video.FrameIdx(v), []Detection{det("car", boxA), det("car", boxB)})
		if v == 0 {
			idA, idB = d[0].Track, d[1].Track
			continue
		}
		if d[0].Track != idA || d[1].Track != idB {
			t.Fatalf("frame %d: tracks drifted: %d/%d vs %d/%d", v, d[0].Track, d[1].Track, idA, idB)
		}
	}
	if trk.TracksOpened() != 2 {
		t.Fatalf("opened = %d, want 2", trk.TracksOpened())
	}
}

func TestTrackerDefaults(t *testing.T) {
	trk := NewTracker(0, 0)
	if trk.iouThresh != 0.3 || trk.maxAge != 15 {
		t.Fatalf("defaults = %v/%v", trk.iouThresh, trk.maxAge)
	}
}

func TestHashKeyStable(t *testing.T) {
	a := hashKey(1, "car", 42)
	b := hashKey(1, "car", 42)
	if a != b {
		t.Fatal("hashKey not deterministic")
	}
	if hashKey(2, "car", 42) == a || hashKey(1, "dog", 42) == a || hashKey(1, "car", 43) == a {
		t.Fatal("hashKey collisions across distinct keys (unexpectedly)")
	}
}

func TestUnitRandUniformish(t *testing.T) {
	key := hashKey(9, "x", 0)
	sum := 0.0
	const n = 20000
	for i := uint64(0); i < n; i++ {
		u := unitRand(key, i)
		if u < 0 || u >= 1 {
			t.Fatalf("unitRand out of [0,1): %v", u)
		}
		sum += u
	}
	if mean := sum / n; mean < 0.48 || mean > 0.52 {
		t.Fatalf("unitRand mean %v far from 0.5", mean)
	}
}
