package detect

import (
	"context"

	"vaq/internal/annot"
	"vaq/internal/video"
)

// The ObjectDetector / ActionRecognizer interfaces the query algorithms
// consume are infallible by construction — the paper's pipelines assume
// the models always answer. Production backends do not: they stall,
// error transiently, and time out. The fallible interfaces below are the
// context-aware, error-returning face of a detection backend; the
// resilience layer (package resilience) consumes them and presents the
// infallible interfaces back to the engines, absorbing faults through
// retries, deadlines, circuit breaking and graceful degradation. The
// fault injector (package fault) implements them to simulate misbehaving
// backends deterministically.

// FallibleObjectDetector is an object detection backend that can fail:
// DetectCtx honours ctx (cancellation, deadlines) and reports transport
// or model errors instead of silently returning nothing.
type FallibleObjectDetector interface {
	// Name identifies the backend (used in reports, per-backend breakers
	// and fault counters).
	Name() string
	// DetectCtx returns the detections on frame v for the given labels,
	// or an error when the backend fails or ctx expires first.
	DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]Detection, error)
}

// FallibleActionRecognizer is an action recognition backend that can
// fail; the shot-level counterpart of FallibleObjectDetector.
type FallibleActionRecognizer interface {
	Name() string
	// RecognizeCtx returns the scores of the given action labels on shot
	// s, or an error when the backend fails or ctx expires first.
	RecognizeCtx(ctx context.Context, s video.ShotIdx, labels []annot.Label) ([]ActionScore, error)
}

// InfallibleBackend marks the adapters AsFallibleObject and
// AsFallibleAction return: backends that never error and never observe
// ctx. The resilience layer checks for it to skip the per-call deadline
// context and breaker round-trip, which such backends cannot react to
// anyway — that is what keeps wrapping the plain simulators near-free.
type InfallibleBackend interface {
	InfallibleBackend()
}

// AsFallibleObject adapts an infallible detector to the fallible
// interface (never erroring, ignoring ctx). Detectors that already
// implement FallibleObjectDetector pass through unwrapped.
func AsFallibleObject(d ObjectDetector) FallibleObjectDetector {
	if f, ok := d.(FallibleObjectDetector); ok {
		return f
	}
	return infallibleObject{d}
}

// AsFallibleAction adapts an infallible recognizer to the fallible
// interface; recognizers that already implement it pass through.
func AsFallibleAction(r ActionRecognizer) FallibleActionRecognizer {
	if f, ok := r.(FallibleActionRecognizer); ok {
		return f
	}
	return infallibleAction{r}
}

type infallibleObject struct{ d ObjectDetector }

func (a infallibleObject) Name() string       { return a.d.Name() }
func (a infallibleObject) InfallibleBackend() {}

// Unwrap exposes the adapted detector so layers below the adapter (the
// micro-batcher in package infer) can discover optional capabilities
// such as BatchObjectDetector.
func (a infallibleObject) Unwrap() ObjectDetector { return a.d }

// DetectCtx honours ctx before invoking: a cancelled or expired session
// must not spend (simulated or real) inference on dead work — cache-miss
// storms after a client disconnect would otherwise still run the model.
func (a infallibleObject) DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]Detection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.d.Detect(v, labels), nil
}

type infallibleAction struct{ r ActionRecognizer }

func (a infallibleAction) Name() string       { return a.r.Name() }
func (a infallibleAction) InfallibleBackend() {}

// Unwrap exposes the adapted recognizer (see infallibleObject.Unwrap).
func (a infallibleAction) Unwrap() ActionRecognizer { return a.r }

// RecognizeCtx honours ctx before invoking (see infallibleObject).
func (a infallibleAction) RecognizeCtx(ctx context.Context, s video.ShotIdx, labels []annot.Label) ([]ActionScore, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.r.Recognize(s, labels), nil
}
