package detect

import (
	"testing"

	"vaq/internal/annot"
	"vaq/internal/video"
)

// BenchmarkDetect measures one simulated object-detector invocation —
// the unit the paper's runtime analysis counts (§5.2).
func BenchmarkDetect(b *testing.B) {
	sc := testScene(100)
	det := NewSimObjectDetector(sc, MaskRCNN, nil)
	labels := []annot.Label{"car"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(video.FrameIdx(i%20000), labels)
	}
}

func BenchmarkRecognize(b *testing.B) {
	sc := testScene(101)
	rec := NewSimActionRecognizer(sc, I3D, nil)
	labels := []annot.Label{"run"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Recognize(video.ShotIdx(i%2000), labels)
	}
}

// BenchmarkTrackerUpdate measures the per-frame data-association cost
// with two live instances.
func BenchmarkTrackerUpdate(b *testing.B) {
	trk := NewTracker(0.3, 15)
	dets := []Detection{
		{Label: "car", Score: 0.9, Box: Box{0.1, 0.1, 0.2, 0.2}},
		{Label: "car", Score: 0.8, Box: Box{0.6, 0.6, 0.2, 0.2}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := make([]Detection, len(dets))
		copy(d, dets)
		trk.Update(video.FrameIdx(i), d)
	}
}

func BenchmarkEvalRelation(b *testing.B) {
	dets := []Detection{
		{Label: "person", Score: 0.9, Box: Box{0.1, 0.4, 0.1, 0.1}},
		{Label: "car", Score: 0.9, Box: Box{0.7, 0.4, 0.2, 0.15}},
		{Label: "car", Score: 0.8, Box: Box{0.2, 0.1, 0.2, 0.15}},
	}
	r := Relation{A: "person", B: "car", Kind: LeftOf}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalRelation(dets, r, 0.5)
	}
}
