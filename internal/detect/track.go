package detect

import (
	"sort"

	"vaq/internal/annot"
	"vaq/internal/video"
)

// Tracker assigns stable tracking identifiers to per-frame detections by
// greedy IoU data association, standing in for CenterTrack (§5.1). Each
// object instance keeps its identifier for as long as it is matched;
// identifiers start at 1 and are never reused.
//
// A Tracker is stateful and must be fed frames in ascending order.
type Tracker struct {
	iouThresh float64
	maxAge    int
	nextID    int
	active    []trackState
}

type trackState struct {
	id       int
	label    annot.Label
	box      Box
	lastSeen video.FrameIdx
}

// NewTracker returns a tracker matching detections to existing tracks
// when IoU ≥ iouThresh, dropping tracks unseen for more than maxAge
// frames.
func NewTracker(iouThresh float64, maxAge int) *Tracker {
	if iouThresh <= 0 {
		iouThresh = 0.3
	}
	if maxAge <= 0 {
		maxAge = 15
	}
	return &Tracker{iouThresh: iouThresh, maxAge: maxAge, nextID: 1}
}

// Update associates the detections of frame v with tracks, filling each
// Detection's Track field, and returns the detections. Unmatched
// detections open new tracks; stale tracks are expired.
func (t *Tracker) Update(v video.FrameIdx, dets []Detection) []Detection {
	// Expire stale tracks.
	alive := t.active[:0]
	for _, tr := range t.active {
		if int(v-tr.lastSeen) <= t.maxAge {
			alive = append(alive, tr)
		}
	}
	t.active = alive

	// Greedy matching: consider candidate pairs in decreasing IoU.
	type pair struct {
		det, trk int
		iou      float64
	}
	var pairs []pair
	for di, d := range dets {
		for ti, tr := range t.active {
			if tr.label != d.Label {
				continue
			}
			if iou := d.Box.IoU(tr.box); iou >= t.iouThresh {
				pairs = append(pairs, pair{det: di, trk: ti, iou: iou})
			}
		}
	}
	// Equal-IoU pairs tie-break on (detection index, track index) so
	// association is deterministic — sort.Slice alone is unstable and
	// would let ties pick arbitrary winners run to run.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].iou != pairs[j].iou {
			return pairs[i].iou > pairs[j].iou
		}
		if pairs[i].det != pairs[j].det {
			return pairs[i].det < pairs[j].det
		}
		return pairs[i].trk < pairs[j].trk
	})
	usedDet := make([]bool, len(dets))
	usedTrk := make([]bool, len(t.active))
	for _, p := range pairs {
		if usedDet[p.det] || usedTrk[p.trk] {
			continue
		}
		usedDet[p.det] = true
		usedTrk[p.trk] = true
		tr := &t.active[p.trk]
		tr.box = dets[p.det].Box
		tr.lastSeen = v
		dets[p.det].Track = tr.id
	}
	// Unmatched detections open new tracks.
	for di := range dets {
		if usedDet[di] {
			continue
		}
		dets[di].Track = t.nextID
		t.active = append(t.active, trackState{
			id:       t.nextID,
			label:    dets[di].Label,
			box:      dets[di].Box,
			lastSeen: v,
		})
		t.nextID++
	}
	return dets
}

// ActiveTracks returns the number of currently live tracks.
func (t *Tracker) ActiveTracks() int { return len(t.active) }

// TracksOpened returns the total number of track identifiers issued.
func (t *Tracker) TracksOpened() int { return t.nextID - 1 }
