package detect

import (
	"math"
	"testing"
	"time"

	"vaq/internal/annot"
	"vaq/internal/interval"
	"vaq/internal/video"
)

func testScene(seed int64) *Scene {
	meta := video.Meta{Name: "t", Frames: 20000, Geom: video.DefaultGeometry()}
	truth := annot.NewVideo(meta)
	truth.AddObject("car", interval.Set{{Lo: 5000, Hi: 9999}})
	truth.AddAction("run", interval.Set{{Lo: 500, Hi: 999}})
	return &Scene{
		Truth:             truth,
		ObjectDistractors: map[annot.Label]interval.Set{"car": {{Lo: 15000, Hi: 15499}}},
		ActionDistractors: map[annot.Label]interval.Set{"run": {{Lo: 1500, Hi: 1549}}},
		Seed:              seed,
	}
}

func TestBoxIoU(t *testing.T) {
	a := Box{0, 0, 1, 1}
	if got := a.IoU(a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self IoU = %v", got)
	}
	b := Box{0.5, 0, 0.5, 1}
	if got := a.IoU(b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("IoU = %v, want 0.5", got)
	}
	c := Box{2, 2, 1, 1}
	if got := a.IoU(c); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
	if got := (Box{}).IoU(Box{}); got != 0 {
		t.Errorf("degenerate IoU = %v", got)
	}
}

func TestDetectorDeterministic(t *testing.T) {
	sc := testScene(1)
	d1 := NewSimObjectDetector(sc, MaskRCNN, nil)
	d2 := NewSimObjectDetector(sc, MaskRCNN, nil)
	labels := []annot.Label{"car"}
	// Query frames in different orders: same results.
	for _, v := range []video.FrameIdx{7000, 100, 7000, 15100} {
		a := d1.Detect(v, labels)
		b := d2.Detect(v, labels)
		if len(a) != len(b) {
			t.Fatalf("frame %d: lengths %d vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i].Label != b[i].Label || a[i].Score != b[i].Score || a[i].Box != b[i].Box {
				t.Fatalf("frame %d: detection %d differs: %+v vs %+v", v, i, a[i], b[i])
			}
		}
	}
}

func TestDetectorRatesMatchProfile(t *testing.T) {
	sc := testScene(2)
	det := NewSimObjectDetector(sc, MaskRCNN, nil)
	labels := []annot.Label{"car"}
	th := DefaultThresholds()

	// TPR over the presence interval: at least one detection fires at
	// a rate near the per-frame detection probability (≥ TPR thanks to
	// multiple instances).
	hits := 0
	for v := 5000; v < 10000; v++ {
		for _, d := range det.Detect(video.FrameIdx(v), labels) {
			if d.Score >= th.Object {
				hits++
				break
			}
		}
	}
	tpr := float64(hits) / 5000
	if tpr < MaskRCNN.TPR-0.02 {
		t.Errorf("observed TPR %.3f below profile %.3f", tpr, MaskRCNN.TPR)
	}

	// Base FPR where the object is absent and no distractor plays.
	fp := 0
	for v := 0; v < 5000; v++ {
		if len(det.Detect(video.FrameIdx(v), labels)) > 0 {
			fp++
		}
	}
	fpr := float64(fp) / 5000
	if math.Abs(fpr-MaskRCNN.FPRBase) > 0.006 {
		t.Errorf("observed base FPR %.4f vs profile %.4f", fpr, MaskRCNN.FPRBase)
	}

	// Distractor interval: elevated FPR.
	fp = 0
	for v := 15000; v < 15500; v++ {
		if len(det.Detect(video.FrameIdx(v), labels)) > 0 {
			fp++
		}
	}
	distFPR := float64(fp) / 500
	if math.Abs(distFPR-MaskRCNN.FPRDistractor) > 0.08 {
		t.Errorf("observed distractor FPR %.3f vs profile %.3f", distFPR, MaskRCNN.FPRDistractor)
	}
}

func TestIdealDetectorMatchesTruth(t *testing.T) {
	sc := testScene(3)
	det := NewSimObjectDetector(sc, IdealObject, nil)
	rec := NewSimActionRecognizer(sc, IdealAction, nil)
	for v := 0; v < 20000; v += 37 {
		fired := len(det.Detect(video.FrameIdx(v), []annot.Label{"car"})) > 0
		if fired != sc.Truth.ObjectOnFrame("car", video.FrameIdx(v)) {
			t.Fatalf("ideal detector disagrees with truth at frame %d", v)
		}
	}
	for s := 0; s < 2000; s += 7 {
		fired := len(rec.Recognize(video.ShotIdx(s), []annot.Label{"run"})) > 0
		want := sc.Truth.ActionOnShot("run", video.ShotIdx(s))
		if fired != want {
			t.Fatalf("ideal recognizer disagrees with truth at shot %d", s)
		}
	}
}

func TestRecognizerRates(t *testing.T) {
	sc := testScene(4)
	rec := NewSimActionRecognizer(sc, I3D, nil)
	th := DefaultThresholds()
	hits := 0
	for s := 500; s < 1000; s++ {
		for _, a := range rec.Recognize(video.ShotIdx(s), []annot.Label{"run"}) {
			if a.Score >= th.Action {
				hits++
			}
		}
	}
	tpr := float64(hits) / 500
	if math.Abs(tpr-I3D.TPR) > 0.04 {
		t.Errorf("observed action TPR %.3f vs profile %.3f", tpr, I3D.TPR)
	}
}

func TestDriftScalesFPR(t *testing.T) {
	sc := testScene(5)
	sc.Drift = func(frame int) float64 {
		if frame >= 10000 {
			return 10
		}
		return 1
	}
	det := NewSimObjectDetector(sc, MaskRCNN, nil)
	countFP := func(lo, hi int) int {
		n := 0
		for v := lo; v < hi; v++ {
			if len(det.Detect(video.FrameIdx(v), []annot.Label{"car"})) > 0 {
				n++
			}
		}
		return n
	}
	before := countFP(0, 5000)     // object absent, drift 1
	after := countFP(10000, 15000) // object absent, drift 10
	if after < before*4 {          // should be ~10x
		t.Errorf("drift did not raise FPR enough: before=%d after=%d", before, after)
	}
}

func TestLabelAccuracyBoost(t *testing.T) {
	sc := testScene(6)
	sc.LabelAccuracy = map[annot.Label]float64{"car": 5}
	det := NewSimObjectDetector(sc, YOLOv3, nil)
	misses := 0
	for v := 5000; v < 10000; v++ {
		if len(det.Detect(video.FrameIdx(v), []annot.Label{"car"})) == 0 {
			misses++
		}
	}
	// Miss rate should drop to roughly (1-TPR)/5 per instance.
	if rate := float64(misses) / 5000; rate > (1-YOLOv3.TPR)/3 {
		t.Errorf("boosted miss rate %.4f too high", rate)
	}
}

func TestTrajectoryBoxWithinFrame(t *testing.T) {
	for i := 0; i < 3; i++ {
		for off := 0; off < 3000; off += 13 {
			b := trajectoryBox(12345, i, off)
			if b.X < -1e-9 || b.Y < -1e-9 || b.X+b.W > 1+1e-9 || b.Y+b.H > 1+1e-9 {
				t.Fatalf("box out of frame at instance %d offset %d: %+v", i, off, b)
			}
		}
	}
}

func TestReflect01(t *testing.T) {
	for _, p := range []float64{-3.7, -1, 0, 0.3, 1, 2.5, 10} {
		got := reflect01(p, 0.8)
		if got < 0 || got > 0.8 {
			t.Errorf("reflect01(%v) = %v out of [0, 0.8]", p, got)
		}
	}
	if reflect01(0.5, 0) != 0 {
		t.Error("zero limit should clamp to 0")
	}
}

func TestCostMeter(t *testing.T) {
	var m CostMeter
	m.Add(10 * time.Millisecond)
	m.Add(5 * time.Millisecond)
	if m.Total() != 15*time.Millisecond || m.Calls() != 2 {
		t.Fatalf("meter = %v/%d", m.Total(), m.Calls())
	}
	m.Reset()
	if m.Total() != 0 || m.Calls() != 0 {
		t.Fatal("reset failed")
	}
	var nilMeter *CostMeter
	nilMeter.Add(time.Second) // must not panic
	if nilMeter.Total() != 0 || nilMeter.Calls() != 0 {
		t.Fatal("nil meter should be inert")
	}
}

func TestMeterCountsInvocations(t *testing.T) {
	sc := testScene(7)
	var m CostMeter
	det := NewSimObjectDetector(sc, MaskRCNN, &m)
	det.Detect(0, []annot.Label{"car"})
	det.Detect(1, []annot.Label{"car"})
	if m.Calls() != 2 {
		t.Fatalf("calls = %d, want 2", m.Calls())
	}
	if m.Total() != 2*MaskRCNN.Cost {
		t.Fatalf("total = %v", m.Total())
	}
}

func TestScoreDistSample(t *testing.T) {
	d := ScoreDist{Mean: 0.9, Spread: 0.5}
	if got := d.sample(1, 1); got != 1 {
		t.Errorf("clamped high sample = %v", got)
	}
	d = ScoreDist{Mean: 0.1, Spread: 0.5}
	if got := d.sample(0, 0); got != 0 {
		t.Errorf("clamped low sample = %v", got)
	}
	d = ScoreDist{Mean: 0.5, Spread: 0.2}
	if got := d.sample(0.5, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("centered sample = %v", got)
	}
}

func TestNames(t *testing.T) {
	sc := testScene(8)
	if NewSimObjectDetector(sc, MaskRCNN, nil).Name() != "MaskRCNN" {
		t.Error("detector name")
	}
	if NewSimActionRecognizer(sc, I3D, nil).Name() != "I3D" {
		t.Error("recognizer name")
	}
}

// True-positive scores concentrate above the threshold; false-positive
// scores straddle it — the asymmetry the ranking experiments rely on.
func TestScoreDistributions(t *testing.T) {
	sc := testScene(9)
	det := NewSimObjectDetector(sc, MaskRCNN, nil)
	th := DefaultThresholds()
	var tpSum float64
	var tpN int
	for v := 5000; v < 10000; v++ {
		for _, d := range det.Detect(video.FrameIdx(v), []annot.Label{"car"}) {
			tpSum += d.Score
			tpN++
		}
	}
	if tpN == 0 {
		t.Fatal("no true detections")
	}
	tpMean := tpSum / float64(tpN)
	if tpMean < th.Object+0.1 {
		t.Fatalf("TP mean score %v barely above threshold", tpMean)
	}
	var fpSum float64
	var fpN int
	for v := 15000; v < 15500; v++ { // distractor region
		for _, d := range det.Detect(video.FrameIdx(v), []annot.Label{"car"}) {
			fpSum += d.Score
			fpN++
		}
	}
	if fpN == 0 {
		t.Fatal("no false detections in distractor region")
	}
	fpMean := fpSum / float64(fpN)
	if fpMean >= tpMean {
		t.Fatalf("FP mean %v not below TP mean %v", fpMean, tpMean)
	}
}
