package detect

import (
	"context"
	"errors"
	"testing"

	"vaq/internal/annot"
	"vaq/internal/video"
)

// countObj records whether the wrapped model was ever invoked.
type countObj struct{ calls int }

func (c *countObj) Name() string { return "count-obj" }
func (c *countObj) Detect(video.FrameIdx, []annot.Label) []Detection {
	c.calls++
	return []Detection{{Label: "car", Score: 1}}
}

type countAct struct{ calls int }

func (c *countAct) Name() string { return "count-act" }
func (c *countAct) Recognize(video.ShotIdx, []annot.Label) []ActionScore {
	c.calls++
	return []ActionScore{{Label: "running", Score: 1}}
}

func TestInfallibleAdaptersHonourCancelledCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	obj := &countObj{}
	fd := AsFallibleObject(obj)
	if dets, err := fd.DetectCtx(ctx, 0, []annot.Label{"car"}); !errors.Is(err, context.Canceled) || dets != nil {
		t.Fatalf("DetectCtx = %v, %v; want nil, context.Canceled", dets, err)
	}
	if obj.calls != 0 {
		t.Fatalf("detector invoked %d times under a cancelled ctx, want 0", obj.calls)
	}

	act := &countAct{}
	fa := AsFallibleAction(act)
	if scores, err := fa.RecognizeCtx(ctx, 0, []annot.Label{"running"}); !errors.Is(err, context.Canceled) || scores != nil {
		t.Fatalf("RecognizeCtx = %v, %v; want nil, context.Canceled", scores, err)
	}
	if act.calls != 0 {
		t.Fatalf("recognizer invoked %d times under a cancelled ctx, want 0", act.calls)
	}
}

func TestInfallibleAdaptersInvokeWithLiveCtx(t *testing.T) {
	obj := &countObj{}
	fd := AsFallibleObject(obj)
	dets, err := fd.DetectCtx(context.Background(), 0, []annot.Label{"car"})
	if err != nil || len(dets) != 1 || obj.calls != 1 {
		t.Fatalf("DetectCtx = %v, %v (calls %d)", dets, err, obj.calls)
	}
	act := &countAct{}
	fa := AsFallibleAction(act)
	scores, err := fa.RecognizeCtx(context.Background(), 0, []annot.Label{"running"})
	if err != nil || len(scores) != 1 || act.calls != 1 {
		t.Fatalf("RecognizeCtx = %v, %v (calls %d)", scores, err, act.calls)
	}
}

func TestInfallibleAdaptersUnwrap(t *testing.T) {
	obj := &countObj{}
	if u, ok := AsFallibleObject(obj).(interface{ Unwrap() ObjectDetector }); !ok || u.Unwrap() != ObjectDetector(obj) {
		t.Fatal("object adapter does not unwrap to the adapted detector")
	}
	act := &countAct{}
	if u, ok := AsFallibleAction(act).(interface{ Unwrap() ActionRecognizer }); !ok || u.Unwrap() != ActionRecognizer(act) {
		t.Fatal("action adapter does not unwrap to the adapted recognizer")
	}
}

func TestAsFalliblePassesThroughExistingFallible(t *testing.T) {
	obj := &countObj{}
	in := adapterAsDetector{AsFallibleObject(obj)}
	if g := AsFallibleObject(in); g != FallibleObjectDetector(in) {
		// Wrapping a FallibleObjectDetector again must not stack adapters.
		t.Fatal("fallible backend was re-wrapped")
	}
}

// adapterAsDetector gives a fallible backend the plain face too, to
// exercise the pass-through branch.
type adapterAsDetector struct{ f FallibleObjectDetector }

func (a adapterAsDetector) Name() string { return a.f.Name() }
func (a adapterAsDetector) Detect(v video.FrameIdx, labels []annot.Label) []Detection {
	dets, _ := a.f.DetectCtx(context.Background(), v, labels)
	return dets
}
func (a adapterAsDetector) DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]Detection, error) {
	return a.f.DetectCtx(ctx, v, labels)
}
