// Package detect is the detection substrate: the interfaces the query
// algorithms consume (object detection, action recognition, object
// tracking) together with simulated, deterministically seeded
// implementations standing in for the paper's deep models (Mask R-CNN,
// YOLOv3, I3D, CenterTrack) — see DESIGN.md §1.
//
// Each simulated model is calibrated by a Profile: true-positive rate
// when the label is truly present, a base false-positive rate elsewhere,
// an elevated false-positive rate inside distractor intervals
// (confusable content), score distributions, and a per-invocation
// inference cost used to account for the paper's observation that online
// runtime is dominated (>98%) by model inference.
package detect

import (
	"sync/atomic"
	"time"

	"vaq/internal/annot"
	"vaq/internal/video"
)

// Box is a bounding box in normalized image coordinates ([0,1] square).
type Box struct {
	X, Y, W, H float64
}

// IoU returns the intersection-over-union of two boxes.
func (b Box) IoU(o Box) float64 {
	x1 := max(b.X, o.X)
	y1 := max(b.Y, o.Y)
	x2 := min(b.X+b.W, o.X+o.W)
	y2 := min(b.Y+b.H, o.Y+o.H)
	iw, ih := x2-x1, y2-y1
	if iw <= 0 || ih <= 0 {
		return 0
	}
	inter := iw * ih
	union := b.W*b.H + o.W*o.H - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Detection is one object instance detected on a frame.
type Detection struct {
	Label annot.Label
	Score float64
	Box   Box
	// Track is the tracking identifier assigned by a Tracker; zero means
	// not yet tracked (valid IDs start at 1).
	Track int
}

// ActionScore is the score of one action category on a shot.
type ActionScore struct {
	Label annot.Label
	Score float64
}

// ObjectDetector produces per-frame object detections, the role of
// Mask R-CNN / YOLOv3 in the paper.
type ObjectDetector interface {
	// Name identifies the model (used in reports).
	Name() string
	// Detect returns the detections on frame v for the given labels.
	// Passing the query's labels only mirrors the paper's per-predicate
	// model invocation accounting.
	Detect(v video.FrameIdx, labels []annot.Label) []Detection
}

// ActionRecognizer produces per-shot action scores, the role of I3D.
type ActionRecognizer interface {
	Name() string
	// Recognize returns the scores of the given action labels on shot s.
	Recognize(s video.ShotIdx, labels []annot.Label) []ActionScore
}

// BatchObjectDetector is the optional vectorized face of an object
// detector: one call scores many frames for the same label set,
// amortising per-invocation overhead (GPU batch dispatch in the real
// systems the paper cites). DetectBatch(vs, labels)[i] must be
// byte-identical to Detect(vs[i], labels) — batching is a cost
// optimisation, never a semantic one.
type BatchObjectDetector interface {
	ObjectDetector
	DetectBatch(vs []video.FrameIdx, labels []annot.Label) [][]Detection
}

// BatchActionRecognizer is the shot-level counterpart of
// BatchObjectDetector.
type BatchActionRecognizer interface {
	ActionRecognizer
	RecognizeBatch(ss []video.ShotIdx, labels []annot.Label) [][]ActionScore
}

// ScoreDist is a simple symmetric score distribution: Mean ± Spread
// (triangular via the sum of two uniforms).
type ScoreDist struct {
	Mean, Spread float64
}

func (d ScoreDist) sample(u1, u2 float64) float64 {
	v := d.Mean + (u1+u2-1)*d.Spread
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

// Profile calibrates a simulated model.
type Profile struct {
	Name string
	// TPR is the probability that a truly present label yields a
	// detection scoring above threshold on a given occurrence unit.
	TPR float64
	// FPRBase is the false-positive probability per occurrence unit
	// outside distractor intervals.
	FPRBase float64
	// FPRDistractor is the false-positive probability inside distractor
	// intervals (confusable content).
	FPRDistractor float64
	// TPScore and FPScore are the score distributions of true and false
	// detections.
	TPScore, FPScore ScoreDist
	// Cost is the simulated per-invocation inference latency.
	Cost time.Duration
}

// Model profiles mirroring §5.1. The rates are calibration inputs of the
// simulation, chosen so the aggregate F1/FPR landscape matches the
// paper's (EXPERIMENTS.md records the calibration).
var (
	// MaskRCNN stands in for Mask R-CNN (two-stage, more accurate,
	// slower).
	MaskRCNN = Profile{
		Name: "MaskRCNN", TPR: 0.93, FPRBase: 0.030, FPRDistractor: 0.40,
		TPScore: ScoreDist{0.82, 0.15}, FPScore: ScoreDist{0.62, 0.10},
		Cost: 52 * time.Millisecond,
	}
	// YOLOv3 stands in for YOLOv3 (one-stage, faster, noisier).
	YOLOv3 = Profile{
		Name: "YOLOv3", TPR: 0.86, FPRBase: 0.060, FPRDistractor: 0.52,
		TPScore: ScoreDist{0.76, 0.18}, FPScore: ScoreDist{0.64, 0.12},
		Cost: 19 * time.Millisecond,
	}
	// I3D stands in for the I3D action recognizer (per shot). Shot-level
	// action scores are temporally smoother than per-frame object
	// detections, hence the higher TPR and lower noise floor.
	I3D = Profile{
		Name: "I3D", TPR: 0.96, FPRBase: 0.012, FPRDistractor: 0.30,
		TPScore: ScoreDist{0.80, 0.15}, FPScore: ScoreDist{0.63, 0.10},
		Cost: 88 * time.Millisecond,
	}
	// IdealObject and IdealAction match ground truth exactly (§5.1's
	// "Ideal Model").
	IdealObject = Profile{
		Name: "IdealObject", TPR: 1, FPRBase: 0, FPRDistractor: 0,
		TPScore: ScoreDist{0.95, 0}, FPScore: ScoreDist{0, 0},
	}
	IdealAction = Profile{
		Name: "IdealAction", TPR: 1, FPRBase: 0, FPRDistractor: 0,
		TPScore: ScoreDist{0.95, 0}, FPScore: ScoreDist{0, 0},
	}
)

// Thresholds bundles the score thresholds of §2 used to turn raw scores
// into prediction indicators.
type Thresholds struct {
	Object float64 // T_obj
	Action float64 // T_act
}

// DefaultThresholds follows the common practice of the cited detection
// works.
func DefaultThresholds() Thresholds { return Thresholds{Object: 0.5, Action: 0.5} }

// CostMeter accumulates simulated inference time across model
// invocations; safe for concurrent use.
type CostMeter struct {
	nanos atomic.Int64
	calls atomic.Int64
}

// Add records one invocation of the given cost.
func (m *CostMeter) Add(d time.Duration) {
	if m == nil {
		return
	}
	m.nanos.Add(int64(d))
	m.calls.Add(1)
}

// BatchMarginal is the simulated marginal cost of each additional unit
// in a vectorized batch, as a fraction of the per-invocation cost: the
// first unit pays the full dispatch cost, later units ride in the same
// batch (EXPERIMENTS.md records the calibration alongside Profile.Cost).
const BatchMarginal = 0.25

// AddBatch records one vectorized invocation covering n units: one call,
// full cost for the first unit plus BatchMarginal per additional unit.
func (m *CostMeter) AddBatch(d time.Duration, n int) {
	if m == nil || n <= 0 {
		return
	}
	cost := float64(d) * (1 + BatchMarginal*float64(n-1))
	m.nanos.Add(int64(cost))
	m.calls.Add(1)
}

// Total returns the accumulated simulated inference time.
func (m *CostMeter) Total() time.Duration {
	if m == nil {
		return 0
	}
	return time.Duration(m.nanos.Load())
}

// Calls returns the number of recorded invocations.
func (m *CostMeter) Calls() int64 {
	if m == nil {
		return 0
	}
	return m.calls.Load()
}

// Reset zeroes the meter.
func (m *CostMeter) Reset() {
	m.nanos.Store(0)
	m.calls.Store(0)
}
