package detect

import "math"

// The simulated models must be deterministic per (seed, label, unit):
// the same frame queried twice — or queried by the online engine and the
// ingestion phase in different orders — must yield identical detections.
// A counter-free hash-based generator (splitmix64 over a key) provides
// that property; sequential PRNGs would not.

// splitmix64 is the SplitMix64 finalizer, a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashKey mixes a seed, a label and an occurrence unit into a 64-bit
// stream key.
func hashKey(seed int64, label string, unit int64) uint64 {
	h := splitmix64(uint64(seed))
	for _, b := range []byte(label) {
		h = splitmix64(h ^ uint64(b))
	}
	return splitmix64(h ^ uint64(unit))
}

// unitRand yields the n-th uniform variate in [0,1) of the stream
// identified by key.
func unitRand(key uint64, n uint64) float64 {
	v := splitmix64(key + n*0x9e3779b97f4a7c15)
	return float64(v>>11) / float64(1<<53)
}

// gaussPair returns a pair of uniforms for sampling a triangular score;
// kept separate so callers document which draw they consume.
func gaussPair(key uint64, n uint64) (float64, float64) {
	return unitRand(key, n), unitRand(key, n+1)
}

// jitterAround returns a deterministic value in [center−amp, center+amp].
func jitterAround(key uint64, n uint64, center, amp float64) float64 {
	return center + (unitRand(key, n)*2-1)*amp
}

// clamp01 clamps v into [0, 1].
func clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}
