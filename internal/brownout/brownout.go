// Package brownout implements the load-regulated degradation ladder:
// one controller that walks a fixed sequence of named service levels
// (full → no-hedge → cheap-profile → prior-only → shed) driven by the
// p90 queue-wait signal the admission shedder already samples. Each
// step trades a little answer quality for a lot of headroom, and the
// controller's job is to pick the cheapest level that keeps the queue
// bounded — and to do it deterministically, so two runs under the same
// load trace walk the same trajectory.
//
// Transitions are hysteretic: the ladder steps up one level when the
// p90 wait reaches the High threshold, steps down one level when it
// falls to Low (Low < High), and moves at most once per Dwell period.
// The gap between High and Low plus the dwell clamp is what prevents
// flapping across a single boundary; one-step moves are what keep the
// trajectory legible in /varz and the experiment CSVs.
package brownout

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vaq/internal/trace"
)

// Level is one rung of the degradation ladder, ordered from full
// service to full rejection. Higher levels shed more work.
type Level int32

const (
	// LevelFull serves every request with the complete resilience
	// policy: retries, hedging, fallback chains.
	LevelFull Level = iota
	// LevelNoHedge disables hedged duplicate calls — the first lever
	// because hedges multiply backend load exactly when it hurts.
	LevelNoHedge
	// LevelCheap skips the primary backend and serves every unit from
	// the first fallback hop (the cheaper profile), marking it
	// degraded so score discounting stays honest.
	LevelCheap
	// LevelPrior skips models entirely and serves the bgprob prior
	// sampler — the last answer-bearing level.
	LevelPrior
	// LevelShed rejects requests at the door (503 + Retry-After).
	LevelShed
)

// Levels lists the ladder rungs in order, for docs and experiments.
func Levels() []Level {
	return []Level{LevelFull, LevelNoHedge, LevelCheap, LevelPrior, LevelShed}
}

// String returns the level's wire name (stamped on session status,
// explain profiles and experiment CSVs).
func (l Level) String() string {
	switch l {
	case LevelFull:
		return "full"
	case LevelNoHedge:
		return "no-hedge"
	case LevelCheap:
		return "cheap-profile"
	case LevelPrior:
		return "prior-only"
	case LevelShed:
		return "shed"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// Config sets the ladder's thresholds. High > 0 arms the controller;
// the zero Config is invalid (use New's error to catch it).
type Config struct {
	// High is the p90 queue wait at or above which the ladder steps
	// up one level. Must be > 0.
	High time.Duration
	// Low is the p90 at or below which the ladder steps down one
	// level. Defaults to High/2; must stay below High — the gap is
	// the hysteresis band.
	Low time.Duration
	// Dwell is the minimum time between transitions (default 2s).
	// The first transition is free; each one after waits out the
	// dwell from the previous.
	Dwell time.Duration
	// Max caps how far the ladder may climb (default LevelShed).
	// A daemon that must never reject outright sets LevelPrior.
	Max Level
	// Now is the clock; nil means time.Now. Tests and the vaqbench
	// load ramp inject a fake clock for byte-deterministic
	// trajectories.
	Now func() time.Time
}

// DefaultDwell is the transition dwell applied when Config.Dwell <= 0.
const DefaultDwell = 2 * time.Second

// Options wires the controller into its host.
type Options struct {
	// Tracer receives the brownout.* counters; nil is fine.
	Tracer *trace.Tracer
	// OnChange, when set, runs synchronously inside every transition
	// (after the level is published) — the server uses it to flip the
	// resilience mode. It must not call back into the controller.
	OnChange func(from, to Level)
}

// Controller walks the ladder. All methods are safe for concurrent
// use and safe on a nil receiver (a nil controller is pinned at
// LevelFull), so an unarmed daemon pays only nil checks.
type Controller struct {
	cfg      Config
	onChange func(from, to Level)

	level atomic.Int32 // current Level, read lock-free on hot paths

	mu    sync.Mutex // serialises transition decisions
	since time.Time  // last transition (zero until the first)

	transitions, stepUps, stepDowns, sheds atomic.Int64

	// trace counter handles; nil-safe.
	cTransitions, cStepUps, cStepDowns, cSheds *trace.Counter
}

// New builds a controller. It validates the thresholds, applies the
// Low/Dwell/Max defaults, and registers the brownout.* counter family
// on the tracer.
func New(cfg Config, opt Options) (*Controller, error) {
	if cfg.High <= 0 {
		return nil, fmt.Errorf("brownout: High threshold must be > 0 (got %v)", cfg.High)
	}
	if cfg.Low <= 0 {
		cfg.Low = cfg.High / 2
	}
	if cfg.Low >= cfg.High {
		return nil, fmt.Errorf("brownout: Low (%v) must be below High (%v)", cfg.Low, cfg.High)
	}
	if cfg.Dwell <= 0 {
		cfg.Dwell = DefaultDwell
	}
	if cfg.Max <= LevelFull || cfg.Max > LevelShed {
		cfg.Max = LevelShed
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	tr := opt.Tracer
	return &Controller{
		cfg:          cfg,
		onChange:     opt.OnChange,
		cTransitions: tr.Counter("brownout.transitions"),
		cStepUps:     tr.Counter("brownout.step_ups"),
		cStepDowns:   tr.Counter("brownout.step_downs"),
		cSheds:       tr.Counter("brownout.sheds"),
	}, nil
}

// Level returns the current ladder level.
func (c *Controller) Level() Level {
	if c == nil {
		return LevelFull
	}
	return Level(c.level.Load())
}

// Observe feeds one p90 queue-wait reading (ok false means too few
// fresh samples to compute one — treated as a calm signal, so an idle
// daemon steps back down) and returns the level in force afterwards.
// At most one one-step transition happens per Dwell period.
func (c *Controller) Observe(p90 time.Duration, ok bool) Level {
	if c == nil {
		return LevelFull
	}
	c.mu.Lock()
	from := Level(c.level.Load())
	var to Level
	switch {
	case ok && p90 >= c.cfg.High && from < c.cfg.Max:
		to = from + 1
	case (!ok || p90 <= c.cfg.Low) && from > LevelFull:
		to = from - 1
	default:
		c.mu.Unlock()
		return from
	}
	now := c.cfg.Now()
	if !c.since.IsZero() && now.Sub(c.since) < c.cfg.Dwell {
		c.mu.Unlock()
		return from
	}
	c.since = now
	c.level.Store(int32(to))
	c.mu.Unlock()

	c.transitions.Add(1)
	c.cTransitions.Add(1)
	if to > from {
		c.stepUps.Add(1)
		c.cStepUps.Add(1)
	} else {
		c.stepDowns.Add(1)
		c.cStepDowns.Add(1)
	}
	if c.onChange != nil {
		c.onChange(from, to)
	}
	return to
}

// Shed counts one request rejected because the ladder sits at
// LevelShed.
func (c *Controller) Shed() {
	if c == nil {
		return
	}
	c.sheds.Add(1)
	c.cSheds.Add(1)
}

// Stats is the /metricsz snapshot of the ladder.
type Stats struct {
	Level       string  `json:"level"`
	Transitions int64   `json:"transitions"`
	StepUps     int64   `json:"step_ups"`
	StepDowns   int64   `json:"step_downs"`
	Sheds       int64   `json:"sheds"`
	HighMS      float64 `json:"high_ms"`
	LowMS       float64 `json:"low_ms"`
	DwellMS     float64 `json:"dwell_ms"`
}

// Stats snapshots the controller; nil returns the zero value.
func (c *Controller) Stats() *Stats {
	if c == nil {
		return nil
	}
	return &Stats{
		Level:       c.Level().String(),
		Transitions: c.transitions.Load(),
		StepUps:     c.stepUps.Load(),
		StepDowns:   c.stepDowns.Load(),
		Sheds:       c.sheds.Load(),
		HighMS:      float64(c.cfg.High) / float64(time.Millisecond),
		LowMS:       float64(c.cfg.Low) / float64(time.Millisecond),
		DwellMS:     float64(c.cfg.Dwell) / float64(time.Millisecond),
	}
}
