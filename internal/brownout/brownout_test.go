package brownout

import (
	"sync"
	"testing"
	"time"

	"vaq/internal/trace"
)

// fakeClock is an injectable clock the tests advance by hand.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newController(t *testing.T, cfg Config, opt Options) *Controller {
	t.Helper()
	ctl, err := New(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

// TestTrajectoryDeterministic pins the acceptance criterion: the same
// p90 trace through two fresh controllers under the same fake clock
// walks byte-identical level trajectories.
func TestTrajectoryDeterministic(t *testing.T) {
	ramp := []time.Duration{
		10, 20, 100, 120, 150, 200, 250, 300, 300, 250,
		200, 120, 80, 50, 40, 20, 10, 0, 0, 0,
	}
	for i := range ramp {
		ramp[i] *= time.Millisecond
	}
	run := func() []Level {
		clk := &fakeClock{t: time.Unix(0, 0)}
		ctl := newController(t, Config{High: 100 * time.Millisecond, Dwell: 2 * time.Second, Now: clk.now}, Options{})
		out := make([]Level, 0, len(ramp))
		for _, p90 := range ramp {
			clk.advance(time.Second)
			out = append(out, ctl.Observe(p90, true))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: run A at %v, run B at %v — trajectory not deterministic", i, a[i], b[i])
		}
	}
	// The ramp must actually exercise the ladder: it climbs to shed and
	// returns to full.
	sawShed := false
	for _, l := range a {
		if l == LevelShed {
			sawShed = true
		}
	}
	if !sawShed {
		t.Errorf("ramp never reached LevelShed: %v", a)
	}
	if last := a[len(a)-1]; last != LevelFull {
		t.Errorf("ramp ended at %v, want full after the calm tail", last)
	}
}

// TestHysteresisNoFlap holds the p90 inside the hysteresis band
// (between Low and High): once the ladder has stepped up, a signal in
// the band must move it neither up nor down, however long it lasts.
func TestHysteresisNoFlap(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	ctl := newController(t, Config{
		High: 100 * time.Millisecond, Low: 50 * time.Millisecond,
		Dwell: time.Second, Now: clk.now,
	}, Options{})

	clk.advance(time.Second)
	if got := ctl.Observe(100*time.Millisecond, true); got != LevelNoHedge {
		t.Fatalf("level after High reading = %v, want no-hedge", got)
	}
	for i := 0; i < 50; i++ {
		clk.advance(time.Second) // dwell satisfied every step
		if got := ctl.Observe(75*time.Millisecond, true); got != LevelNoHedge {
			t.Fatalf("step %d: in-band p90 moved the ladder to %v", i, got)
		}
	}
	if st := ctl.Stats(); st.Transitions != 1 {
		t.Errorf("transitions = %d, want exactly the initial step up", st.Transitions)
	}
}

// TestDwellEnforcement verifies transitions are rate-limited: after a
// step, further threshold crossings inside the dwell are ignored, and
// the first crossing past it moves one level.
func TestDwellEnforcement(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	ctl := newController(t, Config{
		High: 100 * time.Millisecond, Dwell: 5 * time.Second, Now: clk.now,
	}, Options{})

	clk.advance(time.Second)
	if got := ctl.Observe(time.Second, true); got != LevelNoHedge {
		t.Fatalf("first overload reading = %v, want no-hedge", got)
	}
	for i := 0; i < 4; i++ {
		clk.advance(time.Second) // 1s..4s after the step: inside the dwell
		if got := ctl.Observe(time.Second, true); got != LevelNoHedge {
			t.Fatalf("reading %d inside the dwell stepped to %v", i, got)
		}
	}
	clk.advance(time.Second) // 5s: dwell satisfied
	if got := ctl.Observe(time.Second, true); got != LevelCheap {
		t.Fatalf("reading past the dwell = %v, want cheap-profile", got)
	}
	if st := ctl.Stats(); st.Transitions != 2 || st.StepUps != 2 {
		t.Errorf("stats = %+v, want 2 transitions, both up", st)
	}
}

// TestIdleStepsDown verifies ok=false (not enough fresh samples — an
// idle daemon) reads as calm and walks the ladder back down.
func TestIdleStepsDown(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	ctl := newController(t, Config{High: 100 * time.Millisecond, Dwell: time.Second, Now: clk.now}, Options{})
	for i := 0; i < 3; i++ {
		clk.advance(2 * time.Second)
		ctl.Observe(time.Second, true)
	}
	if got := ctl.Level(); got != LevelPrior {
		t.Fatalf("level after 3 overload readings = %v, want prior-only", got)
	}
	for i := 0; i < 3; i++ {
		clk.advance(2 * time.Second)
		ctl.Observe(0, false)
	}
	if got := ctl.Level(); got != LevelFull {
		t.Errorf("level after 3 idle readings = %v, want full", got)
	}
}

// TestMaxCap pins Config.Max: a ladder capped at prior-only never
// sheds, no matter how hot the signal runs.
func TestMaxCap(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	ctl := newController(t, Config{
		High: 100 * time.Millisecond, Dwell: time.Second, Max: LevelPrior, Now: clk.now,
	}, Options{})
	for i := 0; i < 20; i++ {
		clk.advance(2 * time.Second)
		ctl.Observe(time.Second, true)
	}
	if got := ctl.Level(); got != LevelPrior {
		t.Errorf("capped ladder at %v, want prior-only", got)
	}
}

// TestOnChangeAndCounters verifies the transition callback fires with
// the right edge and the counters (both Stats and the tracer family)
// stay in lockstep.
func TestOnChangeAndCounters(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := trace.New()
	var edges [][2]Level
	ctl := newController(t,
		Config{High: 100 * time.Millisecond, Dwell: time.Second, Now: clk.now},
		Options{Tracer: tr, OnChange: func(from, to Level) { edges = append(edges, [2]Level{from, to}) }})

	clk.advance(2 * time.Second)
	ctl.Observe(time.Second, true) // full -> no-hedge
	clk.advance(2 * time.Second)
	ctl.Observe(0, true) // no-hedge -> full
	ctl.Shed()

	want := [][2]Level{{LevelFull, LevelNoHedge}, {LevelNoHedge, LevelFull}}
	if len(edges) != len(want) || edges[0] != want[0] || edges[1] != want[1] {
		t.Errorf("OnChange edges = %v, want %v", edges, want)
	}
	st := ctl.Stats()
	if st.Transitions != 2 || st.StepUps != 1 || st.StepDowns != 1 || st.Sheds != 1 {
		t.Errorf("stats = %+v, want 2/1/1/1", st)
	}
	counters := tr.Counters()
	for name, wantV := range map[string]int64{
		"brownout.transitions": 2,
		"brownout.step_ups":    1,
		"brownout.step_downs":  1,
		"brownout.sheds":       1,
	} {
		if counters[name] != wantV {
			t.Errorf("counter %s = %d, want %d", name, counters[name], wantV)
		}
	}
}

// TestNilController pins the nil-receiver contract an unarmed server
// relies on.
func TestNilController(t *testing.T) {
	var ctl *Controller
	if got := ctl.Level(); got != LevelFull {
		t.Errorf("nil Level() = %v, want full", got)
	}
	if got := ctl.Observe(time.Hour, true); got != LevelFull {
		t.Errorf("nil Observe() = %v, want full", got)
	}
	ctl.Shed() // must not panic
	if st := ctl.Stats(); st != nil {
		t.Errorf("nil Stats() = %+v, want nil", st)
	}
}

// TestConfigValidation pins the constructor errors vaqd's flag
// validation depends on.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}, Options{}); err == nil {
		t.Error("zero Config accepted, want error")
	}
	if _, err := New(Config{High: time.Second, Low: time.Second}, Options{}); err == nil {
		t.Error("Low == High accepted, want error")
	}
	if _, err := New(Config{High: time.Second, Low: 2 * time.Second}, Options{}); err == nil {
		t.Error("Low > High accepted, want error")
	}
	ctl, err := New(Config{High: time.Second}, Options{})
	if err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	if ctl.cfg.Low != 500*time.Millisecond || ctl.cfg.Dwell != DefaultDwell || ctl.cfg.Max != LevelShed {
		t.Errorf("defaults = low %v, dwell %v, max %v", ctl.cfg.Low, ctl.cfg.Dwell, ctl.cfg.Max)
	}
}

// TestLevelStrings pins the wire names the API surfaces depend on.
func TestLevelStrings(t *testing.T) {
	want := []string{"full", "no-hedge", "cheap-profile", "prior-only", "shed"}
	for i, l := range Levels() {
		if l.String() != want[i] {
			t.Errorf("level %d = %q, want %q", i, l.String(), want[i])
		}
	}
	if got := Level(99).String(); got != "level(99)" {
		t.Errorf("out-of-range level = %q", got)
	}
}

// TestConcurrent hammers Observe/Level/Shed/Stats from many goroutines
// under -race; correctness here is the absence of data races plus the
// level staying inside the ladder.
func TestConcurrent(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	ctl := newController(t, Config{High: 100 * time.Millisecond, Dwell: time.Millisecond, Now: clk.now}, Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				clk.advance(time.Millisecond)
				if g%2 == 0 {
					ctl.Observe(time.Duration(i%200)*time.Millisecond, true)
				} else {
					_ = ctl.Level()
					_ = ctl.Stats()
					ctl.Shed()
				}
			}
		}(g)
	}
	wg.Wait()
	if l := ctl.Level(); l < LevelFull || l > LevelShed {
		t.Errorf("level %v outside the ladder", l)
	}
}
