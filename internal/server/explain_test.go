package server

import (
	"net/http"
	"testing"

	"vaq/internal/explain"
)

// TestExplainTopK: explain=true on /v1/topk returns the profile inline,
// and the /explainz ring retains it (newest first) whether or not the
// request asked — the flag only gates the inline copy.
func TestExplainTopK(t *testing.T) {
	_, ts := startServer(t, Config{Repo: buildRepo(t)})

	var resp TopKResponse
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
		TopKRequest{Video: "q2", Action: "blowing_leaves", Objects: []string{"car"}, K: 3, Explain: true}, &resp)
	if code != http.StatusOK {
		t.Fatalf("topk status %d", code)
	}
	p := resp.Explain
	if p == nil {
		t.Fatal("explain=true returned no profile")
	}
	if p.Kind != "topk" || p.ID == "" || p.Workload != "q2" {
		t.Fatalf("profile header %+v", p)
	}
	if p.TopK == nil || p.TopK.K != 3 {
		t.Fatalf("topk section %+v", p.TopK)
	}
	if p.TopK.Candidates != resp.Candidates {
		t.Errorf("profile candidates %d, response %d", p.TopK.Candidates, resp.Candidates)
	}
	if p.TopK.RandomAccesses != resp.RandomAccesses {
		t.Errorf("profile random accesses %d, response %d", p.TopK.RandomAccesses, resp.RandomAccesses)
	}

	// A second query without the flag: no inline profile, still ringed.
	var plain TopKResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
		TopKRequest{Video: "q2", Action: "blowing_leaves", K: 2}, &plain); code != http.StatusOK {
		t.Fatalf("plain topk status %d", code)
	}
	if plain.Explain != nil {
		t.Error("profile inlined without explain=true")
	}

	var ring ExplainzResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/explainz", nil, &ring); code != http.StatusOK {
		t.Fatalf("explainz status %d", code)
	}
	if ring.Total != 2 || ring.Retained != 2 {
		t.Fatalf("ring total %d retained %d, want 2/2", ring.Total, ring.Retained)
	}
	// Newest first: the flagless query rings last but lists first.
	if ring.Profiles[0].ID == p.ID || ring.Profiles[1].ID != p.ID {
		t.Fatalf("ring order %q, %q; first query was %q",
			ring.Profiles[0].ID, ring.Profiles[1].ID, p.ID)
	}
}

// TestExplainDisabled: a negative ring turns collection off entirely —
// explain=true gets no profile and /explainz answers 404.
func TestExplainDisabled(t *testing.T) {
	_, ts := startServer(t, Config{Repo: buildRepo(t), ExplainRing: -1})

	var resp TopKResponse
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
		TopKRequest{Video: "q2", Action: "blowing_leaves", K: 3, Explain: true}, &resp)
	if code != http.StatusOK {
		t.Fatalf("topk status %d", code)
	}
	if resp.Explain != nil {
		t.Error("disabled ring still produced a profile")
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/explainz", nil, nil); code != http.StatusNotFound {
		t.Fatalf("explainz status %d, want 404", code)
	}
}

// TestExplainSessionResults: ?explain=true on session results carries
// the online profile, whose clip attribution matches the clips
// processed; the finished session's profile lands in the ring.
func TestExplainSessionResults(t *testing.T) {
	_, ts := startServer(t, Config{})
	var created SessionInfo
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateSessionRequest{Workload: "q2", Scale: 0.02}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	res := pollDone(t, ts.URL, created.ID)
	if res.Explain != nil {
		t.Error("profile inlined without ?explain=true")
	}

	var withP ResultsResponse
	if code := doJSON(t, http.MethodGet,
		ts.URL+"/v1/sessions/"+created.ID+"/results?explain=true", nil, &withP); code != http.StatusOK {
		t.Fatalf("results status %d", code)
	}
	p := withP.Explain
	if p == nil {
		t.Fatal("?explain=true returned no profile")
	}
	if p.Kind != "online" || p.ID != created.ID || p.Workload != "q2" {
		t.Fatalf("profile header %+v", p)
	}
	var clips int64
	for _, n := range p.Clips {
		clips += n
	}
	if clips != int64(withP.ClipsProcessed) {
		t.Errorf("attributed clips %d, processed %d", clips, withP.ClipsProcessed)
	}
	if p.EngineInvocations() == 0 {
		t.Error("no invocations attributed")
	}

	var ring ExplainzResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/explainz", nil, &ring); code != http.StatusOK {
		t.Fatalf("explainz status %d", code)
	}
	found := false
	for _, rp := range ring.Profiles {
		if rp.ID == created.ID && rp.Kind == "online" {
			found = true
		}
	}
	if !found {
		t.Fatalf("finished session %q not in the ring (%d profiles)", created.ID, ring.Retained)
	}
}

// TestExplainRingEviction: the ring keeps the newest N profiles while
// Total keeps counting.
func TestExplainRingEviction(t *testing.T) {
	srv, ts := startServer(t, Config{Repo: buildRepo(t), ExplainRing: 2})
	for i := 0; i < 3; i++ {
		var resp TopKResponse
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
			TopKRequest{Video: "q2", Action: "blowing_leaves", K: 1}, &resp); code != http.StatusOK {
			t.Fatalf("topk %d status %d", i, code)
		}
	}
	var ring ExplainzResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/explainz", nil, &ring); code != http.StatusOK {
		t.Fatalf("explainz status %d", code)
	}
	if ring.Total != 3 || ring.Retained != 2 {
		t.Fatalf("ring total %d retained %d, want 3/2", ring.Total, ring.Retained)
	}
	if ring.Profiles[0].ID != "q3" || ring.Profiles[1].ID != "q2" {
		t.Fatalf("ring kept %q, %q; want q3, q2", ring.Profiles[0].ID, ring.Profiles[1].ID)
	}
	_ = srv
}

// TestHealthzHistory: with the sampling cadence collapsed, every
// request snapshots, /healthz reports windowed rates against the
// oldest in-window sample, and ?history=true lists the samples newest
// first with the counter snapshot attached.
func TestHealthzHistory(t *testing.T) {
	srv, ts := startServer(t, Config{Repo: buildRepo(t)})
	srv.hist.every = 0 // sample on every instrumented request

	for i := 0; i < 3; i++ {
		var resp TopKResponse
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
			TopKRequest{Video: "q2", Action: "blowing_leaves", K: 1}, &resp); code != http.StatusOK {
			t.Fatalf("topk %d status %d", i, code)
		}
	}

	var h HealthzResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz?history=true", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if h.Status != "ok" {
		t.Fatalf("status %q", h.Status)
	}
	if h.Snapshots < 3 || len(h.History) != h.Snapshots {
		t.Fatalf("snapshots %d, history %d", h.Snapshots, len(h.History))
	}
	// Newest first, monotone timestamps and request totals.
	for i := 1; i < len(h.History); i++ {
		if h.History[i].UnixMS > h.History[i-1].UnixMS {
			t.Fatalf("history not newest-first at %d", i)
		}
		if h.History[i].Requests > h.History[i-1].Requests {
			t.Fatalf("request totals not monotone at %d", i)
		}
	}
	// Each sample carries the counter catalogue of that moment.
	if h.History[0].Counters["rvaq.queries"] < 1 {
		t.Fatalf("newest sample counters %v", h.History[0].Counters)
	}
	if h.Errors != 0 || h.ErrorRate != 0 {
		t.Fatalf("clean run reported errors: %+v", h)
	}
	// Windowed requests are a delta against an in-window baseline, so
	// they cannot exceed the lifetime total.
	total := h.History[0].Requests
	if h.Requests > total {
		t.Fatalf("windowed requests %d exceed total %d", h.Requests, total)
	}

	// A plain probe without history still reports the sample count.
	var plain HealthzResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &plain); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if plain.History != nil || plain.Snapshots == 0 {
		t.Fatalf("plain probe: %+v", plain)
	}
}

// TestExplainProfileJSONRoundTrip guards the wire shape: a ringed
// profile survives the JSON round trip the endpoints perform.
func TestExplainProfileJSONRoundTrip(t *testing.T) {
	c := explain.NewCollector("topk")
	c.SetID("q9")
	c.TopKConfigure(4)
	c.TopKIteration(0, 1, 0.9, 0.1)
	c.TopKFinish(7, 1, 3, 12)
	before := c.Profile()

	var ring ExplainzResponse
	srv, ts := startServer(t, Config{})
	srv.ring.Add(before)
	if code := doJSON(t, http.MethodGet, ts.URL+"/explainz", nil, &ring); code != http.StatusOK {
		t.Fatalf("explainz status %d", code)
	}
	if ring.Retained != 1 {
		t.Fatalf("retained %d", ring.Retained)
	}
	got := ring.Profiles[0]
	if got.ID != "q9" || got.TopK == nil || got.TopK.K != 4 ||
		got.TopK.Candidates != 7 || len(got.TopK.Trajectory) != 1 {
		t.Fatalf("round-tripped profile %+v", got)
	}
}
