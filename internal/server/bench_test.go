package server

import (
	"context"
	"testing"

	"vaq"
	"vaq/internal/detect"
	"vaq/internal/synth"
)

// benchStream builds a q2 stream whose engine keeps consuming clips
// past the generated world (the detectors extrapolate background), so
// b.N is unbounded.
func benchStream(b *testing.B) *vaq.Stream {
	b.Helper()
	qs, err := synth.YouTubeScaled("q2", vaq.DefaultGeometry(), 0.05)
	if err != nil {
		b.Fatal(err)
	}
	scene := qs.World.Scene()
	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	stream, err := vaq.NewStreamQuery(qs.Query, det, rec, qs.World.Truth.Meta.Geom,
		vaq.StreamConfig{Dynamic: true})
	if err != nil {
		b.Fatal(err)
	}
	return stream
}

// BenchmarkDirectProcessClip is the baseline: raw engine stepping with
// no serving layer.
func BenchmarkDirectProcessClip(b *testing.B) {
	stream := benchStream(b)
	b.ResetTimer()
	for c := 0; c < b.N; c++ {
		if _, err := stream.ProcessClip(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionStep drives the same engine through the session hot
// path: ProcessClip plus the snapshot publication (mutex, sequence
// materialization, critical-value copy, long-poll broadcast). The delta
// to BenchmarkDirectProcessClip is the per-clip serving overhead.
func BenchmarkSessionStep(b *testing.B) {
	stream := benchStream(b)
	_, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess := newSession("bench", CreateSessionRequest{}, stream, b.N, cancel)
	b.ResetTimer()
	for c := 0; c < b.N; c++ {
		if err := sess.step(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionStepThroughPool adds the shared worker-pool
// round-trip, the full per-clip path of Session.run.
func BenchmarkSessionStepThroughPool(b *testing.B) {
	stream := benchStream(b)
	_, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess := newSession("bench", CreateSessionRequest{}, stream, b.N, cancel)
	workers := make(chan struct{}, 4)
	b.ResetTimer()
	for c := 0; c < b.N; c++ {
		workers <- struct{}{}
		err := sess.step(c)
		<-workers
		if err != nil {
			b.Fatal(err)
		}
	}
}
