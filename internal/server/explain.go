package server

import (
	"net/http"

	"vaq/internal/explain"
	"vaq/internal/infer"
	"vaq/internal/resilience"
)

// EXPLAIN glue: the engines feed their collectors directly (svaq clip
// and predicate hooks, rvaq top-k hooks); the shared-inference and
// resilience layers expose only cumulative Stats, so their per-query
// attribution is the delta between a snapshot at query start and one
// at finish. Under shared inference several sessions drive one backend
// stack, so a session's delta includes rounds its co-tenants issued in
// the same span — the per-domain totals stay exact, the per-session
// split is an upper bound (noted in docs/EXPLAIN.md).

// inferDelta converts a start/end pair of infer.Stats snapshots into
// the query's InferProfile.
func inferDelta(end, start infer.Stats) explain.InferProfile {
	return explain.InferProfile{
		CacheHits:    end.CacheHits - start.CacheHits,
		CacheMisses:  end.CacheMisses - start.CacheMisses,
		Leaders:      end.Leaders - start.Leaders,
		Coalesced:    end.Coalesced - start.Coalesced,
		Batches:      end.Batches - start.Batches,
		BatchedUnits: end.BatchedUnits - start.BatchedUnits,
	}
}

// resilienceDelta converts a start/end pair of resilience.Stats
// snapshots into the query's ResilienceProfile.
func resilienceDelta(end, start resilience.Stats) explain.ResilienceProfile {
	d := explain.ResilienceProfile{
		Calls:            end.Calls - start.Calls,
		Errors:           end.Errors - start.Errors,
		Retries:          end.Retries - start.Retries,
		Hedges:           end.Hedges - start.Hedges,
		HedgeWins:        end.HedgeWins - start.HedgeWins,
		DeadlineExceeded: end.DeadlineExceeded - start.DeadlineExceeded,
		BreakerRejects:   end.BreakerRejects - start.BreakerRejects,
		LabelRejects:     end.LabelRejects - start.LabelRejects,
		Fallbacks:        end.Fallbacks - start.Fallbacks,
		DegradedUnits:    end.DegradedUnits - start.DegradedUnits,
	}
	for i, n := range end.FallbackHops {
		var base int64
		if i < len(start.FallbackHops) {
			base = start.FallbackHops[i]
		}
		d.FallbackHops = append(d.FallbackHops, n-base)
	}
	return d
}

// handleExplainz serves the ring of recent query profiles, newest
// first.
func (s *Server) handleExplainz(w http.ResponseWriter, r *http.Request) {
	if s.ring == nil {
		writeErr(w, http.StatusNotFound, "explain_disabled",
			"EXPLAIN collection is disabled (-explain-ring negative)", nil)
		return
	}
	profiles := s.ring.Snapshot()
	writeJSON(w, http.StatusOK, ExplainzResponse{
		Total:    s.ring.Total(),
		Retained: len(profiles),
		Profiles: profiles,
	})
}
