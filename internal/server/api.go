// Package server is the query-serving daemon behind cmd/vaqd: a
// stdlib-only HTTP layer hosting many concurrent online query sessions
// over the SVAQ/SVAQD engines plus offline RVAQ top-k requests against
// repositories opened at startup.
//
// An online session registers a VQL query against a synthetic workload
// (or, via the facade, any stream) and a per-session goroutine drives
// the engine clip by clip through a bounded shared worker pool. Clients
// poll results (optionally long-polling), read status, and cancel. The
// serving vocabulary follows the standing-query deployment of the
// related video-monitoring work (Koudas et al.): queries are resident,
// results accrete, the daemon drains gracefully on shutdown.
//
//	POST   /v1/sessions               create a session
//	GET    /v1/sessions               list sessions
//	GET    /v1/sessions/{id}          status (clips, invocations, critical values)
//	GET    /v1/sessions/{id}/results  result sequences so far (?wait= long-poll)
//	DELETE /v1/sessions/{id}          cancel and remove
//	POST   /v1/topk                   offline RVAQ top-k against a repository
//	POST   /v1/shard/bound            cross-shard B_lo^K bound exchange (shard tier)
//	GET    /healthz                   liveness + rolling error-rate / queue-wait windows
//	GET    /metricsz                  per-endpoint counts and latency quantiles
//	GET    /tracez                    recent spans as JSON trees, plus counters
//	GET    /varz                      Prometheus-style counter/stage exposition
//	GET    /explainz                  EXPLAIN profiles of the last N queries
//
// The JSON wire shapes live in the leaf package internal/api, shared
// with the scatter-gather coordinator tier (package shard) and the
// CLIs' -json modes; the aliases below keep this package's historical
// vocabulary.
package server

import (
	"vaq"
	"vaq/internal/api"
)

// Wire-shape aliases; see package internal/api for the definitions.
type (
	Range                 = api.Range
	CreateSessionRequest  = api.CreateSessionRequest
	CriticalValues        = api.CriticalValues
	SessionInfo           = api.SessionInfo
	SessionList           = api.SessionList
	ResultsResponse       = api.ResultsResponse
	TopKRequest           = api.TopKRequest
	TopKEntry             = api.TopKEntry
	TopKResponse          = api.TopKResponse
	BoundExchangeRequest  = api.BoundExchangeRequest
	BoundExchangeResponse = api.BoundExchangeResponse
	ExplainzResponse      = api.ExplainzResponse
	HealthzSnapshot       = api.HealthzSnapshot
	HealthzResponse       = api.HealthzResponse
	TracezResponse        = api.TracezResponse
	ErrorBody             = api.ErrorBody
	ErrorResponse         = api.ErrorResponse
)

// Ranges converts engine result sequences to the wire shape.
func Ranges(s vaq.Sequences) []Range { return api.Ranges(s) }
