package server

import (
	"net/http"
	"reflect"
	"testing"

	"vaq/internal/fault"
	"vaq/internal/resilience"
)

// TestHedgedSessionsDeterministic is the metamorphic determinism test
// for resilience v2: with hedging armed over a stacked error+latency
// schedule — and every remaining decision a pure hash of its
// coordinates (no deadline, no breaker) — concurrent sessions over the
// same workload must produce byte-identical sequences, degraded
// totals and fallback hop counts. Hedge replicas re-draw only their
// latency; which racer wins moves wall-clock time, never bytes. Hedge
// *counters* are timing-dependent by design and deliberately excluded
// from the comparison. Run under -race.
func TestHedgedSessionsDeterministic(t *testing.T) {
	// 4% latency episodes keep the observed p95 in the fast mass, so
	// hedges actually fire once armed; 300µs is far above the 100µs
	// hedge floor.
	sched, err := fault.Parse(42, "error:0-60:0.9,error:0-:0.05,latency:0-:0.04:300us")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, Config{
		Workers:       4,
		FaultSchedule: sched,
		Resilience:    &resilience.Policy{MaxRetries: 2, Seed: 7, HedgeQuantile: 0.95},
	})

	const nSessions = 3
	ids := make([]string, nSessions)
	for i := range ids {
		var info SessionInfo
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
			CreateSessionRequest{Workload: "q2", Scale: 0.1}, &info)
		if code != http.StatusCreated {
			t.Fatalf("create session %d: status %d", i, code)
		}
		ids[i] = info.ID
	}
	results := make([]ResultsResponse, nSessions)
	infos := make([]SessionInfo, nSessions)
	for i, id := range ids {
		results[i] = pollDone(t, ts.URL, id)
		if results[i].State != StateDone {
			t.Fatalf("session %s ended %q, want %q", id, results[i].State, StateDone)
		}
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+id, nil, &infos[i]); code != http.StatusOK {
			t.Fatalf("status %s: %d", id, code)
		}
	}
	for i := 1; i < nSessions; i++ {
		if !reflect.DeepEqual(results[i].Sequences, results[0].Sequences) {
			t.Errorf("session %s sequences diverge from %s under identical faults:\n%v\nvs\n%v",
				ids[i], ids[0], results[i].Sequences, results[0].Sequences)
		}
		if results[i].Degraded != results[0].Degraded ||
			results[i].DegradedUnits != results[0].DegradedUnits {
			t.Errorf("session %s degradation (%v, %d units) diverges from %s (%v, %d units)",
				ids[i], results[i].Degraded, results[i].DegradedUnits,
				ids[0], results[0].Degraded, results[0].DegradedUnits)
		}
		if !reflect.DeepEqual(infos[i].FallbackHops, infos[0].FallbackHops) {
			t.Errorf("session %s fallback hops %v diverge from %s %v",
				ids[i], infos[i].FallbackHops, ids[0], infos[0].FallbackHops)
		}
	}
	if !results[0].Degraded || results[0].DegradedUnits == 0 {
		t.Errorf("no degradation under a 90%% error burst: %+v", results[0])
	}
	// The metamorphic claim is only interesting if hedges actually ran.
	var hedges int64
	for _, info := range infos {
		hedges += info.Hedges
	}
	if hedges == 0 {
		t.Error("no hedge fired across any session; the latency episodes should outlive the hedge delay")
	}
}

// TestMetricszResilienceGolden pins the aggregation path: the
// /metricsz resilience block must equal the field-wise sum of every
// session's own stats — Stats.Add is the single roll-up both views
// share, so a drift here means a counter was double-counted or lost.
func TestMetricszResilienceGolden(t *testing.T) {
	sched, err := fault.Parse(42, "error:0-80:0.9,error:0-:0.05")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, Config{
		Workers:       4,
		FaultSchedule: sched,
		Resilience:    chaosPolicy(),
	})

	const nSessions = 3
	ids := make([]string, nSessions)
	for i := range ids {
		var info SessionInfo
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
			CreateSessionRequest{Workload: "q2", Scale: 0.1}, &info)
		if code != http.StatusCreated {
			t.Fatalf("create session %d: status %d", i, code)
		}
		ids[i] = info.ID
	}
	var want resilience.Stats
	for _, id := range ids {
		if got := pollDone(t, ts.URL, id); got.State != StateDone {
			t.Fatalf("session %s ended %q, want %q", id, got.State, StateDone)
		}
	}
	// Sessions are terminal: their stats are static now, so the sum is
	// exact, not racing the engines.
	for _, id := range ids {
		var info SessionInfo
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+id, nil, &info); code != http.StatusOK {
			t.Fatalf("status %s: %d", id, code)
		}
		want.Add(resilience.Stats{
			Retries:       info.Retries,
			Fallbacks:     info.Fallbacks,
			DegradedUnits: info.DegradedUnits,
			Hedges:        info.Hedges,
			FallbackHops:  info.FallbackHops,
		})
	}
	if want.Retries == 0 || want.Fallbacks == 0 {
		t.Fatalf("sessions saw no resilience activity to aggregate: %+v", want)
	}

	var mz MetricsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil, &mz); code != http.StatusOK {
		t.Fatalf("metricsz: status %d", code)
	}
	if mz.Resilience == nil {
		t.Fatal("metricsz has no resilience aggregate")
	}
	got := *mz.Resilience
	if got.Retries != want.Retries {
		t.Errorf("aggregate Retries = %d, sessions sum to %d", got.Retries, want.Retries)
	}
	if got.Fallbacks != want.Fallbacks {
		t.Errorf("aggregate Fallbacks = %d, sessions sum to %d", got.Fallbacks, want.Fallbacks)
	}
	if got.DegradedUnits != want.DegradedUnits {
		t.Errorf("aggregate DegradedUnits = %d, sessions sum to %d", got.DegradedUnits, want.DegradedUnits)
	}
	if got.Hedges != want.Hedges {
		t.Errorf("aggregate Hedges = %d, sessions sum to %d", got.Hedges, want.Hedges)
	}
	if !reflect.DeepEqual(got.FallbackHops, want.FallbackHops) {
		t.Errorf("aggregate FallbackHops = %v, sessions sum to %v", got.FallbackHops, want.FallbackHops)
	}
}
