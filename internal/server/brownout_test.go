package server

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"vaq/internal/brownout"
	"vaq/internal/resilience"
)

// TestBrownoutLadderEndToEnd walks a brownout-armed server up the
// ladder with a hot queue-wait signal and back down as the load
// subsides, checking every surface the level reaches: admission (503 +
// Retry-After at shed), /varz, /metricsz, /healthz, session status and
// the EXPLAIN profile.
func TestBrownoutLadderEndToEnd(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(3000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	srv, ts := startServer(t, Config{
		Repo: buildRepo(t),
		Brownout: brownout.Config{
			High:  100 * time.Millisecond,
			Dwell: time.Second,
			Now:   clock,
		},
	})
	// The shed window shares the fake clock so samples age with it.
	srv.shed.now = clock

	// A hot queue: every pool acquisition waited 1s, far past High.
	for i := 0; i < 10; i++ {
		srv.shed.observe(time.Second)
	}
	// One dwell-spaced evaluation per rung walks full -> shed.
	want := []brownout.Level{
		brownout.LevelNoHedge, brownout.LevelCheap, brownout.LevelPrior, brownout.LevelShed,
	}
	for _, wl := range want {
		advance(2 * time.Second)
		srv.evalBrownout()
		if got := srv.bo.Level(); got != wl {
			t.Fatalf("level after evaluation = %v, want %v", got, wl)
		}
	}
	if got := srv.mode.Get(); got != resilience.ModePrior {
		t.Fatalf("resilience mode at shed = %v, want ModePrior", got)
	}

	// Admission rejects both session-create and top-k with Retry-After.
	for _, path := range []string{"/v1/sessions", "/v1/topk"} {
		body := any(CreateSessionRequest{Workload: "q2"})
		if path == "/v1/topk" {
			body = TopKRequest{Action: "blowing_leaves", K: 3}
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, jsonBody(t, body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("POST %s at level shed: status %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("POST %s 503 carries no Retry-After", path)
		}
	}

	// The level is a gauge on /varz ...
	resp, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	varz, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(varz), "vaq_brownout_level 4") {
		t.Errorf("/varz missing the shed-level gauge:\n%s", varz)
	}

	// ... a stats block on /metricsz ...
	var mz MetricsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil, &mz); code != http.StatusOK {
		t.Fatalf("metricsz: status %d", code)
	}
	if mz.Brownout == nil {
		t.Fatal("metricsz carries no brownout block on an armed server")
	}
	if mz.Brownout.Level != "shed" || mz.Brownout.StepUps < 4 {
		t.Errorf("metricsz brownout = %+v, want level shed with >= 4 step-ups", mz.Brownout)
	}

	// ... and an overload verdict on /healthz.
	var hz HealthzResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &hz); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if hz.BrownoutLevel != "shed" || !hz.Overloaded {
		t.Errorf("healthz = level %q overloaded %v, want shed/true", hz.BrownoutLevel, hz.Overloaded)
	}

	// Load subsides: the samples age out and calm readings walk the
	// ladder back to full.
	advance(time.Minute)
	for i := 0; i < 4; i++ {
		advance(2 * time.Second)
		srv.evalBrownout()
	}
	if got := srv.bo.Level(); got != brownout.LevelFull {
		t.Fatalf("level after recovery = %v, want full", got)
	}
	if got := srv.mode.Get(); got != resilience.ModeFull {
		t.Fatalf("resilience mode after recovery = %v, want ModeFull", got)
	}

	// Admission reopens; the session reports the active level.
	var info SessionInfo
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateSessionRequest{Workload: "q2", Scale: 0.1}, &info); code != http.StatusCreated {
		t.Fatalf("create after recovery: status %d, want 201", code)
	}
	if info.BrownoutLevel != "full" {
		t.Errorf("session brownout_level = %q, want full", info.BrownoutLevel)
	}

	// A top-k EXPLAIN profile is stamped with the level in force.
	var tk TopKResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
		TopKRequest{Action: "blowing_leaves", K: 3, Video: "q2", Explain: true}, &tk); code != http.StatusOK {
		t.Fatalf("topk after recovery: status %d", code)
	}
	if tk.Explain == nil || tk.Explain.Brownout != "full" {
		t.Errorf("topk explain brownout = %+v, want level full stamped", tk.Explain)
	}
}

// TestTopKHopDiscountValidation pins the /v1/topk request validation
// around the per-hop discount table.
func TestTopKHopDiscountValidation(t *testing.T) {
	_, ts := startServer(t, Config{Repo: buildRepo(t)})

	cases := []struct {
		name string
		req  TopKRequest
	}{
		{"entry above one", TopKRequest{Action: "blowing_leaves", HopDiscounts: []float64{0.2, 1.5}}},
		{"negative entry", TopKRequest{Action: "blowing_leaves", HopDiscounts: []float64{-0.1}}},
		{"both discounts set", TopKRequest{Action: "blowing_leaves", DegradedDiscount: 0.5, HopDiscounts: []float64{0.2}}},
	}
	for _, tc := range cases {
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk", tc.req, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}

	// A valid table is accepted and answers normally.
	var tk TopKResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
		TopKRequest{Action: "blowing_leaves", K: 3, Video: "q2", HopDiscounts: []float64{0.2, 0.6}}, &tk); code != http.StatusOK {
		t.Errorf("valid hop_discounts rejected: status %d", code)
	}
}
