package server

import (
	"sync"
	"time"
)

// Metrics history: a bounded ring of periodic /varz-style snapshots.
// The daemon runs no background goroutine for it — samples are taken
// opportunistically, time-gated, from the instrumented request path
// (and from /healthz itself), so an idle daemon spends nothing and a
// busy one samples at the configured cadence. /healthz computes its
// rolling error-rate window from the deltas between the newest state
// and the oldest retained sample inside the window.

const (
	// healthSnapshotEvery is the minimum spacing between history
	// samples.
	healthSnapshotEvery = 10 * time.Second
	// healthHistoryCap bounds the ring (about 10 minutes of history at
	// the default cadence).
	healthHistoryCap = 64
	// healthWindow is the rolling span the /healthz rates cover.
	healthWindow = 60 * time.Second
)

// healthHistory is the snapshot ring. now is injectable for tests.
type healthHistory struct {
	every time.Duration
	span  time.Duration
	now   func() time.Time

	mu     sync.Mutex
	last   time.Time
	snaps  []HealthzSnapshot // ring, oldest overwritten
	next   int
	filled bool
}

func newHealthHistory() *healthHistory {
	return &healthHistory{
		every: healthSnapshotEvery,
		span:  healthWindow,
		now:   time.Now,
		snaps: make([]HealthzSnapshot, 0, healthHistoryCap),
	}
}

// maybeSnapshot records one sample when the cadence allows it. collect
// runs only when a sample is due, outside any hot path.
func (h *healthHistory) maybeSnapshot(collect func() HealthzSnapshot) {
	if h == nil {
		return
	}
	h.mu.Lock()
	now := h.now()
	if !h.last.IsZero() && now.Sub(h.last) < h.every {
		h.mu.Unlock()
		return
	}
	h.last = now
	h.mu.Unlock()
	// Collect outside the lock: the counter snapshot takes its own
	// locks and a concurrent sampler racing the cadence gate at worst
	// adds one extra sample.
	s := collect()
	s.UnixMS = now.UnixMilli()
	h.mu.Lock()
	if len(h.snaps) < cap(h.snaps) {
		h.snaps = append(h.snaps, s)
	} else {
		h.snaps[h.next] = s
		h.filled = true
	}
	h.next++
	if h.next == cap(h.snaps) {
		h.next = 0
	}
	h.mu.Unlock()
}

// snapshots returns the retained samples, newest first.
func (h *healthHistory) snapshots() []HealthzSnapshot {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.snaps)
	out := make([]HealthzSnapshot, 0, n)
	start := h.next - 1
	if !h.filled {
		start = len(h.snaps) - 1
	}
	for i := 0; i < n; i++ {
		j := start - i
		if j < 0 {
			j += n
		}
		out = append(out, h.snaps[j])
	}
	return out
}

// windowBase returns the oldest retained sample still inside the
// rolling window — the baseline /healthz subtracts current totals from.
func (h *healthHistory) windowBase() (HealthzSnapshot, bool) {
	if h == nil {
		return HealthzSnapshot{}, false
	}
	cutoff := h.now().Add(-h.span).UnixMilli()
	var base HealthzSnapshot
	found := false
	h.mu.Lock()
	for _, s := range h.snaps {
		if s.UnixMS < cutoff {
			continue
		}
		if !found || s.UnixMS < base.UnixMS {
			base, found = s, true
		}
	}
	h.mu.Unlock()
	return base, found
}
