package server

import (
	"context"
	"net/http"
	"testing"
	"time"

	"vaq"
	"vaq/internal/detect"
	"vaq/internal/synth"
)

// TestCancelRacingFinalClipReportsDone is the regression test for the
// cancellation race: a Cancel that lands after the final clip has been
// evaluated must not demote the fully processed session to "cancelled".
// The stepHook seam fires the cancel deterministically in that window —
// after the last step returns, before run consults the context.
func TestCancelRacingFinalClipReportsDone(t *testing.T) {
	qs, err := synth.YouTubeScaled("q2", vaq.DefaultGeometry(), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	scene := qs.World.Scene()
	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	meta := qs.World.Truth.Meta
	total := meta.Clips()

	reg := NewRegistry(4, 2)
	stepHook = func(s *Session, c int) {
		if c == s.total-1 {
			s.Cancel()
		}
	}
	defer func() { stepHook = nil }()

	stream, err := vaq.NewStreamQuery(qs.Query, det, rec, meta.Geom, vaq.StreamConfig{HorizonClips: total})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := reg.Create(CreateSessionRequest{Workload: "q2"}, stream, total, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-sess.Done()
	info := sess.Info()
	if info.State != StateDone {
		t.Fatalf("state = %q after cancel raced the final clip, want %q (all %d clips processed)",
			info.State, StateDone, total)
	}
	if info.ClipsProcessed != total {
		t.Fatalf("ClipsProcessed = %d, want %d", info.ClipsProcessed, total)
	}

	// A cancel with work remaining still reports cancelled.
	stepHook = func(s *Session, c int) {
		if c == 0 {
			s.Cancel()
		}
	}
	stream2, err := vaq.NewStreamQuery(qs.Query, det, rec, meta.Geom, vaq.StreamConfig{HorizonClips: total})
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := reg.Create(CreateSessionRequest{Workload: "q2"}, stream2, total, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-sess2.Done()
	if info := sess2.Info(); info.State != StateCancelled {
		t.Fatalf("state = %q after early cancel, want %q", info.State, StateCancelled)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := reg.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestTopKReportsClocks: the endpoint surfaces both the wall clock of
// the fan-out region and the aggregate per-video runtime.
func TestTopKReportsClocks(t *testing.T) {
	repo := buildRepo(t)
	_, ts := startServer(t, Config{Repo: repo, Workers: 4})
	var resp TopKResponse
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
		TopKRequest{Action: "blowing_leaves", Objects: []string{"car"}, K: 3}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) == 0 {
		t.Fatal("no results")
	}
	if resp.RuntimeUS <= 0 || resp.CPURuntimeUS <= 0 {
		t.Fatalf("clocks not populated: runtime_us=%d cpu_runtime_us=%d", resp.RuntimeUS, resp.CPURuntimeUS)
	}
}
