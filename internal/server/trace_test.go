package server

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"vaq/internal/trace"
)

// varzCounters fetches GET /varz and parses the plain `vaq_<name> <v>`
// counter lines (stage summaries and the spans-total gauge excluded).
func varzCounters(t *testing.T, base string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(base + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /varz: status %d", resp.StatusCode)
	}
	out := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "vaq_") || strings.Contains(line, "{") ||
			strings.HasPrefix(line, "vaq_trace_spans_total") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("bad /varz line %q: %v", line, err)
		}
		out[strings.TrimPrefix(name, "vaq_")] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// metricName mirrors the /varz name folding for cross-endpoint checks.
func foldName(name string) string {
	return strings.Map(func(r rune) rune {
		if r == '.' || r == '-' {
			return '_'
		}
		return r
	}, name)
}

// TestTraceConcurrentSessionsAndTopK drives N online sessions and M
// offline top-k queries through the shared worker pool under -race and
// then checks the tracer's global invariants: every retained span's
// parent is retained and started no later than the child, the detector
// counters agree exactly with the sessions' own invocation accounting,
// and /tracez and /varz report the same counter values.
func TestTraceConcurrentSessionsAndTopK(t *testing.T) {
	tr := trace.New(trace.WithCapacity(1 << 15))
	repo := buildRepo(t)
	_, ts := startServer(t, Config{Repo: repo, MaxSessions: 16, Workers: 2, Tracer: tr})

	const nSessions = 6
	const nTopK = 4
	var wg sync.WaitGroup
	errs := make(chan error, nSessions+nTopK)
	ids := make([]string, nSessions)
	for i := 0; i < nSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var created SessionInfo
			wl := fmt.Sprintf("q%d", i+1)
			code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
				CreateSessionRequest{Workload: wl, Scale: 0.02}, &created)
			if code != http.StatusCreated {
				errs <- fmt.Errorf("create %s: status %d", wl, code)
				return
			}
			ids[i] = created.ID
			if res := pollDone(t, ts.URL, created.ID); res.State != StateDone {
				errs <- fmt.Errorf("session %s finished %s", created.ID, res.State)
			}
		}(i)
	}
	for i := 0; i < nTopK; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out TopKResponse
			code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
				TopKRequest{Action: "blowing_leaves", Objects: []string{"car"}, K: 3}, &out)
			if code != http.StatusOK {
				errs <- fmt.Errorf("topk: status %d", code)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Span integrity: the ring was sized to hold everything, so every
	// child's parent must be retained, have started first, and every
	// root must be a session or top-k request span.
	spans := tr.Spans()
	byID := make(map[trace.SpanID]trace.SpanRecord, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	if tr.TotalSpans() != uint64(len(spans)) {
		t.Fatalf("ring evicted spans (%d total, %d retained); grow the test capacity", tr.TotalSpans(), len(spans))
	}
	for _, s := range spans {
		if s.Parent == 0 {
			if s.Name != "session" && s.Name != "http.topk" {
				t.Errorf("unexpected root span %q", s.Name)
			}
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Errorf("span %d (%s) has unretained parent %d", s.ID, s.Name, s.Parent)
			continue
		}
		if p.Start.After(s.Start) {
			t.Errorf("span %d (%s) starts before its parent %d (%s)", s.ID, s.Name, p.ID, p.Name)
		}
	}

	// Counter exactness: the tracer's detector counters must equal the
	// sum of the sessions' own invocation counts, and the clip counter
	// the sum of clips processed.
	var wantInvocations, wantClips int64
	var list SessionList
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list sessions: status %d", code)
	}
	if len(list.Sessions) != nSessions {
		t.Fatalf("listed %d sessions, want %d", len(list.Sessions), nSessions)
	}
	for _, info := range list.Sessions {
		wantInvocations += int64(info.Invocations)
		wantClips += int64(info.ClipsProcessed)
	}
	counters := tr.Counters()
	if got := counters["detect.frame_invocations"] + counters["detect.shot_invocations"]; got != wantInvocations {
		t.Errorf("detector counters sum to %d, sessions report %d", got, wantInvocations)
	}
	if got := counters["svaq.clips"]; got != wantClips {
		t.Errorf("svaq.clips = %d, sessions processed %d", got, wantClips)
	}
	// Each top-k request fans out one rvaq execution per video (2 videos
	// in buildRepo's repository, sharded mode).
	if got := counters["rvaq.queries"]; got != int64(nTopK*len(repo.Videos())) {
		t.Errorf("rvaq.queries = %d, want %d", got, nTopK*len(repo.Videos()))
	}
	roots := map[string]int{}
	for _, s := range spans {
		if s.Parent == 0 {
			roots[s.Name]++
		}
	}
	if roots["session"] != nSessions || roots["http.topk"] != nTopK {
		t.Errorf("root spans %v, want %d sessions and %d http.topk", roots, nSessions, nTopK)
	}

	// Cross-endpoint agreement: /tracez's counter snapshot and /varz's
	// text exposition must round-trip the same numbers (nothing runs
	// between the two reads).
	var tz TracezResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/tracez", nil, &tz); code != http.StatusOK {
		t.Fatalf("GET /tracez: status %d", code)
	}
	vz := varzCounters(t, ts.URL)
	for name, v := range tz.Counters {
		if got, ok := vz[foldName(name)]; !ok || got != v {
			t.Errorf("counter %q: /tracez %d, /varz %d (present %v)", name, v, got, ok)
		}
	}
	if tz.TotalSpans != tr.TotalSpans() {
		t.Errorf("/tracez total_spans %d, tracer %d", tz.TotalSpans, tr.TotalSpans())
	}
	if len(tz.Trees) == 0 {
		t.Error("/tracez returned no span trees")
	}

	// The shared pool was contended (2 workers, 6 sessions + 4 top-k),
	// so the pool.wait stage must have observations.
	stages := tr.Stages()
	if st, ok := stages["pool.wait"]; !ok || st.Count == 0 {
		t.Errorf("pool.wait stage has no observations: %+v", stages)
	}
}
