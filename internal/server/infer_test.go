package server

import (
	"net/http"
	"testing"
)

const sharedInferQuery = `SELECT MERGE(clipID) AS Sequence FROM (PROCESS cam PRODUCE clipID,
	obj USING ObjectDetector, act USING ActionRecognizer)
	WHERE act = 'blowing_leaves' AND obj.include('car')`

// TestSharedInferenceAcrossSessions runs two identical sessions with
// the shared-inference layer armed and asserts they converge on one
// backend domain: the second session's invocations land as cache hits,
// and /metricsz exposes both the inference block and (with hedging
// armed) the per-backend hedge latency sketches.
func TestSharedInferenceAcrossSessions(t *testing.T) {
	srv, ts := startServer(t, Config{SharedInference: true, HedgeQuantile: 0.99})

	create := func() SessionInfo {
		t.Helper()
		var created SessionInfo
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", CreateSessionRequest{
			Workload: "q2", Scale: 0.02, Query: sharedInferQuery,
		}, &created)
		if code != http.StatusCreated {
			t.Fatalf("create status %d: %+v", code, created)
		}
		return created
	}

	first := create()
	if res := pollDone(t, ts.URL, first.ID); res.State != StateDone {
		t.Fatalf("first session ended %q, want done", res.State)
	}
	second := create()
	resSecond := pollDone(t, ts.URL, second.ID)
	if resSecond.State != StateDone {
		t.Fatalf("second session ended %q, want done", resSecond.State)
	}
	if resSecond.Sequences == nil {
		t.Fatal("second session produced no sequences field")
	}

	// Both sessions share one (workload, scale, model) domain.
	srv.hub.mu.Lock()
	domains := len(srv.hub.entries)
	srv.hub.mu.Unlock()
	if domains != 1 {
		t.Fatalf("inference domains = %d, want 1 (identical sessions must share)", domains)
	}

	var m MetricsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil, &m); code != http.StatusOK {
		t.Fatalf("metricsz status %d", code)
	}
	if m.Inference == nil {
		t.Fatal("metricsz has no inference block with SharedInference armed")
	}
	if m.Inference.CacheHits == 0 {
		t.Fatalf("inference cache hits = 0 after a repeated session: %+v", m.Inference)
	}
	if m.Inference.CacheMisses == 0 || m.Inference.Leaders == 0 {
		t.Fatalf("inference block missing first-session work: %+v", m.Inference)
	}
	if len(m.HedgeLatencies) == 0 {
		t.Fatal("hedge_latencies absent from /metricsz with HedgeQuantile armed")
	}
	for name, st := range m.HedgeLatencies {
		if st.Count <= 0 {
			t.Fatalf("hedge latency sketch %q has no samples: %+v", name, st)
		}
	}
}

// TestSharedInferenceOffOmitsMetrics pins the omitempty contract: with
// the layer disarmed, /metricsz must not grow an inference block.
func TestSharedInferenceOffOmitsMetrics(t *testing.T) {
	_, ts := startServer(t, Config{})
	created := SessionInfo{}
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", CreateSessionRequest{
		Workload: "q2", Scale: 0.02, Query: sharedInferQuery,
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	pollDone(t, ts.URL, created.ID)
	var m MetricsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil, &m); code != http.StatusOK {
		t.Fatalf("metricsz status %d", code)
	}
	if m.Inference != nil {
		t.Fatalf("inference block present without SharedInference: %+v", m.Inference)
	}
}
