package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// shedWindow tells an overloaded daemon from a busy one. Every pool
// acquisition reports its queue wait; the window keeps the recent
// samples and declares overload when the p90 wait crosses the
// configured threshold. Admission handlers consult it before doing any
// work and answer 503 + Retry-After instead of queuing unboundedly —
// shedding at the door is the resilience counterpart of the engines'
// graceful degradation.
//
// The window is a bounded deque (arrival order) plus a parallel
// sorted multiset of the same waits, maintained incrementally: each
// observe binary-searches one insert, each eviction one removal, and
// waitP90 is a single index into the sorted slice. The admission hot
// path allocates nothing — the previous implementation copied and
// sort.Slice'd the whole window per check.
type shedWindow struct {
	threshold time.Duration // p90 wait that trips shedding; <=0 disables
	span      time.Duration // how far back samples count
	minSamp   int           // fewer samples than this never sheds
	now       func() time.Time

	mu    sync.Mutex
	when  []time.Time     // arrival ring, oldest at head
	wait  []time.Duration // parallel waits
	head  int
	count int
	// sorted holds exactly the live window's waits in ascending
	// order; stale samples are evicted lazily from the deque's old
	// end on every observe and read, so the two structures never
	// disagree.
	sorted []time.Duration

	sheds atomic.Int64
}

// shedRing bounds the window's memory; at typical request rates it
// spans well past the freshness horizon.
const shedRing = 256

func newShedWindow(threshold time.Duration) *shedWindow {
	return &shedWindow{
		threshold: threshold,
		span:      10 * time.Second,
		minSamp:   8,
		now:       time.Now,
		when:      make([]time.Time, shedRing),
		wait:      make([]time.Duration, shedRing),
		sorted:    make([]time.Duration, 0, shedRing),
	}
}

// observe records one pool-acquisition wait; wired via pool.SetObserver.
// Samples are kept even when the shed threshold is disabled — /healthz
// reports the p90 queue wait whether or not admission control is armed.
func (sw *shedWindow) observe(wait time.Duration) {
	if sw == nil {
		return
	}
	now := sw.now()
	sw.mu.Lock()
	sw.evictLocked(now)
	if sw.count == len(sw.when) {
		sw.removeOldestLocked()
	}
	tail := (sw.head + sw.count) % len(sw.when)
	sw.when[tail] = now
	sw.wait[tail] = wait
	sw.count++
	i := sort.Search(len(sw.sorted), func(i int) bool { return sw.sorted[i] >= wait })
	sw.sorted = sw.sorted[:len(sw.sorted)+1]
	copy(sw.sorted[i+1:], sw.sorted[i:])
	sw.sorted[i] = wait
	sw.mu.Unlock()
}

// evictLocked drops samples older than the freshness span from the
// deque's old end (and from the sorted multiset). Amortized O(1): each
// sample is evicted once.
func (sw *shedWindow) evictLocked(now time.Time) {
	cutoff := now.Add(-sw.span)
	for sw.count > 0 && !sw.when[sw.head].After(cutoff) {
		sw.removeOldestLocked()
	}
}

func (sw *shedWindow) removeOldestLocked() {
	w := sw.wait[sw.head]
	i := sort.Search(len(sw.sorted), func(i int) bool { return sw.sorted[i] >= w })
	copy(sw.sorted[i:], sw.sorted[i+1:])
	sw.sorted = sw.sorted[:len(sw.sorted)-1]
	sw.head = (sw.head + 1) % len(sw.when)
	sw.count--
}

// overloaded reports whether the p90 queue wait over the fresh samples
// is at or past the threshold. It needs minSamp fresh samples to say
// yes: a daemon that has barely served anything is not overloaded.
func (sw *shedWindow) overloaded() bool {
	if sw == nil || sw.threshold <= 0 {
		return false
	}
	p90, ok := sw.waitP90()
	return ok && p90 >= sw.threshold
}

// waitP90 returns the p90 queue wait over the fresh samples; ok is
// false with fewer than minSamp of them.
func (sw *shedWindow) waitP90() (time.Duration, bool) {
	if sw == nil {
		return 0, false
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.evictLocked(sw.now())
	if sw.count < sw.minSamp {
		return 0, false
	}
	return sw.sorted[sw.count*9/10], true
}

// shed counts one rejected request and returns the Retry-After hint in
// seconds, scaled by how far the p90 wait overshoots the threshold
// (capped at 8×) and clamped to [1, 60] — the hotter the queue, the
// longer clients are told to stay away.
func (sw *shedWindow) shed() int { return sw.shedRetry(sw.threshold) }

// shedRetry is shed against an explicit threshold — the brownout
// ladder sheds against its own High watermark, not the legacy
// -shed-wait one.
func (sw *shedWindow) shedRetry(threshold time.Duration) int {
	sw.sheds.Add(1)
	retry := float64(threshold) / float64(time.Second)
	if retry < 1 {
		retry = 1
	}
	if p90, ok := sw.waitP90(); ok && threshold > 0 && p90 > threshold {
		ratio := float64(p90) / float64(threshold)
		if ratio > 8 {
			ratio = 8
		}
		retry *= ratio
	}
	if retry > 60 {
		retry = 60
	}
	return int(retry)
}

// Sheds returns the total requests rejected by admission control.
func (sw *shedWindow) Sheds() int64 {
	if sw == nil {
		return 0
	}
	return sw.sheds.Load()
}
