package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// shedWindow tells an overloaded daemon from a busy one. Every pool
// acquisition reports its queue wait; the window keeps the recent
// samples and declares overload when the p90 wait crosses the
// configured threshold. Admission handlers consult it before doing any
// work and answer 503 + Retry-After instead of queuing unboundedly —
// shedding at the door is the resilience counterpart of the engines'
// graceful degradation.
type shedWindow struct {
	threshold time.Duration // p90 wait that trips shedding; <=0 disables
	span      time.Duration // how far back samples count
	minSamp   int           // fewer samples than this never sheds
	now       func() time.Time

	mu      sync.Mutex
	samples []shedSample // ring, oldest overwritten
	next    int
	filled  bool

	sheds atomic.Int64
}

type shedSample struct {
	when time.Time
	wait time.Duration
}

// shedRing bounds the window's memory; at typical request rates it
// spans well past the freshness horizon.
const shedRing = 256

func newShedWindow(threshold time.Duration) *shedWindow {
	return &shedWindow{
		threshold: threshold,
		span:      10 * time.Second,
		minSamp:   8,
		now:       time.Now,
		samples:   make([]shedSample, shedRing),
	}
}

// observe records one pool-acquisition wait; wired via pool.SetObserver.
// Samples are kept even when the shed threshold is disabled — /healthz
// reports the p90 queue wait whether or not admission control is armed.
func (sw *shedWindow) observe(wait time.Duration) {
	if sw == nil {
		return
	}
	sw.mu.Lock()
	sw.samples[sw.next] = shedSample{when: sw.now(), wait: wait}
	sw.next++
	if sw.next == len(sw.samples) {
		sw.next = 0
		sw.filled = true
	}
	sw.mu.Unlock()
}

// overloaded reports whether the p90 queue wait over the fresh samples
// is at or past the threshold. It needs minSamp fresh samples to say
// yes: a daemon that has barely served anything is not overloaded.
func (sw *shedWindow) overloaded() bool {
	if sw == nil || sw.threshold <= 0 {
		return false
	}
	p90, ok := sw.waitP90()
	return ok && p90 >= sw.threshold
}

// waitP90 computes the p90 queue wait over the fresh samples; ok is
// false with fewer than minSamp of them.
func (sw *shedWindow) waitP90() (time.Duration, bool) {
	if sw == nil {
		return 0, false
	}
	cutoff := sw.now().Add(-sw.span)
	sw.mu.Lock()
	n := sw.next
	if sw.filled {
		n = len(sw.samples)
	}
	fresh := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		if s := sw.samples[i]; s.when.After(cutoff) {
			fresh = append(fresh, s.wait)
		}
	}
	sw.mu.Unlock()
	if len(fresh) < sw.minSamp {
		return 0, false
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
	return fresh[len(fresh)*9/10], true
}

// shed counts one rejected request and returns the Retry-After hint in
// seconds (at least 1).
func (sw *shedWindow) shed() int {
	sw.sheds.Add(1)
	retry := int(sw.threshold / time.Second)
	if retry < 1 {
		retry = 1
	}
	return retry
}

// Sheds returns the total requests rejected by admission control.
func (sw *shedWindow) Sheds() int64 {
	if sw == nil {
		return 0
	}
	return sw.sheds.Load()
}
