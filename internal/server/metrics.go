package server

import (
	"net/http"
	"sync"
	"time"

	"vaq/internal/brownout"
	"vaq/internal/infer"
	"vaq/internal/quantile"
	"vaq/internal/resilience"
	"vaq/internal/trace"
)

// RouteMetrics is the per-endpoint slice of the /metricsz payload.
// Latencies are milliseconds from handler entry to last byte. The
// status-class counters partition Count: 2xx (anything below 400), 4xx
// (client errors other than 499), 499 (client went away mid-request)
// and 5xx. CPU quantiles appear only for routes that report engine CPU
// time (POST /v1/topk folds rvaq's Stats.CPURuntime in), so the ratio
// of cpu_p50_ms to p50_ms shows the fan-out speedup at the median.
type RouteMetrics struct {
	Count     int64   `json:"count"`
	Errors    int64   `json:"errors"` // responses with status >= 400
	Status2xx int64   `json:"status_2xx"`
	Status4xx int64   `json:"status_4xx"`
	Status499 int64   `json:"status_499"`
	Status5xx int64   `json:"status_5xx"`
	P50MS     float64 `json:"p50_ms"`
	P90MS     float64 `json:"p90_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
	CPUCount  int64   `json:"cpu_count,omitempty"`
	CPUP50MS  float64 `json:"cpu_p50_ms,omitempty"`
	CPUP90MS  float64 `json:"cpu_p90_ms,omitempty"`
	CPUP99MS  float64 `json:"cpu_p99_ms,omitempty"`
	CPUMaxMS  float64 `json:"cpu_max_ms,omitempty"`
}

// MetricsResponse is the GET /metricsz payload.
type MetricsResponse struct {
	Routes         map[string]RouteMetrics `json:"routes"`
	ActiveSessions int                     `json:"active_sessions"`
	TotalSessions  int                     `json:"total_sessions"`
	// Resilience aggregates retry/fallback/breaker counters across all
	// live sessions (absent when no session has a resilience layer);
	// ShedRequests counts admissions rejected 503 by load shedding.
	Resilience   *resilience.Stats `json:"resilience,omitempty"`
	ShedRequests int64             `json:"shed_requests,omitempty"`
	// Brownout reports the degradation ladder — active level,
	// transition counters and thresholds (absent when -brownout is
	// unarmed).
	Brownout *brownout.Stats `json:"brownout,omitempty"`
	// Inference aggregates the shared-inference layer's hit/miss/
	// coalesce/batch counters across domains (absent without
	// -shared-inference or before the first session).
	Inference *infer.Stats `json:"inference,omitempty"`
	// HedgeLatencies exposes, per backend with hedging armed, the
	// latency sketch quantiles (µs) the hedge delay is derived from —
	// keys are the resilience.latency.<obj|act>.<backend> stage names.
	HedgeLatencies map[string]trace.StageStats `json:"hedge_latencies,omitempty"`
}

// metrics accumulates per-route request counts and latency sketches.
type metrics struct {
	mu     sync.Mutex
	routes map[string]*routeState
}

type routeState struct {
	count                  int64
	errors                 int64
	s2xx, s4xx, s499, s5xx int64
	sketch                 *quantile.Sketch
	cpuCount               int64
	cpu                    *quantile.Sketch // lazily built on first observeCPU
}

func newMetrics() *metrics {
	return &metrics{routes: map[string]*routeState{}}
}

func (m *metrics) observe(route string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.routes[route]
	if st == nil {
		st = &routeState{sketch: quantile.New()}
		m.routes[route] = st
	}
	st.count++
	if status >= 400 {
		st.errors++
	}
	switch {
	case status < 400:
		st.s2xx++
	case status == httpStatusClientClosedRequest:
		st.s499++
	case status < 500:
		st.s4xx++
	default:
		st.s5xx++
	}
	st.sketch.Observe(float64(d) / float64(time.Millisecond))
}

// observeCPU folds an engine-reported CPU time into the route's CPU
// sketch (kept apart from the wall-clock one: under fan-out, CPU time
// exceeds the handler latency).
func (m *metrics) observeCPU(route string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.routes[route]
	if st == nil {
		st = &routeState{sketch: quantile.New()}
		m.routes[route] = st
	}
	if st.cpu == nil {
		st.cpu = quantile.New()
	}
	st.cpuCount++
	st.cpu.Observe(float64(d) / float64(time.Millisecond))
}

// totals sums requests and server-side errors (status >= 500) across
// all routes — the cumulative counters the health history samples.
// Client errors (4xx, 499) do not count against server health.
func (m *metrics) totals() (requests, errors int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range m.routes {
		requests += st.count
		errors += st.s5xx
	}
	return requests, errors
}

func (m *metrics) snapshot() map[string]RouteMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]RouteMetrics, len(m.routes))
	for route, st := range m.routes {
		rm := RouteMetrics{
			Count:     st.count,
			Errors:    st.errors,
			Status2xx: st.s2xx,
			Status4xx: st.s4xx,
			Status499: st.s499,
			Status5xx: st.s5xx,
			P50MS:     st.sketch.Query(0.50),
			P90MS:     st.sketch.Query(0.90),
			P99MS:     st.sketch.Query(0.99),
			MaxMS:     st.sketch.Max(),
		}
		if st.cpu != nil {
			rm.CPUCount = st.cpuCount
			rm.CPUP50MS = st.cpu.Query(0.50)
			rm.CPUP90MS = st.cpu.Query(0.90)
			rm.CPUP99MS = st.cpu.Query(0.99)
			rm.CPUMaxMS = st.cpu.Max()
		}
		out[route] = rm
	}
	return out
}

// statusWriter records the response code for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with latency/count recording under the
// given route label (the mux pattern, so all sessions share one row).
func (m *metrics) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		m.observe(route, sw.status, time.Since(start))
	}
}
