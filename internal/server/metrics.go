package server

import (
	"net/http"
	"sync"
	"time"

	"vaq/internal/quantile"
)

// RouteMetrics is the per-endpoint slice of the /metricsz payload.
// Latencies are milliseconds from handler entry to last byte.
type RouteMetrics struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"` // responses with status >= 400
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// MetricsResponse is the GET /metricsz payload.
type MetricsResponse struct {
	Routes         map[string]RouteMetrics `json:"routes"`
	ActiveSessions int                     `json:"active_sessions"`
	TotalSessions  int                     `json:"total_sessions"`
}

// metrics accumulates per-route request counts and latency sketches.
type metrics struct {
	mu     sync.Mutex
	routes map[string]*routeState
}

type routeState struct {
	count  int64
	errors int64
	sketch *quantile.Sketch
}

func newMetrics() *metrics {
	return &metrics{routes: map[string]*routeState{}}
}

func (m *metrics) observe(route string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.routes[route]
	if st == nil {
		st = &routeState{sketch: quantile.New()}
		m.routes[route] = st
	}
	st.count++
	if status >= 400 {
		st.errors++
	}
	st.sketch.Observe(float64(d) / float64(time.Millisecond))
}

func (m *metrics) snapshot() map[string]RouteMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]RouteMetrics, len(m.routes))
	for route, st := range m.routes {
		out[route] = RouteMetrics{
			Count:  st.count,
			Errors: st.errors,
			P50MS:  st.sketch.Query(0.50),
			P90MS:  st.sketch.Query(0.90),
			P99MS:  st.sketch.Query(0.99),
			MaxMS:  st.sketch.Max(),
		}
	}
	return out
}

// statusWriter records the response code for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with latency/count recording under the
// given route label (the mux pattern, so all sessions share one row).
func (m *metrics) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		m.observe(route, sw.status, time.Since(start))
	}
}
