package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func TestShedWindow(t *testing.T) {
	now := time.Unix(1000, 0)
	sw := newShedWindow(10 * time.Millisecond)
	sw.now = func() time.Time { return now }

	if sw.overloaded() {
		t.Fatal("empty window reports overload")
	}
	// Below the sample floor: even terrible waits must not shed.
	for i := 0; i < sw.minSamp-1; i++ {
		sw.observe(time.Second)
	}
	if sw.overloaded() {
		t.Fatal("overloaded below the sample floor")
	}
	sw.observe(time.Second)
	if !sw.overloaded() {
		t.Fatal("p90 wait of 1s at threshold 10ms did not trip")
	}
	// Samples age out: the same window 11s later is calm again.
	now = now.Add(11 * time.Second)
	if sw.overloaded() {
		t.Fatal("stale samples still trip the shedder")
	}
	// Healthy waits keep admission open.
	for i := 0; i < 2*sw.minSamp; i++ {
		sw.observe(time.Millisecond / 2)
	}
	if sw.overloaded() {
		t.Fatal("sub-threshold waits trip the shedder")
	}

	// Disabled (threshold 0) and nil windows never shed.
	off := newShedWindow(0)
	off.observe(time.Hour)
	if off.overloaded() {
		t.Fatal("disabled shedder tripped")
	}
	var nilSW *shedWindow
	if nilSW.overloaded() || nilSW.Sheds() != 0 {
		t.Fatal("nil shedWindow misbehaves")
	}
}

// TestShedding503: once the shed window trips, session-create and top-k
// admissions answer 503 with a Retry-After hint, the rejections are
// counted in /metricsz, and recovery reopens admission.
func TestShedding503(t *testing.T) {
	srv, ts := startServer(t, Config{Repo: buildRepo(t), ShedWait: time.Millisecond})
	now := time.Unix(2000, 0)
	srv.shed.now = func() time.Time { return now }
	for i := 0; i < 10; i++ {
		srv.shed.observe(10 * time.Millisecond)
	}

	post := func(path string, body any) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, jsonBody(t, body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for _, path := range []string{"/v1/sessions", "/v1/topk"} {
		body := any(CreateSessionRequest{Workload: "q2"})
		if path == "/v1/topk" {
			body = TopKRequest{Action: "blowing_leaves", K: 3}
		}
		resp := post(path, body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("POST %s while overloaded: status %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("POST %s 503 carries no Retry-After", path)
		}
	}
	var mz MetricsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil, &mz); code != http.StatusOK {
		t.Fatalf("metricsz: status %d", code)
	}
	if mz.ShedRequests < 2 {
		t.Fatalf("shed_requests = %d, want >= 2", mz.ShedRequests)
	}

	// Load subsides (samples age out): admission reopens.
	now = now.Add(time.Minute)
	var info SessionInfo
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateSessionRequest{Workload: "q2", Scale: 0.1}, &info); code != http.StatusCreated {
		t.Fatalf("create after recovery: status %d, want 201", code)
	}
}
