package server

import (
	"context"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"vaq/internal/fault"
	"vaq/internal/resilience"
)

// chaosPolicy keeps the retry/breaker machinery fully armed but fast
// enough for tests: microsecond backoffs instead of milliseconds.
func chaosPolicy() *resilience.Policy {
	return &resilience.Policy{
		Deadline:        50 * time.Millisecond,
		MaxRetries:      2,
		BaseBackoff:     50 * time.Microsecond,
		MaxBackoff:      500 * time.Microsecond,
		Seed:            7,
		BreakerFailures: 4,
		BreakerCooldown: 5 * time.Millisecond,
	}
}

// TestChaosConcurrentSessionsAndTopK is the -race chaos test: N
// concurrent sessions and M top-k queries run through a stacked
// error+latency fault schedule. Every session must reach a terminal
// state (nothing wedges), results must be flagged degraded exactly when
// the fallback fired, the breaker must end closed once the fault burst
// is past, and shutdown must leave no session goroutine behind (the
// startServer cleanup asserts that).
func TestChaosConcurrentSessionsAndTopK(t *testing.T) {
	sched, err := fault.Parse(42, "error:0-60:0.9,error:0-:0.05,latency:0-200:0.3:200us")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, Config{
		Repo:          buildRepo(t),
		Workers:       4,
		FaultSchedule: sched,
		Resilience:    chaosPolicy(),
	})

	const nSessions, nTopK = 4, 4
	ids := make([]string, nSessions)
	for i := range ids {
		var info SessionInfo
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
			CreateSessionRequest{Workload: "q2", Scale: 0.1}, &info)
		if code != http.StatusCreated {
			t.Fatalf("create session %d: status %d", i, code)
		}
		ids[i] = info.ID
	}
	var wg sync.WaitGroup
	for i := 0; i < nTopK; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp TopKResponse
			code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
				TopKRequest{Action: "blowing_leaves", Objects: []string{"car"}, K: 3}, &resp)
			if code != http.StatusOK {
				t.Errorf("topk under faults: status %d", code)
			}
		}()
	}
	results := make([]ResultsResponse, nSessions)
	for i, id := range ids {
		results[i] = pollDone(t, ts.URL, id)
		if results[i].State != StateDone {
			t.Fatalf("session %s ended %q, want %q", id, results[i].State, StateDone)
		}
	}
	wg.Wait()

	// Degraded is flagged exactly when the fallback fired, and with a
	// 90% error burst over three attempts some units must have fallen
	// back in every session (same schedule, same workload).
	for _, id := range ids {
		var info SessionInfo
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+id, nil, &info); code != http.StatusOK {
			t.Fatalf("status %s: %d", id, code)
		}
		if info.Degraded != (info.Fallbacks > 0) {
			t.Errorf("session %s: Degraded=%v but Fallbacks=%d", id, info.Degraded, info.Fallbacks)
		}
		if info.Fallbacks == 0 {
			t.Errorf("session %s saw no fallbacks under a 90%% error burst", id)
		}
		if info.DegradedUnits == 0 {
			t.Errorf("session %s flagged degraded but reports no degraded units", id)
		}
	}
	for i := 1; i < nSessions; i++ {
		if !results[i].Degraded {
			t.Errorf("session %s results not flagged degraded", ids[i])
		}
	}

	// The fault burst is confined to early units; once past it the
	// breaker must have closed again, and the aggregate counters must
	// reflect the injected faults.
	var mz MetricsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil, &mz); code != http.StatusOK {
		t.Fatalf("metricsz: status %d", code)
	}
	if mz.Resilience == nil {
		t.Fatal("metricsz has no resilience aggregate")
	}
	if mz.Resilience.Retries == 0 || mz.Resilience.Errors == 0 || mz.Resilience.Fallbacks == 0 {
		t.Errorf("resilience aggregate missing activity: %+v", *mz.Resilience)
	}
	if got := mz.Resilience.BreakerState; got != resilience.StateClosed.String() {
		t.Errorf("breaker state %q after the fault burst, want closed", got)
	}
}

// TestChaosDeterministicSessions: with a policy whose every decision is
// a pure hash of its coordinates — no per-attempt deadline that real
// time can trip, no breaker whose cooldown expiry depends on the wall
// clock — concurrent sessions over the same fault schedule, seed and
// workload must compute byte-identical degraded results regardless of
// scheduling. (The breaker/deadline variants above are deliberately
// *not* deterministic across sessions: which calls an open circuit
// sheds depends on when its cooldown elapses.)
func TestChaosDeterministicSessions(t *testing.T) {
	sched, err := fault.Parse(42, "error:0-60:0.9,error:0-:0.05")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, Config{
		Workers:       4,
		FaultSchedule: sched,
		Resilience:    &resilience.Policy{MaxRetries: 2, Seed: 7},
	})

	const nSessions = 3
	ids := make([]string, nSessions)
	for i := range ids {
		var info SessionInfo
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
			CreateSessionRequest{Workload: "q2", Scale: 0.1}, &info)
		if code != http.StatusCreated {
			t.Fatalf("create session %d: status %d", i, code)
		}
		ids[i] = info.ID
	}
	results := make([]ResultsResponse, nSessions)
	for i, id := range ids {
		results[i] = pollDone(t, ts.URL, id)
		if results[i].State != StateDone {
			t.Fatalf("session %s ended %q, want %q", id, results[i].State, StateDone)
		}
	}
	for i := 1; i < nSessions; i++ {
		if !reflect.DeepEqual(results[i].Sequences, results[0].Sequences) {
			t.Errorf("session %s sequences diverge from %s under identical faults:\n%v\nvs\n%v",
				ids[i], ids[0], results[i].Sequences, results[0].Sequences)
		}
		if results[i].Degraded != results[0].Degraded ||
			results[i].DegradedUnits != results[0].DegradedUnits {
			t.Errorf("session %s degradation (%v, %d units) diverges from %s (%v, %d units)",
				ids[i], results[i].Degraded, results[i].DegradedUnits,
				ids[0], results[0].Degraded, results[0].DegradedUnits)
		}
	}
	if !results[0].Degraded || results[0].DegradedUnits == 0 {
		t.Errorf("no degradation under a 90%% error burst: %+v", results[0])
	}
}

// TestTopKDeadline504AndPartial: an expired server deadline on /v1/topk
// is a 504 with code "deadline" (not the old blanket 499), unless the
// request opted into Partial — then it is a 200 flagged Incomplete.
func TestTopKDeadline504AndPartial(t *testing.T) {
	_, ts := startServer(t, Config{Repo: buildRepo(t), RequestTimeout: time.Nanosecond})

	var errResp ErrorResponse
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
		TopKRequest{Action: "blowing_leaves", K: 3}, &errResp)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline topk: status %d, want 504", code)
	}
	if errResp.Error.Code != "deadline" {
		t.Fatalf("deadline topk: code %q, want \"deadline\"", errResp.Error.Code)
	}

	var resp TopKResponse
	code = doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
		TopKRequest{Action: "blowing_leaves", K: 3, Partial: true}, &resp)
	if code != http.StatusOK {
		t.Fatalf("partial topk: status %d, want 200", code)
	}
	if !resp.Incomplete {
		t.Fatal("partial topk under an expired deadline not flagged incomplete")
	}

	// The per-video path maps the deadline the same way.
	code = doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
		TopKRequest{Video: "q2", Action: "blowing_leaves", K: 3}, &errResp)
	if code != http.StatusGatewayTimeout || errResp.Error.Code != "deadline" {
		t.Fatalf("deadline per-video topk: status %d code %q, want 504/deadline", code, errResp.Error.Code)
	}
}

// slowSession creates a session that stays running without processing
// clips for a while (pacing far beyond the test's horizon).
func slowSession(t *testing.T, base string) string {
	t.Helper()
	var info SessionInfo
	code := doJSON(t, http.MethodPost, base+"/v1/sessions",
		CreateSessionRequest{Workload: "q2", Scale: 0.1, PaceMS: 60000, MaxClips: 2}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create slow session: status %d", code)
	}
	return info.ID
}

// TestResultsLongPollDeadline504: when the server's own request timeout
// cuts a long-poll short, the client gets a 504 with code "deadline" —
// the wait was truncated server-side, not satisfied.
func TestResultsLongPollDeadline504(t *testing.T) {
	_, ts := startServer(t, Config{RequestTimeout: 100 * time.Millisecond})
	id := slowSession(t, ts.URL)
	var errResp ErrorResponse
	code := doJSON(t, http.MethodGet,
		fmt.Sprintf("%s/v1/sessions/%s/results?wait=5s&since=0", ts.URL, id), nil, &errResp)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("long-poll past the request timeout: status %d, want 504", code)
	}
	if errResp.Error.Code != "deadline" {
		t.Fatalf("long-poll 504 code %q, want \"deadline\"", errResp.Error.Code)
	}
}

// TestResultsClientCancel499: a client that disconnects mid-poll is
// recorded as a 499 on the results route, distinct from the 504 above.
func TestResultsClientCancel499(t *testing.T) {
	_, ts := startServer(t, Config{})
	id := slowSession(t, ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/sessions/%s/results?wait=5s&since=0", ts.URL, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("poll returned before the client context fired")
	}

	route := "GET /v1/sessions/{id}/results"
	deadline := time.Now().Add(2 * time.Second)
	for {
		var mz MetricsResponse
		if code := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil, &mz); code != http.StatusOK {
			t.Fatalf("metricsz: status %d", code)
		}
		if mz.Routes[route].Status499 >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no 499 recorded for %s: %+v", route, mz.Routes[route])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
