package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"vaq"
	"vaq/internal/explain"
	"vaq/internal/infer"
	"vaq/internal/pool"
	"vaq/internal/resilience"
	"vaq/internal/trace"
)

// Registry owns the live sessions, the shared worker pool, and the
// lifecycle from admission to drain.
type Registry struct {
	maxSessions int
	workers     *pool.Pool
	tr          *trace.Tracer // nil records nothing
	exRing      *explain.Ring // nil: sessions run without collectors
	levelFn     func() string // brownout level source; nil when unarmed

	mu       sync.Mutex
	seq      int
	sessions map[string]*Session
	closed   bool

	// ctx is the parent of every session context; cancelAll fires it.
	ctx       context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup
}

// NewRegistry sizes the session table and worker pool. Non-positive
// arguments fall back to 64 sessions and GOMAXPROCS workers.
func NewRegistry(maxSessions, workers int) *Registry {
	if maxSessions <= 0 {
		maxSessions = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Registry{
		maxSessions: maxSessions,
		workers:     pool.New(workers),
		sessions:    map[string]*Session{},
		ctx:         ctx,
		cancelAll:   cancel,
	}
}

// Pool exposes the shared worker semaphore so the offline query paths
// (POST /v1/topk) draw from the same concurrency budget as the online
// sessions.
func (r *Registry) Pool() *pool.Pool { return r.workers }

// SetTracer wires the registry to a tracer: every subsequent session
// gets a root "session" span with its clip evaluations underneath, and
// session contexts carry the tracer so pool waits feed the "pool.wait"
// stage. Call before the first Create.
func (r *Registry) SetTracer(tr *trace.Tracer) {
	r.tr = tr
	if tr != nil {
		r.ctx = trace.NewContext(r.ctx, tr)
	}
}

// SetExplainRing arms per-session EXPLAIN collection: every subsequent
// session gets a collector wired through its stream, and the finished
// profile lands in ring. A nil ring disables collection. Call before
// the first Create.
func (r *Registry) SetExplainRing(ring *explain.Ring) { r.exRing = ring }

// SetLevelFunc wires the brownout ladder's level into session status
// and explain profiles: every subsequent session reads the current
// level through fn. Call before the first Create.
func (r *Registry) SetLevelFunc(fn func() string) { r.levelFn = fn }

// errTooManySessions maps to 429.
var errTooManySessions = fmt.Errorf("server: session limit reached")

// errShuttingDown maps to 503.
var errShuttingDown = fmt.Errorf("server: shutting down")

// Create admits a new session and starts its goroutine. The stream must
// be exclusively owned by the session from here on. models is the
// stream's resilience layer (nil when the stream was built without
// one); the session reads its counters for degraded-result reporting.
func (r *Registry) Create(req CreateSessionRequest, stream *vaq.Stream, total int, models *resilience.Models) (*Session, error) {
	return r.CreateWith(req, total, func(context.Context) (*vaq.Stream, *resilience.Models, func() infer.Stats, error) {
		return stream, models, nil, nil
	})
}

// CreateWith admits a session whose stream needs the session's lifetime
// context at build time — the shared-inference path binds the
// cross-session flight to it, so a deleted session abandons its waits
// without cancelling calls other sessions still share. build runs under
// the registry lock after admission; an error aborts the admission.
// inferStats, when non-nil, reads the session's shared-inference domain
// counters (the EXPLAIN profile attributes its start/finish delta).
func (r *Registry) CreateWith(req CreateSessionRequest, total int, build func(ctx context.Context) (*vaq.Stream, *resilience.Models, func() infer.Stats, error)) (*Session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errShuttingDown
	}
	running := 0
	for _, s := range r.sessions {
		select {
		case <-s.Done():
		default:
			running++
		}
	}
	if running >= r.maxSessions {
		return nil, errTooManySessions
	}
	r.seq++
	id := fmt.Sprintf("s%d", r.seq)
	ctx, cancel := context.WithCancel(r.ctx)
	stream, models, inferStats, err := build(ctx)
	if err != nil {
		cancel()
		return nil, err
	}
	sess := newSession(id, req, stream, total, cancel)
	sess.models = models
	sess.level = r.levelFn
	if r.tr != nil {
		root := r.tr.StartSpan("session", 0)
		root.SetAttr("id", id)
		root.SetAttr("workload", req.Workload)
		stream.AttachTrace(r.tr, root.ID())
		sess.span = root
	}
	if r.exRing != nil {
		ex := explain.NewCollector("online")
		ex.SetID(id)
		ex.SetWorkload(req.Workload)
		ex.SetQuery(req.Query)
		stream.AttachExplain(ex)
		sess.ex = ex
		sess.exRing = r.exRing
		sess.started = time.Now()
		if models != nil {
			sess.resStart = models.Stats()
		}
		if inferStats != nil {
			sess.inferStats = inferStats
			sess.inferStart = inferStats()
		}
	}
	r.sessions[id] = sess
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		sess.run(ctx, r.workers)
	}()
	return sess, nil
}

// Get looks a session up by id.
func (r *Registry) Get(id string) (*Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	return s, ok
}

// Delete cancels a session and removes it from the table. It reports
// whether the id existed.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	s, ok := r.sessions[id]
	delete(r.sessions, id)
	r.mu.Unlock()
	if ok {
		s.Cancel()
	}
	return ok
}

// List returns every session's status, newest last.
func (r *Registry) List() []SessionInfo {
	r.mu.Lock()
	sessions := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
	out := make([]SessionInfo, len(sessions))
	for i, s := range sessions {
		out[i] = s.Info()
	}
	return out
}

// Total counts sessions in the table, running or finished.
func (r *Registry) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Active counts sessions still running.
func (r *Registry) Active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.sessions {
		select {
		case <-s.Done():
		default:
			n++
		}
	}
	return n
}

// Resilience sums the resilience counters across every session in the
// table. It returns nil when no session carries a resilience layer, so
// /metricsz omits the block on servers that never wrapped a model.
func (r *Registry) Resilience() *resilience.Stats {
	r.mu.Lock()
	sessions := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.mu.Unlock()
	agg := resilience.Stats{BreakerState: resilience.StateClosed.String()}
	found := false
	// Shared-inference sessions of one (workload, scale, model) domain
	// share a single Models; dedupe by pointer so the roll-up counts each
	// underlying backend stack once, not once per session.
	seen := map[*resilience.Models]bool{}
	for _, s := range sessions {
		if s.models == nil || seen[s.models] {
			continue
		}
		seen[s.models] = true
		found = true
		agg.Add(s.models.Stats())
	}
	if !found {
		return nil
	}
	return &agg
}

// Shutdown stops admitting sessions and drains the in-flight ones:
// running sessions keep processing until they finish or ctx expires, at
// which point they are cancelled. Shutdown returns once every session
// goroutine has exited; the returned error is ctx's if the drain was
// cut short.
func (r *Registry) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		r.cancelAll()
		<-drained // sessions exit promptly once cancelled
	}
	r.cancelAll() // release the parent context either way
	return err
}
