package server

import (
	"context"
	"sync"
	"time"

	"vaq"
	"vaq/internal/explain"
	"vaq/internal/infer"
	"vaq/internal/pool"
	"vaq/internal/resilience"
	"vaq/internal/trace"
)

// Session states.
const (
	StateRunning   = "running"
	StateDone      = "done"
	StateCancelled = "cancelled"
	StateFailed    = "failed"
)

// Session is one standing online query: a stream engine driven clip by
// clip by its own goroutine, throttled by the registry's shared worker
// pool. All mutable state lives behind mu; the changed channel is
// closed and replaced on every update so any number of long-pollers can
// wait without polling loops.
type Session struct {
	id     string
	req    CreateSessionRequest
	stream *vaq.Stream
	total  int // clips to process
	pace   time.Duration
	cancel context.CancelFunc
	// span is the session's root trace span (nil when the registry has
	// no tracer); every clip evaluation parents under it and run ends it.
	span *trace.Span
	// models is the session's resilient detection layer (nil when the
	// stream was built outside the server path); its counters feed the
	// degraded-result reporting. All reads are internally synchronized.
	models *resilience.Models
	// EXPLAIN collection (nil when the registry has no ring). The
	// collector accumulates clip/predicate attribution as the engine
	// runs; finish computes the infer/resilience deltas against the
	// start snapshots and publishes the profile to exRing. Set before
	// the session goroutine starts, read-only afterwards.
	// level reads the server's active brownout ladder level (nil when
	// the controller is unarmed); stamped on session status and the
	// finished EXPLAIN profile. Set before the goroutine starts.
	level      func() string
	ex         *explain.Collector
	exRing     *explain.Ring
	started    time.Time
	resStart   resilience.Stats
	inferStats func() infer.Stats // nil without shared inference
	inferStart infer.Stats

	mu          sync.Mutex
	changed     chan struct{}
	state       string
	clips       int
	invocations int
	seqs        vaq.Sequences
	critObj     map[string]int
	critAct     int
	failure     error

	// done closes when the session goroutine has fully exited — the
	// registry's drain and the leak tests key off it.
	done chan struct{}
}

func newSession(id string, req CreateSessionRequest, stream *vaq.Stream, total int, cancel context.CancelFunc) *Session {
	return &Session{
		id:      id,
		req:     req,
		stream:  stream,
		total:   total,
		pace:    time.Duration(req.PaceMS) * time.Millisecond,
		cancel:  cancel,
		changed: make(chan struct{}),
		state:   StateRunning,
		done:    make(chan struct{}),
	}
}

// stepHook, when non-nil, runs after every completed step. It is a test
// seam: the cancellation-race regression test uses it to cancel the
// session deterministically right after the final clip. Set it before
// any session starts and clear it after they drain.
var stepHook func(s *Session, c int)

// run drives the engine to completion or cancellation. workers is the
// registry's shared semaphore: a session holds a slot only while
// evaluating one clip, so -workers bounds engine concurrency across all
// sessions while every session still makes progress.
func (s *Session) run(ctx context.Context, workers *pool.Pool) {
	defer close(s.done)
	defer func() {
		s.mu.Lock()
		clips, state := s.clips, s.state
		s.mu.Unlock()
		s.span.SetInt("clips", int64(clips))
		s.span.SetAttr("state", state)
		s.span.End()
	}()
	var ticker *time.Ticker
	if s.pace > 0 {
		ticker = time.NewTicker(s.pace)
		defer ticker.Stop()
	}
	for c := 0; c < s.total; c++ {
		if ticker != nil {
			select {
			case <-ticker.C:
			case <-ctx.Done():
				s.finish(StateCancelled, nil)
				return
			}
		}
		if workers.Acquire(ctx) != nil {
			s.finish(StateCancelled, nil)
			return
		}
		err := s.step(c)
		workers.Release()
		if stepHook != nil {
			stepHook(s, c)
		}
		if err != nil {
			s.finish(StateFailed, err)
			return
		}
		// Consult ctx only if there is more work to do: a cancellation
		// that races the final clip must not demote a fully processed
		// session to "cancelled".
		if c+1 < s.total && ctx.Err() != nil {
			s.finish(StateCancelled, nil)
			return
		}
	}
	s.finish(StateDone, nil)
}

// step evaluates one clip and publishes the new snapshot. It is the
// session hot path the serving-overhead benchmark measures against raw
// engine calls.
func (s *Session) step(c int) error {
	if _, err := s.stream.ProcessClip(c); err != nil {
		return err
	}
	// The stream is touched only by the session goroutine; the snapshot
	// below is the sole bridge to concurrent readers.
	obj, act := s.stream.CriticalValues()
	s.mu.Lock()
	s.clips = s.stream.ClipsProcessed()
	s.invocations = s.stream.Invocations()
	s.seqs = s.stream.Results()
	if obj != nil {
		if s.critObj == nil {
			s.critObj = make(map[string]int, len(obj))
		}
		for l, k := range obj {
			s.critObj[string(l)] = k
		}
	}
	s.critAct = act
	s.broadcastLocked()
	s.mu.Unlock()
	return nil
}

func (s *Session) finish(state string, err error) {
	s.finalizeExplain()
	s.mu.Lock()
	s.state = state
	s.failure = err
	s.broadcastLocked()
	s.mu.Unlock()
}

// finalizeExplain closes out the session's EXPLAIN profile: duration,
// the infer/resilience deltas since session start, and publication to
// the /explainz ring. Runs once, on the session goroutine, as part of
// reaching a terminal state.
func (s *Session) finalizeExplain() {
	if s.ex == nil {
		return
	}
	s.ex.SetDurUS(time.Since(s.started).Microseconds())
	if s.models != nil {
		s.ex.SetResilience(resilienceDelta(s.models.Stats(), s.resStart))
	}
	if s.inferStats != nil {
		s.ex.SetInfer(inferDelta(s.inferStats(), s.inferStart))
	}
	if s.level != nil {
		s.ex.SetBrownout(s.level())
	}
	s.exRing.Add(s.ex.Profile())
}

// ExplainProfile snapshots the session's EXPLAIN profile so far (the
// infer/resilience deltas appear once the session reaches a terminal
// state); nil when collection is off.
func (s *Session) ExplainProfile() *explain.Profile {
	if s.ex == nil {
		return nil
	}
	p := s.ex.Profile()
	return &p
}

// broadcastLocked wakes every waiter; callers hold mu.
func (s *Session) broadcastLocked() {
	close(s.changed)
	s.changed = make(chan struct{})
}

// degradedCounts reads the resilience layer's degraded totals (0, 0
// without models).
func (s *Session) degradedCounts() (fallbacks int64, units int) {
	if s.models == nil {
		return 0, 0
	}
	st := s.models.Stats()
	return st.Fallbacks, st.DegradedUnits
}

// snapshot returns the current results plus the channel that will close
// on the next change.
func (s *Session) snapshot() (ResultsResponse, <-chan struct{}) {
	fallbacks, units := s.degradedCounts()
	s.mu.Lock()
	defer s.mu.Unlock()
	return ResultsResponse{
		ID:             s.id,
		State:          s.state,
		ClipsProcessed: s.clips,
		Sequences:      Ranges(s.seqs),
		Degraded:       fallbacks > 0,
		DegradedUnits:  units,
	}, s.changed
}

// WaitResults long-polls: it returns as soon as more than since clips
// are processed, the session leaves the running state, the wait elapses,
// or ctx is done — whichever comes first — and always returns the
// freshest snapshot. When ctx cut the wait short, it also returns ctx's
// error so the handler can tell a server-side deadline (504) from a
// client that went away (499); the snapshot is still valid.
func (s *Session) WaitResults(ctx context.Context, since int, wait time.Duration) (ResultsResponse, error) {
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		snap, changed := s.snapshot()
		if snap.ClipsProcessed > since || snap.State != StateRunning || wait <= 0 {
			return snap, nil
		}
		select {
		case <-changed:
		case <-deadline.C:
			snap, _ = s.snapshot()
			return snap, nil
		case <-ctx.Done():
			snap, _ = s.snapshot()
			return snap, ctx.Err()
		}
	}
}

// Info reports session status, including the engine's current critical
// values (the live view of §3.2's thresholds).
func (s *Session) Info() SessionInfo {
	var rst resilience.Stats
	if s.models != nil {
		rst = s.models.Stats()
	}
	s.mu.Lock()
	info := SessionInfo{
		ID:             s.id,
		Query:          s.req.Query,
		Workload:       s.req.Workload,
		State:          s.state,
		ClipsTotal:     s.total,
		ClipsProcessed: s.clips,
		Invocations:    s.invocations,
		Sequences:      len(s.seqs),
	}
	if s.models != nil {
		info.Degraded = rst.Fallbacks > 0
		info.DegradedUnits = rst.DegradedUnits
		info.Retries = rst.Retries
		info.Fallbacks = rst.Fallbacks
		info.Hedges = rst.Hedges
		info.FallbackHops = rst.FallbackHops
		if rst.BreakerState != resilience.StateClosed.String() {
			info.BreakerState = rst.BreakerState
		}
	}
	if s.level != nil {
		info.BrownoutLevel = s.level()
	}
	if s.failure != nil {
		info.Error = s.failure.Error()
	}
	if s.critObj != nil || s.critAct != 0 {
		cv := &CriticalValues{Objects: make(map[string]int, len(s.critObj)), Action: s.critAct}
		for l, k := range s.critObj {
			cv.Objects[l] = k
		}
		info.CriticalValues = cv
	}
	s.mu.Unlock()
	return info
}

// Cancel requests cooperative termination; the session reaches a
// terminal state promptly (it never blocks on the worker pool once
// cancelled) and Done closes when the goroutine exits.
func (s *Session) Cancel() { s.cancel() }

// Done closes when the session goroutine has exited.
func (s *Session) Done() <-chan struct{} { return s.done }
