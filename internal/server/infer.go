package server

import (
	"sync"

	"vaq/internal/infer"
	"vaq/internal/resilience"
)

// inferKey identifies one shared-inference domain. Sessions agreeing on
// all three fields observe the same deterministic simulated scene and
// the same backend profiles, so their invocations are interchangeable —
// the property that makes sharing one backend stack sound.
type inferKey struct {
	workload string
	scale    float64
	model    string
}

// inferEntry is one domain's stack, built once and shared by every
// session with its key: raw sims → micro-batcher → memo cache → fault
// injector → resilience → singleflight dedup (the flights). Sessions
// bind the flights to their own lifetime context.
type inferEntry struct {
	shared    *infer.Shared
	models    *resilience.Models
	objFlight *infer.ObjectFlight
	actFlight *infer.ActionFlight
}

// inferHub lazily builds and retains the shared-inference domains.
type inferHub struct {
	cfg     infer.Config
	mu      sync.Mutex
	entries map[inferKey]*inferEntry
}

func newInferHub(cfg infer.Config) *inferHub {
	return &inferHub{cfg: cfg, entries: map[inferKey]*inferEntry{}}
}

// entry returns the domain for key, building it through build on first
// use. build receives the domain's Shared so it can wrap the raw
// backends with the below-fault layers before the injector and
// resilience go on top.
func (h *inferHub) entry(key inferKey, build func(sh *infer.Shared) *resilience.Models) *inferEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.entries[key]; ok {
		return e
	}
	// The hub's config was validated at daemon startup (flag parsing),
	// so construction cannot fail here.
	sh := infer.MustNew(h.cfg)
	models := build(sh)
	e := &inferEntry{
		shared:    sh,
		models:    models,
		objFlight: sh.ObjectFlight(models.Det.Name(), models.Det),
		actFlight: sh.ActionFlight(models.Rec.Name(), models.Rec),
	}
	h.entries[key] = e
	return e
}

// stats aggregates every domain's counters; nil when no domain was ever
// built, so /metricsz omits the block.
func (h *inferHub) stats() *infer.Stats {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.entries) == 0 {
		return nil
	}
	var agg infer.Stats
	for _, e := range h.entries {
		agg.Add(e.shared.Stats())
	}
	return &agg
}
