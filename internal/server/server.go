package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"vaq"
	"vaq/internal/brownout"
	"vaq/internal/detect"
	"vaq/internal/explain"
	"vaq/internal/fault"
	"vaq/internal/infer"
	"vaq/internal/ingest"
	"vaq/internal/resilience"
	"vaq/internal/synth"
	"vaq/internal/trace"
	"vaq/internal/vql"
)

// httpStatusClientClosedRequest is nginx's non-standard 499: the client
// went away before the offline query finished.
const httpStatusClientClosedRequest = 499

// Config tunes a Server. The zero value serves sessions with defaults
// and rejects top-k requests (no repository).
type Config struct {
	// Repo answers POST /v1/topk; nil returns 503 for that endpoint.
	// It is opened once at startup and shared read-only across requests.
	Repo *vaq.Repository
	// MaxSessions caps concurrently running sessions (default 64).
	MaxSessions int
	// Workers bounds concurrent clip evaluations across all sessions
	// (default GOMAXPROCS).
	Workers int
	// RequestTimeout bounds session-create and top-k handlers
	// (default 30s).
	RequestTimeout time.Duration
	// MaxWait caps the ?wait= long-poll duration (default 60s).
	MaxWait time.Duration
	// Tracer records spans, pipeline counters and stage latencies for
	// GET /tracez and GET /varz. Nil gets a default tracer; vaqd passes
	// one built with a slow-query log when -slow-query is set.
	Tracer *trace.Tracer
	// FaultSchedule injects deterministic faults into every session's
	// detection backends (chaos testing, vaqd -fault); the zero schedule
	// injects nothing.
	FaultSchedule fault.Schedule
	// Resilience is the retry/deadline/breaker policy wrapped around
	// session detectors; nil uses resilience.DefaultPolicy.
	Resilience *resilience.Policy
	// ShedWait arms admission control: when the p90 worker-pool queue
	// wait over the recent window reaches ShedWait, session-create and
	// top-k requests are rejected with 503 + Retry-After instead of
	// queuing unboundedly. 0 disables shedding.
	ShedWait time.Duration
	// Brownout arms the load-regulated degradation ladder (High > 0):
	// the same p90 queue-wait signal walks the levels
	// full → no-hedge → cheap-profile → prior-only → shed with
	// hysteresis (step up at High, down at Low, at most one step per
	// Dwell), and each level reconfigures every session's resilience
	// posture in place. The ladder subsumes the binary ShedWait
	// control; both may be armed together (either can shed).
	Brownout brownout.Config
	// HedgeQuantile arms hedged requests on session backends: an
	// attempt outliving this observed latency quantile races a second
	// call, first result wins (see resilience.Policy.HedgeQuantile).
	// 0 leaves the policy's own setting.
	HedgeQuantile float64
	// LabelBreaker adds per-(backend, label) circuit breakers inside
	// the per-backend one, so a single broken label sheds only itself.
	LabelBreaker bool
	// AdaptiveRetries arms the adaptive retry budget: as the p90
	// worker-pool queue wait warms toward this threshold, session
	// retry budgets shrink linearly to zero (retries are poison under
	// overload). 0 disables.
	AdaptiveRetries time.Duration
	// FallbackChain names cheaper detector profiles (maskrcnn, yolov3,
	// ideal) tried in order for units the primary cannot serve; the
	// bgprob prior stays the implicit final hop. Validate with
	// ValidateFallbackChain before serving.
	FallbackChain []string
	// SharedInference turns on the cross-session shared-inference layer
	// (package infer): sessions of the same (workload, scale, model)
	// share one resilient backend stack fronted by singleflight dedup,
	// with the memo cache and micro-batcher below the fault injector.
	SharedInference bool
	// InferCache bounds the shared score cache in entries; 0 picks the
	// default (65536), negative disables caching (dedup only). Only
	// meaningful with SharedInference.
	InferCache int
	// BatchWindow holds the first invocation of a micro-batch open
	// waiting for same-label-set companions; 0 disables batching. Only
	// meaningful with SharedInference.
	BatchWindow time.Duration
	// BatchMax caps units per vectorized call (default 16).
	BatchMax int
	// PlanRate arms the coarse-to-fine adaptive sampling planner on
	// every session's stream: predicates are first evaluated on one
	// unit in PlanRate and only undecided clips densify (vaqd
	// -plan-rate). 0 disables planning; 1 runs the planner's single
	// dense rung (byte-identical results).
	PlanRate int
	// PlanLevels caps the densification ladder length (vaqd
	// -plan-levels); 0 means the full ladder down to stride 1.
	PlanLevels int
	// ExplainRing sizes the GET /explainz ring of recent query EXPLAIN
	// profiles: 0 picks the default (64), negative disables collection
	// entirely (sessions and top-k requests then run without
	// collectors, and explain=true requests get no profile).
	ExplainRing int
}

// DefaultExplainRing is the /explainz retention when Config.ExplainRing
// is 0.
const DefaultExplainRing = 64

// DefaultInferCache is the shared score cache capacity when
// Config.InferCache is 0.
const DefaultInferCache = 65536

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 60 * time.Second
	}
	if c.Tracer == nil {
		c.Tracer = trace.New()
	}
	if c.InferCache == 0 {
		c.InferCache = DefaultInferCache
	}
	if c.ExplainRing == 0 {
		c.ExplainRing = DefaultExplainRing
	}
	return c
}

// Server hosts the HTTP API. Build with New, mount Handler, and call
// Shutdown to drain.
type Server struct {
	cfg    Config
	reg    *Registry
	met    *metrics
	mux    *http.ServeMux
	shed   *shedWindow
	bo     *brownout.Controller       // nil unless Brownout armed
	mode   *resilience.ModeVar        // shared by every session's backends
	budget *resilience.AdaptiveBudget // nil unless AdaptiveRetries armed
	hub    *inferHub                  // nil unless SharedInference armed
	ring   *explain.Ring              // nil when ExplainRing is negative
	hist   *healthHistory
	bounds *boundRegistry // cross-process B_lo^K exchanges (shard tier)
	qseq   atomic.Int64   // top-k query id mint (q1, q2, ...)
}

// New builds a server and its routes.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		reg:    NewRegistry(cfg.MaxSessions, cfg.Workers),
		met:    newMetrics(),
		mux:    http.NewServeMux(),
		shed:   newShedWindow(cfg.ShedWait),
		ring:   explain.NewRing(cfg.ExplainRing),
		hist:   newHealthHistory(),
		bounds: newBoundRegistry(),
	}
	s.reg.SetTracer(cfg.Tracer)
	s.reg.SetExplainRing(s.ring)
	if cfg.Brownout.High > 0 {
		s.mode = &resilience.ModeVar{}
		bo, err := brownout.New(cfg.Brownout, brownout.Options{
			Tracer: cfg.Tracer,
			// Level changes flip the shared mode var, so every session's
			// backends — including the shared-inference stacks — adopt
			// the new posture on their next call.
			OnChange: func(_, to brownout.Level) { s.mode.Set(modeFor(to)) },
		})
		if err != nil {
			// vaqd validates the flag family at startup; reaching here is
			// a programming error, not an operational condition.
			panic(err)
		}
		s.bo = bo
		s.reg.SetLevelFunc(func() string { return bo.Level().String() })
	}
	if cfg.SharedInference {
		s.hub = newInferHub(infer.Config{
			CacheCapacity: cfg.InferCache,
			BatchWindow:   cfg.BatchWindow,
			BatchMax:      cfg.BatchMax,
			Tracer:        cfg.Tracer,
		})
	}
	if cfg.AdaptiveRetries > 0 {
		// The budget rides the same queue-wait signal as the shed
		// window: one pool observer feeds both.
		s.budget = resilience.NewAdaptiveBudget(cfg.AdaptiveRetries)
		s.reg.Pool().SetObserver(func(w time.Duration) {
			s.shed.observe(w)
			s.budget.Observe(w)
			s.evalBrownout()
		})
	} else {
		s.reg.Pool().SetObserver(func(w time.Duration) {
			s.shed.observe(w)
			s.evalBrownout()
		})
	}
	route := func(pattern string, h http.HandlerFunc) {
		wrapped := s.met.instrument(pattern, h)
		s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			wrapped(w, r)
			// Opportunistic, time-gated metrics-history sampling: no
			// background goroutine, one cheap clock read per request.
			s.hist.maybeSnapshot(s.healthSample)
		})
	}
	route("POST /v1/sessions", s.timed(s.handleCreateSession))
	route("GET /v1/sessions", s.handleListSessions)
	route("GET /v1/sessions/{id}", s.handleSessionStatus)
	route("GET /v1/sessions/{id}/results", s.timed(s.handleSessionResults))
	route("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	route("POST /v1/topk", s.timed(s.handleTopK))
	route("POST /v1/shard/bound", s.handleShardBound)
	route("GET /healthz", s.handleHealthz)
	route("GET /metricsz", s.handleMetricsz)
	route("GET /tracez", s.handleTracez)
	route("GET /varz", s.handleVarz)
	route("GET /explainz", s.handleExplainz)
	return s
}

// Tracer returns the server's tracer (never nil after New).
func (s *Server) Tracer() *trace.Tracer { return s.cfg.Tracer }

// Handler returns the routed handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains in-flight sessions (see Registry.Shutdown). Callers
// shut the http.Server down first so no new requests arrive mid-drain.
func (s *Server) Shutdown(ctx context.Context) error { return s.reg.Shutdown(ctx) }

// Registry exposes the session registry (status endpoints, tests).
func (s *Server) Registry() *Registry { return s.reg }

// timed attaches the request-scoped timeout to non-poll handlers.
func (s *Server) timed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeCtxErr maps a context failure onto HTTP semantics: a server-side
// deadline is 504 (the server gave up on its own timeout — the client
// should know the work was cut short), while a client that went away is
// the non-standard 499 (nobody is listening; the code only feeds
// metrics). err may wrap the pool's queue sentinels — errors.Is sees
// through them.
func writeCtxErr(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		writeErr(w, http.StatusGatewayTimeout, "deadline", err.Error(), nil)
		return
	}
	writeErr(w, httpStatusClientClosedRequest, "cancelled", err.Error(), nil)
}

// modeFor maps a brownout ladder level onto the resilience posture it
// imposes on the wrapped backends. LevelShed maps to ModePrior: new
// requests are rejected at the door, but sessions already in flight
// keep draining at the cheapest answer-bearing posture.
func modeFor(l brownout.Level) resilience.Mode {
	switch {
	case l >= brownout.LevelPrior:
		return resilience.ModePrior
	case l == brownout.LevelCheap:
		return resilience.ModeCheap
	case l == brownout.LevelNoHedge:
		return resilience.ModeNoHedge
	}
	return resilience.ModeFull
}

// evalBrownout feeds the ladder one fresh p90 reading. It runs on
// every pool observation (load rising with traffic) and on every
// admission check (so a daemon gone quiet — no pool activity — still
// steps back down as its samples age out).
func (s *Server) evalBrownout() {
	if s.bo == nil {
		return
	}
	p90, ok := s.shed.waitP90()
	s.bo.Observe(p90, ok)
}

// shedIfOverloaded applies admission control: when the brownout ladder
// sits at its shed level, or the legacy shed window says the worker
// queue is past its wait threshold, answer 503 with a Retry-After hint
// and report true so the handler returns without doing any work.
func (s *Server) shedIfOverloaded(w http.ResponseWriter) bool {
	s.evalBrownout()
	if s.bo.Level() == brownout.LevelShed {
		s.bo.Shed()
		w.Header().Set("Retry-After", strconv.Itoa(s.shed.shedRetry(s.cfg.Brownout.High)))
		writeErr(w, http.StatusServiceUnavailable, "overloaded",
			"brownout ladder at level shed; retry later", nil)
		return true
	}
	if !s.shed.overloaded() {
		return false
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.shed.shed()))
	writeErr(w, http.StatusServiceUnavailable, "overloaded",
		"worker queue wait exceeds the shed threshold; retry later", nil)
	return true
}

// writeErr emits the structured error envelope. Query errors carry the
// byte offset of the offending token when the vql layer provides one.
func writeErr(w http.ResponseWriter, status int, code, msg string, queryErr error) {
	body := ErrorBody{Code: code, Message: msg}
	if queryErr != nil {
		if pos, ok := vql.ErrPosition(queryErr); ok {
			body.Pos = &pos
		}
	}
	writeJSON(w, status, ErrorResponse{Error: body})
}

// loadWorkload resolves a synthetic workload name (q1..q12 or a movie)
// exactly as the CLIs do.
func loadWorkload(name string, scale float64) (*synth.QuerySet, error) {
	for _, id := range synth.YouTubeIDs() {
		if id == name {
			return synth.YouTubeScaled(id, vaq.DefaultGeometry(), scale)
		}
	}
	for _, m := range synth.MovieNames() {
		if m == name {
			return synth.MovieScaled(name, scale)
		}
	}
	return nil, fmt.Errorf("unknown workload %q (want q1..q12 or one of %v)", name, synth.MovieNames())
}

// ValidateFallbackChain rejects unknown profile names in a configured
// fallback chain, so vaqd fails at startup instead of per session.
func ValidateFallbackChain(names []string) error {
	for _, m := range names {
		if _, _, err := modelProfiles(m); err != nil {
			return fmt.Errorf("fallback chain: %w", err)
		}
	}
	return nil
}

func modelProfiles(model string) (detect.Profile, detect.Profile, error) {
	switch model {
	case "", "maskrcnn":
		return detect.MaskRCNN, detect.I3D, nil
	case "yolov3":
		return detect.YOLOv3, detect.I3D, nil
	case "ideal":
		return detect.IdealObject, detect.IdealAction, nil
	}
	return detect.Profile{}, detect.Profile{}, fmt.Errorf("unknown model %q (want maskrcnn, yolov3 or ideal)", model)
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if s.shedIfOverloaded(w) {
		return
	}
	var req CreateSessionRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_json", "malformed request body: "+err.Error(), nil)
		return
	}
	if req.Scale == 0 {
		req.Scale = 1
	}
	if req.Scale < 0 || req.Scale > 4 {
		writeErr(w, http.StatusBadRequest, "bad_scale", "scale must be in (0, 4]", nil)
		return
	}
	if req.MaxClips < 0 || req.PaceMS < 0 {
		writeErr(w, http.StatusBadRequest, "bad_request", "max_clips and pace_ms must be non-negative", nil)
		return
	}
	qs, err := loadWorkload(req.Workload, req.Scale)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown_workload", err.Error(), nil)
		return
	}
	objP, actP, err := modelProfiles(req.Model)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown_model", err.Error(), nil)
		return
	}
	// The query (when given) parses before any backend is built, so the
	// common validation failures never construct a model stack.
	var plan *vaq.Plan
	if req.Query != "" {
		plan, err = vaq.ParseQuery(req.Query)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid_query", err.Error(), err)
			return
		}
		if plan.Ranked {
			writeErr(w, http.StatusBadRequest, "ranked_query",
				"ORDER BY RANK queries are offline; use POST /v1/topk", nil)
			return
		}
	} else {
		// No query: run the workload's own Table 1/2 query, and echo the
		// resolved query in the session status.
		req.Query = qs.Query.String()
	}

	pol := resilience.DefaultPolicy()
	if s.cfg.Resilience != nil {
		pol = *s.cfg.Resilience
	}
	if s.cfg.HedgeQuantile > 0 {
		pol.HedgeQuantile = s.cfg.HedgeQuantile
	}
	if s.cfg.LabelBreaker {
		pol.LabelBreaker = true
	}
	var chainProfiles [][2]detect.Profile
	for _, m := range s.cfg.FallbackChain {
		objFB, actFB, err := modelProfiles(m)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "bad_fallback_chain", err.Error(), nil)
			return
		}
		chainProfiles = append(chainProfiles, [2]detect.Profile{objFB, actFB})
	}

	// Every session's backends go through the resilience layer; with the
	// default policy and no fault schedule the wrapper is transparent
	// (byte-identical results) and nearly free. The injector slots in
	// between only when vaqd -fault armed a schedule. buildModels stacks
	// one backend set bottom-up: raw sims → (infer cache/batcher when sh
	// is non-nil) → fault injector → resilience. The fallback chain hops
	// are independent cheaper backends over the same scene; the fault
	// schedule stays on the primary only.
	scene := qs.World.Scene()
	buildModels := func(sh *infer.Shared) *resilience.Models {
		fdet := detect.AsFallibleObject(detect.NewSimObjectDetector(scene, objP, nil))
		frec := detect.AsFallibleAction(detect.NewSimActionRecognizer(scene, actP, nil))
		if sh != nil {
			fdet = sh.Object(fdet)
			frec = sh.Action(frec)
		}
		if fs := s.cfg.FaultSchedule; !fs.Empty() {
			fdet = fault.NewObject(fdet, fs)
			frec = fault.NewAction(frec, fs)
		}
		ropt := resilience.Options{Tracer: s.cfg.Tracer, Budget: s.budget, Mode: s.mode}
		for _, fb := range chainProfiles {
			ropt.FallbackObjects = append(ropt.FallbackObjects,
				detect.AsFallibleObject(detect.NewSimObjectDetector(scene, fb[0], nil)))
			ropt.FallbackActions = append(ropt.FallbackActions,
				detect.AsFallibleAction(detect.NewSimActionRecognizer(scene, fb[1], nil)))
		}
		return resilience.WrapFallible(fdet, frec, pol, ropt)
	}

	meta := qs.World.Truth.Meta
	total := meta.Clips()
	if req.MaxClips > 0 {
		total = req.MaxClips
	}
	dynamic := true
	if req.Dynamic != nil {
		dynamic = *req.Dynamic
	}
	cfg := vaq.StreamConfig{
		Dynamic:      dynamic,
		HorizonClips: max(total, meta.Clips()),
		Plan:         vaq.PlanConfig{Rate: s.cfg.PlanRate, Levels: s.cfg.PlanLevels},
	}
	mkStream := func(det vaq.ObjectDetector, rec vaq.ActionRecognizer) (*vaq.Stream, error) {
		if plan != nil {
			return vaq.NewStream(plan, det, rec, meta.Geom, cfg)
		}
		return vaq.NewStreamQuery(qs.Query, det, rec, meta.Geom, cfg)
	}

	var build func(ctx context.Context) (*vaq.Stream, *resilience.Models, func() infer.Stats, error)
	if s.hub != nil {
		// Shared inference: one backend stack per (workload, scale,
		// model), fronted by the cross-session flights. Binding the
		// flights to the session context makes a deleted session abandon
		// its waits without cancelling calls other sessions share.
		entry := s.hub.entry(inferKey{req.Workload, req.Scale, req.Model}, buildModels)
		build = func(ctx context.Context) (*vaq.Stream, *resilience.Models, func() infer.Stats, error) {
			stream, err := mkStream(entry.objFlight.Bind(ctx), entry.actFlight.Bind(ctx))
			return stream, entry.models, entry.shared.Stats, err
		}
	} else {
		models := buildModels(nil)
		build = func(context.Context) (*vaq.Stream, *resilience.Models, func() infer.Stats, error) {
			stream, err := mkStream(models.Det, models.Rec)
			return stream, models, nil, err
		}
	}

	sess, err := s.reg.CreateWith(req, total, build)
	switch {
	case errors.Is(err, errTooManySessions):
		writeErr(w, http.StatusTooManyRequests, "too_many_sessions", err.Error(), nil)
		return
	case errors.Is(err, errShuttingDown):
		writeErr(w, http.StatusServiceUnavailable, "shutting_down", err.Error(), nil)
		return
	case err != nil && plan != nil:
		// A parsed plan that still fails stream construction (e.g. an
		// unsupported relation inside a disjunction) is the client's
		// query, not a server fault.
		writeErr(w, http.StatusBadRequest, "invalid_query", err.Error(), err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		return
	}
	writeJSON(w, http.StatusCreated, sess.Info())
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SessionList{Sessions: s.reg.List()})
}

func (s *Server) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	id := r.PathValue("id")
	sess, ok := s.reg.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found", fmt.Sprintf("no session %q", id), nil)
		return nil, false
	}
	return sess, true
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.session(w, r); ok {
		writeJSON(w, http.StatusOK, sess.Info())
	}
}

func (s *Server) handleSessionResults(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var wait time.Duration
	if ws := r.URL.Query().Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d < 0 {
			writeErr(w, http.StatusBadRequest, "bad_wait", "wait must be a non-negative duration (e.g. 5s)", nil)
			return
		}
		wait = min(d, s.cfg.MaxWait)
	}
	since := -1 // default: any processed clip satisfies the poll
	if ss := r.URL.Query().Get("since"); ss != "" {
		n, err := strconv.Atoi(ss)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad_since", "since must be a non-negative clip count", nil)
			return
		}
		since = n
	}
	snap, err := sess.WaitResults(r.Context(), since, wait)
	if err != nil {
		// The poll was cut short by the request context, not satisfied:
		// distinguish the server's own timeout (504) from a client that
		// hung up (499) instead of writing a snapshot nobody asked for.
		writeCtxErr(w, err)
		return
	}
	if r.URL.Query().Get("explain") == "true" {
		snap.Explain = sess.ExplainProfile()
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, ok := s.reg.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found", fmt.Sprintf("no session %q", id), nil)
		return
	}
	info := sess.Info()
	s.reg.Delete(id)
	if info.State == StateRunning {
		info.State = StateCancelled
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Repo == nil {
		writeErr(w, http.StatusServiceUnavailable, "no_repository",
			"server started without -repo; offline top-k is unavailable", nil)
		return
	}
	if s.shedIfOverloaded(w) {
		return
	}
	var req TopKRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_json", "malformed request body: "+err.Error(), nil)
		return
	}
	q := vaq.Query{Action: vaq.Label(req.Action)}
	for _, o := range req.Objects {
		q.Objects = append(q.Objects, vaq.Label(o))
	}
	k := req.K
	if req.Query != "" {
		plan, err := vaq.ParseQuery(req.Query)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid_query", err.Error(), err)
			return
		}
		sq, ok := plan.SimpleQuery()
		if !ok {
			writeErr(w, http.StatusBadRequest, "invalid_query",
				"top-k requires a conjunctive query (one action, object predicates)", nil)
			return
		}
		q = sq
		if plan.K > 0 {
			k = plan.K
		}
	}
	if k <= 0 {
		k = 5
	}
	if err := q.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_query", err.Error(), nil)
		return
	}
	if req.TimeoutMS < 0 {
		writeErr(w, http.StatusBadRequest, "bad_timeout", "timeout_ms must be non-negative", nil)
		return
	}
	if req.DegradedDiscount < 0 || req.DegradedDiscount > 1 {
		writeErr(w, http.StatusBadRequest, "bad_discount", "degraded_discount must be in [0, 1]", nil)
		return
	}
	for _, d := range req.HopDiscounts {
		if d < 0 || d > 1 {
			writeErr(w, http.StatusBadRequest, "bad_discount", "hop_discounts entries must be in [0, 1]", nil)
			return
		}
	}
	if req.DegradedDiscount > 0 && len(req.HopDiscounts) > 0 {
		writeErr(w, http.StatusBadRequest, "bad_discount",
			"degraded_discount and hop_discounts are mutually exclusive", nil)
		return
	}

	// Offline queries honour the request context and draw worker slots
	// from the registry's session pool, so online and offline work
	// compete for the same concurrency budget. The context carries the
	// server tracer: the whole run records under one "http.topk" span,
	// tagged with a minted query id so /tracez trees and the slow-query
	// log correlate with /explainz.
	qid := fmt.Sprintf("q%d", s.qseq.Add(1))
	ctx := trace.NewContext(r.Context(), s.cfg.Tracer)
	ctx, qspan := trace.Start(ctx, "http.topk")
	qspan.SetAttr("id", qid)
	qspan.SetAttr("video", req.Video)
	qspan.SetInt("k", int64(k))
	defer qspan.End()
	// Collection runs whenever the ring is enabled — explain=true only
	// gates the inline copy in the response.
	var ex *explain.Collector
	if s.ring != nil {
		ex = explain.NewCollector("topk")
		ex.SetID(qid)
		ex.SetWorkload(req.Video)
		ex.SetQuery(q.String())
	}
	qstart := time.Now()
	if ex != nil && s.bo != nil {
		ex.SetBrownout(s.bo.Level().String())
	}
	eo := vaq.ExecOptions{Ctx: ctx, Pool: s.reg.Pool(), Partial: req.Partial, DegradedDiscount: req.DegradedDiscount, HopDiscounts: req.HopDiscounts, Explain: ex}
	if req.BoundQuery != "" {
		// The query joins the cross-process bound exchange a coordinator
		// scattered it under: remote shards' progress, broadcast via
		// POST /v1/shard/bound, tightens this run's pruning floor.
		eo.Bound = s.bounds.acquire(req.BoundQuery, k)
		defer s.bounds.release(req.BoundQuery)
		qspan.SetAttr("bound_query", req.BoundQuery)
	}
	if req.TimeoutMS > 0 {
		// The per-request deadline layers inside the handler's
		// RequestTimeout context, so it can only shorten it.
		eo.Deadline = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	resp := TopKResponse{Results: []TopKEntry{}}
	if req.Video != "" {
		results, stats, err := s.cfg.Repo.TopKOpts(req.Video, q, k, eo)
		if err != nil {
			switch {
			case errors.Is(err, ingest.ErrNotIngested):
				writeErr(w, http.StatusBadRequest, "unknown_label", err.Error(), nil)
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				writeCtxErr(w, err)
			default:
				writeErr(w, http.StatusNotFound, "unknown_video", err.Error(), nil)
			}
			return
		}
		for _, res := range results {
			resp.Results = append(resp.Results, TopKEntry{
				Seq: Range{Lo: res.Seq.Lo, Hi: res.Seq.Hi}, Score: res.Score, Degraded: res.Degraded,
			})
		}
		resp.RuntimeUS = stats.Runtime.Microseconds()
		resp.CPURuntimeUS = stats.CPURuntime.Microseconds()
		resp.RandomAccesses = stats.Accesses.Random
		resp.Candidates = stats.Candidates
		resp.Incomplete = stats.Incomplete
		resp.DegradedClips = stats.DegradedClips
		s.met.observeCPU("POST /v1/topk", cpuOrWall(stats))
	} else {
		results, stats, err := s.cfg.Repo.TopKGlobalOpts(q, k, eo)
		if err != nil {
			switch {
			case errors.Is(err, ingest.ErrNotIngested):
				writeErr(w, http.StatusBadRequest, "unknown_label", err.Error(), nil)
			case errors.Is(err, vaq.ErrVideoNotFound):
				writeErr(w, http.StatusNotFound, "unknown_video", err.Error(), nil)
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				writeCtxErr(w, err)
			default:
				writeErr(w, http.StatusInternalServerError, "topk_failed", err.Error(), nil)
			}
			return
		}
		for _, res := range results {
			resp.Results = append(resp.Results, TopKEntry{
				Video: res.Video, Seq: Range{Lo: res.Seq.Lo, Hi: res.Seq.Hi}, Score: res.Score, Degraded: res.Degraded,
			})
		}
		resp.RuntimeUS = stats.Runtime.Microseconds()
		resp.CPURuntimeUS = stats.CPURuntime.Microseconds()
		resp.RandomAccesses = stats.Accesses.Random
		resp.Candidates = stats.Candidates
		resp.Incomplete = stats.Incomplete
		resp.DegradedClips = stats.DegradedClips
		s.met.observeCPU("POST /v1/topk", cpuOrWall(stats))
	}
	if ex != nil {
		ex.SetDurUS(time.Since(qstart).Microseconds())
		s.ring.Add(ex.Profile())
		if req.Explain {
			p := ex.Profile()
			resp.Explain = &p
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// cpuOrWall picks the engine CPU time when the run fanned out, falling
// back to the wall clock for single-shard runs (where they coincide).
func cpuOrWall(stats vaq.TopKStats) time.Duration {
	if stats.CPURuntime > 0 {
		return stats.CPURuntime
	}
	return stats.Runtime
}

// healthSample takes one metrics-history snapshot: cumulative request
// and 5xx totals, the shed counter, and the tracer counter catalogue.
func (s *Server) healthSample() HealthzSnapshot {
	requests, errors := s.met.totals()
	return HealthzSnapshot{
		Requests: requests,
		Errors:   errors,
		Sheds:    s.shed.Sheds(),
		Counters: s.cfg.Tracer.Counters(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Health probes also feed the history, so a quiet daemon scraped by
	// a monitor still accrues samples.
	s.hist.maybeSnapshot(s.healthSample)
	requests, errors := s.met.totals()
	resp := HealthzResponse{
		Status:       "ok",
		Requests:     requests,
		Errors:       errors,
		ShedRequests: s.shed.Sheds(),
		Overloaded:   s.shed.overloaded(),
	}
	// Windowed rates: subtract the oldest history sample still inside
	// the rolling window; before any sample exists the rates cover the
	// daemon's lifetime (WindowS 0 says so).
	if base, ok := s.hist.windowBase(); ok {
		resp.WindowS = float64(s.hist.now().UnixMilli()-base.UnixMS) / 1000
		resp.Requests = requests - base.Requests
		resp.Errors = errors - base.Errors
	}
	if resp.Requests > 0 {
		resp.ErrorRate = float64(resp.Errors) / float64(resp.Requests)
	}
	if p90, ok := s.shed.waitP90(); ok {
		resp.QueueWaitP90MS = float64(p90) / float64(time.Millisecond)
	}
	if s.bo != nil {
		s.evalBrownout()
		resp.BrownoutLevel = s.bo.Level().String()
		if s.bo.Level() == brownout.LevelShed {
			resp.Overloaded = true
		}
	}
	if resp.Overloaded {
		resp.Status = "overloaded"
	}
	hist := s.hist.snapshots()
	resp.Snapshots = len(hist)
	if r.URL.Query().Get("history") == "true" {
		resp.History = hist
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, MetricsResponse{
		Routes:         s.met.snapshot(),
		ActiveSessions: s.reg.Active(),
		TotalSessions:  s.reg.Total(),
		Resilience:     s.reg.Resilience(),
		ShedRequests:   s.shed.Sheds(),
		Brownout:       s.bo.Stats(),
		Inference:      s.hub.stats(),
		HedgeLatencies: hedgeLatencies(s.cfg.Tracer),
	})
}

// hedgeLatencies filters the tracer's stage snapshot down to the
// per-backend latency sketches the hedge delay is derived from
// (resilience.latency.<obj|act>.<backend>); nil when hedging never
// observed a round.
func hedgeLatencies(tr *trace.Tracer) map[string]trace.StageStats {
	var out map[string]trace.StageStats
	for name, st := range tr.Stages() {
		if strings.HasPrefix(name, "resilience.latency.") {
			if out == nil {
				out = map[string]trace.StageStats{}
			}
			out[name] = st
		}
	}
	return out
}

// handleTracez dumps the tracer's retained spans as parent-linked trees,
// newest-rooted last (ring order), plus the counter snapshot so a tree
// and the numbers it explains come from one endpoint.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	tr := s.cfg.Tracer
	writeJSON(w, http.StatusOK, TracezResponse{
		TotalSpans: tr.TotalSpans(),
		Retained:   len(tr.Spans()),
		Counters:   tr.Counters(),
		Trees:      tr.Trees(),
	})
}

// handleVarz emits the Prometheus-style text exposition of every
// counter and stage sketch.
func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Tracer.WriteVarz(w)
	if s.bo != nil {
		// The active ladder level as a gauge (the brownout.* counters in
		// the tracer exposition above only count transitions).
		fmt.Fprintf(w, "vaq_brownout_level %d\n", int(s.bo.Level()))
	}
}
