package server

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"

	"vaq"
)

// boundRegistry tracks the cross-process B_lo^K exchanges of in-flight
// top-k queries. A coordinator that scatters one logical query across
// many vaqd shard processes stamps every shard's TopKRequest with the
// same BoundQuery id; each shard registers an exchange under that id
// for the duration of its run, and the coordinator's periodic POST
// /v1/shard/bound broadcasts fold the fleet's best bound into it so
// the local iterator prunes against remote progress.
//
// Entries are refcounted: a hedged duplicate of the same query joins
// the existing exchange (the replicas compute identical bounds, so
// sharing is safe), and the entry disappears when the last run
// finishes. Broadcasts for unknown ids are answered found=false and
// fold nothing — the query already finished or never reached this
// shard; the coordinator just moves on.
type boundRegistry struct {
	mu sync.Mutex
	m  map[string]*boundEntry
}

type boundEntry struct {
	gb   *vaq.BoundExchange
	refs int
}

func newBoundRegistry() *boundRegistry {
	return &boundRegistry{m: map[string]*boundEntry{}}
}

// acquire joins (creating on first use) the exchange registered under
// id. Pair with release.
func (r *boundRegistry) acquire(id string, k int) *vaq.BoundExchange {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.m[id]
	if !ok {
		e = &boundEntry{gb: vaq.NewBoundExchange(k)}
		r.m[id] = e
	}
	e.refs++
	return e.gb
}

// release drops one reference; the entry is removed when none remain.
func (r *boundRegistry) release(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.m[id]
	if !ok {
		return
	}
	if e.refs--; e.refs <= 0 {
		delete(r.m, id)
	}
}

// exchange performs one broadcast round: fold the incoming bound (if
// any) into the id's exchange and report its current bound. The second
// return is false when no in-flight query is registered under id.
func (r *boundRegistry) exchange(id string, incoming *float64) (float64, bool) {
	r.mu.Lock()
	e, ok := r.m[id]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	if incoming != nil {
		e.gb.Raise(*incoming)
	}
	return e.gb.Bound(), true
}

// handleShardBound is POST /v1/shard/bound: one round of a
// coordinator's cross-shard bound broadcast (see docs/SHARDING.md).
func (s *Server) handleShardBound(w http.ResponseWriter, r *http.Request) {
	var req BoundExchangeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_json", "malformed request body: "+err.Error(), nil)
		return
	}
	if req.Query == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", "query id is required", nil)
		return
	}
	if req.Bound != nil && (math.IsNaN(*req.Bound) || math.IsInf(*req.Bound, 0)) {
		writeErr(w, http.StatusBadRequest, "bad_bound", "bound must be finite", nil)
		return
	}
	resp := BoundExchangeResponse{}
	cur, ok := s.bounds.exchange(req.Query, req.Bound)
	resp.Found = ok
	if ok && !math.IsInf(cur, -1) {
		resp.Bound = &cur
	}
	writeJSON(w, http.StatusOK, resp)
}
