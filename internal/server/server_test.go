package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"vaq"
	"vaq/internal/detect"
	"vaq/internal/synth"
)

// startServer builds a Server plus an httptest front end and registers
// cleanup that shuts both down and asserts no session goroutine leaked.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		// Cancel whatever the test left running so the drain is prompt.
		for _, info := range srv.Registry().List() {
			srv.Registry().Delete(info.ID)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		assertNoSessionGoroutines(t)
	})
	return srv, ts
}

// assertNoSessionGoroutines fails if any session goroutine survives
// shutdown (they all run (*Session).run).
func assertNoSessionGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		if !strings.Contains(stacks, "(*Session).run") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked session goroutines after Shutdown:\n%s", stacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// pollDone polls a session's results (long-polling on its clip count)
// until it leaves the running state.
func pollDone(t *testing.T, base, id string) ResultsResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	since := -1
	for {
		var res ResultsResponse
		url := fmt.Sprintf("%s/v1/sessions/%s/results?wait=2s", base, id)
		if since >= 0 {
			url += fmt.Sprintf("&since=%d", since)
		}
		if code := doJSON(t, http.MethodGet, url, nil, &res); code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		if res.State != StateRunning {
			return res
		}
		since = res.ClipsProcessed
		if time.Now().After(deadline) {
			t.Fatalf("session %s still running after 30s: %+v", id, res)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := startServer(t, Config{})
	var out HealthzResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &out); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if out.Status != "ok" {
		t.Fatalf("healthz body %+v", out)
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := startServer(t, Config{})
	var created SessionInfo
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", CreateSessionRequest{
		Workload: "q2", Scale: 0.02,
		Query: `SELECT MERGE(clipID) AS Sequence FROM (PROCESS cam PRODUCE clipID,
		        obj USING ObjectDetector, act USING ActionRecognizer)
		        WHERE act = 'blowing_leaves' AND obj.include('car')`,
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create status %d: %+v", code, created)
	}
	if created.ID == "" || created.State != StateRunning || created.ClipsTotal <= 0 {
		t.Fatalf("create response %+v", created)
	}

	res := pollDone(t, ts.URL, created.ID)
	if res.State != StateDone {
		t.Fatalf("final state %q, want done", res.State)
	}
	if res.ClipsProcessed != created.ClipsTotal {
		t.Fatalf("clips processed %d, want %d", res.ClipsProcessed, created.ClipsTotal)
	}

	var info SessionInfo
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.ID, nil, &info); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if info.Invocations <= 0 {
		t.Errorf("invocations = %d, want > 0", info.Invocations)
	}
	if info.CriticalValues == nil || info.CriticalValues.Action <= 0 || len(info.CriticalValues.Objects) == 0 {
		t.Errorf("critical values missing: %+v", info.CriticalValues)
	}

	var list SessionList
	doJSON(t, http.MethodGet, ts.URL+"/v1/sessions", nil, &list)
	if len(list.Sessions) != 1 || list.Sessions[0].ID != created.ID {
		t.Errorf("list = %+v", list)
	}

	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+created.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("delete status %d", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("status after delete = %d, want 404", code)
	}
}

// buildRepo ingests two small synthetic videos into a repository. Both
// are ingested with the union of the q2 and q4 label sets so that
// cross-repository (merged) queries find every label in every video.
func buildRepo(t testing.TB) *vaq.Repository {
	t.Helper()
	repo, err := vaq.OpenRepository(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	objects := []vaq.Label{"car", "plant", "bottle", "chair"}
	actions := []vaq.Label{"blowing_leaves", "drinking_beer"}
	for _, id := range []string{"q2", "q4"} {
		qs, err := synth.YouTubeScaled(id, vaq.DefaultGeometry(), 0.1)
		if err != nil {
			t.Fatal(err)
		}
		scene := qs.World.Scene()
		det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
		rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
		vd, err := vaq.IngestVideo(det, rec, qs.World.Truth.Meta,
			objects, actions, vaq.IngestConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.Add(id, vd); err != nil {
			t.Fatal(err)
		}
	}
	return repo
}

// TestConcurrentSessionsAndTopK is the issue's acceptance scenario: at
// least 8 online sessions plus top-k traffic served concurrently, then
// /metricsz reporting non-zero tail latencies.
func TestConcurrentSessionsAndTopK(t *testing.T) {
	repo := buildRepo(t)
	_, ts := startServer(t, Config{Repo: repo, MaxSessions: 32, Workers: 4})

	workloads := []string{"q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9", "q10"}
	var wg sync.WaitGroup
	errs := make(chan error, len(workloads)+4)
	for _, wl := range workloads {
		wg.Add(1)
		go func(wl string) {
			defer wg.Done()
			var created SessionInfo
			code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
				CreateSessionRequest{Workload: wl, Scale: 0.02}, &created)
			if code != http.StatusCreated {
				errs <- fmt.Errorf("create %s: status %d", wl, code)
				return
			}
			res := pollDone(t, ts.URL, created.ID)
			if res.State != StateDone {
				errs <- fmt.Errorf("session %s (%s) ended %q", created.ID, wl, res.State)
			}
		}(wl)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := TopKRequest{Video: "q2", Action: "blowing_leaves", Objects: []string{"car"}, K: 3}
			if i%2 == 1 {
				// Alternate: global ranked VQL across the repository.
				req = TopKRequest{Query: `SELECT MERGE(clipID) AS Sequence, RANK(act, obj)
					FROM (PROCESS repo PRODUCE clipID, obj USING ObjectTracker, act USING ActionRecognizer)
					WHERE act = 'drinking_beer' AND obj.include('bottle')
					ORDER BY RANK(act, obj) LIMIT 2`}
			}
			var out TopKResponse
			if code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk", req, &out); code != http.StatusOK {
				errs <- fmt.Errorf("topk %d: status %d", i, code)
				return
			}
			if len(out.Results) == 0 {
				errs <- fmt.Errorf("topk %d: no results", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var m MetricsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil, &m); code != http.StatusOK {
		t.Fatalf("metricsz status %d", code)
	}
	create := m.Routes["POST /v1/sessions"]
	if create.Count < int64(len(workloads)) {
		t.Errorf("create count = %d, want >= %d", create.Count, len(workloads))
	}
	if create.P50MS <= 0 || create.P99MS <= 0 {
		t.Errorf("create latency quantiles not populated: %+v", create)
	}
	results := m.Routes["GET /v1/sessions/{id}/results"]
	if results.Count == 0 || results.P50MS <= 0 || results.P99MS <= 0 {
		t.Errorf("results route metrics not populated: %+v", results)
	}
	topk := m.Routes["POST /v1/topk"]
	if topk.Count != 4 || topk.P99MS <= 0 {
		t.Errorf("topk route metrics not populated: %+v", topk)
	}
	if m.TotalSessions != len(workloads) {
		t.Errorf("total sessions = %d, want %d", m.TotalSessions, len(workloads))
	}
}

func TestLongPollReturnsPromptlyOnCancel(t *testing.T) {
	_, ts := startServer(t, Config{})
	var created SessionInfo
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", CreateSessionRequest{
		Workload: "q2", Scale: 0.02, PaceMS: 50, MaxClips: 100000,
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}

	pollDoneCh := make(chan ResultsResponse, 1)
	go func() {
		var res ResultsResponse
		doJSON(t, http.MethodGet,
			fmt.Sprintf("%s/v1/sessions/%s/results?wait=30s&since=100000", ts.URL, created.ID), nil, &res)
		pollDoneCh <- res
	}()

	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+created.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("delete status %d", code)
	}
	select {
	case res := <-pollDoneCh:
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("long poll took %v to notice cancellation", elapsed)
		}
		if res.State != StateCancelled {
			t.Errorf("long poll state %q, want cancelled", res.State)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long poll never returned after cancellation")
	}
}

func TestCreateErrors(t *testing.T) {
	_, ts := startServer(t, Config{})
	cases := []struct {
		name string
		req  any
		code int
		err  string
		pos  bool
	}{
		{"bad query syntax", CreateSessionRequest{Workload: "q2", Scale: 0.02,
			Query: `SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) WHERE act = jumping`},
			http.StatusBadRequest, "invalid_query", true},
		{"ranked query online", CreateSessionRequest{Workload: "q2", Scale: 0.02,
			Query: `SELECT MERGE(clipID), RANK(act) FROM (PROCESS v PRODUCE clipID)
			        WHERE act = 'a' ORDER BY RANK(act) LIMIT 3`},
			http.StatusBadRequest, "ranked_query", false},
		{"unknown workload", CreateSessionRequest{Workload: "nope"},
			http.StatusBadRequest, "unknown_workload", false},
		{"unknown model", CreateSessionRequest{Workload: "q2", Scale: 0.02, Model: "resnet"},
			http.StatusBadRequest, "unknown_model", false},
		{"bad scale", CreateSessionRequest{Workload: "q2", Scale: -1},
			http.StatusBadRequest, "bad_scale", false},
		{"bad json", "not json at all", http.StatusBadRequest, "bad_json", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var resp ErrorResponse
			code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", c.req, &resp)
			if code != c.code {
				t.Fatalf("status %d, want %d (%+v)", code, c.code, resp)
			}
			if resp.Error.Code != c.err {
				t.Errorf("error code %q, want %q", resp.Error.Code, c.err)
			}
			if c.pos && resp.Error.Pos == nil {
				t.Errorf("400 for a malformed query carries no position: %+v", resp.Error)
			}
		})
	}
}

func TestSessionLimit(t *testing.T) {
	_, ts := startServer(t, Config{MaxSessions: 2})
	ids := make([]string, 0, 2)
	for i := 0; i < 2; i++ {
		var created SessionInfo
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", CreateSessionRequest{
			Workload: "q2", Scale: 0.02, PaceMS: 50, MaxClips: 100000,
		}, &created)
		if code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
		ids = append(ids, created.ID)
	}
	var resp ErrorResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateSessionRequest{Workload: "q2", Scale: 0.02}, &resp); code != http.StatusTooManyRequests {
		t.Fatalf("third create status %d, want 429", code)
	}
	// Cancelling one frees a slot.
	doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+ids[0], nil, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		var created SessionInfo
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
			CreateSessionRequest{Workload: "q2", Scale: 0.02}, &created); code == http.StatusCreated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after cancellation")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestTopKWithoutRepository(t *testing.T) {
	_, ts := startServer(t, Config{})
	var resp ErrorResponse
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
		TopKRequest{Action: "smoking", K: 3}, &resp)
	if code != http.StatusServiceUnavailable || resp.Error.Code != "no_repository" {
		t.Fatalf("status %d, error %+v", code, resp.Error)
	}
}

func TestTopKUnknownVideo(t *testing.T) {
	_, ts := startServer(t, Config{Repo: buildRepo(t)})
	var resp ErrorResponse
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
		TopKRequest{Video: "nope", Action: "blowing_leaves", K: 3}, &resp)
	if code != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (%+v)", code, resp.Error)
	}
}

func TestTopKUnknownLabel(t *testing.T) {
	_, ts := startServer(t, Config{Repo: buildRepo(t)})
	// "smoking" is a valid label never ingested into the test repository:
	// a client error (400), not a server failure, on both topk paths.
	for _, video := range []string{"q2", ""} {
		var resp ErrorResponse
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/topk",
			TopKRequest{Video: video, Action: "smoking", Objects: []string{"car"}, K: 3}, &resp)
		if code != http.StatusBadRequest || resp.Error.Code != "unknown_label" {
			t.Errorf("video %q: status %d, error %+v; want 400 unknown_label", video, code, resp.Error)
		}
	}
}

func TestShutdownRejectsAndDrains(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var created SessionInfo
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", CreateSessionRequest{
		Workload: "q2", Scale: 0.02, PaceMS: 20, MaxClips: 100000,
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}

	// Short deadline: the paced session cannot finish, so Shutdown must
	// cancel it and still return with every goroutine gone.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown error %v, want deadline exceeded (drain cut short)", err)
	}
	assertNoSessionGoroutines(t)

	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateSessionRequest{Workload: "q2", Scale: 0.02}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("create after shutdown status %d, want 503", code)
	}
}
