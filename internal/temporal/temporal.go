// Package temporal composes query result sequences over time — the §7
// future-work direction of queries relating actions to one another
// ("queries involving interactions between objects and actions in the
// video feed"). Given two result-sequence sets (each produced by an
// SVAQ/SVAQD/RVAQ query), the operators pair them by temporal
// relationship:
//
//   - Then: a B-sequence starts within a bounded gap after an
//     A-sequence ends ("loading, then the truck drives off"),
//   - During: a B-sequence lies entirely inside an A-sequence,
//   - Overlap: the two sequences share at least minOverlap clips.
//
// All operators run in O(|A| + |B|) over the sorted inputs (plus output
// size) and return explicit pairs, so callers can rank or filter the
// composite events.
package temporal

import (
	"fmt"
	"sort"

	"vaq/internal/interval"
)

// Pair is one composite match.
type Pair struct {
	A, B interval.Interval
	// Gap is the number of clips strictly between A and B for Then
	// (0 = adjacent); the overlap length for Overlap; 0 for During.
	Gap int
}

func (p Pair) String() string {
	return fmt.Sprintf("%v->%v(gap %d)", p.A, p.B, p.Gap)
}

// Then pairs each sequence of a with the b-sequences that start after a
// ends, within maxGap clips (gap 0 means b starts immediately after a).
// Inputs must be normalized interval sets; output pairs are ordered by
// (A.Lo, B.Lo).
func Then(a, b interval.Set, maxGap int) []Pair {
	if maxGap < 0 {
		return nil
	}
	var out []Pair
	j := 0
	for _, av := range a {
		// First b starting after av ends.
		for j < len(b) && b[j].Lo <= av.Hi {
			j++
		}
		for k := j; k < len(b); k++ {
			gap := b[k].Lo - av.Hi - 1
			if gap > maxGap {
				break
			}
			out = append(out, Pair{A: av, B: b[k], Gap: gap})
		}
	}
	return out
}

// During pairs each b-sequence with the a-sequence that fully contains
// it.
func During(a, b interval.Set) []Pair {
	var out []Pair
	i := 0
	for _, bv := range b {
		for i < len(a) && a[i].Hi < bv.Hi {
			i++
		}
		if i < len(a) && a[i].Lo <= bv.Lo && bv.Hi <= a[i].Hi {
			out = append(out, Pair{A: a[i], B: bv})
		}
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x].A.Lo != out[y].A.Lo {
			return out[x].A.Lo < out[y].A.Lo
		}
		return out[x].B.Lo < out[y].B.Lo
	})
	return out
}

// Overlap pairs sequences of a and b sharing at least minOverlap clips;
// Gap reports the overlap length.
func Overlap(a, b interval.Set, minOverlap int) []Pair {
	if minOverlap < 1 {
		minOverlap = 1
	}
	var out []Pair
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		inter := a[i].Intersect(b[j])
		if n := inter.Len(); n >= minOverlap {
			out = append(out, Pair{A: a[i], B: b[j], Gap: n})
		}
		if a[i].Hi < b[j].Hi {
			i++
		} else {
			j++
		}
	}
	return out
}

// Spans merges each pair into the single clip range it covers (from the
// start of A to the end of B), normalized — useful for reporting a
// composite event as one sequence.
func Spans(pairs []Pair) interval.Set {
	ivs := make([]interval.Interval, len(pairs))
	for i, p := range pairs {
		lo, hi := p.A.Lo, p.B.Hi
		if p.B.Lo < lo {
			lo = p.B.Lo
		}
		if p.A.Hi > hi {
			hi = p.A.Hi
		}
		ivs[i] = interval.Interval{Lo: lo, Hi: hi}
	}
	return interval.Normalize(ivs)
}
