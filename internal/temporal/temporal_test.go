package temporal

import (
	"math/rand"
	"testing"

	"vaq/internal/interval"
)

func TestThen(t *testing.T) {
	a := interval.Set{{Lo: 0, Hi: 4}, {Lo: 20, Hi: 24}}
	b := interval.Set{{Lo: 5, Hi: 8}, {Lo: 10, Hi: 12}, {Lo: 30, Hi: 31}}
	got := Then(a, b, 5)
	want := []Pair{
		{A: interval.Interval{Lo: 0, Hi: 4}, B: interval.Interval{Lo: 5, Hi: 8}, Gap: 0},
		{A: interval.Interval{Lo: 0, Hi: 4}, B: interval.Interval{Lo: 10, Hi: 12}, Gap: 5},
		{A: interval.Interval{Lo: 20, Hi: 24}, B: interval.Interval{Lo: 30, Hi: 31}, Gap: 5},
	}
	if len(got) != len(want) {
		t.Fatalf("Then = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestThenZeroGapOnly(t *testing.T) {
	a := interval.Set{{Lo: 0, Hi: 4}}
	b := interval.Set{{Lo: 5, Hi: 6}, {Lo: 8, Hi: 9}}
	got := Then(a, b, 0)
	if len(got) != 1 || got[0].B.Lo != 5 {
		t.Fatalf("Then maxGap=0 = %v", got)
	}
	if Then(a, b, -1) != nil {
		t.Fatal("negative gap should yield nil")
	}
}

func TestThenIgnoresOverlapping(t *testing.T) {
	a := interval.Set{{Lo: 0, Hi: 10}}
	b := interval.Set{{Lo: 5, Hi: 15}} // starts inside a: not "then"
	if got := Then(a, b, 100); len(got) != 0 {
		t.Fatalf("overlapping b treated as following: %v", got)
	}
}

func TestDuring(t *testing.T) {
	a := interval.Set{{Lo: 0, Hi: 20}, {Lo: 40, Hi: 60}}
	b := interval.Set{{Lo: 5, Hi: 10}, {Lo: 18, Hi: 25}, {Lo: 45, Hi: 60}}
	got := During(a, b)
	if len(got) != 2 {
		t.Fatalf("During = %v", got)
	}
	if got[0].B != (interval.Interval{Lo: 5, Hi: 10}) || got[1].B != (interval.Interval{Lo: 45, Hi: 60}) {
		t.Fatalf("During pairs = %v", got)
	}
}

func TestOverlap(t *testing.T) {
	a := interval.Set{{Lo: 0, Hi: 10}, {Lo: 20, Hi: 30}}
	b := interval.Set{{Lo: 8, Hi: 22}}
	got := Overlap(a, b, 3)
	if len(got) != 2 {
		t.Fatalf("Overlap = %v", got)
	}
	if got[0].Gap != 3 || got[1].Gap != 3 {
		t.Fatalf("overlap lengths = %v", got)
	}
	if got2 := Overlap(a, b, 4); len(got2) != 0 {
		t.Fatalf("minOverlap not honored: %v", got2)
	}
	// minOverlap floor at 1.
	if got3 := Overlap(a, b, 0); len(got3) != 2 {
		t.Fatalf("minOverlap floor: %v", got3)
	}
}

func TestSpans(t *testing.T) {
	pairs := []Pair{
		{A: interval.Interval{Lo: 0, Hi: 4}, B: interval.Interval{Lo: 6, Hi: 9}},
		{A: interval.Interval{Lo: 8, Hi: 12}, B: interval.Interval{Lo: 13, Hi: 14}},
	}
	got := Spans(pairs)
	want := interval.Set{{Lo: 0, Hi: 14}}
	if !got.Equal(want) {
		t.Fatalf("Spans = %v, want %v", got, want)
	}
	if len(Spans(nil)) != 0 {
		t.Fatal("empty spans")
	}
}

// Property: Then against a quadratic oracle on random inputs.
func TestPropThenMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 300; trial++ {
		a := randomSet(rng)
		b := randomSet(rng)
		maxGap := rng.Intn(20)
		got := Then(a, b, maxGap)
		var want []Pair
		for _, av := range a {
			for _, bv := range b {
				if bv.Lo > av.Hi && bv.Lo-av.Hi-1 <= maxGap {
					want = append(want, Pair{A: av, B: bv, Gap: bv.Lo - av.Hi - 1})
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d pairs, want %d (a=%v b=%v gap=%d)", trial, len(got), len(want), a, b, maxGap)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d pair %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

func randomSet(rng *rand.Rand) interval.Set {
	n := rng.Intn(6)
	ivs := make([]interval.Interval, n)
	for i := range ivs {
		lo := rng.Intn(150)
		ivs[i] = interval.Interval{Lo: lo, Hi: lo + rng.Intn(15)}
	}
	return interval.Normalize(ivs)
}

func TestPairString(t *testing.T) {
	p := Pair{A: interval.Interval{Lo: 1, Hi: 2}, B: interval.Interval{Lo: 4, Hi: 5}, Gap: 1}
	if p.String() == "" {
		t.Fatal("empty string")
	}
}
