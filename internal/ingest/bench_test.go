package ingest

import (
	"fmt"
	"runtime"
	"testing"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/video"
)

// benchScene is a larger world than the test scene, so the per-clip
// model invocations dominate and the worker sweep is meaningful.
func benchScene() *detect.Scene {
	geom := video.DefaultGeometry()
	meta := video.Meta{Name: "bench", Frames: 50000, Geom: geom} // 1000 clips
	truth := annot.NewVideo(meta)
	truth.AddAction("run", interval.Set{{Lo: 400, Hi: 2399}})
	truth.AddObject("car", interval.Set{{Lo: 2000, Hi: 7999}})
	truth.AddObject("dog", interval.Set{{Lo: 30000, Hi: 33999}})
	return &detect.Scene{Truth: truth, Seed: 7}
}

// BenchmarkIngestWorkers sweeps the ingestion worker pool from serial
// to NumCPU; the ratio of the ns/op columns is the ingestion speedup.
func BenchmarkIngestWorkers(b *testing.B) {
	scene := benchScene()
	workerCounts := []int{1, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
				rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
				if _, err := Video(det, rec, scene.Truth.Meta,
					scene.Truth.ObjectLabels(), scene.Truth.ActionLabels(), Config{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
