// Package ingest implements the ingestion phase of the offline case
// (§4.2). Each video is processed once, in a query-independent manner:
// for every object and action label the deployed models support, the
// phase materializes
//
//   - a clip score table table_l = {cid, score} ordered by score, with
//     the clip score computed by the scoring function h over all raw
//     detection scores of the label in the clip (Equations 7–8), and
//   - the label's individual sequences P_l — maximal runs of clips with
//     positive indicators, decided by the same scan-statistics machinery
//     the online case uses (SVAQD per label).
//
// The resulting metadata answers any ad-hoc query at query time (package
// rvaq) without touching the video again.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/plan"
	"vaq/internal/score"
	"vaq/internal/svaq"
	"vaq/internal/tables"
	"vaq/internal/trace"
	"vaq/internal/video"
)

// ErrNotIngested reports that a queried label has no materialized
// metadata in a video. Callers distinguish it from infrastructure
// failures with errors.Is; the ingested label set is fixed at ingest
// time, so retrying the same query cannot succeed.
var ErrNotIngested = errors.New("not ingested")

// Config tunes the ingestion phase.
type Config struct {
	// Thresholds are T_obj / T_act used for the prediction indicators;
	// zero value uses detect.DefaultThresholds.
	Thresholds detect.Thresholds
	// Alpha is the scan-statistics significance level (default 0.05).
	Alpha float64
	// KernelU is the SVAQD kernel scale in frames (default 4000).
	KernelU float64
	// Score is the scoring scheme; the zero value uses score.Default().
	Score score.Functions
	// TrackerIoU and TrackerMaxAge parameterize the object tracker used
	// to assign track identifiers during ingestion (defaults 0.3 / 15).
	TrackerIoU    float64
	TrackerMaxAge int
	// Workers parallelizes the model-invocation stage of ingestion
	// across clips (the dominant cost, §5.2). The statistics and
	// tracking stages stay sequential, so results are identical to a
	// serial run. 0 or 1 means serial.
	Workers int
	// Plan arms the coarse-to-fine adaptive sampling planner: each
	// clip's units are scored sparsely (1 in Plan.Rate) and densified
	// only while some label's indicator is still undecided by the scan-
	// statistic rules. Partially sampled clips materialize lower-bound
	// table scores, recorded in VideoData.Plan so the query phase keeps
	// its bounds sound (see docs/PLANNER.md); the bound arithmetic
	// assumes the additive scoring scheme h (the default). Planned
	// ingestion interleaves inference with the statistics, so it runs
	// sequentially — Workers is ignored. The zero value is a dense
	// ingest; Rate 1 runs the planner's dense rung, byte-identical to
	// dense.
	Plan plan.Config
}

func (c Config) withDefaults() Config {
	if c.Thresholds == (detect.Thresholds{}) {
		c.Thresholds = detect.DefaultThresholds()
	}
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.KernelU == 0 {
		c.KernelU = 4000
	}
	if c.Score.H == nil {
		c.Score = score.Default()
	}
	return c
}

// clipWork carries one clip's raw model outputs from the (possibly
// parallel) inference stage to the sequential statistics stage.
type clipWork struct {
	frameDets  [][]detect.Detection
	shotScores [][]detect.ActionScore
}

// VideoData is the materialized metadata of one ingested video.
type VideoData struct {
	Meta video.Meta
	// ObjTables / ActTables map each supported label to its clip score
	// table. Clips whose label score is zero are omitted (sparse
	// tables); a random access for a missing clip yields score 0.
	ObjTables map[annot.Label]tables.Table
	ActTables map[annot.Label]tables.Table
	// ObjSeqs / ActSeqs are the individual sequences P_l per label,
	// as clip-id interval sets.
	ObjSeqs map[annot.Label]interval.Set
	ActSeqs map[annot.Label]interval.Set
	// TracksOpened is the number of track identifiers the tracker
	// issued over the whole video.
	TracksOpened int
	// DegradedFrames / DegradedShots are the frame and shot indices
	// whose model outputs were served degraded during ingestion (the
	// resilience fallback chain answered instead of the primary
	// backend). Sorted, deduplicated; empty after a clean ingest. They
	// persist with the repository so offline queries can discount
	// scores derived from degraded units.
	DegradedFrames []int
	DegradedShots  []int
	// DegradedFrameHops / DegradedShotHops map each degraded unit to
	// the 1-based fallback-chain hop that served it (1..len(chain) are
	// the configured profiles, len(chain)+1 the prior sampler) — the
	// per-unit quality record hop-aware score discounting reads. Nil
	// for clean ingests and for repositories written before hops were
	// persisted; such legacy units carry hop 0 ("unknown") and are
	// discounted at the table's worst entry.
	DegradedFrameHops map[int]int
	DegradedShotHops  map[int]int
	// Plan records the adaptive-sampling state of a planned ingest
	// (which clips hold lower-bound scores and how loose they can be);
	// nil after a dense — or fully densified — ingest.
	Plan *PlanInfo
}

// DegradedUnits flattens a degraded unit→hop map (the shape the
// resilience layer reports) into the sorted index list VideoData
// persists.
func DegradedUnits(m map[int]int) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for u := range m {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// SetDegradedFrames records the degraded frame set from a resilience
// hop map (Detector.DegradedHops): the sorted index list plus the
// per-unit hops, kept in lockstep so the manifest never persists one
// without the other.
func (vd *VideoData) SetDegradedFrames(hops map[int]int) {
	vd.DegradedFrames = DegradedUnits(hops)
	vd.DegradedFrameHops = copyHops(hops)
}

// SetDegradedShots mirrors SetDegradedFrames for shots
// (Recognizer.DegradedHops).
func (vd *VideoData) SetDegradedShots(hops map[int]int) {
	vd.DegradedShots = DegradedUnits(hops)
	vd.DegradedShotHops = copyHops(hops)
}

func copyHops(m map[int]int) map[int]int {
	if len(m) == 0 {
		return nil
	}
	out := make(map[int]int, len(m))
	for u, hop := range m {
		out[u] = hop
	}
	return out
}

// DegradedClips maps the degraded frame and shot sets onto the clips
// whose materialized scores they fed (frame → clip via the clip length,
// shot → clip via shots-per-clip). Nil when the video ingested cleanly.
// The map is built afresh per call; query executions cache it.
func (vd *VideoData) DegradedClips() map[int32]bool {
	if len(vd.DegradedFrames) == 0 && len(vd.DegradedShots) == 0 {
		return nil
	}
	g := vd.Meta.Geom
	out := make(map[int32]bool, len(vd.DegradedFrames)+len(vd.DegradedShots))
	for _, f := range vd.DegradedFrames {
		out[int32(g.ClipOfFrame(video.FrameIdx(f)))] = true
	}
	for _, s := range vd.DegradedShots {
		out[int32(g.ClipOfShot(video.ShotIdx(s)))] = true
	}
	return out
}

// DegradedClipHops maps each degraded clip to the worst (highest)
// fallback hop among the degraded units that fed its scores — the
// pessimistic choice, since a clip is only as trustworthy as its least
// trustworthy input. Units recorded without hop information (legacy
// manifests) contribute hop 0, which discount tables treat as
// "unknown, assume the worst". Nil when the video ingested cleanly.
func (vd *VideoData) DegradedClipHops() map[int32]int {
	if len(vd.DegradedFrames) == 0 && len(vd.DegradedShots) == 0 {
		return nil
	}
	g := vd.Meta.Geom
	out := make(map[int32]int, len(vd.DegradedFrames)+len(vd.DegradedShots))
	note := func(cid int32, hop int) {
		old, seen := out[cid]
		switch {
		case !seen:
			out[cid] = hop
		case old == 0 || hop == 0:
			out[cid] = 0 // an unknown hop anywhere taints the clip
		case hop > old:
			out[cid] = hop
		}
	}
	for _, f := range vd.DegradedFrames {
		note(int32(g.ClipOfFrame(video.FrameIdx(f))), vd.DegradedFrameHops[f])
	}
	for _, s := range vd.DegradedShots {
		note(int32(g.ClipOfShot(video.ShotIdx(s))), vd.DegradedShotHops[s])
	}
	return out
}

// Video ingests one video: it runs the object detector on every frame
// (for all objLabels), the tracker over the detections, and the action
// recognizer on every shot (for all actLabels), and materializes the
// per-label tables and individual sequences.
func Video(det detect.ObjectDetector, rec detect.ActionRecognizer, meta video.Meta, objLabels, actLabels []annot.Label, cfg Config) (*VideoData, error) {
	return VideoCtx(context.Background(), det, rec, meta, objLabels, actLabels, cfg)
}

// VideoCtx is Video with cancellation: the (possibly parallel) model-
// invocation stage checks ctx between clips and the whole ingestion
// returns ctx's error once it fires.
func VideoCtx(ctx context.Context, det detect.ObjectDetector, rec detect.ActionRecognizer, meta video.Meta, objLabels, actLabels []annot.Label, cfg Config) (*VideoData, error) {
	if err := meta.Geom.Validate(); err != nil {
		return nil, err
	}
	if len(objLabels) > 0 && det == nil {
		return nil, fmt.Errorf("ingest: object labels given but no detector")
	}
	if len(actLabels) > 0 && rec == nil {
		return nil, fmt.Errorf("ingest: action labels given but no recognizer")
	}
	if err := cfg.Plan.Validate(); err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	cfg = cfg.withDefaults()
	geom := meta.Geom
	nclips := meta.Clips()
	if nclips == 0 {
		return nil, fmt.Errorf("ingest: video %q has no whole clip", meta.Name)
	}

	tr := trace.FromContext(ctx)
	ctx, vspan := trace.Start(ctx, "ingest.video")
	vspan.SetAttr("video", meta.Name)
	vspan.SetInt("clips", int64(nclips))
	defer vspan.End()
	cFrames := tr.Counter("detect.frame_invocations")
	cShots := tr.Counter("detect.shot_invocations")
	tr.Counter("ingest.videos").Add(1)
	tr.Counter("ingest.clips").Add(int64(nclips))

	// Per-label scan-statistics trackers (dynamic, as §4.2 prescribes:
	// "utilizing algorithm SVAQD ... determine the positive clips").
	objTrk := map[annot.Label]*svaq.LabelTracker{}
	actTrk := map[annot.Label]*svaq.LabelTracker{}
	for _, l := range objLabels {
		lt, err := svaq.NewLabelTracker(svaq.TrackerConfig{
			UnitsPerClip: geom.ClipLen(), HorizonClips: nclips,
			Alpha: cfg.Alpha, P0: 1e-4, Dynamic: true, KernelU: cfg.KernelU,
		})
		if err != nil {
			return nil, fmt.Errorf("ingest: object %q: %w", l, err)
		}
		objTrk[l] = lt
	}
	actKernel := cfg.KernelU / float64(geom.ShotLen)
	if actKernel < 1 {
		actKernel = 1
	}
	for _, l := range actLabels {
		lt, err := svaq.NewLabelTracker(svaq.TrackerConfig{
			UnitsPerClip: geom.ShotsPerClip, HorizonClips: nclips,
			Alpha: cfg.Alpha, P0: 1e-4, Dynamic: true, KernelU: actKernel,
		})
		if err != nil {
			return nil, fmt.Errorf("ingest: action %q: %w", l, err)
		}
		actTrk[l] = lt
	}

	if cfg.Plan.Enabled() {
		return videoPlanned(ctx, det, rec, meta, objLabels, actLabels, cfg, objTrk, actTrk)
	}

	// Stage 1 — model inference per clip, the dominant cost (§5.2):
	// parallel when cfg.Workers > 1. The simulated models are
	// deterministic per (seed, label, unit), so parallel and serial
	// runs produce identical detections.
	work := make([]clipWork, nclips)
	inferClip := func(c int) {
		w := &work[c]
		frameLo, frameHi := geom.FrameRangeOfClip(video.ClipIdx(c))
		w.frameDets = make([][]detect.Detection, 0, int(frameHi-frameLo))
		for v := frameLo; v < frameHi; v++ {
			w.frameDets = append(w.frameDets, det.Detect(v, objLabels))
		}
		cFrames.Add(int64(frameHi-frameLo) * int64(len(objLabels)))
		shotLo, shotHi := geom.ShotRangeOfClip(video.ClipIdx(c))
		for s := shotLo; s < shotHi; s++ {
			w.shotScores = append(w.shotScores, rec.Recognize(s, actLabels))
		}
		cShots.Add(int64(shotHi-shotLo) * int64(len(actLabels)))
	}
	_, inferSpan := trace.Start(ctx, "ingest.infer")
	if cfg.Workers > 1 {
		var wg sync.WaitGroup
		next := make(chan int)
		for i := 0; i < cfg.Workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// On cancellation workers keep draining the feed (without
				// inferring) so the feeder never blocks on a dead pool.
				for c := range next {
					if ctx.Err() == nil {
						inferClip(c)
					}
				}
			}()
		}
		for c := 0; c < nclips; c++ {
			next <- c
		}
		close(next)
		wg.Wait()
	} else {
		for c := 0; c < nclips; c++ {
			if err := ctx.Err(); err != nil {
				inferSpan.End()
				return nil, fmt.Errorf("ingest: video %q: %w", meta.Name, err)
			}
			inferClip(c)
		}
	}
	inferSpan.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("ingest: video %q: %w", meta.Name, err)
	}

	// Stage 2 — sequential: the tracker (stateful across frames) and
	// the per-label statistics (stateful across clips).
	_, statsSpan := trace.Start(ctx, "ingest.stats")
	defer statsSpan.End()
	tracker := detect.NewTracker(cfg.TrackerIoU, cfg.TrackerMaxAge)
	objRows := map[annot.Label][]tables.Row{}
	actRows := map[annot.Label][]tables.Row{}
	objInd := map[annot.Label][]bool{}
	actInd := map[annot.Label][]bool{}

	rawScores := map[annot.Label][]float64{}
	counts := map[annot.Label]int{}
	for c := 0; c < nclips; c++ {
		w := &work[c]
		for _, l := range objLabels {
			rawScores[l] = rawScores[l][:0]
			counts[l] = 0
		}
		frameLo, _ := geom.FrameRangeOfClip(video.ClipIdx(c))
		for off, dets := range w.frameDets {
			dets = tracker.Update(frameLo+video.FrameIdx(off), dets)
			seen := map[annot.Label]bool{}
			for _, d := range dets {
				rawScores[d.Label] = append(rawScores[d.Label], d.Score)
				if d.Score >= cfg.Thresholds.Object {
					seen[d.Label] = true
				}
			}
			for l := range seen {
				counts[l]++
			}
		}
		for _, l := range objLabels {
			if s := cfg.Score.H.CombineLabel(rawScores[l]); s > 0 {
				objRows[l] = append(objRows[l], tables.Row{CID: int32(c), Score: s})
			}
			pos, err := objTrk[l].ObserveClip(counts[l])
			if err != nil {
				return nil, fmt.Errorf("ingest: object %q: %w", l, err)
			}
			objInd[l] = append(objInd[l], pos)
		}

		for _, l := range actLabels {
			rawScores[l] = rawScores[l][:0]
			counts[l] = 0
		}
		for _, scores := range w.shotScores {
			for _, a := range scores {
				rawScores[a.Label] = append(rawScores[a.Label], a.Score)
				if a.Score >= cfg.Thresholds.Action {
					counts[a.Label]++
				}
			}
		}
		for _, l := range actLabels {
			if s := cfg.Score.H.CombineLabel(rawScores[l]); s > 0 {
				actRows[l] = append(actRows[l], tables.Row{CID: int32(c), Score: s})
			}
			pos, err := actTrk[l].ObserveClip(counts[l])
			if err != nil {
				return nil, fmt.Errorf("ingest: action %q: %w", l, err)
			}
			actInd[l] = append(actInd[l], pos)
		}
		work[c] = clipWork{} // release the clip's detections
	}

	vd := &VideoData{
		Meta:         meta,
		ObjTables:    map[annot.Label]tables.Table{},
		ActTables:    map[annot.Label]tables.Table{},
		ObjSeqs:      map[annot.Label]interval.Set{},
		ActSeqs:      map[annot.Label]interval.Set{},
		TracksOpened: tracker.TracksOpened(),
	}
	for _, l := range objLabels {
		vd.ObjTables[l] = tables.NewMemTable(string(l), objRows[l])
		vd.ObjSeqs[l] = interval.FromIndicators(objInd[l])
	}
	for _, l := range actLabels {
		vd.ActTables[l] = tables.NewMemTable(string(l), actRows[l])
		vd.ActSeqs[l] = interval.FromIndicators(actInd[l])
	}
	return vd, nil
}

// CandidateSequences computes P_q = P_a ⊗ P_o1 ⊗ ... ⊗ P_oI
// (Equation 12) for a query against this video's materialized individual
// sequences.
func (vd *VideoData) CandidateSequences(q annot.Query) (interval.Set, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	var sets []interval.Set
	if q.Action != "" {
		s, ok := vd.ActSeqs[q.Action]
		if !ok {
			return nil, fmt.Errorf("ingest: action %q %w for video %q", q.Action, ErrNotIngested, vd.Meta.Name)
		}
		sets = append(sets, s)
	}
	for _, o := range q.Objects {
		s, ok := vd.ObjSeqs[o]
		if !ok {
			return nil, fmt.Errorf("ingest: object %q %w for video %q", o, ErrNotIngested, vd.Meta.Name)
		}
		sets = append(sets, s)
	}
	return interval.IntersectAll(sets...), nil
}

// QueryTables returns the clip score tables of the query's predicates:
// the action table (nil if the query has no action) and the object
// tables in query order.
func (vd *VideoData) QueryTables(q annot.Query) (act tables.Table, objs []tables.Table, err error) {
	if q.Action != "" {
		t, ok := vd.ActTables[q.Action]
		if !ok {
			return nil, nil, fmt.Errorf("ingest: action %q %w for video %q", q.Action, ErrNotIngested, vd.Meta.Name)
		}
		act = t
	}
	for _, o := range q.Objects {
		t, ok := vd.ObjTables[o]
		if !ok {
			return nil, nil, fmt.Errorf("ingest: object %q %w for video %q", o, ErrNotIngested, vd.Meta.Name)
		}
		objs = append(objs, t)
	}
	return act, objs, nil
}
