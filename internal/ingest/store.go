package ingest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"vaq/internal/annot"
	"vaq/internal/interval"
	"vaq/internal/tables"
	"vaq/internal/video"
)

// Repository directory layout, one directory per video:
//
//	<dir>/<video>/manifest.json          meta + individual sequences
//	<dir>/<video>/obj_<label>.tbl        object clip score tables
//	<dir>/<video>/act_<label>.tbl        action clip score tables
//
// Adding a video is writing its directory; removing it is deleting the
// directory — the per-video isolation the paper's table design enables.

// manifest is the JSON-serialized part of VideoData.
type manifest struct {
	Name    string                    `json:"name"`
	Frames  int                       `json:"frames"`
	Geom    video.Geometry            `json:"geometry"`
	ObjSeqs map[string][]intervalJSON `json:"object_sequences"`
	ActSeqs map[string][]intervalJSON `json:"action_sequences"`
	Tracks  int                       `json:"tracks_opened"`
	// DegradedFrames / DegradedShots persist the units the resilience
	// fallback chain served during ingestion (absent for clean ingests).
	DegradedFrames []int `json:"degraded_frames,omitempty"`
	DegradedShots  []int `json:"degraded_shots,omitempty"`
	// DegradedFrameHops / DegradedShotHops persist each degraded
	// unit's fallback hop (JSON object keys are strings, so the int
	// unit indices round-trip through strconv like the plan's clip
	// ids). Absent in pre-hop manifests: those units load with hop 0,
	// "unknown".
	DegradedFrameHops map[string]int `json:"degraded_frame_hops,omitempty"`
	DegradedShotHops  map[string]int `json:"degraded_shot_hops,omitempty"`
	// Plan persists the adaptive-sampling state of a planned ingest
	// (absent for dense ingests). JSON object keys are strings, so the
	// int32 clip ids round-trip through strconv in planToJSON.
	Plan *planJSON `json:"plan,omitempty"`
}

// planJSON mirrors PlanInfo with string clip-id keys for JSON.
type planJSON struct {
	Rate          int            `json:"rate"`
	Levels        int            `json:"levels,omitempty"`
	ObjUnitCap    float64        `json:"obj_unit_cap"`
	ActUnitCap    float64        `json:"act_unit_cap"`
	MissingFrames map[string]int `json:"missing_frames,omitempty"`
	MissingShots  map[string]int `json:"missing_shots,omitempty"`
}

func planToJSON(p *PlanInfo) *planJSON {
	if p.Empty() {
		return nil
	}
	out := &planJSON{Rate: p.Rate, Levels: p.Levels, ObjUnitCap: p.ObjUnitCap, ActUnitCap: p.ActUnitCap}
	if len(p.MissingFrames) > 0 {
		out.MissingFrames = make(map[string]int, len(p.MissingFrames))
		for cid, n := range p.MissingFrames {
			out.MissingFrames[strconv.Itoa(int(cid))] = n
		}
	}
	if len(p.MissingShots) > 0 {
		out.MissingShots = make(map[string]int, len(p.MissingShots))
		for cid, n := range p.MissingShots {
			out.MissingShots[strconv.Itoa(int(cid))] = n
		}
	}
	return out
}

func planFromJSON(p *planJSON) (*PlanInfo, error) {
	if p == nil {
		return nil, nil
	}
	out := &PlanInfo{Rate: p.Rate, Levels: p.Levels, ObjUnitCap: p.ObjUnitCap, ActUnitCap: p.ActUnitCap,
		MissingFrames: map[int32]int{}, MissingShots: map[int32]int{}}
	for s, n := range p.MissingFrames {
		cid, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("ingest: plan clip id %q: %w", s, err)
		}
		out.MissingFrames[int32(cid)] = n
	}
	for s, n := range p.MissingShots {
		cid, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("ingest: plan clip id %q: %w", s, err)
		}
		out.MissingShots[int32(cid)] = n
	}
	return out, nil
}

func hopsToJSON(m map[int]int) map[string]int {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int, len(m))
	for u, hop := range m {
		out[strconv.Itoa(u)] = hop
	}
	return out
}

func hopsFromJSON(m map[string]int) (map[int]int, error) {
	if len(m) == 0 {
		return nil, nil
	}
	out := make(map[int]int, len(m))
	for s, hop := range m {
		u, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("ingest: degraded unit index %q: %w", s, err)
		}
		out[u] = hop
	}
	return out, nil
}

type intervalJSON struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

func seqsToJSON(m map[annot.Label]interval.Set) map[string][]intervalJSON {
	out := make(map[string][]intervalJSON, len(m))
	for l, s := range m {
		ivs := make([]intervalJSON, len(s))
		for i, iv := range s {
			ivs[i] = intervalJSON{Lo: iv.Lo, Hi: iv.Hi}
		}
		out[string(l)] = ivs
	}
	return out
}

func seqsFromJSON(m map[string][]intervalJSON) map[annot.Label]interval.Set {
	out := make(map[annot.Label]interval.Set, len(m))
	for l, ivs := range m {
		s := make([]interval.Interval, len(ivs))
		for i, iv := range ivs {
			s[i] = interval.Interval{Lo: iv.Lo, Hi: iv.Hi}
		}
		out[annot.Label(l)] = interval.Normalize(s)
	}
	return out
}

// Save persists the video's metadata under dir (created if needed).
// Tables must be MemTables (fresh from Video); loading them back yields
// FileTables that read rows from disk.
func (vd *VideoData) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ingest: mkdir %s: %w", dir, err)
	}
	man := manifest{
		Name:    vd.Meta.Name,
		Frames:  vd.Meta.Frames,
		Geom:    vd.Meta.Geom,
		ObjSeqs: seqsToJSON(vd.ObjSeqs),
		ActSeqs: seqsToJSON(vd.ActSeqs),
		Tracks:  vd.TracksOpened,

		DegradedFrames:    vd.DegradedFrames,
		DegradedShots:     vd.DegradedShots,
		DegradedFrameHops: hopsToJSON(vd.DegradedFrameHops),
		DegradedShotHops:  hopsToJSON(vd.DegradedShotHops),
		Plan:              planToJSON(vd.Plan),
	}
	blob, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("ingest: marshal manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), blob, 0o644); err != nil {
		return fmt.Errorf("ingest: write manifest: %w", err)
	}
	write := func(prefix string, m map[annot.Label]tables.Table) error {
		for l, t := range m {
			mt, ok := t.(*tables.MemTable)
			if !ok {
				return fmt.Errorf("ingest: table %q is not in memory; re-ingest before saving", l)
			}
			path := filepath.Join(dir, prefix+sanitize(string(l))+".tbl")
			if err := tables.WriteFile(path, string(l), mt.Rows()); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write("obj_", vd.ObjTables); err != nil {
		return err
	}
	return write("act_", vd.ActTables)
}

// sanitize keeps labels filesystem-safe.
func sanitize(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		}
		return '_'
	}, label)
}

// Load reads a video's metadata back from dir. Tables come back
// file-backed: every row accessed at query time is a disk read.
func Load(dir string) (*VideoData, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("ingest: read manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(blob, &man); err != nil {
		return nil, fmt.Errorf("ingest: parse manifest: %w", err)
	}
	planInfo, err := planFromJSON(man.Plan)
	if err != nil {
		return nil, err
	}
	frameHops, err := hopsFromJSON(man.DegradedFrameHops)
	if err != nil {
		return nil, err
	}
	shotHops, err := hopsFromJSON(man.DegradedShotHops)
	if err != nil {
		return nil, err
	}
	vd := &VideoData{
		Meta:         video.Meta{Name: man.Name, Frames: man.Frames, Geom: man.Geom},
		ObjTables:    map[annot.Label]tables.Table{},
		ActTables:    map[annot.Label]tables.Table{},
		ObjSeqs:      seqsFromJSON(man.ObjSeqs),
		ActSeqs:      seqsFromJSON(man.ActSeqs),
		TracksOpened: man.Tracks,

		DegradedFrames:    man.DegradedFrames,
		DegradedShots:     man.DegradedShots,
		DegradedFrameHops: frameHops,
		DegradedShotHops:  shotHops,
		Plan:              planInfo,
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: read dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".tbl") {
			continue
		}
		t, err := tables.OpenFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		switch {
		case strings.HasPrefix(name, "obj_"):
			vd.ObjTables[annot.Label(t.Label())] = t
		case strings.HasPrefix(name, "act_"):
			vd.ActTables[annot.Label(t.Label())] = t
		default:
			t.Close()
		}
	}
	return vd, nil
}

// Repository manages a directory of ingested videos.
type Repository struct {
	dir    string
	videos map[string]*VideoData
}

// OpenRepository loads every video directory under dir (creating dir if
// absent).
func OpenRepository(dir string) (*Repository, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: mkdir %s: %w", dir, err)
	}
	r := &Repository{dir: dir, videos: map[string]*VideoData{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: read repository: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		vd, err := Load(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("ingest: load video %s: %w", e.Name(), err)
		}
		r.videos[e.Name()] = vd
	}
	return r, nil
}

// Add ingest-saves a video into the repository and registers it.
func (r *Repository) Add(name string, vd *VideoData) error {
	if _, exists := r.videos[name]; exists {
		return fmt.Errorf("ingest: video %q already in repository", name)
	}
	if err := vd.Save(filepath.Join(r.dir, sanitize(name))); err != nil {
		return err
	}
	r.videos[name] = vd
	return nil
}

// Remove deletes a video's metadata from the repository.
func (r *Repository) Remove(name string) error {
	if _, exists := r.videos[name]; !exists {
		return fmt.Errorf("ingest: video %q not in repository", name)
	}
	if err := os.RemoveAll(filepath.Join(r.dir, sanitize(name))); err != nil {
		return err
	}
	delete(r.videos, name)
	return nil
}

// Video returns one video's metadata.
func (r *Repository) Video(name string) (*VideoData, bool) {
	vd, ok := r.videos[name]
	return vd, ok
}

// Names lists the repository's videos in sorted order.
func (r *Repository) Names() []string {
	out := make([]string, 0, len(r.videos))
	for n := range r.videos {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
