package ingest

import (
	"context"
	"fmt"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/plan"
	"vaq/internal/score"
	"vaq/internal/svaq"
	"vaq/internal/tables"
	"vaq/internal/trace"
	"vaq/internal/video"
)

// Per-unit score-mass caps of the simulated detector family: one frame
// contributes at most two object instances per label (scores clamped to
// [0, 1] each), one shot at most one action score. The planned-ingest
// score bounds — "a partially sampled clip's true table score is at
// most its sampled score plus missing·cap" — are sound exactly when the
// scoring function h is additive in the raw scores (the default scheme)
// and the per-unit mass respects these caps; deployments with different
// models override them in PlanInfo before saving.
const (
	DefaultObjUnitCap = 2.0
	DefaultActUnitCap = 1.0
)

// PlanInfo records the sparse-sampling state of a planned ingest (§4.2
// under the coarse-to-fine planner): which clips were only partially
// sampled and how much score mass the unsampled units could hide. The
// clip score tables of a planned ingest hold LOWER bounds for these
// clips; PlanInfo is what lets the offline query phase (package rvaq)
// keep its frontier bounds sound, and — given the original detectors —
// densify a clip back to its exact score.
type PlanInfo struct {
	// Rate and Levels echo the planner configuration that produced the
	// metadata.
	Rate   int `json:"rate"`
	Levels int `json:"levels,omitempty"`
	// ObjUnitCap / ActUnitCap bound one unsampled unit's contribution
	// to a clip's per-label score.
	ObjUnitCap float64 `json:"obj_unit_cap"`
	ActUnitCap float64 `json:"act_unit_cap"`
	// MissingFrames / MissingShots count the unsampled units per clip;
	// clips absent from a map were fully sampled. The counts are shared
	// across labels of the same kind: the ladder densifies a clip's
	// units for all labels at once (one model invocation scores every
	// label).
	MissingFrames map[int32]int `json:"missing_frames,omitempty"`
	MissingShots  map[int32]int `json:"missing_shots,omitempty"`
}

// Empty reports whether the metadata carries no partially sampled clip
// (nil receiver included): every table score is exact and the query
// phase can run the classic dense algorithm.
func (p *PlanInfo) Empty() bool {
	return p == nil || (len(p.MissingFrames) == 0 && len(p.MissingShots) == 0)
}

// FrameSlack bounds the score mass the unsampled frames of cid could
// add to any single object label's clip score; 0 for fully sampled
// clips.
func (p *PlanInfo) FrameSlack(cid int32) float64 {
	if p == nil {
		return 0
	}
	return float64(p.MissingFrames[cid]) * p.ObjUnitCap
}

// ShotSlack is FrameSlack for action labels.
func (p *PlanInfo) ShotSlack(cid int32) float64 {
	if p == nil {
		return 0
	}
	return float64(p.MissingShots[cid]) * p.ActUnitCap
}

// MaxFrameSlack is the largest FrameSlack over all clips — the sound
// per-table augmentation of the top frontier (τ_top) in RVAQ.
func (p *PlanInfo) MaxFrameSlack() float64 {
	if p == nil {
		return 0
	}
	m := 0
	for _, n := range p.MissingFrames {
		if n > m {
			m = n
		}
	}
	return float64(m) * p.ObjUnitCap
}

// MaxShotSlack is MaxFrameSlack for action tables.
func (p *PlanInfo) MaxShotSlack() float64 {
	if p == nil {
		return 0
	}
	m := 0
	for _, n := range p.MissingShots {
		if n > m {
			m = n
		}
	}
	return float64(m) * p.ActUnitCap
}

// videoPlanned is the coarse-to-fine counterpart of VideoCtx's two
// stages: per clip, the frame and shot ladders sample sparsely and
// densify only while some label's indicator is still undecided by the
// planner's rules. Inference and statistics interleave per clip (the
// trackers' critical values are the planner's decision inputs), so the
// planned path is sequential — cfg.Workers is ignored. At Rate 1 the
// ladder is the single dense rung and the produced metadata is
// byte-identical to VideoCtx's.
func videoPlanned(ctx context.Context, det detect.ObjectDetector, rec detect.ActionRecognizer,
	meta video.Meta, objLabels, actLabels []annot.Label, cfg Config,
	objTrk, actTrk map[annot.Label]*svaq.LabelTracker) (*VideoData, error) {

	geom := meta.Geom
	nclips := meta.Clips()
	pcfg := cfg.Plan
	strides := pcfg.Strides()

	tr := trace.FromContext(ctx)
	ctx, pspan := trace.Start(ctx, "ingest.plan")
	defer pspan.End()
	cFrames := tr.Counter("detect.frame_invocations")
	cShots := tr.Counter("detect.shot_invocations")

	tracker := detect.NewTracker(cfg.TrackerIoU, cfg.TrackerMaxAge)
	objRows := map[annot.Label][]tables.Row{}
	actRows := map[annot.Label][]tables.Row{}
	objInd := map[annot.Label][]bool{}
	actInd := map[annot.Label][]bool{}
	rawScores := map[annot.Label][]float64{}
	counts := map[annot.Label]int{}
	info := &PlanInfo{
		Rate: pcfg.Rate, Levels: pcfg.Levels,
		ObjUnitCap: DefaultObjUnitCap, ActUnitCap: DefaultActUnitCap,
		MissingFrames: map[int32]int{}, MissingShots: map[int32]int{},
	}

	for c := 0; c < nclips; c++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("ingest: video %q: %w", meta.Name, err)
		}

		// Frame ladder: densify while any object label is undecided.
		if len(objLabels) > 0 {
			frameLo, frameHi := geom.FrameRangeOfClip(video.ClipIdx(c))
			w := int(frameHi - frameLo)
			dets := make([][]detect.Detection, w)
			sampled := make([]bool, w)
			m := 0
			for _, l := range objLabels {
				counts[l] = 0
			}
			decided := map[annot.Label]plan.Decision{}
			for r := range strides {
				for _, u := range plan.Offsets(w, strides, r) {
					d := det.Detect(frameLo+video.FrameIdx(u), objLabels)
					cFrames.Add(int64(len(objLabels)))
					dets[u] = d
					sampled[u] = true
					m++
					seen := map[annot.Label]bool{}
					for _, dd := range d {
						if dd.Score >= cfg.Thresholds.Object {
							seen[dd.Label] = true
						}
					}
					for l := range seen {
						counts[l]++
					}
				}
				all := true
				for _, l := range objLabels {
					if decided[l] != plan.Undecided {
						continue
					}
					lt := objTrk[l]
					if d := pcfg.Decide(w, m, counts[l], lt.K(), lt.P()); d != plan.Undecided {
						decided[l] = d
					} else {
						all = false
					}
				}
				if all {
					break
				}
			}
			// The tracker and the score tables consume the sampled frames
			// in ascending order, exactly like the dense stage 2.
			for _, l := range objLabels {
				rawScores[l] = rawScores[l][:0]
			}
			for u := 0; u < w; u++ {
				if !sampled[u] {
					continue
				}
				d := tracker.Update(frameLo+video.FrameIdx(u), dets[u])
				for _, dd := range d {
					rawScores[dd.Label] = append(rawScores[dd.Label], dd.Score)
				}
			}
			for _, l := range objLabels {
				if s := cfg.Score.H.CombineLabel(rawScores[l]); s > 0 {
					objRows[l] = append(objRows[l], tables.Row{CID: int32(c), Score: s})
				}
				pos := false
				switch decided[l] {
				case plan.Accept:
					pos = true
				case plan.Prune:
					pos = false
				default: // truncated ladder: extrapolate
					pos = plan.Finalize(w, m, counts[l], objTrk[l].K())
				}
				if err := objTrk[l].ObserveRun(m, counts[l]); err != nil {
					return nil, fmt.Errorf("ingest: object %q: %w", l, err)
				}
				objInd[l] = append(objInd[l], pos)
			}
			if m < w {
				info.MissingFrames[int32(c)] = w - m
			}
		}

		// Shot ladder, the action-kind mirror.
		if len(actLabels) > 0 {
			shotLo, shotHi := geom.ShotRangeOfClip(video.ClipIdx(c))
			w := int(shotHi - shotLo)
			scores := make([][]detect.ActionScore, w)
			sampled := make([]bool, w)
			m := 0
			for _, l := range actLabels {
				counts[l] = 0
			}
			decided := map[annot.Label]plan.Decision{}
			for r := range strides {
				for _, u := range plan.Offsets(w, strides, r) {
					ss := rec.Recognize(shotLo+video.ShotIdx(u), actLabels)
					cShots.Add(int64(len(actLabels)))
					scores[u] = ss
					sampled[u] = true
					m++
					for _, a := range ss {
						if a.Score >= cfg.Thresholds.Action {
							counts[a.Label]++
						}
					}
				}
				all := true
				for _, l := range actLabels {
					if decided[l] != plan.Undecided {
						continue
					}
					lt := actTrk[l]
					if d := pcfg.Decide(w, m, counts[l], lt.K(), lt.P()); d != plan.Undecided {
						decided[l] = d
					} else {
						all = false
					}
				}
				if all {
					break
				}
			}
			for _, l := range actLabels {
				rawScores[l] = rawScores[l][:0]
			}
			for u := 0; u < w; u++ {
				if !sampled[u] {
					continue
				}
				for _, a := range scores[u] {
					rawScores[a.Label] = append(rawScores[a.Label], a.Score)
				}
			}
			for _, l := range actLabels {
				if s := cfg.Score.H.CombineLabel(rawScores[l]); s > 0 {
					actRows[l] = append(actRows[l], tables.Row{CID: int32(c), Score: s})
				}
				pos := false
				switch decided[l] {
				case plan.Accept:
					pos = true
				case plan.Prune:
					pos = false
				default:
					pos = plan.Finalize(w, m, counts[l], actTrk[l].K())
				}
				if err := actTrk[l].ObserveRun(m, counts[l]); err != nil {
					return nil, fmt.Errorf("ingest: action %q: %w", l, err)
				}
				actInd[l] = append(actInd[l], pos)
			}
			if m < w {
				info.MissingShots[int32(c)] = w - m
			}
		}
	}

	vd := &VideoData{
		Meta:         meta,
		ObjTables:    map[annot.Label]tables.Table{},
		ActTables:    map[annot.Label]tables.Table{},
		ObjSeqs:      map[annot.Label]interval.Set{},
		ActSeqs:      map[annot.Label]interval.Set{},
		TracksOpened: tracker.TracksOpened(),
	}
	for _, l := range objLabels {
		vd.ObjTables[l] = tables.NewMemTable(string(l), objRows[l])
		vd.ObjSeqs[l] = interval.FromIndicators(objInd[l])
	}
	for _, l := range actLabels {
		vd.ActTables[l] = tables.NewMemTable(string(l), actRows[l])
		vd.ActSeqs[l] = interval.FromIndicators(actInd[l])
	}
	// Fully sampled everywhere (Rate 1, or every clip densified): the
	// metadata is exact and indistinguishable from a dense ingest.
	if !info.Empty() {
		vd.Plan = info
	}
	return vd, nil
}

// NewDensifier builds the per-clip exact-score completion RVAQ uses to
// resolve rankings over a planned repository: given the same detectors
// the ingest ran (re-reads of already-sampled units hit the shared
// inference cache when one is armed), it recomputes the queried
// predicates' clip scores from every unit of the clip and combines them
// with g — exactly the score a dense ingest would have put in the
// tables. The clip's Track annotations are irrelevant to scores, so no
// tracker is needed.
func NewDensifier(vd *VideoData, det detect.ObjectDetector, rec detect.ActionRecognizer,
	q annot.Query, fns score.Functions) (func(cid int32) (float64, error), error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Objects) > 0 && det == nil {
		return nil, fmt.Errorf("ingest: densifier needs an object detector for %v", q.Objects)
	}
	if q.Action != "" && rec == nil {
		return nil, fmt.Errorf("ingest: densifier needs an action recognizer for %q", q.Action)
	}
	if fns.H == nil {
		fns = score.Default()
	}
	geom := vd.Meta.Geom
	nclips := vd.Meta.Clips()
	return func(cid int32) (float64, error) {
		if cid < 0 || int(cid) >= nclips {
			return 0, fmt.Errorf("ingest: densify clip %d outside [0, %d)", cid, nclips)
		}
		actScore := 1.0 // neutral, matching rvaq's ScoreClip
		if q.Action != "" {
			shotLo, shotHi := geom.ShotRangeOfClip(video.ClipIdx(cid))
			var raw []float64
			for s := shotLo; s < shotHi; s++ {
				for _, a := range rec.Recognize(s, []annot.Label{q.Action}) {
					if a.Label == q.Action {
						raw = append(raw, a.Score)
					}
				}
			}
			actScore = fns.H.CombineLabel(raw)
		}
		objScores := make([]float64, len(q.Objects))
		if len(q.Objects) > 0 {
			frameLo, frameHi := geom.FrameRangeOfClip(video.ClipIdx(cid))
			raws := make(map[annot.Label][]float64, len(q.Objects))
			for v := frameLo; v < frameHi; v++ {
				for _, d := range det.Detect(v, q.Objects) {
					raws[d.Label] = append(raws[d.Label], d.Score)
				}
			}
			for i, o := range q.Objects {
				objScores[i] = fns.H.CombineLabel(raws[o])
			}
		}
		return fns.G.CombineClip(actScore, objScores), nil
	}, nil
}
