package ingest

import (
	"fmt"

	"vaq/internal/annot"
	"vaq/internal/interval"
	"vaq/internal/tables"
	"vaq/internal/video"
)

// §4.2: "Multiple videos are handled in the same manner by associating a
// video identifier to each clip identifier." Merge implements that
// namespacing: it combines several ingested videos into one VideoData
// whose clip identifiers are offset per video, so the offline algorithms
// (RVAQ and the baselines) run once across the whole repository and
// rank sequences globally.

// ClipSpan records where one video's clips live in a merged namespace.
type ClipSpan struct {
	Name string
	// Base is the merged clip id of the video's clip 0; the video
	// occupies [Base, Base+Clips).
	Base, Clips int
}

// Merged is a multi-video VideoData plus the namespace map.
type Merged struct {
	*VideoData
	Spans []ClipSpan
}

// Locate maps a merged clip id back to (video name, local clip id).
func (m *Merged) Locate(cid int) (string, int, bool) {
	for _, s := range m.Spans {
		if cid >= s.Base && cid < s.Base+s.Clips {
			return s.Name, cid - s.Base, true
		}
	}
	return "", 0, false
}

// LocateSeq maps a merged result sequence back to its video and local
// clip range. Merged sequences never span videos (a gap of one clip id
// is reserved between videos).
func (m *Merged) LocateSeq(seq interval.Interval) (name string, local interval.Interval, ok bool) {
	n, lo, ok := m.Locate(seq.Lo)
	if !ok {
		return "", interval.Interval{}, false
	}
	n2, hi, ok := m.Locate(seq.Hi)
	if !ok || n2 != n {
		return "", interval.Interval{}, false
	}
	return n, interval.Interval{Lo: lo, Hi: hi}, true
}

// Merge combines ingested videos (name → metadata) into one namespaced
// VideoData. Every video must share the same geometry. Labels absent
// from some videos simply contribute no rows/sequences for that span. A
// one-clip gap separates consecutive videos so result sequences cannot
// bridge them.
func Merge(videos []*VideoData, names []string) (*Merged, error) {
	if len(videos) == 0 {
		return nil, fmt.Errorf("ingest: nothing to merge")
	}
	if len(videos) != len(names) {
		return nil, fmt.Errorf("ingest: %d videos but %d names", len(videos), len(names))
	}
	geom := videos[0].Meta.Geom
	out := &Merged{
		VideoData: &VideoData{
			Meta:      video.Meta{Name: "merged", Geom: geom},
			ObjTables: map[annot.Label]tables.Table{},
			ActTables: map[annot.Label]tables.Table{},
			ObjSeqs:   map[annot.Label]interval.Set{},
			ActSeqs:   map[annot.Label]interval.Set{},
		},
	}
	objRows := map[annot.Label][]tables.Row{}
	actRows := map[annot.Label][]tables.Row{}
	objSeqs := map[annot.Label][]interval.Interval{}
	actSeqs := map[annot.Label][]interval.Interval{}

	base := 0
	for i, vd := range videos {
		if vd.Meta.Geom != geom {
			return nil, fmt.Errorf("ingest: video %q geometry %+v differs from %+v", names[i], vd.Meta.Geom, geom)
		}
		nclips := vd.Meta.Clips()
		out.Spans = append(out.Spans, ClipSpan{Name: names[i], Base: base, Clips: nclips})
		if err := mergeTables(vd.ObjTables, objRows, base); err != nil {
			return nil, fmt.Errorf("ingest: video %q: %w", names[i], err)
		}
		if err := mergeTables(vd.ActTables, actRows, base); err != nil {
			return nil, fmt.Errorf("ingest: video %q: %w", names[i], err)
		}
		mergeSeqs(vd.ObjSeqs, objSeqs, base)
		mergeSeqs(vd.ActSeqs, actSeqs, base)
		out.TracksOpened += vd.TracksOpened
		// Degraded unit indices shift with the clip namespace: the
		// video's frame 0 is merged frame base·ClipLen, its shot 0 is
		// merged shot base·ShotsPerClip.
		for _, f := range vd.DegradedFrames {
			out.DegradedFrames = append(out.DegradedFrames, f+base*geom.ClipLen())
		}
		for _, s := range vd.DegradedShots {
			out.DegradedShots = append(out.DegradedShots, s+base*geom.ShotsPerClip)
		}
		// Per-unit hops shift with the same offsets; the hop values
		// themselves are namespace-free (they index the fallback chain).
		for f, hop := range vd.DegradedFrameHops {
			if out.DegradedFrameHops == nil {
				out.DegradedFrameHops = map[int]int{}
			}
			out.DegradedFrameHops[f+base*geom.ClipLen()] = hop
		}
		for s, hop := range vd.DegradedShotHops {
			if out.DegradedShotHops == nil {
				out.DegradedShotHops = map[int]int{}
			}
			out.DegradedShotHops[s+base*geom.ShotsPerClip] = hop
		}
		// Planned-ingest slack shifts with the namespace too, so a merged
		// top-k keeps the same sound bounds as the per-video runs. The
		// unit caps must agree across videos — they describe the model
		// family, not one video.
		if !vd.Plan.Empty() {
			if out.Plan == nil {
				out.Plan = &PlanInfo{
					Rate: vd.Plan.Rate, Levels: vd.Plan.Levels,
					ObjUnitCap: vd.Plan.ObjUnitCap, ActUnitCap: vd.Plan.ActUnitCap,
					MissingFrames: map[int32]int{}, MissingShots: map[int32]int{},
				}
			} else if out.Plan.ObjUnitCap != vd.Plan.ObjUnitCap || out.Plan.ActUnitCap != vd.Plan.ActUnitCap {
				return nil, fmt.Errorf("ingest: video %q plan unit caps (%v, %v) differ from (%v, %v)",
					names[i], vd.Plan.ObjUnitCap, vd.Plan.ActUnitCap, out.Plan.ObjUnitCap, out.Plan.ActUnitCap)
			}
			for cid, n := range vd.Plan.MissingFrames {
				out.Plan.MissingFrames[cid+int32(base)] = n
			}
			for cid, n := range vd.Plan.MissingShots {
				out.Plan.MissingShots[cid+int32(base)] = n
			}
		}
		base += nclips + 1 // reserve a gap clip between videos
	}
	out.Meta.Frames = base * geom.ClipLen()
	for l, rows := range objRows {
		out.ObjTables[l] = tables.NewMemTable(string(l), rows)
		out.ObjSeqs[l] = interval.Normalize(objSeqs[l])
	}
	for l, rows := range actRows {
		out.ActTables[l] = tables.NewMemTable(string(l), rows)
		out.ActSeqs[l] = interval.Normalize(actSeqs[l])
	}
	return out, nil
}

func mergeTables(in map[annot.Label]tables.Table, acc map[annot.Label][]tables.Row, base int) error {
	for l, t := range in {
		for i := 0; i < t.Len(); i++ {
			r, err := t.SortedRow(i, nil)
			if err != nil {
				return err
			}
			r.CID += int32(base)
			acc[l] = append(acc[l], r)
		}
	}
	return nil
}

func mergeSeqs(in map[annot.Label]interval.Set, acc map[annot.Label][]interval.Interval, base int) {
	for l, s := range in {
		for _, iv := range s {
			acc[l] = append(acc[l], interval.Interval{Lo: iv.Lo + base, Hi: iv.Hi + base})
		}
		if _, ok := acc[l]; !ok {
			acc[l] = []interval.Interval{}
		}
	}
}
