package ingest

import (
	"testing"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/plan"
	"vaq/internal/score"
	"vaq/internal/tables"
)

func TestPlanInfoSlack(t *testing.T) {
	var nilInfo *PlanInfo
	if !nilInfo.Empty() {
		t.Error("nil PlanInfo not Empty")
	}
	if nilInfo.FrameSlack(0) != 0 || nilInfo.ShotSlack(0) != 0 ||
		nilInfo.MaxFrameSlack() != 0 || nilInfo.MaxShotSlack() != 0 {
		t.Error("nil PlanInfo has non-zero slack")
	}

	p := &PlanInfo{
		Rate: 8, ObjUnitCap: 2, ActUnitCap: 1,
		MissingFrames: map[int32]int{3: 10, 7: 25},
		MissingShots:  map[int32]int{3: 2},
	}
	if p.Empty() {
		t.Error("populated PlanInfo reported Empty")
	}
	if got := p.FrameSlack(3); got != 20 {
		t.Errorf("FrameSlack(3) = %v, want 20", got)
	}
	if got := p.FrameSlack(99); got != 0 {
		t.Errorf("FrameSlack of a fully sampled clip = %v, want 0", got)
	}
	if got := p.MaxFrameSlack(); got != 50 {
		t.Errorf("MaxFrameSlack = %v, want 50", got)
	}
	if got := p.ShotSlack(3); got != 2 {
		t.Errorf("ShotSlack(3) = %v, want 2", got)
	}
	if got := p.MaxShotSlack(); got != 2 {
		t.Errorf("MaxShotSlack = %v, want 2", got)
	}
	if (&PlanInfo{Rate: 8}).Empty() != true {
		t.Error("fully sampled PlanInfo (no missing units) not Empty")
	}
}

// tableRows dumps a table in sorted order for byte-level comparison.
func tableRows(t *testing.T, tab tables.Table) []tables.Row {
	t.Helper()
	out := make([]tables.Row, tab.Len())
	for i := 0; i < tab.Len(); i++ {
		row, err := tab.SortedRow(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = row
	}
	return out
}

// TestPlannedRateOneByteIdentical: a Rate-1 planned ingest runs the
// single dense rung, so every table, every sequence and the absence of
// PlanInfo must be byte-identical to the dense ingest.
func TestPlannedRateOneByteIdentical(t *testing.T) {
	scene := ingestScene(t)
	dense := ingestIt(t, scene, detect.MaskRCNN, detect.I3D)

	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	planned, err := Video(det, rec, scene.Truth.Meta,
		scene.Truth.ObjectLabels(), scene.Truth.ActionLabels(),
		Config{Plan: plan.Config{Rate: 1}})
	if err != nil {
		t.Fatal(err)
	}

	if planned.Plan != nil {
		t.Errorf("rate-1 ingest recorded PlanInfo: %+v", planned.Plan)
	}
	for l, dt := range dense.ObjTables {
		dr, pr := tableRows(t, dt), tableRows(t, planned.ObjTables[l])
		if len(dr) != len(pr) {
			t.Fatalf("object %s: %d vs %d rows", l, len(dr), len(pr))
		}
		for i := range dr {
			if dr[i] != pr[i] {
				t.Fatalf("object %s row %d: %+v vs %+v", l, i, dr[i], pr[i])
			}
		}
		if !dense.ObjSeqs[l].Equal(planned.ObjSeqs[l]) {
			t.Fatalf("object %s sequences diverge: %v vs %v", l, dense.ObjSeqs[l], planned.ObjSeqs[l])
		}
	}
	for l, dt := range dense.ActTables {
		dr, pr := tableRows(t, dt), tableRows(t, planned.ActTables[l])
		if len(dr) != len(pr) {
			t.Fatalf("action %s: %d vs %d rows", l, len(dr), len(pr))
		}
		for i := range dr {
			if dr[i] != pr[i] {
				t.Fatalf("action %s row %d: %+v vs %+v", l, i, dr[i], pr[i])
			}
		}
		if !dense.ActSeqs[l].Equal(planned.ActSeqs[l]) {
			t.Fatalf("action %s sequences diverge: %v vs %v", l, dense.ActSeqs[l], planned.ActSeqs[l])
		}
	}
}

func plannedIngest(t *testing.T, scene *detect.Scene, rate int) *VideoData {
	t.Helper()
	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	vd, err := Video(det, rec, scene.Truth.Meta,
		scene.Truth.ObjectLabels(), scene.Truth.ActionLabels(),
		Config{Plan: plan.Config{Rate: rate}})
	if err != nil {
		t.Fatal(err)
	}
	return vd
}

// TestPlannedSaveLoadRoundTrip: the sparse-sampling state must survive
// the manifest, clip ids and slack caps intact.
func TestPlannedSaveLoadRoundTrip(t *testing.T) {
	scene := ingestScene(t)
	vd := plannedIngest(t, scene, 8)
	if vd.Plan.Empty() {
		t.Fatal("rate-8 ingest over 500 clips left no partially sampled clip")
	}

	dir := t.TempDir()
	if err := vd.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, q := vd.Plan, back.Plan
	if q == nil {
		t.Fatal("PlanInfo lost in the round trip")
	}
	if p.Rate != q.Rate || p.Levels != q.Levels ||
		p.ObjUnitCap != q.ObjUnitCap || p.ActUnitCap != q.ActUnitCap {
		t.Fatalf("PlanInfo header diverged: %+v vs %+v", p, q)
	}
	if len(p.MissingFrames) != len(q.MissingFrames) || len(p.MissingShots) != len(q.MissingShots) {
		t.Fatalf("missing-unit maps diverged: %d/%d vs %d/%d",
			len(p.MissingFrames), len(p.MissingShots), len(q.MissingFrames), len(q.MissingShots))
	}
	for cid, n := range p.MissingFrames {
		if q.MissingFrames[cid] != n {
			t.Fatalf("MissingFrames[%d] = %d, want %d", cid, q.MissingFrames[cid], n)
		}
	}
	for cid, n := range p.MissingShots {
		if q.MissingShots[cid] != n {
			t.Fatalf("MissingShots[%d] = %d, want %d", cid, q.MissingShots[cid], n)
		}
	}
}

// TestDensifierMatchesDense: completing a partially sampled clip
// through the densifier must land exactly on the dense ingest's table
// score for the queried predicates.
func TestDensifierMatchesDense(t *testing.T) {
	scene := ingestScene(t)
	dense := ingestIt(t, scene, detect.MaskRCNN, detect.I3D)
	vd := plannedIngest(t, scene, 8)
	q := annot.Query{Action: "run", Objects: []annot.Label{"car"}}

	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	densify, err := NewDensifier(vd, det, rec, q, score.Functions{})
	if err != nil {
		t.Fatal(err)
	}

	// The dense exact clip score is g(act, car) over the dense tables
	// (absent rows score 0 / neutral 1 for the action? no — both factors
	// come from the tables, absent = 0 kills the product; clips scoring
	// zero densify to zero too).
	exact := func(cid int32) float64 {
		a, _, err := dense.ActTables["run"].RandomGet(cid, nil)
		if err != nil {
			t.Fatal(err)
		}
		o, _, err := dense.ObjTables["car"].RandomGet(cid, nil)
		if err != nil {
			t.Fatal(err)
		}
		return a * o
	}

	checked := 0
	for cid := range vd.Plan.MissingFrames {
		got, err := densify(cid)
		if err != nil {
			t.Fatal(err)
		}
		if want := exact(cid); got != want {
			t.Errorf("clip %d densified to %v, dense score %v", cid, got, want)
		}
		checked++
		if checked >= 20 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no partially sampled clip to check")
	}

	if _, err := densify(-1); err == nil {
		t.Error("out-of-range clip accepted")
	}
}
