package ingest

import (
	"reflect"
	"testing"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/video"
)

// mergeScenes builds two small videos with the same labels in different
// places.
func mergeScenes(t *testing.T) (a, b *VideoData) {
	t.Helper()
	mk := func(seed int64, actShots, objFrames interval.Set) *VideoData {
		meta := video.Meta{Name: "v", Frames: 10000, Geom: video.DefaultGeometry()} // 200 clips
		truth := annot.NewVideo(meta)
		truth.AddAction("run", actShots)
		truth.AddObject("car", objFrames)
		scene := &detect.Scene{Truth: truth, Seed: seed}
		det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
		rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
		vd, err := Video(det, rec, meta, truth.ObjectLabels(), truth.ActionLabels(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		return vd
	}
	a = mk(1, interval.Set{{Lo: 100, Hi: 199}}, interval.Set{{Lo: 1000, Hi: 1999}}) // clips 20..39
	b = mk(2, interval.Set{{Lo: 500, Hi: 599}}, interval.Set{{Lo: 5000, Hi: 5999}}) // clips 100..119
	return a, b
}

func TestMergeNamespacesClips(t *testing.T) {
	a, b := mergeScenes(t)
	m, err := Merge([]*VideoData{a, b}, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Spans) != 2 || m.Spans[0].Base != 0 || m.Spans[1].Base != 201 {
		t.Fatalf("spans = %+v", m.Spans)
	}
	q := annot.Query{Action: "run", Objects: []annot.Label{"car"}}
	pq, err := m.CandidateSequences(q)
	if err != nil {
		t.Fatal(err)
	}
	// A's match at clips 20..39, B's at 100..119 offset by 201.
	want := interval.Set{{Lo: 20, Hi: 39}, {Lo: 301, Hi: 320}}
	if !pq.Equal(want) {
		t.Fatalf("merged Pq = %v, want %v", pq, want)
	}
	// Locate maps back.
	name, local, ok := m.Locate(305)
	if !ok || name != "B" || local != 104 {
		t.Fatalf("Locate(305) = %s,%d,%v", name, local, ok)
	}
	vidName, localSeq, ok := m.LocateSeq(interval.Interval{Lo: 301, Hi: 320})
	if !ok || vidName != "B" || localSeq != (interval.Interval{Lo: 100, Hi: 119}) {
		t.Fatalf("LocateSeq = %s %v %v", vidName, localSeq, ok)
	}
	if _, _, ok := m.LocateSeq(interval.Interval{Lo: 150, Hi: 250}); ok {
		t.Fatal("cross-video sequence located")
	}
	if _, _, ok := m.Locate(200); ok {
		t.Fatal("gap clip located")
	}
}

func TestMergeValidation(t *testing.T) {
	a, b := mergeScenes(t)
	if _, err := Merge(nil, nil); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := Merge([]*VideoData{a}, []string{"x", "y"}); err == nil {
		t.Error("name mismatch accepted")
	}
	b.Meta.Geom.ShotLen = 20
	if _, err := Merge([]*VideoData{a, b}, []string{"A", "B"}); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

// TestMergeRemapsDegradedHops verifies the per-unit fallback hops ride
// the clip-namespace shift: unit indices move by the span base, hop
// values (chain positions) stay as recorded, and the per-clip worst-hop
// view lands on the merged clip ids.
func TestMergeRemapsDegradedHops(t *testing.T) {
	a, b := mergeScenes(t)
	g := a.Meta.Geom
	// a: frame 1003 (clip 20) at hop 1, shot 101 (also clip 20) at hop 2.
	a.SetDegradedFrames(map[int]int{1003: 1})
	a.SetDegradedShots(map[int]int{101: 2})
	// b: frame 5007 (clip 100) at hop 3, frame 5100 (clip 102) hop-unknown.
	b.SetDegradedFrames(map[int]int{5007: 3, 5100: 0})

	m, err := Merge([]*VideoData{a, b}, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	base := m.Spans[1].Base // 201
	wantFrames := map[int]int{
		1003:                    1,
		5007 + base*g.ClipLen(): 3,
		5100 + base*g.ClipLen(): 0,
	}
	wantShots := map[int]int{101: 2}
	if !reflect.DeepEqual(m.DegradedFrameHops, wantFrames) {
		t.Errorf("merged frame hops = %v, want %v", m.DegradedFrameHops, wantFrames)
	}
	if !reflect.DeepEqual(m.DegradedShotHops, wantShots) {
		t.Errorf("merged shot hops = %v, want %v", m.DegradedShotHops, wantShots)
	}
	wantClips := map[int32]int{
		20:                2, // worst of frame hop 1 and shot hop 2
		int32(base + 100): 3,
		int32(base + 102): 0, // unknown stays unknown
	}
	if got := m.DegradedClipHops(); !reflect.DeepEqual(got, wantClips) {
		t.Errorf("merged clip hops = %v, want %v", got, wantClips)
	}
}

func TestMergeScoresPreserved(t *testing.T) {
	a, b := mergeScenes(t)
	m, err := Merge([]*VideoData{a, b}, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	// A random access in B's span must return B's local score.
	local, okLocal, _ := b.ObjTables["car"].RandomGet(105, nil)
	merged, okMerged, _ := m.ObjTables["car"].RandomGet(105+201, nil)
	if okLocal != okMerged || local != merged {
		t.Fatalf("merged score %v/%v vs local %v/%v", merged, okMerged, local, okLocal)
	}
}
