package ingest

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/tables"
	"vaq/internal/video"
)

// ingestScene is a small deterministic world with two objects and two
// actions.
func ingestScene(t *testing.T) *detect.Scene {
	t.Helper()
	geom := video.DefaultGeometry()
	meta := video.Meta{Name: "vid", Frames: 25000, Geom: geom} // 500 clips
	truth := annot.NewVideo(meta)
	truth.AddAction("run", interval.Set{{Lo: 200, Hi: 349}})    // clips 40..69
	truth.AddAction("jump", interval.Set{{Lo: 1500, Hi: 1599}}) // clips 300..319
	truth.AddObject("car", interval.Set{{Lo: 2000, Hi: 3999}})  // clips 40..79
	truth.AddObject("dog", interval.Set{{Lo: 15000, Hi: 15999}})
	return &detect.Scene{Truth: truth, Seed: 404}
}

func ingestIt(t *testing.T, scene *detect.Scene, objP, actP detect.Profile) *VideoData {
	t.Helper()
	det := detect.NewSimObjectDetector(scene, objP, nil)
	rec := detect.NewSimActionRecognizer(scene, actP, nil)
	vd, err := Video(det, rec, scene.Truth.Meta,
		scene.Truth.ObjectLabels(), scene.Truth.ActionLabels(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return vd
}

func TestIngestIdealSequencesMatchTruth(t *testing.T) {
	scene := ingestScene(t)
	vd := ingestIt(t, scene, detect.IdealObject, detect.IdealAction)
	wantRun := interval.Set{{Lo: 40, Hi: 69}}
	if !vd.ActSeqs["run"].Equal(wantRun) {
		t.Fatalf("P_run = %v, want %v", vd.ActSeqs["run"], wantRun)
	}
	wantCar := interval.Set{{Lo: 40, Hi: 79}}
	if !vd.ObjSeqs["car"].Equal(wantCar) {
		t.Fatalf("P_car = %v, want %v", vd.ObjSeqs["car"], wantCar)
	}
}

func TestIngestTablesCoverPositiveClips(t *testing.T) {
	scene := ingestScene(t)
	vd := ingestIt(t, scene, detect.MaskRCNN, detect.I3D)
	// Invariant the RVAQ bounds rely on: every clip of a label's
	// individual sequences appears in that label's score table.
	check := func(label annot.Label, seqs interval.Set, tab tables.Table) {
		for _, c := range seqs.Points() {
			if _, ok, err := tab.RandomGet(int32(c), nil); err != nil || !ok {
				t.Fatalf("label %s: positive clip %d missing from table (ok=%v err=%v)", label, c, ok, err)
			}
		}
	}
	for l, s := range vd.ObjSeqs {
		check(l, s, vd.ObjTables[l])
	}
	for l, s := range vd.ActSeqs {
		check(l, s, vd.ActTables[l])
	}
}

func TestIngestScoresConcentrateOnTruth(t *testing.T) {
	scene := ingestScene(t)
	vd := ingestIt(t, scene, detect.MaskRCNN, detect.I3D)
	// The highest-scoring car clip must lie inside the car's truth.
	top, err := vd.ObjTables["car"].SortedRow(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if top.CID < 40 || top.CID > 79 {
		t.Fatalf("top car clip %d outside truth range", top.CID)
	}
}

func TestCandidateSequences(t *testing.T) {
	scene := ingestScene(t)
	vd := ingestIt(t, scene, detect.IdealObject, detect.IdealAction)
	pq, err := vd.CandidateSequences(annot.Query{Action: "run", Objects: []annot.Label{"car"}})
	if err != nil {
		t.Fatal(err)
	}
	want := interval.Set{{Lo: 40, Hi: 69}}
	if !pq.Equal(want) {
		t.Fatalf("Pq = %v, want %v", pq, want)
	}
	// Unknown labels error out.
	if _, err := vd.CandidateSequences(annot.Query{Action: "ghost"}); err == nil {
		t.Error("unknown action accepted")
	}
	if _, err := vd.CandidateSequences(annot.Query{Action: "run", Objects: []annot.Label{"ghost"}}); err == nil {
		t.Error("unknown object accepted")
	}
	if _, err := vd.CandidateSequences(annot.Query{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestQueryTables(t *testing.T) {
	scene := ingestScene(t)
	vd := ingestIt(t, scene, detect.IdealObject, detect.IdealAction)
	act, objs, err := vd.QueryTables(annot.Query{Action: "run", Objects: []annot.Label{"car", "dog"}})
	if err != nil {
		t.Fatal(err)
	}
	if act.Label() != "run" || len(objs) != 2 || objs[0].Label() != "car" {
		t.Fatalf("tables = %v %v", act.Label(), objs)
	}
	if _, _, err := vd.QueryTables(annot.Query{Action: "ghost"}); err == nil {
		t.Error("unknown action accepted")
	}
}

func TestIngestValidation(t *testing.T) {
	scene := ingestScene(t)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	if _, err := Video(nil, rec, scene.Truth.Meta, []annot.Label{"car"}, nil, Config{}); err == nil {
		t.Error("missing detector accepted")
	}
	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	if _, err := Video(det, nil, scene.Truth.Meta, nil, []annot.Label{"run"}, Config{}); err == nil {
		t.Error("missing recognizer accepted")
	}
	short := scene.Truth.Meta
	short.Frames = 10
	if _, err := Video(det, rec, short, []annot.Label{"car"}, nil, Config{}); err == nil {
		t.Error("sub-clip video accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	scene := ingestScene(t)
	vd := ingestIt(t, scene, detect.MaskRCNN, detect.I3D)
	dir := filepath.Join(t.TempDir(), "vid")
	if err := vd.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Name != vd.Meta.Name || got.Meta.Frames != vd.Meta.Frames || got.Meta.Geom != vd.Meta.Geom {
		t.Fatalf("meta lost: %+v vs %+v", got.Meta, vd.Meta)
	}
	if got.TracksOpened != vd.TracksOpened {
		t.Fatalf("tracks lost: %d vs %d", got.TracksOpened, vd.TracksOpened)
	}
	for l, s := range vd.ObjSeqs {
		if !got.ObjSeqs[l].Equal(s) {
			t.Fatalf("ObjSeqs[%s] = %v, want %v", l, got.ObjSeqs[l], s)
		}
	}
	for l, s := range vd.ActSeqs {
		if !got.ActSeqs[l].Equal(s) {
			t.Fatalf("ActSeqs[%s] lost", l)
		}
	}
	// Table contents agree (spot check via sorted and random access).
	for l, mem := range vd.ObjTables {
		file := got.ObjTables[l]
		if file == nil || file.Len() != mem.Len() {
			t.Fatalf("table %s length mismatch", l)
		}
		for i := 0; i < mem.Len(); i += 7 {
			a, _ := mem.SortedRow(i, nil)
			b, err := file.SortedRow(i, nil)
			if err != nil || a != b {
				t.Fatalf("table %s row %d: %v vs %v (%v)", l, i, a, b, err)
			}
		}
	}
}

func TestRepositoryLifecycle(t *testing.T) {
	scene := ingestScene(t)
	vd := ingestIt(t, scene, detect.IdealObject, detect.IdealAction)
	dir := t.TempDir()
	repo, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Add("vid1", vd); err != nil {
		t.Fatal(err)
	}
	if err := repo.Add("vid1", vd); err == nil {
		t.Error("duplicate add accepted")
	}
	if got := repo.Names(); len(got) != 1 || got[0] != "vid1" {
		t.Fatalf("Names = %v", got)
	}
	if _, ok := repo.Video("vid1"); !ok {
		t.Fatal("video not found after add")
	}
	// Reopen from disk.
	repo2, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := repo2.Video("vid1")
	if !ok {
		t.Fatal("video lost after reopen")
	}
	if got.Meta.Name != vd.Meta.Name {
		t.Fatalf("reloaded meta = %+v", got.Meta)
	}
	if err := repo2.Remove("vid1"); err != nil {
		t.Fatal(err)
	}
	if err := repo2.Remove("vid1"); err == nil {
		t.Error("double remove accepted")
	}
	repo3, _ := OpenRepository(dir)
	if len(repo3.Names()) != 0 {
		t.Fatal("remove did not persist")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("wine glass/??"); got != "wine_glass___" {
		t.Fatalf("sanitize = %q", got)
	}
	if got := sanitize("ok_name-9"); got != "ok_name-9" {
		t.Fatalf("sanitize mangled safe name: %q", got)
	}
}

func TestIngestCancellation(t *testing.T) {
	scene := ingestScene(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
		rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
		_, err := VideoCtx(ctx, det, rec, scene.Truth.Meta,
			scene.Truth.ObjectLabels(), scene.Truth.ActionLabels(), Config{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: VideoCtx on a cancelled context = %v, want context.Canceled", workers, err)
		}
	}
}

func TestIngestDeterministic(t *testing.T) {
	scene := ingestScene(t)
	a := ingestIt(t, scene, detect.MaskRCNN, detect.I3D)
	b := ingestIt(t, scene, detect.MaskRCNN, detect.I3D)
	for l := range a.ObjSeqs {
		if !a.ObjSeqs[l].Equal(b.ObjSeqs[l]) {
			t.Fatalf("ingestion not deterministic for %s", l)
		}
	}
	if a.TracksOpened != b.TracksOpened {
		t.Fatal("tracker nondeterministic")
	}
}

func TestParallelIngestMatchesSerial(t *testing.T) {
	scene := ingestScene(t)
	mk := func(workers int) *VideoData {
		det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
		rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
		vd, err := Video(det, rec, scene.Truth.Meta,
			scene.Truth.ObjectLabels(), scene.Truth.ActionLabels(), Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return vd
	}
	serial := mk(1)
	parallel := mk(8)
	if serial.TracksOpened != parallel.TracksOpened {
		t.Fatalf("tracker diverged: %d vs %d", serial.TracksOpened, parallel.TracksOpened)
	}
	for l, s := range serial.ObjSeqs {
		if !parallel.ObjSeqs[l].Equal(s) {
			t.Fatalf("ObjSeqs[%s] diverged", l)
		}
	}
	for l, s := range serial.ActSeqs {
		if !parallel.ActSeqs[l].Equal(s) {
			t.Fatalf("ActSeqs[%s] diverged", l)
		}
	}
	for l, st := range serial.ObjTables {
		pt := parallel.ObjTables[l]
		if st.Len() != pt.Len() {
			t.Fatalf("table %s length diverged", l)
		}
		for i := 0; i < st.Len(); i++ {
			a, _ := st.SortedRow(i, nil)
			b, _ := pt.SortedRow(i, nil)
			if a != b {
				t.Fatalf("table %s row %d diverged: %v vs %v", l, i, a, b)
			}
		}
	}
}
