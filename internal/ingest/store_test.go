package ingest

import (
	"os"
	"path/filepath"
	"testing"

	"vaq/internal/detect"
)

func TestLoadMissingManifest(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("missing manifest accepted")
	}
}

func TestLoadCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestLoadIgnoresForeignFiles(t *testing.T) {
	scene := ingestScene(t)
	vd := ingestIt(t, scene, detect.IdealObject, detect.IdealAction)
	dir := filepath.Join(t.TempDir(), "v")
	if err := vd.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Unrelated files must not break loading.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err != nil {
		t.Fatalf("foreign file broke load: %v", err)
	}
}

func TestLoadCorruptTable(t *testing.T) {
	scene := ingestScene(t)
	vd := ingestIt(t, scene, detect.IdealObject, detect.IdealAction)
	dir := filepath.Join(t.TempDir(), "v")
	if err := vd.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "obj_car.tbl"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt table accepted")
	}
}

func TestSaveRejectsFileBackedTables(t *testing.T) {
	scene := ingestScene(t)
	vd := ingestIt(t, scene, detect.IdealObject, detect.IdealAction)
	dir := filepath.Join(t.TempDir(), "v")
	if err := vd.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Re-saving a file-backed VideoData is an error, not silent data loss.
	if err := loaded.Save(filepath.Join(t.TempDir(), "w")); err == nil {
		t.Fatal("file-backed save accepted")
	}
}

func TestOpenRepositorySkipsFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	repo, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Names()) != 0 {
		t.Fatalf("stray file became a video: %v", repo.Names())
	}
}
