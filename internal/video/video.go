// Package video defines the structural vocabulary of the paper
// (§2 Background): frames, shots, clips and sequences, together with the
// geometry that converts between their index spaces.
//
// A video is a sequence of frames. A shot is a fixed-length run of
// consecutive frames (the input unit of action recognition). A clip is a
// fixed-length run of consecutive shots (the unit at which query
// indicators are decided). A sequence is a run of consecutive clips (the
// unit of query results).
package video

import "fmt"

// FrameIdx indexes a frame within a single video, starting at 0.
type FrameIdx int

// ShotIdx indexes a shot within a single video, starting at 0.
type ShotIdx int

// ClipIdx indexes a clip within a single video, starting at 0.
type ClipIdx int

// ID identifies a video within a repository.
type ID int

// Geometry fixes the frame/shot/clip structure of a video. The shot
// length is dictated by the action recognition model (typical values
// 10–30 frames); the clip length is a tunable parameter of the system
// (Figures 4 and 5 of the paper study its effect).
type Geometry struct {
	// FPS is the frame rate, used only to convert wall-clock durations
	// into frame counts when synthesizing workloads.
	FPS int
	// ShotLen is the number of frames per shot.
	ShotLen int
	// ShotsPerClip is the number of shots per clip.
	ShotsPerClip int
}

// DefaultGeometry mirrors the example of Figure 1: fifty-frame clips of
// five ten-frame shots, at 30 frames per second.
func DefaultGeometry() Geometry {
	return Geometry{FPS: 30, ShotLen: 10, ShotsPerClip: 5}
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.FPS <= 0:
		return fmt.Errorf("video: FPS must be positive, got %d", g.FPS)
	case g.ShotLen <= 0:
		return fmt.Errorf("video: ShotLen must be positive, got %d", g.ShotLen)
	case g.ShotsPerClip <= 0:
		return fmt.Errorf("video: ShotsPerClip must be positive, got %d", g.ShotsPerClip)
	}
	return nil
}

// ClipLen returns the number of frames in one clip.
func (g Geometry) ClipLen() int { return g.ShotLen * g.ShotsPerClip }

// ShotOfFrame returns the shot containing frame v.
func (g Geometry) ShotOfFrame(v FrameIdx) ShotIdx { return ShotIdx(int(v) / g.ShotLen) }

// ClipOfFrame returns the clip containing frame v.
func (g Geometry) ClipOfFrame(v FrameIdx) ClipIdx { return ClipIdx(int(v) / g.ClipLen()) }

// ClipOfShot returns the clip containing shot s.
func (g Geometry) ClipOfShot(s ShotIdx) ClipIdx { return ClipIdx(int(s) / g.ShotsPerClip) }

// FrameRangeOfClip returns the half-open frame range [lo, hi) of clip c.
func (g Geometry) FrameRangeOfClip(c ClipIdx) (lo, hi FrameIdx) {
	lo = FrameIdx(int(c) * g.ClipLen())
	return lo, lo + FrameIdx(g.ClipLen())
}

// ShotRangeOfClip returns the half-open shot range [lo, hi) of clip c.
func (g Geometry) ShotRangeOfClip(c ClipIdx) (lo, hi ShotIdx) {
	lo = ShotIdx(int(c) * g.ShotsPerClip)
	return lo, lo + ShotIdx(g.ShotsPerClip)
}

// FrameRangeOfShot returns the half-open frame range [lo, hi) of shot s.
func (g Geometry) FrameRangeOfShot(s ShotIdx) (lo, hi FrameIdx) {
	lo = FrameIdx(int(s) * g.ShotLen)
	return lo, lo + FrameIdx(g.ShotLen)
}

// Clips returns the number of whole clips in a video of n frames.
// Trailing frames that do not fill a clip are dropped, matching the
// paper's division of a video into non-overlapping fixed-length clips.
func (g Geometry) Clips(n int) int { return n / g.ClipLen() }

// Shots returns the number of whole shots in a video of n frames.
func (g Geometry) Shots(n int) int { return n / g.ShotLen }

// FramesForDuration converts a duration in seconds to a frame count.
func (g Geometry) FramesForDuration(seconds float64) int {
	return int(seconds * float64(g.FPS))
}

// Meta describes one video in a repository.
type Meta struct {
	ID     ID
	Name   string
	Frames int
	Geom   Geometry
}

// Clips returns the number of whole clips in the video.
func (m Meta) Clips() int { return m.Geom.Clips(m.Frames) }

// Shots returns the number of whole shots in the video.
func (m Meta) Shots() int { return m.Geom.Shots(m.Frames) }

func (m Meta) String() string {
	return fmt.Sprintf("video %d %q (%d frames, %d clips)", m.ID, m.Name, m.Frames, m.Clips())
}
