package video

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatalf("DefaultGeometry invalid: %v", err)
	}
	if g.ClipLen() != 50 {
		t.Fatalf("ClipLen = %d, want 50", g.ClipLen())
	}
}

func TestValidate(t *testing.T) {
	bad := []Geometry{
		{FPS: 0, ShotLen: 10, ShotsPerClip: 5},
		{FPS: 30, ShotLen: 0, ShotsPerClip: 5},
		{FPS: 30, ShotLen: 10, ShotsPerClip: 0},
		{FPS: -1, ShotLen: -1, ShotsPerClip: -1},
	}
	for _, g := range bad {
		if g.Validate() == nil {
			t.Errorf("Validate(%+v) = nil, want error", g)
		}
	}
}

func TestIndexConversions(t *testing.T) {
	g := Geometry{FPS: 30, ShotLen: 10, ShotsPerClip: 5}
	cases := []struct {
		frame FrameIdx
		shot  ShotIdx
		clip  ClipIdx
	}{
		{0, 0, 0},
		{9, 0, 0},
		{10, 1, 0},
		{49, 4, 0},
		{50, 5, 1},
		{123, 12, 2},
	}
	for _, c := range cases {
		if got := g.ShotOfFrame(c.frame); got != c.shot {
			t.Errorf("ShotOfFrame(%d) = %d, want %d", c.frame, got, c.shot)
		}
		if got := g.ClipOfFrame(c.frame); got != c.clip {
			t.Errorf("ClipOfFrame(%d) = %d, want %d", c.frame, got, c.clip)
		}
	}
	if got := g.ClipOfShot(7); got != 1 {
		t.Errorf("ClipOfShot(7) = %d, want 1", got)
	}
}

func TestRanges(t *testing.T) {
	g := Geometry{FPS: 30, ShotLen: 10, ShotsPerClip: 5}
	lo, hi := g.FrameRangeOfClip(2)
	if lo != 100 || hi != 150 {
		t.Errorf("FrameRangeOfClip(2) = [%d,%d), want [100,150)", lo, hi)
	}
	slo, shi := g.ShotRangeOfClip(2)
	if slo != 10 || shi != 15 {
		t.Errorf("ShotRangeOfClip(2) = [%d,%d), want [10,15)", slo, shi)
	}
	flo, fhi := g.FrameRangeOfShot(3)
	if flo != 30 || fhi != 40 {
		t.Errorf("FrameRangeOfShot(3) = [%d,%d), want [30,40)", flo, fhi)
	}
}

func TestCounts(t *testing.T) {
	g := Geometry{FPS: 30, ShotLen: 10, ShotsPerClip: 5}
	if got := g.Clips(149); got != 2 {
		t.Errorf("Clips(149) = %d, want 2 (trailing frames dropped)", got)
	}
	if got := g.Shots(35); got != 3 {
		t.Errorf("Shots(35) = %d, want 3", got)
	}
	if got := g.FramesForDuration(60); got != 1800 {
		t.Errorf("FramesForDuration(60) = %d, want 1800", got)
	}
}

func TestMeta(t *testing.T) {
	m := Meta{ID: 1, Name: "test", Frames: 1000, Geom: DefaultGeometry()}
	if m.Clips() != 20 {
		t.Errorf("Clips = %d, want 20", m.Clips())
	}
	if m.Shots() != 100 {
		t.Errorf("Shots = %d, want 100", m.Shots())
	}
	if s := m.String(); s == "" {
		t.Error("String empty")
	}
}

// Property: every frame inside FrameRangeOfClip(c) maps back to clip c,
// and shot/clip nesting is consistent.
func TestQuickGeometryRoundTrip(t *testing.T) {
	g := Geometry{FPS: 30, ShotLen: 12, ShotsPerClip: 4}
	f := func(raw uint16) bool {
		v := FrameIdx(raw)
		c := g.ClipOfFrame(v)
		lo, hi := g.FrameRangeOfClip(c)
		if !(lo <= v && v < hi) {
			return false
		}
		s := g.ShotOfFrame(v)
		return g.ClipOfShot(s) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
