package pqueue

import (
	"math/rand"
	"testing"
)

func BenchmarkPushPop(b *testing.B) {
	const n = 1024
	h := New(n, Min)
	rng := rand.New(rand.NewSource(3))
	prios := make([]float64, n)
	for i := range prios {
		prios[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % n
		h.Push(id, prios[id])
		if h.Len() == n {
			for h.Len() > 0 {
				h.Pop()
			}
		}
	}
}

func BenchmarkUpdate(b *testing.B) {
	const n = 1024
	h := New(n, Min)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < n; i++ {
		h.Push(i, rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Update(i%n, float64(i%911))
	}
}
