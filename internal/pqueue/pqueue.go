// Package pqueue provides an indexed binary heap: a priority queue over
// integer-identified items whose priorities can be updated or removed in
// O(log n). RVAQ (§4.3) maintains two of these — PQ_lo^K, the K
// candidate sequences with the highest lower bounds, and PQ_up^¬K, the
// rest ranked by upper bound — refreshing both as every TBClip step
// tightens the bounds.
package pqueue

// Heap is an indexed heap over items 0..n−1. Whether it is a min- or
// max-heap is decided by the less function. The zero value is not
// usable; construct with New.
type Heap struct {
	less func(a, b float64) bool
	prio []float64 // by item id
	heap []int     // heap of item ids
	pos  []int     // item id -> index in heap; -1 if absent
}

// Min returns a min-heap ordering (Peek yields the smallest priority).
func Min(a, b float64) bool { return a < b }

// Max returns a max-heap ordering (Peek yields the largest priority).
func Max(a, b float64) bool { return a > b }

// New builds an empty heap able to hold items 0..capacity−1.
func New(capacity int, less func(a, b float64) bool) *Heap {
	h := &Heap{
		less: less,
		prio: make([]float64, capacity),
		pos:  make([]int, capacity),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of items currently in the heap.
func (h *Heap) Len() int { return len(h.heap) }

// Contains reports whether item id is in the heap.
func (h *Heap) Contains(id int) bool { return id >= 0 && id < len(h.pos) && h.pos[id] >= 0 }

// Priority returns the stored priority of item id (meaningful only when
// Contains(id)).
func (h *Heap) Priority(id int) float64 { return h.prio[id] }

// Push inserts item id with the given priority; if the item is already
// present its priority is updated instead.
func (h *Heap) Push(id int, priority float64) {
	if h.Contains(id) {
		h.Update(id, priority)
		return
	}
	h.prio[id] = priority
	h.pos[id] = len(h.heap)
	h.heap = append(h.heap, id)
	h.up(len(h.heap) - 1)
}

// Update changes item id's priority, restoring heap order.
func (h *Heap) Update(id int, priority float64) {
	if !h.Contains(id) {
		h.Push(id, priority)
		return
	}
	old := h.prio[id]
	h.prio[id] = priority
	i := h.pos[id]
	if h.less(priority, old) {
		h.up(i)
	} else {
		h.down(i)
	}
}

// Peek returns the top item without removing it; ok is false when empty.
func (h *Heap) Peek() (id int, priority float64, ok bool) {
	if len(h.heap) == 0 {
		return 0, 0, false
	}
	id = h.heap[0]
	return id, h.prio[id], true
}

// Pop removes and returns the top item; ok is false when empty.
func (h *Heap) Pop() (id int, priority float64, ok bool) {
	id, priority, ok = h.Peek()
	if ok {
		h.Remove(id)
	}
	return id, priority, ok
}

// Remove deletes item id from the heap (no-op if absent).
func (h *Heap) Remove(id int) {
	if !h.Contains(id) {
		return
	}
	i := h.pos[id]
	last := len(h.heap) - 1
	h.swap(i, last)
	h.heap = h.heap[:last]
	h.pos[id] = -1
	if i < last {
		h.down(i)
		h.up(i)
	}
}

func (h *Heap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.prio[h.heap[i]], h.prio[h.heap[parent]]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(h.prio[h.heap[l]], h.prio[h.heap[best]]) {
			best = l
		}
		if r < n && h.less(h.prio[h.heap[r]], h.prio[h.heap[best]]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}
