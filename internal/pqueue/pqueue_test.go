package pqueue

import (
	"math/rand"
	"sort"
	"testing"
)

func TestMinHeapBasics(t *testing.T) {
	h := New(5, Min)
	h.Push(0, 3)
	h.Push(1, 1)
	h.Push(2, 2)
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	id, p, ok := h.Peek()
	if !ok || id != 1 || p != 1 {
		t.Fatalf("Peek = %d,%v,%v", id, p, ok)
	}
	order := []int{}
	for {
		id, _, ok := h.Pop()
		if !ok {
			break
		}
		order = append(order, id)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order = %v", order)
		}
	}
}

func TestMaxHeap(t *testing.T) {
	h := New(3, Max)
	h.Push(0, 3)
	h.Push(1, 7)
	h.Push(2, 5)
	if id, p, _ := h.Peek(); id != 1 || p != 7 {
		t.Fatalf("Peek = %d,%v", id, p)
	}
}

func TestUpdateMovesItem(t *testing.T) {
	h := New(4, Min)
	for i := 0; i < 4; i++ {
		h.Push(i, float64(i+10))
	}
	h.Update(3, 1) // becomes smallest
	if id, _, _ := h.Peek(); id != 3 {
		t.Fatalf("Peek after update = %d", id)
	}
	h.Update(3, 100) // becomes largest
	if id, _, _ := h.Peek(); id != 0 {
		t.Fatalf("Peek after second update = %d", id)
	}
	if h.Priority(3) != 100 {
		t.Fatalf("Priority(3) = %v", h.Priority(3))
	}
}

func TestPushExistingUpdates(t *testing.T) {
	h := New(2, Min)
	h.Push(0, 5)
	h.Push(0, 1)
	if h.Len() != 1 {
		t.Fatalf("duplicate push grew the heap: %d", h.Len())
	}
	if _, p, _ := h.Peek(); p != 1 {
		t.Fatalf("priority not updated: %v", p)
	}
}

func TestRemove(t *testing.T) {
	h := New(5, Min)
	for i := 0; i < 5; i++ {
		h.Push(i, float64(5-i))
	}
	h.Remove(4) // current minimum
	if id, _, _ := h.Peek(); id != 3 {
		t.Fatalf("Peek after remove = %d", id)
	}
	h.Remove(4) // absent: no-op
	if h.Len() != 4 {
		t.Fatalf("Len = %d", h.Len())
	}
	if h.Contains(4) {
		t.Fatal("removed item still contained")
	}
}

func TestUpdateAbsentInserts(t *testing.T) {
	h := New(2, Min)
	h.Update(1, 4)
	if !h.Contains(1) || h.Len() != 1 {
		t.Fatal("Update on absent item should insert")
	}
}

func TestEmptyOps(t *testing.T) {
	h := New(3, Min)
	if _, _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty")
	}
	if _, _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty")
	}
	if h.Contains(-1) || h.Contains(99) {
		t.Fatal("Contains out of range")
	}
}

// Property: against a sorted-slice oracle under random operations.
func TestPropAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n = 60
	for trial := 0; trial < 50; trial++ {
		h := New(n, Min)
		oracle := map[int]float64{}
		for op := 0; op < 400; op++ {
			id := rng.Intn(n)
			switch rng.Intn(4) {
			case 0, 1:
				p := rng.Float64() * 100
				h.Push(id, p)
				oracle[id] = p
			case 2:
				h.Remove(id)
				delete(oracle, id)
			case 3:
				if len(oracle) == 0 {
					continue
				}
				gotID, gotP, ok := h.Peek()
				if !ok {
					t.Fatal("heap empty but oracle is not")
				}
				// Oracle minimum.
				ids := make([]int, 0, len(oracle))
				for k := range oracle {
					ids = append(ids, k)
				}
				sort.Slice(ids, func(a, b int) bool { return oracle[ids[a]] < oracle[ids[b]] })
				if gotP != oracle[ids[0]] {
					t.Fatalf("Peek priority %v != oracle min %v", gotP, oracle[ids[0]])
				}
				if oracle[gotID] != gotP {
					t.Fatalf("Peek id/priority inconsistent")
				}
			}
			if h.Len() != len(oracle) {
				t.Fatalf("Len %d != oracle %d", h.Len(), len(oracle))
			}
		}
		// Drain and verify full sorted order.
		prev := -1.0
		for {
			_, p, ok := h.Pop()
			if !ok {
				break
			}
			if p < prev {
				t.Fatalf("pop order violated: %v after %v", p, prev)
			}
			prev = p
		}
	}
}
