package shard

import (
	"fmt"
	"testing"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("vid-%05d", i)
	}
	return ids
}

// TestRingBalance: with the default vnode count every shard owns
// roughly 1/N of a large id population — no shard under half or over
// double its fair share.
func TestRingBalance(t *testing.T) {
	const ids = 20000
	for _, n := range []int{2, 3, 8} {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("s%d", i)
		}
		r, err := NewRing(names, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for _, id := range ringIDs(ids) {
			counts[r.Owner(id)]++
		}
		fair := float64(ids) / float64(n)
		for _, name := range names {
			got := float64(counts[name])
			if got < fair/2 || got > fair*2 {
				t.Errorf("N=%d: shard %s owns %.0f ids, fair share %.0f (counts %v)", n, name, got, fair, counts)
			}
		}
	}
}

// TestRingRemap: adding one shard to an N-shard ring moves about 1/(N+1)
// of the ids, and every moved id moves TO the new shard — consistent
// hashing only claims arcs, it never shuffles ids between old shards.
func TestRingRemap(t *testing.T) {
	const n, ids = 8, 20000
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	before, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(append(append([]string(nil), names...), "s-new"), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, id := range ringIDs(ids) {
		was, is := before.Owner(id), after.Owner(id)
		if was == is {
			continue
		}
		moved++
		if is != "s-new" {
			t.Fatalf("id %s moved %s -> %s, not to the new shard", id, was, is)
		}
	}
	frac := float64(moved) / float64(ids)
	want := 1.0 / float64(n+1)
	if frac < want/2 || frac > want*2 {
		t.Fatalf("adding 1 shard to %d moved %.3f of ids, want ~%.3f", n, frac, want)
	}
}

// TestRingPinned pins the 3-shard mapping of a fixed id table. The
// partition is part of the wire contract — a coordinator and an
// out-of-band partitioner built at different times must agree — so any
// change to the hash or the point layout must show up here as a loud,
// deliberate break.
func TestRingPinned(t *testing.T) {
	r, err := NewRing([]string{"s0", "s1", "s2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"v00": "s2", "v01": "s0", "v02": "s2", "v03": "s1", "v04": "s0",
		"v05": "s1", "v06": "s0", "v07": "s0", "v08": "s2",
		"iron_man": "s0", "q2": "s1", "q4": "s0",
		"traffic-cam-17": "s1", "lobby": "s2",
		"vid-0000": "s0", "vid-9999": "s0",
	}
	for id, owner := range want {
		if got := r.Owner(id); got != owner {
			t.Errorf("Owner(%q) = %q, want %q", id, got, owner)
		}
	}
}

// TestRingDeterministic: two rings over the same shard set agree on
// every id regardless of construction order of the caller's slice
// contents staying fixed.
func TestRingDeterministic(t *testing.T) {
	a, _ := NewRing([]string{"s0", "s1", "s2"}, 64)
	b, _ := NewRing([]string{"s0", "s1", "s2"}, 64)
	for _, id := range ringIDs(500) {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("rings disagree on %s: %s vs %s", id, a.Owner(id), b.Owner(id))
		}
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty shard set: want error")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty name: want error")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate name: want error")
	}
}

func TestRingPartition(t *testing.T) {
	r, err := NewRing([]string{"s0", "s1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := ringIDs(100)
	parts := r.Partition(ids)
	total := 0
	for name, vs := range parts {
		if name != "s0" && name != "s1" {
			t.Fatalf("partition invented shard %q", name)
		}
		for _, v := range vs {
			if r.Owner(v) != name {
				t.Fatalf("partition put %s on %s, owner is %s", v, name, r.Owner(v))
			}
		}
		total += len(vs)
	}
	if total != len(ids) {
		t.Fatalf("partition covers %d of %d ids", total, len(ids))
	}
}

func TestParseBackends(t *testing.T) {
	bs, err := ParseBackends("s0=localhost:8081, s1=localhost:8082,localhost:8083")
	if err != nil {
		t.Fatal(err)
	}
	want := []Backend{
		{Name: "s0", Addr: "localhost:8081"},
		{Name: "s1", Addr: "localhost:8082"},
		{Name: "localhost:8083", Addr: "localhost:8083"},
	}
	if len(bs) != len(want) {
		t.Fatalf("got %v", bs)
	}
	for i := range want {
		if bs[i] != want[i] {
			t.Errorf("backend %d = %+v, want %+v", i, bs[i], want[i])
		}
	}
	for _, bad := range []string{"", " , ", "=addr", "name="} {
		if _, err := ParseBackends(bad); err == nil {
			t.Errorf("ParseBackends(%q): want error", bad)
		}
	}
}
