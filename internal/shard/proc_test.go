package shard_test

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"vaq"
	"vaq/internal/api"
	"vaq/internal/shard"
)

// The acceptance suite spawns real vaqd processes — 3 shards, a
// coordinator, and a single-process union reference — exactly as an
// operator would, and proves the sharded deployment is
// indistinguishable from the union run (byte-identical rankings),
// stays deterministic with the bound broadcast on or off, and degrades
// to flagged partial results when a shard process is killed.

var (
	vaqdOnce sync.Once
	vaqdBin  string
	vaqdErr  error
)

// buildVaqd compiles cmd/vaqd once per test run.
func buildVaqd(t *testing.T) string {
	t.Helper()
	vaqdOnce.Do(func() {
		root, err := filepath.Abs("../..")
		if err != nil {
			vaqdErr = err
			return
		}
		// Not t.TempDir(): the binary outlives the first test that
		// builds it (the per-test dir would be removed at its end).
		dir, err := os.MkdirTemp("", "vaqd-proc-test-")
		if err != nil {
			vaqdErr = err
			return
		}
		vaqdBin = filepath.Join(dir, "vaqd")
		cmd := exec.Command("go", "build", "-o", vaqdBin, "./cmd/vaqd")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			vaqdErr = fmt.Errorf("go build ./cmd/vaqd: %v\n%s", err, out)
		}
	})
	if vaqdErr != nil {
		t.Fatal(vaqdErr)
	}
	return vaqdBin
}

// startProc launches a vaqd with -addr 127.0.0.1:0, parses the actual
// address from the "listening on" line, and registers a kill cleanup.
func startProc(t *testing.T, args ...string) (string, *exec.Cmd) {
	t.Helper()
	bin := buildVaqd(t)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})

	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		_, _ = io.Copy(io.Discard, stdout)
	}()
	select {
	case addr := <-addrCh:
		return addr, cmd
	case <-time.After(30 * time.Second):
		t.Fatalf("vaqd %v: no listening line within 30s", args)
		return "", nil
	}
}

// buildShardRepos persists the shared corpus into on-disk repositories:
// one per shard (partitioned by the coordinator's own ring) plus the
// union.
func buildShardRepos(t *testing.T, shardNames []string) (map[string]string, string) {
	t.Helper()
	vids, _ := corpus(t)
	all := make([]string, 0, len(vids))
	for n := range vids {
		all = append(all, n)
	}
	sort.Strings(all)
	ring, err := shard.NewRing(shardNames, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts := ring.Partition(all)

	base := t.TempDir()
	write := func(dir string, names []string) string {
		repo, err := vaq.OpenRepository(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			if err := repo.Add(n, vids[n]); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}
	dirs := map[string]string{}
	for _, name := range shardNames {
		dirs[name] = write(filepath.Join(base, name), parts[name])
	}
	union := write(filepath.Join(base, "union"), all)
	return dirs, union
}

// TestAcceptance3Shard is the end-to-end scenario: 3 vaqd shard
// processes + a coordinator process vs one union vaqd.
func TestAcceptance3Shard(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	shardNames := []string{"s0", "s1", "s2"}
	dirs, unionDir := buildShardRepos(t, shardNames)

	addrs := map[string]string{}
	procs := map[string]*exec.Cmd{}
	for _, name := range shardNames {
		addr, cmd := startProc(t, "-addr", "127.0.0.1:0", "-repo", dirs[name])
		addrs[name], procs[name] = addr, cmd
	}
	unionAddr, _ := startProc(t, "-addr", "127.0.0.1:0", "-repo", unionDir)

	specs := make([]string, len(shardNames))
	for i, n := range shardNames {
		specs[i] = n + "=" + addrs[n]
	}
	coordAddr, _ := startProc(t,
		"-coordinator", "-addr", "127.0.0.1:0",
		"-shards", strings.Join(specs, ","),
		"-bound-broadcast", "5ms")
	// A second coordinator without the broadcast: the metamorphic pair.
	quietAddr, _ := startProc(t,
		"-coordinator", "-addr", "127.0.0.1:0",
		"-shards", strings.Join(specs, ","))

	_, q := corpus(t)

	// Byte-identical rankings: coordinator (broadcast on and off) vs
	// the union process, across k and repeated runs.
	for _, k := range []int{1, 5} {
		var want api.TopKResponse
		if code := doJSON(t, http.MethodPost, "http://"+unionAddr+"/v1/topk", topKReq(q, k), &want); code != http.StatusOK {
			t.Fatalf("union k=%d: status %d", k, code)
		}
		if len(want.Results) == 0 {
			t.Fatalf("union k=%d: no results", k)
		}
		ref := resultsJSON(t, want.Results)
		for run := 0; run < 2; run++ {
			for label, addr := range map[string]string{"broadcast": coordAddr, "quiet": quietAddr} {
				var got api.TopKResponse
				if code := doJSON(t, http.MethodPost, "http://"+addr+"/v1/topk", topKReq(q, k), &got); code != http.StatusOK {
					t.Fatalf("%s k=%d run %d: status %d", label, k, run, code)
				}
				if g := resultsJSON(t, got.Results); g != ref {
					t.Fatalf("%s k=%d run %d diverged from union\n got %s\nwant %s", label, k, run, g, ref)
				}
				if got.Incomplete {
					t.Fatalf("%s k=%d run %d: incomplete with healthy shards", label, k, run)
				}
			}
		}
	}

	// Coordinator health: every shard probes ok.
	var hz api.CoordHealthzResponse
	if code := doJSON(t, http.MethodGet, "http://"+coordAddr+"/healthz", nil, &hz); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if hz.Status != "ok" || len(hz.Shards) != 3 {
		t.Fatalf("healthz %+v, want ok over 3 shards", hz)
	}

	// Sessions route through the coordinator to a real shard process.
	var created api.SessionInfo
	if code := doJSON(t, http.MethodPost, "http://"+coordAddr+"/v1/sessions",
		api.CreateSessionRequest{Workload: "q2", Scale: 0.02}, &created); code != http.StatusCreated {
		t.Fatalf("create session: status %d (%+v)", code, created)
	}
	var deleted api.SessionInfo
	if code := doJSON(t, http.MethodDelete, "http://"+coordAddr+"/v1/sessions/"+created.ID, nil, &deleted); code != http.StatusOK {
		t.Fatalf("delete session: status %d", code)
	}

	// Kill one shard process. Strict queries fail loudly; partial=true
	// yields the survivors' merged ranking, flagged and deterministic.
	if err := procs["s1"].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = procs["s1"].Process.Wait()

	var errResp api.ErrorResponse
	if code := doJSON(t, http.MethodPost, "http://"+coordAddr+"/v1/topk", topKReq(q, 5), &errResp); code != http.StatusBadGateway {
		t.Fatalf("strict scatter after kill: status %d, want 502", code)
	}
	preq := topKReq(q, 5)
	preq.Partial = true
	var first api.TopKResponse
	if code := doJSON(t, http.MethodPost, "http://"+coordAddr+"/v1/topk", preq, &first); code != http.StatusOK {
		t.Fatalf("partial scatter after kill: status %d", code)
	}
	if !first.Incomplete || len(first.Results) == 0 {
		t.Fatalf("partial scatter after kill: incomplete=%v results=%d", first.Incomplete, len(first.Results))
	}
	var second api.TopKResponse
	if code := doJSON(t, http.MethodPost, "http://"+coordAddr+"/v1/topk", preq, &second); code != http.StatusOK {
		t.Fatalf("partial scatter repeat: status %d", code)
	}
	if a, b := resultsJSON(t, first.Results), resultsJSON(t, second.Results); a != b {
		t.Fatalf("survivor ranking not deterministic:\n%s\n%s", a, b)
	}

	// The coordinator reports the outage.
	if code := doJSON(t, http.MethodGet, "http://"+coordAddr+"/healthz", nil, &hz); code != http.StatusOK {
		t.Fatalf("healthz after kill: status %d", code)
	}
	if hz.Status != "degraded" {
		t.Fatalf("healthz after kill %+v, want degraded", hz)
	}
}
